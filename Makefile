GO ?= go

.PHONY: build test bench bench-gate lint lint-verbose lint-test fmt tidy check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## bench records the canonical benchmarks (internal/benchmarks) into a
## BENCH_<rev>.json trajectory point; bench-gate replays the pinned CI
## subset and diffs it against the committed baseline.
bench:
	$(GO) run ./cmd/unicobench

bench-gate:
	$(GO) run ./cmd/unicobench -run '^(GPFitPredict|CholeskyBlocked|Rank1Update|MappingSearchUnit|EndToEndMicro)$$' \
		-benchtime 1x -out BENCH_ci.json
	$(GO) run ./cmd/unicobench -diff -tol 3 BENCH_baseline.json BENCH_ci.json

## lint runs unicolint (the in-repo analysis suite under lint/) over the
## whole root module. The lint module is nested so the root module stays
## dependency-free; -C .. points the driver back at the repo root.
lint:
	cd lint && $(GO) run ./cmd/unicolint -C .. ./...

lint-verbose:
	cd lint && $(GO) run ./cmd/unicolint -C .. -verbose ./...

lint-test:
	cd lint && $(GO) vet ./... && $(GO) test ./...

fmt:
	gofmt -l .

tidy:
	$(GO) mod tidy -diff
	cd lint && $(GO) mod tidy -diff

check: fmt tidy build test lint-test lint
