GO ?= go

.PHONY: build test lint lint-verbose lint-test fmt tidy check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## lint runs unicolint (the in-repo analysis suite under lint/) over the
## whole root module. The lint module is nested so the root module stays
## dependency-free; -C .. points the driver back at the repo root.
lint:
	cd lint && $(GO) run ./cmd/unicolint -C .. ./...

lint-verbose:
	cd lint && $(GO) run ./cmd/unicolint -C .. -verbose ./...

lint-test:
	cd lint && $(GO) vet ./... && $(GO) test ./...

fmt:
	gofmt -l .

tidy:
	$(GO) mod tidy -diff
	cd lint && $(GO) mod tidy -diff

check: fmt tidy build test lint-test lint
