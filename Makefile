GO ?= go

.PHONY: build test race bench bench-gate lint lint-verbose lint-json lint-test fmt tidy check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race runs both modules' tests under the race detector — the CI race job
## runs exactly this target.
race:
	$(GO) test -race ./...
	cd lint && $(GO) test -race ./...

## bench records the canonical benchmarks (internal/benchmarks) into a
## BENCH_<rev>.json trajectory point; bench-gate replays the pinned CI
## subset and diffs it against the committed baseline.
bench:
	$(GO) run ./cmd/unicobench

bench-gate:
	$(GO) run ./cmd/unicobench -run '^(GPFitPredict|CholeskyBlocked|Rank1Update|MappingSearchUnit|EndToEndMicro)$$' \
		-benchtime 1x -out BENCH_ci.json
	$(GO) run ./cmd/unicobench -diff -tol 3 BENCH_baseline.json BENCH_ci.json

## lint runs unicolint (the in-repo analysis suite under lint/) over the
## whole root module: all nine analyzers, failing on any unsuppressed
## finding and on any stale allow directive. The lint module is nested so
## the root module stays dependency-free; -C .. points the driver back at
## the repo root.
lint:
	cd lint && $(GO) run ./cmd/unicolint -C .. -stale-allows ./...

lint-verbose:
	cd lint && $(GO) run ./cmd/unicolint -C .. -verbose ./...

lint-json:
	cd lint && $(GO) run ./cmd/unicolint -C .. -json ./...

lint-test:
	cd lint && $(GO) vet ./... && $(GO) test ./...

fmt:
	gofmt -l .

tidy:
	$(GO) mod tidy -diff
	cd lint && $(GO) mod tidy -diff

check: fmt tidy build test race lint-test lint
