package unico

import (
	"context"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"unico/internal/flightrec"
)

func flightConfig(dir string) Config {
	return Config{
		BatchSize: 6, Iterations: 3, BudgetMax: 15, Seed: 1,
		FlightRecordFile: filepath.Join(dir, "run.jsonl"),
	}
}

// TestFlightRecordMatchesProgress pins the acceptance criterion that the
// durable artifact's per-iteration hypervolume (and costs) are exactly the
// values the Progress callback reported — one source of truth, recorded at
// the same boundary.
func TestFlightRecordMatchesProgress(t *testing.T) {
	p, err := OpenSourcePlatform(Edge, "MobileNetV3-S")
	if err != nil {
		t.Fatal(err)
	}
	cfg := flightConfig(t.TempDir())
	var seen []IterationProgress
	cfg.Progress = func(ip IterationProgress) { seen = append(seen, ip) }
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}

	d, skipped, err := flightrec.Load(cfg.FlightRecordFile)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped %d artifact lines", skipped)
	}
	if d.Header.Method != "UNICO" || d.Header.Seed != 1 || d.Header.RunID == "" {
		t.Errorf("header = %+v", d.Header)
	}
	if d.Header.Workload == "" {
		t.Error("header missing workload name")
	}
	if d.Header.Fingerprint == nil {
		t.Error("header missing options fingerprint")
	}
	if len(d.Iters) != len(seen) {
		t.Fatalf("artifact has %d iterations, Progress reported %d", len(d.Iters), len(seen))
	}
	for i, it := range d.Iters {
		ip := seen[i]
		if it.Iter != ip.Iter || it.Hypervolume != ip.Hypervolume ||
			it.SimHours != ip.SimHours || it.Evals != ip.Evaluations {
			t.Errorf("iteration %d: artifact {iter %d hv %v sim %v evals %d} != progress {iter %d hv %v sim %v evals %d}",
				i, it.Iter, it.Hypervolume, it.SimHours, it.Evals,
				ip.Iter, ip.Hypervolume, ip.SimHours, ip.Evaluations)
		}
		if math.IsNaN(float64(it.UUL)) {
			t.Errorf("iteration %d: NaN UUL", it.Iter)
		}
		if len(it.RungAlive) == 0 || it.RungAlive[0] != cfg.BatchSize {
			t.Errorf("iteration %d: survivor curve %v does not start at the batch size %d",
				it.Iter, it.RungAlive, cfg.BatchSize)
		}
	}
	if d.Summary == nil {
		t.Fatal("no summary record")
	}
	if d.Summary.Interrupted {
		t.Error("uninterrupted run marked interrupted")
	}
	if d.Summary.Iters != cfg.Iterations || d.Summary.Evals != res.Evaluations ||
		d.Summary.SimHours != res.SimulatedHours {
		t.Errorf("summary %+v does not match result {iters %d evals %d hours %v}",
			d.Summary, cfg.Iterations, res.Evaluations, res.SimulatedHours)
	}
}

// TestFlightRecordKillResumeIdentical is the tentpole acceptance test: kill a
// recorded run mid-flight, resume it from its checkpoint, and the stitched
// artifact's iteration and summary records must be identical to those of an
// uninterrupted run. (Headers differ by design: run ID and start time are
// per-process.)
func TestFlightRecordKillResumeIdentical(t *testing.T) {
	p, err := OpenSourcePlatform(Edge, "MobileNetV3-S")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	full := flightConfig(dir)
	full.Iterations = 4
	full.FlightRecordFile = filepath.Join(dir, "full.jsonl")
	if _, err := Optimize(p, full); err != nil {
		t.Fatal(err)
	}
	want, _, err := flightrec.Load(full.FlightRecordFile)
	if err != nil {
		t.Fatal(err)
	}

	killed := full
	killed.FlightRecordFile = filepath.Join(dir, "killed.jsonl")
	killed.CheckpointFile = filepath.Join(dir, "killed.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed.Progress = func(ip IterationProgress) {
		if ip.Iter == 2 {
			cancel()
		}
	}
	if _, err := OptimizeContext(ctx, p, killed); err != nil {
		t.Fatal(err)
	}
	mid, _, err := flightrec.Load(killed.FlightRecordFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid.Iters) != 2 {
		t.Fatalf("interrupted artifact has %d iterations, want 2", len(mid.Iters))
	}
	if mid.Summary == nil || !mid.Summary.Interrupted {
		t.Fatalf("interrupted artifact summary = %+v, want Interrupted", mid.Summary)
	}

	resumed := killed
	resumed.Progress = nil
	resumed.Resume = true
	if _, err := Optimize(p, resumed); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := flightrec.Load(resumed.FlightRecordFile)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("stitched artifact has %d malformed lines", skipped)
	}
	if !reflect.DeepEqual(want.Iters, got.Iters) {
		t.Errorf("iteration records diverged after kill/resume:\nwant %+v\ngot  %+v", want.Iters, got.Iters)
	}
	if !reflect.DeepEqual(want.Summary, got.Summary) {
		t.Errorf("summary diverged after kill/resume:\nwant %+v\ngot  %+v", want.Summary, got.Summary)
	}

	// The phase trees specifically — per-iteration perfprof deltas are part
	// of Iters, but assert the aggregate simulated-clock totals explicitly so
	// a regression here names the phase that drifted rather than dumping two
	// full artifacts.
	wantPhases := flightrec.AggregatePhases(want.Iters)
	gotPhases := flightrec.AggregatePhases(got.Iters)
	if len(wantPhases) == 0 {
		t.Fatal("uninterrupted run recorded no phase deltas")
	}
	if !reflect.DeepEqual(wantPhases, gotPhases) {
		t.Errorf("phase trees diverged after kill/resume:\nwant %+v\ngot  %+v", wantPhases, gotPhases)
	}
	for _, a := range wantPhases {
		if a.Path == "iteration" && a.SimSeconds <= 0 {
			t.Errorf("iteration phase has non-positive sim time: %+v", a)
		}
	}
}

// TestFlightRecordIdenticalAcrossSearchWorkers pins the acquisition pool's
// determinism contract at the facade layer: the same seed run serially
// (SearchWorkers=1) and on a wide pool (SearchWorkers=8) must leave flight
// records with identical iteration records, summaries and phase trees — the
// worker count is a wall-clock knob, never a result knob.
func TestFlightRecordIdenticalAcrossSearchWorkers(t *testing.T) {
	p, err := OpenSourcePlatform(Edge, "MobileNetV3-S")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	serial := flightConfig(dir)
	serial.SearchWorkers = 1
	serial.FlightRecordFile = filepath.Join(dir, "serial.jsonl")
	sres, err := Optimize(p, serial)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := flightrec.Load(serial.FlightRecordFile)
	if err != nil {
		t.Fatal(err)
	}

	parallel := flightConfig(dir)
	parallel.SearchWorkers = 8
	parallel.FlightRecordFile = filepath.Join(dir, "parallel.jsonl")
	pres, err := Optimize(p, parallel)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := flightrec.Load(parallel.FlightRecordFile)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(sres.Front, pres.Front) || sres.SimulatedHours != pres.SimulatedHours {
		t.Error("search result diverged across SearchWorkers settings")
	}
	if !reflect.DeepEqual(want.Iters, got.Iters) {
		t.Errorf("iteration records diverged across SearchWorkers:\nserial   %+v\nparallel %+v", want.Iters, got.Iters)
	}
	if !reflect.DeepEqual(want.Summary, got.Summary) {
		t.Errorf("summary diverged across SearchWorkers:\nserial   %+v\nparallel %+v", want.Summary, got.Summary)
	}
	wantPhases := flightrec.AggregatePhases(want.Iters)
	gotPhases := flightrec.AggregatePhases(got.Iters)
	if len(wantPhases) == 0 {
		t.Fatal("serial run recorded no phase deltas")
	}
	if !reflect.DeepEqual(wantPhases, gotPhases) {
		t.Errorf("phase trees diverged across SearchWorkers:\nserial   %+v\nparallel %+v", wantPhases, gotPhases)
	}
}

// TestFlightRecordCacheCounters: with the evaluation cache on, the durable
// iteration records carry the cache's cumulative counters (stamped at the
// facade layer, where the cache lives).
func TestFlightRecordCacheCounters(t *testing.T) {
	p, err := OpenSourcePlatform(Edge, "MobileNetV3-S")
	if err != nil {
		t.Fatal(err)
	}
	cfg := flightConfig(t.TempDir())
	cfg.Cache = true
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := flightrec.Load(cfg.FlightRecordFile)
	if err != nil {
		t.Fatal(err)
	}
	last := d.Iters[len(d.Iters)-1]
	if last.CacheHits+last.CacheMisses == 0 {
		t.Error("iteration records carry no cache counters despite Cache=true")
	}
	if d.Summary.CacheHits != res.CacheHits || d.Summary.CacheMisses != res.CacheMisses {
		t.Errorf("summary cache counters %d/%d, result says %d/%d",
			d.Summary.CacheHits, d.Summary.CacheMisses, res.CacheHits, res.CacheMisses)
	}
}

func TestFlightRecordNSGAIIRejected(t *testing.T) {
	p, err := OpenSourcePlatform(Edge, "MobileNetV3-S")
	if err != nil {
		t.Fatal(err)
	}
	cfg := flightConfig(t.TempDir())
	cfg.Method = MethodNSGAII
	if _, err := Optimize(p, cfg); err == nil {
		t.Error("flight recording accepted for MethodNSGAII")
	}
}

// TestFlightRecordingDoesNotPerturbSearch: recording is observation only —
// the front with and without it is identical.
func TestFlightRecordingDoesNotPerturbSearch(t *testing.T) {
	p, err := OpenSourcePlatform(Edge, "MobileNetV3-S")
	if err != nil {
		t.Fatal(err)
	}
	bare := Config{BatchSize: 6, Iterations: 3, BudgetMax: 15, Seed: 1}
	ref, err := Optimize(p, bare)
	if err != nil {
		t.Fatal(err)
	}
	rec := flightConfig(t.TempDir())
	got, err := Optimize(p, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Front, got.Front) || ref.SimulatedHours != got.SimulatedHours {
		t.Error("flight recording changed the search result")
	}
}
