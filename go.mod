module unico

go 1.22
