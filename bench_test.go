// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus micro-benchmarks
// of the performance-critical substrates.
//
// The table/figure benchmarks run the corresponding experiment pipeline at
// SmallScale; cmd/experiments runs the same runners at the paper's scale.
// Benchmark output reports the comparative statistics (search-cost speedup,
// hypervolume differences, savings) as custom metrics.
package unico

import (
	"math/rand"
	"testing"

	"unico/internal/benchmarks"
	"unico/internal/experiments"
	"unico/internal/hw"
	"unico/internal/maestro"
	"unico/internal/mapping"
	"unico/internal/pareto"
	"unico/internal/workload"

	"unico/internal/camodel"
)

// BenchmarkTable1_Edge regenerates Table 1: HASCO vs NSGA-II vs UNICO on the
// seven networks under the edge power constraint (< 2 W).
func BenchmarkTable1_Edge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunEdgeCloudTable(nil, hw.Edge, experiments.SmallScale())
		reportSpeedup(b, res)
	}
}

// BenchmarkTable2_Cloud regenerates Table 2: the same comparison under the
// cloud power constraint (< 20 W).
func BenchmarkTable2_Cloud(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunEdgeCloudTable(nil, hw.Cloud, experiments.SmallScale())
		reportSpeedup(b, res)
	}
}

func reportSpeedup(b *testing.B, res experiments.TableResult) {
	sum, n := 0.0, 0
	for _, s := range res.SpeedupSummary() {
		sum += s
		n++
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), "UNICO-speedup-x")
	}
}

// BenchmarkFigure7_HypervolumeCurves regenerates Fig. 7: hypervolume
// difference versus simulated search cost for HASCO, NSGA-II, MOBOHB and
// UNICO (edge panel; the cloud panel is the same pipeline under hw.Cloud).
func BenchmarkFigure7_HypervolumeCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunHypervolumeCurves(nil, hw.Edge, experiments.SmallScale())
		for _, c := range res.Curves {
			b.ReportMetric(c.Final(), "final-HVdiff-"+c.Method)
		}
	}
}

// BenchmarkFigure8_RobustnessIndicator regenerates Fig. 8: PPA-comparable
// Pareto pairs with different sensitivity R, validated on unseen networks.
func BenchmarkFigure8_RobustnessIndicator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunRobustnessIndicator(nil, experiments.SmallScale())
		wins := 0
		for _, p := range res.Pairs {
			if p.RobustWinsAvg {
				wins++
			}
		}
		if len(res.Pairs) > 0 {
			b.ReportMetric(float64(wins)/float64(len(res.Pairs)), "robust-wins-frac")
		}
	}
}

// BenchmarkFigure9_Generalization regenerates Fig. 9: UNICO-vs-HASCO
// min-Euclid gain on eight unseen DNNs after multi-workload co-optimization.
func BenchmarkFigure9_Generalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunGeneralization(nil, experiments.SmallScale())
		b.ReportMetric(res.AvgImprovementPct, "UNICO-gain-%")
	}
}

// BenchmarkFigure10_Ablation regenerates Fig. 10: HASCO vs SH+Champion vs
// MSH+Champion vs full UNICO hypervolume convergence.
func BenchmarkFigure10_Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunAblation(nil, experiments.SmallScale())
		for _, c := range res.Curves {
			b.ReportMetric(c.Final(), "final-HVdiff-"+c.Method)
		}
	}
}

// BenchmarkFigure11_Ascend regenerates Fig. 11: UNICO-found Ascend-like
// cores versus the expert default, evaluated by the cycle-level CAModel.
func BenchmarkFigure11_Ascend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunAscend(nil, experiments.SmallScale())
		b.ReportMetric(res.AvgPowerSavePct, "avg-power-save-%")
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkMaestroEvaluate measures one analytical PPA evaluation, the
// innermost operation of the whole co-search.
func BenchmarkMaestroEvaluate(b *testing.B) {
	eng := maestro.Engine{}
	cfg := hw.Spatial{PEX: 12, PEY: 12, L1Bytes: 1728, L2KB: 432, NoCBW: 128,
		Dataflow: hw.WeightStationary}
	l := workload.ResNet().Layers[5]
	m := mapping.Spatial{TK: 8, TC: 8, TY: 4, TX: 4, TR: 3, TS: 3,
		SpatX: mapping.DimK, SpatY: mapping.DimY}.Canon(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Evaluate(cfg, m, l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCAModelEvaluate measures one cycle-level simulation.
func BenchmarkCAModelEvaluate(b *testing.B) {
	eng := camodel.Engine{}
	cfg := hw.DefaultAscend()
	w, _ := workload.ByName("FSRCNN-120x320")
	l := w.Layers[0]
	m := mapping.Ascend{TM: 56, TK: 25, TN: 4096, FuseDepth: 2, DBufA: true, DBufB: true}.Canon(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Evaluate(cfg, m, l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMappingSearchUnit measures one network-level budget unit of the
// FlexTensor-like search on MobileNet. The body lives in
// internal/benchmarks so cmd/unicobench runs the identical workload.
func BenchmarkMappingSearchUnit(b *testing.B) {
	benchmarks.MappingSearchUnit(b)
}

// BenchmarkGPFitPredict measures surrogate refitting plus a prediction at
// the training sizes MOBO reaches. The body lives in internal/benchmarks
// so cmd/unicobench runs the identical workload.
func BenchmarkGPFitPredict(b *testing.B) {
	benchmarks.GPFitPredict(b)
}

// BenchmarkCholeskyBlocked measures the blocked factorization on a
// 256×256 SPD matrix. The body lives in internal/benchmarks so
// cmd/unicobench runs the identical workload.
func BenchmarkCholeskyBlocked(b *testing.B) {
	benchmarks.CholeskyBlocked(b)
}

// BenchmarkRank1Update measures the O(n²) rank-1 Cholesky update that the
// incremental-GP path uses in place of refactorization. The body lives in
// internal/benchmarks so cmd/unicobench runs the identical workload.
func BenchmarkRank1Update(b *testing.B) {
	benchmarks.Rank1Update(b)
}

// BenchmarkEndToEndMicro runs the Table-1-style micro co-search of
// internal/benchmarks end to end — the bench whose phase breakdown
// cmd/unicobench records in BENCH_*.json.
func BenchmarkEndToEndMicro(b *testing.B) {
	benchmarks.EndToEndMicro(b)
}

// BenchmarkHypervolume3D measures the exact WFG hypervolume on a
// co-search-sized 3D front.
func BenchmarkHypervolume3D(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var pts [][]float64
	for len(pts) < 24 {
		pts = append(pts, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
	}
	front := pareto.FrontPoints(pts)
	ref := []float64{1.1, 1.1, 1.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pareto.Hypervolume(front, ref)
	}
}

// BenchmarkNonDominatedSort measures NSGA-II's sorting on a generation-sized
// population.
func BenchmarkNonDominatedSort(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := make([][]float64, 60)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pareto.NonDominatedSort(pts)
	}
}
