// Command unicoload drives open-loop PPA-evaluation traffic at a ppaserver
// worker or fleet router and reports goodput, shed rate, and latency
// percentiles per offered rate — the tool that proves the fleet sheds load
// under overload instead of queueing unboundedly.
//
// Open loop means arrivals fire on a fixed clock no matter how slow the
// responses are, like independent co-search masters would: a server that
// falls behind faces a growing backlog, not a politely self-throttling
// client. That is exactly the regime where admission control must kick in.
//
// Usage:
//
//	unicoload -target http://localhost:8080 -rates 50,200,800 -duration 10s
//
// The request pool is generated from -seed, so two invocations offer the
// identical workload. Each sweep step prints one report line; with -slo-p99
// and -slo-goodput set, any step violating either fails the process, so CI
// can gate on "shedding keeps the served requests fast".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"unico/internal/dist"
	"unico/internal/disttrace"
	"unico/internal/hw"
	"unico/internal/mapping"
	"unico/internal/runid"
	"unico/internal/telemetry"
	"unico/internal/workload"
)

// latencyBuckets spans sub-millisecond cache hits to multi-second overload
// queueing.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

func main() {
	target := flag.String("target", "", "base URL of the ppaserver worker or fleet router (required)")
	rates := flag.String("rates", "50", "comma-separated offered rates to sweep, requests/second")
	duration := flag.Duration("duration", 10*time.Second, "how long to offer each rate")
	runs := flag.Int("runs", 4, "distinct synthetic run IDs issuing traffic (exercises per-client fair queuing)")
	pool := flag.Int("pool", 64, "distinct requests in the generated pool (smaller = hotter shard caches)")
	seed := flag.Int64("seed", 1, "request-pool and arrival-jitter seed (same seed = identical offered workload)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	sloP99 := flag.Duration("slo-p99", 0, "fail if served-request p99 latency exceeds this at any rate (0 = off)")
	sloGoodput := flag.Float64("slo-goodput", 0, "fail if served/offered falls below this fraction at any rate after subtracting sheds (0 = off)")
	spanLog := flag.String("span-log", "", "record one distributed-trace client span per fired request as JSONL to this file; analyze with unicotrace")
	flag.Parse()

	if *target == "" {
		fmt.Fprintln(os.Stderr, "unicoload: -target is required")
		os.Exit(2)
	}
	if *spanLog != "" {
		rec, err := disttrace.NewRecorder(*spanLog, "loadgen")
		if err != nil {
			fmt.Fprintln(os.Stderr, "unicoload:", err)
			os.Exit(2)
		}
		disttrace.Enable(rec)
		defer rec.Close()
	}
	var rateList []float64
	for _, f := range strings.Split(*rates, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "unicoload: bad rate %q\n", f)
			os.Exit(2)
		}
		rateList = append(rateList, v)
	}

	reqs := requestPool(*seed, *pool)
	client := &http.Client{Timeout: *timeout}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("target=%s pool=%d runs=%d duration=%s seed=%d\n",
		*target, len(reqs), *runs, *duration, *seed)
	fmt.Println("rate_rps offered served shed errors goodput p50_ms p95_ms p99_ms")

	violations := 0
	var lastGoodput float64
	monotone := true
	for i, rate := range rateList {
		if ctx.Err() != nil {
			break
		}
		rep := offer(ctx, client, *target, reqs, rate, *duration, *runs, *seed+int64(i))
		fmt.Printf("%8.0f %7d %6d %4d %6d %7.3f %6.1f %6.1f %6.1f\n",
			rate, rep.offered, rep.served, rep.shed, rep.errors, rep.goodput(),
			rep.p(0.50)*1000, rep.p(0.95)*1000, rep.p(0.99)*1000)
		if *sloP99 > 0 && rep.served > 0 && rep.p(0.99) > sloP99.Seconds() {
			fmt.Fprintf(os.Stderr, "unicoload: SLO violation at %.0f rps: p99 %.1f ms > %s\n",
				rate, rep.p(0.99)*1000, *sloP99)
			violations++
		}
		if *sloGoodput > 0 && rep.goodput() < *sloGoodput {
			fmt.Fprintf(os.Stderr, "unicoload: SLO violation at %.0f rps: goodput %.3f < %.3f\n",
				rate, rep.goodput(), *sloGoodput)
			violations++
		}
		if i > 0 && float64(rep.served) < lastGoodput*0.5 {
			monotone = false
		}
		lastGoodput = float64(rep.served)
	}
	if !monotone {
		fmt.Fprintln(os.Stderr, "unicoload: served throughput collapsed under overload (goodput not monotone) — admission control is not shedding")
		violations++
	}
	if violations > 0 {
		os.Exit(1)
	}
}

// report accumulates one sweep step's outcome in a private telemetry
// registry, so latency percentiles come from the same histogram
// implementation the servers export.
type report struct {
	offered, served, shed, errors int64
	latency                       *telemetry.Histogram
}

// goodput is the fraction of offered requests that were served; sheds are
// explicit rejections, so they count against goodput but not as errors.
func (r *report) goodput() float64 {
	if r.offered == 0 {
		return 0
	}
	return float64(r.served) / float64(r.offered)
}

func (r *report) p(q float64) float64 { return r.latency.Quantile(q) }

// offer fires requests at the target on a fixed open-loop clock for the
// given duration and collects the outcomes.
func offer(ctx context.Context, client *http.Client, target string, reqs [][]byte, rate float64, d time.Duration, runs int, seed int64) *report {
	reg := telemetry.NewRegistry()
	rep := &report{
		latency: reg.Histogram("unico_loadgen_request_seconds",
			"Latency of served load-generator requests.", latencyBuckets, nil),
	}
	var offered, served, shed, errs atomic.Int64
	rng := rand.New(rand.NewSource(seed))
	interval := time.Duration(float64(time.Second) / rate)
	//unicolint:allow detclock a load generator's open-loop arrival clock is real time by definition
	deadline := time.NewTimer(d)
	defer deadline.Stop()
	//unicolint:allow detclock a load generator's open-loop arrival clock is real time by definition
	tick := time.NewTicker(interval)
	defer tick.Stop()

	var wg sync.WaitGroup
	n := 0
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-deadline.C:
			break loop
		case <-tick.C:
			body := reqs[rng.Intn(len(reqs))]
			run := fmt.Sprintf("load-%d", n%runs)
			n++
			offered.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				//unicolint:allow detclock request latency is measured against the real clock by definition
				start := time.Now()
				status, err := fire(ctx, client, target, body, run)
				switch {
				case err != nil:
					errs.Add(1)
				case status == http.StatusOK:
					served.Add(1)
					//unicolint:allow detclock request latency is measured against the real clock by definition
					rep.latency.Observe(time.Since(start).Seconds())
				case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
					shed.Add(1)
				default:
					errs.Add(1)
				}
			}()
		}
	}
	wg.Wait()
	rep.offered, rep.served, rep.shed, rep.errors =
		offered.Load(), served.Load(), shed.Load(), errs.Load()
	return rep
}

// fire issues one PPA evaluation and reports the status code. With tracing
// on, each request is a root "client" span in its synthetic run's trace, so
// a load sweep's span log shows router queue/forward time per request.
func fire(ctx context.Context, client *http.Client, target string, body []byte, run string) (status int, err error) {
	span := disttrace.StartSpan(run, disttrace.SpanContext{}, "client", "/v1/ppa")
	defer func() {
		switch {
		case err != nil:
			span.End("error", nil)
		case status == http.StatusOK:
			span.End("ok", nil)
		default:
			span.End("shed", map[string]string{"status": strconv.Itoa(status)})
		}
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/ppa", strings.NewReader(string(body)))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(runid.Header, run)
	disttrace.Inject(req.Header, span.Context())
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	for {
		if _, err := resp.Body.Read(buf); err != nil {
			break
		}
	}
	return resp.StatusCode, nil
}

// requestPool generates n distinct, valid spatial PPA requests from the
// seed: varied hardware points and layer shapes over the same canonical
// encoding the servers cache on, so repeated picks hit shard caches the
// way a real co-search's re-evaluations do.
func requestPool(seed int64, n int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	pes := []int{2, 4, 8, 16}
	out := make([][]byte, 0, n)
	seen := map[string]bool{}
	for len(out) < n {
		l := workload.Conv(
			fmt.Sprintf("load-c%d", len(out)),
			8*(1+rng.Intn(8)), // K
			4*(1+rng.Intn(8)), // C
			7*(1+rng.Intn(4)), // Y
			7*(1+rng.Intn(4)), // X
			3, 3, 1, 1,
		)
		cfg := hw.Spatial{
			PEX:      pes[rng.Intn(len(pes))],
			PEY:      pes[rng.Intn(len(pes))],
			L1Bytes:  1024 * (1 + rng.Intn(8)),
			L2KB:     128 * (1 + rng.Intn(8)),
			NoCBW:    64 * (1 + rng.Intn(4)),
			Dataflow: hw.Dataflow(rng.Intn(2)),
		}
		m := mapping.Spatial{TK: 1, TC: 1, TY: 1, TX: 1, TR: 1, TS: 1,
			SpatX: mapping.DimK, SpatY: mapping.DimY}.Canon(l)
		req := dist.PPARequest{Platform: "spatial", SpatialHW: &cfg, SpatialMapping: &m, Layer: l}
		b, err := json.Marshal(req)
		if err != nil {
			continue
		}
		if seen[string(b)] {
			continue
		}
		seen[string(b)] = true
		out = append(out, b)
	}
	// Deterministic order regardless of map iteration anywhere above.
	sort.Slice(out, func(i, j int) bool { return string(out[i]) < string(out[j]) })
	return out
}
