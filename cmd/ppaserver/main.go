// Command ppaserver runs a worker node of the distributed deployment
// (paper Fig. 6): a standalone REST service exposing PPA estimation and
// hosting resumable software-mapping search jobs.
//
// Usage:
//
//	ppaserver -addr :8080
//
// Endpoints:
//
//	POST /v1/ppa           evaluate one (hardware, mapping, layer) triple
//	POST /v1/jobs          create a mapping-search job
//	POST /v1/jobs/advance  spend budget on a job
//	GET  /v1/healthz       liveness probe
package main

import (
	"flag"
	"log"
	"net/http"

	"unico/internal/dist"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := dist.NewServer()
	log.Printf("ppaserver: listening on %s", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatalf("ppaserver: %v", err)
	}
}
