// Command ppaserver runs a worker node of the distributed deployment
// (paper Fig. 6): a standalone REST service exposing PPA estimation and
// hosting resumable software-mapping search jobs.
//
// Usage:
//
//	ppaserver -addr :8080
//
// Endpoints:
//
//	POST   /v1/ppa           evaluate one (hardware, mapping, layer) triple
//	POST   /v1/jobs          create a mapping-search job
//	POST   /v1/jobs/advance  spend budget on a job
//	DELETE /v1/jobs/{id}     release a finished job
//	GET    /v1/healthz       liveness probe
//	GET    /metrics          Prometheus text-format metrics
//	GET    /debug/vars       expvar JSON
//	GET    /debug/pprof/     runtime profiles
//
// The server drains in-flight requests on SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"unico/internal/dist"
	"unico/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second,
		"how long to drain in-flight requests on SIGINT/SIGTERM")
	flag.Parse()

	mux := http.NewServeMux()
	mux.Handle("/", dist.NewServer().Handler())
	debug := telemetry.DebugMux(telemetry.DefaultRegistry)
	mux.Handle("GET /metrics", debug)
	mux.Handle("GET /debug/", debug)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("ppaserver: listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("ppaserver: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("ppaserver: shutdown signal received, draining for up to %s", *shutdownGrace)
		shCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("ppaserver: forced shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("ppaserver: %v", err)
		}
		log.Printf("ppaserver: stopped")
	}
}
