// Command ppaserver runs a worker node of the distributed deployment
// (paper Fig. 6): a standalone REST service exposing PPA estimation and
// hosting resumable software-mapping search jobs.
//
// Usage:
//
//	ppaserver -addr :8080
//
// With -shards it instead runs as a fleet router (internal/fleet): the
// same API surface, but every request is consistent-hashed onto one of the
// named ppaserver shards with per-shard admission control, load shedding
// (429/503 + Retry-After), health-checked membership, and deterministic
// job replay when a shard dies mid-search:
//
//	ppaserver -addr :8080 -shards http://h1:9301,http://h2:9301,http://h3:9301
//
// Endpoints:
//
//	POST   /v1/ppa           evaluate one (hardware, mapping, layer) triple
//	POST   /v1/jobs          create a mapping-search job
//	POST   /v1/jobs/advance  spend budget on a job
//	DELETE /v1/jobs/{id}     release a finished job
//	GET    /v1/healthz       liveness probe ("ok" or "draining")
//	POST   /v1/drain         stop accepting new work, finish in-flight jobs
//	POST   /v1/undrain       resume accepting new work
//	GET    /metrics          Prometheus text-format metrics
//	GET    /debug/vars       expvar JSON
//	GET    /debug/pprof/     runtime profiles
//	GET    /debug/unico/phases   phase-attribution breakdown (text or ?format=json)
//	GET    /debug/unico/capture  write a pprof profile to -pprof-dir (?profile=cpu|heap)
//
// With -span-log every request hop is additionally recorded as distributed-
// trace spans (shard + engine spans here; queue/forward/replay spans in
// router mode) to a JSONL file, served back per run via GET /v1/spans?run=
// and analyzed with unicotrace.
//
// Router mode adds:
//
//	GET    /v1/fleet/members            per-shard state, queue depth, jobs
//	POST   /v1/fleet/drain?shard=<id>   drain one shard (re-hash new work away)
//	POST   /v1/fleet/undrain?shard=<id> return a drained shard to service
//	GET    /v1/spans?run=<id>           merged span events (router + every shard)
//
// and, with -fleet-metrics:
//
//	GET    /metrics/fleet               every shard's /metrics, aggregated + shard-labeled
//	GET    /debug/unico/fleet           per-shard health timelines (HTML or ?format=json)
//
// Every request is access-logged with the originating client's run ID (the
// X-Unico-Run-ID header internal/dist clients attach), so a worker log line
// is attributable to the exact co-search run that issued it. The server
// drains in-flight requests on SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"unico/internal/buildinfo"
	"unico/internal/camodel"
	"unico/internal/dist"
	"unico/internal/disttrace"
	"unico/internal/evalcache"
	"unico/internal/fleet"
	"unico/internal/logx"
	"unico/internal/maestro"
	"unico/internal/perfprof"
	"unico/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second,
		"how long to drain in-flight requests on SIGINT/SIGTERM")
	useCache := flag.Bool("cache", false,
		"serve repeated PPA evaluations from a content-addressed cache")
	cacheSize := flag.Int("cache-size", 0,
		"evaluation-cache entry bound (0 = default ~1M; implies -cache)")
	cacheFile := flag.String("cache-file", "",
		"warm-start the cache from this JSONL file and save it back on shutdown (implies -cache)")
	checkpointEvery := flag.Duration("checkpoint-every", 0,
		"also save -cache-file periodically at this interval (atomic tmp+rename; 0 = only on shutdown), so a crash loses at most one interval of cache entries")
	logFormat := flag.String("log-format", "text", "log output format: text | json")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	pprofDir := flag.String("pprof-dir", "", "write run-ID-stamped pprof CPU/heap profiles to this directory (enables GET /debug/unico/capture)")
	pprofInterval := flag.Duration("pprof-interval", 0, "capture a heap and CPU profile every interval while serving (requires -pprof-dir)")
	shards := flag.String("shards", "",
		"comma-separated shard base URLs; when set, run as a fleet router over these ppaserver shards instead of evaluating locally")
	shardCapacity := flag.Int("shard-capacity", fleet.DefaultShardCapacity,
		"router: concurrent requests forwarded to one shard before queueing")
	shardQueue := flag.Int("shard-queue", fleet.DefaultShardQueue,
		"router: queued requests per shard beyond -shard-capacity before shedding with 429")
	retryAfter := flag.Duration("retry-after", fleet.DefaultRetryAfter,
		"router: backoff advertised in Retry-After on shed responses")
	failAfter := flag.Int("fail-after", fleet.DefaultFailAfter,
		"router: consecutive failures before a shard is marked down and its keys re-hashed")
	probeInterval := flag.Duration("probe-interval", fleet.DefaultProbeInterval,
		"router: health-probe cadence")
	probeTimeout := flag.Duration("probe-timeout", fleet.DefaultProbeTimeout,
		"router: health-probe timeout")
	forwardTimeout := flag.Duration("forward-timeout", fleet.DefaultForwardTimeout,
		"router: per-forwarded-request timeout; must exceed the longest budget installment")
	virtualNodes := flag.Int("virtual-nodes", fleet.DefaultVirtualNodes,
		"router: hash-ring virtual nodes per shard")
	spanLog := flag.String("span-log", "",
		"record distributed-trace spans (shard/engine, or router queue/forward/replay) as JSONL to this file; analyze with unicotrace")
	fleetMetrics := flag.Bool("fleet-metrics", false,
		"router: serve the aggregated GET /metrics/fleet exposition and the GET /debug/unico/fleet health dashboard")
	flag.Parse()

	logger, err := logx.Setup(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppaserver:", err)
		os.Exit(1)
	}
	buildinfo.Publish()

	if *spanLog != "" {
		proc := "shard"
		if *shards != "" {
			proc = "router"
		}
		rec, err := disttrace.NewRecorder(*spanLog, proc)
		if err != nil {
			logger.Error("span log setup failed", slog.Any("err", err))
			os.Exit(1)
		}
		disttrace.Enable(rec)
		defer rec.Close()
	}

	if *pprofInterval > 0 && *pprofDir == "" {
		logger.Error("-pprof-interval requires -pprof-dir")
		os.Exit(1)
	}
	var capture *perfprof.Capture
	if *pprofDir != "" {
		capture, err = perfprof.NewCapture(*pprofDir)
		if err != nil {
			logger.Error("pprof capture setup failed", slog.Any("err", err))
			os.Exit(1)
		}
	}

	var (
		handler http.Handler
		router  *fleet.Router
		cache   *evalcache.Cache
	)
	if *shards != "" {
		if *useCache || *cacheSize > 0 || *cacheFile != "" {
			logger.Error("-cache/-cache-size/-cache-file apply to shards, not the router; set them on each ppaserver shard")
			os.Exit(1)
		}
		var list []string
		for _, s := range strings.Split(*shards, ",") {
			if s = strings.TrimSpace(s); s != "" {
				list = append(list, strings.TrimRight(s, "/"))
			}
		}
		router, err = fleet.NewRouter(list, fleet.Options{
			ShardCapacity:  *shardCapacity,
			ShardQueue:     *shardQueue,
			RetryAfter:     *retryAfter,
			FailAfter:      *failAfter,
			ProbeInterval:  *probeInterval,
			ProbeTimeout:   *probeTimeout,
			ForwardTimeout: *forwardTimeout,
			VirtualNodes:   *virtualNodes,
		})
		if err != nil {
			logger.Error("router setup failed", slog.Any("err", err))
			os.Exit(1)
		}
		logger.Info("fleet router mode", slog.Int("shards", len(list)))
		handler = router.Handler()
	} else {
		server := dist.NewServer()
		if *useCache || *cacheSize > 0 || *cacheFile != "" {
			cache = evalcache.New(*cacheSize)
			if *cacheFile != "" {
				n, err := cache.LoadFile(*cacheFile)
				if err != nil {
					logger.Error("cache warm-start failed", slog.Any("err", err))
					os.Exit(1)
				}
				logger.Info("warm-started cache", slog.Int("entries", n), slog.String("file", *cacheFile))
			}
			server = dist.NewServerWith(
				evalcache.Spatial{Inner: maestro.Engine{}, Cache: cache},
				evalcache.Ascend{Inner: camodel.Engine{}, Cache: cache},
			)
		}
		handler = server.Handler()
	}

	mux := http.NewServeMux()
	mux.Handle("/", logx.AccessLog(logger, handler))
	debug := telemetry.DebugMux(telemetry.DefaultRegistry)
	mux.Handle("GET /metrics", debug)
	mux.Handle("GET /debug/", debug)
	mux.Handle("GET /debug/unico/phases", perfprof.PhasesHandler())
	if *fleetMetrics {
		if router == nil {
			logger.Error("-fleet-metrics requires router mode (-shards)")
			os.Exit(1)
		}
		mux.Handle("GET /metrics/fleet", router.FleetMetricsHandler())
		mux.Handle("GET /debug/unico/fleet", router.DebugHandler())
	}
	if capture != nil {
		mux.Handle("GET /debug/unico/capture", capture.Handler())
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if router != nil {
		router.Start(ctx)
	}

	if capture != nil && *pprofInterval > 0 {
		go capture.Every(ctx, *pprofInterval, func(err error) {
			logger.Warn("interval pprof capture failed", slog.Any("err", err))
		})
	}

	if cache != nil && *cacheFile != "" && *checkpointEvery > 0 {
		go func() {
			//unicolint:allow detclock real-time periodic cache persistence in the server main, not search state
			tick := time.NewTicker(*checkpointEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := cache.SaveFile(*cacheFile); err != nil {
						logger.Error("periodic cache save failed", slog.Any("err", err))
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", slog.String("addr", *addr))
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Error("server failed", slog.Any("err", err))
		os.Exit(1)
	case <-ctx.Done():
		stop()
		logger.Info("shutdown signal received, draining", slog.Duration("grace", *shutdownGrace))
		shCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			logger.Warn("forced shutdown", slog.Any("err", err))
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("listener error", slog.Any("err", err))
		}
		if cache != nil && *cacheFile != "" {
			if err := cache.SaveFile(*cacheFile); err != nil {
				logger.Error("cache save failed", slog.Any("err", err))
			} else {
				logger.Info("saved cache", slog.Int("entries", cache.Len()), slog.String("file", *cacheFile))
			}
		}
		logger.Info("stopped")
	}
}
