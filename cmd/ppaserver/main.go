// Command ppaserver runs a worker node of the distributed deployment
// (paper Fig. 6): a standalone REST service exposing PPA estimation and
// hosting resumable software-mapping search jobs.
//
// Usage:
//
//	ppaserver -addr :8080
//
// Endpoints:
//
//	POST   /v1/ppa           evaluate one (hardware, mapping, layer) triple
//	POST   /v1/jobs          create a mapping-search job
//	POST   /v1/jobs/advance  spend budget on a job
//	DELETE /v1/jobs/{id}     release a finished job
//	GET    /v1/healthz       liveness probe
//	GET    /metrics          Prometheus text-format metrics
//	GET    /debug/vars       expvar JSON
//	GET    /debug/pprof/     runtime profiles
//
// The server drains in-flight requests on SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"unico/internal/camodel"
	"unico/internal/dist"
	"unico/internal/evalcache"
	"unico/internal/maestro"
	"unico/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second,
		"how long to drain in-flight requests on SIGINT/SIGTERM")
	useCache := flag.Bool("cache", false,
		"serve repeated PPA evaluations from a content-addressed cache")
	cacheSize := flag.Int("cache-size", 0,
		"evaluation-cache entry bound (0 = default ~1M; implies -cache)")
	cacheFile := flag.String("cache-file", "",
		"warm-start the cache from this JSONL file and save it back on shutdown (implies -cache)")
	checkpointEvery := flag.Duration("checkpoint-every", 0,
		"also save -cache-file periodically at this interval (atomic tmp+rename; 0 = only on shutdown), so a crash loses at most one interval of cache entries")
	flag.Parse()

	server := dist.NewServer()
	var cache *evalcache.Cache
	if *useCache || *cacheSize > 0 || *cacheFile != "" {
		cache = evalcache.New(*cacheSize)
		if *cacheFile != "" {
			n, err := cache.LoadFile(*cacheFile)
			if err != nil {
				log.Fatalf("ppaserver: %v", err)
			}
			log.Printf("ppaserver: warm-started cache with %d entries from %s", n, *cacheFile)
		}
		server = dist.NewServerWith(
			evalcache.Spatial{Inner: maestro.Engine{}, Cache: cache},
			evalcache.Ascend{Inner: camodel.Engine{}, Cache: cache},
		)
	}

	mux := http.NewServeMux()
	mux.Handle("/", server.Handler())
	debug := telemetry.DebugMux(telemetry.DefaultRegistry)
	mux.Handle("GET /metrics", debug)
	mux.Handle("GET /debug/", debug)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if cache != nil && *cacheFile != "" && *checkpointEvery > 0 {
		go func() {
			tick := time.NewTicker(*checkpointEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := cache.SaveFile(*cacheFile); err != nil {
						log.Printf("ppaserver: periodic cache save: %v", err)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("ppaserver: listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("ppaserver: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("ppaserver: shutdown signal received, draining for up to %s", *shutdownGrace)
		shCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("ppaserver: forced shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("ppaserver: %v", err)
		}
		if cache != nil && *cacheFile != "" {
			if err := cache.SaveFile(*cacheFile); err != nil {
				log.Printf("ppaserver: %v", err)
			} else {
				log.Printf("ppaserver: saved %d cache entries to %s", cache.Len(), *cacheFile)
			}
		}
		log.Printf("ppaserver: stopped")
	}
}
