// Command unicoreport renders flight-record artifacts (the JSONL files
// written by `unico -flight-record` and `experiments -flight-record`)
// into self-contained HTML reports, and diffs two runs as a CI gate.
//
// Usage:
//
//	unicoreport run.jsonl                    # HTML report to stdout
//	unicoreport -o report.html run.jsonl     # HTML report to a file
//	unicoreport -diff base.jsonl cand.jsonl  # text diff; exit 1 on regression
//	unicoreport -diff -hv-tol 0.05 a b      # tolerate 5% final-hv shortfall
//
// The diff compares the candidate (second file) against the baseline
// (first): per-iteration hypervolume deltas, final-front gains/losses, and
// evaluation-cost movement. The exit status is non-zero when the
// candidate's final hypervolume falls short of the baseline's by more than
// -hv-tol (relative), which makes the command usable as a CI regression
// gate.
//
// Exit codes: 0 success, 1 hypervolume regression (or a report write
// failure), 2 malformed input — unreadable artifact, bad header, zero
// iteration records, or bad usage. Gating scripts can therefore tell "the
// run got worse" (1) apart from "the artifact is unusable" (2).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"unico/internal/flightrec"
)

func main() {
	diff := flag.Bool("diff", false, "compare two runs: unicoreport -diff baseline.jsonl candidate.jsonl")
	hvTol := flag.Float64("hv-tol", 0.0, "with -diff: tolerated relative final-hypervolume shortfall before exiting non-zero")
	out := flag.String("o", "", "write the HTML report to this file instead of stdout")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "unicoreport: -diff needs exactly two run files (baseline, candidate)")
			os.Exit(2)
		}
		a := load(flag.Arg(0))
		b := load(flag.Arg(1))
		r := flightrec.Diff(a, b)
		fmt.Printf("baseline:  %s\ncandidate: %s\n", flag.Arg(0), flag.Arg(1))
		fmt.Print(r.Render())
		if r.Regressed(*hvTol) {
			fmt.Fprintf(os.Stderr, "unicoreport: hypervolume regression: candidate %g < baseline %g (tolerance %g)\n",
				r.FinalHVB, r.FinalHVA, *hvTol)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: unicoreport [-o report.html] run.jsonl")
		fmt.Fprintln(os.Stderr, "       unicoreport -diff [-hv-tol f] baseline.jsonl candidate.jsonl")
		os.Exit(2)
	}
	path := flag.Arg(0)
	d := load(path)
	html := flightrec.ReportHTML(*d, "unico run report — "+filepath.Base(path))
	if *out == "" {
		os.Stdout.Write(html)
		return
	}
	if err := os.WriteFile(*out, html, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "unicoreport:", err)
		os.Exit(1)
	}
}

// load reads one artifact and enforces the gate's input contract: a
// malformed file (bad or missing header) or one with zero recorded
// iterations exits 2 (unusable input, distinct from a regression's exit 1),
// and skipped torn lines are reported.
func load(path string) *flightrec.RunData {
	d, skipped, err := flightrec.Load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unicoreport: %s: %v\n", path, err)
		os.Exit(2)
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "unicoreport: %s: skipped %d malformed line(s)\n", path, skipped)
	}
	if len(d.Iters) == 0 {
		fmt.Fprintf(os.Stderr, "unicoreport: %s: no iteration records\n", path)
		os.Exit(2)
	}
	return d
}
