package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, dir, name string, f File) string {
	t.Helper()
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func baseFile() File {
	return File{
		Schema: Schema,
		Env:    Env{GoVersion: "go1.22", Revision: "abc123"},
		Benchmarks: []Result{
			{Name: "GPFitPredict", Runs: 100, NsPerOp: 1000},
			{Name: "MappingSearchUnit", Runs: 100, NsPerOp: 500},
		},
	}
}

// TestDiffInjectedSlowdownFailsGate is the acceptance check for the
// regression gate: a 2x slowdown on one benchmark must exit non-zero.
func TestDiffInjectedSlowdownFailsGate(t *testing.T) {
	dir := t.TempDir()
	old := baseFile()
	cur := baseFile()
	cur.Benchmarks[0].NsPerOp = 2000 // injected 2x slowdown
	oldP := writeBench(t, dir, "old.json", old)
	curP := writeBench(t, dir, "cur.json", cur)
	if got := diffFiles(oldP, curP, 0.30, os.Stdout, os.Stderr); got != 1 {
		t.Fatalf("2x slowdown at tol 0.30: exit = %d, want 1", got)
	}
	// The same pair passes once the tolerance admits a 2x ratio.
	if got := diffFiles(oldP, curP, 1.5, os.Stdout, os.Stderr); got != 0 {
		t.Fatalf("2x slowdown at tol 1.5: exit = %d, want 0", got)
	}
}

func TestDiffWithinToleranceExitsZero(t *testing.T) {
	dir := t.TempDir()
	old := baseFile()
	cur := baseFile()
	cur.Benchmarks[0].NsPerOp = 1200 // +20% < 30% tolerance
	oldP := writeBench(t, dir, "old.json", old)
	curP := writeBench(t, dir, "cur.json", cur)
	if got := diffFiles(oldP, curP, 0.30, os.Stdout, os.Stderr); got != 0 {
		t.Fatalf("+20%% at tol 0.30: exit = %d, want 0", got)
	}
}

func TestDiffMissingBenchmarkIsRegression(t *testing.T) {
	dir := t.TempDir()
	old := baseFile()
	cur := baseFile()
	cur.Benchmarks = cur.Benchmarks[:1] // MappingSearchUnit disappeared
	oldP := writeBench(t, dir, "old.json", old)
	curP := writeBench(t, dir, "cur.json", cur)
	if got := diffFiles(oldP, curP, 0.30, os.Stdout, os.Stderr); got != 1 {
		t.Fatalf("missing benchmark: exit = %d, want 1", got)
	}
}

func TestDiffMalformedInputsExitTwo(t *testing.T) {
	dir := t.TempDir()
	good := writeBench(t, dir, "good.json", baseFile())

	notJSON := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(notJSON, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	badSchema := baseFile()
	badSchema.Schema = "unico-bench/v99"
	badSchemaP := writeBench(t, dir, "schema.json", badSchema)
	empty := baseFile()
	empty.Benchmarks = nil
	emptyP := writeBench(t, dir, "empty.json", empty)
	disjoint := baseFile()
	disjoint.Benchmarks = []Result{{Name: "SomethingElse", NsPerOp: 1}}
	disjointP := writeBench(t, dir, "disjoint.json", disjoint)

	cases := []struct {
		name     string
		old, cur string
	}{
		{"unparseable old", notJSON, good},
		{"unparseable new", good, notJSON},
		{"missing file", filepath.Join(dir, "absent.json"), good},
		{"wrong schema", badSchemaP, good},
		{"no benchmarks", emptyP, good},
		{"disjoint names", disjointP, good},
	}
	for _, tc := range cases {
		if got := diffFiles(tc.old, tc.cur, 0.30, os.Stdout, os.Stderr); got != 2 {
			t.Errorf("%s: exit = %d, want 2", tc.name, got)
		}
	}
}

// TestRunRecordsBenchAndPhases runs the two fastest canonical benches for a
// single iteration and checks the recorded file has results, an environment
// fingerprint, and a phase breakdown from the instrumented hot paths.
func TestRunRecordsBenchAndPhases(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	code := run([]string{"-run", "^(GPFitPredict|MappingSearchUnit)$",
		"-benchtime", "1x", "-out", out}, os.Stdout, os.Stderr)
	if code != 0 {
		t.Fatalf("run exit = %d, want 0", code)
	}
	f, err := loadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("recorded %d benchmarks, want 2", len(f.Benchmarks))
	}
	for _, r := range f.Benchmarks {
		if r.NsPerOp <= 0 || r.Runs <= 0 {
			t.Errorf("%s: NsPerOp=%v Runs=%d, want positive", r.Name, r.NsPerOp, r.Runs)
		}
	}
	if f.Env.GoVersion == "" || f.Env.Revision == "" || f.Env.NumCPU <= 0 {
		t.Errorf("env fingerprint incomplete: %+v", f.Env)
	}
	var sawGP bool
	for _, p := range f.Phases {
		if p.Path == "gp.fit_auto" && p.Count > 0 {
			sawGP = true
		}
	}
	if !sawGP {
		t.Errorf("phase breakdown missing gp.fit_auto: %+v", f.Phases)
	}
	// A self-diff of the fresh record must pass the gate.
	if got := diffFiles(out, out, 0.30, os.Stdout, os.Stderr); got != 0 {
		t.Fatalf("self-diff exit = %d, want 0", got)
	}
}

func TestListAndBadFlags(t *testing.T) {
	if got := run([]string{"-list"}, os.Stdout, os.Stderr); got != 0 {
		t.Fatalf("-list exit = %d, want 0", got)
	}
	if got := run([]string{"-run", "("}, os.Stdout, os.Stderr); got != 2 {
		t.Fatalf("bad regexp exit = %d, want 2", got)
	}
	if got := run([]string{"-diff", "only-one.json"}, os.Stdout, os.Stderr); got != 2 {
		t.Fatalf("-diff with one arg exit = %d, want 2", got)
	}
}
