// Command unicobench runs the repo's canonical benchmarks
// (internal/benchmarks) and records the result as a schema-versioned
// BENCH_<rev>.json: ns/op, allocs/op, custom metrics, the run's phase
// breakdown (internal/perfprof), and an environment fingerprint. It also
// diffs two such files with a tolerance gate, seeding the in-repo perf
// trajectory every perf PR is judged against.
//
// Usage:
//
//	unicobench [-run regexp] [-out file] [-benchtime 1s]   # run and record
//	unicobench -list                                       # list bench names
//	unicobench -diff [-tol 0.30] OLD.json NEW.json         # tolerance gate
//
// Exit codes (run mode): 0 success, 1 a benchmark failed.
// Exit codes (diff mode): 0 within tolerance, 1 regression (a benchmark
// slowed past tolerance or disappeared), 2 malformed input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"testing"

	"unico/internal/benchmarks"
	"unico/internal/buildinfo"
	"unico/internal/perfprof"
)

// Schema identifies the BENCH_*.json format this binary writes and reads.
const Schema = "unico-bench/v1"

// Env is the environment fingerprint of a bench record: enough to tell
// whether two files are comparable at all.
type Env struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
}

// Result is one benchmark's recorded outcome.
type Result struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// File is the BENCH_*.json payload.
type File struct {
	Schema     string               `json:"schema"`
	Env        Env                  `json:"env"`
	Benchmarks []Result             `json:"benchmarks"`
	Phases     []perfprof.PhaseStat `json:"phases,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without os.Exit, so tests can drive the full CLI.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("unicobench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runRe     = fs.String("run", "", "regexp selecting benchmark names (default: all)")
		out       = fs.String("out", "", "output file (default BENCH_<rev>.json)")
		list      = fs.Bool("list", false, "list canonical benchmark names and exit")
		diff      = fs.Bool("diff", false, "diff mode: compare OLD.json NEW.json with the tolerance gate")
		tol       = fs.Float64("tol", 0.30, "diff tolerance: ns/op may grow by this fraction before failing")
		benchtime = fs.String("benchtime", "", "per-benchmark time or count (e.g. 2s, 10x); empty = testing default")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, c := range benchmarks.All() {
			fmt.Fprintln(stdout, c.Name)
		}
		return 0
	}

	if *diff {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "unicobench: -diff needs exactly two files: OLD.json NEW.json")
			return 2
		}
		return diffFiles(fs.Arg(0), fs.Arg(1), *tol, stdout, stderr)
	}

	var re *regexp.Regexp
	if *runRe != "" {
		var err error
		if re, err = regexp.Compile(*runRe); err != nil {
			fmt.Fprintf(stderr, "unicobench: bad -run regexp: %v\n", err)
			return 2
		}
	}
	if *benchtime != "" {
		// testing.Benchmark honors the package-level -test.benchtime flag,
		// which exists outside a test binary only after testing.Init.
		testing.Init()
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fmt.Fprintf(stderr, "unicobench: bad -benchtime: %v\n", err)
			return 2
		}
	}

	f, failed := runBenches(re, stdout)
	if failed {
		return 1
	}
	path := *out
	if path == "" {
		path = "BENCH_" + f.Env.Revision + ".json"
	}
	if err := writeFile(path, f); err != nil {
		fmt.Fprintf(stderr, "unicobench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s (%d benchmarks, %d phases)\n", path, len(f.Benchmarks), len(f.Phases))
	return 0
}

// runBenches executes the selected canonical benchmarks under a fresh
// profiler and collects results plus the aggregated phase report.
func runBenches(re *regexp.Regexp, stdout *os.File) (File, bool) {
	prof := perfprof.New()
	restore := perfprof.SetActive(prof)
	defer restore()

	f := File{
		Schema: Schema,
		Env: Env{
			GoVersion: buildinfo.GoVersion(),
			Revision:  buildinfo.Revision(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
	}
	failed := false
	for _, c := range benchmarks.All() {
		if re != nil && !re.MatchString(c.Name) {
			continue
		}
		r := testing.Benchmark(c.Fn)
		if r.N == 0 {
			// testing.Benchmark returns a zero result when the bench
			// fails (b.Fatal) — surface it instead of recording garbage.
			fmt.Fprintf(stdout, "FAIL  %s\n", c.Name)
			failed = true
			continue
		}
		res := Result{
			Name:        c.Name,
			Runs:        r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Extra = map[string]float64{}
			keys := make([]string, 0, len(r.Extra))
			for k := range r.Extra {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				res.Extra[k] = r.Extra[k]
			}
		}
		f.Benchmarks = append(f.Benchmarks, res)
		fmt.Fprintf(stdout, "ok    %-40s %12.0f ns/op %8d allocs/op\n", c.Name, res.NsPerOp, res.AllocsPerOp)
	}
	f.Phases = prof.Report()
	return f, failed
}

// writeFile persists the record with an fsync before close, honoring the
// repo's durability rule for artifacts a CI gate depends on.
func writeFile(path string, f File) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := fd.Write(b); err != nil {
		fd.Close()
		return err
	}
	if err := fd.Sync(); err != nil {
		fd.Close()
		return err
	}
	return fd.Close()
}

// loadFile reads and validates a BENCH_*.json; any failure is "malformed
// input" (exit 2 in diff mode).
func loadFile(path string) (File, error) {
	var f File
	b, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(b, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != Schema {
		return f, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, Schema)
	}
	if len(f.Benchmarks) == 0 {
		return f, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	return f, nil
}

// diffFiles gates NEW.json against OLD.json: every benchmark present in
// both must not slow down by more than tol (fractional), and no old
// benchmark may disappear. Exit 0 ok, 1 regression, 2 malformed.
func diffFiles(oldPath, newPath string, tol float64, stdout, stderr *os.File) int {
	oldF, err := loadFile(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "unicobench: %v\n", err)
		return 2
	}
	newF, err := loadFile(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "unicobench: %v\n", err)
		return 2
	}
	byName := map[string]Result{}
	for _, r := range newF.Benchmarks {
		byName[r.Name] = r
	}
	regressed := 0
	compared := 0
	for _, old := range oldF.Benchmarks {
		cur, ok := byName[old.Name]
		if !ok {
			fmt.Fprintf(stdout, "MISSING  %-40s (in %s, absent from %s)\n", old.Name, oldPath, newPath)
			regressed++
			continue
		}
		compared++
		ratio := 0.0
		if old.NsPerOp > 0 {
			ratio = cur.NsPerOp / old.NsPerOp
		}
		verdict := "ok"
		if ratio > 1+tol {
			verdict = "REGRESSED"
			regressed++
		}
		fmt.Fprintf(stdout, "%-9s %-40s %12.0f -> %12.0f ns/op  (%.2fx, tol %.2fx)\n",
			verdict, old.Name, old.NsPerOp, cur.NsPerOp, ratio, 1+tol)
	}
	if compared == 0 {
		fmt.Fprintf(stderr, "unicobench: %s and %s share no benchmarks\n", oldPath, newPath)
		return 2
	}
	if regressed > 0 {
		fmt.Fprintf(stdout, "%d regression(s) past the %.0f%% tolerance\n", regressed, tol*100)
		return 1
	}
	fmt.Fprintf(stdout, "all %d benchmarks within tolerance\n", compared)
	return 0
}
