// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all            # every experiment
//	experiments -run table1         # Table 1 (edge device)
//	experiments -run table2         # Table 2 (cloud device)
//	experiments -run fig7           # hypervolume-vs-cost curves
//	experiments -run fig8           # robustness-indicator study
//	experiments -run fig9           # generalization to unseen DNNs
//	experiments -run fig10          # ablation
//	experiments -run fig11          # Ascend-like case study
//	experiments -scale paper|small  # experiment sizes (default small)
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"unico/internal/buildinfo"
	"unico/internal/disttrace"
	"unico/internal/evalcache"
	"unico/internal/experiments"
	"unico/internal/flightrec"
	"unico/internal/hw"
	"unico/internal/logx"
	"unico/internal/perfprof"
	"unico/internal/runid"
	"unico/internal/telemetry"
)

func main() {
	run := flag.String("run", "all", "experiment id: all,table1,table2,fig7,fig8,fig9,fig10,fig11")
	scale := flag.String("scale", "small", "paper | small")
	seed := flag.Int64("seed", 0, "override the scale's seed (0 keeps default)")
	searchWorkers := flag.Int("search-workers", 0, "parallel acquisition workers inside each suggestion step (0 keeps the engine default; results identical at every setting)")
	traceFile := flag.String("trace", "", "write search events of every run as Chrome-trace JSONL to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running")
	progress := flag.Bool("progress", false, "print per-iteration convergence of every run to stderr")
	useCache := flag.Bool("cache", false, "serve repeated PPA evaluations from a content-addressed cache shared by all runs")
	cacheSize := flag.Int("cache-size", 0, "evaluation-cache entry bound (0 = default ~1M; implies -cache)")
	cacheFile := flag.String("cache-file", "", "warm-start the cache from this JSONL file and save it back on exit (implies -cache)")
	checkpointDir := flag.String("checkpoint-dir", "", "write per-run crash-safe checkpoints into this directory")
	resume := flag.Bool("resume", false, "continue runs from existing checkpoints in -checkpoint-dir")
	flightDir := flag.String("flight-record", "", "write one flight-record artifact per co-search run (<run>.run.jsonl) into this directory; view with unicoreport")
	logFormat := flag.String("log-format", "text", "log output format: text | json")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	pprofDir := flag.String("pprof-dir", "", "write run-ID-stamped pprof CPU/heap profiles to this directory (enables GET /debug/unico/capture when -metrics-addr is set)")
	pprofInterval := flag.Duration("pprof-interval", 0, "capture a heap and CPU profile every interval for the sweep's duration (requires -pprof-dir)")
	spanLog := flag.String("span-log", "", "record distributed-trace spans of every run as JSONL to this file; analyze with unicotrace")
	flag.Parse()

	logger, err := logx.Setup(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	// One sweep = one correlation ID across all its runs and dist requests.
	runid.Set(runid.New())
	buildinfo.Publish()

	if *spanLog != "" {
		rec, err := disttrace.NewRecorder(*spanLog, "client")
		if err != nil {
			logger.Error("span log setup failed", slog.Any("err", err))
			os.Exit(1)
		}
		disttrace.Enable(rec)
		defer rec.Close()
	}

	// SIGINT/SIGTERM cancel in-flight co-searches; with -checkpoint-dir set,
	// each interrupted run leaves a resumable checkpoint behind.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *pprofInterval > 0 && *pprofDir == "" {
		logger.Error("-pprof-interval requires -pprof-dir")
		os.Exit(1)
	}
	var capture *perfprof.Capture
	if *pprofDir != "" {
		capture, err = perfprof.NewCapture(*pprofDir)
		if err != nil {
			logger.Error("pprof capture setup failed", slog.Any("err", err))
			os.Exit(1)
		}
		if *pprofInterval > 0 {
			go capture.Every(ctx, *pprofInterval, func(err error) {
				logger.Warn("interval pprof capture failed", slog.Any("err", err))
			})
		}
	}

	if *metricsAddr != "" {
		flightrec.SetLive(flightrec.NewLive())
		debug := telemetry.NewDebugServer(*metricsAddr, nil)
		debug.Mux().Handle("GET /debug/unico", flightrec.DashboardHandler(flightrec.ActiveLive()))
		debug.Mux().Handle("GET /debug/unico/phases", perfprof.PhasesHandler())
		if capture != nil {
			debug.Mux().Handle("GET /debug/unico/capture", capture.Handler())
		}
		debug.Start(func(err error) {
			logger.Error("metrics server failed", slog.Any("err", err))
		})
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = debug.Shutdown(sctx)
		}()
	}
	if *useCache || *cacheSize > 0 || *cacheFile != "" {
		cache := evalcache.New(*cacheSize)
		if *cacheFile != "" {
			n, err := cache.LoadFile(*cacheFile)
			if err != nil {
				logger.Error("cache warm-start failed", slog.Any("err", err))
				os.Exit(1)
			}
			logger.Info("warm-started cache", slog.Int("entries", n), slog.String("file", *cacheFile))
			defer func() {
				if err := cache.SaveFile(*cacheFile); err != nil {
					logger.Error("cache save failed", slog.Any("err", err))
				}
			}()
		}
		// The runners build their platforms deep inside; the process-wide
		// cache hook reaches them all (mirroring the default-tracer pattern).
		evalcache.SetProcess(cache)
		defer func() {
			st := cache.Stats()
			logger.Info("evaluation cache totals",
				slog.Uint64("hits", st.Hits), slog.Uint64("misses", st.Misses))
		}()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			logger.Error("trace file setup failed", slog.Any("err", err))
			os.Exit(1)
		}
		defer f.Close()
		tr := telemetry.NewTracer(f)
		defer tr.Flush()
		// The runners construct their own core.Options deep inside; the
		// process-wide fallback tracer reaches them all.
		telemetry.SetDefaultTracer(tr)
	}
	if *progress {
		telemetry.SetDefaultProgress(func(p telemetry.SearchProgress) {
			fmt.Fprintf(os.Stderr, "iter %3d  sim %7.2f h  hv %.4g  front %d  evals %d\n",
				p.Iter, p.SimHours, p.Hypervolume, p.FrontSize, p.Evals)
		})
	}

	var s experiments.Scale
	switch *scale {
	case "paper":
		s = experiments.PaperScale()
	case "small":
		s = experiments.SmallScale()
	default:
		logger.Error("unknown scale", slog.String("scale", *scale))
		os.Exit(1)
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	s.SearchWorkers = *searchWorkers
	s.Context = ctx
	s.Resume = *resume
	if *checkpointDir != "" {
		if err := os.MkdirAll(*checkpointDir, 0o755); err != nil {
			logger.Error("checkpoint dir setup failed", slog.Any("err", err))
			os.Exit(1)
		}
		s.CheckpointDir = *checkpointDir
	}
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			logger.Error("flight-record dir setup failed", slog.Any("err", err))
			os.Exit(1)
		}
		s.FlightDir = *flightDir
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	ran := false

	if all || want["table1"] {
		experiments.RunEdgeCloudTable(os.Stdout, hw.Edge, s)
		ran = true
	}
	if all || want["table2"] {
		experiments.RunEdgeCloudTable(os.Stdout, hw.Cloud, s)
		ran = true
	}
	if all || want["fig7"] {
		experiments.RunHypervolumeCurves(os.Stdout, hw.Edge, s)
		experiments.RunHypervolumeCurves(os.Stdout, hw.Cloud, s)
		ran = true
	}
	if all || want["fig8"] {
		experiments.RunRobustnessIndicator(os.Stdout, s)
		ran = true
	}
	if all || want["fig9"] {
		experiments.RunGeneralization(os.Stdout, s)
		ran = true
	}
	if all || want["fig10"] {
		experiments.RunAblation(os.Stdout, s)
		ran = true
	}
	if all || want["fig11"] {
		experiments.RunAscend(os.Stdout, s)
		ran = true
	}
	if !ran {
		logger.Error("nothing matched", slog.String("run", *run))
		os.Exit(1)
	}
}
