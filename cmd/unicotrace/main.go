// Command unicotrace reconstructs distributed traces from span logs (the
// JSONL files written with -span-log, or a router's merged /v1/spans
// output), renders an HTML waterfall, and gates CI on trace health.
//
// Usage:
//
//	unicotrace spans.jsonl                        # text summary to stdout
//	unicotrace -o trace.html client.jsonl shard1.jsonl shard2.jsonl
//	unicotrace -run 4f2a... -summary sum.json *.jsonl
//	unicotrace -gate -max-orphans 0 -queue-p99 500ms merged.jsonl
//
// Inputs are merged (duplicate events from overlapping collections are
// dropped), grouped into traces by run ID, and analyzed: span tree, orphan
// and incomplete spans, per-eval chain completeness (every ok eval must
// reach an engine span), self-time phase breakdown, queue-wait
// percentiles, and per-eval critical paths.
//
// With -gate the exit status reports trace health: orphan spans beyond
// -max-orphans, any ok eval without a complete client→…→engine chain, or a
// queue-wait p99 over -queue-p99 fail the gate. Exit codes: 0 healthy,
// 1 gate violation, 2 malformed input — no readable events, an unknown
// -run, or bad usage — mirroring unicoreport so scripts can tell "the
// fleet misbehaved" (1) from "the spans are unusable" (2).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"unico/internal/disttrace"
)

func main() {
	run := flag.String("run", "", "trace (run ID) to analyze; defaults to the only trace in the input")
	out := flag.String("o", "", "write the HTML waterfall to this file")
	summaryOut := flag.String("summary", "", "write the machine-readable JSON summary to this file")
	gate := flag.Bool("gate", false, "exit 1 when the trace fails the health gates")
	maxOrphans := flag.Int("max-orphans", 0, "with -gate: tolerated orphan spans")
	queueP99 := flag.Duration("queue-p99", 0, "with -gate: fail when queue-wait p99 exceeds this (0 disables)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: unicotrace [-run id] [-o trace.html] [-summary sum.json] [-gate [-max-orphans n] [-queue-p99 d]] spans.jsonl...")
		os.Exit(2)
	}
	events, skipped, err := disttrace.LoadFiles(flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unicotrace: %v\n", err)
		os.Exit(2)
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "unicotrace: skipped %d malformed/duplicate lines\n", skipped)
	}
	traces := disttrace.BuildTraces(events)
	if len(traces) == 0 {
		fmt.Fprintln(os.Stderr, "unicotrace: no span events in input")
		os.Exit(2)
	}
	tr := pick(traces, *run)
	if tr == nil {
		fmt.Fprintf(os.Stderr, "unicotrace: run %q not in input (have: %s)\n", *run, traceIDs(traces))
		os.Exit(2)
	}
	a := disttrace.Analyze(tr)

	if *out != "" {
		if err := os.WriteFile(*out, disttrace.WaterfallHTML(tr, a), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "unicotrace: write waterfall: %v\n", err)
			os.Exit(2)
		}
	}
	if *summaryOut != "" {
		data, err := json.MarshalIndent(a, "", "  ")
		if err == nil {
			err = os.WriteFile(*summaryOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "unicotrace: write summary: %v\n", err)
			os.Exit(2)
		}
	}
	printSummary(a)

	if *gate {
		failed := false
		if a.Summary.Orphans > *maxOrphans {
			fmt.Fprintf(os.Stderr, "unicotrace: GATE: %d orphan spans (max %d)\n", a.Summary.Orphans, *maxOrphans)
			failed = true
		}
		if a.Summary.IncompleteChains > 0 {
			fmt.Fprintf(os.Stderr, "unicotrace: GATE: %d ok evals without a complete client→…→engine chain\n", a.Summary.IncompleteChains)
			failed = true
		}
		if *queueP99 > 0 && a.Summary.QueueWaitP99 > queueP99.Seconds() {
			fmt.Fprintf(os.Stderr, "unicotrace: GATE: queue-wait p99 %.6fs over budget %v\n", a.Summary.QueueWaitP99, *queueP99)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("gate: ok")
	}
}

func pick(traces []*disttrace.Trace, run string) *disttrace.Trace {
	if run == "" {
		if len(traces) == 1 {
			return traces[0]
		}
		// Several traces and no -run: pick the one with the most spans (the
		// co-search run dwarfs any stray health-probe noise), and say so.
		best := traces[0]
		for _, t := range traces[1:] {
			if len(t.Spans) > len(best.Spans) {
				best = t
			}
		}
		fmt.Fprintf(os.Stderr, "unicotrace: %d traces in input, analyzing %s (largest); select with -run\n",
			len(traces), best.ID)
		return best
	}
	for _, t := range traces {
		if t.ID == run {
			return t
		}
	}
	return nil
}

func traceIDs(traces []*disttrace.Trace) string {
	s := ""
	for i, t := range traces {
		if i > 0 {
			s += ", "
		}
		s += t.ID
	}
	return s
}

func printSummary(a *disttrace.Analysis) {
	s := a.Summary
	fmt.Printf("trace %s: %d spans, %d orphans, %d incomplete spans\n", s.Trace, s.Spans, s.Orphans, s.IncompleteSpans)
	fmt.Printf("evals: %d (%d complete chains, %d incomplete)\n", s.Evals, s.CompleteChains, s.IncompleteChains)
	fmt.Printf("queue wait: p50 %.6fs, p99 %.6fs\n", s.QueueWaitP50, s.QueueWaitP99)
	kinds := make([]string, 0, len(s.PhaseSeconds))
	for k := range s.PhaseSeconds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Println("phase breakdown (self time):")
	for _, k := range kinds {
		fmt.Printf("  %-10s %4d spans  %10.6fs\n", k, s.SpansByKind[k], s.PhaseSeconds[k])
	}
	// The slowest evals' critical paths tell where latency went.
	evals := append([]disttrace.EvalChain(nil), a.Evals...)
	sort.Slice(evals, func(i, j int) bool { return evals[i].Seconds > evals[j].Seconds })
	n := len(evals)
	if n > 5 {
		n = 5
	}
	if n > 0 {
		fmt.Println("slowest evals:")
	}
	for _, ec := range evals[:n] {
		fmt.Printf("  %s %s %.6fs:", ec.Name, ec.Status, ec.Seconds)
		for _, step := range ec.CriticalPath {
			fmt.Printf(" %s=%s", step.Kind, (time.Duration(step.Seconds * float64(time.Second))).Round(time.Microsecond))
		}
		fmt.Println()
	}
}
