// Command unico runs hardware-software co-optimization from the command
// line.
//
// Usage:
//
//	unico -networks MobileNet,ResNet -scenario edge -method unico \
//	      -batch 30 -iters 10 -bmax 300 -seed 1
//
// The tool prints the feasible Pareto front and the min-Euclidean-distance
// representative design, along with the simulated search cost.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"unico"
	"unico/internal/buildinfo"
	"unico/internal/disttrace"
	"unico/internal/flightrec"
	"unico/internal/logx"
	"unico/internal/perfprof"
	"unico/internal/runid"
	"unico/internal/telemetry"
)

func main() {
	var (
		networks      = flag.String("networks", "MobileNet", "comma-separated zoo network names")
		scenario      = flag.String("scenario", "edge", "edge | cloud | ascend")
		method        = flag.String("method", "unico", "unico | hasco | mobohb | nsgaii")
		batch         = flag.Int("batch", 30, "hardware batch size N")
		iters         = flag.Int("iters", 10, "outer iterations")
		bmax          = flag.Int("bmax", 300, "software-mapping budget b_max")
		workers       = flag.Int("workers", 8, "parallel mapping-search workers")
		searchWorkers = flag.Int("search-workers", 8, "parallel acquisition workers inside each suggestion step (results identical at every setting)")
		seed          = flag.Int64("seed", 1, "random seed")
		noR           = flag.Bool("no-robustness", false, "drop the sensitivity objective R")
		list          = flag.Bool("list", false, "list available networks and exit")
		jsonNets      = flag.String("workload-json", "", "comma-separated JSON workload files (overrides -networks)")

		traceFile    = flag.String("trace", "", "write search events as Chrome-trace JSONL to this file")
		spanLog      = flag.String("span-log", "", "record distributed-trace spans (client, attempt, backoff per remote call) as JSONL to this file; analyze with unicotrace")
		metricsAddr  = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof and the /debug/unico dashboard on this address while running")
		progress     = flag.Bool("progress", false, "print per-iteration convergence to stderr")
		flightRecord = flag.String("flight-record", "", "write the run's flight record (header, per-iteration convergence, summary) as JSONL to this file; view with unicoreport")
		logFormat    = flag.String("log-format", "text", "log output format: text | json")
		logLevel     = flag.String("log-level", "info", "log level: debug | info | warn | error")

		pprofDir      = flag.String("pprof-dir", "", "write run-ID-stamped pprof CPU/heap profiles to this directory (enables GET /debug/unico/capture when -metrics-addr is set)")
		pprofInterval = flag.Duration("pprof-interval", 0, "capture a heap and CPU profile every interval for the run's duration (requires -pprof-dir)")

		checkpointFile  = flag.String("checkpoint", "", "crash-safe checkpoint file: journal every iteration, snapshot periodically, final state on SIGINT/SIGTERM")
		checkpointEvery = flag.Int("checkpoint-every", 0, "snapshot cadence in iterations (0 = default 10)")
		resume          = flag.Bool("resume", false, "continue from the -checkpoint file if it exists (fresh start otherwise)")

		useCache  = flag.Bool("cache", false, "serve repeated PPA evaluations from a content-addressed cache")
		cacheSize = flag.Int("cache-size", 0, "evaluation-cache entry bound (0 = default ~1M; implies -cache)")
		cacheFile = flag.String("cache-file", "", "warm-start the cache from this JSONL file and save it back on exit (implies -cache)")

		remoteWorkers  = flag.String("remote-workers", "", "comma-separated ppaserver URLs; run mapping searches remotely (edge/cloud scenarios)")
		requestTimeout = flag.Duration("request-timeout", 0, "per-request timeout against remote workers (0 = 30s default)")
		retries        = flag.Int("retries", 0, "retries for idempotent remote requests (exponential backoff with jitter)")
		retryBackoff   = flag.Duration("retry-backoff", 0, "initial delay between remote retries (0 = 50ms default)")
		maxBackoff     = flag.Duration("max-backoff", 0, "cap on the remote retry delay, including server Retry-After hints (0 = 2s default)")
	)
	flag.Parse()

	logger, err := logx.Setup(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "unico:", err)
		os.Exit(1)
	}
	// One run per invocation: generate the correlation ID up front so every
	// log record — and every dist request and the flight-record header —
	// carries it from the first line.
	runid.Set(runid.New())
	buildinfo.Publish()

	if *spanLog != "" {
		rec, err := disttrace.NewRecorder(*spanLog, "client")
		if err != nil {
			logger.Error("span log setup failed", slog.Any("err", err))
			os.Exit(1)
		}
		disttrace.Enable(rec)
		defer rec.Close()
	}

	if *pprofInterval > 0 && *pprofDir == "" {
		logger.Error("-pprof-interval requires -pprof-dir")
		os.Exit(1)
	}
	var capture *perfprof.Capture
	if *pprofDir != "" {
		capture, err = perfprof.NewCapture(*pprofDir)
		if err != nil {
			logger.Error("pprof capture setup failed", slog.Any("err", err))
			os.Exit(1)
		}
	}

	var debug *telemetry.DebugServer
	if *metricsAddr != "" {
		flightrec.SetLive(flightrec.NewLive())
		debug = telemetry.NewDebugServer(*metricsAddr, nil)
		debug.Mux().Handle("GET /debug/unico", flightrec.DashboardHandler(flightrec.ActiveLive()))
		debug.Mux().Handle("GET /debug/unico/phases", perfprof.PhasesHandler())
		if capture != nil {
			debug.Mux().Handle("GET /debug/unico/capture", capture.Handler())
		}
		debug.Start(func(err error) {
			logger.Error("metrics server failed", slog.Any("err", err))
		})
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = debug.Shutdown(sctx)
		}()
	}

	if *list {
		for _, n := range unico.Networks() {
			fmt.Println(n)
		}
		return
	}

	nets := strings.Split(*networks, ",")
	var p *unico.Platform
	if *remoteWorkers != "" {
		urls := strings.Split(*remoteWorkers, ",")
		opts := unico.RemoteOptions{
			RequestTimeout: *requestTimeout,
			MaxRetries:     *retries,
			RetryBackoff:   *retryBackoff,
			MaxBackoff:     *maxBackoff,
		}
		switch *scenario {
		case "edge":
			p, err = unico.RemoteOpenSourcePlatform(unico.Edge, urls, opts, nets...)
		case "cloud":
			p, err = unico.RemoteOpenSourcePlatform(unico.Cloud, urls, opts, nets...)
		default:
			err = fmt.Errorf("-remote-workers supports the edge and cloud scenarios, not %q", *scenario)
		}
	} else if *jsonNets != "" {
		files := strings.Split(*jsonNets, ",")
		switch *scenario {
		case "edge":
			p, err = unico.OpenSourcePlatformFromJSON(unico.Edge, files...)
		case "cloud":
			p, err = unico.OpenSourcePlatformFromJSON(unico.Cloud, files...)
		case "ascend":
			p, err = unico.AscendLikePlatformFromJSON(files...)
		default:
			err = fmt.Errorf("unknown scenario %q", *scenario)
		}
	} else {
		switch *scenario {
		case "edge":
			p, err = unico.OpenSourcePlatform(unico.Edge, nets...)
		case "cloud":
			p, err = unico.OpenSourcePlatform(unico.Cloud, nets...)
		case "ascend":
			p, err = unico.AscendLikePlatform(nets...)
		default:
			err = fmt.Errorf("unknown scenario %q", *scenario)
		}
	}
	if err != nil {
		logger.Error("platform setup failed", slog.Any("err", err))
		os.Exit(1)
	}

	var m unico.Method
	switch *method {
	case "unico":
		m = unico.MethodUNICO
	case "hasco":
		m = unico.MethodHASCO
	case "mobohb":
		m = unico.MethodMOBOHB
	case "nsgaii":
		m = unico.MethodNSGAII
	default:
		logger.Error("unknown method", slog.String("method", *method))
		os.Exit(1)
	}

	cfg := unico.Config{
		Method:            m,
		BatchSize:         *batch,
		Iterations:        *iters,
		BudgetMax:         *bmax,
		Workers:           *workers,
		SearchWorkers:     *searchWorkers,
		Seed:              *seed,
		DisableRobustness: *noR,
		Cache:             *useCache,
		CacheSize:         *cacheSize,
		CacheFile:         *cacheFile,
		CheckpointFile:    *checkpointFile,
		CheckpointEvery:   *checkpointEvery,
		Resume:            *resume,
		FlightRecordFile:  *flightRecord,
		RunID:             runid.Current(),
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			logger.Error("trace file setup failed", slog.Any("err", err))
			os.Exit(1)
		}
		defer f.Close()
		cfg.TraceWriter = f
	}
	if *progress {
		cfg.Progress = func(p unico.IterationProgress) {
			uul := "inf"
			if !math.IsInf(p.UUL, 0) {
				uul = fmt.Sprintf("%.4f", p.UUL)
			}
			fmt.Fprintf(os.Stderr, "iter %3d  sim %7.2f h  hv %.4g  uul %s  front %d  evals %d\n",
				p.Iter, p.SimHours, p.Hypervolume, uul, p.FrontSize, p.Evaluations)
		}
	}

	// SIGINT/SIGTERM cancel the run: in-flight work aborts, the current
	// partial batch is discarded, a final checkpoint is written (when
	// -checkpoint is set), and the partial result prints before exit. A
	// second signal kills the process immediately (stop() restores default
	// signal handling).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if capture != nil && *pprofInterval > 0 {
		go capture.Every(ctx, *pprofInterval, func(err error) {
			logger.Warn("interval pprof capture failed", slog.Any("err", err))
		})
	}

	logger.Info("starting co-search",
		slog.String("method", m.String()), slog.String("networks", *networks),
		slog.String("scenario", *scenario), slog.Int64("seed", *seed))
	res, err := unico.OptimizeContext(ctx, p, cfg)
	if err != nil {
		if res == nil {
			logger.Error("co-search failed", slog.Any("err", err))
			os.Exit(1)
		}
		// The search finished; only a post-run step (cache save) or a
		// recorder sink (checkpoint, flight record) failed.
		logger.Warn("post-run step failed", slog.Any("err", err))
	}
	if ctx.Err() != nil {
		if *checkpointFile != "" {
			logger.Warn("interrupted; checkpoint written — rerun with -resume to continue",
				slog.String("checkpoint", *checkpointFile))
		} else {
			logger.Warn("interrupted; partial result follows")
		}
	}

	fmt.Printf("method=%s networks=%s scenario=%s\n", m, *networks, *scenario)
	fmt.Printf("simulated search cost: %.2f h (%d budget units)\n", res.SimulatedHours, res.Evaluations)
	if res.CacheHits+res.CacheMisses > 0 {
		fmt.Printf("evaluation cache: %d hits / %d misses (%.1f%% hit rate)\n",
			res.CacheHits, res.CacheMisses,
			100*float64(res.CacheHits)/float64(res.CacheHits+res.CacheMisses))
	}
	if *remoteWorkers != "" {
		// Zero unless a worker failure was truly unrecoverable; chaos CI
		// greps this line to prove no evaluation was silently dropped.
		fmt.Printf("remote evals lost: %d\n", telemetry.DistLostEvals().Value())
	}
	fmt.Printf("Pareto front (%d designs):\n", len(res.Front))
	for _, d := range res.Front {
		fmt.Printf("  %-52s L=%.6g ms  P=%.5g mW  A=%.3g mm²  R=%.3f\n",
			d.HW, d.LatencyMs, d.PowerMW, d.AreaMM2, d.Sensitivity)
	}
	if res.Best.HW != "" {
		fmt.Printf("representative (min-Euclid): %s\n", res.Best.HW)
	} else {
		fmt.Println("no feasible design found — increase -iters or relax constraints")
	}
}
