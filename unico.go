// Package unico is a from-scratch Go implementation of UNICO — Unified
// Hardware-Software Co-Optimization for Robust Neural Network Acceleration
// (MICRO 2023) — together with every substrate its evaluation depends on:
// the spatial-accelerator analytical cost model, an Ascend-like cycle-level
// simulator, software-mapping search tools, multi-objective Bayesian
// optimization with the high-fidelity surrogate update, modified successive
// halving, the hardware robustness metric R, and the HASCO-like, NSGA-II
// and MOBOHB baselines.
//
// This package is the facade: it exposes platform constructors, a single
// Optimize entry point with method presets, and design/result types that
// hide the internal machinery. Power users can drop to the internal
// packages (importable within this module) for full control; see DESIGN.md
// for the system inventory.
//
// A minimal co-optimization:
//
//	p, err := unico.OpenSourcePlatform(unico.Edge, "MobileNet")
//	if err != nil { ... }
//	res, err := unico.Optimize(p, unico.Config{})
//	fmt.Println(res.Best.HW, res.Best.LatencyMs)
package unico

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"unico/internal/baselines"
	"unico/internal/buildinfo"
	"unico/internal/checkpoint"
	"unico/internal/core"
	"unico/internal/dist"
	"unico/internal/evalcache"
	"unico/internal/flightrec"
	"unico/internal/hw"
	"unico/internal/mapsearch"
	"unico/internal/platform"
	"unico/internal/runid"
	"unico/internal/simclock"
	"unico/internal/telemetry"
	"unico/internal/workload"
)

// Scenario selects the deployment constraints of the open-source platform.
type Scenario = hw.Scenario

// Deployment scenarios (Tables 1 and 2 of the paper).
const (
	Edge  = hw.Edge  // power < 2 W
	Cloud = hw.Cloud // power < 20 W
)

// Method selects the co-optimization algorithm.
type Method int

const (
	// MethodUNICO is the paper's full algorithm: MOBO with high-fidelity
	// surrogate updates, modified successive halving and the robustness
	// objective.
	MethodUNICO Method = iota
	// MethodHASCO is the HASCO-like baseline (champion update, no early
	// stopping, sequential).
	MethodHASCO
	// MethodMOBOHB is the multi-objective BOHB baseline (default SH).
	MethodMOBOHB
	// MethodNSGAII is the NSGA-II baseline.
	MethodNSGAII
)

func (m Method) String() string {
	switch m {
	case MethodUNICO:
		return "UNICO"
	case MethodHASCO:
		return "HASCO"
	case MethodMOBOHB:
		return "MOBOHB"
	case MethodNSGAII:
		return "NSGAII"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Platform is an accelerator platform ready for co-optimization.
type Platform struct {
	inner core.Platform
}

// OpenSourcePlatform builds the open-source spatial-accelerator platform
// (MAESTRO-like analytical PPA, FlexTensor-like mapping search) for the
// named networks from the model zoo. Listing several networks
// co-optimizes their aggregate PPA, the multi-workload regime of the
// paper's generalization studies.
func OpenSourcePlatform(sc Scenario, networks ...string) (*Platform, error) {
	ws, err := lookup(networks)
	if err != nil {
		return nil, err
	}
	return &Platform{inner: platform.NewSpatial(sc, ws, mapsearch.FlexTensorLike)}, nil
}

// AscendLikePlatform builds the Ascend-like industrial platform
// (cycle-level CAModel, depth-first buffer-fusion schedule search, 200 mm²
// area cap) for the named networks.
func AscendLikePlatform(networks ...string) (*Platform, error) {
	ws, err := lookup(networks)
	if err != nil {
		return nil, err
	}
	return &Platform{inner: platform.NewAscend(ws, mapsearch.DepthFirst)}, nil
}

// OpenSourcePlatformFromJSON builds the open-source platform for custom
// networks defined in JSON files (see internal/workload's JSON format:
// {"name": ..., "layers": [{"kind": "conv"|"dwconv"|"gemm", ...}]}).
func OpenSourcePlatformFromJSON(sc Scenario, paths ...string) (*Platform, error) {
	ws, err := loadJSON(paths)
	if err != nil {
		return nil, err
	}
	return &Platform{inner: platform.NewSpatial(sc, ws, mapsearch.FlexTensorLike)}, nil
}

// AscendLikePlatformFromJSON builds the Ascend-like platform for custom
// networks defined in JSON files.
func AscendLikePlatformFromJSON(paths ...string) (*Platform, error) {
	ws, err := loadJSON(paths)
	if err != nil {
		return nil, err
	}
	return &Platform{inner: platform.NewAscend(ws, mapsearch.DepthFirst)}, nil
}

func loadJSON(paths []string) ([]workload.Workload, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("unico: no workload files given")
	}
	ws := make([]workload.Workload, len(paths))
	for i, p := range paths {
		w, err := workload.LoadJSONFile(p)
		if err != nil {
			return nil, err
		}
		ws[i] = w
	}
	return ws, nil
}

// RemoteOptions tunes the resilient worker clients built by
// RemoteOpenSourcePlatform. The zero value uses the dist package defaults:
// a 30 s request timeout, no retries, no client-side cache.
type RemoteOptions struct {
	// RequestTimeout bounds each worker request (default 30 s). A dead
	// worker then costs one timeout instead of a hung co-search.
	RequestTimeout time.Duration
	// MaxRetries retries idempotent requests (PPA evaluations) after
	// retryable failures, with exponential backoff and jitter.
	MaxRetries int
	// RetryBackoff is the initial retry delay (default 50 ms, doubling up
	// to MaxBackoff).
	RetryBackoff time.Duration
	// MaxBackoff caps the retry delay (default 2 s). It also caps how long
	// the client honors a server's Retry-After hint when a router or worker
	// sheds load (429/503).
	MaxBackoff time.Duration
	// Cache enables a shared client-side evaluation cache for direct PPA
	// requests (mapping-search jobs run worker-side; cache those with
	// ppaserver's -cache flag instead).
	Cache bool
	// CacheSize bounds the client-side cache (entries; 0 = default ~1M).
	CacheSize int
}

// RemoteOpenSourcePlatform builds the open-source platform over a pool of
// ppaserver worker URLs — the master/slave deployment of the paper's Fig. 6b.
// Workers that repeatedly fail are evicted from the job rotation and probed
// for re-admission; a single dead worker costs timeouts, not the run.
func RemoteOpenSourcePlatform(sc Scenario, workers []string, opts RemoteOptions, networks ...string) (*Platform, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("unico: no worker URLs given")
	}
	var cache *evalcache.Cache
	if opts.Cache || opts.CacheSize > 0 {
		cache = evalcache.New(opts.CacheSize)
	}
	clients := make([]*dist.Client, len(workers))
	for i, u := range workers {
		clients[i] = dist.NewClientOptions(u, nil, dist.Options{
			Timeout:      opts.RequestTimeout,
			MaxRetries:   opts.MaxRetries,
			RetryBackoff: opts.RetryBackoff,
			MaxBackoff:   opts.MaxBackoff,
			Cache:        cache,
		})
	}
	rp, err := dist.NewRemoteSpatialPlatform(clients, sc, networks)
	if err != nil {
		return nil, err
	}
	return &Platform{inner: rp}, nil
}

// Networks lists the model-zoo networks available to the platform
// constructors.
func Networks() []string {
	all := workload.All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

func lookup(networks []string) ([]workload.Workload, error) {
	if len(networks) == 0 {
		return nil, fmt.Errorf("unico: no networks given (see unico.Networks())")
	}
	ws := make([]workload.Workload, len(networks))
	for i, n := range networks {
		w, err := workload.ByName(n)
		if err != nil {
			return nil, err
		}
		ws[i] = w
	}
	return ws, nil
}

// Describe renders the hardware configuration encoded at x.
func (p *Platform) Describe(x []float64) string { return p.inner.Describe(x) }

// Config parameterizes Optimize. The zero value runs full UNICO at the
// paper's defaults (N = 30, b_max = 300).
type Config struct {
	// Method selects the algorithm (default MethodUNICO).
	Method Method
	// BatchSize is the hardware batch N per iteration (default 30).
	BatchSize int
	// Iterations is the number of outer iterations (default 10).
	Iterations int
	// BudgetMax is the software-mapping budget b_max (default 300).
	BudgetMax int
	// Workers bounds parallel mapping-search jobs (default 8; the
	// HASCO-like method is sequential by definition).
	Workers int
	// SearchWorkers bounds the parallel acquisition scalarizations inside
	// each surrogate suggestion step (default 8; applies to UNICO, HASCO
	// and MOBO-HB). Unlike Workers it never enters the checkpoint
	// fingerprint: results are bit-identical at every setting, so it is a
	// pure wall-clock knob and may change across a kill/resume.
	SearchWorkers int
	// Seed makes the run deterministic (default 1).
	Seed int64
	// DisableRobustness drops the sensitivity objective R from UNICO.
	DisableRobustness bool
	// TimeBudgetHours stops the search once the simulated clock passes it.
	TimeBudgetHours float64
	// Cache serves repeated PPA evaluations from a content-addressed cache
	// instead of recomputing them. The engines are pure, so results are
	// bit-identical with and without it — only faster. (The simulated-clock
	// cost accounting is unchanged: the clock models the paper's evaluation
	// budget, not host CPU time.)
	Cache bool
	// CacheSize bounds the evaluation cache (entries; 0 = default ~1M).
	// Setting it implies Cache.
	CacheSize int
	// CacheFile warm-starts the cache from this JSONL file when it exists
	// and saves the cache back on completion. Setting it implies Cache.
	CacheFile string
	// CheckpointFile enables crash-safe checkpointing: a write-ahead journal
	// at CheckpointFile+".journal" records every completed iteration, and an
	// atomic snapshot at CheckpointFile is refreshed every CheckpointEvery
	// iterations. Not supported for MethodNSGAII. Checkpointing never
	// changes the search result.
	CheckpointFile string
	// CheckpointEvery is the snapshot cadence in iterations (default 10).
	CheckpointEvery int
	// Resume continues the run recorded at CheckpointFile instead of
	// starting over. The checkpoint must have been written by a run with
	// the same platform, method, seed and sizes; a mismatch is an error
	// (never a silently-hybrid run). With no checkpoint on disk the run
	// starts fresh, so -resume is safe to pass unconditionally.
	Resume bool
	// FlightRecordFile enables the flight recorder: a durable run.jsonl
	// artifact at this path with the run header (run ID, method, seed,
	// options fingerprint), one record per completed iteration (hypervolume,
	// UUL, feasible front, SH survivor curve, eval/cache counters) and a
	// final summary — readable with cmd/unicoreport or flightrec.Load. With
	// Resume, the recorder appends past the checkpoint replay boundary
	// without duplicating records, so a kill/resume run leaves an artifact
	// record-identical to an uninterrupted one. Recording never changes the
	// search result. Not supported for MethodNSGAII.
	FlightRecordFile string
	// RunID is the correlation ID stamped on the flight-record header and
	// installed process-wide (internal/runid) so log records and dist
	// requests carry it. Empty uses the already-installed process ID, or
	// generates a fresh one.
	RunID string
	// TraceWriter, if non-nil, receives the run's search events as Chrome
	// trace_event JSONL (open with a trace viewer after `jq -s .`, or read
	// line-by-line). Tracing never changes the search result.
	TraceWriter io.Writer
	// Progress, if non-nil, is invoked after every optimizer iteration
	// with a convergence snapshot (UNICO, HASCO and MOBOHB; NSGA-II does
	// not run on the shared iteration engine).
	Progress func(IterationProgress)
}

// IterationProgress is one per-iteration convergence snapshot.
type IterationProgress struct {
	// Iter is the optimizer iteration (1-based).
	Iter int
	// SimHours is the simulated search cost so far.
	SimHours float64
	// Hypervolume is the feasible front's hypervolume against a running
	// nadir reference (comparable within a run).
	Hypervolume float64
	// UUL is the high-fidelity rule's current Upper Update Limit
	// (+Inf until the first surrogate update).
	UUL float64
	// FrontSize is the feasible Pareto front size.
	FrontSize int
	// Evaluations is the cumulative mapping budget spent.
	Evaluations int
}

func (c Config) normalize() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 30
	}
	if c.Iterations <= 0 {
		c.Iterations = 10
	}
	if c.BudgetMax <= 0 {
		c.BudgetMax = 300
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.SearchWorkers <= 0 {
		c.SearchWorkers = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Design is one hardware configuration with its co-optimized PPA.
type Design struct {
	// HW is the human-readable hardware description.
	HW string
	// X is the encoded design-space point (reusable with EvaluateOn).
	X []float64
	// LatencyMs, PowerMW, AreaMM2 are the PPA of the best mapping found.
	LatencyMs, PowerMW, AreaMM2 float64
	// Sensitivity is the robustness metric R (smaller = more robust).
	Sensitivity float64
}

// Result is the outcome of a co-optimization run.
type Result struct {
	// Front is the feasible Pareto front over (latency, power, area).
	Front []Design
	// Best is the min-Euclidean-distance representative of the front.
	Best Design
	// SimulatedHours is the search cost on the simulated clock (the
	// paper's Cost(h) columns).
	SimulatedHours float64
	// Evaluations is the number of mapping budget units spent.
	Evaluations int
	// CacheHits and CacheMisses report the evaluation cache's counters for
	// this run (both zero when Config.Cache was off).
	CacheHits, CacheMisses uint64
}

// Optimize runs the selected co-optimization method on the platform with a
// background context; see OptimizeContext.
func Optimize(p *Platform, cfg Config) (*Result, error) {
	//unicolint:allow ctxflow compatibility wrapper; cancellable callers use OptimizeContext
	return OptimizeContext(context.Background(), p, cfg)
}

// OptimizeContext runs the selected co-optimization method on the platform.
// Cancelling ctx stops the search at the next safe point and returns the
// partial result; with Config.CheckpointFile set, a final checkpoint is
// written first, so a later run with Config.Resume continues exactly where
// this one stopped. (MethodNSGAII does not run on the shared iteration
// engine and ignores ctx and checkpointing.)
func OptimizeContext(ctx context.Context, p *Platform, cfg Config) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("unico: nil platform")
	}
	cfg = cfg.normalize()
	clock := &simclock.Clock{}

	inner := p.inner
	var cache *evalcache.Cache
	if cfg.Cache || cfg.CacheSize > 0 || cfg.CacheFile != "" {
		cache = evalcache.New(cfg.CacheSize)
		if cfg.CacheFile != "" {
			if _, err := cache.LoadFile(cfg.CacheFile); err != nil {
				return nil, err
			}
		}
		inner = withCache(inner, cache)
	}

	var sink *checkpoint.File
	var resume *core.ResumeState
	if cfg.CheckpointFile != "" {
		if cfg.Method == MethodNSGAII {
			return nil, fmt.Errorf("unico: checkpointing is not supported for MethodNSGAII")
		}
		if cfg.Resume && checkpoint.Exists(cfg.CheckpointFile) {
			rs, err := checkpoint.Load(cfg.CheckpointFile)
			if err != nil {
				return nil, err
			}
			resume = rs
		}
		var err error
		sink, err = checkpoint.Create(cfg.CheckpointFile)
		if err != nil {
			return nil, err
		}
		defer sink.Close()
	}
	applyCheckpoint := func(opt *core.Options) {
		if sink != nil {
			opt.Checkpoint = sink
		}
		opt.CheckpointEvery = cfg.CheckpointEvery
		opt.Resume = resume
	}

	runID := cfg.RunID
	if runID == "" {
		runID = runid.Current()
	}
	if runID == "" {
		runID = runid.New()
	}
	runid.Set(runID)

	if cfg.FlightRecordFile != "" && cfg.Method == MethodNSGAII {
		return nil, fmt.Errorf("unico: flight recording is not supported for MethodNSGAII")
	}
	var flight *flightrec.Recorder
	defer func() {
		if flight != nil {
			_ = flight.Close() // no-op after Finish; releases the file on early error paths
		}
	}()
	// applyFlight stamps the run header (identity + the same fingerprint the
	// checkpoint contract validates), opens the durable recorder when
	// configured, and announces the run to the live dashboard store. It runs
	// after applyCheckpoint so the resume boundary is known.
	applyFlight := func(opt *core.Options) error {
		hdr := flightrec.Header{
			RunID:       runID,
			StartedAt:   time.Now().UTC().Format(time.RFC3339), //unicolint:allow detclock wall-clock run metadata in the flight header; excluded from resume identity
			Revision:    buildinfo.Revision(),
			Method:      cfg.Method.String(),
			Workload:    workloadName(p.inner),
			Seed:        cfg.Seed,
			Batch:       cfg.BatchSize,
			MaxIter:     cfg.Iterations,
			BMax:        cfg.BudgetMax,
			Fingerprint: core.FingerprintFor(inner, *opt),
		}
		if cfg.FlightRecordFile == "" {
			flightrec.EmitLiveStart(hdr)
			return nil
		}
		var err error
		if resume != nil {
			flight, err = flightrec.Resume(cfg.FlightRecordFile, hdr, resume.LastIter())
			if err != nil {
				return err
			}
			// Seed the dashboard with the replayed history the artifact kept,
			// so the live curve covers the whole run, not just the suffix.
			if d, _, lerr := flightrec.Load(cfg.FlightRecordFile); lerr == nil {
				flightrec.EmitLiveResume(hdr, d.Iters)
			} else {
				flightrec.EmitLiveStart(hdr)
			}
		} else {
			flight, err = flightrec.Create(cfg.FlightRecordFile, hdr)
			if err != nil {
				return err
			}
			flightrec.EmitLiveStart(hdr)
		}
		var fsink flightrec.Sink = flight
		if cache != nil {
			fsink = cacheStampSink{inner: flight, cache: cache}
		}
		opt.Flight = fsink
		return nil
	}

	var tracer *telemetry.Tracer
	if cfg.TraceWriter != nil {
		tracer = telemetry.NewTracer(cfg.TraceWriter)
		defer tracer.Flush()
	}
	var progress core.ProgressFunc
	if cfg.Progress != nil {
		progress = func(p core.Progress) {
			cfg.Progress(IterationProgress{
				Iter:        p.Iter,
				SimHours:    p.SimHours,
				Hypervolume: p.Hypervolume,
				UUL:         p.UUL,
				FrontSize:   p.FrontSize,
				Evaluations: p.Evals,
			})
		}
	}

	var res core.Result
	switch cfg.Method {
	case MethodUNICO:
		opt := core.UNICOOptions(cfg.BatchSize, cfg.Iterations, cfg.BudgetMax, cfg.Seed)
		opt.UseRobustness = !cfg.DisableRobustness
		opt.Workers = cfg.Workers
		opt.SearchWorkers = cfg.SearchWorkers
		opt.Clock = clock
		opt.TimeBudgetHours = cfg.TimeBudgetHours
		opt.Tracer = tracer
		opt.Progress = progress
		applyCheckpoint(&opt)
		if err := applyFlight(&opt); err != nil {
			return nil, err
		}
		res = core.RunContext(ctx, inner, opt)
	case MethodHASCO:
		opt := baselines.HASCOOptions(cfg.BatchSize, cfg.Iterations, cfg.BudgetMax, cfg.Seed)
		opt.SearchWorkers = cfg.SearchWorkers
		opt.Clock = clock
		opt.TimeBudgetHours = cfg.TimeBudgetHours
		opt.Tracer = tracer
		opt.Progress = progress
		applyCheckpoint(&opt)
		if err := applyFlight(&opt); err != nil {
			return nil, err
		}
		res = core.RunContext(ctx, inner, opt)
	case MethodMOBOHB:
		opt := baselines.MOBOHBOptions(cfg.BatchSize, cfg.Iterations, cfg.BudgetMax, cfg.Seed)
		opt.Workers = cfg.Workers
		opt.SearchWorkers = cfg.SearchWorkers
		opt.Clock = clock
		opt.TimeBudgetHours = cfg.TimeBudgetHours
		opt.Tracer = tracer
		opt.Progress = progress
		applyCheckpoint(&opt)
		if err := applyFlight(&opt); err != nil {
			return nil, err
		}
		res = core.RunContext(ctx, inner, opt)
	case MethodNSGAII:
		res = baselines.NSGAII(inner, baselines.NSGAIIOptions{
			Pop:             cfg.BatchSize,
			Generations:     cfg.Iterations,
			BMax:            cfg.BudgetMax,
			Workers:         cfg.Workers,
			Seed:            cfg.Seed,
			Clock:           clock,
			TimeBudgetHours: cfg.TimeBudgetHours,
		})
	default:
		return nil, fmt.Errorf("unico: unknown method %v", cfg.Method)
	}
	if res.CheckpointErr != nil && errors.Is(res.CheckpointErr, core.ErrResumeMismatch) {
		// The run never started: the checkpoint belongs to a different
		// configuration and continuing would corrupt both.
		return nil, res.CheckpointErr
	}

	out := &Result{SimulatedHours: res.Hours, Evaluations: res.Evals}
	for _, c := range res.Front {
		out.Front = append(out.Front, design(p, c))
	}
	if rep, ok := core.Representative(res.Front); ok {
		out.Best = design(p, rep)
	}
	if cache != nil {
		st := cache.Stats()
		out.CacheHits, out.CacheMisses = st.Hits, st.Misses
		if cfg.CacheFile != "" {
			if err := cache.SaveFile(cfg.CacheFile); err != nil {
				// The search itself succeeded; hand back the result along
				// with the save failure.
				return out, err
			}
		}
	}
	// Seal the flight record: the summary's convergence fields are filled
	// from the last iteration by the recorder; we supply what the iteration
	// stream cannot know. A write failure is non-fatal to the search, like a
	// checkpoint failure.
	var flightErr error
	if cfg.Method != MethodNSGAII {
		sum := flightrec.Summary{Interrupted: ctx.Err() != nil}
		sum.CacheHits, sum.CacheMisses = out.CacheHits, out.CacheMisses
		if flight != nil {
			flightErr = flight.Finish(sum)
		}
		flightrec.EmitLiveFinish(sum)
	}

	// A mid-run checkpoint write failure is non-fatal to the search; hand
	// back the result along with it so callers know resume coverage is
	// incomplete.
	if res.CheckpointErr != nil {
		return out, res.CheckpointErr
	}
	return out, flightErr
}

// cacheStampSink forwards flight records with the evaluation cache's
// cumulative counters stamped on: the cache lives at this facade layer, so
// core cannot fill these fields itself.
type cacheStampSink struct {
	inner flightrec.Sink
	cache *evalcache.Cache
}

func (s cacheStampSink) RecordIteration(it flightrec.Iteration) {
	st := s.cache.Stats()
	it.CacheHits, it.CacheMisses = st.Hits, st.Misses
	s.inner.RecordIteration(it)
}

// workloadName extracts the platform's combined workload name, when exposed.
func workloadName(p core.Platform) string {
	if wp, ok := p.(interface{ Workload() workload.Workload }); ok {
		return wp.Workload().Name
	}
	return ""
}

// withCache returns a platform whose PPA engines are wrapped with c, leaving
// the caller's platform untouched. Platforms without local engines (the
// remote master-side platform) pass through: their caching lives worker-side
// or in the worker clients.
func withCache(inner core.Platform, c *evalcache.Cache) core.Platform {
	switch pl := inner.(type) {
	case *platform.Spatial:
		cp := *pl
		return cp.EnableCache(c)
	case *platform.Ascend:
		cp := *pl
		return cp.EnableCache(c)
	}
	return inner
}

func design(p *Platform, c core.Candidate) Design {
	return Design{
		HW:          p.inner.Describe(c.X),
		X:           c.X,
		LatencyMs:   c.Metrics.LatencyMs,
		PowerMW:     c.Metrics.PowerMW,
		AreaMM2:     c.Metrics.AreaMM2,
		Sensitivity: c.Sensitivity,
	}
}

// EvaluateOn runs an individual software-mapping search for an existing
// design on a (possibly unseen) network and returns the achieved PPA — the
// validation procedure of the paper's generalization studies.
func EvaluateOn(p *Platform, d Design, budget int, seed int64) (Design, error) {
	if budget <= 0 {
		budget = 300
	}
	job := p.inner.NewJob(d.X, seed)
	job.Advance(budget)
	met, ok := job.Best()
	if !ok {
		return Design{}, fmt.Errorf("unico: no feasible mapping for %s on this platform", d.HW)
	}
	return Design{
		HW: d.HW, X: d.X,
		LatencyMs: met.LatencyMs, PowerMW: met.PowerMW, AreaMM2: met.AreaMM2,
	}, nil
}
