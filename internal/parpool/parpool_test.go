package parpool

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 64} {
		for _, n := range []int{0, 1, 7, 100} {
			counts := make([]atomic.Int32, n)
			ForEach(workers, n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForEachSlotResultsMatchSerial(t *testing.T) {
	n := 500
	want := make([]int, n)
	ForEach(1, n, func(i int) { want[i] = i * i })
	got := make([]int, n)
	ForEach(8, n, func(i int) { got[i] = i * i })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestForEachSerialRunsInOrder(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}
