// Package parpool provides the bounded worker pool the search inner loops
// share (MSH rung advancement in internal/sh, acquisition scalarization in
// internal/mobo).
//
// The pool's determinism contract: ForEach runs fn(i) exactly once for
// every index, fn writes its result to a slot owned by its index (never to
// shared accumulators), and the caller merges the slots serially in index
// order afterwards. Work distribution uses an atomic counter, so *which*
// goroutine runs an index and in what order is scheduling-dependent — but
// because results land in indexed slots and any randomness is drawn from
// per-index seeded RNGs (or drawn serially before the fan-out), the merged
// outcome is bit-identical for every worker count, including 1 (which runs
// fn inline on the calling goroutine with no pool at all).
package parpool

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n), with at most workers
// goroutines. workers <= 1 runs serially on the calling goroutine. fn must
// confine its writes to state owned by index i.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
