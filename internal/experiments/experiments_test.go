package experiments

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"unico/internal/flightrec"
	"unico/internal/hw"
)

// tinyScale keeps the runners fast enough for unit tests while still
// exercising every code path.
func tinyScale() Scale {
	return Scale{
		Batch: 6, MaxIter: 2, BMax: 12,
		HASCOIter: 2, UNICOIter: 4,
		NSGAPop: 6, NSGAGen: 2,
		AscendBatch: 5, AscendIter: 2, AscendBMax: 10,
		Seed: 1,
	}
}

func TestRunEdgeCloudTable(t *testing.T) {
	var buf bytes.Buffer
	res := RunEdgeCloudTable(&buf, hw.Edge, tinyScale())
	if len(res.Rows) != 7*3 {
		t.Fatalf("rows = %d, want 21 (7 networks x 3 methods)", len(res.Rows))
	}
	methods := map[string]int{}
	feasibleRows := 0
	for _, r := range res.Rows {
		methods[r.Method]++
		if r.CostHours <= 0 {
			t.Errorf("%s/%s: zero cost", r.Network, r.Method)
		}
		if r.Metrics.Valid() {
			feasibleRows++
		}
	}
	if methods["HASCO"] != 7 || methods["NSGAII"] != 7 || methods["UNICO"] != 7 {
		t.Errorf("method counts: %v", methods)
	}
	if feasibleRows < 15 {
		t.Errorf("only %d/21 rows produced feasible designs", feasibleRows)
	}
	if !strings.Contains(buf.String(), "UNICO") {
		t.Error("printed table missing UNICO rows")
	}
	// UNICO must be cheaper than HASCO on every network (the cost shape).
	for net, speedup := range res.SpeedupSummary() {
		if speedup <= 1 {
			t.Errorf("%s: UNICO not cheaper than HASCO (speedup %.2fx)", net, speedup)
		}
	}
}

// The wall clock reaches run metadata only through the injected now func
// (the package's single detclock allow); pinning it must pin the StartedAt
// stamp of every flight-record header an experiment writes.
func TestRunMetadataTimestampIsInjected(t *testing.T) {
	fixed := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	old := now
	now = func() time.Time { return fixed }
	defer func() { now = old }()

	s := tinyScale()
	s.FlightDir = t.TempDir()
	RunGeneralization(nil, s)

	paths, err := filepath.Glob(filepath.Join(s.FlightDir, "*.run.jsonl"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no flight records written (err=%v)", err)
	}
	for _, p := range paths {
		d, _, err := flightrec.Load(p)
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		if want := "2026-01-02T03:04:05Z"; d.Header.StartedAt != want {
			t.Errorf("%s: StartedAt = %q, want the pinned %q", filepath.Base(p), d.Header.StartedAt, want)
		}
	}
}

func TestRunAblation(t *testing.T) {
	res := RunAblation(nil, tinyScale())
	if len(res.Curves) != 4 {
		t.Fatalf("curves = %d, want 4 variants", len(res.Curves))
	}
	names := map[string]bool{}
	for _, c := range res.Curves {
		names[c.Method] = true
		if len(c.Hours) == 0 || len(c.Hours) != len(c.HVDiff) {
			t.Errorf("%s: malformed curve", c.Method)
		}
		for _, d := range c.HVDiff {
			if d < 0 {
				t.Errorf("%s: negative HV difference %v", c.Method, d)
			}
		}
	}
	for _, want := range []string{"HASCO", "SH+Champion", "MSH+Champion", "UNICO"} {
		if !names[want] {
			t.Errorf("missing variant %q", want)
		}
	}
}

func TestCurveHelpers(t *testing.T) {
	c := MethodCurve{Method: "X", Hours: []float64{1, 2, 3}, HVDiff: []float64{0.5, 0.2, 0.1}}
	if c.Final() != 0.1 {
		t.Errorf("Final = %v", c.Final())
	}
	if (MethodCurve{}).Final() != 0 {
		t.Error("empty Final != 0")
	}
	r := CurveResult{Curves: []MethodCurve{c}}
	if got := r.HoursToReach("X", 0.2); got != 2 {
		t.Errorf("HoursToReach = %v, want 2", got)
	}
	if got := r.HoursToReach("X", 0.01); got != inf() {
		t.Errorf("unreachable level = %v, want inf", got)
	}
	if relImprove(10, 7) != 30 {
		t.Errorf("relImprove = %v", relImprove(10, 7))
	}
	if relImprove(0, 7) != 0 {
		t.Error("relImprove with zero base")
	}
}

func TestRunRobustnessIndicator(t *testing.T) {
	var buf bytes.Buffer
	res := RunRobustnessIndicator(&buf, tinyScale())
	if res.FrontSize == 0 {
		t.Fatal("empty training front")
	}
	for _, p := range res.Pairs {
		if p.Robust.Sensitivity > p.Fragile.Sensitivity {
			t.Errorf("pair mislabeled: robust R %v > fragile R %v",
				p.Robust.Sensitivity, p.Fragile.Sensitivity)
		}
		if len(p.Robust.ValLatency) == 0 {
			t.Error("pair missing validation latencies")
		}
	}
}

func TestComparablePairs(t *testing.T) {
	if got := ppaClose([]float64{100, 10, 1}, []float64{105, 10.2, 1.01}, 0.10); !got {
		t.Error("close PPAs rejected")
	}
	if got := ppaClose([]float64{100, 10, 1}, []float64{150, 10, 1}, 0.10); got {
		t.Error("distant PPAs accepted")
	}
}

func TestRunGeneralization(t *testing.T) {
	res := RunGeneralization(nil, tinyScale())
	if res.UNICOHW == "" || res.HASCOHW == "" {
		t.Skip("tiny scale produced no representative; acceptable at this size")
	}
	if len(res.Rows) == 0 {
		t.Fatal("no validation rows")
	}
	for _, r := range res.Rows {
		if r.UNICODist <= 0 || r.HASCODist <= 0 {
			t.Errorf("%s: degenerate distances %+v", r.Network, r)
		}
	}
}

func TestRunAscend(t *testing.T) {
	var buf bytes.Buffer
	res := RunAscend(&buf, tinyScale())
	if len(res.Rows) == 0 {
		t.Fatal("no Ascend rows")
	}
	for _, r := range res.Rows {
		if r.DefaultLatencyMs <= 0 || r.FoundLatencyMs <= 0 {
			t.Errorf("%s: degenerate latencies %+v", r.Network, r)
		}
		if r.FoundHW == "" {
			t.Errorf("%s: missing found config", r.Network)
		}
	}
	if !strings.Contains(buf.String(), "default:") {
		t.Error("output missing the default config")
	}
}

func TestHypervolumeHelpers(t *testing.T) {
	pts := [][]float64{{1, 2, 3}, {2, 1, 3}, {3, 3, 1}}
	ref := refPoint(pts)
	for j, v := range ref {
		if v <= 3 {
			t.Errorf("ref[%d] = %v, want > max", j, v)
		}
	}
	hv := normHV(pts, ref)
	if hv <= 0 || hv > 1 {
		t.Errorf("normHV = %v, want (0, 1]", hv)
	}
	if normHV(nil, ref) != 0 {
		t.Error("normHV(empty) != 0")
	}
	if got := refPoint(nil); got != nil {
		t.Error("refPoint(empty) != nil")
	}
}

func TestThinFront(t *testing.T) {
	var pts [][]float64
	for i := 0; i < 40; i++ {
		pts = append(pts, []float64{float64(i), float64(40 - i)})
	}
	thinned := thinFront(pts, 10)
	if len(thinned) != 10 {
		t.Errorf("thinned to %d, want 10", len(thinned))
	}
	// Extremes (infinite crowding distance) must survive.
	hasFirst, hasLast := false, false
	for _, p := range thinned {
		if p[0] == 0 {
			hasFirst = true
		}
		if p[0] == 39 {
			hasLast = true
		}
	}
	if !hasFirst || !hasLast {
		t.Error("thinning dropped a boundary point")
	}
}

func TestMinEuclidDistance(t *testing.T) {
	pool := [][]float64{{10, 100}, {20, 50}}
	d1 := minEuclidDistance([]float64{10, 100}, pool)
	d2 := minEuclidDistance([]float64{20, 100}, pool)
	if d1 >= d2 {
		t.Errorf("dominating point not closer: %v >= %v", d1, d2)
	}
}

func TestScales(t *testing.T) {
	p := PaperScale()
	if p.Batch != 30 || p.BMax != 300 || p.AscendBatch != 8 || p.AscendBMax != 200 {
		t.Errorf("PaperScale does not match the paper: %+v", p)
	}
	s := SmallScale()
	if s.Batch >= p.Batch || s.BMax >= p.BMax {
		t.Errorf("SmallScale not smaller: %+v", s)
	}
}
