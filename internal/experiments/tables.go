package experiments

import (
	"fmt"
	"io"

	"unico/internal/baselines"
	"unico/internal/core"
	"unico/internal/hw"
	"unico/internal/ppa"
	"unico/internal/workload"
)

// MethodRow is one (method, network) cell of Tables 1 and 2: the PPA of the
// min-Euclidean-distance Pareto point and the simulated search cost.
type MethodRow struct {
	Network   string
	Method    string
	Metrics   ppa.Metrics
	CostHours float64
	FrontSize int
	HWDesc    string
}

// TableResult is one full Table 1 or Table 2.
type TableResult struct {
	Scenario hw.Scenario
	Rows     []MethodRow
}

// RunEdgeCloudTable reproduces Table 1 (Edge, power < 2 W) or Table 2
// (Cloud, power < 20 W): for each network, HASCO, NSGA-II and UNICO each
// co-optimize from scratch, and the min-Euclidean-distance representative of
// the resulting Pareto front is reported with the simulated search cost.
func RunEdgeCloudTable(w io.Writer, sc hw.Scenario, s Scale) TableResult {
	res := TableResult{Scenario: sc}
	fprintf(w, "=== Table (%s device, power < %.0f W): HASCO vs NSGA-II vs UNICO ===\n",
		sc, sc.PowerCapMW()/1000)
	fprintf(w, "%-12s %-8s %14s %12s %10s %9s  %s\n",
		"Network", "Method", "Latency(ms)", "Power(mW)", "Area(mm2)", "Cost(h)", "HW")
	for ni, net := range workload.Table12Networks() {
		seed := s.Seed + int64(ni)*101
		p := spatialPlatform(sc, net)

		uIter := s.UNICOIter
		if uIter <= 0 {
			uIter = 3 * s.MaxIter
		}
		runs := []struct {
			name string
			res  core.Result
		}{
			{"HASCO", baselines.HASCO(p, s.Batch, s.HASCOIter, s.BMax, seed, nil, 0)},
			{"NSGAII", baselines.NSGAII(p, baselines.NSGAIIOptions{
				Pop: s.NSGAPop, Generations: s.NSGAGen, BMax: s.BMax, Seed: seed + 1,
			})},
			{"UNICO", s.run(fmt.Sprintf("table-%s-%s-unico", sc, net.Name), p,
				core.UNICOOptions(s.Batch, uIter, s.BMax, seed+2))},
		}

		// A shared normalization pool over the three fronts keeps the
		// min-Euclid representative selection comparable across methods.
		var pool [][]float64
		for _, mr := range runs {
			for _, c := range mr.res.Front {
				pool = append(pool, c.Objectives(false))
			}
		}
		for _, mr := range runs {
			row := MethodRow{Network: net.Name, Method: mr.name, CostHours: mr.res.Hours,
				FrontSize: len(mr.res.Front)}
			if rep, ok := representativeIn(mr.res.Front, pool); ok {
				row.Metrics = rep.Metrics
				row.HWDesc = p.Describe(rep.X)
			}
			res.Rows = append(res.Rows, row)
			fprintf(w, "%-12s %-8s %14.6g %12.5g %10.3g %9.2f  %s\n",
				row.Network, row.Method, row.Metrics.LatencyMs, row.Metrics.PowerMW,
				row.Metrics.AreaMM2, row.CostHours, row.HWDesc)
		}
	}
	return res
}

// representativeIn picks the front candidate closest to the ideal corner of
// the shared pool (range-normalized), so representative selection is
// comparable across the methods contributing to the pool.
func representativeIn(front []core.Candidate, pool [][]float64) (core.Candidate, bool) {
	if len(front) == 0 {
		return core.Candidate{}, false
	}
	if len(pool) == 0 {
		return front[0], true
	}
	d := len(pool[0])
	lo := append([]float64(nil), pool[0]...)
	hi := append([]float64(nil), pool[0]...)
	for _, p := range pool {
		for j, v := range p {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	dist := func(p []float64) float64 {
		sum := 0.0
		for j := 0; j < d; j++ {
			span := hi[j] - lo[j]
			if span <= 0 {
				continue
			}
			nv := (p[j] - lo[j]) / span
			sum += nv * nv
		}
		return sum
	}
	best, bestD := 0, dist(front[0].Objectives(false))
	for i := 1; i < len(front); i++ {
		if dd := dist(front[i].Objectives(false)); dd < bestD {
			best, bestD = i, dd
		}
	}
	return front[best], true
}

// SpeedupSummary reports, per network, UNICO's search-cost advantage over
// the slowest baseline — the headline "up to 4× faster" claim.
func (t TableResult) SpeedupSummary() map[string]float64 {
	cost := map[string]map[string]float64{}
	for _, r := range t.Rows {
		if cost[r.Network] == nil {
			cost[r.Network] = map[string]float64{}
		}
		cost[r.Network][r.Method] = r.CostHours
	}
	out := map[string]float64{}
	for net, byMethod := range cost {
		u := byMethod["UNICO"]
		h := byMethod["HASCO"]
		if u > 0 && h > 0 {
			out[net] = h / u
		}
	}
	return out
}
