// Package experiments implements one runner per table and figure of the
// paper's evaluation (Section 4). Each runner executes the co-search
// methods under comparison on simulated clocks, prints the same rows or
// series the paper reports, and returns a structured result the benchmark
// harness (bench_test.go) and the experiments CLI (cmd/experiments) share.
//
// Absolute numbers are not comparable to the paper — the PPA substrate here
// is a synthetic model (see DESIGN.md) — but every runner reproduces the
// paper's *shape*: who wins, by roughly what factor, and where crossovers
// fall. EXPERIMENTS.md records paper-versus-measured for each experiment.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"unico/internal/checkpoint"
	"unico/internal/core"
	"unico/internal/flightrec"
	"unico/internal/hw"
	"unico/internal/mapsearch"
	"unico/internal/pareto"
	"unico/internal/platform"
	"unico/internal/runid"
	"unico/internal/workload"
)

// now stamps run metadata (the StartedAt field of flight-record headers).
// It is the package's single wall-clock injection point: tests pin it to a
// fixed instant, and the timestamp is informational only — resume identity
// and every comparative result run on simulated clocks.
var now = time.Now //unicolint:allow detclock single injection point for run-metadata timestamps; overridden in tests

// Scale sets the experiment sizes. PaperScale mirrors the paper's settings;
// SmallScale keeps every runner fast enough for unit benches while
// preserving the comparative shapes.
type Scale struct {
	// Batch is UNICO's hardware batch size N.
	Batch int
	// MaxIter is the number of MOBO iterations.
	MaxIter int
	// BMax is the software-mapping budget b_max.
	BMax int
	// HASCOIter is the HASCO-like baseline's iteration count (it spends far
	// more budget per iteration, so it gets fewer).
	HASCOIter int
	// UNICOIter is UNICO's iteration count in head-to-head tables; UNICO's
	// iterations are several times cheaper (batched, early-stopped,
	// parallel), so it affords more of them at a fraction of the cost.
	UNICOIter int
	// NSGAPop and NSGAGen size the NSGA-II baseline.
	NSGAPop, NSGAGen int
	// AscendBatch, AscendIter, AscendBMax size the Fig. 11 study
	// (paper: N = 8, MaxIter = 30, b_max = 200).
	AscendBatch, AscendIter, AscendBMax int
	// Seed makes every runner deterministic.
	Seed int64
	// Context, when non-nil, cancels in-flight co-search runs (SIGINT
	// handling in cmd/experiments); nil behaves like context.Background().
	Context context.Context
	// CheckpointDir, when set, gives every core co-search run within an
	// experiment a crash-safe checkpoint file named after the run.
	CheckpointDir string
	// Resume continues runs from existing checkpoints in CheckpointDir
	// (completed runs replay from their records instead of re-searching).
	Resume bool
	// FlightDir, when set, gives every core co-search run a flight-record
	// artifact named after the run (<name>.run.jsonl, mirroring the
	// checkpoint naming), viewable with cmd/unicoreport.
	FlightDir string
	// SearchWorkers, when positive, bounds the parallel acquisition
	// scalarizations of every core co-search run (core.Options.SearchWorkers).
	// Results are bit-identical at every setting, so comparative tables are
	// unaffected — it only changes how long they take to produce.
	SearchWorkers int
}

// run executes one core co-search under the scale's cancellation context
// and, when CheckpointDir is set, with a crash-safe checkpoint named after
// the run. Checkpoint failures degrade to an uncheckpointed run (reported
// on stderr) rather than failing the experiment.
func (s Scale) run(name string, p core.Platform, opt core.Options) core.Result {
	ctx := s.Context
	if ctx == nil {
		//unicolint:allow ctxflow explicit opt-out: a nil Scale.Context means the experiment owns its lifetime end-to-end
		ctx = context.Background()
	}
	if s.SearchWorkers > 0 {
		opt.SearchWorkers = s.SearchWorkers
	}
	if s.CheckpointDir != "" {
		path := filepath.Join(s.CheckpointDir, name+".ckpt")
		if s.Resume && checkpoint.Exists(path) {
			if rs, err := checkpoint.Load(path); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: load checkpoint %s: %v (starting fresh)\n", path, err)
			} else {
				opt.Resume = rs
			}
		}
		if sink, err := checkpoint.Create(path); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: open checkpoint %s: %v (running without)\n", path, err)
		} else {
			defer sink.Close()
			opt.Checkpoint = sink
		}
	}

	// Flight recording, one artifact per run named like the checkpoint. The
	// run name doubles as the header's method field — it already encodes the
	// experiment and algorithm ("fig7-edge-unico-seed1").
	hdr := flightrec.Header{
		RunID:       runid.Current(),
		StartedAt:   now().UTC().Format(time.RFC3339),
		Method:      name,
		Seed:        opt.Seed,
		Batch:       opt.BatchSize,
		MaxIter:     opt.MaxIter,
		BMax:        opt.BMax,
		Fingerprint: core.FingerprintFor(p, opt),
	}
	if wp, ok := p.(interface{ Workload() workload.Workload }); ok {
		hdr.Workload = wp.Workload().Name
	}
	flightLive := false
	var flight *flightrec.Recorder
	if s.FlightDir != "" {
		fpath := filepath.Join(s.FlightDir, name+".run.jsonl")
		var err error
		if opt.Resume != nil {
			flight, err = flightrec.Resume(fpath, hdr, opt.Resume.LastIter())
		} else {
			flight, err = flightrec.Create(fpath, hdr)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: open flight record %s: %v (running without)\n", fpath, err)
			flight = nil
		} else {
			opt.Flight = flight
		}
	}
	// Announce the run to the live dashboard store regardless of whether a
	// durable recorder is attached (no-op when no store is installed).
	if opt.Resume != nil && s.FlightDir != "" {
		if d, _, err := flightrec.Load(filepath.Join(s.FlightDir, name+".run.jsonl")); err == nil {
			flightrec.EmitLiveResume(hdr, d.Iters)
			flightLive = true
		}
	}
	if !flightLive {
		flightrec.EmitLiveStart(hdr)
	}

	res := core.RunContext(ctx, p, opt)
	if flight != nil {
		if err := flight.Finish(flightrec.Summary{Interrupted: ctx.Err() != nil}); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: flight record: %v\n", name, err)
		}
	}
	flightrec.EmitLiveFinish(flightrec.Summary{Interrupted: ctx.Err() != nil})
	if res.CheckpointErr != nil {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, res.CheckpointErr)
	}
	return res
}

// PaperScale returns the paper's experimental settings (Section 4.1/4.6).
func PaperScale() Scale {
	return Scale{
		Batch: 30, MaxIter: 12, BMax: 300,
		HASCOIter: 12, UNICOIter: 36,
		NSGAPop: 30, NSGAGen: 10,
		AscendBatch: 8, AscendIter: 30, AscendBMax: 200,
		Seed: 1,
	}
}

// SmallScale returns a configuration small enough for benchmarks and CI
// while keeping all comparative behaviour observable.
func SmallScale() Scale {
	return Scale{
		Batch: 10, MaxIter: 4, BMax: 60,
		HASCOIter: 4, UNICOIter: 12,
		NSGAPop: 10, NSGAGen: 3,
		AscendBatch: 6, AscendIter: 4, AscendBMax: 40,
		Seed: 1,
	}
}

// spatialPlatform builds the open-source platform for a workload set.
func spatialPlatform(sc hw.Scenario, ws ...workload.Workload) *platform.Spatial {
	return platform.NewSpatial(sc, ws, mapsearch.FlexTensorLike)
}

// evalHWOnNetwork runs an individual software-mapping search for the
// hardware at x on a single network and returns the achieved metrics — the
// validation procedure of Sections 4.3 and 4.4.
func evalHWOnNetwork(sc hw.Scenario, x []float64, net workload.Workload, bmax int, seed int64) (core.Candidate, bool) {
	p := spatialPlatform(sc, net)
	job := p.NewJob(x, seed)
	job.Advance(bmax)
	met, ok := job.Best()
	if !ok {
		return core.Candidate{X: x}, false
	}
	return core.Candidate{X: x, Metrics: met, History: job.History(), Feasible: true}, true
}

// minEuclidDistance returns the normalized distance-to-origin of a PPA
// point, with per-objective scales taken from the pooled set — the quantity
// Fig. 9 compares between UNICO- and HASCO-found hardware.
func minEuclidDistance(point []float64, pool [][]float64) float64 {
	d := len(point)
	scale := make([]float64, d)
	for _, p := range pool {
		for j, v := range p {
			if v > scale[j] {
				scale[j] = v
			}
		}
	}
	sum := 0.0
	for j, v := range point {
		s := scale[j]
		if s <= 0 {
			s = 1
		}
		sum += (v / s) * (v / s)
	}
	return math.Sqrt(sum)
}

// refPoint returns the hypervolume reference: 1.1× the per-objective
// maximum over all supplied PPA points.
func refPoint(points [][]float64) []float64 {
	if len(points) == 0 {
		return nil
	}
	d := len(points[0])
	ref := make([]float64, d)
	for _, p := range points {
		for j, v := range p {
			if v > ref[j] {
				ref[j] = v
			}
		}
	}
	for j := range ref {
		ref[j] *= 1.1
		if ref[j] <= 0 {
			ref[j] = 1
		}
	}
	return ref
}

// normHV computes the hypervolume of front after scaling every objective by
// ref (so the reference point becomes the unit corner and HV ∈ [0, 1]).
func normHV(front [][]float64, ref []float64) float64 {
	if len(front) == 0 || len(ref) == 0 {
		return 0
	}
	scaled := make([][]float64, 0, len(front))
	unit := make([]float64, len(ref))
	for j := range unit {
		unit[j] = 1
	}
	for _, p := range front {
		q := make([]float64, len(p))
		for j, v := range p {
			q[j] = v / ref[j]
		}
		scaled = append(scaled, q)
	}
	// Large fronts make exact hypervolume slow; thin by crowding distance
	// first (keeps the extremes and the best-spread interior points).
	scaled = thinFront(scaled, 24)
	return pareto.Hypervolume(scaled, unit)
}

// thinFront keeps at most n front points, preferring high crowding
// distance.
func thinFront(points [][]float64, n int) [][]float64 {
	points = pareto.FrontPoints(points)
	if len(points) <= n {
		return points
	}
	cds := pareto.CrowdingDistance(points)
	type scored struct {
		p  []float64
		cd float64
	}
	items := make([]scored, len(points))
	for i := range points {
		items[i] = scored{points[i], cds[i]}
	}
	// Selection sort of the top n by descending crowding distance.
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < len(items); j++ {
			if items[j].cd > items[best].cd {
				best = j
			}
		}
		items[i], items[best] = items[best], items[i]
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = items[i].p
	}
	return out
}

// fprintf writes formatted output, ignoring nil writers so runners can be
// called silently from benchmarks.
func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
