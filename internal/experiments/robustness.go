package experiments

import (
	"io"
	"math"
	"sort"

	"unico/internal/core"
	"unico/internal/hw"
	"unico/internal/robust"
	"unico/internal/workload"
)

// PairMember is one hardware design of a Fig. 8 comparable pair.
type PairMember struct {
	Index       int // position in the training Pareto front
	X           []float64
	HWDesc      string
	TrainPPA    []float64
	Sensitivity float64
	// ValLatency and ValEDP map validation network name to the latency and
	// energy-delay product the design achieves after an individual mapping
	// search.
	ValLatency map[string]float64
	ValEDP     map[string]float64
}

// Pair is a pair of PPA-comparable designs with different sensitivity.
type Pair struct {
	Robust, Fragile PairMember // Robust has the smaller R
	// RobustWinsAvg reports whether the lower-R member achieved the better
	// geometric-mean energy-delay product across the validation networks.
	RobustWinsAvg bool
	// AvgGainPct is the geometric-mean validation-EDP advantage of the
	// robust member, in percent.
	AvgGainPct float64
}

// RobustnessResult is the outcome of the Fig. 8 study.
type RobustnessResult struct {
	FrontSize int
	Pairs     []Pair
}

// RunRobustnessIndicator reproduces Fig. 8: is metric R a valid indicator of
// hardware generalization? UNICO runs *without* the sensitivity objective on
// the training set {UNET, SRGAN, BERT}; pairs of Pareto designs with
// comparable PPA (≤ 10% apart) but different R are validated on
// {ResNet, ResUNet, VIT, MobileNet} by individual mapping searches.
func RunRobustnessIndicator(w io.Writer, s Scale) RobustnessResult {
	train := []workload.Workload{workload.UNet(), workload.SRGAN(), workload.BERT()}
	validation := []workload.Workload{
		workload.ResNet(), workload.ResUNet(), workload.ViT(), workload.MobileNet(),
	}
	p := spatialPlatform(hw.Edge, train...)

	// The pair study needs a reasonably dense Pareto front and stable R
	// estimates; enforce minimum budgets even under small scales.
	iters, bmax := max(s.MaxIter, 8), max(s.BMax, 80)
	opt := core.UNICOOptions(s.Batch, iters, bmax, s.Seed)
	opt.UseRobustness = false // R is measured, not optimized, in this study
	res := s.run("fig8-unico", p, opt)
	s.BMax = bmax

	fprintf(w, "=== Figure 8: metric R as a generalization indicator ===\n")
	fprintf(w, "training front: %d designs\n", len(res.Front))
	out := RobustnessResult{FrontSize: len(res.Front)}

	// Paper steps (2)-(3): select PPA-comparable pairs first, then compute
	// R for each member of a pair with a dedicated full-budget mapping
	// search on the training set (the co-search histories are too short for
	// early-stopped candidates to estimate R reliably).
	reEstimate := func(c *core.Candidate, seed int64) {
		job := p.NewJob(c.X, seed)
		job.Advance(2 * s.BMax)
		c.Sensitivity = robust.Sensitivity(job.RawHistory(), robust.DefaultAlpha)
	}
	front := append([]core.Candidate(nil), res.Front...)
	needR := map[int]bool{}
	for i := 0; i < len(front); i++ {
		for j := i + 1; j < len(front); j++ {
			if ppaClose(front[i].Objectives(false)[:2], front[j].Objectives(false)[:2], 0.15) {
				needR[i] = true
				needR[j] = true
			}
		}
	}
	for i := range needR {
		reEstimate(&front[i], s.Seed+int64(i)*613)
	}

	pairs := comparablePairs(front, 0.15, 3)
	for pi, pr := range pairs {
		members := [2]PairMember{pr[0], pr[1]}
		for mi := range members {
			members[mi].HWDesc = p.Describe(members[mi].X)
			members[mi].ValLatency = map[string]float64{}
			members[mi].ValEDP = map[string]float64{}
			for vi, net := range validation {
				// Two independent mapping searches per network, keeping the
				// better result: the comparison should reflect the hardware,
				// not residual search-seed noise.
				lat, edp := math.Inf(1), math.Inf(1)
				for rep := int64(0); rep < 2; rep++ {
					cand, ok := evalHWOnNetwork(hw.Edge, members[mi].X, net, 2*s.BMax,
						s.Seed+int64(pi)*1000+int64(mi)*100+int64(vi)+rep*7919)
					if ok && cand.Metrics.EDP() < edp {
						lat, edp = cand.Metrics.LatencyMs, cand.Metrics.EDP()
					}
				}
				members[mi].ValLatency[net.Name] = lat
				members[mi].ValEDP[net.Name] = edp
			}
		}
		robustM, fragileM := members[0], members[1]
		if fragileM.Sensitivity < robustM.Sensitivity {
			robustM, fragileM = fragileM, robustM
		}
		gain, wins := edpGain(robustM, fragileM, validation)
		pair := Pair{Robust: robustM, Fragile: fragileM, RobustWinsAvg: wins, AvgGainPct: gain}
		out.Pairs = append(out.Pairs, pair)

		fprintf(w, "pair %d: robust #%d (R=%.3f, %s) vs fragile #%d (R=%.3f, %s)\n",
			pi+1, robustM.Index, robustM.Sensitivity, robustM.HWDesc,
			fragileM.Index, fragileM.Sensitivity, fragileM.HWDesc)
		for _, net := range validation {
			fprintf(w, "  %-12s robust %.5g ms  fragile %.5g ms\n",
				net.Name, robustM.ValLatency[net.Name], fragileM.ValLatency[net.Name])
		}
		fprintf(w, "  robust wins on average: %v (gain %.1f%%)\n", wins, gain)
	}
	return out
}

// comparablePairs selects up to maxPairs front pairs whose training
// latency/power performance differs by at most tol collectively (the
// power-latency plane of the paper's Fig. 8a) while their sensitivities
// differ the most — the pair-selection step (2)-(3) of Section 4.3.
func comparablePairs(front []core.Candidate, tol float64, maxPairs int) [][2]PairMember {
	type scoredPair struct {
		a, b  int
		rDiff float64
	}
	var candidates []scoredPair
	for i := 0; i < len(front); i++ {
		for j := i + 1; j < len(front); j++ {
			if ppaClose(front[i].Objectives(false)[:2], front[j].Objectives(false)[:2], tol) {
				rd := math.Abs(front[i].Sensitivity - front[j].Sensitivity)
				candidates = append(candidates, scoredPair{i, j, rd})
			}
		}
	}
	sort.Slice(candidates, func(a, b int) bool { return candidates[a].rDiff > candidates[b].rDiff })
	used := map[int]bool{}
	var out [][2]PairMember
	for _, c := range candidates {
		if len(out) >= maxPairs {
			break
		}
		// A pair is only informative when the sensitivities clearly differ
		// (comparable PPA but distinguishable R, paper step (2)).
		if used[c.a] || used[c.b] || c.rDiff < 0.05 {
			continue
		}
		used[c.a], used[c.b] = true, true
		out = append(out, [2]PairMember{member(front, c.a), member(front, c.b)})
	}
	return out
}

func member(front []core.Candidate, i int) PairMember {
	return PairMember{
		Index:       i,
		X:           front[i].X,
		TrainPPA:    front[i].Objectives(false),
		Sensitivity: front[i].Sensitivity,
	}
}

// ppaClose reports whether two performance vectors differ by at most tol
// collectively: the 2-norm of the per-objective relative differences.
func ppaClose(a, b []float64, tol float64) bool {
	sum := 0.0
	for j := range a {
		hi := math.Max(a[j], b[j])
		if hi <= 0 {
			continue
		}
		d := (a[j] - b[j]) / hi
		sum += d * d
	}
	return math.Sqrt(sum) <= tol
}

// edpGain returns the robust member's validation energy-delay-product
// advantage in percent (geometric mean across networks, so every network
// weighs equally regardless of its absolute scale), and whether it wins on
// average. EDP is the mapping-search objective, so it is the quantity the
// sensitivity metric predicts.
func edpGain(robustM, fragileM PairMember, validation []workload.Workload) (float64, bool) {
	var logSum float64
	n := 0
	for _, net := range validation {
		r, f := robustM.ValEDP[net.Name], fragileM.ValEDP[net.Name]
		if math.IsInf(r, 1) || math.IsInf(f, 1) || r <= 0 || f <= 0 {
			continue
		}
		logSum += math.Log(r / f)
		n++
	}
	if n == 0 {
		return 0, false
	}
	ratio := math.Exp(logSum / float64(n))
	return (1 - ratio) * 100, ratio < 1
}
