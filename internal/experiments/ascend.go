package experiments

import (
	"io"
	"math"

	"unico/internal/core"
	"unico/internal/hw"
	"unico/internal/mapsearch"
	"unico/internal/platform"
	"unico/internal/ppa"
	"unico/internal/workload"
)

// AscendRow is one network of the Fig. 11 study.
type AscendRow struct {
	Network string
	// Default and Found are the PPA of the expert default core and the
	// UNICO-found core, each with its own depth-first schedule search.
	DefaultLatencyMs, FoundLatencyMs float64
	DefaultPowerMW, FoundPowerMW     float64
	// LatencySavePct and PowerSavePct are the relative reductions.
	LatencySavePct, PowerSavePct float64
	FoundHW                      string
	CostHours                    float64
}

// AscendResult is the outcome of the Fig. 11 industrial case study.
type AscendResult struct {
	DefaultHW string
	Rows      []AscendRow
	// AvgPowerSavePct is the average power saving (paper: 32.3%).
	AvgPowerSavePct float64
}

// RunAscend reproduces Fig. 11: UNICO co-optimizes the Ascend-like core for
// each network (paper settings N=8, MaxIter=30, b_max=200, area ≤ 200 mm²)
// on the cycle-level CAModel, and the discovered core's latency and power
// are compared against the expert-selected default configuration under the
// same schedule-search budget.
func RunAscend(w io.Writer, s Scale) AscendResult {
	nets := []workload.Workload{
		workload.UNet(),
		workload.FSRCNN(120, 320),
		workload.FSRCNN(240, 640),
		workload.FSRCNN(480, 960),
		workload.DLEU(),
	}
	def := hw.DefaultAscend()
	out := AscendResult{DefaultHW: def.String()}
	fprintf(w, "=== Figure 11: UNICO vs default Ascend-like core (CAModel) ===\n")
	fprintf(w, "default: %s\n", def.String())

	var sumPow float64
	var n int
	for ni, net := range nets {
		p := platform.NewAscend([]workload.Workload{net}, mapsearch.DepthFirst)
		seed := s.Seed + int64(ni)*31

		// Expert default, same schedule-search budget.
		defX := p.AscendSpace().Encode(def)
		defJob := p.NewJob(defX, seed)
		defJob.Advance(s.AscendBMax)
		defMet, defOK := defJob.Best()

		// UNICO co-optimization; power and latency are the goals under the
		// area cap. The representative is selected relative to the default
		// core: the front design with the best joint latency-and-power
		// improvement factor over the expert configuration.
		opt := core.UNICOOptions(s.AscendBatch, s.AscendIter, s.AscendBMax, seed)
		res := s.run("fig11-unico-"+net.Name, p, opt)
		rep, repOK := bestVersusDefault(res.Front, defMet)
		if !defOK || !repOK {
			fprintf(w, "%-16s skipped (default ok=%v, front ok=%v)\n", net.Name, defOK, repOK)
			continue
		}
		row := AscendRow{
			Network:          net.Name,
			DefaultLatencyMs: defMet.LatencyMs,
			FoundLatencyMs:   rep.Metrics.LatencyMs,
			DefaultPowerMW:   defMet.PowerMW,
			FoundPowerMW:     rep.Metrics.PowerMW,
			FoundHW:          p.Describe(rep.X),
			CostHours:        res.Hours,
		}
		row.LatencySavePct = (row.DefaultLatencyMs - row.FoundLatencyMs) / row.DefaultLatencyMs * 100
		row.PowerSavePct = (row.DefaultPowerMW - row.FoundPowerMW) / row.DefaultPowerMW * 100
		out.Rows = append(out.Rows, row)
		sumPow += row.PowerSavePct
		n++
		fprintf(w, "%-16s latency %.5g -> %.5g ms (%+.1f%%)  power %.5g -> %.5g mW (%+.1f%%)  cost %.1fh\n",
			net.Name, row.DefaultLatencyMs, row.FoundLatencyMs, -row.LatencySavePct,
			row.DefaultPowerMW, row.FoundPowerMW, -row.PowerSavePct, row.CostHours)
		fprintf(w, "  found: %s\n", row.FoundHW)
	}
	if n > 0 {
		out.AvgPowerSavePct = sumPow / float64(n)
	}
	fprintf(w, "average power saving: %.1f%%\n", out.AvgPowerSavePct)
	return out
}

// bestVersusDefault picks the front design with the smallest Chebyshev
// ratio against the default core: minimize max(latency ratio, power ratio).
// A design that improves both metrics always beats one that trades a large
// regression in one for the other — the balanced-improvement regime the
// paper's Fig. 11 reports.
func bestVersusDefault(front []core.Candidate, def ppa.Metrics) (core.Candidate, bool) {
	best := -1
	bestScore := 0.0
	for i, c := range front {
		score := math.Max(c.Metrics.LatencyMs/def.LatencyMs, c.Metrics.PowerMW/def.PowerMW)
		if best < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return core.Candidate{}, false
	}
	return front[best], true
}
