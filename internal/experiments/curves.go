package experiments

import (
	"fmt"
	"io"
	"sort"

	"unico/internal/baselines"
	"unico/internal/core"
	"unico/internal/hw"
	"unico/internal/workload"
)

// MethodCurve is one hypervolume-difference-versus-cost series of Figs. 7
// and 10.
type MethodCurve struct {
	Method string
	Hours  []float64
	HVDiff []float64
}

// Final returns the curve's final hypervolume difference (0 if empty).
func (c MethodCurve) Final() float64 {
	if len(c.HVDiff) == 0 {
		return 0
	}
	return c.HVDiff[len(c.HVDiff)-1]
}

// Mean returns the time-averaged hypervolume difference - the convergence
// regret over the whole budget. Smaller means the method reached good
// fronts sooner, the quantity the Fig. 7/10 comparisons rank methods by.
func (c MethodCurve) Mean() float64 {
	if len(c.HVDiff) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range c.HVDiff {
		sum += v
	}
	return sum / float64(len(c.HVDiff))
}

// CurveResult is one Fig. 7 panel (or the Fig. 10 ablation).
type CurveResult struct {
	Scenario hw.Scenario
	Curves   []MethodCurve
}

// HoursToReach returns the first time the method's hypervolume difference
// drops to at most level, or +Inf if it never does — the statistic behind
// the "finds HASCO-quality designs up to 4× faster" claim.
func (r CurveResult) HoursToReach(method string, level float64) float64 {
	for _, c := range r.Curves {
		if c.Method != method {
			continue
		}
		for i, v := range c.HVDiff {
			if v <= level {
				return c.Hours[i]
			}
		}
	}
	return inf()
}

func inf() float64 { return 1e308 }

// methodSpec is one co-search method under trace comparison. The first
// method of a comparison (HASCO) sets the reference wall-clock budget; the
// others receive it as budgetHours and run until they have spent the same
// simulated time — the equal-cost reading of the paper's Fig. 7/10 x-axis.
type methodSpec struct {
	name string
	run  func(p core.Platform, seed int64, budgetHours float64) core.Result
}

// RunHypervolumeCurves reproduces Fig. 7: hypervolume difference versus
// simulated wall-clock for HASCO, NSGA-II, MOBOHB and UNICO, averaged over
// the Table 1/2 networks of the given scenario.
func RunHypervolumeCurves(w io.Writer, sc hw.Scenario, s Scale) CurveResult {
	const manyIters = 400
	methods := []methodSpec{
		{"HASCO", func(p core.Platform, seed int64, _ float64) core.Result {
			return baselines.HASCO(p, s.Batch, s.HASCOIter, s.BMax, seed, nil, 0)
		}},
		{"NSGAII", func(p core.Platform, seed int64, budget float64) core.Result {
			return baselines.NSGAII(p, baselines.NSGAIIOptions{
				Pop: s.NSGAPop, Generations: manyIters, BMax: s.BMax, Seed: seed,
				TimeBudgetHours: budget,
			})
		}},
		{"MOBOHB", func(p core.Platform, seed int64, budget float64) core.Result {
			opt := baselines.MOBOHBOptions(s.Batch, manyIters, s.BMax, seed)
			opt.TimeBudgetHours = budget
			return s.run(fmt.Sprintf("fig7-%s-mobohb-seed%d", sc, seed), p, opt)
		}},
		{"UNICO", func(p core.Platform, seed int64, budget float64) core.Result {
			opt := core.UNICOOptions(s.Batch, manyIters, s.BMax, seed)
			opt.TimeBudgetHours = budget
			return s.run(fmt.Sprintf("fig7-%s-unico-seed%d", sc, seed), p, opt)
		}},
	}
	nets := workload.Table12Networks()
	res := traceComparison(sc, nets, methods, s)
	printCurves(w, "Figure 7 ("+sc.String()+"): hypervolume difference vs search cost", res)
	return res
}

// RunAblation reproduces Fig. 10: HASCO vs SH+ChampionUpdate vs
// MSH+ChampionUpdate vs UNICO (MSH + HighFidelityUpdate + robustness) on
// {UNET, SRGAN, BERT, VIT}.
func RunAblation(w io.Writer, s Scale) CurveResult {
	const manyIters = 400
	methods := []methodSpec{
		{"HASCO", func(p core.Platform, seed int64, _ float64) core.Result {
			return baselines.HASCO(p, s.Batch, s.HASCOIter, s.BMax, seed, nil, 0)
		}},
		{"SH+Champion", func(p core.Platform, seed int64, budget float64) core.Result {
			opt := baselines.SHChampionOptions(s.Batch, manyIters, s.BMax, seed)
			opt.TimeBudgetHours = budget
			return s.run(fmt.Sprintf("fig10-shchampion-seed%d", seed), p, opt)
		}},
		{"MSH+Champion", func(p core.Platform, seed int64, budget float64) core.Result {
			opt := baselines.MSHChampionOptions(s.Batch, manyIters, s.BMax, seed)
			opt.TimeBudgetHours = budget
			return s.run(fmt.Sprintf("fig10-mshchampion-seed%d", seed), p, opt)
		}},
		{"UNICO", func(p core.Platform, seed int64, budget float64) core.Result {
			opt := core.UNICOOptions(s.Batch, manyIters, s.BMax, seed)
			opt.TimeBudgetHours = budget
			return s.run(fmt.Sprintf("fig10-unico-seed%d", seed), p, opt)
		}},
	}
	nets := []workload.Workload{workload.UNet(), workload.SRGAN(), workload.BERT(), workload.ViT()}
	res := traceComparison(hw.Edge, nets, methods, s)
	printCurves(w, "Figure 10: ablation (update rule x halving variant)", res)
	if w != nil {
		base := meanOf(res, "HASCO")
		for _, c := range res.Curves {
			fprintf(w, "  convergence regret %-13s mean %.5f final %.5f (vs HASCO %+.1f%%)\n",
				c.Method, c.Mean(), c.Final(), relImprove(base, c.Mean()))
		}
	}
	return res
}

// relImprove returns how much smaller (better) v is than base, in percent.
func relImprove(base, v float64) float64 {
	if base <= 0 {
		return 0
	}
	return (base - v) / base * 100
}

func meanOf(r CurveResult, method string) float64 {
	for _, c := range r.Curves {
		if c.Method == method {
			return c.Mean()
		}
	}
	return 0
}

// traceComparison runs every method on every network and averages the
// normalized hypervolume-difference trajectories on a common time grid.
func traceComparison(sc hw.Scenario, nets []workload.Workload, methods []methodSpec, s Scale) CurveResult {
	const gridN = 24
	sums := make([][]float64, len(methods))
	for i := range sums {
		sums[i] = make([]float64, gridN)
	}
	var maxHours float64
	type netRun struct {
		traces []core.TracePoint
	}
	allRuns := make([][]netRun, len(methods))
	for i := range allRuns {
		allRuns[i] = make([]netRun, len(nets))
	}
	refs := make([][]float64, len(nets))
	bests := make([]float64, len(nets))

	for ni, net := range nets {
		p := spatialPlatform(sc, net)
		var pool [][]float64
		results := make([]core.Result, len(methods))
		budget := 0.0
		for mi, m := range methods {
			results[mi] = m.run(p, s.Seed+int64(ni)*977+int64(mi)*13, budget)
			if mi == 0 {
				// The first method (HASCO) sets the equal-cost budget.
				budget = results[mi].Hours
			}
			for _, c := range results[mi].Front {
				pool = append(pool, c.Objectives(false))
			}
			if h := results[mi].Hours; h > maxHours {
				maxHours = h
			}
			allRuns[mi][ni] = netRun{traces: results[mi].Trace}
		}
		refs[ni] = refPoint(pool)
		bests[ni] = normHV(pool, refs[ni])
	}
	if maxHours <= 0 {
		maxHours = 1
	}

	curves := make([]MethodCurve, len(methods))
	for mi, m := range methods {
		hours := make([]float64, gridN)
		diffs := make([]float64, gridN)
		for g := 0; g < gridN; g++ {
			t := maxHours * float64(g+1) / gridN
			hours[g] = t
			sum := 0.0
			for ni := range nets {
				hv := hvAt(allRuns[mi][ni].traces, t, refs[ni])
				d := bests[ni] - hv
				if d < 0 {
					d = 0
				}
				sum += d
			}
			diffs[g] = sum / float64(len(nets))
		}
		curves[mi] = MethodCurve{Method: m.name, Hours: hours, HVDiff: diffs}
	}
	return CurveResult{Scenario: sc, Curves: curves}
}

// hvAt returns the normalized hypervolume of the latest trace snapshot at or
// before time t (0 before the first snapshot).
func hvAt(trace []core.TracePoint, t float64, ref []float64) float64 {
	idx := sort.Search(len(trace), func(i int) bool { return trace[i].Hours > t }) - 1
	if idx < 0 {
		return 0
	}
	return normHV(trace[idx].FrontPPA, ref)
}

func printCurves(w io.Writer, title string, res CurveResult) {
	if w == nil {
		return
	}
	fprintf(w, "=== %s ===\n", title)
	fprintf(w, "%10s", "hours")
	for _, c := range res.Curves {
		fprintf(w, " %13s", c.Method)
	}
	fprintf(w, "\n")
	if len(res.Curves) == 0 {
		return
	}
	for g := range res.Curves[0].Hours {
		fprintf(w, "%10.2f", res.Curves[0].Hours[g])
		for _, c := range res.Curves {
			fprintf(w, " %13.4f", c.HVDiff[g])
		}
		fprintf(w, "\n")
	}
}
