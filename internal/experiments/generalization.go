package experiments

import (
	"io"
	"math"

	"unico/internal/baselines"
	"unico/internal/core"
	"unico/internal/hw"
	"unico/internal/workload"
)

// GenRow is one validation network of the Fig. 9 study.
type GenRow struct {
	Network string
	// UNICODist and HASCODist are the normalized min-Euclidean distances of
	// the PPA each method's hardware achieves on the network.
	UNICODist, HASCODist float64
	// GainRatio is HASCODist / UNICODist (> 1 means UNICO's hardware
	// generalizes better).
	GainRatio float64
}

// GeneralizationResult is the outcome of the Fig. 9 study.
type GeneralizationResult struct {
	UNICOHW, HASCOHW string
	Rows             []GenRow
	// AvgImprovementPct is the average min-Euclid improvement of UNICO's
	// hardware over HASCO's across the validation networks (paper: 44%).
	AvgImprovementPct float64
}

// RunGeneralization reproduces Fig. 9: co-optimize on the training set
// {MobileNetV2, ResNet, SRGAN, VGG} with UNICO (robustness objective on) and
// with the HASCO-like baseline; adopt each method's min-Euclid hardware; and
// compare the PPA both achieve on eight unseen networks via individual
// mapping searches.
func RunGeneralization(w io.Writer, s Scale) GeneralizationResult {
	train := []workload.Workload{
		workload.MobileNetV2(), workload.ResNet(), workload.SRGAN(), workload.VGG(),
	}
	validation := []workload.Workload{
		workload.UNet(), workload.ViT(), workload.Xception(),
		workload.MobileNetV3Large(), workload.MobileNetV3Small(),
		workload.NASNetMobile(), workload.EfficientNetV2(), workload.ConvNeXt(),
	}
	p := spatialPlatform(hw.Edge, train...)

	// Stable sensitivity estimates need minimum budgets even at small
	// scales (R is a distributional statistic of the mapping search).
	iters, bmax := max(s.MaxIter, 8), max(s.BMax, 80)
	s.BMax = bmax
	unicoRes := s.run("fig9-unico", p, core.UNICOOptions(s.Batch, iters, bmax, s.Seed))
	hascoRes := baselines.HASCO(p, s.Batch, max(s.HASCOIter, 8), bmax, s.Seed+7, nil, 0)

	out := GeneralizationResult{}
	// Representative selection uses a normalization pool shared by both
	// fronts, so the two methods pick designs aiming at the same knee.
	// UNICO's selection additionally uses the sensitivity metric R (the
	// paper: R "is not only an additional MOBO optimization objective but
	// also being used in selecting" the hardware): among its designs whose
	// knee distance is within 15% of its best, it picks the most robust.
	var pool [][]float64
	for _, c := range unicoRes.Front {
		pool = append(pool, c.Objectives(false))
	}
	for _, c := range hascoRes.Front {
		pool = append(pool, c.Objectives(false))
	}
	uRep, uOK := robustKnee(unicoRes.Front, pool, 0.15)
	hRep, hOK := robustKnee(hascoRes.Front, pool, 0)
	if !uOK || !hOK {
		fprintf(w, "generalization: empty front (unico=%v hasco=%v)\n", uOK, hOK)
		return out
	}
	out.UNICOHW = p.Describe(uRep.X)
	out.HASCOHW = p.Describe(hRep.X)
	fprintf(w, "=== Figure 9: generalization to unseen DNNs ===\n")
	fprintf(w, "UNICO HW: %s\nHASCO HW: %s\n", out.UNICOHW, out.HASCOHW)
	fprintf(w, "%-16s %12s %12s %10s\n", "Network", "UNICO dist", "HASCO dist", "gain")

	var sumImp float64
	var n int
	for vi, net := range validation {
		// Validation searches get double budget so the comparison reflects
		// the hardware, not residual search noise.
		uc, uok := evalHWOnNetwork(hw.Edge, uRep.X, net, 2*s.BMax, s.Seed+1000+int64(vi))
		hc, hok := evalHWOnNetwork(hw.Edge, hRep.X, net, 2*s.BMax, s.Seed+2000+int64(vi))
		if !uok || !hok {
			fprintf(w, "%-16s infeasible (unico=%v hasco=%v)\n", net.Name, uok, hok)
			continue
		}
		// The transfer comparison uses the workload-dependent objectives
		// (latency, power): area is fixed at design time and transfers
		// trivially, so including it would only reward the smaller chip.
		up := uc.Objectives(false)[:2]
		hp := hc.Objectives(false)[:2]
		pool := [][]float64{up, hp}
		row := GenRow{
			Network:   net.Name,
			UNICODist: minEuclidDistance(up, pool),
			HASCODist: minEuclidDistance(hp, pool),
		}
		if row.UNICODist > 0 {
			row.GainRatio = row.HASCODist / row.UNICODist
		}
		out.Rows = append(out.Rows, row)
		sumImp += (row.HASCODist - row.UNICODist) / row.HASCODist * 100
		n++
		fprintf(w, "%-16s %12.4f %12.4f %9.2fx\n",
			row.Network, row.UNICODist, row.HASCODist, row.GainRatio)
	}
	if n > 0 {
		out.AvgImprovementPct = sumImp / float64(n)
	}
	fprintf(w, "average min-Euclid improvement of UNICO HW: %.1f%%\n", out.AvgImprovementPct)
	return out
}

// robustKnee picks a front's representative against a shared normalization
// pool: the design with the minimum range-normalized distance to the pool's
// ideal corner, with near-ties (knee distance within (1+band) of the best)
// broken by the lowest sensitivity R. band = 0 disables the tie-break.
func robustKnee(front []core.Candidate, pool [][]float64, band float64) (core.Candidate, bool) {
	if len(front) == 0 {
		return core.Candidate{}, false
	}
	if len(pool) == 0 {
		for _, c := range front {
			pool = append(pool, c.Objectives(false))
		}
	}
	d := len(pool[0])
	lo := append([]float64(nil), pool[0]...)
	hi := append([]float64(nil), pool[0]...)
	for _, p := range pool {
		for j, v := range p {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	dist := func(p []float64) float64 {
		sum := 0.0
		for j := 0; j < d; j++ {
			span := hi[j] - lo[j]
			if span <= 0 {
				continue
			}
			nv := (p[j] - lo[j]) / span
			sum += nv * nv
		}
		return math.Sqrt(sum)
	}
	ds := make([]float64, len(front))
	best := 0
	for i, c := range front {
		ds[i] = dist(c.Objectives(false))
		if ds[i] < ds[best] {
			best = i
		}
	}
	sel := best
	for i := range front {
		if ds[i] <= ds[best]*(1+band) && front[i].Sensitivity < front[sel].Sensitivity {
			sel = i
		}
	}
	return front[sel], true
}
