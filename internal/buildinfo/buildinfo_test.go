package buildinfo

import (
	"strings"
	"testing"
)

func TestRevisionNonEmptyAndStable(t *testing.T) {
	r1, r2 := Revision(), Revision()
	if r1 == "" {
		t.Fatal("Revision() is empty")
	}
	if r1 != r2 {
		t.Fatalf("Revision() not stable: %q then %q", r1, r2)
	}
	if len(r1) > 12 {
		t.Errorf("Revision() = %q, want at most 12 chars", r1)
	}
}

func TestGoVersion(t *testing.T) {
	if v := GoVersion(); !strings.HasPrefix(v, "go") {
		t.Errorf("GoVersion() = %q, want go-prefixed", v)
	}
}

func TestPublishIdempotent(t *testing.T) {
	Publish()
	Publish() // second call must not panic on duplicate registration
}
