// Package buildinfo resolves the build's identity — Go toolchain version
// and VCS revision — once, from the binary's embedded build metadata, and
// publishes it as the unico_build_info gauge. The same revision string is
// stamped into flight-record headers and cmd/unicobench environment
// blocks, so a dashboard series, a flight record, and a bench baseline
// can all be traced to the same commit.
package buildinfo

import (
	"runtime"
	"runtime/debug"
	"sync"

	"unico/internal/telemetry"
)

var (
	revOnce sync.Once
	rev     string

	pubOnce sync.Once
)

// Revision returns the VCS revision the binary was built from, shortened
// to 12 hex characters, or "unknown" when the binary carries no VCS stamp
// (go test binaries, builds outside a checkout).
func Revision() string {
	revOnce.Do(func() {
		rev = "unknown"
		info, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				if len(s.Value) > 12 {
					rev = s.Value[:12]
				} else {
					rev = s.Value
				}
				return
			}
		}
	})
	return rev
}

// GoVersion returns the running toolchain version (e.g. "go1.22.1").
func GoVersion() string { return runtime.Version() }

// Publish sets the unico_build_info gauge to 1 with the build's identity
// as labels. Idempotent; every daemoned cmd calls it at startup.
func Publish() {
	pubOnce.Do(func() {
		telemetry.BuildInfo(GoVersion(), Revision()).Set(1)
	})
}
