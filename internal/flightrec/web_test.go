package flightrec

import (
	"flag"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenData is a fixed run whose rendering is pinned byte-for-byte: the
// renderer is deterministic (no wall-clock, fixed float formatting), so any
// change to the markup or the SVG math shows up as a golden diff.
func goldenData() RunData {
	d := RunData{Header: testHeader()}
	for i := 1; i <= 4; i++ {
		it := testIteration(i)
		it.Type = TypeIteration
		if i == 2 {
			it.UUL = ExtFloat(1.25) // first surrogate update: UUL becomes finite
		}
		d.Iters = append(d.Iters, it)
	}
	s := Summary{Type: TypeSummary, CacheHits: 3, CacheMisses: 9}.fillFromLast(&d.Iters[3])
	d.Summary = &s
	return d
}

func TestReportHTMLGolden(t *testing.T) {
	got := ReportHTML(goldenData(), "unico run report — golden")
	path := filepath.Join("testdata", "report_golden.html")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test ./internal/flightrec -run Golden -update`)", err)
	}
	if string(got) != string(want) {
		t.Errorf("rendered report differs from %s (regenerate with -update if the change is intended)\ngot:\n%s", path, got)
	}
}

func TestHypervolumeSVGShape(t *testing.T) {
	svg := HypervolumeSVG(goldenData().Iters)
	for _, want := range []string{"<svg", "polyline", "hypervolume", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Errorf("hypervolume SVG missing %q", want)
		}
	}
	if empty := HypervolumeSVG(nil); !strings.Contains(empty, "no data") {
		t.Errorf("empty-run SVG should carry a no-data note, got %q", empty)
	}
}

func TestScatterSVGShape(t *testing.T) {
	front := [][]float64{{1, 100, 2}, {2, 50, 1}, {3, 25, 0.5}}
	svg := ScatterSVG(front, 0, 1)
	if strings.Count(svg, "<circle") != len(front) {
		t.Errorf("scatter has %d points, want %d:\n%s", strings.Count(svg, "<circle"), len(front), svg)
	}
	if !strings.Contains(svg, "latency ms") || !strings.Contains(svg, "power mW") {
		t.Errorf("axis labels missing:\n%s", svg)
	}
	// A point with a non-finite coordinate must not emit NaN into the markup.
	bad := ScatterSVG([][]float64{{math.NaN(), 1, 1}}, 0, 1)
	if strings.Contains(bad, "NaN") {
		t.Errorf("NaN leaked into SVG coordinates:\n%s", bad)
	}
}

func TestRungTableNewestFirst(t *testing.T) {
	html := RungTableHTML(goldenData().Iters, 2)
	i4 := strings.Index(html, "<td>4</td>")
	i3 := strings.Index(html, "<td>3</td>")
	if i4 < 0 || i3 < 0 || i4 > i3 {
		t.Errorf("rows not newest-first (idx4=%d idx3=%d):\n%s", i4, i3, html)
	}
	if strings.Contains(html, "<td>2</td>") {
		t.Errorf("maxRows not applied:\n%s", html)
	}
	if !strings.Contains(html, "6 → 3 → 1") {
		t.Errorf("survivor curve missing:\n%s", html)
	}
}

func TestDashboardHandler(t *testing.T) {
	l := NewLive()
	l.StartRun(testHeader())
	l.RecordIteration(testIteration(1))

	rec := httptest.NewRecorder()
	DashboardHandler(l).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/unico", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	if rec.Header().Get("Refresh") == "" {
		t.Error("no auto-refresh header")
	}
	body := rec.Body.String()
	if !strings.Contains(body, "run abcd1234") || !strings.Contains(body, "<svg") {
		t.Errorf("dashboard body incomplete:\n%.400s", body)
	}

	rec = httptest.NewRecorder()
	DashboardHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/unico", nil))
	if rec.Code != 503 {
		t.Errorf("nil source: status %d, want 503", rec.Code)
	}
}

// TestLiveConcurrentEmitAndRender exercises the dashboard's real concurrency
// shape under -race: one writer appending iterations through the process-wide
// emit path while readers snapshot and render the full HTML page.
func TestLiveConcurrentEmitAndRender(t *testing.T) {
	l := NewLive()
	SetLive(l)
	defer SetLive(nil)
	EmitLiveStart(testHeader())

	const iters = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= iters; i++ {
			EmitLive(testIteration(i))
		}
		EmitLiveFinish(Summary{})
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				d := l.Snapshot()
				if html := ReportHTML(d, "race"); len(html) == 0 {
					t.Error("empty render")
					return
				}
			}
		}()
	}
	wg.Wait()

	d := l.Snapshot()
	if len(d.Iters) != iters || d.Summary == nil {
		t.Errorf("final live state: %d iters, summary %v", len(d.Iters), d.Summary)
	}
	for i, it := range d.Iters {
		if it.Iter != i+1 {
			t.Fatalf("iteration order broken at %d: %d", i, it.Iter)
		}
	}
}

func TestLiveResumeAndDedup(t *testing.T) {
	l := NewLive()
	var history []Iteration
	for i := 1; i <= 3; i++ {
		it := testIteration(i)
		it.Type = TypeIteration
		history = append(history, it)
	}
	l.ResumeRun(testHeader(), history)
	// A defensive replay of iteration 3 must replace, not duplicate.
	l.RecordIteration(testIteration(3))
	l.RecordIteration(testIteration(4))
	d := l.Snapshot()
	if len(d.Iters) != 4 {
		t.Fatalf("%d iterations after dedup, want 4", len(d.Iters))
	}
	for i, it := range d.Iters {
		if it.Iter != i+1 {
			t.Errorf("position %d holds iteration %d", i, it.Iter)
		}
	}
}

func TestEmitWithoutStoreIsNoop(t *testing.T) {
	SetLive(nil)
	// Must not panic.
	EmitLiveStart(testHeader())
	EmitLive(testIteration(1))
	EmitLiveFinish(Summary{})
	if ActiveLive() != nil {
		t.Error("store appeared from nowhere")
	}
}

func BenchmarkReportHTML(b *testing.B) {
	d := goldenData()
	for i := 5; i <= 100; i++ {
		it := testIteration(i)
		it.Type = TypeIteration
		d.Iters = append(d.Iters, it)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := ReportHTML(d, "bench"); len(out) == 0 {
			b.Fatal("empty render")
		}
	}
}

func ExampleReportHTML() {
	d := RunData{Header: Header{RunID: "ex", Method: "UNICO"}}
	html := ReportHTML(d, "example")
	fmt.Println(strings.Contains(string(html), "waiting for the first completed iteration"))
	// Output: true
}
