// Package flightrec is the co-search flight recorder: a per-run, durable,
// crash-tolerant `run.jsonl` artifact that captures how a search converged —
// the run's identity (seed, platform, options fingerprint, run ID), one
// record per completed optimizer iteration (objective bests, feasible-front
// points, hypervolume, UUL, successive-halving survivor curve, eval and
// cache counters), and a final summary — plus the tools that read it back:
// an in-memory live store feeding the `/debug/unico` dashboard, server-side
// SVG/HTML rendering shared by the dashboard and the offline `unicoreport`
// tool, and run-diff math for regression gating.
//
// The artifact is line-oriented JSON: the first line is the header, then one
// iteration record per completed iteration in order, then (for runs that
// finished) one summary line. Every iteration append is flushed and fsynced
// before the search proceeds, so a crash loses at most the iteration in
// flight — the same durability boundary as the checkpoint write-ahead
// journal, which is what makes resumed artifacts stitch together exactly
// (see Resume).
//
// The package deliberately has no dependency on the co-optimizer: record
// types are self-contained, so internal/core can import it (mirroring how
// internal/checkpoint sits below core on the other side).
package flightrec

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"sync"

	"unico/internal/perfprof"
)

// Record type tags, the "type" field of each artifact line.
const (
	TypeHeader    = "header"
	TypeIteration = "iteration"
	TypeSummary   = "summary"
)

// ExtFloat is a float64 whose JSON form survives ±Inf and NaN (encoded as
// the strings "+Inf", "-Inf", "NaN"), for fields like the UUL threshold
// that are +Inf until the first surrogate update.
type ExtFloat float64

// MarshalJSON encodes non-finite values as quoted strings.
func (f ExtFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON decodes both plain numbers and the quoted non-finite forms.
func (f *ExtFloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf", "Inf":
			*f = ExtFloat(math.Inf(1))
		case "-Inf":
			*f = ExtFloat(math.Inf(-1))
		case "NaN":
			*f = ExtFloat(math.NaN())
		default:
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("flightrec: bad ExtFloat %q", s)
			}
			*f = ExtFloat(v)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = ExtFloat(v)
	return nil
}

// Header is the artifact's first line: the run's identity. StartedAt is
// wall-clock and RunID is random, so comparisons between artifacts (the
// kill/resume identity test, run diffs) key on the deterministic fields and
// the iteration/summary records instead.
type Header struct {
	Type string `json:"type"`
	// RunID is the correlation ID every log record and dist request of this
	// run carries (internal/runid).
	RunID string `json:"run_id"`
	// StartedAt is the wall-clock start time, RFC 3339.
	StartedAt string `json:"started_at,omitempty"`
	// Revision is the VCS revision the recording binary was built from
	// (internal/buildinfo), correlating the artifact with bench baselines
	// and dashboard series of the same commit.
	Revision string `json:"revision,omitempty"`
	// Method is the co-optimization method name ("UNICO", "HASCO", ...).
	Method string `json:"method,omitempty"`
	// Workload is the (combined) workload name under co-optimization.
	Workload string `json:"workload,omitempty"`
	// Seed, Batch, MaxIter, BMax are the run sizes.
	Seed    int64 `json:"seed"`
	Batch   int   `json:"batch,omitempty"`
	MaxIter int   `json:"max_iter,omitempty"`
	BMax    int   `json:"b_max,omitempty"`
	// Fingerprint is the checkpoint contract's run fingerprint (platform
	// type, space dim, seed, sizes, ablation switches), carried as an opaque
	// JSON object so this package stays below internal/core.
	Fingerprint any `json:"fingerprint,omitempty"`
}

// Iteration is one per-iteration convergence record — the data behind the
// paper's hypervolume-vs-cost curves (Figs. 7 and 10), self-recorded.
// Every field is a deterministic function of the run configuration, so a
// resumed run appends records identical to the ones an uninterrupted run
// would have written.
type Iteration struct {
	Type string `json:"type"`
	// Iter is the optimizer iteration (1-based).
	Iter int `json:"iter"`
	// SimHours is the simulated search cost at the end of the iteration.
	SimHours float64 `json:"sim_hours"`
	// Hypervolume is the feasible front's hypervolume against the running
	// nadir reference (comparable within a run).
	Hypervolume float64 `json:"hypervolume"`
	// UUL is the high-fidelity rule's Upper Update Limit (+Inf until the
	// first surrogate update).
	UUL ExtFloat `json:"uul"`
	// Evals is the cumulative mapping budget spent.
	Evals int `json:"evals"`
	// Admitted is how many of this batch's samples entered the surrogate
	// training set; TrainSize is the set size afterwards.
	Admitted  int `json:"admitted"`
	TrainSize int `json:"train_size,omitempty"`
	// BatchFeasible counts this batch's feasible candidates.
	BatchFeasible int `json:"batch_feasible"`
	// Best is the componentwise best (minimum) of each objective over the
	// feasible front: latency ms, power mW, area mm².
	Best []float64 `json:"best,omitempty"`
	// Front holds the feasible Pareto front's (latency, power, area) points.
	Front [][]float64 `json:"front,omitempty"`
	// RungAlive is the successive-halving survivor curve of this batch: the
	// candidate count alive after each rung, starting with the full batch.
	RungAlive []int `json:"rung_alive,omitempty"`
	// CacheHits/CacheMisses snapshot the evaluation cache's cumulative
	// counters (zero when no cache is attached).
	CacheHits   uint64 `json:"cache_hits,omitempty"`
	CacheMisses uint64 `json:"cache_misses,omitempty"`
	// Phases is this iteration's phase-attribution delta: per-phase span
	// counts and simulated-clock seconds (internal/perfprof), sorted by
	// path. Wall times are deliberately absent — every field here is a
	// deterministic function of the run configuration, preserving the
	// kill/resume bit-identity contract.
	Phases []perfprof.PhaseDelta `json:"phases,omitempty"`
	// TraceSpan cross-references the distributed-trace span of this
	// iteration (internal/disttrace, "r<run>-it<iter>"). The ID is a pure
	// function of the run ordinal and iteration number, and the field is
	// absent entirely when tracing is disabled — both properties keep
	// flight records bit-identical across kill/resume and across
	// traced/untraced comparison runs.
	TraceSpan string `json:"trace_span,omitempty"`
}

// Summary is the artifact's final line, written when a run returns. A killed
// run leaves no summary; resuming truncates any summary before appending, so
// a finished artifact always has exactly one, matching an uninterrupted run.
type Summary struct {
	Type string `json:"type"`
	// Iters is the last completed iteration.
	Iters int `json:"iters"`
	// SimHours is the total simulated search cost.
	SimHours float64 `json:"sim_hours"`
	// Evals is the total mapping budget spent.
	Evals int `json:"evals"`
	// FrontSize and Hypervolume describe the final feasible front.
	FrontSize   int     `json:"front_size"`
	Hypervolume float64 `json:"hypervolume"`
	// CacheHits/CacheMisses are the run's evaluation-cache counters.
	CacheHits   uint64 `json:"cache_hits,omitempty"`
	CacheMisses uint64 `json:"cache_misses,omitempty"`
	// Interrupted records that the run was cancelled (SIGINT/SIGTERM) before
	// MaxIter; the artifact then covers the completed prefix.
	Interrupted bool `json:"interrupted,omitempty"`
}

// fillFromLast completes a summary's zero-valued convergence fields from the
// last recorded iteration, so writers only supply what the iteration stream
// cannot know (cache counters, interruption). Shared by the durable recorder
// and the live store, keeping their summaries consistent.
func (s Summary) fillFromLast(last *Iteration) Summary {
	if last == nil {
		return s
	}
	if s.Iters == 0 {
		s.Iters = last.Iter
	}
	if s.SimHours == 0 {
		s.SimHours = last.SimHours
	}
	if s.Evals == 0 {
		s.Evals = last.Evals
	}
	if s.FrontSize == 0 {
		s.FrontSize = len(last.Front)
	}
	if s.Hypervolume == 0 {
		s.Hypervolume = last.Hypervolume
	}
	return s
}

// Sink receives per-iteration flight records from a running co-search.
// internal/core emits to it after every completed iteration, at the same
// boundary as the checkpoint journal. Implementations must be safe for
// concurrent use with readers (the dashboard renders while the search runs).
type Sink interface {
	RecordIteration(it Iteration)
}

// RunData is a fully loaded (or live-snapshot) artifact.
type RunData struct {
	Header  Header
	Iters   []Iteration
	Summary *Summary
}

// LastIter returns the last recorded iteration number (0 when none).
func (d *RunData) LastIter() int {
	if n := len(d.Iters); n > 0 {
		return d.Iters[n-1].Iter
	}
	return 0
}

// Recorder is the file-backed flight recorder. Safe for use by one run at a
// time; methods are serialized internally.
type Recorder struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	err  error      // first write failure; latched, disables the recorder
	last *Iteration // last appended (or resumed-past) iteration, for Finish
}

// Create starts a fresh artifact at path: the file is truncated and the
// header written (and synced) immediately, so even a run that dies in its
// first iteration leaves an identifiable artifact behind.
func Create(path string, hdr Header) (*Recorder, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("flightrec: create %s: %w", path, err)
	}
	r := &Recorder{f: f, w: bufio.NewWriter(f)}
	hdr.Type = TypeHeader
	if err := r.writeLine(hdr); err != nil {
		_ = f.Close()
		return nil, err
	}
	return r, nil
}

// Resume continues the artifact at path for a run resumed from a checkpoint
// whose last completed iteration is lastIter. The existing file is kept up
// to and including iteration lastIter — its header and the records of the
// iterations the checkpoint replays — and truncated beyond it: any summary
// (the run is continuing), any iteration past the checkpoint boundary (those
// iterations re-run), and any torn trailing line (the residue of a crash
// mid-append). The resumed run then appends from lastIter+1, producing an
// artifact record-identical to an uninterrupted run's.
//
// A missing or headerless file falls back to Create: the artifact then
// covers only the resumed portion (documented; there is nothing durable to
// stitch to).
func Resume(path string, hdr Header, lastIter int) (*Recorder, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if errors.Is(err, os.ErrNotExist) {
		return Create(path, hdr)
	}
	if err != nil {
		return nil, fmt.Errorf("flightrec: open %s: %w", path, err)
	}
	keep, lastKept, ok := scanKeepPrefix(f, lastIter)
	if !ok {
		// No parseable header: start over rather than appending to garbage.
		_ = f.Close()
		return Create(path, hdr)
	}
	if err := f.Truncate(keep); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("flightrec: truncate %s: %w", path, err)
	}
	if _, err := f.Seek(keep, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("flightrec: seek %s: %w", path, err)
	}
	r := &Recorder{f: f, w: bufio.NewWriter(f), last: lastKept}
	return r, nil
}

// scanKeepPrefix scans the artifact and returns the byte length of the
// prefix to keep on resume — the header plus the contiguous iteration
// records with Iter <= lastIter — along with the last kept iteration.
// ok is false when the first line is not a parseable header.
func scanKeepPrefix(f *os.File, lastIter int) (keep int64, lastKept *Iteration, ok bool) {
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, nil, false
	}
	off := int64(0)
	first := true
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn trailing line
		}
		line := data[:nl]
		var probe struct {
			Type string `json:"type"`
			Iter int    `json:"iter"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			break
		}
		if first {
			if probe.Type != TypeHeader {
				return 0, nil, false
			}
			first = false
		} else {
			if probe.Type != TypeIteration || probe.Iter > lastIter {
				break
			}
			var it Iteration
			if err := json.Unmarshal(line, &it); err != nil {
				break
			}
			lastKept = &it
		}
		off += int64(nl) + 1
		data = data[nl+1:]
	}
	if first {
		return 0, nil, false // empty file
	}
	return off, lastKept, true
}

// writeLine appends one JSON line and makes it durable (flush + fsync) —
// the crash-tolerance contract: a record is on disk before the search moves
// past the boundary it describes.
func (r *Recorder) writeLine(v any) error {
	if r.f == nil {
		return errors.New("flightrec: recorder is closed")
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("flightrec: marshal: %w", err)
	}
	if _, err := r.w.Write(append(payload, '\n')); err != nil {
		return fmt.Errorf("flightrec: append: %w", err)
	}
	if err := r.w.Flush(); err != nil {
		return fmt.Errorf("flightrec: flush: %w", err)
	}
	if err := r.f.Sync(); err != nil {
		return fmt.Errorf("flightrec: sync: %w", err)
	}
	return nil
}

// RecordIteration appends one iteration record (implements Sink). Errors
// are latched: the first failure disables the recorder so one bad disk does
// not fail every subsequent iteration; Err reports it.
func (r *Recorder) RecordIteration(it Iteration) {
	it.Type = TypeIteration
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil || r.f == nil {
		return
	}
	if err := r.writeLine(it); err != nil {
		r.err = err
		return
	}
	cp := it
	r.last = &cp
}

// Err returns the first write failure, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Finish writes the summary line and closes the recorder. Zero-valued
// convergence fields (Iters, SimHours, Evals, FrontSize, Hypervolume) are
// filled from the last recorded iteration, so callers only supply what the
// iteration stream cannot know (cache counters, interruption).
func (r *Recorder) Finish(s Summary) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return errors.New("flightrec: recorder is closed")
	}
	if r.err != nil {
		err := r.err
		r.closeLocked()
		return err
	}
	s.Type = TypeSummary
	s = s.fillFromLast(r.last)
	werr := r.writeLine(s)
	cerr := r.closeLocked()
	if werr != nil {
		return werr
	}
	return cerr
}

// Close releases the file without writing a summary (a killed or failed
// run). Idempotent.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closeLocked()
}

func (r *Recorder) closeLocked() error {
	if r.f == nil {
		return nil
	}
	_ = r.w.Flush()
	err := r.f.Close()
	r.f = nil
	return err
}

// Load reads an artifact back into a RunData. It is tolerant of the residue
// of a crash — a torn trailing line is skipped — but a missing or malformed
// header is an error: the file is not a flight record. Skipped (malformed
// mid-file) lines are counted in the returned int.
func Load(path string) (*RunData, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("flightrec: open %s: %w", path, err)
	}
	defer f.Close()
	return Read(f)
}

// Read parses an artifact stream; see Load.
func Read(rd io.Reader) (*RunData, int, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	data := &RunData{}
	skipped := 0
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			if first {
				return nil, 0, fmt.Errorf("flightrec: malformed header line: %w", err)
			}
			skipped++ // torn or corrupt line (crash residue)
			continue
		}
		switch probe.Type {
		case TypeHeader:
			if !first {
				skipped++
				continue
			}
			if err := json.Unmarshal(line, &data.Header); err != nil {
				return nil, 0, fmt.Errorf("flightrec: decode header: %w", err)
			}
		case TypeIteration:
			if first {
				return nil, 0, errors.New("flightrec: artifact does not start with a header record")
			}
			var it Iteration
			if err := json.Unmarshal(line, &it); err != nil {
				skipped++
				continue
			}
			data.Iters = append(data.Iters, it)
		case TypeSummary:
			if first {
				return nil, 0, errors.New("flightrec: artifact does not start with a header record")
			}
			var s Summary
			if err := json.Unmarshal(line, &s); err != nil {
				skipped++
				continue
			}
			data.Summary = &s
		default:
			if first {
				return nil, 0, fmt.Errorf("flightrec: artifact starts with %q record, want header", probe.Type)
			}
			skipped++
		}
		first = false
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("flightrec: read artifact: %w", err)
	}
	if first {
		return nil, 0, errors.New("flightrec: empty artifact")
	}
	return data, skipped, nil
}
