package flightrec

import (
	"sync"
	"sync/atomic"
)

// Live is the in-memory flight record of the current run, feeding the
// `/debug/unico` dashboard while a search executes. It implements Sink (the
// write side, driven by the co-optimizer) and Snapshot (the read side,
// driven by the dashboard handler); both are safe to call concurrently.
//
// StartRun resets the store, so one Live follows a whole process through a
// sequence of runs (cmd/experiments), always showing the run in flight.
type Live struct {
	mu   sync.RWMutex
	data RunData
}

// NewLive returns an empty live store.
func NewLive() *Live { return &Live{} }

// StartRun begins a new run: the header is recorded and any previous run's
// records are dropped.
func (l *Live) StartRun(hdr Header) {
	hdr.Type = TypeHeader
	l.mu.Lock()
	l.data = RunData{Header: hdr}
	l.mu.Unlock()
}

// ResumeRun begins a resumed run: like StartRun, but seeds the store with
// the already-completed iterations loaded from the durable artifact so the
// dashboard shows the whole history, not just the resumed suffix.
func (l *Live) ResumeRun(hdr Header, iters []Iteration) {
	hdr.Type = TypeHeader
	l.mu.Lock()
	l.data = RunData{Header: hdr, Iters: append([]Iteration(nil), iters...)}
	l.mu.Unlock()
}

// RecordIteration appends one iteration record (implements Sink).
func (l *Live) RecordIteration(it Iteration) {
	it.Type = TypeIteration
	l.mu.Lock()
	// A replayed or re-run iteration (resume races, defensive) replaces any
	// record with the same or later index rather than duplicating it.
	for len(l.data.Iters) > 0 && l.data.Iters[len(l.data.Iters)-1].Iter >= it.Iter {
		l.data.Iters = l.data.Iters[:len(l.data.Iters)-1]
	}
	l.data.Iters = append(l.data.Iters, it)
	l.data.Summary = nil
	l.mu.Unlock()
}

// FinishRun records the run's summary, completing zero-valued convergence
// fields from the last recorded iteration like the durable recorder does.
func (l *Live) FinishRun(s Summary) {
	s.Type = TypeSummary
	l.mu.Lock()
	if n := len(l.data.Iters); n > 0 {
		s = s.fillFromLast(&l.data.Iters[n-1])
	}
	l.data.Summary = &s
	l.mu.Unlock()
}

// Snapshot returns a copy of the current run data, safe to render while the
// search keeps appending.
func (l *Live) Snapshot() RunData {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := RunData{Header: l.data.Header}
	out.Iters = append([]Iteration(nil), l.data.Iters...)
	if l.data.Summary != nil {
		s := *l.data.Summary
		out.Summary = &s
	}
	return out
}

// activeLive is the process-wide live store, nil until a CLI installs one
// (mirroring telemetry's default-tracer pattern: deeply nested runners feed
// the dashboard without threading a handle through every signature).
var activeLive atomic.Pointer[Live]

// SetLive installs (or, with nil, removes) the process-wide live store.
func SetLive(l *Live) { activeLive.Store(l) }

// ActiveLive returns the process-wide live store, or nil.
func ActiveLive() *Live { return activeLive.Load() }

// EmitLive forwards one iteration record to the process-wide live store, if
// installed. The co-optimizer calls this after every completed iteration
// regardless of whether a durable recorder is attached.
func EmitLive(it Iteration) {
	if l := activeLive.Load(); l != nil {
		l.RecordIteration(it)
	}
}

// EmitLiveStart forwards a run header to the process-wide live store.
func EmitLiveStart(hdr Header) {
	if l := activeLive.Load(); l != nil {
		l.StartRun(hdr)
	}
}

// EmitLiveResume forwards a resumed run's header and replayed history.
func EmitLiveResume(hdr Header, iters []Iteration) {
	if l := activeLive.Load(); l != nil {
		l.ResumeRun(hdr, iters)
	}
}

// EmitLiveFinish forwards a run summary to the process-wide live store.
func EmitLiveFinish(s Summary) {
	if l := activeLive.Load(); l != nil {
		l.FinishRun(s)
	}
}
