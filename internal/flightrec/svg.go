// Server-side SVG rendering of a run's convergence views: the hypervolume
// curve, 2-D projections of the feasible Pareto front, and the
// successive-halving survivor table. Pure functions of RunData — no
// JavaScript, no external assets — so the same markup serves the live
// `/debug/unico` dashboard and the offline unicoreport HTML report, and a
// golden-file test can pin the output byte-for-byte.

package flightrec

import (
	"fmt"
	"html"
	"math"
	"strconv"
	"strings"
)

// plot geometry shared by the SVG views.
const (
	plotW, plotH   = 420, 240
	plotML, plotMR = 56, 12 // left/right margins (axis labels)
	plotMT, plotMB = 16, 34 // top/bottom margins
)

// fnum renders a float deterministically and compactly for SVG/HTML output.
func fnum(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	if math.IsInf(v, -1) {
		return "-inf"
	}
	if math.IsNaN(v) {
		return "nan"
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// coord renders an SVG coordinate with fixed precision.
func coord(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// scale maps v from [lo,hi] to pixel range [plo,phi] (degenerate ranges map
// to the midpoint).
func scale(v, lo, hi, plo, phi float64) float64 {
	if hi <= lo {
		return (plo + phi) / 2
	}
	return plo + (v-lo)/(hi-lo)*(phi-plo)
}

// HypervolumeSVG renders the hypervolume-vs-iteration curve — the live
// counterpart of the paper's Fig. 7 convergence curves.
func HypervolumeSVG(iters []Iteration) string {
	var b strings.Builder
	openSVG(&b, "Hypervolume vs iteration")
	if len(iters) == 0 {
		emptyNote(&b)
		closeSVG(&b)
		return b.String()
	}
	minI, maxI := float64(iters[0].Iter), float64(iters[len(iters)-1].Iter)
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, it := range iters {
		minV = math.Min(minV, it.Hypervolume)
		maxV = math.Max(maxV, it.Hypervolume)
	}
	axes(&b, minI, maxI, minV, maxV, "iteration", "hypervolume")
	var pts []string
	for _, it := range iters {
		x := scale(float64(it.Iter), minI, maxI, plotML, plotW-plotMR)
		y := scale(it.Hypervolume, minV, maxV, plotH-plotMB, plotMT)
		pts = append(pts, coord(x)+","+coord(y))
	}
	fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#1f77b4" stroke-width="1.5"/>`,
		strings.Join(pts, " "))
	for _, p := range pts {
		xy := strings.SplitN(p, ",", 2)
		fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="2.5" fill="#1f77b4"/>`, xy[0], xy[1])
	}
	closeSVG(&b)
	return b.String()
}

// objective axis names of the front's PPA points.
var objNames = [3]string{"latency ms", "power mW", "area mm²"}

// ScatterSVG renders one 2-D projection (objective xi vs yi) of the
// feasible Pareto front.
func ScatterSVG(front [][]float64, xi, yi int) string {
	var b strings.Builder
	title := fmt.Sprintf("Pareto front: %s vs %s", objNames[yi], objNames[xi])
	openSVG(&b, title)
	var xs, ys []float64
	for _, p := range front {
		// Non-finite objectives (penalty placeholders) would render as literal
		// "NaN"/"Inf" coordinates and break the SVG; drop them.
		if xi < len(p) && yi < len(p) &&
			!math.IsNaN(p[xi]) && !math.IsInf(p[xi], 0) &&
			!math.IsNaN(p[yi]) && !math.IsInf(p[yi], 0) {
			xs = append(xs, p[xi])
			ys = append(ys, p[yi])
		}
	}
	if len(xs) == 0 {
		emptyNote(&b)
		closeSVG(&b)
		return b.String()
	}
	minX, maxX := minMax(xs)
	minY, maxY := minMax(ys)
	axes(&b, minX, maxX, minY, maxY, objNames[xi], objNames[yi])
	for i := range xs {
		x := scale(xs[i], minX, maxX, plotML, plotW-plotMR)
		y := scale(ys[i], minY, maxY, plotH-plotMB, plotMT)
		fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="3" fill="#d62728" fill-opacity="0.7"/>`,
			coord(x), coord(y))
	}
	closeSVG(&b)
	return b.String()
}

// RungTableHTML renders the successive-halving survivor curves, one row per
// iteration ("30 → 15 → 8 → 4"), newest first, capped at maxRows.
func RungTableHTML(iters []Iteration, maxRows int) string {
	var b strings.Builder
	b.WriteString(`<table class="rungs"><tr><th>iter</th><th>SH survivors</th><th>feasible</th><th>evals</th></tr>`)
	n := 0
	for i := len(iters) - 1; i >= 0 && n < maxRows; i-- {
		it := iters[i]
		curve := make([]string, len(it.RungAlive))
		for j, a := range it.RungAlive {
			curve[j] = strconv.Itoa(a)
		}
		c := strings.Join(curve, " → ")
		if c == "" {
			c = "–"
		}
		fmt.Fprintf(&b, `<tr><td>%d</td><td>%s</td><td>%d</td><td>%d</td></tr>`,
			it.Iter, html.EscapeString(c), it.BatchFeasible, it.Evals)
		n++
	}
	b.WriteString(`</table>`)
	return b.String()
}

func minMax(vs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

func openSVG(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" role="img">`,
		plotW, plotH+18, plotW, plotH+18)
	fmt.Fprintf(b, `<text x="%d" y="12" font-size="12" font-weight="bold">%s</text>`,
		plotML, html.EscapeString(title))
	// Shift the plot area below the title line.
	fmt.Fprintf(b, `<g transform="translate(0,18)">`)
}

func closeSVG(b *strings.Builder) { b.WriteString(`</g></svg>`) }

func emptyNote(b *strings.Builder) {
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11" fill="#888">no data yet</text>`,
		plotML, plotH/2)
}

// axes draws the plot frame with min/max tick labels on both axes.
func axes(b *strings.Builder, minX, maxX, minY, maxY float64, xlabel, ylabel string) {
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#bbb"/>`,
		plotML, plotMT, plotW-plotML-plotMR, plotH-plotMT-plotMB)
	// X ticks.
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="10" text-anchor="start">%s</text>`,
		plotML, plotH-plotMB+12, fnum(minX))
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="10" text-anchor="end">%s</text>`,
		plotW-plotMR, plotH-plotMB+12, fnum(maxX))
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="10" text-anchor="middle" fill="#555">%s</text>`,
		(plotML+plotW-plotMR)/2, plotH-plotMB+24, html.EscapeString(xlabel))
	// Y ticks.
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="10" text-anchor="end">%s</text>`,
		plotML-4, plotH-plotMB, fnum(minY))
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="10" text-anchor="end">%s</text>`,
		plotML-4, plotMT+8, fnum(maxY))
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="10" text-anchor="middle" fill="#555" transform="rotate(-90 12 %d)">%s</text>`,
		12, (plotMT+plotH-plotMB)/2, (plotMT+plotH-plotMB)/2, html.EscapeString(ylabel))
}
