package flightrec

import (
	"strings"
	"testing"

	"unico/internal/perfprof"
)

func phaseIters() []Iteration {
	mk := func(iter int) Iteration {
		return Iteration{Iter: iter, Phases: []perfprof.PhaseDelta{
			{Path: "iteration", Count: 1, SimSeconds: 100},
			{Path: "iteration/sh.rung", Count: 2, SimSeconds: 90},
			{Path: "iteration/update", Count: 1, SimSeconds: 5},
		}}
	}
	return []Iteration{mk(1), mk(2)}
}

func TestAggregatePhases(t *testing.T) {
	aggs := AggregatePhases(phaseIters())
	byPath := map[string]PhaseAgg{}
	var order []string
	for _, a := range aggs {
		byPath[a.Path] = a
		order = append(order, a.Path)
	}
	if len(order) != 3 || order[0] != "iteration" || order[1] != "iteration/sh.rung" {
		t.Fatalf("paths out of order: %v", order)
	}
	it := byPath["iteration"]
	if it.Count != 2 || it.SimSeconds != 200 {
		t.Errorf("iteration agg = %+v, want count 2 sim 200", it)
	}
	// self = 200 - (180 + 10) children
	if it.SelfSimSeconds != 10 {
		t.Errorf("iteration self sim = %v, want 10", it.SelfSimSeconds)
	}
	if leaf := byPath["iteration/sh.rung"]; leaf.SelfSimSeconds != 180 {
		t.Errorf("sh.rung self sim = %v, want 180 (no children)", leaf.SelfSimSeconds)
	}
}

func TestPhaseBarsSVG(t *testing.T) {
	svg := PhaseBarsSVG(phaseIters())
	if !strings.Contains(svg, "<rect") {
		t.Errorf("bars SVG has no rects:\n%s", svg)
	}
	if !strings.Contains(svg, "iteration/sh.rung") {
		t.Errorf("bars SVG missing dominant phase label:\n%s", svg)
	}
	// Empty input renders the standard empty note, not broken markup.
	if empty := PhaseBarsSVG(nil); !strings.Contains(empty, "no data") {
		t.Errorf("empty bars SVG = %q, want the no-data note", empty)
	}
}

func TestPhaseTableHTML(t *testing.T) {
	tbl := PhaseTableHTML(phaseIters(), 32)
	for _, want := range []string{"iteration/update", "<table", "self sim"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("phase table missing %q:\n%s", want, tbl)
		}
	}
	if trunc := PhaseTableHTML(phaseIters(), 1); strings.Contains(trunc, "iteration/update") {
		t.Errorf("maxRows not honored:\n%s", trunc)
	}
}
