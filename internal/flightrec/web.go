// The HTML faces of a flight record: the live `/debug/unico` dashboard
// (auto-refreshing, rendered from the process-wide Live store) and the
// self-contained offline report unicoreport produces from a run.jsonl.
// Both are the same ReportHTML markup; the dashboard only adds the refresh
// header.

package flightrec

import (
	"fmt"
	"html"
	"net/http"
	"strings"
)

// Source provides a consistent snapshot of a run's records for rendering.
// *Live implements it; loaded artifacts use RunData directly.
type Source interface {
	Snapshot() RunData
}

// Snapshot lets a loaded RunData act as its own Source.
func (d RunData) Snapshot() RunData { return d }

// reportCSS is the inline stylesheet of every rendered page.
const reportCSS = `body{font-family:system-ui,sans-serif;margin:16px;color:#222}
h1{font-size:18px}h2{font-size:14px;margin:18px 0 6px}
table.meta td,table.rungs td,table.rungs th{padding:2px 10px 2px 0;font-size:12px;text-align:left}
table.rungs th{border-bottom:1px solid #bbb}
.charts{display:flex;flex-wrap:wrap;gap:12px}
.state{font-size:12px;color:#555}
code{background:#f4f4f4;padding:0 3px}`

// ReportHTML renders a run's flight record as one self-contained HTML page:
// run identity, state line, hypervolume curve, the three 2-D projections of
// the latest feasible front, and the successive-halving survivor table.
// Deterministic for a given RunData (no wall-clock), so golden tests pin it.
func ReportHTML(d RunData, title string) []byte {
	var b strings.Builder
	h := d.Header
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>%s</title>", html.EscapeString(title))
	fmt.Fprintf(&b, "<style>%s</style></head><body>", reportCSS)
	fmt.Fprintf(&b, "<h1>%s</h1>", html.EscapeString(title))

	b.WriteString(`<table class="meta">`)
	metaRow := func(k, v string) {
		if v != "" {
			fmt.Fprintf(&b, "<tr><td>%s</td><td><code>%s</code></td></tr>",
				html.EscapeString(k), html.EscapeString(v))
		}
	}
	metaRow("run ID", h.RunID)
	metaRow("method", h.Method)
	metaRow("workload", h.Workload)
	if h.Seed != 0 || h.Batch != 0 {
		metaRow("seed / batch / iters / b_max", fmt.Sprintf("%d / %d / %d / %d",
			h.Seed, h.Batch, h.MaxIter, h.BMax))
	}
	metaRow("started", h.StartedAt)
	metaRow("revision", h.Revision)
	b.WriteString(`</table>`)

	switch {
	case d.Summary != nil:
		s := d.Summary
		state := "finished"
		if s.Interrupted {
			state = "interrupted"
		}
		fmt.Fprintf(&b, `<p class="state">%s after %d iterations — %s simulated hours, %d evals, front %d, hypervolume %s`,
			state, s.Iters, fnum(s.SimHours), s.Evals, s.FrontSize, fnum(s.Hypervolume))
		if s.CacheHits+s.CacheMisses > 0 {
			fmt.Fprintf(&b, `, cache %d/%d hits`, s.CacheHits, s.CacheHits+s.CacheMisses)
		}
		b.WriteString(`</p>`)
	case len(d.Iters) > 0:
		last := d.Iters[len(d.Iters)-1]
		fmt.Fprintf(&b, `<p class="state">running — iteration %d, %s simulated hours, %d evals, front %d, hypervolume %s, UUL %s</p>`,
			last.Iter, fnum(last.SimHours), last.Evals, len(last.Front),
			fnum(last.Hypervolume), fnum(float64(last.UUL)))
	default:
		b.WriteString(`<p class="state">waiting for the first completed iteration…</p>`)
	}

	var front [][]float64
	if n := len(d.Iters); n > 0 {
		front = d.Iters[n-1].Front
	}
	b.WriteString(`<div class="charts">`)
	b.WriteString(HypervolumeSVG(d.Iters))
	b.WriteString(ScatterSVG(front, 0, 1))
	b.WriteString(ScatterSVG(front, 0, 2))
	b.WriteString(ScatterSVG(front, 1, 2))
	b.WriteString(`</div>`)

	b.WriteString(`<h2>Successive-halving survivors</h2>`)
	b.WriteString(RungTableHTML(d.Iters, 20))

	b.WriteString(`<h2>Phase breakdown</h2>`)
	b.WriteString(`<div class="charts">`)
	b.WriteString(PhaseBarsSVG(d.Iters))
	b.WriteString(`</div>`)
	b.WriteString(PhaseTableHTML(d.Iters, 32))
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}

// DashboardHandler serves the live dashboard from src: the ReportHTML page
// with an auto-refresh header so a browser follows a multi-hour run without
// any client-side code. Mount it at GET /debug/unico on the telemetry debug
// mux.
func DashboardHandler(src Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if src == nil {
			http.Error(w, "no live run source installed", http.StatusServiceUnavailable)
			return
		}
		d := src.Snapshot()
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Header().Set("Refresh", "3")
		title := "unico co-search"
		if d.Header.RunID != "" {
			title += " — run " + d.Header.RunID
		}
		_, _ = w.Write(ReportHTML(d, title))
	})
}
