package flightrec

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// IterDelta compares one iteration present in both runs (matched by
// iteration number).
type IterDelta struct {
	Iter int
	// A and B are the baseline and candidate hypervolume at this iteration;
	// Delta is B-A (positive = candidate ahead).
	A, B, Delta float64
}

// DiffReport is the comparison of a candidate run (B) against a baseline
// run (A): per-iteration hypervolume deltas, final-front membership changes,
// and evaluation-cost movement — the payload behind `unicoreport -diff`.
type DiffReport struct {
	// HV holds one entry per iteration number present in both runs, ordered.
	HV []IterDelta
	// FinalHVA/FinalHVB are the last recorded hypervolumes of each run
	// (summary when present, else the last iteration).
	FinalHVA, FinalHVB float64
	// Gained holds final-front points of B with no tolerance-match in A's
	// final front; Lost the reverse.
	Gained, Lost [][]float64
	// EvalsA/EvalsB are the total mapping evaluations of each run.
	EvalsA, EvalsB int
	// ItersA/ItersB are the iteration counts.
	ItersA, ItersB int
}

// finalStats extracts a run's closing hypervolume, evals, iteration count,
// and front, preferring the summary record over the last iteration.
func finalStats(d *RunData) (hv float64, evals, iters int, front [][]float64) {
	if n := len(d.Iters); n > 0 {
		last := d.Iters[n-1]
		hv, evals, iters, front = last.Hypervolume, last.Evals, last.Iter, last.Front
	}
	if s := d.Summary; s != nil {
		hv, evals, iters = s.Hypervolume, s.Evals, s.Iters
	}
	return hv, evals, iters, front
}

// matchTol is the relative tolerance for front-point matching in Diff: two
// PPA points are "the same design point" when every objective agrees within
// this fraction (absolute floor for near-zero objectives).
const matchTol = 1e-6

// pointsMatch reports whether two objective vectors agree within matchTol.
func pointsMatch(p, q []float64) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		tol := matchTol * math.Max(math.Abs(p[i]), math.Abs(q[i]))
		if tol < matchTol {
			tol = matchTol
		}
		if math.Abs(p[i]-q[i]) > tol {
			return false
		}
	}
	return true
}

// Diff compares candidate run b against baseline run a.
func Diff(a, b *RunData) *DiffReport {
	r := &DiffReport{}
	r.FinalHVA, r.EvalsA, r.ItersA, _ = finalStats(a)
	r.FinalHVB, r.EvalsB, r.ItersB, _ = finalStats(b)
	_, _, _, frontA := finalStats(a)
	_, _, _, frontB := finalStats(b)

	byIter := make(map[int]float64, len(a.Iters))
	for _, it := range a.Iters {
		byIter[it.Iter] = it.Hypervolume
	}
	for _, it := range b.Iters {
		if hvA, ok := byIter[it.Iter]; ok {
			r.HV = append(r.HV, IterDelta{
				Iter: it.Iter, A: hvA, B: it.Hypervolume, Delta: it.Hypervolume - hvA,
			})
		}
	}
	sort.Slice(r.HV, func(i, j int) bool { return r.HV[i].Iter < r.HV[j].Iter })

	// Front membership: greedy tolerance matching (fronts are small — tens of
	// points — so the quadratic scan is fine).
	usedA := make([]bool, len(frontA))
	for _, p := range frontB {
		matched := false
		for i, q := range frontA {
			if !usedA[i] && pointsMatch(p, q) {
				usedA[i] = true
				matched = true
				break
			}
		}
		if !matched {
			r.Gained = append(r.Gained, p)
		}
	}
	for i, q := range frontA {
		if !usedA[i] {
			r.Lost = append(r.Lost, q)
		}
	}
	return r
}

// Regressed reports whether the candidate's final hypervolume fell short of
// the baseline's by more than tol, relative to the baseline's magnitude
// (absolute when the baseline is near zero). This is the CI gate condition.
func (r *DiffReport) Regressed(tol float64) bool {
	scale := math.Max(math.Abs(r.FinalHVA), 1)
	return r.FinalHVA-r.FinalHVB > tol*scale
}

// Render formats the report as a human-readable text table for the CLI.
func (r *DiffReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "iterations: baseline %d, candidate %d\n", r.ItersA, r.ItersB)
	fmt.Fprintf(&b, "evals:      baseline %d, candidate %d (%+d)\n", r.EvalsA, r.EvalsB, r.EvalsB-r.EvalsA)
	fmt.Fprintf(&b, "final hypervolume: baseline %s, candidate %s (%+g)\n",
		fnum(r.FinalHVA), fnum(r.FinalHVB), r.FinalHVB-r.FinalHVA)
	fmt.Fprintf(&b, "front: %d gained, %d lost\n", len(r.Gained), len(r.Lost))
	for _, p := range r.Gained {
		fmt.Fprintf(&b, "  + %s\n", fmtPoint(p))
	}
	for _, p := range r.Lost {
		fmt.Fprintf(&b, "  - %s\n", fmtPoint(p))
	}
	if len(r.HV) > 0 {
		b.WriteString("hypervolume by iteration (delta = candidate - baseline):\n")
		for _, d := range r.HV {
			fmt.Fprintf(&b, "  iter %3d  %12s  %12s  %+g\n", d.Iter, fnum(d.A), fnum(d.B), d.Delta)
		}
	}
	return b.String()
}

func fmtPoint(p []float64) string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fnum(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
