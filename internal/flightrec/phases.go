// Phase-breakdown panel of the flight record's HTML faces: aggregates the
// per-iteration perfprof deltas into a run-level phase tree and renders it
// as an SVG bar chart plus a table. Pure functions of RunData, like the
// rest of the SVG views, so the golden test pins them.

package flightrec

import (
	"fmt"
	"html"
	"sort"
	"strings"
)

// PhaseAgg is one phase's run-level aggregate over all recorded iterations.
type PhaseAgg struct {
	Path       string
	Count      uint64
	SimSeconds float64
	// SelfSimSeconds is SimSeconds minus the direct children's, the share
	// the bars rank by (a parent should not dwarf its own breakdown).
	SelfSimSeconds float64
}

// AggregatePhases sums the per-iteration phase deltas into per-path totals,
// computes self times over the path tree, and returns them sorted by path.
func AggregatePhases(iters []Iteration) []PhaseAgg {
	total := map[string]*PhaseAgg{}
	for _, it := range iters {
		for _, d := range it.Phases {
			a := total[d.Path]
			if a == nil {
				a = &PhaseAgg{Path: d.Path}
				total[d.Path] = a
			}
			a.Count += d.Count
			a.SimSeconds += d.SimSeconds
		}
	}
	paths := make([]string, 0, len(total))
	for path := range total {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	childSim := map[string]float64{}
	for _, path := range paths {
		if i := strings.LastIndex(path, "/"); i >= 0 {
			childSim[path[:i]] += total[path].SimSeconds
		}
	}
	out := make([]PhaseAgg, len(paths))
	for i, path := range paths {
		a := *total[path]
		a.SelfSimSeconds = a.SimSeconds - childSim[path]
		out[i] = a
	}
	return out
}

// PhaseBarsSVG renders the top phases by self simulated time as horizontal
// bars — the "where does an iteration's budget go" view.
func PhaseBarsSVG(iters []Iteration) string {
	const maxBars = 8
	var b strings.Builder
	openSVG(&b, "Phase breakdown (self sim-seconds)")
	aggs := AggregatePhases(iters)
	ranked := append([]PhaseAgg(nil), aggs...)
	sort.SliceStable(ranked, func(i, j int) bool {
		return ranked[i].SelfSimSeconds > ranked[j].SelfSimSeconds
	})
	if len(ranked) > maxBars {
		ranked = ranked[:maxBars]
	}
	maxV := 0.0
	for _, a := range ranked {
		if a.SelfSimSeconds > maxV {
			maxV = a.SelfSimSeconds
		}
	}
	if len(ranked) == 0 || maxV <= 0 {
		emptyNote(&b)
		closeSVG(&b)
		return b.String()
	}
	// Horizontal bars: labels left, value right, widest bar spans the plot.
	const labelW = 170.0
	rowH := (plotH - plotMT - plotMB) / float64(len(ranked))
	for i, a := range ranked {
		y := plotMT + float64(i)*rowH
		w := scale(a.SelfSimSeconds, 0, maxV, 0, plotW-plotMR-labelW)
		fmt.Fprintf(&b, `<text x="%s" y="%s" font-size="10" text-anchor="end">%s</text>`,
			coord(labelW-6), coord(y+rowH/2+3), html.EscapeString(a.Path))
		fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%s" height="%s" fill="#2ca02c" fill-opacity="0.8"/>`,
			coord(labelW), coord(y+2), coord(w), coord(rowH-4))
		fmt.Fprintf(&b, `<text x="%s" y="%s" font-size="10">%s</text>`,
			coord(labelW+w+4), coord(y+rowH/2+3), fnum(a.SelfSimSeconds))
	}
	closeSVG(&b)
	return b.String()
}

// PhaseTableHTML renders the aggregated phase tree as a table, sorted by
// path so nesting reads top-down; maxRows bounds the output.
func PhaseTableHTML(iters []Iteration, maxRows int) string {
	var b strings.Builder
	b.WriteString(`<table class="rungs"><tr><th>phase</th><th>count</th><th>sim s</th><th>self sim s</th></tr>`)
	for i, a := range AggregatePhases(iters) {
		if i >= maxRows {
			break
		}
		fmt.Fprintf(&b, `<tr><td><code>%s</code></td><td>%d</td><td>%s</td><td>%s</td></tr>`,
			html.EscapeString(a.Path), a.Count, fnum(a.SimSeconds), fnum(a.SelfSimSeconds))
	}
	b.WriteString(`</table>`)
	return b.String()
}
