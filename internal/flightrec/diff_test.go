package flightrec

import (
	"strings"
	"testing"
)

func runDataFor(hvs []float64, front [][]float64, sum *Summary) *RunData {
	d := &RunData{Header: testHeader(), Summary: sum}
	for i, hv := range hvs {
		it := Iteration{Iter: i + 1, Hypervolume: hv, Evals: 10 * (i + 1)}
		if i == len(hvs)-1 {
			it.Front = front
		}
		d.Iters = append(d.Iters, it)
	}
	return d
}

func TestDiffHVDeltas(t *testing.T) {
	a := runDataFor([]float64{0.1, 0.2, 0.3}, nil, nil)
	b := runDataFor([]float64{0.1, 0.25, 0.35, 0.4}, nil, nil)
	r := Diff(a, b)
	if len(r.HV) != 3 {
		t.Fatalf("%d shared iterations, want 3", len(r.HV))
	}
	if r.HV[1].Iter != 2 || r.HV[1].A != 0.2 || r.HV[1].B != 0.25 {
		t.Errorf("iter-2 delta = %+v", r.HV[1])
	}
	if d := r.HV[2].Delta; d < 0.049 || d > 0.051 {
		t.Errorf("iter-3 delta = %v, want ~0.05", d)
	}
	if r.ItersA != 3 || r.ItersB != 4 {
		t.Errorf("iteration counts %d/%d, want 3/4", r.ItersA, r.ItersB)
	}
	if r.EvalsA != 30 || r.EvalsB != 40 {
		t.Errorf("eval counts %d/%d, want 30/40", r.EvalsA, r.EvalsB)
	}
	if r.FinalHVA != 0.3 || r.FinalHVB != 0.4 {
		t.Errorf("final hv %v/%v, want 0.3/0.4", r.FinalHVA, r.FinalHVB)
	}
}

func TestDiffPrefersSummaryStats(t *testing.T) {
	a := runDataFor([]float64{0.1}, nil, &Summary{Hypervolume: 0.9, Evals: 123, Iters: 7})
	b := runDataFor([]float64{0.1}, nil, nil)
	r := Diff(a, b)
	if r.FinalHVA != 0.9 || r.EvalsA != 123 || r.ItersA != 7 {
		t.Errorf("summary stats ignored: %+v", r)
	}
}

func TestDiffFrontGainsAndLosses(t *testing.T) {
	shared := []float64{1.5, 200, 3}
	a := runDataFor([]float64{0.1}, [][]float64{shared, {9, 9, 9}}, nil)
	// The shared point differs only by a sub-tolerance wiggle; it must match.
	wiggled := []float64{1.5 * (1 + 1e-9), 200, 3}
	b := runDataFor([]float64{0.1}, [][]float64{wiggled, {4, 4, 4}}, nil)
	r := Diff(a, b)
	if len(r.Gained) != 1 || r.Gained[0][0] != 4 {
		t.Errorf("Gained = %v, want [[4 4 4]]", r.Gained)
	}
	if len(r.Lost) != 1 || r.Lost[0][0] != 9 {
		t.Errorf("Lost = %v, want [[9 9 9]]", r.Lost)
	}
}

func TestRegressedGate(t *testing.T) {
	cases := []struct {
		hvA, hvB, tol float64
		want          bool
	}{
		{1.0, 1.0, 0, false},      // identical
		{1.0, 1.2, 0, false},      // improvement never regresses
		{1.0, 0.9, 0.05, true},    // 10% drop > 5% tolerance
		{1.0, 0.96, 0.05, false},  // 4% drop within tolerance
		{0.0, -0.01, 0.05, false}, // near-zero baseline: absolute scale floor
		{0.0, -0.2, 0.05, true},
	}
	for _, c := range cases {
		r := &DiffReport{FinalHVA: c.hvA, FinalHVB: c.hvB}
		if got := r.Regressed(c.tol); got != c.want {
			t.Errorf("Regressed(hvA=%v, hvB=%v, tol=%v) = %v, want %v",
				c.hvA, c.hvB, c.tol, got, c.want)
		}
	}
}

func TestDiffRender(t *testing.T) {
	a := runDataFor([]float64{0.1, 0.2}, [][]float64{{9, 9, 9}}, nil)
	b := runDataFor([]float64{0.1, 0.3}, [][]float64{{4, 4, 4}}, nil)
	out := Diff(a, b).Render()
	for _, want := range []string{
		"iterations: baseline 2, candidate 2",
		"1 gained, 1 lost",
		"+ (4, 4, 4)",
		"- (9, 9, 9)",
		"iter   2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}
