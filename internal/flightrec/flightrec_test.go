package flightrec

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"unico/internal/perfprof"
)

func testHeader() Header {
	return Header{
		RunID:     "abcd1234",
		StartedAt: "2026-01-02T03:04:05Z",
		Revision:  "deadbeef1234",
		Method:    "UNICO",
		Workload:  "MobileNetV3-S",
		Seed:      7,
		Batch:     6,
		MaxIter:   4,
		BMax:      15,
	}
}

func testIteration(i int) Iteration {
	return Iteration{
		Iter:          i,
		SimHours:      float64(i) * 1.5,
		Hypervolume:   0.1 * float64(i),
		UUL:           ExtFloat(math.Inf(1)),
		Evals:         10 * i,
		Admitted:      i,
		TrainSize:     2 * i,
		BatchFeasible: i,
		Best:          []float64{1.0 / float64(i), 100, 2},
		Front:         [][]float64{{1.0 / float64(i), 100, 2}, {2, 50, 1}},
		RungAlive:     []int{6, 3, 1},
		Phases: []perfprof.PhaseDelta{
			{Path: "iteration", Count: 1, SimSeconds: float64(i) * 5400},
			{Path: "iteration/sh.rung", Count: 2, SimSeconds: float64(i) * 5300},
			{Path: "iteration/sh.rung/mapsearch.advance", Count: uint64(4 * i)},
			{Path: "iteration/update", Count: 1, SimSeconds: 5},
		},
	}
}

func TestExtFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -2.25, math.Inf(1), math.Inf(-1), math.NaN()} {
		b, err := json.Marshal(ExtFloat(v))
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var got ExtFloat
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		g := float64(got)
		if math.IsNaN(v) {
			if !math.IsNaN(g) {
				t.Errorf("NaN round-tripped to %v", g)
			}
		} else if g != v {
			t.Errorf("%v round-tripped to %v (wire %s)", v, g, b)
		}
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	r, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		r.RecordIteration(testIteration(i))
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if err := r.Finish(Summary{CacheHits: 5, CacheMisses: 7}); err != nil {
		t.Fatal(err)
	}

	d, skipped, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped %d lines, want 0", skipped)
	}
	if d.Header.RunID != "abcd1234" || d.Header.Method != "UNICO" || d.Header.Seed != 7 {
		t.Errorf("header mangled: %+v", d.Header)
	}
	if len(d.Iters) != 3 {
		t.Fatalf("loaded %d iterations, want 3", len(d.Iters))
	}
	want := testIteration(2)
	want.Type = TypeIteration
	if !reflect.DeepEqual(d.Iters[1], want) {
		t.Errorf("iteration 2 = %+v, want %+v", d.Iters[1], want)
	}
	if d.Summary == nil {
		t.Fatal("no summary")
	}
	// Finish fills convergence fields from the last iteration.
	if d.Summary.Iters != 3 || d.Summary.Evals != 30 || d.Summary.FrontSize != 2 {
		t.Errorf("summary not filled from last iteration: %+v", d.Summary)
	}
	if d.Summary.CacheHits != 5 || d.Summary.CacheMisses != 7 {
		t.Errorf("summary dropped caller fields: %+v", d.Summary)
	}
	if d.LastIter() != 3 {
		t.Errorf("LastIter = %d, want 3", d.LastIter())
	}
}

// TestResumeProducesIdenticalArtifact is the file-level half of the
// kill/resume identity guarantee: an artifact whose run died after iteration
// 2 and resumed from there ends up byte-identical to one written by an
// uninterrupted run (given the same header, as in a real resume the caller
// reuses the checkpointed identity).
func TestResumeProducesIdenticalArtifact(t *testing.T) {
	dir := t.TempDir()
	hdr := testHeader()

	full := filepath.Join(dir, "full.jsonl")
	r, err := Create(full, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		r.RecordIteration(testIteration(i))
	}
	if err := r.Finish(Summary{}); err != nil {
		t.Fatal(err)
	}

	killed := filepath.Join(dir, "killed.jsonl")
	r, err = Create(killed, hdr)
	if err != nil {
		t.Fatal(err)
	}
	r.RecordIteration(testIteration(1))
	r.RecordIteration(testIteration(2))
	if err := r.Close(); err != nil { // killed: no summary
		t.Fatal(err)
	}

	r, err = Resume(killed, hdr, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.RecordIteration(testIteration(3))
	r.RecordIteration(testIteration(4))
	if err := r.Finish(Summary{}); err != nil {
		t.Fatal(err)
	}

	want, _ := os.ReadFile(full)
	got, _ := os.ReadFile(killed)
	if string(want) != string(got) {
		t.Errorf("resumed artifact differs from uninterrupted one:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestResumeTruncatesBeyondBoundary: records past the checkpoint boundary,
// an existing summary, and a torn trailing line are all dropped on resume.
func TestResumeTruncatesBeyondBoundary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	r, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		r.RecordIteration(testIteration(i))
	}
	if err := r.Finish(Summary{}); err != nil {
		t.Fatal(err)
	}
	// Simulate crash residue: a torn (newline-less) partial record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"type":"iteration","iter":9`)
	f.Close()

	r, err = Resume(path, testHeader(), 2)
	if err != nil {
		t.Fatal(err)
	}
	r.RecordIteration(testIteration(3))
	if err := r.Finish(Summary{}); err != nil {
		t.Fatal(err)
	}

	d, skipped, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped %d lines, want 0 after truncation", skipped)
	}
	if n := len(d.Iters); n != 3 {
		t.Fatalf("%d iterations after resume, want 3 (1,2 kept + 3 appended)", n)
	}
	if d.Iters[2].Iter != 3 {
		t.Errorf("last iteration = %d, want 3", d.Iters[2].Iter)
	}
	if d.Summary == nil || d.Summary.Iters != 3 {
		t.Errorf("summary = %+v, want filled at iteration 3", d.Summary)
	}
}

func TestResumeMissingFileFallsBackToCreate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.jsonl")
	r, err := Resume(path, testHeader(), 5)
	if err != nil {
		t.Fatal(err)
	}
	r.RecordIteration(testIteration(6))
	if err := r.Finish(Summary{}); err != nil {
		t.Fatal(err)
	}
	d, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Iters) != 1 || d.Iters[0].Iter != 6 {
		t.Errorf("fallback artifact = %+v", d.Iters)
	}
}

func TestLoadRejectsMalformedInput(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"empty.jsonl":    "",
		"garbage.jsonl":  "this is not json\n",
		"headless.jsonl": `{"type":"iteration","iter":1}` + "\n",
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Load(p); err == nil {
			t.Errorf("%s: Load accepted malformed artifact", name)
		}
	}
}

func TestLoadSkipsTornTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	r, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	r.RecordIteration(testIteration(1))
	r.Close()
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString(`{"type":"iter`) // crash mid-append
	f.Close()

	d, skipped, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if len(d.Iters) != 1 || d.Summary != nil {
		t.Errorf("unexpected shape: %d iters, summary %v", len(d.Iters), d.Summary)
	}
}

func TestRecorderErrorLatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	r, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	r.RecordIteration(testIteration(1))
	// Close the file underneath the recorder: subsequent writes must latch an
	// error instead of panicking, and Finish must surface it.
	r.f.Close()
	r.RecordIteration(testIteration(2))
	if r.Err() == nil {
		t.Fatal("write failure not latched")
	}
	r.RecordIteration(testIteration(3)) // must be a silent no-op
	if err := r.Finish(Summary{}); err == nil {
		t.Error("Finish suppressed the latched error")
	}
}

func TestSummaryFillRespectsExplicitFields(t *testing.T) {
	last := testIteration(4)
	s := Summary{Iters: 9, SimHours: 99}.fillFromLast(&last)
	if s.Iters != 9 || s.SimHours != 99 {
		t.Errorf("explicit fields overwritten: %+v", s)
	}
	if s.Evals != last.Evals || s.FrontSize != len(last.Front) || s.Hypervolume != last.Hypervolume {
		t.Errorf("zero fields not filled: %+v", s)
	}
}

func TestHeaderFingerprintRoundTrip(t *testing.T) {
	hdr := testHeader()
	hdr.Fingerprint = map[string]any{"platform": "Spatial", "dim": 6.0}
	path := filepath.Join(t.TempDir(), "run.jsonl")
	r, err := Create(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	d, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	fp, ok := d.Header.Fingerprint.(map[string]any)
	if !ok || fp["platform"] != "Spatial" {
		t.Errorf("fingerprint = %#v", d.Header.Fingerprint)
	}
	if !strings.Contains(mustJSON(t, d.Header), `"fingerprint"`) {
		t.Error("fingerprint dropped from wire form")
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
