package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// JSON workload definitions let users co-optimize for networks outside the
// built-in zoo. The format is a thin mirror of the Layer table:
//
//	{
//	  "name": "MyNet",
//	  "layers": [
//	    {"name": "stem", "kind": "conv", "k": 32, "c": 3, "y": 112, "x": 112,
//	     "r": 3, "s": 3, "stride": 2, "repeat": 1},
//	    {"name": "dw1", "kind": "dwconv", "k": 32, "y": 112, "x": 112,
//	     "r": 3, "s": 3},
//	    {"name": "fc", "kind": "gemm", "m": 1, "kin": 1024, "nout": 1000}
//	  ]
//	}
//
// Omitted fields default sensibly: n/stride/repeat to 1, and depthwise c is
// forced to 1. GEMM layers use (m, kin, nout) and are stored in
// convolution-normal form like the zoo's.

// jsonLayer is the wire form of one operator.
type jsonLayer struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	N      int    `json:"n,omitempty"`
	K      int    `json:"k,omitempty"`
	C      int    `json:"c,omitempty"`
	Y      int    `json:"y,omitempty"`
	X      int    `json:"x,omitempty"`
	R      int    `json:"r,omitempty"`
	S      int    `json:"s,omitempty"`
	Stride int    `json:"stride,omitempty"`
	Repeat int    `json:"repeat,omitempty"`
	// GEMM form.
	M    int `json:"m,omitempty"`
	KIn  int `json:"kin,omitempty"`
	NOut int `json:"nout,omitempty"`
}

// jsonWorkload is the wire form of a network.
type jsonWorkload struct {
	Name   string      `json:"name"`
	Layers []jsonLayer `json:"layers"`
}

// ParseJSON decodes a workload definition from r and validates it.
func ParseJSON(r io.Reader) (Workload, error) {
	var jw jsonWorkload
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jw); err != nil {
		return Workload{}, fmt.Errorf("workload: parse JSON: %w", err)
	}
	w := Workload{Name: jw.Name}
	for i, jl := range jw.Layers {
		l, err := jl.toLayer()
		if err != nil {
			return Workload{}, fmt.Errorf("workload %q: layer %d: %w", jw.Name, i, err)
		}
		w.Layers = append(w.Layers, l)
	}
	if err := w.Validate(); err != nil {
		return Workload{}, err
	}
	return w, nil
}

// LoadJSONFile reads a workload definition from a file.
func LoadJSONFile(path string) (Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return Workload{}, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	return ParseJSON(f)
}

// toLayer materializes a Layer with defaults applied.
func (jl jsonLayer) toLayer() (Layer, error) {
	def := func(v int) int {
		if v <= 0 {
			return 1
		}
		return v
	}
	switch jl.Kind {
	case "conv":
		return Layer{
			Name: jl.Name, Kind: Conv2D,
			N: def(jl.N), K: jl.K, C: jl.C, Y: jl.Y, X: jl.X,
			R: def(jl.R), S: def(jl.S),
			Stride: def(jl.Stride), Repeat: def(jl.Repeat),
		}, nil
	case "dwconv":
		if jl.C > 1 {
			return Layer{}, fmt.Errorf("depthwise layers take no c field (got %d)", jl.C)
		}
		return Layer{
			Name: jl.Name, Kind: DWConv2D,
			N: def(jl.N), K: jl.K, C: 1, Y: jl.Y, X: jl.X,
			R: def(jl.R), S: def(jl.S),
			Stride: def(jl.Stride), Repeat: def(jl.Repeat),
		}, nil
	case "gemm":
		if jl.M <= 0 || jl.KIn <= 0 || jl.NOut <= 0 {
			return Layer{}, fmt.Errorf("gemm layers need positive m, kin, nout (got %d, %d, %d)",
				jl.M, jl.KIn, jl.NOut)
		}
		return Gemm(jl.Name, jl.M, jl.KIn, jl.NOut, def(jl.Repeat)), nil
	case "":
		return Layer{}, fmt.Errorf("missing kind (want conv | dwconv | gemm)")
	default:
		return Layer{}, fmt.Errorf("unknown kind %q (want conv | dwconv | gemm)", jl.Kind)
	}
}

// MarshalJSON renders a workload back into the wire format, so programmatic
// definitions can be saved and reloaded.
func (w Workload) MarshalJSON() ([]byte, error) {
	jw := jsonWorkload{Name: w.Name}
	for _, l := range w.Layers {
		jl := jsonLayer{Name: l.Name, Repeat: l.Repeat}
		switch l.Kind {
		case GEMM:
			jl.Kind = "gemm"
			jl.M, jl.KIn, jl.NOut = l.Y, l.C, l.K
		case DWConv2D:
			jl.Kind = "dwconv"
			jl.N, jl.K, jl.Y, jl.X = l.N, l.K, l.Y, l.X
			jl.R, jl.S, jl.Stride = l.R, l.S, l.Stride
		default:
			jl.Kind = "conv"
			jl.N, jl.K, jl.C, jl.Y, jl.X = l.N, l.K, l.C, l.Y, l.X
			jl.R, jl.S, jl.Stride = l.R, l.S, l.Stride
		}
		jw.Layers = append(jw.Layers, jl)
	}
	return json.Marshal(jw)
}
