// Package workload defines the tensor operators and DNN layer tables used as
// co-optimization inputs.
//
// UNICO consumes a workload only through the dimension tuple of each tensor
// operator (the 7D convolution loop nest of paper Fig. 1, with GEMM expressed
// as a degenerate convolution). This package provides the operator type and a
// model zoo covering every network in the paper's evaluation: the Table 1/2
// networks (BERT, MobileNet, ResNet, SRGAN, UNet, ViT, Xception), the
// generalization-study networks (VGG, MobileNetV2, ResUNet, MobileNetV3
// large/small, NASNetMobile, EfficientNetV2, ConvNeXt) and the Ascend-like
// case-study networks (FSRCNN at several resolutions, DLEU).
//
// The layer tables are representative transcriptions of the published
// architectures: each entry is one distinct operator shape with a Repeat
// count for how many times that shape occurs in the network. The co-search
// algorithms only ever see these dimension tuples, so representative tables
// exercise exactly the code paths the paper's full networks would.
package workload

import "fmt"

// OpKind distinguishes the operator families the cost models understand.
type OpKind int

const (
	// Conv2D is a dense 2D convolution over the 7D loop nest
	// (N, K, C, Y, X, R, S).
	Conv2D OpKind = iota
	// DWConv2D is a depthwise 2D convolution: each of the K output channels
	// reads a single input channel, so the C loop has trip count 1.
	DWConv2D
	// GEMM is a general matrix multiply M×K_in × K_in×N_out, stored in
	// convolution form (Y=M, C=K_in, K=N_out, X=R=S=1).
	GEMM
)

func (k OpKind) String() string {
	switch k {
	case Conv2D:
		return "conv"
	case DWConv2D:
		return "dwconv"
	case GEMM:
		return "gemm"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Layer is one tensor operator in convolution-normal form.
//
// For Conv2D and DWConv2D the fields are the usual loop bounds: N batch,
// K output channels, C input channels, Y×X output feature map, R×S kernel,
// with the given stride. For GEMM(M, Kin, Nout) the stored form is
// K=Nout, C=Kin, Y=M, X=R=S=1.
type Layer struct {
	Name   string
	Kind   OpKind
	N      int // batch
	K      int // output channels
	C      int // input channels (1 for depthwise)
	Y      int // output rows
	X      int // output cols
	R      int // kernel rows
	S      int // kernel cols
	Stride int
	Repeat int // number of occurrences of this exact shape in the network
}

// Gemm builds a GEMM(M, kIn, nOut) layer in convolution-normal form.
func Gemm(name string, m, kIn, nOut, repeat int) Layer {
	return Layer{
		Name: name, Kind: GEMM,
		N: 1, K: nOut, C: kIn, Y: m, X: 1, R: 1, S: 1,
		Stride: 1, Repeat: repeat,
	}
}

// Conv builds a dense convolution layer.
func Conv(name string, k, c, y, x, r, s, stride, repeat int) Layer {
	return Layer{
		Name: name, Kind: Conv2D,
		N: 1, K: k, C: c, Y: y, X: x, R: r, S: s,
		Stride: stride, Repeat: repeat,
	}
}

// DWConv builds a depthwise convolution layer (C fixed to 1 per channel).
func DWConv(name string, k, y, x, r, s, stride, repeat int) Layer {
	return Layer{
		Name: name, Kind: DWConv2D,
		N: 1, K: k, C: 1, Y: y, X: x, R: r, S: s,
		Stride: stride, Repeat: repeat,
	}
}

// MACs returns the multiply-accumulate count of a single instance of the
// layer (not multiplied by Repeat).
func (l Layer) MACs() int64 {
	return int64(l.N) * int64(l.K) * int64(l.C) * int64(l.Y) * int64(l.X) * int64(l.R) * int64(l.S)
}

// InputBytes returns the input activation footprint in bytes, assuming one
// byte per element (int8 inference, as in the paper's edge scenario).
func (l Layer) InputBytes() int64 {
	iy := (l.Y-1)*l.Stride + l.R
	ix := (l.X-1)*l.Stride + l.S
	c := l.C
	if l.Kind == DWConv2D {
		c = l.K
	}
	return int64(l.N) * int64(c) * int64(iy) * int64(ix)
}

// WeightBytes returns the weight footprint in bytes (one byte per element).
func (l Layer) WeightBytes() int64 {
	return int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S)
}

// OutputBytes returns the output activation footprint in bytes.
func (l Layer) OutputBytes() int64 {
	return int64(l.N) * int64(l.K) * int64(l.Y) * int64(l.X)
}

// Validate reports an error if any loop bound is non-positive or the shape is
// internally inconsistent.
func (l Layer) Validate() error {
	dims := []struct {
		name string
		v    int
	}{
		{"N", l.N}, {"K", l.K}, {"C", l.C}, {"Y", l.Y}, {"X", l.X},
		{"R", l.R}, {"S", l.S}, {"stride", l.Stride}, {"repeat", l.Repeat},
	}
	for _, d := range dims {
		if d.v <= 0 {
			return fmt.Errorf("workload: layer %q: %s = %d, want > 0", l.Name, d.name, d.v)
		}
	}
	if l.Kind == DWConv2D && l.C != 1 {
		return fmt.Errorf("workload: depthwise layer %q has C = %d, want 1", l.Name, l.C)
	}
	return nil
}

func (l Layer) String() string {
	if l.Kind == GEMM {
		return fmt.Sprintf("%s %s M=%d K=%d N=%d x%d", l.Name, l.Kind, l.Y, l.C, l.K, l.Repeat)
	}
	return fmt.Sprintf("%s %s K=%d C=%d Y=%d X=%d R=%d S=%d s=%d x%d",
		l.Name, l.Kind, l.K, l.C, l.Y, l.X, l.R, l.S, l.Stride, l.Repeat)
}

// Workload is a named DNN expressed as its distinct operator shapes.
type Workload struct {
	Name   string
	Layers []Layer
}

// MACs returns the total multiply-accumulate count of the network, including
// layer repeats.
func (w Workload) MACs() int64 {
	var total int64
	for _, l := range w.Layers {
		total += l.MACs() * int64(l.Repeat)
	}
	return total
}

// Validate checks every layer.
func (w Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if len(w.Layers) == 0 {
		return fmt.Errorf("workload %q: no layers", w.Name)
	}
	for _, l := range w.Layers {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("workload %q: %w", w.Name, err)
		}
	}
	return nil
}
