package workload

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestZooValidates(t *testing.T) {
	for _, w := range All() {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if w.MACs() <= 0 {
			t.Errorf("%s: MACs() = %d", w.Name, w.MACs())
		}
	}
}

func TestZooNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range All() {
		if seen[w.Name] {
			t.Errorf("duplicate network name %q", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestZooSizesPlausible(t *testing.T) {
	// Sanity-check total MAC counts against the published ballparks
	// (within 3x): the tables are transcriptions, not exact replicas.
	want := map[string]struct{ lo, hi float64 }{
		"ResNet":    {2e9, 12e9},   // ~4.1 GMACs
		"VGG":       {8e9, 45e9},   // ~15.5 GMACs
		"MobileNet": {0.3e9, 2e9},  // ~0.57 GMACs
		"UNet":      {10e9, 200e9}, // tens of GMACs at 256x256
	}
	for _, w := range All() {
		bounds, ok := want[w.Name]
		if !ok {
			continue
		}
		m := float64(w.MACs())
		if m < bounds.lo || m > bounds.hi {
			t.Errorf("%s: MACs = %.3g, want within [%.3g, %.3g]", w.Name, m, bounds.lo, bounds.hi)
		}
	}
}

func TestGemmNormalForm(t *testing.T) {
	g := Gemm("g", 128, 768, 3072, 2)
	if g.Y != 128 || g.C != 768 || g.K != 3072 {
		t.Errorf("Gemm normal form wrong: %+v", g)
	}
	if g.X != 1 || g.R != 1 || g.S != 1 || g.N != 1 {
		t.Errorf("Gemm degenerate dims wrong: %+v", g)
	}
	if got, want := g.MACs(), int64(128)*768*3072; got != want {
		t.Errorf("MACs = %d, want %d", got, want)
	}
}

func TestLayerMACs(t *testing.T) {
	c := Conv("c", 64, 32, 56, 56, 3, 3, 1, 1)
	want := int64(64) * 32 * 56 * 56 * 9
	if got := c.MACs(); got != want {
		t.Errorf("conv MACs = %d, want %d", got, want)
	}
	d := DWConv("d", 64, 56, 56, 3, 3, 1, 1)
	if got, want := d.MACs(), int64(64)*56*56*9; got != want {
		t.Errorf("dwconv MACs = %d, want %d", got, want)
	}
}

func TestLayerFootprints(t *testing.T) {
	l := Conv("c", 8, 4, 10, 10, 3, 3, 2, 1)
	// Input: 4 channels x ((10-1)*2+3)^2 = 4*21*21.
	if got, want := l.InputBytes(), int64(4*21*21); got != want {
		t.Errorf("InputBytes = %d, want %d", got, want)
	}
	if got, want := l.WeightBytes(), int64(8*4*3*3); got != want {
		t.Errorf("WeightBytes = %d, want %d", got, want)
	}
	if got, want := l.OutputBytes(), int64(8*10*10); got != want {
		t.Errorf("OutputBytes = %d, want %d", got, want)
	}
	// Depthwise input footprint follows K, not C.
	d := DWConv("d", 16, 10, 10, 3, 3, 1, 1)
	if got, want := d.InputBytes(), int64(16*12*12); got != want {
		t.Errorf("dw InputBytes = %d, want %d", got, want)
	}
}

func TestValidateRejectsBadLayers(t *testing.T) {
	bad := Conv("bad", 0, 4, 10, 10, 3, 3, 1, 1)
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted K = 0")
	}
	dw := Layer{Name: "dw", Kind: DWConv2D, N: 1, K: 4, C: 2, Y: 4, X: 4, R: 3, S: 3, Stride: 1, Repeat: 1}
	if err := dw.Validate(); err == nil {
		t.Error("Validate accepted depthwise with C = 2")
	}
	if err := (Workload{Name: "x"}).Validate(); err == nil {
		t.Error("Validate accepted empty workload")
	}
	if err := (Workload{Layers: []Layer{Conv("c", 1, 1, 1, 1, 1, 1, 1, 1)}}).Validate(); err == nil {
		t.Error("Validate accepted empty name")
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("ResNet")
	if err != nil || w.Name != "ResNet" {
		t.Fatalf("ByName(ResNet) = %v, %v", w.Name, err)
	}
	if _, err := ByName("NoSuchNet"); err == nil {
		t.Fatal("ByName accepted an unknown name")
	} else if !strings.Contains(err.Error(), "available") {
		t.Errorf("error should list available networks: %v", err)
	}
}

func TestTable12Networks(t *testing.T) {
	nets := Table12Networks()
	if len(nets) != 7 {
		t.Fatalf("Table12Networks returned %d networks, want 7", len(nets))
	}
	wantNames := []string{"Bert", "MobileNet", "ResNet", "SRGAN", "UNet", "VIT", "Xception"}
	for i, w := range nets {
		if w.Name != wantNames[i] {
			t.Errorf("network %d = %s, want %s", i, w.Name, wantNames[i])
		}
	}
}

func TestFSRCNNResolutionScaling(t *testing.T) {
	small := FSRCNN(120, 320)
	big := FSRCNN(240, 640)
	if big.MACs() < 3*small.MACs() {
		t.Errorf("4x-pixel FSRCNN should have ~4x MACs: %d vs %d", big.MACs(), small.MACs())
	}
}

// TestMACsProductProperty verifies MACs equals the product of the loop
// bounds for arbitrary positive dims.
func TestMACsProductProperty(t *testing.T) {
	f := func(k, c, y, x, r, s uint8) bool {
		l := Layer{
			Name: "p", Kind: Conv2D,
			N: 1, K: int(k%32) + 1, C: int(c%32) + 1,
			Y: int(y%32) + 1, X: int(x%32) + 1,
			R: int(r%5) + 1, S: int(s%5) + 1,
			Stride: 1, Repeat: 1,
		}
		want := int64(l.K) * int64(l.C) * int64(l.Y) * int64(l.X) * int64(l.R) * int64(l.S)
		return l.MACs() == want && l.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
