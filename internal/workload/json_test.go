package workload

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleJSON = `{
  "name": "MyNet",
  "layers": [
    {"name": "stem", "kind": "conv", "k": 32, "c": 3, "y": 112, "x": 112,
     "r": 3, "s": 3, "stride": 2},
    {"name": "dw1", "kind": "dwconv", "k": 32, "y": 112, "x": 112,
     "r": 3, "s": 3, "repeat": 2},
    {"name": "fc", "kind": "gemm", "m": 1, "kin": 1024, "nout": 1000}
  ]
}`

func TestParseJSON(t *testing.T) {
	w, err := ParseJSON(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "MyNet" || len(w.Layers) != 3 {
		t.Fatalf("parsed %q with %d layers", w.Name, len(w.Layers))
	}
	stem := w.Layers[0]
	if stem.Kind != Conv2D || stem.Stride != 2 || stem.N != 1 || stem.Repeat != 1 {
		t.Errorf("stem defaults wrong: %+v", stem)
	}
	dw := w.Layers[1]
	if dw.Kind != DWConv2D || dw.C != 1 || dw.Repeat != 2 {
		t.Errorf("dw layer wrong: %+v", dw)
	}
	fc := w.Layers[2]
	if fc.Kind != GEMM || fc.Y != 1 || fc.C != 1024 || fc.K != 1000 {
		t.Errorf("gemm normal form wrong: %+v", fc)
	}
	if err := w.Validate(); err != nil {
		t.Errorf("parsed workload invalid: %v", err)
	}
}

func TestParseJSONErrors(t *testing.T) {
	cases := map[string]string{
		"bad kind":        `{"name":"x","layers":[{"name":"a","kind":"pool","k":1,"y":1,"x":1}]}`,
		"missing kind":    `{"name":"x","layers":[{"name":"a","k":1,"y":1,"x":1}]}`,
		"dw with c":       `{"name":"x","layers":[{"name":"a","kind":"dwconv","k":8,"c":8,"y":4,"x":4,"r":3,"s":3}]}`,
		"gemm missing":    `{"name":"x","layers":[{"name":"a","kind":"gemm","m":4}]}`,
		"zero dim":        `{"name":"x","layers":[{"name":"a","kind":"conv","k":0,"c":1,"y":4,"x":4}]}`,
		"empty layers":    `{"name":"x","layers":[]}`,
		"empty name":      `{"layers":[{"name":"a","kind":"conv","k":1,"c":1,"y":1,"x":1}]}`,
		"unknown field":   `{"name":"x","flavour":"vanilla","layers":[]}`,
		"not JSON at all": `PE6x6 please`,
	}
	for name, in := range cases {
		if _, err := ParseJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %s", name, in)
		}
	}
}

func TestLoadJSONFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.json")
	if err := os.WriteFile(path, []byte(sampleJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := LoadJSONFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "MyNet" {
		t.Errorf("loaded %q", w.Name)
	}
	if _, err := LoadJSONFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	// Every zoo network must survive a marshal/parse round trip unchanged.
	for _, w := range All() {
		data, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("%s: marshal: %v", w.Name, err)
		}
		back, err := ParseJSON(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: reparse: %v", w.Name, err)
		}
		if back.Name != w.Name || len(back.Layers) != len(w.Layers) {
			t.Fatalf("%s: structure changed", w.Name)
		}
		for i := range w.Layers {
			if back.Layers[i] != w.Layers[i] {
				t.Fatalf("%s: layer %d changed: %+v -> %+v",
					w.Name, i, w.Layers[i], back.Layers[i])
			}
		}
	}
}
