package workload

import (
	"fmt"
	"sort"
)

// The model zoo. Each constructor returns the representative operator table
// of one network from the paper's evaluation. Tables list every *distinct*
// shape once with a Repeat count; shapes were transcribed from the published
// architectures at their standard input resolutions (224×224 for ImageNet
// CNNs, sequence length 128 for BERT, 196/197 tokens for ViT-B/16).

// BERT returns BERT-base at sequence length 128: twelve transformer encoder
// layers of four projection GEMMs plus the two feed-forward GEMMs, and the
// attention score/context GEMMs per head folded into batched shapes.
func BERT() Workload {
	return Workload{Name: "Bert", Layers: []Layer{
		Gemm("qkv_proj", 128, 768, 768, 36),   // Q,K,V per 12 layers
		Gemm("attn_out", 128, 768, 768, 12),   // output projection
		Gemm("attn_score", 128, 64, 128, 144), // per head, 12 heads x 12 layers
		Gemm("attn_ctx", 128, 128, 64, 144),   // softmax(QK)V per head
		Gemm("ffn_up", 128, 768, 3072, 12),    // intermediate
		Gemm("ffn_down", 128, 3072, 768, 12),  // output
		Gemm("pooler", 1, 768, 768, 1),        // [CLS] pooler
	}}
}

// MobileNet returns MobileNetV1 at 224×224: the initial strided convolution
// followed by the thirteen depthwise-separable blocks.
func MobileNet() Workload {
	return Workload{Name: "MobileNet", Layers: []Layer{
		Conv("conv1", 32, 3, 112, 112, 3, 3, 2, 1),
		DWConv("dw2", 32, 112, 112, 3, 3, 1, 1),
		Conv("pw2", 64, 32, 112, 112, 1, 1, 1, 1),
		DWConv("dw3", 64, 56, 56, 3, 3, 2, 1),
		Conv("pw3", 128, 64, 56, 56, 1, 1, 1, 1),
		DWConv("dw4", 128, 56, 56, 3, 3, 1, 1),
		Conv("pw4", 128, 128, 56, 56, 1, 1, 1, 1),
		DWConv("dw5", 128, 28, 28, 3, 3, 2, 1),
		Conv("pw5", 256, 128, 28, 28, 1, 1, 1, 1),
		DWConv("dw6", 256, 28, 28, 3, 3, 1, 1),
		Conv("pw6", 256, 256, 28, 28, 1, 1, 1, 1),
		DWConv("dw7", 256, 14, 14, 3, 3, 2, 1),
		Conv("pw7", 512, 256, 14, 14, 1, 1, 1, 1),
		DWConv("dw8", 512, 14, 14, 3, 3, 1, 5),
		Conv("pw8", 512, 512, 14, 14, 1, 1, 1, 5),
		DWConv("dw13", 512, 7, 7, 3, 3, 2, 1),
		Conv("pw13", 1024, 512, 7, 7, 1, 1, 1, 1),
		DWConv("dw14", 1024, 7, 7, 3, 3, 1, 1),
		Conv("pw14", 1024, 1024, 7, 7, 1, 1, 1, 1),
		Gemm("fc", 1, 1024, 1000, 1),
	}}
}

// MobileNetV2 returns MobileNetV2 at 224×224 (inverted residual blocks,
// expansion factor 6), used as a training network in Fig. 9.
func MobileNetV2() Workload {
	return Workload{Name: "MobileNetV2", Layers: []Layer{
		Conv("conv1", 32, 3, 112, 112, 3, 3, 2, 1),
		DWConv("b1_dw", 32, 112, 112, 3, 3, 1, 1),
		Conv("b1_pw", 16, 32, 112, 112, 1, 1, 1, 1),
		Conv("b2_exp", 96, 16, 112, 112, 1, 1, 1, 1),
		DWConv("b2_dw", 96, 56, 56, 3, 3, 2, 1),
		Conv("b2_pw", 24, 96, 56, 56, 1, 1, 1, 1),
		Conv("b3_exp", 144, 24, 56, 56, 1, 1, 1, 2),
		DWConv("b3_dw", 144, 56, 56, 3, 3, 1, 1),
		Conv("b3_pw", 24, 144, 56, 56, 1, 1, 1, 1),
		DWConv("b4_dw", 144, 28, 28, 3, 3, 2, 1),
		Conv("b4_pw", 32, 144, 28, 28, 1, 1, 1, 1),
		Conv("b5_exp", 192, 32, 28, 28, 1, 1, 1, 3),
		DWConv("b5_dw", 192, 28, 28, 3, 3, 1, 2),
		Conv("b5_pw", 32, 192, 28, 28, 1, 1, 1, 2),
		DWConv("b6_dw", 192, 14, 14, 3, 3, 2, 1),
		Conv("b6_pw", 64, 192, 14, 14, 1, 1, 1, 1),
		Conv("b7_exp", 384, 64, 14, 14, 1, 1, 1, 4),
		DWConv("b7_dw", 384, 14, 14, 3, 3, 1, 3),
		Conv("b7_pw", 64, 384, 14, 14, 1, 1, 1, 3),
		Conv("b8_pw", 96, 384, 14, 14, 1, 1, 1, 1),
		Conv("b9_exp", 576, 96, 14, 14, 1, 1, 1, 3),
		DWConv("b9_dw", 576, 14, 14, 3, 3, 1, 2),
		Conv("b9_pw", 96, 576, 14, 14, 1, 1, 1, 2),
		DWConv("b10_dw", 576, 7, 7, 3, 3, 2, 1),
		Conv("b10_pw", 160, 576, 7, 7, 1, 1, 1, 1),
		Conv("b11_exp", 960, 160, 7, 7, 1, 1, 1, 3),
		DWConv("b11_dw", 960, 7, 7, 3, 3, 1, 3),
		Conv("b11_pw", 160, 960, 7, 7, 1, 1, 1, 2),
		Conv("b12_pw", 320, 960, 7, 7, 1, 1, 1, 1),
		Conv("head", 1280, 320, 7, 7, 1, 1, 1, 1),
		Gemm("fc", 1, 1280, 1000, 1),
	}}
}

// ResNet returns ResNet-50 at 224×224: stem plus the four bottleneck stages.
func ResNet() Workload {
	return Workload{Name: "ResNet", Layers: []Layer{
		Conv("conv1", 64, 3, 112, 112, 7, 7, 2, 1),
		// Stage 1: 3 bottlenecks at 56x56, width 64->256.
		Conv("s1_a", 64, 256, 56, 56, 1, 1, 1, 2),
		Conv("s1_a0", 64, 64, 56, 56, 1, 1, 1, 1),
		Conv("s1_b", 64, 64, 56, 56, 3, 3, 1, 3),
		Conv("s1_c", 256, 64, 56, 56, 1, 1, 1, 3),
		Conv("s1_proj", 256, 64, 56, 56, 1, 1, 1, 1),
		// Stage 2: 4 bottlenecks at 28x28, width 128->512.
		Conv("s2_a", 128, 512, 28, 28, 1, 1, 1, 3),
		Conv("s2_a0", 128, 256, 28, 28, 1, 1, 1, 1),
		Conv("s2_b", 128, 128, 28, 28, 3, 3, 1, 4),
		Conv("s2_c", 512, 128, 28, 28, 1, 1, 1, 4),
		Conv("s2_proj", 512, 256, 28, 28, 1, 1, 2, 1),
		// Stage 3: 6 bottlenecks at 14x14, width 256->1024.
		Conv("s3_a", 256, 1024, 14, 14, 1, 1, 1, 5),
		Conv("s3_a0", 256, 512, 14, 14, 1, 1, 1, 1),
		Conv("s3_b", 256, 256, 14, 14, 3, 3, 1, 6),
		Conv("s3_c", 1024, 256, 14, 14, 1, 1, 1, 6),
		Conv("s3_proj", 1024, 512, 14, 14, 2, 2, 2, 1),
		// Stage 4: 3 bottlenecks at 7x7, width 512->2048.
		Conv("s4_a", 512, 2048, 7, 7, 1, 1, 1, 2),
		Conv("s4_a0", 512, 1024, 7, 7, 1, 1, 1, 1),
		Conv("s4_b", 512, 512, 7, 7, 3, 3, 1, 3),
		Conv("s4_c", 2048, 512, 7, 7, 1, 1, 1, 3),
		Conv("s4_proj", 2048, 1024, 7, 7, 1, 1, 2, 1),
		Gemm("fc", 1, 2048, 1000, 1),
	}}
}

// SRGAN returns the SRGAN generator for 4x super-resolution of a 96×96 LR
// input: the wide 9×9 head/tail, sixteen residual blocks and two pixel-shuffle
// upsampling stages.
func SRGAN() Workload {
	return Workload{Name: "SRGAN", Layers: []Layer{
		Conv("head", 64, 3, 96, 96, 9, 9, 1, 1),
		Conv("res", 64, 64, 96, 96, 3, 3, 1, 32), // 16 blocks x 2 convs
		Conv("mid", 64, 64, 96, 96, 3, 3, 1, 1),
		Conv("up1", 256, 64, 96, 96, 3, 3, 1, 1),
		Conv("up2", 256, 64, 192, 192, 3, 3, 1, 1),
		Conv("tail", 3, 64, 384, 384, 9, 9, 1, 1),
	}}
}

// UNet returns the original U-Net encoder/decoder at a 256×256 input.
func UNet() Workload {
	return Workload{Name: "UNet", Layers: []Layer{
		Conv("enc1", 64, 3, 256, 256, 3, 3, 1, 1),
		Conv("enc1b", 64, 64, 256, 256, 3, 3, 1, 1),
		Conv("enc2", 128, 64, 128, 128, 3, 3, 1, 1),
		Conv("enc2b", 128, 128, 128, 128, 3, 3, 1, 1),
		Conv("enc3", 256, 128, 64, 64, 3, 3, 1, 1),
		Conv("enc3b", 256, 256, 64, 64, 3, 3, 1, 1),
		Conv("enc4", 512, 256, 32, 32, 3, 3, 1, 1),
		Conv("enc4b", 512, 512, 32, 32, 3, 3, 1, 1),
		Conv("bott", 1024, 512, 16, 16, 3, 3, 1, 1),
		Conv("bottb", 1024, 1024, 16, 16, 3, 3, 1, 1),
		Conv("dec4", 512, 1024, 32, 32, 3, 3, 1, 1),
		Conv("dec4b", 512, 512, 32, 32, 3, 3, 1, 1),
		Conv("dec3", 256, 512, 64, 64, 3, 3, 1, 1),
		Conv("dec3b", 256, 256, 64, 64, 3, 3, 1, 1),
		Conv("dec2", 128, 256, 128, 128, 3, 3, 1, 1),
		Conv("dec2b", 128, 128, 128, 128, 3, 3, 1, 1),
		Conv("dec1", 64, 128, 256, 256, 3, 3, 1, 1),
		Conv("dec1b", 64, 64, 256, 256, 3, 3, 1, 1),
		Conv("out", 2, 64, 256, 256, 1, 1, 1, 1),
	}}
}

// ViT returns ViT-B/16 at 224×224 (197 tokens including [CLS]).
func ViT() Workload {
	return Workload{Name: "VIT", Layers: []Layer{
		Conv("patch_embed", 768, 3, 14, 14, 16, 16, 16, 1),
		Gemm("qkv_proj", 197, 768, 768, 36),
		Gemm("attn_out", 197, 768, 768, 12),
		Gemm("attn_score", 197, 64, 197, 144),
		Gemm("attn_ctx", 197, 197, 64, 144),
		Gemm("ffn_up", 197, 768, 3072, 12),
		Gemm("ffn_down", 197, 3072, 768, 12),
		Gemm("head", 1, 768, 1000, 1),
	}}
}

// Xception returns Xception at 299×299: entry, middle (eight identical
// blocks) and exit flows built from depthwise-separable convolutions.
func Xception() Workload {
	return Workload{Name: "Xception", Layers: []Layer{
		Conv("entry1", 32, 3, 149, 149, 3, 3, 2, 1),
		Conv("entry2", 64, 32, 147, 147, 3, 3, 1, 1),
		DWConv("e3_dw", 64, 147, 147, 3, 3, 1, 1),
		Conv("e3_pw", 128, 64, 147, 147, 1, 1, 1, 1),
		DWConv("e4_dw", 128, 74, 74, 3, 3, 2, 1),
		Conv("e4_pw", 128, 128, 74, 74, 1, 1, 1, 1),
		DWConv("e5_dw", 128, 74, 74, 3, 3, 1, 1),
		Conv("e5_pw", 256, 128, 74, 74, 1, 1, 1, 1),
		DWConv("e6_dw", 256, 37, 37, 3, 3, 2, 1),
		Conv("e6_pw", 256, 256, 37, 37, 1, 1, 1, 1),
		DWConv("e7_dw", 256, 37, 37, 3, 3, 1, 1),
		Conv("e7_pw", 728, 256, 37, 37, 1, 1, 1, 1),
		DWConv("e8_dw", 728, 19, 19, 3, 3, 2, 1),
		Conv("e8_pw", 728, 728, 19, 19, 1, 1, 1, 1),
		// Middle flow: 8 blocks x 3 separable convs.
		DWConv("mid_dw", 728, 19, 19, 3, 3, 1, 24),
		Conv("mid_pw", 728, 728, 19, 19, 1, 1, 1, 24),
		// Exit flow.
		DWConv("x1_dw", 728, 19, 19, 3, 3, 1, 1),
		Conv("x1_pw", 728, 728, 19, 19, 1, 1, 1, 1),
		DWConv("x2_dw", 728, 10, 10, 3, 3, 2, 1),
		Conv("x2_pw", 1024, 728, 10, 10, 1, 1, 1, 1),
		DWConv("x3_dw", 1024, 10, 10, 3, 3, 1, 1),
		Conv("x3_pw", 1536, 1024, 10, 10, 1, 1, 1, 1),
		DWConv("x4_dw", 1536, 10, 10, 3, 3, 1, 1),
		Conv("x4_pw", 2048, 1536, 10, 10, 1, 1, 1, 1),
		Gemm("fc", 1, 2048, 1000, 1),
	}}
}

// VGG returns VGG-16 at 224×224, a training network in Fig. 9.
func VGG() Workload {
	return Workload{Name: "VGG", Layers: []Layer{
		Conv("c1", 64, 3, 224, 224, 3, 3, 1, 1),
		Conv("c2", 64, 64, 224, 224, 3, 3, 1, 1),
		Conv("c3", 128, 64, 112, 112, 3, 3, 1, 1),
		Conv("c4", 128, 128, 112, 112, 3, 3, 1, 1),
		Conv("c5", 256, 128, 56, 56, 3, 3, 1, 1),
		Conv("c6", 256, 256, 56, 56, 3, 3, 1, 2),
		Conv("c8", 512, 256, 28, 28, 3, 3, 1, 1),
		Conv("c9", 512, 512, 28, 28, 3, 3, 1, 2),
		Conv("c11", 512, 512, 14, 14, 3, 3, 1, 3),
		Gemm("fc6", 1, 25088, 4096, 1),
		Gemm("fc7", 1, 4096, 4096, 1),
		Gemm("fc8", 1, 4096, 1000, 1),
	}}
}

// ResUNet returns a residual U-Net (ResUNet-a style) at 256×256, a
// validation network in Fig. 8.
func ResUNet() Workload {
	return Workload{Name: "ResUNet", Layers: []Layer{
		Conv("stem", 32, 3, 256, 256, 3, 3, 1, 1),
		Conv("e1", 32, 32, 256, 256, 3, 3, 1, 4),
		Conv("d1", 64, 32, 128, 128, 1, 1, 2, 1),
		Conv("e2", 64, 64, 128, 128, 3, 3, 1, 4),
		Conv("d2", 128, 64, 64, 64, 1, 1, 2, 1),
		Conv("e3", 128, 128, 64, 64, 3, 3, 1, 4),
		Conv("d3", 256, 128, 32, 32, 1, 1, 2, 1),
		Conv("bott", 256, 256, 32, 32, 3, 3, 1, 4),
		Conv("u3", 128, 256, 64, 64, 3, 3, 1, 3),
		Conv("u2", 64, 128, 128, 128, 3, 3, 1, 3),
		Conv("u1", 32, 64, 256, 256, 3, 3, 1, 3),
		Conv("out", 1, 32, 256, 256, 1, 1, 1, 1),
	}}
}

// MobileNetV3Large returns MobileNetV3-Large at 224×224 (Fig. 9 validation).
func MobileNetV3Large() Workload {
	return Workload{Name: "MobileNetV3-L", Layers: []Layer{
		Conv("conv1", 16, 3, 112, 112, 3, 3, 2, 1),
		DWConv("b1_dw", 16, 112, 112, 3, 3, 1, 1),
		Conv("b1_pw", 16, 16, 112, 112, 1, 1, 1, 1),
		Conv("b2_exp", 64, 16, 112, 112, 1, 1, 1, 1),
		DWConv("b2_dw", 64, 56, 56, 3, 3, 2, 1),
		Conv("b2_pw", 24, 64, 56, 56, 1, 1, 1, 1),
		Conv("b3_exp", 72, 24, 56, 56, 1, 1, 1, 2),
		DWConv("b3_dw", 72, 56, 56, 3, 3, 1, 1),
		Conv("b3_pw", 24, 72, 56, 56, 1, 1, 1, 1),
		DWConv("b4_dw", 72, 28, 28, 5, 5, 2, 1),
		Conv("b4_pw", 40, 72, 28, 28, 1, 1, 1, 1),
		Conv("b5_exp", 120, 40, 28, 28, 1, 1, 1, 2),
		DWConv("b5_dw", 120, 28, 28, 5, 5, 1, 2),
		Conv("b5_pw", 40, 120, 28, 28, 1, 1, 1, 2),
		Conv("b6_exp", 240, 40, 28, 28, 1, 1, 1, 1),
		DWConv("b6_dw", 240, 14, 14, 3, 3, 2, 1),
		Conv("b6_pw", 80, 240, 14, 14, 1, 1, 1, 1),
		Conv("b7_exp", 200, 80, 14, 14, 1, 1, 1, 3),
		DWConv("b7_dw", 200, 14, 14, 3, 3, 1, 3),
		Conv("b7_pw", 80, 200, 14, 14, 1, 1, 1, 3),
		Conv("b8_exp", 480, 80, 14, 14, 1, 1, 1, 1),
		DWConv("b8_dw", 480, 14, 14, 3, 3, 1, 1),
		Conv("b8_pw", 112, 480, 14, 14, 1, 1, 1, 1),
		Conv("b9_exp", 672, 112, 14, 14, 1, 1, 1, 1),
		DWConv("b9_dw", 672, 7, 7, 5, 5, 2, 1),
		Conv("b9_pw", 160, 672, 7, 7, 1, 1, 1, 1),
		Conv("b10_exp", 960, 160, 7, 7, 1, 1, 1, 2),
		DWConv("b10_dw", 960, 7, 7, 5, 5, 1, 2),
		Conv("b10_pw", 160, 960, 7, 7, 1, 1, 1, 2),
		Conv("head", 960, 160, 7, 7, 1, 1, 1, 1),
		Gemm("fc1", 1, 960, 1280, 1),
		Gemm("fc2", 1, 1280, 1000, 1),
	}}
}

// MobileNetV3Small returns MobileNetV3-Small at 224×224 (Fig. 9 validation).
func MobileNetV3Small() Workload {
	return Workload{Name: "MobileNetV3-S", Layers: []Layer{
		Conv("conv1", 16, 3, 112, 112, 3, 3, 2, 1),
		DWConv("b1_dw", 16, 56, 56, 3, 3, 2, 1),
		Conv("b1_pw", 16, 16, 56, 56, 1, 1, 1, 1),
		Conv("b2_exp", 72, 16, 56, 56, 1, 1, 1, 1),
		DWConv("b2_dw", 72, 28, 28, 3, 3, 2, 1),
		Conv("b2_pw", 24, 72, 28, 28, 1, 1, 1, 1),
		Conv("b3_exp", 88, 24, 28, 28, 1, 1, 1, 1),
		DWConv("b3_dw", 88, 28, 28, 3, 3, 1, 1),
		Conv("b3_pw", 24, 88, 28, 28, 1, 1, 1, 1),
		Conv("b4_exp", 96, 24, 28, 28, 1, 1, 1, 1),
		DWConv("b4_dw", 96, 14, 14, 5, 5, 2, 1),
		Conv("b4_pw", 40, 96, 14, 14, 1, 1, 1, 1),
		Conv("b5_exp", 240, 40, 14, 14, 1, 1, 1, 2),
		DWConv("b5_dw", 240, 14, 14, 5, 5, 1, 2),
		Conv("b5_pw", 40, 240, 14, 14, 1, 1, 1, 2),
		Conv("b6_exp", 120, 40, 14, 14, 1, 1, 1, 1),
		DWConv("b6_dw", 120, 14, 14, 5, 5, 1, 1),
		Conv("b6_pw", 48, 120, 14, 14, 1, 1, 1, 1),
		Conv("b7_exp", 144, 48, 14, 14, 1, 1, 1, 1),
		DWConv("b7_dw", 144, 14, 14, 5, 5, 1, 1),
		Conv("b7_pw", 48, 144, 14, 14, 1, 1, 1, 1),
		Conv("b8_exp", 288, 48, 14, 14, 1, 1, 1, 1),
		DWConv("b8_dw", 288, 7, 7, 5, 5, 2, 1),
		Conv("b8_pw", 96, 288, 7, 7, 1, 1, 1, 1),
		Conv("b9_exp", 576, 96, 7, 7, 1, 1, 1, 2),
		DWConv("b9_dw", 576, 7, 7, 5, 5, 1, 2),
		Conv("b9_pw", 96, 576, 7, 7, 1, 1, 1, 2),
		Conv("head", 576, 96, 7, 7, 1, 1, 1, 1),
		Gemm("fc1", 1, 576, 1024, 1),
		Gemm("fc2", 1, 1024, 1000, 1),
	}}
}

// NASNetMobile returns NASNet-Mobile at 224×224 (Fig. 9 validation),
// approximated by its dominant separable-convolution cells.
func NASNetMobile() Workload {
	return Workload{Name: "NASNetMobile", Layers: []Layer{
		Conv("stem", 32, 3, 111, 111, 3, 3, 2, 1),
		DWConv("r1_dw", 44, 56, 56, 5, 5, 2, 2),
		Conv("r1_pw", 44, 44, 56, 56, 1, 1, 1, 2),
		DWConv("c1_dw", 44, 56, 56, 3, 3, 1, 8),
		Conv("c1_pw", 44, 44, 56, 56, 1, 1, 1, 8),
		DWConv("r2_dw", 88, 28, 28, 5, 5, 2, 2),
		Conv("r2_pw", 88, 88, 28, 28, 1, 1, 1, 2),
		DWConv("c2_dw", 88, 28, 28, 3, 3, 1, 16),
		Conv("c2_pw", 88, 88, 28, 28, 1, 1, 1, 16),
		DWConv("r3_dw", 176, 14, 14, 5, 5, 2, 2),
		Conv("r3_pw", 176, 176, 14, 14, 1, 1, 1, 2),
		DWConv("c3_dw", 176, 14, 14, 3, 3, 1, 16),
		Conv("c3_pw", 176, 176, 14, 14, 1, 1, 1, 16),
		DWConv("r4_dw", 352, 7, 7, 5, 5, 2, 2),
		Conv("r4_pw", 352, 352, 7, 7, 1, 1, 1, 2),
		DWConv("c4_dw", 352, 7, 7, 3, 3, 1, 16),
		Conv("c4_pw", 352, 352, 7, 7, 1, 1, 1, 16),
		Gemm("fc", 1, 1056, 1000, 1),
	}}
}

// EfficientNetV2 returns EfficientNetV2-S at 300×300 (Fig. 9 validation):
// fused-MBConv early stages and MBConv late stages.
func EfficientNetV2() Workload {
	return Workload{Name: "EfficientNetV2", Layers: []Layer{
		Conv("stem", 24, 3, 150, 150, 3, 3, 2, 1),
		Conv("f1", 24, 24, 150, 150, 3, 3, 1, 2), // fused-MBConv1
		Conv("f2_exp", 96, 24, 75, 75, 3, 3, 2, 1),
		Conv("f2_pw", 48, 96, 75, 75, 1, 1, 1, 1),
		Conv("f2r", 192, 48, 75, 75, 3, 3, 1, 3),
		Conv("f2r_pw", 48, 192, 75, 75, 1, 1, 1, 3),
		Conv("f3_exp", 192, 48, 38, 38, 3, 3, 2, 1),
		Conv("f3_pw", 64, 192, 38, 38, 1, 1, 1, 1),
		Conv("f3r", 256, 64, 38, 38, 3, 3, 1, 3),
		Conv("f3r_pw", 64, 256, 38, 38, 1, 1, 1, 3),
		Conv("m4_exp", 256, 64, 38, 38, 1, 1, 1, 6),
		DWConv("m4_dw", 256, 19, 19, 3, 3, 2, 1),
		DWConv("m4r_dw", 512, 19, 19, 3, 3, 1, 5),
		Conv("m4_pw", 128, 256, 19, 19, 1, 1, 1, 6),
		Conv("m5_exp", 768, 128, 19, 19, 1, 1, 1, 9),
		DWConv("m5_dw", 768, 19, 19, 3, 3, 1, 9),
		Conv("m5_pw", 160, 768, 19, 19, 1, 1, 1, 9),
		Conv("m6_exp", 960, 160, 19, 19, 1, 1, 1, 15),
		DWConv("m6_dw", 960, 10, 10, 3, 3, 2, 1),
		DWConv("m6r_dw", 1536, 10, 10, 3, 3, 1, 14),
		Conv("m6_pw", 256, 960, 10, 10, 1, 1, 1, 15),
		Conv("head", 1280, 256, 10, 10, 1, 1, 1, 1),
		Gemm("fc", 1, 1280, 1000, 1),
	}}
}

// ConvNeXt returns ConvNeXt-T at 224×224 (Fig. 9 validation): patchify stem,
// 7×7 depthwise convolutions and inverted-bottleneck pointwise pairs.
func ConvNeXt() Workload {
	return Workload{Name: "ConvNeXt", Layers: []Layer{
		Conv("stem", 96, 3, 56, 56, 4, 4, 4, 1),
		DWConv("s1_dw", 96, 56, 56, 7, 7, 1, 3),
		Conv("s1_up", 384, 96, 56, 56, 1, 1, 1, 3),
		Conv("s1_down", 96, 384, 56, 56, 1, 1, 1, 3),
		Conv("ds2", 192, 96, 28, 28, 2, 2, 2, 1),
		DWConv("s2_dw", 192, 28, 28, 7, 7, 1, 3),
		Conv("s2_up", 768, 192, 28, 28, 1, 1, 1, 3),
		Conv("s2_down", 192, 768, 28, 28, 1, 1, 1, 3),
		Conv("ds3", 384, 192, 14, 14, 2, 2, 2, 1),
		DWConv("s3_dw", 384, 14, 14, 7, 7, 1, 9),
		Conv("s3_up", 1536, 384, 14, 14, 1, 1, 1, 9),
		Conv("s3_down", 384, 1536, 14, 14, 1, 1, 1, 9),
		Conv("ds4", 768, 384, 7, 7, 2, 2, 2, 1),
		DWConv("s4_dw", 768, 7, 7, 7, 7, 1, 3),
		Conv("s4_up", 3072, 768, 7, 7, 1, 1, 1, 3),
		Conv("s4_down", 768, 3072, 7, 7, 1, 1, 1, 3),
		Gemm("fc", 1, 768, 1000, 1),
	}}
}

// FSRCNN returns FSRCNN for 4x super-resolution of a h×w low-resolution
// input (paper Fig. 11 uses several resolutions, e.g. 120×320): feature
// extraction, shrink, four mapping layers, expand and the deconvolution
// (modeled as a convolution over the upscaled output grid).
func FSRCNN(h, w int) Workload {
	return Workload{Name: fmt.Sprintf("FSRCNN-%dx%d", h, w), Layers: []Layer{
		Conv("feat", 56, 1, h, w, 5, 5, 1, 1),
		Conv("shrink", 12, 56, h, w, 1, 1, 1, 1),
		Conv("map", 12, 12, h, w, 3, 3, 1, 4),
		Conv("expand", 56, 12, h, w, 1, 1, 1, 1),
		Conv("deconv", 1, 56, 4*h, 4*w, 9, 9, 1, 1),
	}}
}

// DLEU returns the deep-learning image enhancement and upscaling workload of
// Fig. 11 (a DLSS-2.0-like network): a convolutional autoencoder over a
// 540p→1080p upscale.
func DLEU() Workload {
	return Workload{Name: "DLEU", Layers: []Layer{
		Conv("enc1", 32, 12, 540, 960, 3, 3, 1, 1),
		Conv("enc2", 64, 32, 270, 480, 3, 3, 2, 1),
		Conv("enc3", 96, 64, 135, 240, 3, 3, 2, 1),
		Conv("body", 96, 96, 135, 240, 3, 3, 1, 4),
		Conv("dec2", 64, 96, 270, 480, 3, 3, 1, 1),
		Conv("dec1", 32, 64, 540, 960, 3, 3, 1, 1),
		Conv("out", 3, 32, 1080, 1920, 3, 3, 1, 1),
	}}
}

// ByName returns the named workload from the zoo, or an error listing the
// available names. Resolution-parameterized networks use fixed instances
// (FSRCNN-120x320).
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	names := make([]string, 0, len(All()))
	for _, w := range All() {
		names = append(names, w.Name)
	}
	sort.Strings(names)
	return Workload{}, fmt.Errorf("workload: unknown network %q (available: %v)", name, names)
}

// All returns every workload in the zoo.
func All() []Workload {
	return []Workload{
		BERT(), MobileNet(), MobileNetV2(), ResNet(), SRGAN(), UNet(), ViT(),
		Xception(), VGG(), ResUNet(), MobileNetV3Large(), MobileNetV3Small(),
		NASNetMobile(), EfficientNetV2(), ConvNeXt(),
		FSRCNN(120, 320), FSRCNN(240, 640), FSRCNN(480, 960), DLEU(),
	}
}

// Table12Networks returns the seven networks of Tables 1 and 2.
func Table12Networks() []Workload {
	return []Workload{BERT(), MobileNet(), ResNet(), SRGAN(), UNet(), ViT(), Xception()}
}
