package mapping

import (
	"fmt"
	"math/rand"

	"unico/internal/workload"
)

// Ascend is a schedule for the Ascend-like architecture: how the operator's
// GEMM-normal form (see GemmDims) is tiled into L1 and walked through the
// cube unit, how deep the depth-first buffer fusion runs, and which L0
// buffers double-buffer. This is the configuration the depth-first fusion
// search of paper Section 4.1 explores.
type Ascend struct {
	TM, TK, TN int  // L1 tile of the GEMM-normal dimensions
	FuseDepth  int  // depth-first fusion depth, 1..4 (1 = layer-by-layer)
	DBufA      bool // double-buffer L0A (needs >= 2 bank groups to help)
	DBufB      bool // double-buffer L0B
	DBufC      bool // double-buffer L0C
}

func (m Ascend) String() string {
	return fmt.Sprintf("tile[M=%d K=%d N=%d] fuse=%d dbuf(A=%v B=%v C=%v)",
		m.TM, m.TK, m.TN, m.FuseDepth, m.DBufA, m.DBufB, m.DBufC)
}

// GemmDims returns the GEMM-normal loop bounds (M, K, N) of a layer in the
// DaVinci convention: the left (L0A) matrix holds the weights
// (M = output channels, K = C·R·S reduction) and the right (L0B) matrix the
// im2col activations (N = batch·Y·X output positions), so output channels
// stream through L0A and reuse it across every output position.
func GemmDims(l workload.Layer) (m, k, n int) {
	return l.K, l.C * l.R * l.S, l.N * l.Y * l.X
}

// Canon clamps the schedule to the layer's GEMM-normal bounds and the legal
// fusion range.
func (m Ascend) Canon(l workload.Layer) Ascend {
	gm, gk, gn := GemmDims(l)
	m.TM = clampInt(m.TM, 1, gm)
	m.TK = clampInt(m.TK, 1, gk)
	m.TN = clampInt(m.TN, 1, gn)
	m.FuseDepth = clampInt(m.FuseDepth, 1, 4)
	return m
}

// Valid reports whether the schedule is well-formed for the layer.
func (m Ascend) Valid(l workload.Layer) bool {
	gm, gk, gn := GemmDims(l)
	return m.TM >= 1 && m.TM <= gm &&
		m.TK >= 1 && m.TK <= gk &&
		m.TN >= 1 && m.TN <= gn &&
		m.FuseDepth >= 1 && m.FuseDepth <= 4
}

// RandomAscend draws a uniformly random well-formed schedule for the layer.
func RandomAscend(rng *rand.Rand, l workload.Layer) Ascend {
	gm, gk, gn := GemmDims(l)
	pick := func(bound int) int {
		ladder := tileLadder(bound)
		return ladder[rng.Intn(len(ladder))]
	}
	return Ascend{
		TM: pick(gm), TK: pick(gk), TN: pick(gn),
		FuseDepth: 1 + rng.Intn(4),
		DBufA:     rng.Intn(2) == 0,
		DBufB:     rng.Intn(2) == 0,
		DBufC:     rng.Intn(2) == 0,
	}.Canon(l)
}

// MutateAscend returns a neighbouring schedule with one field changed.
func MutateAscend(rng *rand.Rand, m Ascend, l workload.Layer) Ascend {
	out := m
	gm, gk, gn := GemmDims(l)
	moveTile := func(cur, bound int) int {
		ladder := tileLadder(bound)
		i := nearestLadderIndex(ladder, cur)
		if rng.Intn(2) == 0 && i > 0 {
			i--
		} else if i < len(ladder)-1 {
			i++
		}
		return ladder[i]
	}
	switch rng.Intn(6) {
	case 0:
		out.TM = moveTile(out.TM, gm)
	case 1:
		out.TK = moveTile(out.TK, gk)
	case 2:
		out.TN = moveTile(out.TN, gn)
	case 3:
		out.FuseDepth = 1 + rng.Intn(4)
	case 4:
		out.DBufA = !out.DBufA
	case 5:
		if rng.Intn(2) == 0 {
			out.DBufB = !out.DBufB
		} else {
			out.DBufC = !out.DBufC
		}
	}
	return out.Canon(l)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
