// Package mapping defines software-mapping (schedule) representations for
// both accelerator platforms, together with the sampling, mutation and
// crossover moves the mapping-search tools (internal/mapsearch) operate on.
//
// A mapping fixes how the 7D operator loop nest (paper Fig. 1) is split
// across the memory hierarchy and the PE array: which loops are tiled with
// what factors, which dimensions are mapped spatially, and in what temporal
// order the tiles are visited. The cost models judge legality (does a tile
// fit its buffer?) and quality; this package only describes schedules and
// their neighbourhoods.
package mapping

import (
	"fmt"
	"math/rand"
	"sync"

	"unico/internal/workload"
)

// Dim identifies one tileable loop of the convolution nest.
type Dim int

const (
	DimK Dim = iota // output channels
	DimC            // input channels
	DimY            // output rows
	DimX            // output cols
)

var dimNames = [...]string{"K", "C", "Y", "X"}

func (d Dim) String() string {
	if d < 0 || int(d) >= len(dimNames) {
		return fmt.Sprintf("Dim(%d)", int(d))
	}
	return dimNames[d]
}

// AllDims lists the tileable dimensions.
var AllDims = []Dim{DimK, DimC, DimY, DimX}

// Orders enumerates the canonical temporal loop orders (outermost dimension
// first) a mapping may select. Restricting to rotations of (K,C,Y,X) keeps
// the space the size FlexTensor prunes to while still changing which operand
// enjoys outer-loop reuse.
var Orders = [][]Dim{
	{DimK, DimC, DimY, DimX},
	{DimC, DimK, DimY, DimX},
	{DimY, DimX, DimK, DimC},
	{DimK, DimY, DimX, DimC},
	{DimC, DimY, DimX, DimK},
	{DimY, DimK, DimC, DimX},
}

// Spatial is a schedule for the open-source spatial accelerator: L1 tile
// sizes per dimension (including the R×S kernel window, which FlexTensor's
// split primitive also tiles), the two dimensions unrolled across the PE
// array's x and y axes, and the temporal loop order. The kernel-window
// loops always nest innermost, so TR/TS participate in tiling but not in
// the Orders permutation or spatial unrolling.
type Spatial struct {
	TK, TC, TY, TX int // L1 tile sizes (clamped to the layer bounds)
	TR, TS         int // kernel-window tile sizes
	SpatX, SpatY   Dim // dimensions mapped across PEX and PEY
	Order          int // index into Orders
}

func (m Spatial) String() string {
	return fmt.Sprintf("tile[K=%d C=%d Y=%d X=%d R=%d S=%d] spat(%s,%s) order=%v",
		m.TK, m.TC, m.TY, m.TX, m.TR, m.TS, m.SpatX, m.SpatY, Orders[m.Order])
}

// Tile returns the tile size of dimension d.
func (m Spatial) Tile(d Dim) int {
	switch d {
	case DimK:
		return m.TK
	case DimC:
		return m.TC
	case DimY:
		return m.TY
	case DimX:
		return m.TX
	}
	panic(fmt.Sprintf("mapping: bad dim %d", d))
}

// setTile sets the tile size of dimension d.
func (m *Spatial) setTile(d Dim, v int) {
	switch d {
	case DimK:
		m.TK = v
	case DimC:
		m.TC = v
	case DimY:
		m.TY = v
	case DimX:
		m.TX = v
	default:
		panic(fmt.Sprintf("mapping: bad dim %d", d))
	}
}

// Canon clamps the mapping to the layer's loop bounds and repairs degenerate
// choices (equal spatial dimensions, out-of-range order). Every generator
// and mutation funnels through Canon so downstream code can assume a
// well-formed schedule.
func (m Spatial) Canon(l workload.Layer) Spatial {
	bounds := dimBounds(l)
	for _, d := range AllDims {
		t := m.Tile(d)
		if t < 1 {
			t = 1
		}
		if t > bounds[d] {
			t = bounds[d]
		}
		m.setTile(d, t)
	}
	m.TR = clampTile(m.TR, l.R)
	m.TS = clampTile(m.TS, l.S)
	if m.Order < 0 || m.Order >= len(Orders) {
		m.Order = 0
	}
	if m.SpatX < 0 || m.SpatX > DimX {
		m.SpatX = DimK
	}
	if m.SpatY < 0 || m.SpatY > DimX {
		m.SpatY = DimY
	}
	if m.SpatX == m.SpatY {
		// Pick the next dimension cyclically to keep the pair distinct.
		m.SpatY = Dim((int(m.SpatY) + 1) % len(AllDims))
	}
	return m
}

// clampTile clamps a tile size to [1, bound].
func clampTile(t, bound int) int {
	if t < 1 {
		return 1
	}
	if t > bound {
		return bound
	}
	return t
}

// Valid reports whether the mapping is well-formed for the layer.
func (m Spatial) Valid(l workload.Layer) bool {
	bounds := dimBounds(l)
	for _, d := range AllDims {
		t := m.Tile(d)
		if t < 1 || t > bounds[d] {
			return false
		}
	}
	if m.TR < 1 || m.TR > l.R || m.TS < 1 || m.TS > l.S {
		return false
	}
	return m.SpatX != m.SpatY &&
		m.Order >= 0 && m.Order < len(Orders) &&
		m.SpatX >= 0 && m.SpatX <= DimX &&
		m.SpatY >= 0 && m.SpatY <= DimX
}

// dimBounds returns the loop bound of each tileable dimension for the
// layer, indexed by Dim. An array rather than a map: this sits under every
// Canon/Mutate call on the mapping-search hot path, and the map allocation
// plus hashed lookups dominated the profile.
func dimBounds(l workload.Layer) [4]int {
	return [4]int{DimK: l.K, DimC: l.C, DimY: l.Y, DimX: l.X}
}

// ladderCache memoizes tileLadder per bound. Layer bounds repeat across the
// millions of mutation steps of a search, and rebuilding the ladder (with
// its dedup set) on every step was a top allocation site. Cached slices are
// shared — callers must treat them as read-only.
var ladderCache sync.Map // int -> []int

// tileLadder returns the candidate tile sizes for a loop of the given bound:
// the {2^i, 3*2^i} ladder clipped to the bound, plus the bound itself. This
// mirrors the split-factor candidates FlexTensor enumerates. The returned
// slice is shared and must not be modified.
func tileLadder(bound int) []int {
	if bound < 1 {
		bound = 0
	}
	if v, ok := ladderCache.Load(bound); ok {
		return v.([]int)
	}
	var vals []int
	if bound < 1 {
		vals = []int{1}
	} else {
		seen := map[int]bool{}
		add := func(v int) {
			if v >= 1 && v <= bound && !seen[v] {
				seen[v] = true
				vals = append(vals, v)
			}
		}
		for p := 1; p <= bound; p *= 2 {
			add(p)
			add(3 * p)
		}
		add(bound)
	}
	actual, _ := ladderCache.LoadOrStore(bound, vals)
	return actual.([]int)
}

// RandomSpatial draws a uniformly random well-formed schedule for the layer.
func RandomSpatial(rng *rand.Rand, l workload.Layer) Spatial {
	m := Spatial{
		SpatX: AllDims[rng.Intn(len(AllDims))],
		SpatY: AllDims[rng.Intn(len(AllDims))],
		Order: rng.Intn(len(Orders)),
	}
	for _, d := range AllDims {
		ladder := tileLadder(dimBounds(l)[d])
		m.setTile(d, ladder[rng.Intn(len(ladder))])
	}
	rLadder := tileLadder(l.R)
	sLadder := tileLadder(l.S)
	m.TR = rLadder[rng.Intn(len(rLadder))]
	m.TS = sLadder[rng.Intn(len(sLadder))]
	return m.Canon(l)
}

// MutateSpatial returns a neighbouring schedule: one field changed — a tile
// size moved along its ladder, a spatial dimension swapped, or the loop
// order changed.
func MutateSpatial(rng *rand.Rand, m Spatial, l workload.Layer) Spatial {
	out := m
	move := func(cur, bound int) int {
		ladder := tileLadder(bound)
		i := nearestLadderIndex(ladder, cur)
		if rng.Intn(2) == 0 && i > 0 {
			i--
		} else if i < len(ladder)-1 {
			i++
		}
		return ladder[i]
	}
	switch rng.Intn(5) {
	case 0, 1: // move one tile size one ladder step (most productive move)
		d := AllDims[rng.Intn(len(AllDims))]
		out.setTile(d, move(out.Tile(d), dimBounds(l)[d]))
	case 2: // move a kernel-window tile
		if rng.Intn(2) == 0 {
			out.TR = move(out.TR, l.R)
		} else {
			out.TS = move(out.TS, l.S)
		}
	case 3: // re-pick a spatial dimension
		if rng.Intn(2) == 0 {
			out.SpatX = AllDims[rng.Intn(len(AllDims))]
		} else {
			out.SpatY = AllDims[rng.Intn(len(AllDims))]
		}
	case 4: // change loop order
		out.Order = rng.Intn(len(Orders))
	}
	return out.Canon(l)
}

// CrossoverSpatial recombines two schedules field-wise (uniform crossover),
// the GAMMA-style genetic operator.
func CrossoverSpatial(rng *rand.Rand, a, b Spatial, l workload.Layer) Spatial {
	out := a
	if rng.Intn(2) == 0 {
		out.TK = b.TK
	}
	if rng.Intn(2) == 0 {
		out.TC = b.TC
	}
	if rng.Intn(2) == 0 {
		out.TY = b.TY
	}
	if rng.Intn(2) == 0 {
		out.TX = b.TX
	}
	if rng.Intn(2) == 0 {
		out.TR, out.TS = b.TR, b.TS
	}
	if rng.Intn(2) == 0 {
		out.SpatX = b.SpatX
	}
	if rng.Intn(2) == 0 {
		out.SpatY = b.SpatY
	}
	if rng.Intn(2) == 0 {
		out.Order = b.Order
	}
	return out.Canon(l)
}

// nearestLadderIndex returns the index of the ladder value closest to v.
func nearestLadderIndex(ladder []int, v int) int {
	best, bestDist := 0, -1
	for i, w := range ladder {
		d := w - v
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}
