package mapping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"unico/internal/workload"
)

func testLayer() workload.Layer {
	return workload.Conv("t", 64, 32, 28, 28, 3, 3, 1, 1)
}

func TestCanonClampsTiles(t *testing.T) {
	l := testLayer()
	m := Spatial{TK: 1000, TC: -5, TY: 28, TX: 0, TR: 9, TS: 0, Order: 99, SpatX: DimK, SpatY: DimK}.Canon(l)
	if !m.Valid(l) {
		t.Fatalf("Canon produced invalid mapping %+v", m)
	}
	if m.TK != 64 || m.TC != 1 || m.TX != 1 || m.TR != 3 || m.TS != 1 {
		t.Errorf("clamping wrong: %+v", m)
	}
	if m.SpatX == m.SpatY {
		t.Error("Canon left equal spatial dims")
	}
	if m.Order != 0 {
		t.Errorf("Order = %d, want reset to 0", m.Order)
	}
}

func TestRandomSpatialValidProperty(t *testing.T) {
	l := testLayer()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		return RandomSpatial(rng, l).Valid(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMutateSpatialValidProperty(t *testing.T) {
	l := testLayer()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := RandomSpatial(rng, l)
		for i := 0; i < 10; i++ {
			m = MutateSpatial(rng, m, l)
			if !m.Valid(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossoverSpatialValidProperty(t *testing.T) {
	l := testLayer()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandomSpatial(rng, l)
		b := RandomSpatial(rng, l)
		return CrossoverSpatial(rng, a, b, l).Valid(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMutateEventuallyMoves(t *testing.T) {
	l := testLayer()
	rng := rand.New(rand.NewSource(7))
	m := RandomSpatial(rng, l)
	moved := false
	for i := 0; i < 50; i++ {
		if MutateSpatial(rng, m, l) != m {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("50 mutations never changed the mapping")
	}
}

func TestTileLadder(t *testing.T) {
	ladder := tileLadder(28)
	if ladder[0] != 1 {
		t.Errorf("ladder does not start at 1: %v", ladder)
	}
	hasBound := false
	for _, v := range ladder {
		if v < 1 || v > 28 {
			t.Errorf("ladder value %d out of [1,28]", v)
		}
		if v == 28 {
			hasBound = true
		}
	}
	if !hasBound {
		t.Errorf("ladder misses the bound: %v", ladder)
	}
	if got := tileLadder(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("tileLadder(0) = %v", got)
	}
}

func TestOrdersArePermutations(t *testing.T) {
	for i, ord := range Orders {
		seen := map[Dim]bool{}
		for _, d := range ord {
			if seen[d] {
				t.Errorf("order %d repeats %v", i, d)
			}
			seen[d] = true
		}
		if len(seen) != len(AllDims) {
			t.Errorf("order %d misses dims: %v", i, ord)
		}
	}
}

func TestGemmDims(t *testing.T) {
	l := workload.Conv("c", 64, 32, 28, 28, 3, 3, 1, 1)
	m, k, n := GemmDims(l)
	// DaVinci convention: M = output channels, K = C*R*S, N = positions.
	if m != 64 || k != 32*9 || n != 28*28 {
		t.Errorf("GemmDims = (%d, %d, %d)", m, k, n)
	}
}

func TestAscendCanonAndValid(t *testing.T) {
	l := testLayer()
	m := Ascend{TM: 1 << 20, TK: 0, TN: -3, FuseDepth: 9}.Canon(l)
	if !m.Valid(l) {
		t.Fatalf("Canon produced invalid schedule %+v", m)
	}
	gm, gk, gn := GemmDims(l)
	if m.TM != gm || m.TK != 1 || m.TN != 1 {
		t.Errorf("clamping wrong: %+v (gm=%d gk=%d gn=%d)", m, gm, gk, gn)
	}
	if m.FuseDepth != 4 {
		t.Errorf("FuseDepth = %d, want clamp to 4", m.FuseDepth)
	}
}

func TestRandomAscendValidProperty(t *testing.T) {
	l := testLayer()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := RandomAscend(rng, l)
		if !m.Valid(l) {
			return false
		}
		for i := 0; i < 10; i++ {
			m = MutateAscend(rng, m, l)
			if !m.Valid(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDimString(t *testing.T) {
	if DimK.String() != "K" || DimX.String() != "X" {
		t.Errorf("dim strings: %v %v", DimK, DimX)
	}
	if Dim(42).String() == "K" {
		t.Error("out-of-range dim printed as K")
	}
}
