package evalcache

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"unico/internal/camodel"
	"unico/internal/maestro"
	"unico/internal/ppa"
	"unico/internal/telemetry"
)

// record is the JSONL wire form of one cache entry. Successful evaluations
// carry metrics; deterministic failures carry the error text and an
// infeasibility flag so the sentinel survives the round trip.
type record struct {
	Key        string       `json:"k"`
	Engine     string       `json:"e,omitempty"`
	Metrics    *ppa.Metrics `json:"m,omitempty"`
	Infeasible bool         `json:"inf,omitempty"`
	Error      string       `json:"err,omitempty"`
}

// cachedError is an evaluation error reloaded from disk: it reproduces the
// original error text and, for infeasible mappings, unwraps to the engine's
// ErrInfeasible sentinel so errors.Is keeps working across a restart.
type cachedError struct {
	msg      string
	sentinel error
}

func (e *cachedError) Error() string { return e.msg }

// Unwrap exposes the infeasibility sentinel (nil for non-infeasible errors).
func (e *cachedError) Unwrap() error { return e.sentinel }

// sentinelFor maps an engine name to its infeasibility sentinel.
func sentinelFor(engine string) error {
	switch engine {
	case EngineMaestro:
		return maestro.ErrInfeasible
	case EngineCAModel:
		return camodel.ErrInfeasible
	}
	return nil
}

// WriteJSONL writes every stored entry as one JSON object per line, least
// recently used first (so reloading into a smaller cache keeps the hottest
// entries).
func (c *Cache) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range c.snapshot() {
		rec := record{Key: e.key.String(), Engine: e.engine}
		if e.err != nil {
			rec.Error = e.err.Error()
			rec.Infeasible = errors.Is(e.err, maestro.ErrInfeasible) ||
				errors.Is(e.err, camodel.ErrInfeasible)
		} else {
			m := e.met
			rec.Metrics = &m
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("evalcache: write entry: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSONL loads entries from one-JSON-object-per-line input, returning how
// many were stored. Malformed lines are skipped and counted in telemetry (a
// truncated final line from an interrupted save must not poison the warm
// start); a read error aborts.
func (c *Cache) ReadJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			telemetry.EvalCacheSkippedLines().Inc()
			continue
		}
		key, ok := parseKey(rec.Key)
		if !ok {
			telemetry.EvalCacheSkippedLines().Inc()
			continue
		}
		e := &entry{key: key, engine: rec.Engine}
		switch {
		case rec.Error != "":
			ce := &cachedError{msg: rec.Error}
			if rec.Infeasible {
				ce.sentinel = sentinelFor(rec.Engine)
			}
			e.err = ce
		case rec.Metrics != nil:
			e.met = *rec.Metrics
		default:
			telemetry.EvalCacheSkippedLines().Inc()
			continue
		}
		c.put(e)
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("evalcache: read: %w", err)
	}
	return n, nil
}

// LoadFile warm-starts the cache from a JSONL file written by SaveFile,
// returning how many entries were loaded. A missing file is not an error —
// the first run of a fresh experiment starts cold.
func (c *Cache) LoadFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("evalcache: open %s: %w", path, err)
	}
	defer f.Close()
	return c.ReadJSONL(f)
}

// SaveFile persists the cache to path as JSONL, writing a temporary file in
// the same directory, fsyncing it and renaming it into place, so a crash
// mid-save never truncates an existing warm-start file and the renamed data
// is actually on disk when SaveFile returns.
func (c *Cache) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("evalcache: save %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := c.WriteJSONL(tmp); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("evalcache: save %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("evalcache: save %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("evalcache: save %s: %w", path, err)
	}
	// Best-effort directory sync makes the rename itself durable.
	if d, err := os.Open(dir); err == nil {
		//unicolint:allow durerr directory fsync is best-effort: some filesystems reject fsync on directories; file durability is carried by the checked tmp.Sync above
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
