package evalcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"unico/internal/hw"
	"unico/internal/mapping"
	"unico/internal/workload"
)

// Key is the content address of one PPA evaluation: the SHA-256 digest of a
// canonical binary encoding of the (hardware, mapping, layer) triple plus a
// platform tag byte. Two triples share a key exactly when every field the
// cost models read is equal.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (the form persisted to JSONL).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Uint64 folds the key to its first eight digest bytes — the uniformly
// distributed ring coordinate the fleet router consistent-hashes shards and
// evaluation keys into.
func (k Key) Uint64() uint64 { return binary.LittleEndian.Uint64(k[:8]) }

// parseKey decodes the hex form; ok is false on malformed input.
func parseKey(s string) (Key, bool) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return Key{}, false
	}
	copy(k[:], b)
	return k, true
}

// Platform tag bytes keep the two engines' key spaces disjoint even for
// numerically identical field encodings.
const (
	tagSpatial byte = 's'
	tagAscend  byte = 'a'
)

// hashInts digests a platform tag plus a fixed-order field list. Every field
// is written as a little-endian int64, so the encoding is unambiguous
// (fixed width, fixed order, no delimiters needed).
func hashInts(tag byte, fields ...int64) Key {
	h := sha256.New()
	var buf [8]byte
	h.Write([]byte{tag})
	for _, f := range fields {
		binary.LittleEndian.PutUint64(buf[:], uint64(f))
		h.Write(buf[:])
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// layerFields lists the layer fields the cost models read. Name and Repeat
// are deliberately excluded: metrics depend only on the operator shape
// (EvaluateWorkload applies Repeat outside the per-layer evaluation), so
// identical shapes across networks — common among the zoo's conv blocks —
// share one cache entry.
func layerFields(l workload.Layer) []int64 {
	return []int64{
		int64(l.Kind), int64(l.N), int64(l.K), int64(l.C),
		int64(l.Y), int64(l.X), int64(l.R), int64(l.S), int64(l.Stride),
	}
}

// SpatialKey returns the content address of evaluating layer l with mapping
// m on the spatial-accelerator configuration c. Callers should canonicalize
// the mapping first (m.Canon(l)) so schedules that the engine would clamp to
// the same canonical form share an entry; the cached engine wrappers do.
func SpatialKey(c hw.Spatial, m mapping.Spatial, l workload.Layer) Key {
	fields := []int64{
		int64(c.PEX), int64(c.PEY), int64(c.L1Bytes), int64(c.L2KB),
		int64(c.NoCBW), int64(c.Dataflow),
		int64(m.TK), int64(m.TC), int64(m.TY), int64(m.TX),
		int64(m.TR), int64(m.TS), int64(m.SpatX), int64(m.SpatY), int64(m.Order),
	}
	return hashInts(tagSpatial, append(fields, layerFields(l)...)...)
}

// AscendKey returns the content address of evaluating layer l with schedule
// m on the Ascend-like core configuration c. As with SpatialKey, callers
// should canonicalize the schedule first.
func AscendKey(c hw.Ascend, m mapping.Ascend, l workload.Layer) Key {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	fields := []int64{
		int64(c.L0AKB), int64(c.L0BKB), int64(c.L0CKB), int64(c.L1KB),
		int64(c.UBKB), int64(c.PBKB), int64(c.ICacheKB),
		int64(c.L0ABanks), int64(c.L0BBanks), int64(c.L0CBanks),
		int64(c.CubeM), int64(c.CubeK), int64(c.CubeN),
		int64(m.TM), int64(m.TK), int64(m.TN), int64(m.FuseDepth),
		b2i(m.DBufA), b2i(m.DBufB), b2i(m.DBufC),
	}
	return hashInts(tagAscend, append(fields, layerFields(l)...)...)
}
