package evalcache

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"unico/internal/camodel"
	"unico/internal/hw"
	"unico/internal/maestro"
	"unico/internal/mapping"
	"unico/internal/ppa"
	"unico/internal/workload"
)

func testTriple() (hw.Spatial, mapping.Spatial, workload.Layer) {
	l := workload.Conv("c", 16, 8, 14, 14, 3, 3, 1, 1)
	c := hw.Spatial{PEX: 4, PEY: 4, L1Bytes: 1728, L2KB: 432, NoCBW: 128, Dataflow: hw.WeightStationary}
	m := mapping.Spatial{TK: 2, TC: 2, TY: 2, TX: 2, TR: 3, TS: 3,
		SpatX: mapping.DimK, SpatY: mapping.DimY}.Canon(l)
	return c, m, l
}

func TestKeyDistinguishesEveryField(t *testing.T) {
	c, m, l := testTriple()
	base := SpatialKey(c, m, l)

	mutations := map[string]func(){}
	mutations["hw.PEX"] = func() { c.PEX++ }
	mutations["hw.L1Bytes"] = func() { c.L1Bytes++ }
	mutations["hw.Dataflow"] = func() { c.Dataflow++ }
	mutations["map.TK"] = func() { m.TK++ }
	mutations["map.Order"] = func() { m.Order++ }
	mutations["map.SpatX"] = func() { m.SpatX, m.SpatY = m.SpatY, m.SpatX }
	mutations["layer.K"] = func() { l.K++ }
	mutations["layer.Stride"] = func() { l.Stride++ }
	mutations["layer.Kind"] = func() { l.Kind = workload.Gemm("g", 4, 4, 4, 1).Kind }
	for name, mutate := range mutations {
		c, m, l = testTriple()
		mutate()
		if SpatialKey(c, m, l) == base {
			t.Errorf("%s: mutation did not change the key", name)
		}
	}
}

func TestKeyIgnoresLayerNameAndRepeat(t *testing.T) {
	c, m, l := testTriple()
	base := SpatialKey(c, m, l)
	l.Name = "renamed"
	l.Repeat = 7
	if SpatialKey(c, m, l) != base {
		t.Error("key depends on layer Name/Repeat; identical shapes must share an entry")
	}
}

func TestSpatialAndAscendKeySpacesDisjoint(t *testing.T) {
	// Same field values, different platform tags.
	if hashInts(tagSpatial, 1, 2, 3) == hashInts(tagAscend, 1, 2, 3) {
		t.Error("platform tag does not separate key spaces")
	}
}

func TestKeyStringRoundTrip(t *testing.T) {
	c, m, l := testTriple()
	k := SpatialKey(c, m, l)
	got, ok := parseKey(k.String())
	if !ok || got != k {
		t.Fatalf("parseKey(%q) = %v, %v", k.String(), got, ok)
	}
	if _, ok := parseKey("zz"); ok {
		t.Error("malformed key accepted")
	}
}

func TestDoCachesResults(t *testing.T) {
	cache := New(0)
	c, m, l := testTriple()
	key := SpatialKey(c, m, l)
	computes := 0
	compute := func() (ppa.Metrics, error) {
		computes++
		return ppa.Metrics{LatencyMs: 1.5}, nil
	}
	for i := 0; i < 3; i++ {
		met, err := cache.Do(key, EngineMaestro, compute)
		if err != nil || met.LatencyMs != 1.5 {
			t.Fatalf("Do #%d = %v, %v", i, met, err)
		}
	}
	if computes != 1 {
		t.Errorf("computed %d times, want 1", computes)
	}
	st := cache.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if hr := st.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Errorf("hit rate = %v", hr)
	}
}

func TestDoDeduplicatesInflight(t *testing.T) {
	cache := New(0)
	c, m, l := testTriple()
	key := SpatialKey(c, m, l)
	var computes atomic.Int64
	gate := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			met, err := cache.Do(key, EngineMaestro, func() (ppa.Metrics, error) {
				computes.Add(1)
				<-gate // hold the computation open so the others pile up
				return ppa.Metrics{LatencyMs: 2}, nil
			})
			if err != nil || met.LatencyMs != 2 {
				t.Errorf("Do = %v, %v", met, err)
			}
		}()
	}
	// Let the goroutines reach the cache, then release the single compute.
	for cache.Stats().Misses == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("computed %d times under contention, want 1", got)
	}
	st := cache.Stats()
	if st.Hits+st.InflightWaits != n-1 {
		t.Errorf("hits=%d waits=%d, want them to cover the other %d lookups", st.Hits, st.InflightWaits, n-1)
	}
}

func TestDoCachesDeterministicErrors(t *testing.T) {
	cache := New(0)
	c, m, l := testTriple()
	key := SpatialKey(c, m, l)
	computes := 0
	wantErr := fmt.Errorf("tile does not fit: %w", maestro.ErrInfeasible)
	for i := 0; i < 2; i++ {
		_, err := cache.Do(key, EngineMaestro, func() (ppa.Metrics, error) {
			computes++
			return ppa.Metrics{}, wantErr
		})
		if !errors.Is(err, maestro.ErrInfeasible) {
			t.Fatalf("Do #%d err = %v", i, err)
		}
	}
	if computes != 1 {
		t.Errorf("infeasibility recomputed %d times, want 1", computes)
	}
}

func TestUncachableErrorsAreNotStored(t *testing.T) {
	cache := New(0)
	c, m, l := testTriple()
	key := SpatialKey(c, m, l)
	transport := errors.New("connection refused")
	computes := 0
	for i := 0; i < 2; i++ {
		_, err := cache.Do(key, EngineMaestro, func() (ppa.Metrics, error) {
			computes++
			return ppa.Metrics{}, Uncachable(transport)
		})
		// The caller sees the underlying error, not the marker wrapper.
		if err != transport {
			t.Fatalf("Do #%d err = %v, want the unwrapped transport error", i, err)
		}
	}
	if computes != 2 {
		t.Errorf("transient failure computed %d times, want 2 (never cached)", computes)
	}
	if cache.Len() != 0 {
		t.Errorf("transient failure stored: %d entries", cache.Len())
	}
	if Uncachable(nil) != nil {
		t.Error("Uncachable(nil) != nil")
	}
}

func TestLRUBound(t *testing.T) {
	// Capacity 64 over 64 shards = 1 entry per shard.
	cache := New(64)
	c, m, l := testTriple()
	var keys []Key
	for i := 0; i < 512; i++ {
		l.N = i + 1
		key := SpatialKey(c, m, l)
		keys = append(keys, key)
		cache.put(&entry{key: key, engine: EngineMaestro, met: ppa.Metrics{LatencyMs: float64(i)}})
	}
	if cache.Len() > 64 {
		t.Errorf("cache holds %d entries, bound is 64", cache.Len())
	}
	// Find two keys in the same shard: the later insert must have evicted
	// the earlier one.
	shardOf := func(k Key) int { return int(k[0]) % numShards }
	found := false
	for i := 0; i < len(keys) && !found; i++ {
		for j := i + 1; j < len(keys); j++ {
			if shardOf(keys[i]) == shardOf(keys[j]) {
				if _, _, ok := cache.Get(keys[i]); ok {
					t.Errorf("older same-shard entry survived past the bound")
				}
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no same-shard key pair among 512 keys (impossible)")
	}
}

func TestGetMissAndHit(t *testing.T) {
	cache := New(0)
	c, m, l := testTriple()
	key := SpatialKey(c, m, l)
	if _, _, ok := cache.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	want := ppa.Metrics{LatencyMs: 3}
	if _, err := cache.Do(key, EngineMaestro, func() (ppa.Metrics, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	met, err, ok := cache.Get(key)
	if !ok || err != nil || met != want {
		t.Fatalf("Get = %v, %v, %v", met, err, ok)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	cache := New(0)
	c, m, l := testTriple()

	okKey := SpatialKey(c, m, l)
	wantMet := ppa.Metrics{LatencyMs: 1.25, PowerMW: 300, AreaMM2: 2.5, EnergyUJ: 42}
	cache.put(&entry{key: okKey, engine: EngineMaestro, met: wantMet})

	l.N = 2
	spatialInf := SpatialKey(c, m, l)
	cache.put(&entry{key: spatialInf, engine: EngineMaestro,
		err: fmt.Errorf("mapping does not fit L1: %w", maestro.ErrInfeasible)})

	l.N = 3
	ascendInf := SpatialKey(c, m, l) // any distinct key works for the test
	cache.put(&entry{key: ascendInf, engine: EngineCAModel,
		err: fmt.Errorf("schedule overflows UB: %w", camodel.ErrInfeasible)})

	l.N = 4
	plainErr := SpatialKey(c, m, l)
	cache.put(&entry{key: plainErr, engine: EngineMaestro, err: errors.New("validation: bad dataflow")})

	var buf bytes.Buffer
	if err := cache.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}

	loaded := New(0)
	n, err := loaded.ReadJSONL(&buf)
	if err != nil || n != 4 {
		t.Fatalf("ReadJSONL = %d, %v", n, err)
	}

	met, err, ok := loaded.Get(okKey)
	if !ok || err != nil || met != wantMet {
		t.Fatalf("metrics entry = %v, %v, %v", met, err, ok)
	}
	if _, err, ok := loaded.Get(spatialInf); !ok || !errors.Is(err, maestro.ErrInfeasible) {
		t.Errorf("spatial infeasibility lost its sentinel: %v (ok=%v)", err, ok)
	} else if err.Error() != "mapping does not fit L1: "+maestro.ErrInfeasible.Error() {
		t.Errorf("spatial infeasibility lost its message: %q", err)
	}
	if _, err, ok := loaded.Get(ascendInf); !ok || !errors.Is(err, camodel.ErrInfeasible) {
		t.Errorf("ascend infeasibility lost its sentinel: %v (ok=%v)", err, ok)
	}
	if _, err, ok := loaded.Get(plainErr); !ok || err == nil ||
		errors.Is(err, maestro.ErrInfeasible) || errors.Is(err, camodel.ErrInfeasible) {
		t.Errorf("plain error entry = %v (ok=%v)", err, ok)
	}
}

func TestReadJSONLSkipsMalformedLines(t *testing.T) {
	cache := New(0)
	c, m, l := testTriple()
	key := SpatialKey(c, m, l)
	input := "not json\n" +
		`{"k":"zz","m":{"latency_ms":1}}` + "\n" + // bad key
		`{"k":"` + key.String() + `"}` + "\n" + // neither metrics nor error
		`{"k":"` + key.String() + `","e":"maestro","m":{}}` + "\n"
	n, err := cache.ReadJSONL(bytes.NewReader([]byte(input)))
	if err != nil || n != 1 {
		t.Fatalf("ReadJSONL = %d, %v, want 1 stored entry", n, err)
	}
}

func TestSaveAndLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.jsonl")

	empty := New(0)
	if n, err := empty.LoadFile(path); n != 0 || err != nil {
		t.Fatalf("LoadFile(missing) = %d, %v, want 0, nil", n, err)
	}

	c, m, l := testTriple()
	key := SpatialKey(c, m, l)
	empty.put(&entry{key: key, engine: EngineMaestro, met: ppa.Metrics{LatencyMs: 9}})
	if err := empty.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	warm := New(0)
	if n, err := warm.LoadFile(path); n != 1 || err != nil {
		t.Fatalf("LoadFile = %d, %v", n, err)
	}
	if met, err, ok := warm.Get(key); !ok || err != nil || met.LatencyMs != 9 {
		t.Fatalf("warm entry = %v, %v, %v", met, err, ok)
	}
}

func TestProcessHook(t *testing.T) {
	if Process() != nil {
		t.Fatal("process cache unexpectedly set")
	}
	cache := New(0)
	SetProcess(cache)
	defer SetProcess(nil)
	if Process() != cache {
		t.Error("SetProcess did not install the cache")
	}
}

// countingSpatial wraps the analytical engine with an evaluation counter, so
// the tests can prove a cache hit performs no engine recomputation.
type countingSpatial struct {
	inner maestro.Engine
	n     atomic.Int64
}

func (e *countingSpatial) Evaluate(c hw.Spatial, m mapping.Spatial, l workload.Layer) (ppa.Metrics, error) {
	e.n.Add(1)
	return e.inner.Evaluate(c, m, l)
}
func (e *countingSpatial) Area(c hw.Spatial) float64 { return e.inner.Area(c) }
func (e *countingSpatial) EvalCostSeconds() float64  { return e.inner.EvalCostSeconds() }

func TestCachedSpatialEngineSkipsRecomputation(t *testing.T) {
	counter := &countingSpatial{}
	eng := Spatial{Inner: counter, Cache: New(0)}
	c, m, l := testTriple()

	met1, err1 := eng.Evaluate(c, m, l)
	if err1 != nil {
		t.Fatal(err1)
	}
	calls := counter.n.Load()
	met2, err2 := eng.Evaluate(c, m, l)
	if err2 != nil || met2 != met1 {
		t.Fatalf("cached result differs: %v vs %v (%v)", met2, met1, err2)
	}
	if counter.n.Load() != calls {
		t.Errorf("engine recomputed on a cache hit: %d -> %d calls", calls, counter.n.Load())
	}
	if eng.Area(c) != counter.inner.Area(c) || eng.EvalCostSeconds() != counter.inner.EvalCostSeconds() {
		t.Error("Area/EvalCostSeconds do not delegate")
	}
}
