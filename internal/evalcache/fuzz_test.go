package evalcache

import (
	"bytes"
	"testing"

	"unico/internal/hw"
	"unico/internal/mapping"
	"unico/internal/ppa"
	"unico/internal/telemetry"
	"unico/internal/workload"
)

// FuzzSpatialKeyCanonicalization fuzzes the canonicalize-then-key pipeline
// the cached spatial engine relies on: Canon must repair any raw schedule
// into a valid one, canonicalization must be idempotent, semantically
// equivalent out-of-range representations must share a key, and the key must
// stay sensitive to the layer shape.
func FuzzSpatialKeyCanonicalization(f *testing.F) {
	f.Add(2, 2, 2, 2, 3, 3, 0, 2, 0)
	f.Add(-5, 0, 1<<30, 7, -1, 99, -3, 17, 42)
	f.Add(0, 0, 0, 0, 0, 0, 0, 0, -1)
	f.Add(16, 8, 14, 14, 3, 3, 3, 3, 5)
	f.Fuzz(func(t *testing.T, tk, tc, ty, tx, tr, ts, sx, sy, ord int) {
		l := workload.Conv("c", 16, 8, 14, 14, 3, 3, 1, 1)
		cfg := hw.Spatial{PEX: 4, PEY: 4, L1Bytes: 1728, L2KB: 432,
			NoCBW: 128, Dataflow: hw.WeightStationary}
		raw := mapping.Spatial{TK: tk, TC: tc, TY: ty, TX: tx, TR: tr, TS: ts,
			SpatX: mapping.Dim(sx), SpatY: mapping.Dim(sy), Order: ord}

		canon := raw.Canon(l)
		if !canon.Valid(l) {
			t.Fatalf("Canon(%+v) = %+v is not valid", raw, canon)
		}
		if again := canon.Canon(l); again != canon {
			t.Fatalf("Canon not idempotent: %+v -> %+v", canon, again)
		}

		key := SpatialKey(cfg, canon, l)
		if key != SpatialKey(cfg, canon, l) {
			t.Fatal("SpatialKey is not deterministic")
		}
		if parsed, ok := parseKey(key.String()); !ok || parsed != key {
			t.Fatalf("key string %q does not round-trip", key)
		}

		// Any non-positive tile means "smallest tile"; any tile at or above
		// the loop bound means "whole loop". Each family of representations
		// must collapse to one canonical form and therefore one cache key.
		abs := func(v int) int {
			if v < 0 {
				return -v
			}
			return v
		}
		under := canon
		under.TK, under.TC, under.TY, under.TX = -abs(tk), 0, -abs(ty), -abs(tx)
		floor := canon
		floor.TK, floor.TC, floor.TY, floor.TX = 1, 1, 1, 1
		if uc, fc := under.Canon(l), floor.Canon(l); uc != fc ||
			SpatialKey(cfg, uc, l) != SpatialKey(cfg, fc, l) {
			t.Fatalf("non-positive tiles diverged from tile 1: %+v vs %+v", uc, fc)
		}
		over := canon
		over.TK, over.TC = l.K+abs(tk), l.C+abs(tc)
		ceil := canon
		ceil.TK, ceil.TC = l.K, l.C
		if oc, cc := over.Canon(l), ceil.Canon(l); oc != cc ||
			SpatialKey(cfg, oc, l) != SpatialKey(cfg, cc, l) {
			t.Fatalf("oversized tiles diverged from the loop bound: %+v vs %+v", oc, cc)
		}

		// The key must not collapse across distinct layer shapes.
		l2 := l
		l2.K++
		if key == SpatialKey(cfg, canon.Canon(l2), l2) {
			t.Fatalf("key ignores the layer shape: %v", key)
		}
	})
}

// FuzzAscendKeyCanonicalization is the Ascend-side twin: GEMM-normal tile
// clamps and the fusion-depth range behave like the spatial clamps.
func FuzzAscendKeyCanonicalization(f *testing.F) {
	f.Add(4, 4, 4, 2, true, false, true)
	f.Add(-9, 0, 1<<30, -1, false, false, false)
	f.Add(1, 1, 1, 99, true, true, true)
	f.Fuzz(func(t *testing.T, tm, tk, tn, fuse int, da, db, dc bool) {
		l := workload.Conv("c", 16, 8, 14, 14, 3, 3, 1, 1)
		cfg := hw.Ascend{L0AKB: 64, L0BKB: 64, L0CKB: 256, L1KB: 1024,
			UBKB: 256, PBKB: 64, ICacheKB: 32,
			L0ABanks: 2, L0BBanks: 2, L0CBanks: 2, CubeM: 16, CubeK: 16, CubeN: 16}
		raw := mapping.Ascend{TM: tm, TK: tk, TN: tn, FuseDepth: fuse,
			DBufA: da, DBufB: db, DBufC: dc}

		canon := raw.Canon(l)
		if !canon.Valid(l) {
			t.Fatalf("Canon(%+v) = %+v is not valid", raw, canon)
		}
		if again := canon.Canon(l); again != canon {
			t.Fatalf("Canon not idempotent: %+v -> %+v", canon, again)
		}

		key := AscendKey(cfg, canon, l)
		if parsed, ok := parseKey(key.String()); !ok || parsed != key {
			t.Fatalf("key string %q does not round-trip", key)
		}

		// Fusion depth clamps to [1, 4]: every out-of-range representation
		// shares a canonical form (and key) with the nearest legal depth.
		low, one := canon, canon
		low.FuseDepth, one.FuseDepth = -abs(fuse), 1
		if lc, oc := low.Canon(l), one.Canon(l); lc != oc ||
			AscendKey(cfg, lc, l) != AscendKey(cfg, oc, l) {
			t.Fatalf("non-positive fusion depth diverged from depth 1: %+v vs %+v", lc, oc)
		}
		high, four := canon, canon
		high.FuseDepth, four.FuseDepth = 5+abs(fuse), 4
		if hc, fc := high.Canon(l), four.Canon(l); hc != fc ||
			AscendKey(cfg, hc, l) != AscendKey(cfg, fc, l) {
			t.Fatalf("oversized fusion depth diverged from depth 4: %+v vs %+v", hc, fc)
		}
	})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// TestReadJSONLToleratesTruncatedTail pins the crash-tolerance contract of
// the persisted cache: a final line cut short by an interrupted save is
// skipped and counted, and every intact line still loads.
func TestReadJSONLToleratesTruncatedTail(t *testing.T) {
	c, m, l := testTriple()
	k1 := SpatialKey(c, m, l)
	l2 := l
	l2.N = 2
	k2 := SpatialKey(c, m, l2)

	src := New(0)
	src.put(&entry{key: k1, engine: EngineMaestro, met: ppa.Metrics{LatencyMs: 1}})
	src.put(&entry{key: k2, engine: EngineMaestro, met: ppa.Metrics{LatencyMs: 2}})
	var buf bytes.Buffer
	if err := src.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}

	data := buf.Bytes()
	truncated := data[:len(data)-15] // cut into the middle of the last line

	before := telemetry.EvalCacheSkippedLines().Value()
	warm := New(0)
	n, err := warm.ReadJSONL(bytes.NewReader(truncated))
	if err != nil {
		t.Fatalf("ReadJSONL on truncated input errored: %v", err)
	}
	if n != 1 || warm.Len() != 1 {
		t.Fatalf("loaded %d entries (cache %d), want exactly the intact line", n, warm.Len())
	}
	if got := telemetry.EvalCacheSkippedLines().Value(); got != before+1 {
		t.Errorf("skipped-line counter advanced by %d, want 1", got-before)
	}
}
