// Package evalcache is a concurrency-safe, content-addressed cache for PPA
// evaluations.
//
// UNICO's outer MOBO loop re-evaluates many near-identical
// (hardware, mapping, layer) points: ParEGO batches cluster around the
// Pareto front, successive-halving rungs revisit candidates, warm-start seed
// schedules repeat deterministically per layer, and repeated experiment runs
// (cmd/experiments) replay whole searches under the same seed. Both PPA
// engines — the analytical model (internal/maestro) and the cycle-level
// simulator (internal/camodel) — are pure functions of their inputs, so
// every one of those evaluations can be served from a cache keyed by the
// content of the triple instead of recomputed.
//
// The cache is:
//
//   - Content-addressed: keys are SHA-256 digests of a canonical binary
//     encoding of (hardware config, mapping/schedule, workload layer shape).
//     Layer name and repeat count are deliberately excluded — metrics depend
//     only on the operator shape, so identical shapes across networks share
//     one entry (see key.go).
//   - Sharded: 64 independently locked shards keep contention negligible
//     under the parallel Advance calls of the successive-halving scheduler.
//   - Bounded: each shard evicts least-recently-used entries beyond its
//     capacity share, so memory stays proportional to the configured size.
//   - Deduplicating: an evaluation already in flight for the same key is
//     joined, not recomputed (singleflight), which matters when a batch
//     contains duplicate hardware suggestions.
//   - Observable: hits, misses, in-flight joins and the entry count are
//     mirrored into internal/telemetry's default registry.
//   - Persistent (optionally): entries round-trip through a JSONL file so
//     cmd/experiments and the CLIs can warm-start across runs (persist.go).
//
// Correctness contract: because the engines are deterministic, a co-search
// with the cache enabled returns bit-identical results to one without it —
// the integration tests verify this. Errors are cached too (an infeasible
// mapping is just as deterministic as a feasible one), except errors marked
// transient with Uncachable, which pass through unstored.
package evalcache

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"

	"unico/internal/perfprof"
	"unico/internal/ppa"
	"unico/internal/telemetry"
)

// numShards is the shard count of every Cache. 64 keeps lock contention
// negligible at the repo's default worker parallelism while costing only a
// few empty maps when the cache is small.
const numShards = 64

// DefaultSize is the default entry bound of a Cache (about one million
// entries; a full -scale paper experiment run spends ~1e6 evaluations).
const DefaultSize = 1 << 20

// entry is one cached evaluation result.
type entry struct {
	key    Key
	engine string // "maestro" or "camodel"; selects the persisted sentinel
	met    ppa.Metrics
	err    error
}

// call is one in-flight computation that identical lookups join.
type call struct {
	done chan struct{}
	met  ppa.Metrics
	err  error
}

// shard is one independently locked slice of the key space.
type shard struct {
	mu       sync.Mutex
	entries  map[Key]*list.Element // values are *entry
	lru      *list.List            // front = most recently used
	inflight map[Key]*call
}

// Cache is a sharded, LRU-bounded, singleflight-deduplicating map from
// evaluation keys to PPA results. The zero value is not usable; call New.
// All methods are safe for concurrent use.
type Cache struct {
	shards      [numShards]shard
	perShardCap int

	hits   atomic.Uint64
	misses atomic.Uint64
	waits  atomic.Uint64
	size   atomic.Int64
}

// New returns an empty cache bounded to roughly size entries
// (DefaultSize when size <= 0). The bound is enforced per shard, so the
// exact capacity is size rounded up to a multiple of the shard count.
func New(size int) *Cache {
	if size <= 0 {
		size = DefaultSize
	}
	per := (size + numShards - 1) / numShards
	if per < 1 {
		per = 1
	}
	c := &Cache{perShardCap: per}
	for i := range c.shards {
		c.shards[i].entries = map[Key]*list.Element{}
		c.shards[i].lru = list.New()
		c.shards[i].inflight = map[Key]*call{}
	}
	return c
}

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	// Hits counts lookups served from a stored entry.
	Hits uint64
	// Misses counts lookups that ran the compute function.
	Misses uint64
	// InflightWaits counts lookups that joined an identical in-flight
	// computation instead of starting their own.
	InflightWaits uint64
	// Entries is the current stored-entry count.
	Entries int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns the cache's current counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		InflightWaits: c.waits.Load(),
		Entries:       int(c.size.Load()),
	}
}

// Len returns the number of stored entries.
func (c *Cache) Len() int { return int(c.size.Load()) }

// uncachableError marks a transient failure Do must not store.
type uncachableError struct{ err error }

func (u *uncachableError) Error() string { return u.err.Error() }
func (u *uncachableError) Unwrap() error { return u.err }

// Uncachable marks err as transient: Do returns it to the caller (and to any
// waiters joined on the same key) without storing it, so the next lookup
// recomputes. Use it for transport failures on the remote evaluation path —
// a network error says nothing about the triple being evaluated.
func Uncachable(err error) error {
	if err == nil {
		return nil
	}
	return &uncachableError{err: err}
}

// shardFor maps a key to its shard by the key's first byte (the key is a
// SHA-256 digest, so any byte is uniformly distributed).
func (c *Cache) shardFor(k Key) *shard { return &c.shards[int(k[0])%numShards] }

// Do returns the cached result for key, computing and storing it with
// compute on a miss. engine names the PPA engine that owns the key
// ("maestro" or "camodel") and is recorded for JSONL persistence. Identical
// concurrent calls are deduplicated: one runs compute, the rest block until
// it finishes and share its result. An error returned by compute is cached
// like a value (deterministic infeasibility) unless wrapped with Uncachable.
func (c *Cache) Do(key Key, engine string, compute func() (ppa.Metrics, error)) (ppa.Metrics, error) {
	// Phase attribution: hit/miss/wait classification depends on goroutine
	// scheduling (a concurrent duplicate waits where a later one hits), so
	// all three phases are volatile — visible in reports and metrics, never
	// in deterministic flight-record deltas.
	t := perfprof.NewTimer()
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		e := el.Value.(*entry)
		s.mu.Unlock()
		c.hits.Add(1)
		telemetry.EvalCacheHits().Inc()
		t.ObserveVolatileAs("evalcache.hit")
		return e.met, e.err
	}
	if cl, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		c.waits.Add(1)
		telemetry.EvalCacheInflightWaits().Inc()
		//unicolint:allow ctxflow singleflight followers wait for the leader, whose computation carries the caller-side cancellation; the channel closes on every leader path
		<-cl.done
		t.ObserveVolatileAs("evalcache.wait")
		return cl.met, cl.err
	}
	cl := &call{done: make(chan struct{})}
	s.inflight[key] = cl
	s.mu.Unlock()

	c.misses.Add(1)
	telemetry.EvalCacheMisses().Inc()
	defer t.ObserveVolatileAs("evalcache.miss")

	met, err := compute()
	var transient *uncachableError
	cacheIt := !errors.As(err, &transient)
	if !cacheIt {
		err = transient.err // hand the underlying error back unwrapped
	}
	cl.met, cl.err = met, err

	s.mu.Lock()
	delete(s.inflight, key)
	if cacheIt {
		c.store(s, &entry{key: key, engine: engine, met: met, err: err})
	}
	s.mu.Unlock()
	close(cl.done)
	return met, err
}

// store inserts an entry into a locked shard, evicting from the LRU tail
// past the shard's capacity. Callers must hold s.mu.
func (c *Cache) store(s *shard, e *entry) {
	if el, ok := s.entries[e.key]; ok {
		s.lru.MoveToFront(el)
		el.Value = e
		return
	}
	s.entries[e.key] = s.lru.PushFront(e)
	c.size.Add(1)
	for s.lru.Len() > c.perShardCap {
		tail := s.lru.Back()
		s.lru.Remove(tail)
		delete(s.entries, tail.Value.(*entry).key)
		c.size.Add(-1)
	}
	telemetry.EvalCacheEntries().Set(float64(c.size.Load()))
}

// Get returns the stored result for key without computing on a miss.
func (c *Cache) Get(key Key) (ppa.Metrics, error, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return ppa.Metrics{}, nil, false
	}
	s.lru.MoveToFront(el)
	e := el.Value.(*entry)
	return e.met, e.err, true
}

// put stores a fully formed entry (used by the JSONL loader).
func (c *Cache) put(e *entry) {
	s := c.shardFor(e.key)
	s.mu.Lock()
	c.store(s, e)
	s.mu.Unlock()
}

// snapshot copies every stored entry, shard by shard (used by the JSONL
// writer; the copy is not a consistent point-in-time view across shards,
// which persistence does not need).
func (c *Cache) snapshot() []*entry {
	var out []*entry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Back(); el != nil; el = el.Prev() {
			out = append(out, el.Value.(*entry))
		}
		s.mu.Unlock()
	}
	return out
}

// process is the optional process-wide cache the platform constructors
// consult, mirroring telemetry's default-tracer pattern so deeply nested
// runners (internal/experiments) can be cached from a single flag.
var process atomic.Pointer[Cache]

// SetProcess installs c as the process-wide cache picked up by platform
// constructors (nil uninstalls). Intended for binaries (cmd/experiments,
// cmd/ppaserver); library users pass caches explicitly instead.
func SetProcess(c *Cache) { process.Store(c) }

// Process returns the process-wide cache, or nil if none is installed.
func Process() *Cache { return process.Load() }
