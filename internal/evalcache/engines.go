package evalcache

import (
	"unico/internal/hw"
	"unico/internal/mapping"
	"unico/internal/ppa"
	"unico/internal/workload"
)

// Engine names recorded with each entry. Persistence uses them to
// reconstruct the right infeasibility sentinel on load (persist.go).
const (
	// EngineMaestro labels entries produced by the spatial platform's
	// analytical model (internal/maestro).
	EngineMaestro = "maestro"
	// EngineCAModel labels entries produced by the Ascend-like platform's
	// cycle-level simulator (internal/camodel).
	EngineCAModel = "camodel"
)

// SpatialEvaluator is the PPA-oracle contract of the spatial platform —
// structurally identical to mapsearch.SpatialEngine, restated here so the
// package does not import the search layer it sits underneath.
// maestro.Engine satisfies it.
type SpatialEvaluator interface {
	// Evaluate returns the PPA of one (hardware, mapping, layer) triple.
	// Implementations must be pure functions of their arguments — the
	// contract that makes caching sound.
	Evaluate(c hw.Spatial, m mapping.Spatial, l workload.Layer) (ppa.Metrics, error)
	// Area returns the mapping-independent silicon area of a configuration.
	Area(c hw.Spatial) float64
	// EvalCostSeconds is the simulated cost of one (uncached) evaluation.
	EvalCostSeconds() float64
}

// AscendEvaluator is the PPA-oracle contract of the Ascend-like platform —
// structurally identical to mapsearch.AscendEngine. camodel.Engine
// satisfies it.
type AscendEvaluator interface {
	// Evaluate simulates one layer under schedule m on core c. Must be a
	// pure function of its arguments.
	Evaluate(c hw.Ascend, m mapping.Ascend, l workload.Layer) (ppa.Metrics, error)
	// Area returns the mapping-independent core area.
	Area(c hw.Ascend) float64
	// EvalCostSeconds is the simulated cost of one (uncached) evaluation.
	EvalCostSeconds() float64
}

// Spatial wraps a SpatialEvaluator with a content-addressed cache. It
// satisfies the same interface, so it drops into every place a
// maestro.Engine goes (mapsearch.NewSpatialSearcher, platform.Spatial.Engine,
// dist.Server).
type Spatial struct {
	// Inner is the engine consulted on a miss (typically maestro.Engine).
	Inner SpatialEvaluator
	// Cache stores and deduplicates results. Must be non-nil.
	Cache *Cache
}

// Evaluate serves the triple from the cache, computing with the inner
// engine on a miss. The mapping is canonicalized first so schedules the
// engine would clamp identically share one entry.
func (s Spatial) Evaluate(c hw.Spatial, m mapping.Spatial, l workload.Layer) (ppa.Metrics, error) {
	m = m.Canon(l)
	return s.Cache.Do(SpatialKey(c, m, l), EngineMaestro, func() (ppa.Metrics, error) {
		return s.Inner.Evaluate(c, m, l)
	})
}

// Area delegates to the inner engine (area is cheap and mapping-free).
func (s Spatial) Area(c hw.Spatial) float64 { return s.Inner.Area(c) }

// EvalCostSeconds reports the inner engine's simulated per-evaluation cost.
// The simulated-clock account deliberately charges cached evaluations too:
// the clock models the paper's evaluation budget, and budget accounting must
// not depend on cache state or run order.
func (s Spatial) EvalCostSeconds() float64 { return s.Inner.EvalCostSeconds() }

// Ascend wraps an AscendEvaluator with a content-addressed cache, mirroring
// Spatial for the cycle-level simulator (where a hit saves minutes of
// simulated time rather than milliseconds).
type Ascend struct {
	// Inner is the engine consulted on a miss (typically camodel.Engine).
	Inner AscendEvaluator
	// Cache stores and deduplicates results. Must be non-nil.
	Cache *Cache
}

// Evaluate serves the triple from the cache, computing with the inner
// engine on a miss.
func (a Ascend) Evaluate(c hw.Ascend, m mapping.Ascend, l workload.Layer) (ppa.Metrics, error) {
	m = m.Canon(l)
	return a.Cache.Do(AscendKey(c, m, l), EngineCAModel, func() (ppa.Metrics, error) {
		return a.Inner.Evaluate(c, m, l)
	})
}

// Area delegates to the inner engine.
func (a Ascend) Area(c hw.Ascend) float64 { return a.Inner.Area(c) }

// EvalCostSeconds reports the inner engine's simulated per-evaluation cost
// (see Spatial.EvalCostSeconds for why hits still charge it).
func (a Ascend) EvalCostSeconds() float64 { return a.Inner.EvalCostSeconds() }
