package evalcache

import (
	"math/rand"
	"testing"

	"unico/internal/camodel"
	"unico/internal/hw"
	"unico/internal/maestro"
	"unico/internal/mapping"
	"unico/internal/workload"
)

// rungWorkload models what successive halving actually does to the PPA
// engine: a batch of hardware candidates whose surviving mapping searches are
// re-advanced rung after rung, re-evaluating the same warm-start and
// incumbent schedules every time.
type rungTriple struct {
	cfg hw.Spatial
	m   mapping.Spatial
	l   workload.Layer
}

func rungWorkload() []rungTriple {
	space := hw.NewSpatialSpace(hw.Edge)
	rng := rand.New(rand.NewSource(7))
	layers := workload.MobileNet().Layers
	if len(layers) > 8 {
		layers = layers[:8]
	}
	var triples []rungTriple
	for cand := 0; cand < 4; cand++ {
		cfg := space.Decode(space.Sample(rng))
		for _, l := range layers {
			for s := 0; s < 8; s++ {
				m := mapping.RandomSpatial(rng, l).Canon(l)
				triples = append(triples, rungTriple{cfg: cfg, m: m, l: l})
			}
		}
	}
	return triples
}

// BenchmarkRepeatedRungWorkload measures the hit-rate win of the cache on a
// repeated-rung evaluation pattern: each "rung" revisits the identical
// (hardware, mapping, layer) triples, so with the cache only the first rung
// pays for engine computation.
func BenchmarkRepeatedRungWorkload(b *testing.B) {
	triples := rungWorkload()
	const rungs = 4

	b.Run("uncached", func(b *testing.B) {
		eng := maestro.Engine{}
		for i := 0; i < b.N; i++ {
			for r := 0; r < rungs; r++ {
				for _, tr := range triples {
					_, _ = eng.Evaluate(tr.cfg, tr.m, tr.l)
				}
			}
		}
		b.ReportMetric(0, "hit-rate")
	})

	b.Run("cached", func(b *testing.B) {
		// One cache across all b.N iterations: after the first rung every
		// evaluation is a hit, which is exactly the warm-start regime.
		eng := Spatial{Inner: maestro.Engine{}, Cache: New(0)}
		for i := 0; i < b.N; i++ {
			for r := 0; r < rungs; r++ {
				for _, tr := range triples {
					_, _ = eng.Evaluate(tr.cfg, tr.m, tr.l)
				}
			}
		}
		b.ReportMetric(eng.Cache.Stats().HitRate(), "hit-rate")
	})
}

// ascendRungWorkload mirrors rungWorkload on the Ascend-like platform, where
// each evaluation runs the cycle-level simulator — the regime the cache is
// really for (a hit saves simulation, not just arithmetic).
type ascendTriple struct {
	cfg hw.Ascend
	m   mapping.Ascend
	l   workload.Layer
}

func ascendRungWorkload() []ascendTriple {
	space := hw.NewAscendSpace()
	rng := rand.New(rand.NewSource(7))
	layers := workload.DLEU().Layers
	if len(layers) > 4 {
		layers = layers[:4]
	}
	var triples []ascendTriple
	for cand := 0; cand < 2; cand++ {
		cfg := space.Decode(space.Sample(rng))
		for _, l := range layers {
			for s := 0; s < 4; s++ {
				m := mapping.RandomAscend(rng, l).Canon(l)
				triples = append(triples, ascendTriple{cfg: cfg, m: m, l: l})
			}
		}
	}
	return triples
}

// BenchmarkRepeatedRungWorkloadAscend is the cycle-level variant of
// BenchmarkRepeatedRungWorkload: the simulator costs orders of magnitude
// more than a key hash, so the cached ns/op tracks the miss fraction.
func BenchmarkRepeatedRungWorkloadAscend(b *testing.B) {
	triples := ascendRungWorkload()
	const rungs = 4

	b.Run("uncached", func(b *testing.B) {
		eng := camodel.Engine{}
		for i := 0; i < b.N; i++ {
			for r := 0; r < rungs; r++ {
				for _, tr := range triples {
					_, _ = eng.Evaluate(tr.cfg, tr.m, tr.l)
				}
			}
		}
		b.ReportMetric(0, "hit-rate")
	})

	b.Run("cached", func(b *testing.B) {
		eng := Ascend{Inner: camodel.Engine{}, Cache: New(0)}
		for i := 0; i < b.N; i++ {
			for r := 0; r < rungs; r++ {
				for _, tr := range triples {
					_, _ = eng.Evaluate(tr.cfg, tr.m, tr.l)
				}
			}
		}
		b.ReportMetric(eng.Cache.Stats().HitRate(), "hit-rate")
	})
}
