package evalcache_test

import (
	"testing"

	"unico/internal/benchmarks"
)

// The repeated-rung bench bodies live in internal/benchmarks so that
// cmd/unicobench runs the identical workloads; these wrappers keep them
// runnable as `go test -bench` from this package (an external test package,
// because benchmarks itself imports evalcache).

// BenchmarkRepeatedRungWorkload measures the hit-rate win of the cache on a
// repeated-rung evaluation pattern: each "rung" revisits the identical
// (hardware, mapping, layer) triples, so with the cache only the first rung
// pays for engine computation.
func BenchmarkRepeatedRungWorkload(b *testing.B) {
	benchmarks.RepeatedRungWorkload(b)
}

// BenchmarkRepeatedRungWorkloadAscend is the cycle-level variant: the
// simulator costs orders of magnitude more than a key hash, so the cached
// ns/op tracks the miss fraction.
func BenchmarkRepeatedRungWorkloadAscend(b *testing.B) {
	benchmarks.RepeatedRungWorkloadAscend(b)
}
