// Package simclock provides a deterministic simulated wall-clock used to
// report search cost.
//
// The paper's cost columns ("Cost(h)" in Tables 1-2, the x-axes of Figs. 7,
// 8 and 10) measure wall-clock time on the authors' machines, which is
// dominated by PPA-evaluation time: milliseconds for the analytical MAESTRO
// model, minutes for the Ascend CAModel. Reproducing those hours in real time
// is neither possible nor useful, so every PPA engine in this repository
// declares a simulated per-evaluation cost and the search drivers charge that
// cost to a Clock. Parallel batches charge the elapsed time of the slowest
// worker, so the clock reproduces the cost asymmetry between UNICO's batched
// parallel search and sequential baselines.
package simclock

import (
	"fmt"
	"sync"
)

// Clock accumulates simulated elapsed seconds. The zero value is a clock at
// time zero, ready to use. Clock is safe for concurrent use.
type Clock struct {
	mu      sync.Mutex
	seconds float64
}

// Advance adds sec simulated seconds of sequential work.
func (c *Clock) Advance(sec float64) {
	if sec < 0 {
		panic(fmt.Sprintf("simclock: negative advance %v", sec))
	}
	c.mu.Lock()
	c.seconds += sec
	c.mu.Unlock()
}

// AdvanceParallel charges jobs units of work, each costing secPerJob seconds,
// executed on workers parallel workers. The clock advances by the makespan of
// an even distribution: ceil(jobs/workers) * secPerJob.
func (c *Clock) AdvanceParallel(jobs int, secPerJob float64, workers int) {
	if jobs <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	waves := (jobs + workers - 1) / workers
	c.Advance(float64(waves) * secPerJob)
}

// Seconds returns the elapsed simulated seconds.
func (c *Clock) Seconds() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seconds
}

// Hours returns the elapsed simulated hours.
func (c *Clock) Hours() float64 { return c.Seconds() / 3600 }

// Reset rewinds the clock to zero.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.seconds = 0
	c.mu.Unlock()
}
