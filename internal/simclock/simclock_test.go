package simclock

import (
	"sync"
	"testing"
)

func TestAdvance(t *testing.T) {
	var c Clock
	c.Advance(10)
	c.Advance(5)
	if got := c.Seconds(); got != 15 {
		t.Errorf("Seconds() = %v, want 15", got)
	}
	if got := c.Hours(); got != 15.0/3600 {
		t.Errorf("Hours() = %v", got)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestAdvanceParallelMakespan(t *testing.T) {
	cases := []struct {
		jobs, workers int
		secPerJob     float64
		want          float64
	}{
		{jobs: 8, workers: 4, secPerJob: 10, want: 20}, // two waves
		{jobs: 9, workers: 4, secPerJob: 10, want: 30}, // ceil(9/4)=3 waves
		{jobs: 3, workers: 8, secPerJob: 10, want: 10}, // one wave
		{jobs: 5, workers: 1, secPerJob: 2, want: 10},  // sequential
		{jobs: 0, workers: 4, secPerJob: 10, want: 0},  // nothing to do
		{jobs: 4, workers: 0, secPerJob: 1, want: 4},   // workers clamp to 1
		{jobs: 4, workers: -3, secPerJob: 1, want: 4},  // negative clamp too
	}
	for _, tc := range cases {
		var c Clock
		c.AdvanceParallel(tc.jobs, tc.secPerJob, tc.workers)
		if got := c.Seconds(); got != tc.want {
			t.Errorf("AdvanceParallel(%d, %v, %d) = %v, want %v",
				tc.jobs, tc.secPerJob, tc.workers, got, tc.want)
		}
	}
}

func TestReset(t *testing.T) {
	var c Clock
	c.Advance(42)
	c.Reset()
	if c.Seconds() != 0 {
		t.Errorf("Seconds() after Reset = %v", c.Seconds())
	}
}

func TestConcurrentAdvance(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Advance(1)
		}()
	}
	wg.Wait()
	if got := c.Seconds(); got != 100 {
		t.Errorf("concurrent Seconds() = %v, want 100", got)
	}
}
