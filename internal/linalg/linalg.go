// Package linalg provides the small dense linear-algebra kernel the Gaussian
// process surrogate needs: symmetric positive-definite factorizations and
// solves via Cholesky decomposition. Implemented from scratch on the
// standard library only.
//
// # Blocked factorization
//
// Cholesky uses a right-looking blocked (panel) algorithm: columns are
// processed in panels of cholBlock columns. Each panel is factored with the
// classic row-oriented recurrence, then the remaining lower triangle is
// updated by subtracting the panel's contribution with contiguous row-slice
// inner loops. All inner loops walk contiguous row segments, so the working
// set per step is a few panel rows (cholBlock·8 bytes each) and the trailing
// update streams through memory instead of striding columns.
//
// The blocking is arranged to be *bit-identical* to the textbook naive
// factorization: every element accumulates its subtractions s -= L[i][k]·L[j][k]
// one product at a time in ascending k (panels are visited in ascending
// order and each panel's ks are ascending), the diagonal adds jitter before
// any subtraction, and the off-diagonal divides by the diagonal entry. This
// invariant is what lets CholeskyExtend (below) and the GP's incremental
// updates stay bit-identical to a from-scratch refit, which the repo's
// kill/resume and serial-vs-parallel determinism contracts rely on. The
// equivalence is asserted exactly (==, not a tolerance) in the package tests.
//
// # Incremental updates
//
// CholeskyExtend appends one row/column to a factor in O(n²) via the
// bordered scheme: the new off-diagonal row w solves L·w = k (forward
// substitution, the same recurrence the full factorization would run for
// that row), and the new diagonal is sqrt(d − Σ w²). CholeskyUpdate applies
// the classic O(n²) rank-1 update (A → A + v·vᵀ) by sweeping Givens-like
// column rotations through the factor.
//
// # Allocation-free solves
//
// SolveLowerInto, SolveLowerTInto and CholeskySolveInto are the
// solve-into-buffer variants used on hot paths (gp.Predict); the rhs and
// solution buffers may alias.
package linalg

import (
	"errors"
	"fmt"
	"math"

	"unico/internal/perfprof"
)

// ErrNotPD reports a matrix that is not (numerically) positive definite.
var ErrNotPD = errors.New("linalg: matrix not positive definite")

// cholBlock is the panel width of the blocked factorization. 64 columns
// keep a panel row at 512 bytes, so the handful of rows live in an inner
// loop touches stay L1-resident while the trailing update streams.
const cholBlock = 64

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New allocates a zero r×c matrix.
func New(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Cholesky computes the lower-triangular L with A = L·Lᵀ for a symmetric
// matrix A. A small diagonal jitter is added progressively (up to jitterMax)
// if the factorization fails, the standard GP numerical safeguard. The input
// is not modified.
func Cholesky(a *Matrix) (*Matrix, error) {
	l, _, err := CholeskyWithJitter(a)
	return l, err
}

// CholeskyWithJitter is Cholesky, additionally reporting the diagonal
// jitter the retry ladder settled on (0 when none was needed). Callers that
// must reproduce the factor exactly later — the GP's incremental extends
// and checkpoint-restore paths — pin this value via CholeskyFixedInto.
func CholeskyWithJitter(a *Matrix) (*Matrix, float64, error) {
	if a.Rows != a.Cols {
		return nil, 0, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	l := New(a.Rows, a.Cols)
	jitter, err := CholeskyInto(l, a)
	if err != nil {
		return nil, 0, err
	}
	return l, jitter, nil
}

// CholeskyInto factors a into dst (which must be the same shape), running
// the jitter retry ladder, and reports the jitter used. dst's prior
// contents are ignored; on error its contents are unspecified.
func CholeskyInto(dst, a *Matrix) (float64, error) {
	defer perfprof.Begin("linalg.cholesky").End()
	if a.Rows != a.Cols {
		return 0, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		return 0, fmt.Errorf("linalg: CholeskyInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, a.Cols)
	}
	const jitterMax = 1e-3
	jitter := 0.0
	for {
		copyLowerJittered(dst, a, jitter)
		if factorLower(dst) {
			return jitter, nil
		}
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 10
		}
		if jitter > jitterMax {
			return 0, ErrNotPD
		}
	}
}

// CholeskyFixedInto factors a into dst with exactly the given diagonal
// jitter — no retry ladder. It returns ErrNotPD if the factorization fails
// at that jitter. Restore paths use it to rebuild a factor bit-identical to
// the one a live run produced.
func CholeskyFixedInto(dst, a *Matrix, jitter float64) error {
	defer perfprof.Begin("linalg.cholesky").End()
	if a.Rows != a.Cols {
		return fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		return fmt.Errorf("linalg: CholeskyFixedInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, a.Cols)
	}
	copyLowerJittered(dst, a, jitter)
	if !factorLower(dst) {
		return ErrNotPD
	}
	return nil
}

// copyLowerJittered loads a's lower triangle plus diagonal jitter into dst
// and zeroes dst's strict upper triangle.
func copyLowerJittered(dst, a *Matrix, jitter float64) {
	n := a.Rows
	for i := 0; i < n; i++ {
		src := a.Data[i*n : i*n+n]
		row := dst.Data[i*n : i*n+n]
		copy(row[:i+1], src[:i+1])
		row[i] = src[i] + jitter
		for j := i + 1; j < n; j++ {
			row[j] = 0
		}
	}
}

// factorLower factors the lower triangle of l in place with the blocked
// right-looking algorithm. It reports false when a pivot is non-positive or
// NaN. The accumulation order per element is exactly the naive
// factorization's (ascending k, one product at a time), so the result is
// bit-identical to the textbook algorithm.
func factorLower(l *Matrix) bool {
	n := l.Rows
	for j0 := 0; j0 < n; j0 += cholBlock {
		j1 := j0 + cholBlock
		if j1 > n {
			j1 = n
		}
		// Factor the panel: columns j0..j1-1 over rows j..n-1. At this
		// point every element already had columns k < j0 subtracted by the
		// trailing updates of earlier panels.
		for j := j0; j < j1; j++ {
			lj := l.Data[j*n : j*n+j1]
			s := lj[j]
			for k := j0; k < j; k++ {
				s -= lj[k] * lj[k]
			}
			if s <= 0 || math.IsNaN(s) {
				return false
			}
			d := math.Sqrt(s)
			lj[j] = d
			for i := j + 1; i < n; i++ {
				li := l.Data[i*n : i*n+j1]
				s := li[j]
				for k := j0; k < j; k++ {
					s -= li[k] * lj[k]
				}
				li[j] = s / d
			}
		}
		// Trailing update: subtract this panel's contribution from the
		// remaining lower triangle, rows streaming contiguously.
		for i := j1; i < n; i++ {
			li := l.Data[i*n : i*n+n]
			for j := j1; j <= i; j++ {
				lj := l.Data[j*n : j*n+j1]
				s := li[j]
				for k := j0; k < j1; k++ {
					s -= li[k] * lj[k]
				}
				li[j] = s
			}
		}
	}
	return true
}

// CholeskyExtend returns the (n+1)×(n+1) factor of the bordered matrix
//
//	[ A   k ]
//	[ kᵀ  d ]
//
// given the n×n factor l of A, the new covariance column k, the new raw
// diagonal d, and the jitter the existing factor was produced with (added
// to d exactly as a full factorization would). The new row solves L·w = k
// and the new pivot is d + jitter − Σ w², which is operation-for-operation
// what a from-scratch factorization computes for its last row — so the
// extended factor is bit-identical to refactorizing the full bordered
// matrix at the same jitter. Returns ErrNotPD when the new pivot is not
// positive; l is never modified.
func CholeskyExtend(l *Matrix, k []float64, d, jitter float64) (*Matrix, error) {
	n := l.Rows
	if len(k) != n {
		return nil, fmt.Errorf("linalg: CholeskyExtend got %d column entries, want %d", len(k), n)
	}
	out := New(n+1, n+1)
	for i := 0; i < n; i++ {
		copy(out.Data[i*(n+1):i*(n+1)+n], l.Data[i*n:i*n+n])
	}
	w := out.Data[n*(n+1) : n*(n+1)+n]
	solveLowerInto(l, k, w)
	s := d + jitter
	for i := 0; i < n; i++ {
		s -= w[i] * w[i]
	}
	if s <= 0 || math.IsNaN(s) {
		return nil, ErrNotPD
	}
	out.Data[n*(n+1)+n] = math.Sqrt(s)
	return out, nil
}

// CholeskyUpdate replaces l in place with the factor of A + v·vᵀ, given
// the factor l of A, in O(n²): the standard sweep of Givens-like rotations
// that chases v through the columns. v is not modified. The update of an
// SPD matrix by +v·vᵀ is always SPD, so failure indicates a non-finite
// input and is reported as ErrNotPD.
func CholeskyUpdate(l *Matrix, v []float64) error {
	n := l.Rows
	if len(v) != n {
		return fmt.Errorf("linalg: CholeskyUpdate got %d entries, want %d", len(v), n)
	}
	w := make([]float64, n)
	copy(w, v)
	for j := 0; j < n; j++ {
		lj := l.Data[j*n : j*n+n]
		d := lj[j]
		r := math.Sqrt(d*d + w[j]*w[j])
		if r <= 0 || math.IsNaN(r) {
			return ErrNotPD
		}
		c := r / d
		s := w[j] / d
		lj[j] = r
		for i := j + 1; i < n; i++ {
			li := l.Data[i*n : i*n+n]
			li[j] = (li[j] + s*w[i]) / c
			w[i] = c*w[i] - s*li[j]
		}
	}
	return nil
}

// SolveLower solves L·x = b for lower-triangular L by forward substitution.
func SolveLower(l *Matrix, b []float64) []float64 {
	x := make([]float64, l.Rows)
	SolveLowerInto(l, b, x)
	return x
}

// SolveLowerInto solves L·x = b into x, which must have length n and may
// alias b. The recurrence is the same ascending-k accumulation the
// factorization uses, which CholeskyExtend relies on for bit-identity.
func SolveLowerInto(l *Matrix, b, x []float64) {
	n := l.Rows
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("linalg: SolveLowerInto got %d rhs and %d out entries, want %d", len(b), len(x), n))
	}
	solveLowerInto(l, b, x)
}

func solveLowerInto(l *Matrix, b, x []float64) {
	n := l.Rows
	for i := 0; i < n; i++ {
		row := l.Data[i*l.Cols : i*l.Cols+i+1]
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= row[k] * x[k]
		}
		x[i] = sum / row[i]
	}
}

// SolveLowerT solves Lᵀ·x = b for lower-triangular L by back substitution.
func SolveLowerT(l *Matrix, b []float64) []float64 {
	x := make([]float64, l.Rows)
	SolveLowerTInto(l, b, x)
	return x
}

// SolveLowerTInto solves Lᵀ·x = b into x, which must have length n and may
// alias b. The loop is the row-oriented ("saxpy") form of back substitution
// so the inner loop walks a contiguous row of L instead of striding a
// column.
func SolveLowerTInto(l *Matrix, b, x []float64) {
	n := l.Rows
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("linalg: SolveLowerTInto got %d rhs and %d out entries, want %d", len(b), len(x), n))
	}
	if &x[0] != &b[0] {
		copy(x, b)
	}
	for j := n - 1; j >= 0; j-- {
		row := l.Data[j*l.Cols : j*l.Cols+j+1]
		xj := x[j] / row[j]
		x[j] = xj
		for i := 0; i < j; i++ {
			x[i] -= row[i] * xj
		}
	}
}

// CholeskySolve solves A·x = b given the Cholesky factor L of A.
func CholeskySolve(l *Matrix, b []float64) []float64 {
	x := make([]float64, l.Rows)
	CholeskySolveInto(l, b, x)
	return x
}

// CholeskySolveInto solves A·x = b into x given the Cholesky factor L of A;
// x may alias b. No intermediate buffer is needed: the forward solve lands
// in x and the transposed solve runs in place.
func CholeskySolveInto(l *Matrix, b, x []float64) {
	SolveLowerInto(l, b, x)
	SolveLowerTInto(l, x, x)
}

// LogDetFromChol returns log|A| = 2·Σ log L_ii given the Cholesky factor L.
func LogDetFromChol(l *Matrix) float64 {
	sum := 0.0
	for i := 0; i < l.Rows; i++ {
		sum += math.Log(l.At(i, i))
	}
	return 2 * sum
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot of lengths %d and %d", len(a), len(b)))
	}
	sum := 0.0
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// MulVec returns A·x.
func MulVec(a *Matrix, x []float64) []float64 {
	if len(x) != a.Cols {
		panic(fmt.Sprintf("linalg: MulVec got %d entries, want %d", len(x), a.Cols))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		out[i] = Dot(row, x)
	}
	return out
}
