// Package linalg provides the small dense linear-algebra kernel the Gaussian
// process surrogate needs: symmetric positive-definite solves via Cholesky
// factorization. Implemented from scratch on the standard library only.
package linalg

import (
	"errors"
	"fmt"
	"math"

	"unico/internal/perfprof"
)

// ErrNotPD reports a matrix that is not (numerically) positive definite.
var ErrNotPD = errors.New("linalg: matrix not positive definite")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New allocates a zero r×c matrix.
func New(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Cholesky computes the lower-triangular L with A = L·Lᵀ for a symmetric
// matrix A. A small diagonal jitter is added progressively (up to jitterMax)
// if the factorization fails, the standard GP numerical safeguard. The input
// is not modified.
func Cholesky(a *Matrix) (*Matrix, error) {
	defer perfprof.Begin("linalg.cholesky").End()
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	const jitterMax = 1e-3
	jitter := 0.0
	for {
		l, ok := tryCholesky(a, jitter)
		if ok {
			return l, nil
		}
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 10
		}
		if jitter > jitterMax {
			return nil, ErrNotPD
		}
	}
}

func tryCholesky(a *Matrix, jitter float64) (*Matrix, bool) {
	n := a.Rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			if i == j {
				sum += jitter
			}
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, false
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, true
}

// SolveLower solves L·x = b for lower-triangular L by forward substitution.
func SolveLower(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: SolveLower got %d rhs entries, want %d", len(b), n))
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// SolveLowerT solves Lᵀ·x = b for lower-triangular L by back substitution.
func SolveLowerT(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: SolveLowerT got %d rhs entries, want %d", len(b), n))
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// CholeskySolve solves A·x = b given the Cholesky factor L of A.
func CholeskySolve(l *Matrix, b []float64) []float64 {
	return SolveLowerT(l, SolveLower(l, b))
}

// LogDetFromChol returns log|A| = 2·Σ log L_ii given the Cholesky factor L.
func LogDetFromChol(l *Matrix) float64 {
	sum := 0.0
	for i := 0; i < l.Rows; i++ {
		sum += math.Log(l.At(i, i))
	}
	return 2 * sum
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot of lengths %d and %d", len(a), len(b)))
	}
	sum := 0.0
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// MulVec returns A·x.
func MulVec(a *Matrix, x []float64) []float64 {
	if len(x) != a.Cols {
		panic(fmt.Sprintf("linalg: MulVec got %d entries, want %d", len(x), a.Cols))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		out[i] = Dot(row, x)
	}
	return out
}
