package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyKnownMatrix(t *testing.T) {
	// A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]].
	a := New(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.At(0, 0)-2) > 1e-12 || math.Abs(l.At(1, 0)-1) > 1e-12 ||
		math.Abs(l.At(1, 1)-math.Sqrt(2)) > 1e-12 {
		t.Errorf("L = %+v", l)
	}
	if got, want := LogDetFromChol(l), math.Log(4*3-2*2); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogDet = %v, want %v", got, want)
	}
}

func TestCholeskyRejectsNonPD(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, -1)
	a.Set(1, 1, -1)
	if _, err := Cholesky(a); !errors.Is(err, ErrNotPD) {
		t.Errorf("err = %v, want ErrNotPD", err)
	}
	if _, err := Cholesky(New(2, 3)); err == nil {
		t.Error("accepted non-square matrix")
	}
}

// randomSPD builds AᵀA + I, which is symmetric positive definite.
func randomSPD(n int, rng *rand.Rand) *Matrix {
	b := New(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += b.At(k, i) * b.At(k, j)
			}
			if i == j {
				sum += 1
			}
			a.Set(i, j, sum)
		}
	}
	return a
}

func TestCholeskyReconstructionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%6 + 1
		rng := rand.New(rand.NewSource(seed))
		a := randomSPD(n, rng)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		// Check A ≈ L Lᵀ.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sum := 0.0
				for k := 0; k < n; k++ {
					sum += l.At(i, k) * l.At(j, k)
				}
				if math.Abs(sum-a.At(i, j)) > 1e-8*(1+math.Abs(a.At(i, j))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCholeskySolveProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%6 + 1
		rng := rand.New(rand.NewSource(seed))
		a := randomSPD(n, rng)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		x := CholeskySolve(l, b)
		// Residual ||Ax - b|| must be tiny.
		ax := MulVec(a, x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-6*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTriangularSolves(t *testing.T) {
	l := New(2, 2)
	l.Set(0, 0, 2)
	l.Set(1, 0, 1)
	l.Set(1, 1, 3)
	// L x = [4, 7]: x0 = 2, x1 = (7-2)/3.
	x := SolveLower(l, []float64{4, 7})
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-5.0/3) > 1e-12 {
		t.Errorf("SolveLower = %v", x)
	}
	// Lᵀ y = [4, 6]: y1 = 2, y0 = (4-1*2)/2 = 1.
	y := SolveLowerT(l, []float64{4, 6})
	if math.Abs(y[1]-2) > 1e-12 || math.Abs(y[0]-1) > 1e-12 {
		t.Errorf("SolveLowerT = %v", y)
	}
}

func TestDotAndMulVec(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	a := New(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	got := MulVec(a, []float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestPanicsOnShapeMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"Dot":    func() { Dot([]float64{1}, []float64{1, 2}) },
		"MulVec": func() { MulVec(New(2, 2), []float64{1}) },
		"SolveLower": func() {
			SolveLower(New(2, 2), []float64{1})
		},
		"New": func() { New(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestClone(t *testing.T) {
	a := New(1, 2)
	a.Set(0, 0, 5)
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 5 {
		t.Error("Clone aliases the original")
	}
}

// naiveTryCholesky is the textbook row-by-row factorization the blocked
// implementation must match bit-for-bit. It mirrors the pre-blocking
// production code exactly.
func naiveTryCholesky(a *Matrix, jitter float64) (*Matrix, bool) {
	n := a.Rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			if i == j {
				sum += jitter
			}
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, false
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, true
}

// naiveCholesky runs the same jitter ladder as Cholesky over the naive
// factorization.
func naiveCholesky(a *Matrix) (*Matrix, float64, error) {
	jitter := 0.0
	for {
		if l, ok := naiveTryCholesky(a, jitter); ok {
			return l, jitter, nil
		}
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 10
		}
		if jitter > 1e-3 {
			return nil, 0, ErrNotPD
		}
	}
}

// TestBlockedMatchesNaiveBitwise asserts the blocked factorization equals
// the naive one exactly — not within a tolerance — on random SPD matrices
// spanning sizes below, at, and above the panel width.
func TestBlockedMatchesNaiveBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 17, cholBlock - 1, cholBlock, cholBlock + 1, 100, 2*cholBlock + 9} {
		a := randomSPD(n, rng)
		got, gotJitter, err := CholeskyWithJitter(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want, wantJitter, err := naiveCholesky(a)
		if err != nil {
			t.Fatalf("n=%d naive: %v", n, err)
		}
		if gotJitter != wantJitter {
			t.Fatalf("n=%d: jitter %g, naive %g", n, gotJitter, wantJitter)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("n=%d: element %d = %v, naive %v", n, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestBlockedMatchesNaiveJitterPath drives the retry ladder with a
// singular PSD matrix (rank-deficient Gram matrix) and checks the blocked
// code lands on the same jitter and the same bits as the naive ladder.
func TestBlockedMatchesNaiveJitterPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{4, 40, cholBlock + 5} {
		// b is n×(n/2), so a = b·bᵀ has rank ≤ n/2 < n: PSD but singular.
		r := n / 2
		b := New(n, r)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sum := 0.0
				for k := 0; k < r; k++ {
					sum += b.At(i, k) * b.At(j, k)
				}
				a.Set(i, j, sum)
			}
		}
		got, gotJitter, err := CholeskyWithJitter(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if gotJitter == 0 {
			t.Fatalf("n=%d: expected the jitter ladder to engage", n)
		}
		want, wantJitter, err := naiveCholesky(a)
		if err != nil {
			t.Fatalf("n=%d naive: %v", n, err)
		}
		if gotJitter != wantJitter {
			t.Fatalf("n=%d: jitter %g, naive %g", n, gotJitter, wantJitter)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("n=%d: element %d = %v, naive %v", n, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestCholeskyExtendBitIdentical grows a factor one row at a time and
// checks each step equals a from-scratch factorization of the bordered
// matrix, bit for bit.
func TestCholeskyExtendBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	full := randomSPD(90, rng)
	sub := func(n int) *Matrix {
		a := New(n, n)
		for i := 0; i < n; i++ {
			copy(a.Data[i*n:i*n+n], full.Data[i*full.Cols:i*full.Cols+n])
		}
		return a
	}
	l, jitter, err := CholeskyWithJitter(sub(10))
	if err != nil {
		t.Fatal(err)
	}
	for n := 10; n < 90; n++ {
		k := make([]float64, n)
		for i := 0; i < n; i++ {
			k[i] = full.At(n, i)
		}
		ext, err := CholeskyExtend(l, k, full.At(n, n), jitter)
		if err != nil {
			t.Fatalf("extend to %d: %v", n+1, err)
		}
		want := New(n+1, n+1)
		if err := CholeskyFixedInto(want, sub(n+1), jitter); err != nil {
			t.Fatalf("refactor at %d: %v", n+1, err)
		}
		for i := range want.Data {
			if ext.Data[i] != want.Data[i] {
				t.Fatalf("n=%d: element %d = %v, refactor %v", n+1, i, ext.Data[i], want.Data[i])
			}
		}
		l = ext
	}
}

// TestCholeskyUpdateProperty checks the rank-1 update against a refactored
// A + v·vᵀ within 1e-10 on random SPD matrices.
func TestCholeskyUpdateProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 1
		rng := rand.New(rand.NewSource(seed))
		a := randomSPD(n, rng)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		if err := CholeskyUpdate(l, v); err != nil {
			return false
		}
		// Compare against factoring A + v·vᵀ directly.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, a.At(i, j)+v[i]*v[j])
			}
		}
		want, err := Cholesky(a)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if math.Abs(l.At(i, j)-want.At(i, j)) > 1e-10*(1+math.Abs(want.At(i, j))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSolveIntoVariants checks the into-buffer solves match the allocating
// ones exactly, including when the output aliases the right-hand side.
func TestSolveIntoVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 33
	a := randomSPD(n, rng)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := CholeskySolve(l, b)

	x := make([]float64, n)
	CholeskySolveInto(l, b, x)
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("CholeskySolveInto[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	aliased := append([]float64(nil), b...)
	CholeskySolveInto(l, aliased, aliased)
	for i := range want {
		if aliased[i] != want[i] {
			t.Fatalf("aliased CholeskySolveInto[%d] = %v, want %v", i, aliased[i], want[i])
		}
	}

	fwdWant := SolveLower(l, b)
	fwd := append([]float64(nil), b...)
	SolveLowerInto(l, fwd, fwd)
	for i := range fwdWant {
		if fwd[i] != fwdWant[i] {
			t.Fatalf("aliased SolveLowerInto[%d] = %v, want %v", i, fwd[i], fwdWant[i])
		}
	}
	bwdWant := SolveLowerT(l, b)
	bwd := append([]float64(nil), b...)
	SolveLowerTInto(l, bwd, bwd)
	for i := range bwdWant {
		if bwd[i] != bwdWant[i] {
			t.Fatalf("aliased SolveLowerTInto[%d] = %v, want %v", i, bwd[i], bwdWant[i])
		}
	}
}
