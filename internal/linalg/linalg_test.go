package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyKnownMatrix(t *testing.T) {
	// A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]].
	a := New(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.At(0, 0)-2) > 1e-12 || math.Abs(l.At(1, 0)-1) > 1e-12 ||
		math.Abs(l.At(1, 1)-math.Sqrt(2)) > 1e-12 {
		t.Errorf("L = %+v", l)
	}
	if got, want := LogDetFromChol(l), math.Log(4*3-2*2); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogDet = %v, want %v", got, want)
	}
}

func TestCholeskyRejectsNonPD(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, -1)
	a.Set(1, 1, -1)
	if _, err := Cholesky(a); !errors.Is(err, ErrNotPD) {
		t.Errorf("err = %v, want ErrNotPD", err)
	}
	if _, err := Cholesky(New(2, 3)); err == nil {
		t.Error("accepted non-square matrix")
	}
}

// randomSPD builds AᵀA + I, which is symmetric positive definite.
func randomSPD(n int, rng *rand.Rand) *Matrix {
	b := New(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += b.At(k, i) * b.At(k, j)
			}
			if i == j {
				sum += 1
			}
			a.Set(i, j, sum)
		}
	}
	return a
}

func TestCholeskyReconstructionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%6 + 1
		rng := rand.New(rand.NewSource(seed))
		a := randomSPD(n, rng)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		// Check A ≈ L Lᵀ.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sum := 0.0
				for k := 0; k < n; k++ {
					sum += l.At(i, k) * l.At(j, k)
				}
				if math.Abs(sum-a.At(i, j)) > 1e-8*(1+math.Abs(a.At(i, j))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCholeskySolveProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%6 + 1
		rng := rand.New(rand.NewSource(seed))
		a := randomSPD(n, rng)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		x := CholeskySolve(l, b)
		// Residual ||Ax - b|| must be tiny.
		ax := MulVec(a, x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-6*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTriangularSolves(t *testing.T) {
	l := New(2, 2)
	l.Set(0, 0, 2)
	l.Set(1, 0, 1)
	l.Set(1, 1, 3)
	// L x = [4, 7]: x0 = 2, x1 = (7-2)/3.
	x := SolveLower(l, []float64{4, 7})
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-5.0/3) > 1e-12 {
		t.Errorf("SolveLower = %v", x)
	}
	// Lᵀ y = [4, 6]: y1 = 2, y0 = (4-1*2)/2 = 1.
	y := SolveLowerT(l, []float64{4, 6})
	if math.Abs(y[1]-2) > 1e-12 || math.Abs(y[0]-1) > 1e-12 {
		t.Errorf("SolveLowerT = %v", y)
	}
}

func TestDotAndMulVec(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	a := New(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	got := MulVec(a, []float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestPanicsOnShapeMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"Dot":    func() { Dot([]float64{1}, []float64{1, 2}) },
		"MulVec": func() { MulVec(New(2, 2), []float64{1}) },
		"SolveLower": func() {
			SolveLower(New(2, 2), []float64{1})
		},
		"New": func() { New(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestClone(t *testing.T) {
	a := New(1, 2)
	a.Set(0, 0, 5)
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 5 {
		t.Error("Clone aliases the original")
	}
}
