package camodel

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"unico/internal/hw"
	"unico/internal/mapping"
	"unico/internal/workload"
)

func testLayer() workload.Layer {
	return workload.Conv("l", 56, 12, 60, 160, 3, 3, 1, 1)
}

func minimalSchedule(c hw.Ascend, l workload.Layer) mapping.Ascend {
	return mapping.Ascend{TM: c.CubeM, TK: c.CubeK, TN: c.CubeN, FuseDepth: 1}.Canon(l)
}

func TestEvaluateProducesValidMetrics(t *testing.T) {
	var e Engine
	c := hw.DefaultAscend()
	met, err := e.Evaluate(c, minimalSchedule(c, testLayer()), testLayer())
	if err != nil {
		t.Fatal(err)
	}
	if !met.Valid() {
		t.Fatalf("invalid metrics %+v", met)
	}
	if met.AreaMM2 != e.Area(c) {
		t.Errorf("metrics area %v != Area() %v", met.AreaMM2, e.Area(c))
	}
}

func TestDeterministic(t *testing.T) {
	var e Engine
	c := hw.DefaultAscend()
	m := minimalSchedule(c, testLayer())
	a, _ := e.Evaluate(c, m, testLayer())
	b, _ := e.Evaluate(c, m, testLayer())
	if a != b {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestDefaultRunsWholeZoo(t *testing.T) {
	var e Engine
	c := hw.DefaultAscend()
	for _, w := range workload.All() {
		for _, l := range w.Layers {
			if _, err := e.Evaluate(c, minimalSchedule(c, l), l); err != nil {
				t.Errorf("%s/%s: %v", w.Name, l.Name, err)
			}
		}
	}
}

func TestInfeasibleChecks(t *testing.T) {
	var e Engine
	l := testLayer()
	c := hw.DefaultAscend()

	small := c
	small.L1KB = 1
	big := mapping.Ascend{TM: 512, TK: 512, TN: 512, FuseDepth: 4}.Canon(l)
	if _, err := e.Evaluate(small, big, l); !errors.Is(err, ErrInfeasible) {
		t.Errorf("tiny L1: err = %v", err)
	}

	noUB := c
	noUB.UBKB = 1
	wide := mapping.Ascend{TM: 56, TK: 16, TN: 4096, FuseDepth: 1}.Canon(l)
	if _, err := e.Evaluate(noUB, wide, l); !errors.Is(err, ErrInfeasible) {
		t.Errorf("tiny UB: err = %v", err)
	}

	noPB := c
	noPB.PBKB = 1
	bigK := workload.Conv("bigk", 4096, 12, 8, 8, 1, 1, 1, 1)
	if _, err := e.Evaluate(noPB, minimalSchedule(noPB, bigK), bigK); !errors.Is(err, ErrInfeasible) {
		t.Errorf("tiny PB: err = %v", err)
	}
}

func TestDoubleBufferingHelpsWithBanks(t *testing.T) {
	var e Engine
	l := testLayer()
	c := hw.DefaultAscend()
	c.L0ABanks, c.L0BBanks, c.L0CBanks = 4, 4, 4
	m := mapping.Ascend{TM: 32, TK: 64, TN: 512, FuseDepth: 1}.Canon(l)
	mdb := m
	mdb.DBufA, mdb.DBufB, mdb.DBufC = true, true, true
	serial, err1 := e.Evaluate(c, m, l)
	overlapped, err2 := e.Evaluate(c, mdb, l)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if overlapped.LatencyMs >= serial.LatencyMs {
		t.Errorf("double buffering did not help: %v >= %v",
			overlapped.LatencyMs, serial.LatencyMs)
	}
}

func TestLargerL0AHelpsWeightStripeReuse(t *testing.T) {
	var e Engine
	// Wide output (large N), several weight stripes: L0A residency is the
	// lever the paper's Fig. 11 discovery turns.
	l := workload.Conv("wide", 64, 64, 120, 320, 3, 3, 1, 1)
	small := hw.DefaultAscend()
	small.L0AKB = 8
	big := small
	big.L0AKB = 512
	// TK spans the whole 576-deep reduction: the weight stripe is 36 cube
	// tiles (~9 KB), which overflows the 8 KB L0A but not the 512 KB one.
	m := mapping.Ascend{TM: 64, TK: 576, TN: 512, FuseDepth: 1}.Canon(l)
	a, err1 := e.Evaluate(small, m, l)
	b, err2 := e.Evaluate(big, m, l)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if b.EnergyUJ >= a.EnergyUJ {
		t.Errorf("larger L0A did not cut L0 fill energy: %v >= %v", b.EnergyUJ, a.EnergyUJ)
	}
}

func TestFusionCutsDDREnergy(t *testing.T) {
	var e Engine
	l := testLayer()
	c := hw.DefaultAscend()
	shallow := mapping.Ascend{TM: 16, TK: 16, TN: 64, FuseDepth: 1}.Canon(l)
	deep := shallow
	deep.FuseDepth = 4
	a, err1 := e.Evaluate(c, shallow, l)
	b, err2 := e.Evaluate(c, deep, l)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if b.EnergyUJ >= a.EnergyUJ {
		t.Errorf("fusion did not cut energy: %v >= %v", b.EnergyUJ, a.EnergyUJ)
	}
}

func TestExtrapolationBoundsSimulationTime(t *testing.T) {
	var e Engine
	// A deliberately huge layer with tiny tiles: millions of tile steps,
	// which must be extrapolated, not walked.
	l := workload.Conv("huge", 512, 512, 512, 512, 3, 3, 1, 1)
	c := hw.DefaultAscend()
	m := minimalSchedule(c, l)
	start := time.Now()
	met, err := e.Evaluate(c, m, l)
	if err != nil {
		t.Fatal(err)
	}
	if !met.Valid() {
		t.Fatalf("invalid metrics %+v", met)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("evaluation took %v; extrapolation not bounding work", elapsed)
	}
}

func TestEvaluateWorkloadSums(t *testing.T) {
	var e Engine
	c := hw.DefaultAscend()
	w := workload.Workload{Name: "w", Layers: []workload.Layer{
		workload.Conv("a", 16, 8, 30, 40, 3, 3, 1, 3),
		workload.Gemm("b", 64, 128, 32, 1),
	}}
	ms := []mapping.Ascend{minimalSchedule(c, w.Layers[0]), minimalSchedule(c, w.Layers[1])}
	total, err := e.EvaluateWorkload(c, ms, w)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := e.Evaluate(c, ms[0], w.Layers[0])
	b, _ := e.Evaluate(c, ms[1], w.Layers[1])
	want := a.LatencyMs*3 + b.LatencyMs
	if diff := total.LatencyMs - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("workload latency %v, want %v", total.LatencyMs, want)
	}
}

func TestEvalCostIsMinutes(t *testing.T) {
	cost := (Engine{}).EvalCostSeconds()
	if cost < 120 || cost > 600 {
		t.Errorf("CAModel eval cost %v s, want the paper's 2-10 minute range", cost)
	}
}

// TestRandomSchedulesNeverPanicProperty drives the simulator with arbitrary
// schedules across random cores.
func TestRandomSchedulesNeverPanicProperty(t *testing.T) {
	var e Engine
	space := hw.NewAscendSpace()
	l := testLayer()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := space.Decode(space.Sample(rng))
		m := mapping.RandomAscend(rng, l)
		met, err := e.Evaluate(c, m, l)
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		return met.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
