// Package camodel implements a cycle-level simulator of an Ascend/DaVinci-
// like accelerator core, standing in for the proprietary cycle-accurate
// model (CAModel) the paper uses for its industrial case study (Sections 4.1
// and 4.6).
//
// The simulated core follows the DaVinci organization [42]: a 3D cube unit
// executing an M×K×N matrix intrinsic per issue, fed by the L0A (left
// operand) and L0B (right operand) buffers, accumulating into L0C; an L1
// staging buffer between DDR and the L0s; a unified vector buffer (UB) for
// the post-processing vector unit; a parameter buffer and an instruction
// cache. Execution is simulated tile by tile with explicit ready-time
// bookkeeping for the five engines (DMA-A, DMA-B, cube, vector, DMA-out):
// double buffering overlaps a tile's loads with the previous tile's compute
// only when the corresponding L0 buffer has at least two bank groups and the
// mapping enables it, exactly the interaction the paper's search discovers
// (shrinking L0B/L0C and growing L0A).
//
// Long-running layers are simulated explicitly for a bounded number of tile
// steps and extrapolated at the observed steady-state rate afterwards — the
// standard sampling technique of fast cycle-accurate models. The simulated
// wall-clock charge per evaluation (minutes, versus sub-second for the
// analytical model) reproduces the cost asymmetry of paper Section 4.1.
package camodel

import (
	"errors"
	"fmt"
	"math"
	"time"

	"unico/internal/hw"
	"unico/internal/mapping"
	"unico/internal/ppa"
	"unico/internal/telemetry"
	"unico/internal/workload"
)

// ErrInfeasible reports a schedule that violates a buffer capacity on the
// given core configuration.
var ErrInfeasible = errors.New("camodel: schedule infeasible on core")

// Technology constants of the synthetic process; see the package comment of
// internal/maestro for calibration rationale.
const (
	clockGHz = 1.5

	ddrBWBytesPerCycle = 64.0 // DDR <-> L1
	l1BWBytesPerCycle  = 128.0
	vecBytesPerCycle   = 64.0 // vector unit throughput at UB < 256 KB

	macEnergyPJ  = 0.7
	l0EnergyPJ   = 0.6
	l1EnergyPJ   = 2.2
	ddrEnergyPJ  = 110.0
	sramLeakMWKB = 0.012

	cubeAreaMM2PerMAC = 0.0030
	sramAreaMM2KB     = 0.045
	fixedAreaMM2      = 18.0 // scalar unit, vector unit, DMA engines, NoC

	// maxExplicitSteps bounds the explicitly simulated tile steps before
	// steady-state extrapolation takes over.
	maxExplicitSteps = 4096
)

// Engine is the cycle-level PPA estimator for the Ascend-like core.
type Engine struct {
	// EvalSeconds is the simulated wall-clock cost of one Evaluate call.
	// Zero means the default of 150 s, inside the paper's 2-10 minute range.
	EvalSeconds float64
}

// EvalCostSeconds returns the simulated cost of one evaluation.
func (e Engine) EvalCostSeconds() float64 {
	if e.EvalSeconds > 0 {
		return e.EvalSeconds
	}
	return 150
}

// Area returns the core area in mm².
func (Engine) Area(c hw.Ascend) float64 {
	cubeMACs := float64(c.CubeM * c.CubeK * c.CubeN)
	return fixedAreaMM2 + cubeMACs*cubeAreaMM2PerMAC + float64(c.TotalSRAMKB())*sramAreaMM2KB
}

// engineState tracks when each pipeline engine becomes free (in cycles).
type engineState struct {
	dmaA, dmaB, cube, vec, dmaOut float64
}

// evalCount and evalInfeasible meter the simulator's hot path.
var (
	evalCount      = telemetry.PPAEvals("camodel")
	evalInfeasible = telemetry.PPAInfeasible("camodel")
	evalSeconds    = telemetry.PPAEvalSeconds("camodel")
)

// Evaluate simulates one layer under schedule m on core c.
func (e Engine) Evaluate(c hw.Ascend, m mapping.Ascend, l workload.Layer) (ppa.Metrics, error) {
	evalCount.Inc()
	//unicolint:allow detclock host-side eval-latency metric; simulated search cost is charged via simclock
	defer func(start time.Time) { evalSeconds.Observe(time.Since(start).Seconds()) }(time.Now())
	met, err := e.evaluate(c, m, l)
	if err != nil && errors.Is(err, ErrInfeasible) {
		evalInfeasible.Inc()
	}
	return met, err
}

func (e Engine) evaluate(c hw.Ascend, m mapping.Ascend, l workload.Layer) (ppa.Metrics, error) {
	if err := l.Validate(); err != nil {
		return ppa.Metrics{}, err
	}
	m = m.Canon(l)
	gm, gk, gn := mapping.GemmDims(l)

	// L0 sub-tile shape: one cube intrinsic worth, rounded up to the cube
	// geometry (padding wastes throughput, as in the real core).
	m0 := c.CubeM
	k0 := c.CubeK
	n0 := c.CubeN

	// L0 capacity checks (bytes; fp16 inputs = 1 B in our int8-normal
	// model, fp32 accumulators = 4 B). Double buffering doubles residency
	// and requires >= 2 bank groups to be effective.
	bufA := float64(m0 * k0)
	bufB := float64(k0 * n0)
	bufC := 4 * float64(m0*n0)
	if m.DBufA {
		bufA *= 2
	}
	if m.DBufB {
		bufB *= 2
	}
	if m.DBufC {
		bufC *= 2
	}
	if bufA > float64(c.L0AKB)*1024 {
		return ppa.Metrics{}, fmt.Errorf("%w: L0A needs %d B > %d KB", ErrInfeasible, int(bufA), c.L0AKB)
	}
	if bufB > float64(c.L0BKB)*1024 {
		return ppa.Metrics{}, fmt.Errorf("%w: L0B needs %d B > %d KB", ErrInfeasible, int(bufB), c.L0BKB)
	}
	if bufC > float64(c.L0CKB)*1024 {
		return ppa.Metrics{}, fmt.Errorf("%w: L0C needs %d B > %d KB", ErrInfeasible, int(bufC), c.L0CKB)
	}

	// L1 residency: the M×K and K×N tiles plus the output tile, times the
	// depth-first fusion depth (fused layers keep their intermediate line
	// buffers resident).
	tileA := float64(m.TM * m.TK)
	tileB := float64(m.TK * m.TN)
	tileOut := float64(m.TM * m.TN)
	l1Need := (tileA + tileB + tileOut) * float64(m.FuseDepth)
	if l1Need > float64(c.L1KB)*1024 {
		return ppa.Metrics{}, fmt.Errorf("%w: L1 needs %d B > %d KB (fuse=%d)",
			ErrInfeasible, int(l1Need), c.L1KB, m.FuseDepth)
	}
	// UB must hold one output tile for vector post-processing.
	if tileOut > float64(c.UBKB)*1024 {
		return ppa.Metrics{}, fmt.Errorf("%w: UB needs %d B > %d KB", ErrInfeasible, int(tileOut), c.UBKB)
	}
	// Parameter buffer holds the per-layer scale/bias vectors (4 B per
	// output channel).
	if 4*float64(l.K) > float64(c.PBKB)*1024 {
		return ppa.Metrics{}, fmt.Errorf("%w: PB needs %d B > %d KB", ErrInfeasible, 4*l.K, c.PBKB)
	}

	// Tile trip counts.
	tilesM := int(math.Ceil(float64(gm) / float64(m.TM)))
	tilesK := int(math.Ceil(float64(gk) / float64(m.TK)))
	tilesN := int(math.Ceil(float64(gn) / float64(m.TN)))
	subM := int(math.Ceil(float64(min(m.TM, gm)) / float64(m0)))
	subK := int(math.Ceil(float64(min(m.TK, gk)) / float64(k0)))
	subN := int(math.Ceil(float64(min(m.TN, gn)) / float64(n0)))

	// Per-engine per-step costs (cycles).
	dmaACycles := tileA / ddrBWBytesPerCycle
	dmaBCycles := tileB / ddrBWBytesPerCycle
	// Cube: one intrinsic per cycle when fed; padded sub-tiles still take a
	// full issue. Pipeline depth k0 added once per L1 tile.
	cubeIssues := float64(subM * subK * subN)
	cubeCycles := cubeIssues + float64(k0)
	// L0 fill traffic depends on stripe residency — this is where the L0
	// capacities earn their keep. The cube walks (mi, ni, ki): the A
	// (weight) stripe A[mi, *] is reused across every ni iteration only if
	// L0A holds the whole subK-tile stripe; otherwise each (mi, ni) pair
	// refetches it. Symmetrically the B (activation) stripe B[*, ni] must
	// survive across mi iterations in L0B.
	aSub := float64(m0 * k0)
	bSub := float64(k0 * n0)
	if m.DBufA {
		aSub *= 2
	}
	if m.DBufB {
		bSub *= 2
	}
	fillsA := float64(subM * subK)
	if float64(c.L0AKB)*1024 < float64(subK)*aSub {
		fillsA *= float64(subN)
	}
	fillsB := float64(subK * subN)
	if float64(c.L0BKB)*1024 < float64(subK)*bSub {
		fillsB *= float64(subM)
	}
	l0FillA := fillsA * float64(m0*k0) / l1BWBytesPerCycle
	l0FillB := fillsB * float64(k0*n0) / l1BWBytesPerCycle
	// Double buffering (with >= 2 bank groups) overlaps fills with compute,
	// leaving only the bank-arbitration share exposed; otherwise the fill
	// serializes with the cube.
	if !m.DBufA || c.L0ABanks < 2 {
		cubeCycles += l0FillA
	} else {
		cubeCycles += l0FillA / float64(2*c.L0ABanks)
	}
	if !m.DBufB || c.L0BBanks < 2 {
		cubeCycles += l0FillB
	} else {
		cubeCycles += l0FillB / float64(2*c.L0BBanks)
	}
	// Vector post-processing of each output tile.
	vecBW := vecBytesPerCycle
	if c.UBKB >= 256 {
		vecBW *= 2
	}
	vecCycles := tileOut / vecBW
	// L0C drain to UB: serialized unless L0C double buffers.
	if !m.DBufC || c.L0CBanks < 2 {
		vecCycles += bufC / l1BWBytesPerCycle
	}
	// Partial-sum spills: when the reduction is split across L1 tiles
	// (tilesK > 1) and L0C cannot hold the live accumulators, every output
	// tile round-trips through the vector path once more per K tile.
	cResident := float64(c.L0CKB)*1024 >= math.Min(float64(subM*subN), 64)*bufC
	drainFactor := 1.0
	if tilesK > 1 && !cResident {
		drainFactor = float64(tilesK)
	}
	vecCycles *= drainFactor
	dmaOutCycles := tileOut / ddrBWBytesPerCycle
	// Instruction-cache misses: the fused inner-loop body grows with fusion
	// depth; a body larger than the ICache stalls each tile step.
	bodyKB := 4.0 * float64(m.FuseDepth)
	icachePenalty := 0.0
	if bodyKB > float64(c.ICacheKB) {
		icachePenalty = 48 * (bodyKB - float64(c.ICacheKB))
	}

	// Explicit simulation with steady-state extrapolation.
	totalSteps := tilesM * tilesN * tilesK
	explicit := totalSteps
	if explicit > maxExplicitSteps {
		explicit = maxExplicitSteps
	}
	var st engineState
	var now float64
	warmup := 0.0
	for step := 0; step < explicit; step++ {
		// DMA engines fetch the next A/B tiles.
		aReady := math.Max(st.dmaA, now) + dmaACycles
		bReady := math.Max(st.dmaB, now) + dmaBCycles
		st.dmaA, st.dmaB = aReady, bReady
		// Cube starts when operands are in and the unit is free; with
		// double buffering the fetch of step s+1 overlaps compute of s,
		// modeled by letting the DMA ready times lag one step behind.
		start := math.Max(st.cube, math.Max(aReady, bReady))
		if m.DBufA && c.L0ABanks >= 2 && m.DBufB && c.L0BBanks >= 2 && step > 0 {
			start = math.Max(st.cube, now)
		}
		st.cube = start + cubeCycles + icachePenalty
		// Vector unit post-processes once the K-reduction of this output
		// tile completes (every tilesK-th step).
		if (step+1)%max(tilesK, 1) == 0 {
			st.vec = math.Max(st.vec, st.cube) + vecCycles
			st.dmaOut = math.Max(st.dmaOut, st.vec) + dmaOutCycles
		}
		now = st.cube
		if step == explicit/4 {
			warmup = finish(st)
		}
	}
	cycles := finish(st)
	if totalSteps > explicit {
		// Steady-state rate from the post-warmup window.
		window := float64(explicit - explicit/4)
		rate := (cycles - warmup) / window
		cycles += rate * float64(totalSteps-explicit)
	}

	// Depth-first fusion divides the DDR activation traffic: intermediate
	// tiles of fused layers never round-trip to DDR.
	fuse := float64(m.FuseDepth)
	inBytes := float64(l.InputBytes()) / fuse
	outBytes := float64(l.OutputBytes()) / fuse
	wBytes := float64(l.WeightBytes()) * math.Ceil(float64(tilesM)/8) // weight refetch per M stripe group
	ddrBytes := inBytes + outBytes + wBytes
	ddrCycles := ddrBytes / ddrBWBytesPerCycle
	cycles = math.Max(cycles, ddrCycles)

	latencyMs := cycles / (clockGHz * 1e6)

	usefulMACs := float64(l.MACs())
	// L0 traffic is the residency-dependent fill volume plus the cube's
	// register-file share; undersized L0 stripes therefore cost energy as
	// well as stall cycles.
	l0Bytes := float64(totalSteps)*(fillsA*float64(m0*k0)+fillsB*float64(k0*n0)) +
		usefulMACs*0.2
	l1Bytes := float64(tilesM*tilesK*tilesN) * (tileA + tileB)
	energyPJ := usefulMACs*macEnergyPJ + l0Bytes*l0EnergyPJ + l1Bytes*l1EnergyPJ + ddrBytes*ddrEnergyPJ
	energyUJ := energyPJ * 1e-6
	leak := float64(c.TotalSRAMKB())*sramLeakMWKB + float64(c.CubeM*c.CubeK*c.CubeN)*0.02
	powerMW := energyUJ/latencyMs + leak
	energyUJ += leak * latencyMs

	met := ppa.Metrics{
		LatencyMs: latencyMs,
		PowerMW:   powerMW,
		AreaMM2:   e.Area(c),
		EnergyUJ:  energyUJ,
	}
	if !met.Valid() {
		return ppa.Metrics{}, fmt.Errorf("camodel: produced invalid metrics %+v for %v / %v", met, c, l)
	}
	return met, nil
}

// finish returns the completion time of the whole pipeline.
func finish(st engineState) float64 {
	return math.Max(st.cube, math.Max(st.vec, st.dmaOut))
}

// EvaluateWorkload sums per-layer metrics, each scaled by its repeat count,
// for a fixed per-layer schedule assignment.
func (e Engine) EvaluateWorkload(c hw.Ascend, ms []mapping.Ascend, w workload.Workload) (ppa.Metrics, error) {
	if len(ms) != len(w.Layers) {
		return ppa.Metrics{}, fmt.Errorf("camodel: %d schedules for %d layers", len(ms), len(w.Layers))
	}
	var total ppa.Metrics
	for i, l := range w.Layers {
		met, err := e.Evaluate(c, ms[i], l)
		if err != nil {
			return ppa.Metrics{}, fmt.Errorf("layer %q: %w", l.Name, err)
		}
		total = total.Add(met.Scale(l.Repeat))
	}
	total.AreaMM2 = e.Area(c)
	return total, nil
}
