package robust

import (
	"math"
	"testing"
	"testing/quick"

	"unico/internal/mapsearch"
	"unico/internal/ppa"
)

func TestFKnownValues(t *testing.T) {
	cases := []struct {
		theta, want float64
	}{
		{0, 1},
		{math.Pi / 2, 0},
		{math.Pi, 2},
	}
	for _, tc := range cases {
		if got := F(tc.theta); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("F(%v) = %v, want %v", tc.theta, got, tc.want)
		}
	}
}

func TestFAsymmetry(t *testing.T) {
	// The paper prefers θ in [0, π/2] over (π/2, π]: the multiplier at π
	// (3Δ) must exceed the one at 0 (2Δ).
	if 1+F(math.Pi) <= 1+F(0) {
		t.Error("F is not asymmetric toward penalizing power increases")
	}
	// F decreases on [0, π/2] and increases on [π/2, π].
	if F(0.3) >= F(0.1)+1e-12 && F(0.1) != F(0.3) {
		// fine: decreasing
	}
	if F(1.0) >= F(0.5) {
		t.Error("F not decreasing on [0, π/2]")
	}
	if F(3.0) <= F(2.0) {
		t.Error("F not increasing on [π/2, π]")
	}
}

func met(lat, pow float64) ppa.Metrics {
	return ppa.Metrics{LatencyMs: lat, PowerMW: pow, AreaMM2: 1, EnergyUJ: lat * pow}
}

func TestThetaQuadrants(t *testing.T) {
	opt := met(10, 100)
	// Sub-optimal slower and hungrier: both improved at the optimum — good
	// branch, θ in (0, π/2).
	both := Theta(opt, met(20, 150))
	if both <= 0 || both >= math.Pi/2 {
		t.Errorf("both-improve θ = %v, want (0, π/2)", both)
	}
	// Sub-optimal slower but *cheaper*: the optimum bought latency with
	// power — bad branch, θ in (π/2, π].
	bad := Theta(opt, met(20, 50))
	if bad <= math.Pi/2 || bad > math.Pi {
		t.Errorf("power-increase θ = %v, want (π/2, π]", bad)
	}
	// Pure power increase: worst case π.
	if got := Theta(opt, met(10, 50)); math.Abs(got-math.Pi) > 1e-12 {
		t.Errorf("pure power increase θ = %v, want π", got)
	}
	// Pure latency improvement with equal power: θ = 0.
	if got := Theta(opt, met(20, 100)); got != 0 {
		t.Errorf("pure latency θ = %v, want 0", got)
	}
	// Identical points: neutral π/2.
	if got := Theta(opt, opt); got != math.Pi/2 {
		t.Errorf("identical θ = %v, want π/2", got)
	}
}

func TestDelta(t *testing.T) {
	opt := met(10, 100)
	if got := Delta(opt, opt); got != 0 {
		t.Errorf("Delta(identical) = %v", got)
	}
	// 10% latency and 10% power deviation: Δ = sqrt(0.01 + 0.01).
	sub := met(11, 110)
	want := math.Sqrt(0.02)
	if got := Delta(opt, sub); math.Abs(got-want) > 1e-12 {
		t.Errorf("Delta = %v, want %v", got, want)
	}
	if got := Delta(ppa.Metrics{}, sub); got != RInfeasible {
		t.Errorf("Delta with degenerate optimum = %v", got)
	}
}

func hist(points ...ppa.Metrics) ppa.History {
	h := make(ppa.History, len(points))
	loss := math.Inf(1)
	for i, m := range points {
		l := m.EDP()
		if l > loss {
			l = loss
		}
		loss = l
		h[i] = ppa.Point{Budget: i + 1, Loss: l, M: m}
	}
	return h
}

func TestSensitivityFlatHistoryIsRobust(t *testing.T) {
	// A search that converges immediately and never moves: R = 0.
	pts := make([]ppa.Metrics, 50)
	for i := range pts {
		pts[i] = met(10, 100)
	}
	if got := Sensitivity(hist(pts...), DefaultAlpha); got != 0 {
		t.Errorf("flat-history R = %v, want 0", got)
	}
}

func TestSensitivityVolatileTailIsFragile(t *testing.T) {
	// Stable for most of the search, then a large late improvement: the 95%
	// right-tail sub-optimal point is far from the converged optimum.
	stable := make([]ppa.Metrics, 40)
	for i := range stable {
		stable[i] = met(100, 100)
	}
	volatile := append(stable, met(10, 100), met(10, 100))
	calm := make([]ppa.Metrics, 42)
	for i := range calm {
		calm[i] = met(10, 100)
	}
	rVolatile := Sensitivity(hist(volatile...), DefaultAlpha)
	rCalm := Sensitivity(hist(calm...), DefaultAlpha)
	if rVolatile <= rCalm {
		t.Errorf("volatile R %v <= calm R %v", rVolatile, rCalm)
	}
}

func TestSensitivityInfeasibleHistories(t *testing.T) {
	if got := Sensitivity(nil, DefaultAlpha); got != RInfeasible {
		t.Errorf("nil history R = %v", got)
	}
	penalty := ppa.History{{Budget: 1, Loss: mapsearch.PenaltyLoss}}
	if got := Sensitivity(penalty, DefaultAlpha); got != RInfeasible {
		t.Errorf("penalty-only history R = %v", got)
	}
	single := ppa.History{{Budget: 1, Loss: 1, M: met(1, 1)}}
	if got := Sensitivity(single, DefaultAlpha); got != RInfeasible {
		t.Errorf("single-point history R = %v", got)
	}
}

func TestSensitivitySkipsPenaltyPrefix(t *testing.T) {
	pts := make([]ppa.Metrics, 30)
	for i := range pts {
		pts[i] = met(10, 100)
	}
	h := append(ppa.History{
		{Budget: 1, Loss: mapsearch.PenaltyLoss},
		{Budget: 2, Loss: mapsearch.PenaltyLoss},
	}, hist(pts...)...)
	if got := Sensitivity(h, DefaultAlpha); got != 0 {
		t.Errorf("penalty prefix distorted R: %v", got)
	}
}

func TestSensitivityBadAlphaFallsBack(t *testing.T) {
	pts := make([]ppa.Metrics, 30)
	for i := range pts {
		pts[i] = met(10, 100)
	}
	if got := Sensitivity(hist(pts...), -3); got != 0 {
		t.Errorf("bad alpha fallback R = %v", got)
	}
}

// TestSensitivityBoundedProperty: R is always in [0, RInfeasible].
func TestSensitivityBoundedProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var pts []ppa.Metrics
		for i := 0; i+1 < len(raw) && len(pts) < 40; i += 2 {
			pts = append(pts, met(float64(raw[i])+1, float64(raw[i+1])+1))
		}
		if len(pts) == 0 {
			return true
		}
		r := Sensitivity(hist(pts...), DefaultAlpha)
		return r >= 0 && r <= RInfeasible
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRFormula checks R = mean over the sub-optimal band of Δ(1 + F(θ)):
// with a band containing one duplicate of the optimum and sub-optimal
// samples, the mean interpolates between 0 and the pairwise value.
func TestRFormula(t *testing.T) {
	optimal := met(10, 100)
	sub := met(20, 150)
	pts := make([]ppa.Metrics, 40)
	for i := range pts {
		pts[i] = sub
	}
	pts = append(pts, optimal, optimal)
	got := Sensitivity(hist(pts...), DefaultAlpha)
	pairwise := Delta(optimal, sub) * (1 + F(Theta(optimal, sub)))
	// The band holds the duplicate optimum (contributing 0) plus sub
	// samples; the mean must land strictly between 0 and the pairwise R.
	if got <= 0 || got >= pairwise {
		t.Errorf("band-mean R = %v, want in (0, %v)", got, pairwise)
	}
	// With a band of {optimum-duplicate, sub...}: mean = pairwise*(k-1)/k
	// where k is the band size. Verify against the direct computation.
	n := len(pts)
	bandLen := int(math.Ceil(DefaultAlpha * float64(n-1)))
	want := pairwise * float64(bandLen-1) / float64(bandLen)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("R = %v, want %v (band %d)", got, want, bandLen)
	}
}
