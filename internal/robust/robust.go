// Package robust implements the hardware robustness (sensitivity) metric R
// of paper Section 3.4 (Eq. 2):
//
//	R = Δ · (1 + F(θ)),   F(θ) = 6/π²·θ² − 5/π·θ + 1
//
// computed from two points of a software-mapping search's *raw* loss
// history (the fluctuating per-candidate curve of paper Fig. 5a, not its
// monotone best-so-far envelope): the "optimal" mapping (the minimum-loss
// sample) and a "sub-optimal" mapping whose loss sits at the (1−α)
// right-tail percentile of the whole loss history (α = 0.05 by default,
// i.e. a mapping only the top 5% of evaluated candidates beat). Δ is the
// distance between the two points in (latency, power) space, and θ encodes
// the direction of the improvement from the sub-optimal to the optimal
// point: improvements that reduce both latency and power land in [0, π/2]
// (mildly penalized), improvements that buy latency by *increasing* power
// land in (π/2, π] (heavily penalized, F(π) = 2 so the multiplier reaches
// 3).
//
// A small R means the hardware performs nearly identically across the
// promising region of its mapping space — the paper's definition of a
// hardware configuration robust to software search, which Section 4.3 shows
// correlates with generalization to unseen networks.
package robust

import (
	"math"
	"sort"

	"unico/internal/mapsearch"
	"unico/internal/ppa"
)

// DefaultAlpha is the right-tail percentile parameter of the sub-optimal
// band selection. The paper quotes "e.g. 95%" (α = 0.05); the slightly
// wider 90% band estimates the plateau spread with less sampling noise at
// the search budgets used here.
const DefaultAlpha = 0.10

// RInfeasible is the sensitivity assigned to hardware with no feasible
// mapping history: the worst value the metric can justify, keeping the MOBO
// objective finite.
const RInfeasible = 10.0

// F is the paper's angular penalty polynomial. F(0) = 1, F(π/2) = 0,
// F(π) = 2.
func F(theta float64) float64 {
	return 6/(math.Pi*math.Pi)*theta*theta - 5/math.Pi*theta + 1
}

// Theta returns the improvement angle of the displacement from the
// sub-optimal point to the optimal point in (latency, power) space, folded
// into [0, π]:
//
//   - power not increased at the optimum (dPow ≥ 0 where dPow is the power
//     the optimum saves): θ = atan2(dPow, |dLat|) ∈ [0, π/2];
//   - power increased at the optimum: θ = π/2 + atan2(|dPow|, |dLat|), so a
//     pure power increase maps to π (the worst case of Fig. 5c).
func Theta(optimal, suboptimal ppa.Metrics) float64 {
	dLat := suboptimal.LatencyMs - optimal.LatencyMs // ≥ 0: optimum is faster
	dPow := suboptimal.PowerMW - optimal.PowerMW     // ≥ 0: optimum saves power
	if dLat == 0 && dPow == 0 {
		return math.Pi / 2
	}
	if dPow >= 0 {
		return math.Atan2(dPow, math.Abs(dLat))
	}
	return math.Pi/2 + math.Atan2(-dPow, math.Abs(dLat))
}

// Delta returns the relative 2-norm distance between the two points in
// (latency, power) space, normalized by the optimal point's coordinates so
// workloads of different scales are comparable.
func Delta(optimal, suboptimal ppa.Metrics) float64 {
	if optimal.LatencyMs <= 0 || optimal.PowerMW <= 0 {
		return RInfeasible
	}
	dl := (suboptimal.LatencyMs - optimal.LatencyMs) / optimal.LatencyMs
	dp := (suboptimal.PowerMW - optimal.PowerMW) / optimal.PowerMW
	return math.Sqrt(dl*dl + dp*dp)
}

// Sensitivity computes R from a mapping search's raw loss history with the
// given right-tail parameter alpha. Penalty (infeasible) samples are
// ignored; histories with fewer than two feasible samples yield
// RInfeasible: with nothing to compare, the hardware's mapping landscape is
// unknown and is treated pessimistically.
func Sensitivity(h ppa.History, alpha float64) float64 {
	if alpha <= 0 || alpha >= 1 {
		alpha = DefaultAlpha
	}
	fh := make(ppa.History, 0, len(h))
	for _, p := range h {
		if p.Loss < mapsearch.PenaltyLoss {
			fh = append(fh, p)
		}
	}
	if len(fh) < 2 {
		return RInfeasible
	}
	optimal, band := optimalAndBand(fh, alpha)
	// Average the pairwise sensitivity over the whole sub-optimal band: a
	// single percentile sample is a noisy estimator of the landscape's
	// plateau width, its band mean is not.
	sum := 0.0
	for _, sub := range band {
		sum += Delta(optimal.M, sub.M) * (1 + F(Theta(optimal.M, sub.M)))
	}
	r := sum / float64(len(band))
	if r > RInfeasible {
		r = RInfeasible
	}
	return r
}

// optimalAndBand returns the minimum-loss sample and the band of samples at
// or below the (1−α) right-tail percentile of the loss distribution — the
// "promising region" whose performance spread defines the hardware's
// sensitivity. The optimum itself is excluded from the band.
func optimalAndBand(fh ppa.History, alpha float64) (optimal ppa.Point, band ppa.History) {
	byLoss := append(ppa.History(nil), fh...)
	sort.SliceStable(byLoss, func(i, j int) bool { return byLoss[i].Loss < byLoss[j].Loss })
	idx := int(math.Ceil(alpha * float64(len(byLoss)-1)))
	if idx < 1 {
		idx = 1
	}
	if idx >= len(byLoss) {
		idx = len(byLoss) - 1
	}
	return byLoss[0], byLoss[1 : idx+1]
}
