// Package hw defines the hardware design spaces UNICO searches over: the
// open-source 2D spatial accelerator template of paper Fig. 1 and the
// Ascend-like commercial architecture of Section 4.1.
//
// Every space is a finite lattice of discrete axes. The Bayesian-optimization
// layer works in the continuous unit hypercube [0,1]^d; this package owns the
// mapping between that cube and concrete hardware configurations: each axis
// value v_i is represented by the cell center (i+0.5)/len(values), Clip snaps
// an arbitrary point to the nearest cell center, and Decode materializes the
// configuration.
package hw

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Axis is one discrete hardware parameter with its admissible values in
// increasing order.
type Axis struct {
	Name   string
	Values []int
}

// levels returns the number of admissible values.
func (a Axis) levels() int { return len(a.Values) }

// index maps a coordinate in [0,1] to the index of the selected value.
func (a Axis) index(x float64) int {
	n := a.levels()
	i := int(math.Floor(x * float64(n)))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// center returns the unit-cube coordinate representing value index i.
func (a Axis) center(i int) float64 { return (float64(i) + 0.5) / float64(a.levels()) }

// Grid is an ordered set of axes: the Cartesian lattice of a design space.
type Grid struct {
	axes []Axis
}

// NewGrid builds a grid from the given axes. It panics if any axis is empty
// or has unsorted/duplicate values, since that indicates a programming error
// in a space definition.
func NewGrid(axes ...Axis) Grid {
	for _, a := range axes {
		if len(a.Values) == 0 {
			panic(fmt.Sprintf("hw: axis %q has no values", a.Name))
		}
		if !sort.IntsAreSorted(a.Values) {
			panic(fmt.Sprintf("hw: axis %q values not sorted", a.Name))
		}
		for i := 1; i < len(a.Values); i++ {
			if a.Values[i] == a.Values[i-1] {
				panic(fmt.Sprintf("hw: axis %q has duplicate value %d", a.Name, a.Values[i]))
			}
		}
	}
	return Grid{axes: axes}
}

// Dim returns the number of axes.
func (g Grid) Dim() int { return len(g.axes) }

// Axes returns the grid's axes.
func (g Grid) Axes() []Axis { return g.axes }

// Size returns the number of lattice points as a float64 (design spaces can
// exceed int64).
func (g Grid) Size() float64 {
	size := 1.0
	for _, a := range g.axes {
		size *= float64(a.levels())
	}
	return size
}

// Sample draws a uniformly random lattice point, returned as cell-center
// coordinates in [0,1]^d.
func (g Grid) Sample(rng *rand.Rand) []float64 {
	x := make([]float64, g.Dim())
	for i, a := range g.axes {
		x[i] = a.center(rng.Intn(a.levels()))
	}
	return x
}

// Clip snaps an arbitrary point in R^d to the nearest cell center.
func (g Grid) Clip(x []float64) []float64 {
	if len(x) != g.Dim() {
		panic(fmt.Sprintf("hw: Clip: got %d coords, want %d", len(x), g.Dim()))
	}
	out := make([]float64, len(x))
	for i, a := range g.axes {
		out[i] = a.center(a.index(x[i]))
	}
	return out
}

// Indices decodes a point to the per-axis value indices.
func (g Grid) Indices(x []float64) []int {
	if len(x) != g.Dim() {
		panic(fmt.Sprintf("hw: Indices: got %d coords, want %d", len(x), g.Dim()))
	}
	idx := make([]int, len(x))
	for i, a := range g.axes {
		idx[i] = a.index(x[i])
	}
	return idx
}

// ValuesAt decodes a point to the concrete per-axis values.
func (g Grid) ValuesAt(x []float64) []int {
	idx := g.Indices(x)
	vals := make([]int, len(idx))
	for i, a := range g.axes {
		vals[i] = a.Values[idx[i]]
	}
	return vals
}

// Encode returns the cell-center coordinates of the given per-axis indices.
func (g Grid) Encode(idx []int) []float64 {
	if len(idx) != g.Dim() {
		panic(fmt.Sprintf("hw: Encode: got %d indices, want %d", len(idx), g.Dim()))
	}
	x := make([]float64, len(idx))
	for i, a := range g.axes {
		if idx[i] < 0 || idx[i] >= a.levels() {
			panic(fmt.Sprintf("hw: Encode: axis %q index %d out of range [0,%d)", a.Name, idx[i], a.levels()))
		}
		x[i] = a.center(idx[i])
	}
	return x
}

// Key returns a canonical comparable key of the lattice cell containing x,
// used to deduplicate hardware candidates.
func (g Grid) Key(x []float64) string {
	return fmt.Sprint(g.Indices(x))
}

// Neighbor returns a copy of x with one uniformly chosen axis moved one step
// up or down the lattice (staying in range). Used by acquisition local
// search and by NSGA-II mutation.
func (g Grid) Neighbor(x []float64, rng *rand.Rand) []float64 {
	out := g.Clip(x)
	ai := rng.Intn(g.Dim())
	a := g.axes[ai]
	i := a.index(out[ai])
	step := 1
	if rng.Intn(2) == 0 {
		step = -1
	}
	j := i + step
	if j < 0 {
		j = min(1, a.levels()-1)
	}
	if j >= a.levels() {
		j = max(a.levels()-2, 0)
	}
	out[ai] = a.center(j)
	return out
}

// pow23 returns the sorted, deduplicated values {2^i * 3^j : 0<=i<=maxI,
// 0<=j<=maxJ}, the buffer-size lattice of paper Section 4.1.
func pow23(maxI, maxJ int) []int {
	var vals []int
	p2 := 1
	for i := 0; i <= maxI; i++ {
		p3 := 1
		for j := 0; j <= maxJ; j++ {
			vals = append(vals, p2*p3)
			p3 *= 3
		}
		p2 *= 2
	}
	sort.Ints(vals)
	return vals
}

// seq returns the integers lo..hi inclusive.
func seq(lo, hi int) []int {
	vals := make([]int, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		vals = append(vals, v)
	}
	return vals
}
