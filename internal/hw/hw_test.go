package hw

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPow23(t *testing.T) {
	vals := pow23(2, 1) // {1,2,4} x {1,3} = {1,2,3,4,6,12}
	want := []int{1, 2, 3, 4, 6, 12}
	if len(vals) != len(want) {
		t.Fatalf("pow23(2,1) = %v, want %v", vals, want)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("pow23(2,1) = %v, want %v", vals, want)
		}
	}
}

func TestGridPanicsOnBadAxes(t *testing.T) {
	cases := []Axis{
		{Name: "empty"},
		{Name: "unsorted", Values: []int{3, 1}},
		{Name: "dup", Values: []int{1, 1}},
	}
	for _, a := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGrid accepted axis %q", a.Name)
				}
			}()
			NewGrid(a)
		}()
	}
}

func testGrid() Grid {
	return NewGrid(
		Axis{Name: "a", Values: []int{1, 2, 4, 8}},
		Axis{Name: "b", Values: []int{10, 20, 30}},
		Axis{Name: "c", Values: []int{0, 1}},
	)
}

func TestGridSize(t *testing.T) {
	if got := testGrid().Size(); got != 24 {
		t.Errorf("Size() = %v, want 24", got)
	}
}

func TestGridEncodeDecodeRoundTripProperty(t *testing.T) {
	g := testGrid()
	f := func(i, j, k uint8) bool {
		idx := []int{int(i) % 4, int(j) % 3, int(k) % 2}
		x := g.Encode(idx)
		got := g.Indices(x)
		for d := range idx {
			if got[d] != idx[d] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridClipIdempotentProperty(t *testing.T) {
	g := testGrid()
	f := func(a, b, c float64) bool {
		x := []float64{wrap01(a), wrap01(b), wrap01(c)}
		once := g.Clip(x)
		twice := g.Clip(once)
		for d := range once {
			if once[d] != twice[d] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func wrap01(v float64) float64 {
	if v < 0 {
		v = -v
	}
	return v - float64(int(v))
}

func TestGridSampleIsValid(t *testing.T) {
	g := testGrid()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		x := g.Sample(rng)
		c := g.Clip(x)
		for d := range x {
			if x[d] != c[d] {
				t.Fatalf("Sample produced off-center point %v (clip %v)", x, c)
			}
		}
	}
}

func TestGridNeighborMovesOneAxis(t *testing.T) {
	g := testGrid()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		x := g.Sample(rng)
		y := g.Neighbor(x, rng)
		xi, yi := g.Indices(x), g.Indices(y)
		diff := 0
		for d := range xi {
			if xi[d] != yi[d] {
				diff++
				if abs(xi[d]-yi[d]) != 1 {
					t.Fatalf("neighbor jumped %d steps on axis %d", xi[d]-yi[d], d)
				}
			}
		}
		if diff > 1 {
			t.Fatalf("neighbor changed %d axes", diff)
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestGridKeyDistinguishesCells(t *testing.T) {
	g := testGrid()
	a := g.Encode([]int{0, 0, 0})
	b := g.Encode([]int{1, 0, 0})
	if g.Key(a) == g.Key(b) {
		t.Error("distinct cells share a key")
	}
	if g.Key(a) != g.Key(g.Clip(a)) {
		t.Error("key changed under Clip")
	}
}

func TestScenario(t *testing.T) {
	if Edge.PowerCapMW() != 2000 || Cloud.PowerCapMW() != 20000 {
		t.Errorf("power caps: edge %v cloud %v", Edge.PowerCapMW(), Cloud.PowerCapMW())
	}
	if Edge.String() != "edge" || Cloud.String() != "cloud" {
		t.Errorf("scenario names: %v %v", Edge, Cloud)
	}
}

func TestSpatialSpaceSizes(t *testing.T) {
	edge := NewSpatialSpace(Edge)
	cloud := NewSpatialSpace(Cloud)
	// Paper: edge space ~1e5, cloud ~1e9 (orders of magnitude apart).
	if edge.Size() < 1e4 || edge.Size() > 1e7 {
		t.Errorf("edge size = %g", edge.Size())
	}
	if cloud.Size() < 1e6 {
		t.Errorf("cloud size = %g", cloud.Size())
	}
	if cloud.Size() < 50*edge.Size() {
		t.Errorf("cloud (%g) should dwarf edge (%g)", cloud.Size(), edge.Size())
	}
}

func TestSpatialDecodeFieldsInRange(t *testing.T) {
	s := NewSpatialSpace(Cloud)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		c := s.Decode(s.Sample(rng))
		if c.PEX < 1 || c.PEX > 24 || c.PEY < 1 || c.PEY > 24 {
			t.Fatalf("PE array out of range: %+v", c)
		}
		if c.L1Bytes < 1 || c.L2KB < 1 {
			t.Fatalf("buffer sizes out of range: %+v", c)
		}
		if c.NoCBW != 64 && c.NoCBW != 128 {
			t.Fatalf("NoC BW out of range: %+v", c)
		}
		if c.Dataflow != WeightStationary && c.Dataflow != OutputStationary {
			t.Fatalf("dataflow out of range: %+v", c)
		}
	}
}

func TestSpatialEncodeDecodeRoundTrip(t *testing.T) {
	s := NewSpatialSpace(Edge)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		x := s.Sample(rng)
		c := s.Decode(x)
		x2 := s.Encode(c)
		c2 := s.Decode(x2)
		if c != c2 {
			t.Fatalf("round trip changed config: %v -> %v", c, c2)
		}
	}
}

func TestAscendSpace(t *testing.T) {
	s := NewAscendSpace()
	if s.Size() < 1e8 {
		t.Errorf("ascend space size = %g, want ~1e9", s.Size())
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		c := s.Decode(s.Sample(rng))
		if c.L0AKB < 8 || c.L0BKB < 8 || c.L0CKB < 16 {
			t.Fatalf("L0 sizes out of range: %+v", c)
		}
		if c.L0ABanks != 1 && c.L0ABanks != 2 && c.L0ABanks != 4 {
			t.Fatalf("bank groups out of range: %+v", c)
		}
		if c.CubeM < 2 || c.CubeK < 4 || c.CubeN < 2 {
			t.Fatalf("cube dims out of range: %+v", c)
		}
	}
}

func TestDefaultAscendEncodable(t *testing.T) {
	s := NewAscendSpace()
	def := DefaultAscend()
	got := s.Decode(s.Encode(def))
	if got != def {
		t.Errorf("default config not representable exactly: %v -> %v", def, got)
	}
	if def.TotalSRAMKB() <= 0 {
		t.Errorf("TotalSRAMKB = %d", def.TotalSRAMKB())
	}
}

func TestDataflowString(t *testing.T) {
	if WeightStationary.String() != "WS" || OutputStationary.String() != "OS" {
		t.Errorf("dataflow strings: %v %v", WeightStationary, OutputStationary)
	}
}
