package hw

import (
	"fmt"
	"math/rand"
)

// Dataflow selects the stationarity of the spatial accelerator's PE array
// (paper Section 4.1: the GEMMCore intrinsic supports weight-stationary or
// output-stationary styles).
type Dataflow int

const (
	WeightStationary Dataflow = iota
	OutputStationary
)

func (d Dataflow) String() string {
	if d == WeightStationary {
		return "WS"
	}
	return "OS"
}

// Scenario selects the deployment constraints of Tables 1 and 2.
type Scenario int

const (
	// Edge constrains power to < 2 W and searches the smaller ~1e5 space.
	Edge Scenario = iota
	// Cloud constrains power to < 20 W and searches the full ~1e9 space.
	Cloud
)

func (s Scenario) String() string {
	if s == Edge {
		return "edge"
	}
	return "cloud"
}

// PowerCapMW returns the scenario's power constraint in milliwatts.
func (s Scenario) PowerCapMW() float64 {
	if s == Edge {
		return 2000
	}
	return 20000
}

// Spatial is one configuration of the open-source 2D spatial accelerator
// template (paper Fig. 1): a PEX×PEY processing-element array, per-PE L1
// scratchpads, a shared L2 buffer, the NoC bandwidth and the dataflow style.
type Spatial struct {
	PEX      int // PEs along x, 1..24
	PEY      int // PEs along y, 1..24
	L1Bytes  int // per-PE scratchpad, 2^i*3^j bytes
	L2KB     int // shared global buffer, 2^i*3^j KB
	NoCBW    int // network-on-chip bandwidth, bytes/cycle (64 or 128)
	Dataflow Dataflow
}

func (c Spatial) String() string {
	return fmt.Sprintf("PE%dx%d L1=%dB L2=%dKB NoC=%d %s",
		c.PEX, c.PEY, c.L1Bytes, c.L2KB, c.NoCBW, c.Dataflow)
}

// PEs returns the processing-element count.
func (c Spatial) PEs() int { return c.PEX * c.PEY }

// SpatialSpace is the lattice of Spatial configurations for one scenario.
type SpatialSpace struct {
	grid     Grid
	scenario Scenario
}

// NewSpatialSpace builds the design space of paper Section 4.1. The cloud
// space uses the full published ranges (PE axes 1..24, buffer exponents
// i,j = 0..10, NoC ∈ {64,128}, two dataflows, ~7e7 points); the edge space
// restricts the array to 12×12 and the buffer exponents to i ≤ 6, j ≤ 3
// (~2e5 points), matching the 1e5-vs-1e9 order-of-magnitude gap the paper
// reports between the two scenarios.
func NewSpatialSpace(sc Scenario) *SpatialSpace {
	var pe, l1, l2 []int
	switch sc {
	case Edge:
		pe = seq(1, 12)
		l1 = pow23(6, 3)
		l2 = pow23(6, 3)
	case Cloud:
		pe = seq(1, 24)
		l1 = pow23(10, 10)
		l2 = pow23(10, 10)
	default:
		panic(fmt.Sprintf("hw: unknown scenario %d", sc))
	}
	grid := NewGrid(
		Axis{Name: "pex", Values: pe},
		Axis{Name: "pey", Values: pe},
		Axis{Name: "l1", Values: l1},
		Axis{Name: "l2", Values: l2},
		Axis{Name: "noc", Values: []int{64, 128}},
		Axis{Name: "dataflow", Values: []int{0, 1}},
	)
	return &SpatialSpace{grid: grid, scenario: sc}
}

// Scenario returns the deployment scenario of the space.
func (s *SpatialSpace) Scenario() Scenario { return s.scenario }

// Dim returns the encoded dimensionality.
func (s *SpatialSpace) Dim() int { return s.grid.Dim() }

// Size returns the number of configurations in the space.
func (s *SpatialSpace) Size() float64 { return s.grid.Size() }

// Sample draws a uniformly random configuration point.
func (s *SpatialSpace) Sample(rng *rand.Rand) []float64 { return s.grid.Sample(rng) }

// Clip snaps a point to the nearest valid configuration.
func (s *SpatialSpace) Clip(x []float64) []float64 { return s.grid.Clip(x) }

// Neighbor moves one axis one lattice step.
func (s *SpatialSpace) Neighbor(x []float64, rng *rand.Rand) []float64 {
	return s.grid.Neighbor(x, rng)
}

// Key returns a canonical identifier of the lattice cell containing x.
func (s *SpatialSpace) Key(x []float64) string { return s.grid.Key(x) }

// Decode materializes the configuration at x.
func (s *SpatialSpace) Decode(x []float64) Spatial {
	v := s.grid.ValuesAt(x)
	return Spatial{
		PEX: v[0], PEY: v[1],
		L1Bytes: v[2], L2KB: v[3],
		NoCBW:    v[4],
		Dataflow: Dataflow(v[5]),
	}
}

// Encode returns the point representing the given configuration, snapping
// each field to the nearest admissible axis value.
func (s *SpatialSpace) Encode(c Spatial) []float64 {
	fields := []int{c.PEX, c.PEY, c.L1Bytes, c.L2KB, c.NoCBW, int(c.Dataflow)}
	idx := make([]int, len(fields))
	for i, a := range s.grid.Axes() {
		idx[i] = nearestIndex(a.Values, fields[i])
	}
	return s.grid.Encode(idx)
}

// Describe renders the configuration at x for logs and reports.
func (s *SpatialSpace) Describe(x []float64) string { return s.Decode(x).String() }

// nearestIndex returns the index of the value in sorted vals closest to v.
func nearestIndex(vals []int, v int) int {
	best, bestDist := 0, -1
	for i, w := range vals {
		d := w - v
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}
