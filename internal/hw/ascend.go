package hw

import (
	"fmt"
	"math/rand"
)

// Ascend is one configuration of the Ascend-like commercial architecture
// (paper Section 4.1 and [42]): a DaVinci-style core with a 3D cube unit fed
// by the L0A (left matrix), L0B (right matrix) and L0C (accumulator)
// buffers, an L1 staging buffer, a unified vector buffer, a parameter buffer
// and an instruction cache. The search space covers the buffer capacities,
// the bank groups of each L0 buffer (which bound double-buffering depth) and
// the M/K/N shape of the cube intrinsic.
type Ascend struct {
	L0AKB    int // cube left-input buffer, KB
	L0BKB    int // cube right-input buffer, KB
	L0CKB    int // cube accumulator buffer, KB
	L1KB     int // staging buffer between HBM/L2 and the L0s, KB
	UBKB     int // unified (vector) buffer, KB
	PBKB     int // parameter buffer, KB
	ICacheKB int // instruction cache, KB
	L0ABanks int // bank groups of L0A (1, 2 or 4)
	L0BBanks int
	L0CBanks int
	CubeM    int // cube intrinsic: (M×K)·(K×N) per issue
	CubeK    int
	CubeN    int
}

func (c Ascend) String() string {
	return fmt.Sprintf("L0A=%dKB/%db L0B=%dKB/%db L0C=%dKB/%db L1=%dKB UB=%dKB PB=%dKB IC=%dKB cube=%dx%dx%d",
		c.L0AKB, c.L0ABanks, c.L0BKB, c.L0BBanks, c.L0CKB, c.L0CBanks,
		c.L1KB, c.UBKB, c.PBKB, c.ICacheKB, c.CubeM, c.CubeK, c.CubeN)
}

// TotalSRAMKB returns the total on-core SRAM capacity.
func (c Ascend) TotalSRAMKB() int {
	return c.L0AKB + c.L0BKB + c.L0CKB + c.L1KB + c.UBKB + c.PBKB + c.ICacheKB
}

// DefaultAscend returns the expert-selected default configuration the
// paper's Fig. 11 compares against. Following the paper's observation that
// "the default values of these are simply set by engineers by referring to
// cube parameters", L0A is sized for a handful of cube tiles (ignoring
// weight-stripe reuse across output positions) while L0B and L0C carry
// generous safety margins — precisely the allocation UNICO's search later
// rebalances (L0A up, L0B and L0C down) — and single bank groups on the
// cube input buffers, leaving the load/compute overlap untuned.
func DefaultAscend() Ascend {
	return Ascend{
		L0AKB: 32, L0BKB: 128, L0CKB: 512,
		L1KB: 1024, UBKB: 256, PBKB: 32, ICacheKB: 32,
		L0ABanks: 1, L0BBanks: 1, L0CBanks: 2,
		CubeM: 16, CubeK: 16, CubeN: 16,
	}
}

// AscendSpace is the lattice of Ascend configurations (~1e9 points, matching
// the paper's stated space size).
type AscendSpace struct {
	grid Grid
}

// NewAscendSpace builds the Ascend-like design space.
func NewAscendSpace() *AscendSpace {
	kb := []int{8, 16, 32, 64, 128, 256, 512}
	banks := []int{1, 2, 4}
	grid := NewGrid(
		Axis{Name: "l0a", Values: kb},
		Axis{Name: "l0b", Values: kb},
		Axis{Name: "l0c", Values: []int{16, 32, 64, 128, 256, 512, 1024}},
		Axis{Name: "l1", Values: []int{128, 256, 512, 1024, 2048, 4096}},
		Axis{Name: "ub", Values: []int{32, 64, 128, 256, 512, 1024}},
		Axis{Name: "pb", Values: []int{8, 16, 32, 64}},
		Axis{Name: "icache", Values: []int{8, 16, 32, 64}},
		Axis{Name: "l0a_banks", Values: banks},
		Axis{Name: "l0b_banks", Values: banks},
		Axis{Name: "l0c_banks", Values: banks},
		Axis{Name: "cube_m", Values: []int{2, 4, 8, 16, 32}},
		Axis{Name: "cube_k", Values: []int{4, 8, 16, 32}},
		Axis{Name: "cube_n", Values: []int{2, 4, 8, 16, 32}},
	)
	return &AscendSpace{grid: grid}
}

// Dim returns the encoded dimensionality.
func (s *AscendSpace) Dim() int { return s.grid.Dim() }

// Size returns the number of configurations in the space.
func (s *AscendSpace) Size() float64 { return s.grid.Size() }

// Sample draws a uniformly random configuration point.
func (s *AscendSpace) Sample(rng *rand.Rand) []float64 { return s.grid.Sample(rng) }

// Clip snaps a point to the nearest valid configuration.
func (s *AscendSpace) Clip(x []float64) []float64 { return s.grid.Clip(x) }

// Neighbor moves one axis one lattice step.
func (s *AscendSpace) Neighbor(x []float64, rng *rand.Rand) []float64 {
	return s.grid.Neighbor(x, rng)
}

// Key returns a canonical identifier of the lattice cell containing x.
func (s *AscendSpace) Key(x []float64) string { return s.grid.Key(x) }

// Decode materializes the configuration at x.
func (s *AscendSpace) Decode(x []float64) Ascend {
	v := s.grid.ValuesAt(x)
	return Ascend{
		L0AKB: v[0], L0BKB: v[1], L0CKB: v[2],
		L1KB: v[3], UBKB: v[4], PBKB: v[5], ICacheKB: v[6],
		L0ABanks: v[7], L0BBanks: v[8], L0CBanks: v[9],
		CubeM: v[10], CubeK: v[11], CubeN: v[12],
	}
}

// Encode returns the point representing the given configuration, snapping
// each field to the nearest admissible axis value.
func (s *AscendSpace) Encode(c Ascend) []float64 {
	fields := []int{
		c.L0AKB, c.L0BKB, c.L0CKB, c.L1KB, c.UBKB, c.PBKB, c.ICacheKB,
		c.L0ABanks, c.L0BBanks, c.L0CBanks, c.CubeM, c.CubeK, c.CubeN,
	}
	idx := make([]int, len(fields))
	for i, a := range s.grid.Axes() {
		idx[i] = nearestIndex(a.Values, fields[i])
	}
	return s.grid.Encode(idx)
}

// Describe renders the configuration at x for logs and reports.
func (s *AscendSpace) Describe(x []float64) string { return s.Decode(x).String() }
