package dist

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"unico/internal/evalcache"
	"unico/internal/hw"
)

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in     string
		want   time.Duration
		wantOK bool
	}{
		{"3", 3 * time.Second, true},
		// Degenerate advertisements parse as advertised (ok=true) with a
		// zero delay: retryDelay clamps them up to the base backoff, so a
		// "retry now" hint never becomes a zero-sleep spin.
		{"0", 0, true},
		{"-5", 0, true},
		{"", 0, false},
		{"soon", 0, false},
		{"1.5", 0, false},
	}
	for _, c := range cases {
		got, ok := parseRetryAfter(c.in)
		if got != c.want || ok != c.wantOK {
			t.Errorf("parseRetryAfter(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.wantOK)
		}
	}

	// Absolute HTTP-dates: a future date parses to roughly the remaining
	// delay, a past one to zero (retry immediately).
	future := time.Now().UTC().Add(10 * time.Second).Format(http.TimeFormat)
	if got, ok := parseRetryAfter(future); !ok || got <= 0 || got > 10*time.Second {
		t.Errorf("parseRetryAfter(future date) = %v, %v; want (0, 10s], true", got, ok)
	}
	past := time.Now().UTC().Add(-time.Hour).Format(http.TimeFormat)
	if got, ok := parseRetryAfter(past); !ok || got != 0 {
		t.Errorf("parseRetryAfter(past date) = %v, %v; want 0, true", got, ok)
	}
}

// TestRetryDelayClampsAdvertised: the delay actually slept after a shed is
// the advertised Retry-After clamped into [RetryBackoff, MaxBackoff];
// unadvertised sheds and non-shed failures fall back to exponential
// backoff with jitter.
func TestRetryDelayClampsAdvertised(t *testing.T) {
	c := NewClientOptions("http://unused", http.DefaultClient, Options{
		RetryBackoff: 20 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
	})
	shed := func(d time.Duration, advertised bool) error {
		return &shedError{path: "/v1/ppa", status: "429", retryAfter: d, advertised: advertised}
	}
	cases := []struct {
		name    string
		backoff time.Duration
		err     error
		want    time.Duration // exact expected delay; 0 = jittered (range-checked)
	}{
		{"advertised zero clamps to base", 20 * time.Millisecond, shed(0, true), 20 * time.Millisecond},
		{"advertised negative-equivalent clamps to base", 80 * time.Millisecond, shed(0, true), 20 * time.Millisecond},
		{"advertised below base clamps up", 20 * time.Millisecond, shed(5*time.Millisecond, true), 20 * time.Millisecond},
		{"advertised in range honored", 20 * time.Millisecond, shed(60*time.Millisecond, true), 60 * time.Millisecond},
		{"advertised above max capped", 20 * time.Millisecond, shed(5*time.Second, true), 100 * time.Millisecond},
		{"unadvertised shed uses backoff", 40 * time.Millisecond, shed(0, false), 0},
		{"non-shed error uses backoff", 40 * time.Millisecond, retryable(errTest), 0},
	}
	for _, tc := range cases {
		got := c.retryDelay(tc.backoff, tc.err)
		if tc.want != 0 {
			if got != tc.want {
				t.Errorf("%s: retryDelay = %v, want %v", tc.name, got, tc.want)
			}
			continue
		}
		if got < tc.backoff/2 || got > tc.backoff {
			t.Errorf("%s: retryDelay = %v, want jittered in [%v, %v]", tc.name, got, tc.backoff/2, tc.backoff)
		}
	}
}

var errTest = fmt.Errorf("test failure")

// TestShedZeroRetryAfterDoesNotSpin: a server advertising "0" (or a past
// HTTP-date, which parses the same) must still buy one base backoff per
// retry — the pre-fix behavior was an immediate retry against an already
// overloaded server.
func TestShedZeroRetryAfterDoesNotSpin(t *testing.T) {
	base := 30 * time.Millisecond
	for _, retryAfter := range []string{"0", "-5", time.Now().UTC().Add(-time.Hour).Format(http.TimeFormat)} {
		c := newSheddingWorker(t, http.StatusTooManyRequests, retryAfter, Options{
			MaxRetries: 1, RetryBackoff: base, MaxBackoff: time.Second,
		})
		start := time.Now()
		resp, err := c.EvaluatePPA(spatialPPARequest())
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("Retry-After %q: EvaluatePPA after one shed: %v", retryAfter, err)
		}
		if resp.Error != "" || !resp.Metrics.Valid() {
			t.Fatalf("Retry-After %q: response: %+v", retryAfter, resp)
		}
		if elapsed < base {
			t.Errorf("Retry-After %q: retried after %v; want at least the base backoff %v", retryAfter, elapsed, base)
		}
	}
}

// shedOnce wraps a handler, rejecting the first request to each listed path
// with the given status and Retry-After header.
type shedOnce struct {
	next       http.Handler
	status     int
	retryAfter string

	mu   sync.Mutex
	shed map[string]bool
}

func (s *shedOnce) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	first := !s.shed[r.URL.Path]
	s.shed[r.URL.Path] = true
	s.mu.Unlock()
	if first {
		if s.retryAfter != "" {
			w.Header().Set("Retry-After", s.retryAfter)
		}
		http.Error(w, "shedding", s.status)
		return
	}
	s.next.ServeHTTP(w, r)
}

func newSheddingWorker(t *testing.T, status int, retryAfter string, opts Options) *Client {
	t.Helper()
	shed := &shedOnce{next: NewServer().Handler(), status: status, retryAfter: retryAfter, shed: map[string]bool{}}
	srv := httptest.NewServer(shed)
	t.Cleanup(srv.Close)
	return NewClientOptions(srv.URL, srv.Client(), opts)
}

// TestClientHonorsRetryAfterCapped is the satellite-1 regression: a shed
// with a large Retry-After must delay the retry by MaxBackoff, not the full
// advertised 5 seconds and not the tiny exponential backoff either.
func TestClientHonorsRetryAfterCapped(t *testing.T) {
	c := newSheddingWorker(t, http.StatusTooManyRequests, "5", Options{
		MaxRetries: 1, RetryBackoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	})
	start := time.Now()
	resp, err := c.EvaluatePPA(spatialPPARequest())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("EvaluatePPA after one 429: %v", err)
	}
	if resp.Error != "" || !resp.Metrics.Valid() {
		t.Fatalf("response: %+v", resp)
	}
	if elapsed < 40*time.Millisecond {
		t.Errorf("retried after %v; Retry-After hint was not honored (exponential backoff alone would be ~1ms)", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("retried after %v; MaxBackoff did not cap the 5s Retry-After hint", elapsed)
	}
}

// TestShedRetriesOnNonIdempotentRoutes: 429/503 sheds are pre-processing
// rejections, so even CreateJob and AdvanceJob — never retried after
// ambiguous failures — retry them.
func TestShedRetriesOnNonIdempotentRoutes(t *testing.T) {
	c := newSheddingWorker(t, http.StatusServiceUnavailable, "0", Options{
		MaxRetries: 1, RetryBackoff: time.Millisecond,
	})
	space := hw.NewSpatialSpace(hw.Edge)
	x := space.Encode(hw.Spatial{PEX: 4, PEY: 4, L1Bytes: 864, L2KB: 96, NoCBW: 64})
	spec := JobSpec{
		Platform: "spatial", Scenario: "edge",
		Networks: []string{"MobileNetV3-S"}, X: x, Algo: "flextensor", Seed: 1,
	}
	id, err := c.CreateJob(spec) // first attempt shed with 503
	if err != nil {
		t.Fatalf("CreateJob through one shed: %v", err)
	}
	state, err := c.AdvanceJob(id, 2) // first advance shed with 503
	if err != nil {
		t.Fatalf("AdvanceJob through one shed: %v", err)
	}
	if state.Spent != 2 {
		t.Errorf("spent %d, want 2", state.Spent)
	}
}

// TestCorruptResponseRetriedNotCached is the satellite-2 regression: a 200
// with a truncated body must be retried like a transport failure and must
// never poison the client-side cache.
func TestCorruptResponseRetriedNotCached(t *testing.T) {
	cache := evalcache.New(0)
	inj, c := newFaultyWorker(t, Options{
		MaxRetries: 1, RetryBackoff: time.Millisecond, Cache: cache,
	})
	inj.CorruptNext(1)
	resp, err := c.EvaluatePPA(spatialPPARequest())
	if err != nil {
		t.Fatalf("EvaluatePPA after one corrupt body: %v", err)
	}
	if resp.Error != "" || !resp.Metrics.Valid() {
		t.Fatalf("response: %+v", resp)
	}
	if inj.Injected() != 1 {
		t.Errorf("injected %d faults, want 1", inj.Injected())
	}
	st := cache.Stats()
	if st.Entries != 1 || st.Misses != 1 {
		t.Errorf("cache stats %+v; want exactly the one good response stored", st)
	}
	if _, err := c.EvaluatePPA(spatialPPARequest()); err != nil {
		t.Fatalf("cached re-evaluation: %v", err)
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Errorf("cache stats %+v; want the repeat served as a hit", st)
	}
}

// TestProbabilisticFaultsReproducible: the same seed and request order must
// inject the same fault sequence — chaos runs are irregular, never flaky.
func TestProbabilisticFaultsReproducible(t *testing.T) {
	sequence := func() []int {
		inj := NewFaultInjector(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
		}))
		inj.Probabilistic(42, 0.3, 0, 0) // only 500s: no panics, no hangs
		var codes []int
		for i := 0; i < 64; i++ {
			rec := httptest.NewRecorder()
			inj.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
			codes = append(codes, rec.Code)
		}
		if inj.Injected() == 0 || inj.Injected() == 64 {
			t.Fatalf("injected %d of 64: probabilities not applied", inj.Injected())
		}
		return codes
	}
	a, b := sequence(), sequence()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequences diverge at request %d: %v vs %v", i, a, b)
		}
	}
}

// TestWorkerDrain is the worker half of satellite 3: a draining worker
// reports itself, refuses new work with 503 + Retry-After, and still
// finishes jobs it already holds.
func TestWorkerDrain(t *testing.T) {
	srv, c := newWorker(t)

	space := hw.NewSpatialSpace(hw.Edge)
	x := space.Encode(hw.Spatial{PEX: 4, PEY: 4, L1Bytes: 864, L2KB: 96, NoCBW: 64})
	spec := JobSpec{
		Platform: "spatial", Scenario: "edge",
		Networks: []string{"MobileNetV3-S"}, X: x, Algo: "flextensor", Seed: 1,
	}
	id, err := c.CreateJob(spec)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Client().Post(srv.URL+"/v1/drain", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if h, err := c.Health(); err != nil || h.Status != StatusDraining {
		t.Fatalf("health after drain = %+v, %v; want draining", h, err)
	}
	if c.Healthy() {
		t.Error("Healthy() true for a draining worker; routers would keep sending it new work")
	}

	// New work is refused with a shed the client can wait out.
	raw, err := srv.Client().Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"platform":"spatial"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	if raw.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("CreateJob on draining worker = %d, want 503", raw.StatusCode)
	}
	if raw.Header.Get("Retry-After") == "" {
		t.Error("draining refusal carries no Retry-After header")
	}
	if _, err := c.EvaluatePPA(spatialPPARequest()); err == nil {
		t.Fatal("EvaluatePPA succeeded on a draining worker with no retry budget")
	}

	// The job created before the drain still advances to completion.
	state, err := c.AdvanceJob(id, 2)
	if err != nil {
		t.Fatalf("AdvanceJob on draining worker: %v", err)
	}
	if state.Spent != 2 {
		t.Errorf("spent %d, want 2", state.Spent)
	}

	resp, err = srv.Client().Post(srv.URL+"/v1/undrain", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !c.Healthy() {
		t.Error("Healthy() false after undrain")
	}
}
