package dist

import (
	"fmt"
	"sync"

	"unico/internal/hw"
	"unico/internal/mapsearch"
	"unico/internal/mobo"
	"unico/internal/ppa"
	"unico/internal/telemetry"
	"unico/internal/workload"
)

// Defaults for the master's worker-health policy (see the corresponding
// RemoteSpatialPlatform fields).
const (
	// DefaultEvictAfter is how many consecutive job-creation failures evict
	// a worker from the rotation.
	DefaultEvictAfter = 3
	// DefaultProbeEvery is how many NewJob calls pass between health probes
	// of evicted workers.
	DefaultProbeEvery = 8
)

// workerHealth is the master's view of one worker.
type workerHealth struct {
	client      *Client
	consecFails int
	evicted     bool
}

// RemoteSpatialPlatform implements core.Platform over a pool of worker
// nodes: the master runs MOBO and successive halving locally, while every
// software-mapping job executes on a worker — the master/slave deployment
// of paper Fig. 6b. Jobs are assigned to workers round-robin.
//
// Workers that repeatedly fail job creation are evicted from the rotation so
// a dead node stops eating timeouts on every batch; evicted workers are
// probed periodically (counted in NewJob calls, so behavior is deterministic
// — no background goroutines) and re-admitted when their health endpoint
// answers again.
type RemoteSpatialPlatform struct {
	space    *hw.SpatialSpace
	scenario hw.Scenario
	networks []string
	layerN   int
	algo     string

	mu      sync.Mutex
	workers []*workerHealth
	calls   int // NewJob calls; drives round-robin and probe cadence

	// PerEvalSeconds is the simulated cost of one PPA evaluation on a
	// worker (default: the analytical engine's 0.08 s).
	PerEvalSeconds float64
	// EvictAfter is how many consecutive job-creation failures evict a
	// worker (default DefaultEvictAfter).
	EvictAfter int
	// ProbeEvery is how many NewJob calls pass between probes of evicted
	// workers (default DefaultProbeEvery).
	ProbeEvery int
}

// NewRemoteSpatialPlatform builds the master-side platform. The networks
// must exist in the workload zoo of every worker.
func NewRemoteSpatialPlatform(workers []*Client, sc hw.Scenario, networks []string) (*RemoteSpatialPlatform, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("dist: no workers")
	}
	layerN := 0
	for _, n := range networks {
		wl, err := workload.ByName(n)
		if err != nil {
			return nil, err
		}
		layerN += len(wl.Layers)
	}
	hs := make([]*workerHealth, len(workers))
	for i, w := range workers {
		hs[i] = &workerHealth{client: w}
	}
	return &RemoteSpatialPlatform{
		workers:        hs,
		space:          hw.NewSpatialSpace(sc),
		scenario:       sc,
		networks:       networks,
		layerN:         layerN,
		algo:           "flextensor",
		PerEvalSeconds: 0.08,
		EvictAfter:     DefaultEvictAfter,
		ProbeEvery:     DefaultProbeEvery,
	}, nil
}

// Space returns the hardware design space.
func (p *RemoteSpatialPlatform) Space() mobo.Space { return p.space }

// NewJob creates the mapping search on the next non-evicted worker
// (round-robin), failing over to the remaining ones when a worker refuses
// the job. Failures count toward eviction; if every active worker fails, the
// evicted ones are probed as a last resort. Only when no worker at all can
// take the job does the candidate become a dead job, which the co-optimizer
// scores as infeasible — one lost candidate, not a lost run.
func (p *RemoteSpatialPlatform) NewJob(x []float64, seed int64) mapsearch.Searcher {
	spec := JobSpec{
		Platform: "spatial",
		Scenario: p.scenario.String(),
		Networks: p.networks,
		X:        x,
		Algo:     p.algo,
		Seed:     seed,
	}

	p.mu.Lock()
	p.calls++
	start := p.calls
	if p.ProbeEvery > 0 && p.calls%p.ProbeEvery == 0 {
		p.probeEvictedLocked()
	}
	var active []*workerHealth
	for _, w := range p.workers {
		if !w.evicted {
			active = append(active, w)
		}
	}
	p.mu.Unlock()

	for attempt := 0; attempt < len(active); attempt++ {
		w := active[(start+attempt)%len(active)]
		job, err := NewRemoteJob(w.client, spec)
		if err == nil {
			p.noteSuccess(w)
			return job
		}
		p.noteFailure(w)
	}

	// Every active worker failed (or all are evicted): probe the evicted
	// pool immediately rather than returning a dead job while a recovered
	// worker sits idle.
	p.mu.Lock()
	p.probeEvictedLocked()
	var revived []*workerHealth
	for _, w := range p.workers {
		if !w.evicted {
			revived = append(revived, w)
		}
	}
	p.mu.Unlock()
	for _, w := range revived {
		if job, err := NewRemoteJob(w.client, spec); err == nil {
			p.noteSuccess(w)
			return job
		}
		p.noteFailure(w)
	}
	telemetry.DistLostEvals().Inc()
	return deadJob{}
}

// noteSuccess clears a worker's failure streak.
func (p *RemoteSpatialPlatform) noteSuccess(w *workerHealth) {
	p.mu.Lock()
	w.consecFails = 0
	p.mu.Unlock()
}

// noteFailure records a job-creation failure, evicting the worker once the
// streak reaches EvictAfter.
func (p *RemoteSpatialPlatform) noteFailure(w *workerHealth) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w.consecFails++
	limit := p.EvictAfter
	if limit <= 0 {
		limit = DefaultEvictAfter
	}
	if !w.evicted && w.consecFails >= limit {
		w.evicted = true
		telemetry.DistWorkerEvictions().Inc()
	}
}

// probeEvictedLocked re-admits every evicted worker whose health endpoint
// answers. Callers must hold p.mu.
func (p *RemoteSpatialPlatform) probeEvictedLocked() {
	for _, w := range p.workers {
		if w.evicted && w.client.Healthy() {
			w.evicted = false
			w.consecFails = 0
			telemetry.DistWorkerReadmissions().Inc()
		}
	}
}

// EvictedWorkers returns how many workers are currently evicted from the
// rotation.
func (p *RemoteSpatialPlatform) EvictedWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if w.evicted {
			n++
		}
	}
	return n
}

// HealthyWorkers returns how many workers currently answer their health
// endpoint — an operational check for the master before a long run.
func (p *RemoteSpatialPlatform) HealthyWorkers() int {
	p.mu.Lock()
	ws := make([]*workerHealth, len(p.workers))
	copy(ws, p.workers)
	p.mu.Unlock()
	n := 0
	for _, w := range ws {
		if w.client.Healthy() {
			n++
		}
	}
	return n
}

// EvalCostSeconds is the per-budget-unit simulated cost (one engine call
// per layer).
func (p *RemoteSpatialPlatform) EvalCostSeconds() float64 {
	return p.PerEvalSeconds * float64(p.layerN)
}

// Describe renders the hardware at x.
func (p *RemoteSpatialPlatform) Describe(x []float64) string { return p.space.Describe(x) }

// PowerCapMW is the scenario's power constraint.
func (p *RemoteSpatialPlatform) PowerCapMW() float64 { return p.scenario.PowerCapMW() }

// AreaCapMM2 is unconstrained on the open-source platform.
func (p *RemoteSpatialPlatform) AreaCapMM2() float64 { return 0 }

// deadJob is the null searcher returned when a worker is unreachable.
type deadJob struct{}

func (deadJob) Advance(int)               {}
func (deadJob) History() ppa.History      { return nil }
func (deadJob) RawHistory() ppa.History   { return nil }
func (deadJob) Spent() int                { return 0 }
func (deadJob) Best() (ppa.Metrics, bool) { return ppa.Metrics{}, false }
