package dist

import (
	"fmt"
	"sync/atomic"

	"unico/internal/hw"
	"unico/internal/mapsearch"
	"unico/internal/mobo"
	"unico/internal/ppa"
	"unico/internal/workload"
)

// RemoteSpatialPlatform implements core.Platform over a pool of worker
// nodes: the master runs MOBO and successive halving locally, while every
// software-mapping job executes on a worker — the master/slave deployment
// of paper Fig. 6b. Jobs are assigned to workers round-robin.
type RemoteSpatialPlatform struct {
	workers  []*Client
	space    *hw.SpatialSpace
	scenario hw.Scenario
	networks []string
	layerN   int
	algo     string
	next     atomic.Uint64
	// PerEvalSeconds is the simulated cost of one PPA evaluation on a
	// worker (default: the analytical engine's 0.08 s).
	PerEvalSeconds float64
}

// NewRemoteSpatialPlatform builds the master-side platform. The networks
// must exist in the workload zoo of every worker.
func NewRemoteSpatialPlatform(workers []*Client, sc hw.Scenario, networks []string) (*RemoteSpatialPlatform, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("dist: no workers")
	}
	layerN := 0
	for _, n := range networks {
		wl, err := workload.ByName(n)
		if err != nil {
			return nil, err
		}
		layerN += len(wl.Layers)
	}
	return &RemoteSpatialPlatform{
		workers:        workers,
		space:          hw.NewSpatialSpace(sc),
		scenario:       sc,
		networks:       networks,
		layerN:         layerN,
		algo:           "flextensor",
		PerEvalSeconds: 0.08,
	}, nil
}

// Space returns the hardware design space.
func (p *RemoteSpatialPlatform) Space() mobo.Space { return p.space }

// NewJob creates the mapping search on the next worker (round-robin),
// failing over to the remaining workers when one refuses the job. Only when
// every worker is unreachable does the candidate become a dead job, which
// the co-optimizer scores as infeasible — one lost candidate, not a lost
// run.
func (p *RemoteSpatialPlatform) NewJob(x []float64, seed int64) mapsearch.Searcher {
	spec := JobSpec{
		Platform: "spatial",
		Scenario: p.scenario.String(),
		Networks: p.networks,
		X:        x,
		Algo:     p.algo,
		Seed:     seed,
	}
	start := int(p.next.Add(1))
	for attempt := 0; attempt < len(p.workers); attempt++ {
		w := p.workers[(start+attempt)%len(p.workers)]
		job, err := NewRemoteJob(w, spec)
		if err == nil {
			return job
		}
	}
	return deadJob{}
}

// HealthyWorkers returns how many workers currently answer their health
// endpoint — an operational check for the master before a long run.
func (p *RemoteSpatialPlatform) HealthyWorkers() int {
	n := 0
	for _, w := range p.workers {
		if w.Healthy() {
			n++
		}
	}
	return n
}

// EvalCostSeconds is the per-budget-unit simulated cost (one engine call
// per layer).
func (p *RemoteSpatialPlatform) EvalCostSeconds() float64 {
	return p.PerEvalSeconds * float64(p.layerN)
}

// Describe renders the hardware at x.
func (p *RemoteSpatialPlatform) Describe(x []float64) string { return p.space.Describe(x) }

// PowerCapMW is the scenario's power constraint.
func (p *RemoteSpatialPlatform) PowerCapMW() float64 { return p.scenario.PowerCapMW() }

// AreaCapMM2 is unconstrained on the open-source platform.
func (p *RemoteSpatialPlatform) AreaCapMM2() float64 { return 0 }

// deadJob is the null searcher returned when a worker is unreachable.
type deadJob struct{}

func (deadJob) Advance(int)               {}
func (deadJob) History() ppa.History      { return nil }
func (deadJob) RawHistory() ppa.History   { return nil }
func (deadJob) Spent() int                { return 0 }
func (deadJob) Best() (ppa.Metrics, bool) { return ppa.Metrics{}, false }
