// Package dist implements the scalable, parallel deployment of paper
// Section 3.5 (Fig. 6): a standalone PPA-estimation REST service, a
// mapping-search job service that worker ("slave") machines expose, and a
// RemotePlatform that lets the master's co-optimizer fan software-mapping
// jobs out across a pool of workers over HTTP.
//
// The wire protocol is plain JSON over net/http. Job state lives on the
// worker: the master creates a job, then advances it in budget installments
// exactly as the local successive-halving scheduler does, so early-stopped
// candidates never waste worker time.
package dist

import (
	"unico/internal/hw"
	"unico/internal/mapping"
	"unico/internal/ppa"
	"unico/internal/workload"
)

// PPARequest asks the PPA service to evaluate one
// (hardware, mapping, layer) triple on the named platform.
type PPARequest struct {
	// Platform is "spatial" or "ascend".
	Platform string `json:"platform"`
	// SpatialHW and SpatialMapping are set when Platform is "spatial".
	SpatialHW      *hw.Spatial      `json:"spatial_hw,omitempty"`
	SpatialMapping *mapping.Spatial `json:"spatial_mapping,omitempty"`
	// AscendHW and AscendMapping are set when Platform is "ascend".
	AscendHW      *hw.Ascend      `json:"ascend_hw,omitempty"`
	AscendMapping *mapping.Ascend `json:"ascend_mapping,omitempty"`
	Layer         workload.Layer  `json:"layer"`
}

// PPAResponse returns the metrics or the infeasibility reason.
type PPAResponse struct {
	Metrics    ppa.Metrics `json:"metrics"`
	Infeasible bool        `json:"infeasible,omitempty"`
	Error      string      `json:"error,omitempty"`
}

// JobSpec describes a network-level mapping-search job.
type JobSpec struct {
	// Platform is "spatial" or "ascend".
	Platform string `json:"platform"`
	// Scenario is "edge" or "cloud" (spatial platform only).
	Scenario string `json:"scenario,omitempty"`
	// Networks names the workloads (zoo names) under co-optimization.
	Networks []string `json:"networks"`
	// X is the encoded hardware configuration.
	X []float64 `json:"x"`
	// Algo is "flextensor", "gamma" or "depthfirst".
	Algo string `json:"algo"`
	// Seed makes the job deterministic.
	Seed int64 `json:"seed"`
}

// HealthResponse is the /v1/healthz body. Status is "ok" or "draining"; a
// draining worker still answers health probes and finishes in-flight jobs
// but refuses new work, so routers take it out of the hash ring instead of
// counting it dead.
type HealthResponse struct {
	Status string `json:"status"`
	Jobs   int    `json:"jobs"`
}

// StatusOK and StatusDraining are the HealthResponse.Status values.
const (
	StatusOK       = "ok"
	StatusDraining = "draining"
)

// JobCreateResponse returns the worker-side job handle.
type JobCreateResponse struct {
	ID    string `json:"id"`
	Error string `json:"error,omitempty"`
}

// JobDeleteResponse acknowledges a job deletion.
type JobDeleteResponse struct {
	ID      string `json:"id"`
	Deleted bool   `json:"deleted"`
	Error   string `json:"error,omitempty"`
}

// AdvanceRequest spends more budget on an existing job.
type AdvanceRequest struct {
	ID     string `json:"id"`
	Budget int    `json:"budget"`
}

// JobState mirrors the mapsearch.Searcher accessors over the wire.
type JobState struct {
	ID       string      `json:"id"`
	Spent    int         `json:"spent"`
	History  ppa.History `json:"history"`
	Raw      ppa.History `json:"raw,omitempty"`
	Best     ppa.Metrics `json:"best"`
	Feasible bool        `json:"feasible"`
	Error    string      `json:"error,omitempty"`
}
