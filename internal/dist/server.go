package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"strings"

	"unico/internal/camodel"
	"unico/internal/disttrace"
	"unico/internal/hw"
	"unico/internal/maestro"
	"unico/internal/mapsearch"
	"unico/internal/ppa"
	"unico/internal/runid"
	"unico/internal/telemetry"
	"unico/internal/workload"
)

// Server is a worker node: it exposes the PPA-estimation engine and hosts
// resumable mapping-search jobs (the "Jobs" of paper Fig. 6a).
type Server struct {
	spatial mapsearch.SpatialEngine
	ascend  mapsearch.AscendEngine

	// draining: the shard finishes in-flight jobs (advance/delete still
	// answer) but refuses new evaluations and job creations with
	// 503 + Retry-After, and reports "draining" on its health endpoint.
	draining atomic.Bool

	mu     sync.Mutex
	nextID int
	jobs   map[string]*serverJob
}

type serverJob struct {
	mu       sync.Mutex
	searcher mapsearch.Searcher
}

// NewServer builds a worker with default engines.
func NewServer() *Server {
	return NewServerWith(maestro.Engine{}, camodel.Engine{})
}

// NewServerWith builds a worker over explicit engines — typically
// evalcache-wrapped ones (cmd/ppaserver's -cache flag), or counting stubs in
// tests.
func NewServerWith(spatial mapsearch.SpatialEngine, ascend mapsearch.AscendEngine) *Server {
	return &Server{spatial: spatial, ascend: ascend, jobs: map[string]*serverJob{}}
}

// Handler returns the HTTP handler exposing the worker API, wrapped in the
// telemetry middleware (request counts, latency histograms, in-flight gauge
// in telemetry.DefaultRegistry):
//
//	POST   /v1/ppa          evaluate one (hw, mapping, layer) triple
//	POST   /v1/jobs         create a mapping-search job
//	POST   /v1/jobs/advance spend budget on a job
//	DELETE /v1/jobs/{id}    release a finished job's server-side state
//	GET    /v1/healthz      liveness probe (status "ok" or "draining")
//	POST   /v1/drain        start draining: finish in-flight jobs, refuse new work
//	POST   /v1/undrain      return to normal service
//	GET    /v1/spans        span-log events for one run (disttrace collector)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ppa", s.handlePPA)
	mux.HandleFunc("POST /v1/jobs", s.handleCreateJob)
	mux.HandleFunc("POST /v1/jobs/advance", s.handleAdvance)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDeleteJob)
	mux.Handle("GET /v1/spans", disttrace.SpansHandler())
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.health())
	})
	mux.HandleFunc("POST /v1/drain", func(w http.ResponseWriter, r *http.Request) {
		s.SetDraining(true)
		writeJSON(w, http.StatusOK, s.health())
	})
	mux.HandleFunc("POST /v1/undrain", func(w http.ResponseWriter, r *http.Request) {
		s.SetDraining(false)
		writeJSON(w, http.StatusOK, s.health())
	})
	// Attribute request volume to the originating client run via the
	// X-Unico-Run-ID header (capped label cardinality; see DistRunRequests).
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		telemetry.DistRunRequests(r.Header.Get(runid.Header)).Inc()
		mux.ServeHTTP(w, r)
	})
	return telemetry.InstrumentHandler(telemetry.DefaultRegistry, routeLabel, counted)
}

// routeLabel folds per-job paths into one route and any unregistered path
// into "other", so the metric label set stays bounded no matter how many
// jobs a search creates or what paths a scanner probes.
func routeLabel(r *http.Request) string {
	if p, ok := strings.CutPrefix(r.URL.Path, "/v1/jobs/"); ok && p != "" && p != "advance" {
		return "/v1/jobs/{id}"
	}
	switch r.URL.Path {
	case "/v1/ppa", "/v1/jobs", "/v1/jobs/advance", "/v1/healthz", "/v1/drain", "/v1/undrain", "/v1/spans":
		return r.URL.Path
	}
	return "other"
}

// SetDraining flips the worker's drain state. Draining is reversible: a
// shard taken out for maintenance rejoins with its caches warm.
func (s *Server) SetDraining(d bool) { s.draining.Store(d) }

// Draining reports whether the worker is draining.
func (s *Server) Draining() bool { return s.draining.Load() }

// health is the current HealthResponse.
func (s *Server) health() HealthResponse {
	st := StatusOK
	if s.Draining() {
		st = StatusDraining
	}
	return HealthResponse{Status: st, Jobs: s.JobCount()}
}

// drainRetryAfterSeconds is the backoff a draining worker advertises on
// refused work: long enough that a retrying client lands after the router's
// next health-probe round has re-hashed the shard's key range.
const drainRetryAfterSeconds = 1

// refuseDraining answers a request refused because the worker is draining:
// 503 with Retry-After, the shed contract clients and routers understand
// (the dist client retries it on every route after the advertised delay).
func refuseDraining(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(drainRetryAfterSeconds))
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "worker draining"})
}

func (s *Server) handlePPA(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		refuseDraining(w)
		return
	}
	sp := disttrace.StartFromHeader(r.Header, "shard", "/v1/ppa")
	var req PPARequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		sp.End("error", nil)
		writeJSON(w, http.StatusBadRequest, PPAResponse{Error: "bad request: " + err.Error()})
		return
	}
	var resp PPAResponse
	switch req.Platform {
	case "spatial":
		if req.SpatialHW == nil || req.SpatialMapping == nil {
			sp.End("error", nil)
			writeJSON(w, http.StatusBadRequest, PPAResponse{Error: "spatial_hw and spatial_mapping required"})
			return
		}
		eng := disttrace.StartSpan("", sp.Context(), "engine", "maestro")
		met, err := s.spatial.Evaluate(*req.SpatialHW, *req.SpatialMapping, req.Layer)
		resp = ppaResponse(met, err, maestro.ErrInfeasible)
		eng.End(engineStatus(resp), nil)
	case "ascend":
		if req.AscendHW == nil || req.AscendMapping == nil {
			sp.End("error", nil)
			writeJSON(w, http.StatusBadRequest, PPAResponse{Error: "ascend_hw and ascend_mapping required"})
			return
		}
		eng := disttrace.StartSpan("", sp.Context(), "engine", "camodel")
		met, err := s.ascend.Evaluate(*req.AscendHW, *req.AscendMapping, req.Layer)
		resp = ppaResponse(met, err, camodel.ErrInfeasible)
		eng.End(engineStatus(resp), nil)
	default:
		sp.End("error", nil)
		writeJSON(w, http.StatusBadRequest, PPAResponse{Error: fmt.Sprintf("unknown platform %q", req.Platform)})
		return
	}
	sp.End("ok", nil)
	writeJSON(w, http.StatusOK, resp)
}

// engineStatus labels an engine span: an infeasible or failed evaluation is
// still an "ok" engine run at the tracing level only when it completed; the
// distinction the waterfall cares about is captured in the status string.
func engineStatus(resp PPAResponse) string {
	switch {
	case resp.Infeasible:
		return "infeasible"
	case resp.Error != "":
		return "error"
	}
	return "ok"
}

func ppaResponse(met ppa.Metrics, err error, infeasible error) PPAResponse {
	if err != nil {
		resp := PPAResponse{Error: err.Error()}
		if errors.Is(err, infeasible) {
			resp.Infeasible = true
		}
		return resp
	}
	return PPAResponse{Metrics: met}
}

func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		refuseDraining(w)
		return
	}
	sp := disttrace.StartFromHeader(r.Header, "shard", "/v1/jobs")
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		sp.End("error", nil)
		writeJSON(w, http.StatusBadRequest, JobCreateResponse{Error: "bad request: " + err.Error()})
		return
	}
	searcher, err := s.buildSearcher(spec)
	if err != nil {
		sp.End("error", nil)
		writeJSON(w, http.StatusBadRequest, JobCreateResponse{Error: err.Error()})
		return
	}
	defer sp.End("ok", nil)
	s.mu.Lock()
	s.nextID++
	id := "job-" + strconv.Itoa(s.nextID)
	s.jobs[id] = &serverJob{searcher: searcher}
	telemetry.DistJobs().Set(float64(len(s.jobs)))
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, JobCreateResponse{ID: id})
}

// handleDeleteJob frees a job's server-side state. Masters call it when the
// co-optimizer is done with a candidate, so worker memory stays bounded by
// the in-flight batch instead of growing with the whole search (the jobs
// map never shrank before this route existed).
func (s *Server) handleDeleteJob(w http.ResponseWriter, r *http.Request) {
	sp := disttrace.StartFromHeader(r.Header, "shard", "/v1/jobs/{id}")
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.jobs[id]
	delete(s.jobs, id)
	telemetry.DistJobs().Set(float64(len(s.jobs)))
	s.mu.Unlock()
	if !ok {
		sp.End("error", nil)
		writeJSON(w, http.StatusNotFound, JobDeleteResponse{ID: id, Error: "unknown job"})
		return
	}
	sp.End("ok", nil)
	writeJSON(w, http.StatusOK, JobDeleteResponse{ID: id, Deleted: true})
}

// JobCount returns how many jobs the worker currently holds.
func (s *Server) JobCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// buildSearcher materializes the job's network searcher from the spec.
func (s *Server) buildSearcher(spec JobSpec) (mapsearch.Searcher, error) {
	if len(spec.Networks) == 0 {
		return nil, fmt.Errorf("dist: job spec names no networks")
	}
	var layers []workload.Layer
	var name string
	for _, n := range spec.Networks {
		wl, err := workload.ByName(n)
		if err != nil {
			return nil, err
		}
		layers = append(layers, wl.Layers...)
		name += n + "+"
	}
	combined := workload.Workload{Name: name, Layers: layers}
	algo, err := parseAlgo(spec.Algo)
	if err != nil {
		return nil, err
	}
	switch spec.Platform {
	case "spatial":
		space, err := spatialSpace(spec.Scenario)
		if err != nil {
			return nil, err
		}
		if len(spec.X) != space.Dim() {
			return nil, fmt.Errorf("dist: x has %d coords, want %d", len(spec.X), space.Dim())
		}
		cfg := space.Decode(spec.X)
		return mapsearch.NewSpatialSearcher(s.spatial, cfg, combined, algo, spec.Seed), nil
	case "ascend":
		space := hw.NewAscendSpace()
		if len(spec.X) != space.Dim() {
			return nil, fmt.Errorf("dist: x has %d coords, want %d", len(spec.X), space.Dim())
		}
		cfg := space.Decode(spec.X)
		return mapsearch.NewAscendSearcher(s.ascend, cfg, combined, algo, spec.Seed), nil
	default:
		return nil, fmt.Errorf("dist: unknown platform %q", spec.Platform)
	}
}

func spatialSpace(scenario string) (*hw.SpatialSpace, error) {
	switch scenario {
	case "edge", "":
		return hw.NewSpatialSpace(hw.Edge), nil
	case "cloud":
		return hw.NewSpatialSpace(hw.Cloud), nil
	default:
		return nil, fmt.Errorf("dist: unknown scenario %q", scenario)
	}
}

func parseAlgo(a string) (mapsearch.Algo, error) {
	switch a {
	case "flextensor", "":
		return mapsearch.FlexTensorLike, nil
	case "gamma":
		return mapsearch.GammaLike, nil
	case "depthfirst":
		return mapsearch.DepthFirst, nil
	default:
		return 0, fmt.Errorf("dist: unknown algo %q", a)
	}
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	sp := disttrace.StartFromHeader(r.Header, "shard", "/v1/jobs/advance")
	var req AdvanceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		sp.End("error", nil)
		writeJSON(w, http.StatusBadRequest, JobState{Error: "bad request: " + err.Error()})
		return
	}
	s.mu.Lock()
	job := s.jobs[req.ID]
	s.mu.Unlock()
	if job == nil {
		sp.End("error", nil)
		writeJSON(w, http.StatusNotFound, JobState{ID: req.ID, Error: "unknown job"})
		return
	}
	if req.Budget < 0 {
		sp.End("error", nil)
		writeJSON(w, http.StatusBadRequest, JobState{ID: req.ID, Error: "negative budget"})
		return
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	// The engine span covers budget spend AND state assembly, and is
	// recorded even for budget-0 polls: unicotrace's chain-completeness
	// rule (every ok eval has an engine descendant) stays uniform.
	eng := disttrace.StartSpan("", sp.Context(), "engine", "advance")
	if req.Budget > 0 {
		job.searcher.Advance(req.Budget)
	}
	state := JobState{
		ID:      req.ID,
		Spent:   job.searcher.Spent(),
		History: job.searcher.History(),
		Raw:     job.searcher.RawHistory(),
	}
	if met, ok := job.searcher.Best(); ok {
		state.Best = met
		state.Feasible = true
	}
	eng.End("ok", map[string]string{"budget": strconv.Itoa(req.Budget)})
	sp.End("ok", nil)
	writeJSON(w, http.StatusOK, state)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
