package dist

import (
	"net/http"
	"sync"
	"time"
)

// FaultInjector wraps a worker handler with scriptable failures, so
// resilience tests can make a real httptest worker return 500s, hang past
// the client timeout, or reset connections mid-request — without touching
// the worker implementation.
//
// Faults are consumed in a fixed order (fail, then hang, then reset) one per
// request until the scripted counts are exhausted, after which requests pass
// through to the wrapped handler.
type FaultInjector struct {
	next http.Handler

	mu        sync.Mutex
	failNext  int
	hangNext  int
	hangFor   time.Duration
	resetNext int
	injected  int
}

// NewFaultInjector wraps next with an injector that initially injects
// nothing.
func NewFaultInjector(next http.Handler) *FaultInjector {
	return &FaultInjector{next: next}
}

// FailNext makes the next n requests answer 500 Internal Server Error.
func (f *FaultInjector) FailNext(n int) {
	f.mu.Lock()
	f.failNext += n
	f.mu.Unlock()
}

// HangNext makes the next n requests sleep for d before answering —
// long enough past the client timeout to simulate a wedged worker.
func (f *FaultInjector) HangNext(n int, d time.Duration) {
	f.mu.Lock()
	f.hangNext += n
	f.hangFor = d
	f.mu.Unlock()
}

// ResetNext makes the next n requests abort mid-response, which the client
// observes as a connection reset / unexpected EOF.
func (f *FaultInjector) ResetNext(n int) {
	f.mu.Lock()
	f.resetNext += n
	f.mu.Unlock()
}

// Injected returns how many faults have been injected so far.
func (f *FaultInjector) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// ServeHTTP injects the next scripted fault, or passes the request through.
func (f *FaultInjector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	switch {
	case f.failNext > 0:
		f.failNext--
		f.injected++
		f.mu.Unlock()
		http.Error(w, "injected fault", http.StatusInternalServerError)
		return
	case f.hangNext > 0:
		f.hangNext--
		f.injected++
		d := f.hangFor
		f.mu.Unlock()
		//unicolint:allow detclock the fault injector hangs the handler on purpose to exercise client timeouts
		time.Sleep(d)
		http.Error(w, "injected hang", http.StatusServiceUnavailable)
		return
	case f.resetNext > 0:
		f.resetNext--
		f.injected++
		f.mu.Unlock()
		// net/http translates this panic into an aborted connection, which
		// the client sees as a reset rather than a well-formed response.
		panic(http.ErrAbortHandler)
	}
	f.mu.Unlock()
	f.next.ServeHTTP(w, r)
}
