package dist

import (
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// FaultInjector wraps a worker handler with scriptable failures, so
// resilience tests can make a real httptest worker return 500s, hang past
// the client timeout, reset connections mid-request, or emit truncated
// garbage — without touching the worker implementation.
//
// Two scripting styles compose:
//
//   - Counted faults are consumed in a fixed order (down, then fail, then
//     hang, then reset, then corrupt) one per request until the scripted
//     counts are exhausted, after which requests pass through.
//   - Probabilistic faults (Probabilistic) draw each request's fate from a
//     seeded RNG, so chaos runs see an irregular but reproducible fault mix.
//
// SetDown models a killed process: every request resets until SetDown(false)
// "restarts" it.
type FaultInjector struct {
	next http.Handler

	mu          sync.Mutex
	down        bool
	failNext    int
	hangNext    int
	hangFor     time.Duration
	resetNext   int
	corruptNext int
	rng         *rand.Rand
	pFail       float64
	pReset      float64
	pCorrupt    float64
	injected    int
}

// NewFaultInjector wraps next with an injector that initially injects
// nothing.
func NewFaultInjector(next http.Handler) *FaultInjector {
	return &FaultInjector{next: next}
}

// FailNext makes the next n requests answer 500 Internal Server Error.
func (f *FaultInjector) FailNext(n int) {
	f.mu.Lock()
	f.failNext += n
	f.mu.Unlock()
}

// HangNext makes the next n requests sleep for d before answering —
// long enough past the client timeout to simulate a wedged worker.
func (f *FaultInjector) HangNext(n int, d time.Duration) {
	f.mu.Lock()
	f.hangNext += n
	f.hangFor = d
	f.mu.Unlock()
}

// ResetNext makes the next n requests abort mid-response, which the client
// observes as a connection reset / unexpected EOF.
func (f *FaultInjector) ResetNext(n int) {
	f.mu.Lock()
	f.resetNext += n
	f.mu.Unlock()
}

// CorruptNext makes the next n requests answer 200 OK with a truncated,
// malformed JSON body — the worker crashed mid-write, or a proxy mangled
// the response. Clients must treat the undecodable body as retryable, never
// cache it, and never surface it as an evaluation result.
func (f *FaultInjector) CorruptNext(n int) {
	f.mu.Lock()
	f.corruptNext += n
	f.mu.Unlock()
}

// SetDown kills (true) or restarts (false) the worker at the HTTP layer:
// while down, every request aborts with a connection reset. The wrapped
// handler's state survives — pair SetDown with swapping in a fresh handler
// to model a restart that also lost its in-memory state.
func (f *FaultInjector) SetDown(down bool) {
	f.mu.Lock()
	f.down = down
	f.mu.Unlock()
}

// Probabilistic draws each subsequent request's fate from a seeded RNG:
// with probability pFail it answers 500, pReset it resets the connection,
// pCorrupt it emits a truncated body (checked in that order; the
// probabilities are independent coin flips, not a distribution). The same
// seed and request order reproduce the same fault sequence. Zero
// probabilities with any seed turn probabilistic faults off.
func (f *FaultInjector) Probabilistic(seed int64, pFail, pReset, pCorrupt float64) {
	f.mu.Lock()
	f.rng = rand.New(rand.NewSource(seed))
	f.pFail, f.pReset, f.pCorrupt = pFail, pReset, pCorrupt
	f.mu.Unlock()
}

// Injected returns how many faults have been injected so far.
func (f *FaultInjector) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// faultKind is the decision ServeHTTP makes under the injector lock.
type faultKind int

const (
	faultNone faultKind = iota
	faultFail
	faultHang
	faultReset
	faultCorrupt
)

// decide consumes the next scripted or drawn fault. Callers must hold f.mu.
func (f *FaultInjector) decide() (faultKind, time.Duration) {
	switch {
	case f.down:
		// Not counted in injected: "down" is a state, not a scripted budget.
		return faultReset, 0
	case f.failNext > 0:
		f.failNext--
		f.injected++
		return faultFail, 0
	case f.hangNext > 0:
		f.hangNext--
		f.injected++
		return faultHang, f.hangFor
	case f.resetNext > 0:
		f.resetNext--
		f.injected++
		return faultReset, 0
	case f.corruptNext > 0:
		f.corruptNext--
		f.injected++
		return faultCorrupt, 0
	}
	if f.rng != nil {
		switch {
		case f.pFail > 0 && f.rng.Float64() < f.pFail:
			f.injected++
			return faultFail, 0
		case f.pReset > 0 && f.rng.Float64() < f.pReset:
			f.injected++
			return faultReset, 0
		case f.pCorrupt > 0 && f.rng.Float64() < f.pCorrupt:
			f.injected++
			return faultCorrupt, 0
		}
	}
	return faultNone, 0
}

// ServeHTTP injects the next scripted fault, or passes the request through.
func (f *FaultInjector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	kind, hang := f.decide()
	f.mu.Unlock()
	switch kind {
	case faultFail:
		http.Error(w, "injected fault", http.StatusInternalServerError)
	case faultHang:
		//unicolint:allow detclock the fault injector hangs the handler on purpose to exercise client timeouts
		time.Sleep(hang)
		http.Error(w, "injected hang", http.StatusServiceUnavailable)
	case faultReset:
		// net/http translates this panic into an aborted connection, which
		// the client sees as a reset rather than a well-formed response.
		panic(http.ErrAbortHandler)
	case faultCorrupt:
		w.Header().Set("Content-Type", "application/json")
		// A syntactically broken prefix of a plausible response: decoding
		// must fail no matter which route's schema the client expects.
		_, _ = w.Write([]byte(`{"metrics":{"latency_ms":12.`))
	default:
		f.next.ServeHTTP(w, r)
	}
}
