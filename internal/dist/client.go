package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"unico/internal/ppa"
)

// Client talks to one worker node.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the worker at base (e.g.
// "http://worker-1:8080"). A nil httpClient uses http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, hc: httpClient}
}

// Base returns the worker's base URL.
func (c *Client) Base() string { return c.base }

// post sends req as JSON and decodes the response into resp.
func (c *Client) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("dist: marshal %s: %w", path, err)
	}
	httpResp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("dist: post %s: %w", path, err)
	}
	defer httpResp.Body.Close()
	if err := json.NewDecoder(httpResp.Body).Decode(resp); err != nil {
		return fmt.Errorf("dist: decode %s: %w", path, err)
	}
	return nil
}

// EvaluatePPA evaluates one (hardware, mapping, layer) triple remotely.
func (c *Client) EvaluatePPA(req PPARequest) (PPAResponse, error) {
	var resp PPAResponse
	if err := c.post("/v1/ppa", req, &resp); err != nil {
		return PPAResponse{}, err
	}
	return resp, nil
}

// CreateJob creates a mapping-search job on the worker.
func (c *Client) CreateJob(spec JobSpec) (string, error) {
	var resp JobCreateResponse
	if err := c.post("/v1/jobs", spec, &resp); err != nil {
		return "", err
	}
	if resp.Error != "" {
		return "", fmt.Errorf("dist: create job: %s", resp.Error)
	}
	return resp.ID, nil
}

// AdvanceJob spends budget on a job and returns its state (budget 0 just
// polls).
func (c *Client) AdvanceJob(id string, budget int) (JobState, error) {
	var state JobState
	if err := c.post("/v1/jobs/advance", AdvanceRequest{ID: id, Budget: budget}, &state); err != nil {
		return JobState{}, err
	}
	if state.Error != "" {
		return JobState{}, fmt.Errorf("dist: advance job %s: %s", id, state.Error)
	}
	return state, nil
}

// DeleteJob releases a finished job's state on the worker.
func (c *Client) DeleteJob(id string) error {
	req, err := http.NewRequest(http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return fmt.Errorf("dist: delete job %s: %w", id, err)
	}
	httpResp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("dist: delete job %s: %w", id, err)
	}
	defer httpResp.Body.Close()
	var resp JobDeleteResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return fmt.Errorf("dist: decode delete %s: %w", id, err)
	}
	if resp.Error != "" {
		return fmt.Errorf("dist: delete job %s: %s", id, resp.Error)
	}
	return nil
}

// Healthy reports whether the worker answers its health endpoint.
func (c *Client) Healthy() bool {
	resp, err := c.hc.Get(c.base + "/v1/healthz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// remoteJob adapts a worker-side job to the mapsearch.Searcher interface, so
// the master's successive-halving scheduler drives remote jobs exactly like
// local ones.
type remoteJob struct {
	client *Client
	id     string
	state  JobState
	err    error
	closed bool
}

// NewRemoteJob creates a job on the worker and returns its master-side
// handle.
func NewRemoteJob(client *Client, spec JobSpec) (*remoteJob, error) {
	id, err := client.CreateJob(spec)
	if err != nil {
		return nil, err
	}
	return &remoteJob{client: client, id: id}, nil
}

// Advance spends budget on the remote job. Transport errors latch: the job
// reports no feasible result afterwards, which the co-optimizer treats as an
// infeasible candidate rather than crashing the whole search.
func (j *remoteJob) Advance(budget int) {
	if j.err != nil {
		return
	}
	state, err := j.client.AdvanceJob(j.id, budget)
	if err != nil {
		j.err = err
		return
	}
	j.state = state
}

// History returns the last-seen remote history.
func (j *remoteJob) History() ppa.History { return j.state.History }

// RawHistory returns the last-seen remote raw sample trajectory.
func (j *remoteJob) RawHistory() ppa.History { return j.state.Raw }

// Spent returns the last-seen remote budget spent.
func (j *remoteJob) Spent() int { return j.state.Spent }

// Best returns the last-seen remote best metrics.
func (j *remoteJob) Best() (ppa.Metrics, bool) {
	if j.err != nil || !j.state.Feasible {
		return ppa.Metrics{}, false
	}
	return j.state.Best, true
}

// Err returns the latched transport error, if any.
func (j *remoteJob) Err() error { return j.err }

// Close deletes the job's worker-side state. The co-optimizer calls it once
// a candidate's search is complete, so worker memory stays bounded by the
// in-flight batch. Idempotent; the last-seen state remains readable.
func (j *remoteJob) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	return j.client.DeleteJob(j.id)
}
