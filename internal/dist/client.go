package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"unico/internal/camodel"
	"unico/internal/disttrace"
	"unico/internal/evalcache"
	"unico/internal/maestro"
	"unico/internal/perfprof"
	"unico/internal/ppa"
	"unico/internal/runid"
	"unico/internal/telemetry"
)

// Defaults for client resilience knobs (see Options).
const (
	// DefaultTimeout bounds every worker request when no *http.Client is
	// supplied. Without it a single dead worker (accepted TCP connection,
	// never answering) stalls the master's co-search forever.
	DefaultTimeout = 30 * time.Second
	// DefaultRetryBackoff is the first retry delay; each retry doubles it.
	DefaultRetryBackoff = 50 * time.Millisecond
	// DefaultMaxBackoff caps the exponential retry delay.
	DefaultMaxBackoff = 2 * time.Second
)

// Options tunes a Client's resilience behavior. The zero value means:
// DefaultTimeout, no retries, no cache.
type Options struct {
	// Timeout bounds each request when NewClientOptions builds the transport
	// itself (ignored when an explicit *http.Client is passed).
	// <= 0 means DefaultTimeout.
	Timeout time.Duration
	// MaxRetries is how many times an idempotent request (EvaluatePPA) is
	// retried after a retryable failure — 5xx status, transport error, or
	// truncated response. Non-idempotent routes (CreateJob, AdvanceJob) are
	// never retried after such ambiguous failures: a retry could create a
	// duplicate job or spend budget twice. The one exception on every route
	// is a load shed (429/503 with Retry-After): the server rejected the
	// request before processing it, so a retry is unambiguous and waits out
	// the advertised delay, capped by MaxBackoff.
	MaxRetries int
	// RetryBackoff is the initial retry delay (doubling per retry, with
	// jitter). <= 0 means DefaultRetryBackoff.
	RetryBackoff time.Duration
	// MaxBackoff caps the delay between retries. <= 0 means DefaultMaxBackoff.
	MaxBackoff time.Duration
	// Cache, when non-nil, serves EvaluatePPA from a content-addressed
	// evaluation cache, skipping the network round trip entirely on a hit.
	// Transport errors are never cached.
	Cache *evalcache.Cache
}

// Client talks to one worker node.
type Client struct {
	base string
	hc   *http.Client
	opts Options
}

// NewClient builds a client for the worker at base (e.g.
// "http://worker-1:8080"). A nil httpClient gets a transport bounded by
// DefaultTimeout — never the timeout-less http.DefaultClient, which would
// hang forever on a dead worker. Pass an explicit *http.Client (or use
// NewClientOptions) to override the timeout.
func NewClient(base string, httpClient *http.Client) *Client {
	return NewClientOptions(base, httpClient, Options{})
}

// NewClientOptions builds a client with explicit resilience options. A nil
// httpClient gets a transport bounded by opts.Timeout (DefaultTimeout when
// unset); a non-nil one is used as-is and owns its own timeout.
func NewClientOptions(base string, httpClient *http.Client, opts Options) *Client {
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = DefaultRetryBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = DefaultMaxBackoff
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if httpClient == nil {
		httpClient = &http.Client{Timeout: opts.Timeout}
	}
	return &Client{base: base, hc: httpClient, opts: opts}
}

// Base returns the worker's base URL.
func (c *Client) Base() string { return c.base }

// retryableError marks a failure that is safe and worthwhile to retry on an
// idempotent route: the request may never have reached the worker (transport
// error), the worker declared itself broken (5xx), or the response was cut
// off mid-body (decode error).
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

func retryable(err error) error { return &retryableError{err: err} }

// shedError is a load-shed response: 429 Too Many Requests or
// 503 Service Unavailable, rejected by the fleet router or a draining
// worker *before* any processing happened. That pre-processing guarantee is
// what makes a shed safe to retry even on non-idempotent routes — nothing
// was created and no budget was spent. retryAfter carries the server's
// advertised backoff and advertised whether the header parsed at all; the
// client clamps an advertised delay into [RetryBackoff, MaxBackoff] (see
// retryDelay), so a zero, negative, or past-dated advertisement cannot turn
// the retry loop into a zero-sleep spin.
type shedError struct {
	path       string
	status     string
	retryAfter time.Duration
	advertised bool
}

func (e *shedError) Error() string {
	return fmt.Sprintf("dist: post %s: shed with %s (retry after %v)", e.path, e.status, e.retryAfter)
}

// parseRetryAfter parses a Retry-After header value: delay seconds
// (RFC 9110 §10.2.3) or an absolute HTTP-date. ok is false only on absent
// or malformed values. Degenerate-but-parseable advertisements — zero or
// negative seconds, HTTP-dates in the past — return (0, true): the server
// did answer, and retryDelay clamps the zero up to the base backoff rather
// than retrying in a hot loop against an already-overloaded server.
func parseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, true
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := time.Until(t) //unicolint:allow detclock absolute Retry-After dates are defined against the real clock
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// retryDelay picks the wait before the next retry: jittered exponential
// backoff by default, or — when the shed advertised a parseable
// Retry-After — the advertised delay clamped into
// [RetryBackoff, MaxBackoff]. The lower clamp is load-bearing: a server
// advertising "0", a negative value, or a stale HTTP-date must still buy
// itself at least one base backoff of breathing room.
func (c *Client) retryDelay(backoff time.Duration, err error) time.Duration {
	jittered := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1)) //unicolint:allow detclock retry-backoff jitter; search spend is counted in evaluations, not wall time
	var shed *shedError
	if !errors.As(err, &shed) || !shed.advertised {
		return jittered
	}
	d := shed.retryAfter
	if d < c.opts.RetryBackoff {
		d = c.opts.RetryBackoff
	}
	if d > c.opts.MaxBackoff {
		d = c.opts.MaxBackoff
	}
	return d
}

// do sends one POST and decodes the JSON response, classifying failures as
// retryable or not. 4xx responses carry a JSON error body the caller
// inspects, so they decode normally and are never retried. The request is
// bound to ctx, so cancellation aborts an in-flight round trip promptly.
// parent, when valid, rides along as trace headers so the receiving hop's
// spans nest under this attempt.
func (c *Client) do(ctx context.Context, path string, body []byte, resp any, parent disttrace.SpanContext) error {
	_, span := perfprof.Start(ctx, "dist.transport")
	defer span.End()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("dist: build request %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	// Correlate every worker request with the client's run, so a ppaserver
	// request log line is attributable to the exact co-search that issued it.
	if id := runid.Current(); id != "" {
		req.Header.Set(runid.Header, id)
	}
	disttrace.Inject(req.Header, parent)
	httpResp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// Deliberate cancellation is never retryable.
			return fmt.Errorf("dist: post %s: %w", path, ctx.Err())
		}
		return retryable(fmt.Errorf("dist: post %s: %w", path, err))
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode == http.StatusTooManyRequests || httpResp.StatusCode == http.StatusServiceUnavailable {
		// Load shed (fleet router queue-full, draining worker): honor the
		// advertised Retry-After instead of treating it as a generic failure.
		delay, ok := parseRetryAfter(httpResp.Header.Get("Retry-After"))
		return retryable(&shedError{path: path, status: httpResp.Status, retryAfter: delay, advertised: ok})
	}
	if httpResp.StatusCode >= 500 {
		return retryable(fmt.Errorf("dist: post %s: worker returned %s", path, httpResp.Status))
	}
	if err := json.NewDecoder(httpResp.Body).Decode(resp); err != nil {
		return retryable(fmt.Errorf("dist: decode %s: %w", path, err))
	}
	return nil
}

// post sends req as JSON and decodes the response into resp. The route may
// not be idempotent, so genuine failures are never retried — but load sheds
// (429/503 with Retry-After, see shedError) are rejected before any
// processing and retry safely on every route, up to MaxRetries.
func (c *Client) post(ctx context.Context, path string, req, resp any) error {
	return c.send(ctx, path, req, resp, func(err error) bool {
		var shed *shedError
		return errors.As(err, &shed)
	})
}

// postIdempotent is post with up to MaxRetries retries on every retryable
// failure (transport errors, 5xx, truncated responses, sheds), backing off
// exponentially with jitter so a pool of masters does not hammer a
// recovering worker in lockstep. Cancelling ctx aborts both in-flight
// requests and backoff sleeps.
func (c *Client) postIdempotent(ctx context.Context, path string, req, resp any) error {
	return c.send(ctx, path, req, resp, func(err error) bool {
		var r *retryableError
		return errors.As(err, &r)
	})
}

// send is the shared retry loop: failures selected by retryOn are retried
// up to MaxRetries times. The delay between attempts is exponential with
// jitter, except after a load shed that advertised Retry-After — then the
// advertised delay is honored clamped into [RetryBackoff, MaxBackoff], so
// a misbehaving server can neither park the client for minutes nor spin it
// (see retryDelay).
//
// When tracing is enabled the whole logical call is one "client" span, each
// HTTP try an "attempt" child (whose context is what propagates to the
// server), and each retry wait a "backoff" child.
func (c *Client) send(ctx context.Context, path string, req, resp any, retryOn func(error) bool) error {
	_, ser := perfprof.Start(ctx, "dist.serialize")
	body, err := json.Marshal(req)
	ser.End()
	if err != nil {
		return fmt.Errorf("dist: marshal %s: %w", path, err)
	}
	span := disttrace.StartSpan(runid.Current(), disttrace.CurrentParent(), "client", path)
	backoff := c.opts.RetryBackoff
	for attempt := 0; ; attempt++ {
		att := disttrace.StartSpan("", span.Context(), "attempt", path)
		err := c.do(ctx, path, body, resp, att.Context())
		att.End(spanStatus(err), nil)
		if err == nil || attempt >= c.opts.MaxRetries || !retryOn(err) {
			span.End(spanStatus(err), map[string]string{"attempts": strconv.Itoa(attempt + 1)})
			return err
		}
		telemetry.DistRetries().Inc()
		delay := c.retryDelay(backoff, err)
		wait := perfprof.NewTimer()
		bo := disttrace.StartSpan("", span.Context(), "backoff", path)
		timer := time.NewTimer(delay) //unicolint:allow detclock retry backoff waits real time between attempts; results stay deterministic
		select {
		case <-ctx.Done():
			timer.Stop()
			wait.ObserveVolatileAs("dist.retry_wait")
			bo.End("canceled", nil)
			span.End("canceled", nil)
			return fmt.Errorf("dist: post %s: %w", path, ctx.Err())
		case <-timer.C:
		}
		bo.End("ok", nil)
		wait.ObserveVolatileAs("dist.retry_wait")
		if backoff *= 2; backoff > c.opts.MaxBackoff {
			backoff = c.opts.MaxBackoff
		}
	}
}

// spanStatus maps a client-side error to a span status label.
func spanStatus(err error) string {
	if err == nil {
		return "ok"
	}
	var shed *shedError
	if errors.As(err, &shed) {
		return "shed"
	}
	var r *retryableError
	if errors.As(err, &r) {
		return "retryable"
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return "canceled"
	}
	return "error"
}

// EvaluatePPA evaluates one (hardware, mapping, layer) triple remotely with
// a background context; see EvaluatePPAContext.
func (c *Client) EvaluatePPA(req PPARequest) (PPAResponse, error) {
	//unicolint:allow ctxflow compatibility wrapper for the Platform interface; context-aware callers use EvaluatePPAContext
	return c.EvaluatePPAContext(context.Background(), req)
}

// EvaluatePPAContext evaluates one (hardware, mapping, layer) triple
// remotely. The route is a pure function of the request, so it retries on
// retryable failures and, when Options.Cache is set, serves repeats from the
// content-addressed cache without touching the network. The returned error
// covers transport only; evaluation failures arrive in PPAResponse.Error.
// Cancelling ctx aborts in-flight requests and retry backoffs.
func (c *Client) EvaluatePPAContext(ctx context.Context, req PPARequest) (PPAResponse, error) {
	if c.opts.Cache == nil {
		return c.evaluatePPA(ctx, req)
	}
	key, engine, ok := cacheKeyFor(&req)
	if !ok {
		return c.evaluatePPA(ctx, req)
	}
	met, err := c.opts.Cache.Do(key, engine, func() (ppa.Metrics, error) {
		resp, err := c.evaluatePPA(ctx, req)
		if err != nil {
			// A network failure says nothing about the triple — do not cache.
			return ppa.Metrics{}, evalcache.Uncachable(err)
		}
		if resp.Error != "" {
			return ppa.Metrics{}, newRemoteEvalError(resp, engine)
		}
		return resp.Metrics, nil
	})
	if err == nil {
		return PPAResponse{Metrics: met}, nil
	}
	var re *remoteEvalError
	switch {
	case errors.As(err, &re):
		return PPAResponse{Error: re.msg, Infeasible: re.sentinel != nil}, nil
	case errors.Is(err, maestro.ErrInfeasible), errors.Is(err, camodel.ErrInfeasible):
		// Infeasibility reloaded from a persisted cache file.
		return PPAResponse{Error: err.Error(), Infeasible: true}, nil
	}
	return PPAResponse{}, err
}

func (c *Client) evaluatePPA(ctx context.Context, req PPARequest) (PPAResponse, error) {
	start := time.Now() //unicolint:allow detclock host-side eval-latency metric on the remote transport path
	defer func() { telemetry.PPAEvalSeconds("dist").Observe(time.Since(start).Seconds()) }()
	var resp PPAResponse
	if err := c.postIdempotent(ctx, "/v1/ppa", req, &resp); err != nil {
		return PPAResponse{}, err
	}
	return resp, nil
}

// remoteEvalError carries a worker-reported evaluation failure through the
// client-side cache so the PPAResponse can be reconstructed on a hit.
type remoteEvalError struct {
	msg      string
	sentinel error // the engine's ErrInfeasible, or nil
}

func (e *remoteEvalError) Error() string { return e.msg }

// Unwrap exposes the infeasibility sentinel so errors.Is — and JSONL
// persistence of the cache — see the failure kind.
func (e *remoteEvalError) Unwrap() error { return e.sentinel }

func newRemoteEvalError(resp PPAResponse, engine string) *remoteEvalError {
	e := &remoteEvalError{msg: resp.Error}
	if resp.Infeasible {
		switch engine {
		case evalcache.EngineMaestro:
			e.sentinel = maestro.ErrInfeasible
		case evalcache.EngineCAModel:
			e.sentinel = camodel.ErrInfeasible
		}
	}
	return e
}

// CanonicalEvalKey returns the content address of a PPA request — the same
// SHA-256 key the evaluation cache uses, which makes it the coordinate the
// fleet router consistent-hashes on (so repeats of a triple land on the
// shard whose LRU already holds it). The engine name is "maestro" or
// "camodel"; ok is false for malformed requests.
func CanonicalEvalKey(req *PPARequest) (evalcache.Key, string, bool) {
	return cacheKeyFor(req)
}

// cacheKeyFor derives the content address of a PPA request; ok is false for
// malformed requests, which skip the cache and let the worker report the
// error.
func cacheKeyFor(req *PPARequest) (evalcache.Key, string, bool) {
	switch req.Platform {
	case "spatial":
		if req.SpatialHW == nil || req.SpatialMapping == nil {
			return evalcache.Key{}, "", false
		}
		m := req.SpatialMapping.Canon(req.Layer)
		return evalcache.SpatialKey(*req.SpatialHW, m, req.Layer), evalcache.EngineMaestro, true
	case "ascend":
		if req.AscendHW == nil || req.AscendMapping == nil {
			return evalcache.Key{}, "", false
		}
		m := req.AscendMapping.Canon(req.Layer)
		return evalcache.AscendKey(*req.AscendHW, m, req.Layer), evalcache.EngineCAModel, true
	}
	return evalcache.Key{}, "", false
}

// CreateJob creates a mapping-search job on the worker with a background
// context; see CreateJobContext.
func (c *Client) CreateJob(spec JobSpec) (string, error) {
	//unicolint:allow ctxflow compatibility wrapper; context-aware callers use CreateJobContext
	return c.CreateJobContext(context.Background(), spec)
}

// CreateJobContext creates a mapping-search job on the worker. Not retried:
// after an ambiguous failure a retry could leave an orphaned duplicate job.
func (c *Client) CreateJobContext(ctx context.Context, spec JobSpec) (string, error) {
	var resp JobCreateResponse
	if err := c.post(ctx, "/v1/jobs", spec, &resp); err != nil {
		return "", err
	}
	if resp.Error != "" {
		return "", fmt.Errorf("dist: create job: %s", resp.Error)
	}
	return resp.ID, nil
}

// AdvanceJob spends budget on a job with a background context; see
// AdvanceJobContext.
func (c *Client) AdvanceJob(id string, budget int) (JobState, error) {
	//unicolint:allow ctxflow compatibility wrapper; context-aware callers use AdvanceJobContext
	return c.AdvanceJobContext(context.Background(), id, budget)
}

// AdvanceJobContext spends budget on a job and returns its state (budget 0
// just polls). Not retried: a retry after an ambiguous failure could spend
// the budget twice.
func (c *Client) AdvanceJobContext(ctx context.Context, id string, budget int) (JobState, error) {
	var state JobState
	if err := c.post(ctx, "/v1/jobs/advance", AdvanceRequest{ID: id, Budget: budget}, &state); err != nil {
		return JobState{}, err
	}
	if state.Error != "" {
		return JobState{}, fmt.Errorf("dist: advance job %s: %s", id, state.Error)
	}
	return state, nil
}

// DeleteJob releases a finished job's state on the worker with a background
// context; see DeleteJobContext.
func (c *Client) DeleteJob(id string) error {
	//unicolint:allow ctxflow compatibility wrapper mirroring CreateJob/AdvanceJob; context-aware callers use DeleteJobContext
	return c.DeleteJobContext(context.Background(), id)
}

// DeleteJobContext releases a finished job's state on the worker.
// Cancelling ctx aborts the in-flight request; the delete is idempotent on
// the worker, so a caller may safely retry after a cancellation.
func (c *Client) DeleteJobContext(ctx context.Context, id string) error {
	span := disttrace.StartSpan(runid.Current(), disttrace.CurrentParent(), "client", "/v1/jobs/{id}")
	err := c.deleteJob(ctx, id, span.Context())
	span.End(spanStatus(err), nil)
	return err
}

func (c *Client) deleteJob(ctx context.Context, id string, parent disttrace.SpanContext) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return fmt.Errorf("dist: delete job %s: %w", id, err)
	}
	if rid := runid.Current(); rid != "" {
		req.Header.Set(runid.Header, rid)
	}
	disttrace.Inject(req.Header, parent)
	httpResp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("dist: delete job %s: %w", id, err)
	}
	defer httpResp.Body.Close()
	var resp JobDeleteResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return fmt.Errorf("dist: decode delete %s: %w", id, err)
	}
	if resp.Error != "" {
		return fmt.Errorf("dist: delete job %s: %s", id, resp.Error)
	}
	return nil
}

// Healthy reports whether the worker answers its health endpoint and is
// accepting new work (a draining worker answers but reports "draining", and
// must not be handed new jobs).
func (c *Client) Healthy() bool {
	h, err := c.Health()
	return err == nil && h.Status == StatusOK
}

// Health fetches the worker's health status with a background context; see
// HealthContext.
func (c *Client) Health() (HealthResponse, error) {
	//unicolint:allow ctxflow compatibility wrapper; context-aware callers (the fleet router's probes) use HealthContext
	return c.HealthContext(context.Background())
}

// HealthContext fetches the worker's health status. Cancelling ctx aborts
// the probe — health checks against a wedged worker must not outlive the
// prober's own deadline.
func (c *Client) HealthContext(ctx context.Context) (HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return HealthResponse{}, fmt.Errorf("dist: health %s: %w", c.base, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return HealthResponse{}, fmt.Errorf("dist: health %s: %w", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return HealthResponse{}, fmt.Errorf("dist: health %s: %s", c.base, resp.Status)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return HealthResponse{}, fmt.Errorf("dist: health %s: %w", c.base, err)
	}
	return h, nil
}

// remoteJob adapts a worker-side job to the mapsearch.Searcher interface, so
// the master's successive-halving scheduler drives remote jobs exactly like
// local ones.
type remoteJob struct {
	client *Client
	id     string
	state  JobState
	err    error
	closed bool
}

// NewRemoteJob creates a job on the worker and returns its master-side
// handle.
func NewRemoteJob(client *Client, spec JobSpec) (*remoteJob, error) {
	id, err := client.CreateJob(spec)
	if err != nil {
		return nil, err
	}
	return &remoteJob{client: client, id: id}, nil
}

// Advance spends budget on the remote job. Transport errors latch: the job
// reports no feasible result afterwards, which the co-optimizer treats as an
// infeasible candidate rather than crashing the whole search.
func (j *remoteJob) Advance(budget int) {
	//unicolint:allow ctxflow compatibility wrapper for the mapsearch.Searcher interface; the scheduler drives AdvanceContext
	j.AdvanceContext(context.Background(), budget)
}

// AdvanceContext implements mapsearch.ContextAdvancer: cancelling ctx aborts
// the in-flight worker round trip. A cancellation does not latch — the job
// stays usable, so a resumed run can keep driving it.
func (j *remoteJob) AdvanceContext(ctx context.Context, budget int) {
	if j.err != nil || ctx.Err() != nil {
		return
	}
	state, err := j.client.AdvanceJobContext(ctx, j.id, budget)
	if err != nil {
		if ctx.Err() == nil {
			// The candidate's remaining budget is unrecoverable: the
			// co-optimizer will score it infeasible. Counted so the chaos
			// gates can assert a fleet run lost nothing.
			telemetry.DistLostEvals().Inc()
			j.err = err
		}
		return
	}
	j.state = state
}

// History returns the last-seen remote history.
func (j *remoteJob) History() ppa.History { return j.state.History }

// RawHistory returns the last-seen remote raw sample trajectory.
func (j *remoteJob) RawHistory() ppa.History { return j.state.Raw }

// Spent returns the last-seen remote budget spent.
func (j *remoteJob) Spent() int { return j.state.Spent }

// Best returns the last-seen remote best metrics.
func (j *remoteJob) Best() (ppa.Metrics, bool) {
	if j.err != nil || !j.state.Feasible {
		return ppa.Metrics{}, false
	}
	return j.state.Best, true
}

// Err returns the latched transport error, if any.
func (j *remoteJob) Err() error { return j.err }

// Close deletes the job's worker-side state. The co-optimizer calls it once
// a candidate's search is complete, so worker memory stays bounded by the
// in-flight batch. Idempotent; the last-seen state remains readable.
func (j *remoteJob) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	return j.client.DeleteJob(j.id)
}
