package dist

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"unico/internal/hw"
	"unico/internal/mapping"
	"unico/internal/runid"
	"unico/internal/telemetry"
	"unico/internal/workload"
)

// TestClientPropagatesRunID pins the cross-boundary correlation contract:
// every request a dist client issues carries the process run ID in the
// X-Unico-Run-ID header, and the worker's handler counts requests under that
// run ID — so a ppaserver log line or metric is attributable to the exact
// co-search run that caused it.
func TestClientPropagatesRunID(t *testing.T) {
	const id = "testrun01"
	prev := runid.Current()
	runid.Set(id)
	defer runid.Set(prev)

	var mu sync.Mutex
	var seen []string
	inner := NewServer().Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get(runid.Header))
		mu.Unlock()
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())

	before := telemetry.DistRunRequests(id).Value()

	l := workload.Conv("c", 16, 8, 14, 14, 3, 3, 1, 1)
	cfg := hw.Spatial{PEX: 4, PEY: 4, L1Bytes: 1728, L2KB: 432, NoCBW: 128, Dataflow: hw.WeightStationary}
	m := mapping.Spatial{TK: 1, TC: 1, TY: 1, TX: 1, TR: 1, TS: 1,
		SpatX: mapping.DimK, SpatY: mapping.DimY}.Canon(l)
	if _, err := c.EvaluatePPA(PPARequest{
		Platform: "spatial", SpatialHW: &cfg, SpatialMapping: &m, Layer: l,
	}); err != nil {
		t.Fatal(err)
	}
	space := hw.NewSpatialSpace(hw.Edge)
	x := space.Encode(hw.Spatial{PEX: 6, PEY: 6, L1Bytes: 1728, L2KB: 432, NoCBW: 128})
	jobID, err := c.CreateJob(JobSpec{Platform: "spatial", Scenario: "edge",
		Networks: []string{"MobileNetV3-S"}, X: x, Algo: "flextensor", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = c.DeleteJob(jobID)

	mu.Lock()
	defer mu.Unlock()
	if len(seen) < 3 {
		t.Fatalf("captured %d requests, want >= 3 (ppa, job create, job delete)", len(seen))
	}
	for i, h := range seen {
		if h != id {
			t.Errorf("request %d carried run ID %q, want %q", i, h, id)
		}
	}
	if got := telemetry.DistRunRequests(id).Value(); got < before+uint64(len(seen)) {
		t.Errorf("unico_dist_run_requests_total{run_id=%s} = %d, want >= %d", id, got, before+uint64(len(seen)))
	}
}

// TestRunIDHeaderAbsentWithoutProcessID: with no process run ID installed,
// clients send no header and the server folds the count under "unknown".
func TestRunIDHeaderAbsentWithoutProcessID(t *testing.T) {
	prev := runid.Current()
	runid.Set("")
	defer runid.Set(prev)

	var got string
	hit := false
	inner := NewServer().Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get(runid.Header)
		hit = true
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	before := telemetry.DistRunRequests("").Value()
	if !NewClient(srv.URL, srv.Client()).Healthy() {
		t.Fatal("worker not healthy")
	}
	if !hit {
		t.Fatal("no request captured")
	}
	if got != "" {
		t.Errorf("header sent without a process run ID: %q", got)
	}
	if after := telemetry.DistRunRequests("").Value(); after != before+1 {
		t.Errorf("unknown-run counter went %d -> %d, want +1", before, after)
	}
}
