package dist

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// hangingWorker answers nothing until the test ends: the worker accepted
// the connection and then wedged, the exact failure mode context
// cancellation exists to escape.
func hangingWorker(t *testing.T) *httptest.Server {
	t.Helper()
	done := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-done
	}))
	t.Cleanup(func() { close(done); srv.Close() })
	return srv
}

// Regression test for deleteJob building its request with http.NewRequest:
// the delete ignored cancellation entirely and a wedged worker pinned the
// master for the full transport timeout. DeleteJobContext must return as
// soon as its context does.
func TestDeleteJobContextCancelAbortsWedgedWorker(t *testing.T) {
	srv := hangingWorker(t)
	// A transport without its own timeout isolates what ctx contributes.
	c := NewClient(srv.URL, &http.Client{})

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.DeleteJobContext(ctx, "job-1")
	if err == nil {
		t.Fatal("DeleteJobContext against a wedged worker returned nil")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DeleteJobContext error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("DeleteJobContext took %v to honor a 50ms deadline", elapsed)
	}
}

// Regression test for Health using the client's bare Get: a health probe
// against a wedged worker outlived the prober's deadline. HealthContext
// must honor its context.
func TestHealthContextCancelAbortsWedgedWorker(t *testing.T) {
	srv := hangingWorker(t)
	c := NewClient(srv.URL, &http.Client{})

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.HealthContext(ctx)
	if err == nil {
		t.Fatal("HealthContext against a wedged worker returned nil")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("HealthContext error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("HealthContext took %v to honor a 50ms deadline", elapsed)
	}
}

// The compatibility wrappers must still work against a live worker — the
// context plumbing must not change observable behavior on the happy path.
func TestDeleteAndHealthWrappersStillWork(t *testing.T) {
	srv := httptest.NewServer(NewServer().Handler())
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, srv.Client())

	h, err := c.Health()
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status != StatusOK {
		t.Fatalf("Health status = %q, want %q", h.Status, StatusOK)
	}
	// Deleting an unknown job surfaces the worker's error body, proving the
	// request made the round trip.
	if err := c.DeleteJob("no-such-job"); err == nil {
		t.Fatal("DeleteJob of unknown job returned nil error")
	}
}
