package dist

import (
	"net/http/httptest"
	"testing"

	"unico/internal/core"
	"unico/internal/hw"
	"unico/internal/mapping"
	"unico/internal/workload"
)

func newWorker(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	srv := httptest.NewServer(NewServer().Handler())
	t.Cleanup(srv.Close)
	return srv, NewClient(srv.URL, srv.Client())
}

func TestHealthz(t *testing.T) {
	_, c := newWorker(t)
	if !c.Healthy() {
		t.Error("worker not healthy")
	}
	dead := NewClient("http://127.0.0.1:1", nil)
	if dead.Healthy() {
		t.Error("unreachable worker reported healthy")
	}
}

func TestPPAEndpointSpatial(t *testing.T) {
	_, c := newWorker(t)
	l := workload.Conv("c", 16, 8, 14, 14, 3, 3, 1, 1)
	cfg := hw.Spatial{PEX: 4, PEY: 4, L1Bytes: 1728, L2KB: 432, NoCBW: 128, Dataflow: hw.WeightStationary}
	m := mapping.Spatial{TK: 1, TC: 1, TY: 1, TX: 1, TR: 1, TS: 1,
		SpatX: mapping.DimK, SpatY: mapping.DimY}.Canon(l)
	resp, err := c.EvaluatePPA(PPARequest{
		Platform: "spatial", SpatialHW: &cfg, SpatialMapping: &m, Layer: l,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" || !resp.Metrics.Valid() {
		t.Fatalf("response: %+v", resp)
	}
}

func TestPPAEndpointInfeasibleFlag(t *testing.T) {
	_, c := newWorker(t)
	l := workload.Conv("c", 64, 64, 28, 28, 3, 3, 1, 1)
	cfg := hw.Spatial{PEX: 4, PEY: 4, L1Bytes: 4, L2KB: 1, NoCBW: 64, Dataflow: hw.WeightStationary}
	m := mapping.Spatial{TK: 8, TC: 8, TY: 4, TX: 4, TR: 3, TS: 3,
		SpatX: mapping.DimK, SpatY: mapping.DimY}.Canon(l)
	resp, err := c.EvaluatePPA(PPARequest{
		Platform: "spatial", SpatialHW: &cfg, SpatialMapping: &m, Layer: l,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Infeasible {
		t.Errorf("infeasible mapping not flagged: %+v", resp)
	}
}

func TestPPAEndpointAscend(t *testing.T) {
	_, c := newWorker(t)
	l := workload.Gemm("g", 64, 256, 64, 1)
	cfg := hw.DefaultAscend()
	m := mapping.Ascend{TM: cfg.CubeM, TK: cfg.CubeK, TN: cfg.CubeN, FuseDepth: 1}.Canon(l)
	resp, err := c.EvaluatePPA(PPARequest{
		Platform: "ascend", AscendHW: &cfg, AscendMapping: &m, Layer: l,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" || !resp.Metrics.Valid() {
		t.Fatalf("response: %+v", resp)
	}
}

func TestPPAEndpointBadRequests(t *testing.T) {
	_, c := newWorker(t)
	if resp, err := c.EvaluatePPA(PPARequest{Platform: "quantum"}); err != nil {
		t.Fatal(err)
	} else if resp.Error == "" {
		t.Error("unknown platform accepted")
	}
	if resp, err := c.EvaluatePPA(PPARequest{Platform: "spatial"}); err != nil {
		t.Fatal(err)
	} else if resp.Error == "" {
		t.Error("missing spatial payload accepted")
	}
}

func TestJobLifecycle(t *testing.T) {
	_, c := newWorker(t)
	space := hw.NewSpatialSpace(hw.Edge)
	x := space.Encode(hw.Spatial{PEX: 6, PEY: 6, L1Bytes: 1728, L2KB: 432, NoCBW: 128})
	id, err := c.CreateJob(JobSpec{
		Platform: "spatial", Scenario: "edge",
		Networks: []string{"MobileNetV3-S"}, X: x, Algo: "flextensor", Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.AdvanceJob(id, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Spent != 5 || len(st.History) != 5 {
		t.Errorf("state after 5 units: %+v", st)
	}
	if !st.Feasible || !st.Best.Valid() {
		t.Errorf("no feasible mapping: %+v", st)
	}
	// Poll without budget.
	st2, err := c.AdvanceJob(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Spent != 5 {
		t.Errorf("poll advanced the job: %+v", st2)
	}
	// Unknown job.
	if _, err := c.AdvanceJob("job-999", 1); err == nil {
		t.Error("unknown job accepted")
	}
}

func TestJobDelete(t *testing.T) {
	_, c := newWorker(t)
	space := hw.NewSpatialSpace(hw.Edge)
	x := space.Encode(hw.Spatial{PEX: 6, PEY: 6, L1Bytes: 1728, L2KB: 432, NoCBW: 128})
	id, err := c.CreateJob(JobSpec{
		Platform: "spatial", Scenario: "edge",
		Networks: []string{"MobileNetV3-S"}, X: x, Algo: "flextensor", Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteJob(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AdvanceJob(id, 1); err == nil {
		t.Error("deleted job still advanceable")
	}
	if err := c.DeleteJob(id); err == nil {
		t.Error("double delete not reported")
	}
	if err := c.DeleteJob("job-999"); err == nil {
		t.Error("unknown job delete not reported")
	}
}

func TestServerReleasesJobsAfterRun(t *testing.T) {
	// The co-optimizer closes remote jobs once a candidate is scored, so a
	// worker's job map stays empty between batches instead of growing for
	// the lifetime of the search (the leak this route was added to fix).
	s := NewServer()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, srv.Client())

	p, err := NewRemoteSpatialPlatform([]*Client{c}, hw.Edge, []string{"MobileNetV3-S"})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.UNICOOptions(3, 2, 8, 9)
	opt.Workers = 2
	res := core.Run(p, opt)
	if len(res.All) == 0 {
		t.Fatal("no candidates evaluated")
	}
	if got := s.JobCount(); got != 0 {
		t.Errorf("worker still holds %d jobs after the run", got)
	}
}

func TestRemoteJobCloseIdempotent(t *testing.T) {
	_, c := newWorker(t)
	space := hw.NewSpatialSpace(hw.Edge)
	x := space.Encode(hw.Spatial{PEX: 4, PEY: 4, L1Bytes: 864, L2KB: 96, NoCBW: 64})
	job, err := NewRemoteJob(c, JobSpec{
		Platform: "spatial", Scenario: "edge",
		Networks: []string{"MobileNetV3-S"}, X: x, Algo: "flextensor", Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	job.Advance(2)
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	if err := job.Close(); err != nil {
		t.Errorf("second Close errored: %v", err)
	}
	// Last-seen state stays readable after close.
	if job.Spent() != 2 {
		t.Errorf("Spent after close = %d, want 2", job.Spent())
	}
}

func TestJobSpecValidation(t *testing.T) {
	_, c := newWorker(t)
	cases := []JobSpec{
		{Platform: "spatial", Scenario: "edge", Networks: nil, Algo: "flextensor"},
		{Platform: "spatial", Scenario: "mars", Networks: []string{"ResNet"}, X: make([]float64, 6)},
		{Platform: "spatial", Scenario: "edge", Networks: []string{"NoSuchNet"}, X: make([]float64, 6)},
		{Platform: "spatial", Scenario: "edge", Networks: []string{"ResNet"}, X: make([]float64, 2)},
		{Platform: "warp", Networks: []string{"ResNet"}, X: make([]float64, 6)},
		{Platform: "spatial", Scenario: "edge", Networks: []string{"ResNet"}, X: make([]float64, 6), Algo: "psychic"},
	}
	for i, spec := range cases {
		if _, err := c.CreateJob(spec); err == nil {
			t.Errorf("case %d: bad spec accepted: %+v", i, spec)
		}
	}
}

func TestRemotePlatformEndToEnd(t *testing.T) {
	var clients []*Client
	for i := 0; i < 2; i++ {
		_, c := newWorker(t)
		clients = append(clients, c)
	}
	p, err := NewRemoteSpatialPlatform(clients, hw.Edge, []string{"MobileNetV3-S"})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.UNICOOptions(4, 2, 10, 3)
	opt.Workers = 2
	res := core.Run(p, opt)
	if len(res.All) != 8 {
		t.Fatalf("evaluated %d candidates, want 8", len(res.All))
	}
	if len(res.Front) == 0 {
		t.Error("distributed run produced no feasible designs")
	}
}

func TestRemotePlatformValidation(t *testing.T) {
	if _, err := NewRemoteSpatialPlatform(nil, hw.Edge, []string{"ResNet"}); err == nil {
		t.Error("no workers accepted")
	}
	_, c := newWorker(t)
	if _, err := NewRemoteSpatialPlatform([]*Client{c}, hw.Edge, []string{"NoSuchNet"}); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestRemoteJobDeadWorker(t *testing.T) {
	srv, c := newWorker(t)
	space := hw.NewSpatialSpace(hw.Edge)
	x := space.Encode(hw.Spatial{PEX: 4, PEY: 4, L1Bytes: 864, L2KB: 96, NoCBW: 64})
	job, err := NewRemoteJob(c, JobSpec{
		Platform: "spatial", Scenario: "edge",
		Networks: []string{"MobileNetV3-S"}, X: x, Algo: "flextensor", Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	job.Advance(3) // must latch the transport error, not panic
	if job.Err() == nil {
		t.Error("transport error not latched")
	}
	if _, ok := job.Best(); ok {
		t.Error("dead job reported a feasible result")
	}
}

func TestRemotePlatformFailsOver(t *testing.T) {
	// Two workers; kill one. Job creation must fail over to the survivor
	// and the co-optimization must keep producing feasible candidates.
	srv1, c1 := newWorker(t)
	_, c2 := newWorker(t)
	p, err := NewRemoteSpatialPlatform([]*Client{c1, c2}, hw.Edge, []string{"MobileNetV3-S"})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.HealthyWorkers(); got != 2 {
		t.Fatalf("HealthyWorkers = %d, want 2", got)
	}
	srv1.Close()
	if got := p.HealthyWorkers(); got != 1 {
		t.Fatalf("HealthyWorkers after kill = %d, want 1", got)
	}
	space := hw.NewSpatialSpace(hw.Edge)
	for i := 0; i < 4; i++ {
		x := space.Encode(hw.Spatial{PEX: 4 + i, PEY: 4, L1Bytes: 864, L2KB: 96, NoCBW: 64})
		job := p.NewJob(x, int64(i))
		job.Advance(3)
		if _, ok := job.Best(); !ok {
			t.Fatalf("job %d found nothing despite a live worker", i)
		}
	}
}
