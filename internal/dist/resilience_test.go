package dist

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"unico/internal/core"
	"unico/internal/hw"
	"unico/internal/mapping"
	"unico/internal/workload"
)

// newFaultyWorker starts a real worker behind a FaultInjector and returns a
// client built with the given resilience options.
func newFaultyWorker(t *testing.T, opts Options) (*FaultInjector, *Client) {
	t.Helper()
	inj := NewFaultInjector(NewServer().Handler())
	srv := httptest.NewServer(inj)
	t.Cleanup(srv.Close)
	return inj, NewClientOptions(srv.URL, srv.Client(), opts)
}

func spatialPPARequest() PPARequest {
	l := workload.Conv("c", 16, 8, 14, 14, 3, 3, 1, 1)
	cfg := hw.Spatial{PEX: 4, PEY: 4, L1Bytes: 1728, L2KB: 432, NoCBW: 128, Dataflow: hw.WeightStationary}
	m := mapping.Spatial{TK: 1, TC: 1, TY: 1, TX: 1, TR: 1, TS: 1,
		SpatX: mapping.DimK, SpatY: mapping.DimY}.Canon(l)
	return PPARequest{Platform: "spatial", SpatialHW: &cfg, SpatialMapping: &m, Layer: l}
}

func TestEvaluatePPARetriesOn500(t *testing.T) {
	inj, c := newFaultyWorker(t, Options{MaxRetries: 2, RetryBackoff: time.Millisecond})
	inj.FailNext(2)
	resp, err := c.EvaluatePPA(spatialPPARequest())
	if err != nil {
		t.Fatalf("EvaluatePPA after 2 injected 500s: %v", err)
	}
	if resp.Error != "" || !resp.Metrics.Valid() {
		t.Fatalf("response: %+v", resp)
	}
	if inj.Injected() != 2 {
		t.Errorf("injected %d faults, want 2", inj.Injected())
	}
}

func TestEvaluatePPANoRetryBudgetFails(t *testing.T) {
	inj, c := newFaultyWorker(t, Options{}) // MaxRetries 0
	inj.FailNext(1)
	if _, err := c.EvaluatePPA(spatialPPARequest()); err == nil {
		t.Fatal("EvaluatePPA succeeded with no retry budget and an injected 500")
	}
	if inj.Injected() != 1 {
		t.Errorf("injected %d faults, want 1", inj.Injected())
	}
}

func TestEvaluatePPARetriesConnectionReset(t *testing.T) {
	inj, c := newFaultyWorker(t, Options{MaxRetries: 1, RetryBackoff: time.Millisecond})
	inj.ResetNext(1)
	resp, err := c.EvaluatePPA(spatialPPARequest())
	if err != nil {
		t.Fatalf("EvaluatePPA after injected connection reset: %v", err)
	}
	if resp.Error != "" || !resp.Metrics.Valid() {
		t.Fatalf("response: %+v", resp)
	}
	if inj.Injected() != 1 {
		t.Errorf("injected %d faults, want 1", inj.Injected())
	}
}

func TestClientTimeoutBoundsHangingWorker(t *testing.T) {
	inj := NewFaultInjector(NewServer().Handler())
	srv := httptest.NewServer(inj)
	t.Cleanup(srv.Close)
	// nil httpClient: the client must build its own timeout-bounded
	// transport instead of falling back to the hang-forever DefaultClient.
	c := NewClientOptions(srv.URL, nil, Options{Timeout: 100 * time.Millisecond})

	inj.HangNext(1, 500*time.Millisecond)
	startT := time.Now()
	_, err := c.EvaluatePPA(spatialPPARequest())
	elapsed := time.Since(startT)
	if err == nil {
		t.Fatal("EvaluatePPA succeeded against a hanging worker")
	}
	if elapsed >= 450*time.Millisecond {
		t.Errorf("request took %v; timeout did not bound the hang", elapsed)
	}
}

func TestNonIdempotentRoutesNotRetried(t *testing.T) {
	inj, c := newFaultyWorker(t, Options{MaxRetries: 3, RetryBackoff: time.Millisecond})
	space := hw.NewSpatialSpace(hw.Edge)
	x := space.Encode(hw.Spatial{PEX: 4, PEY: 4, L1Bytes: 864, L2KB: 96, NoCBW: 64})
	spec := JobSpec{
		Platform: "spatial", Scenario: "edge",
		Networks: []string{"MobileNetV3-S"}, X: x, Algo: "flextensor", Seed: 1,
	}

	inj.FailNext(1)
	if _, err := c.CreateJob(spec); err == nil {
		t.Fatal("CreateJob succeeded through an injected 500")
	}
	if inj.Injected() != 1 {
		t.Fatalf("CreateJob consumed %d faults, want 1 (no retries)", inj.Injected())
	}

	id, err := c.CreateJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	inj.FailNext(1)
	if _, err := c.AdvanceJob(id, 2); err == nil {
		t.Fatal("AdvanceJob succeeded through an injected 500")
	}
	if inj.Injected() != 2 {
		t.Errorf("AdvanceJob consumed %d total faults, want 2 (no retries)", inj.Injected())
	}
}

func TestWorkerEvictionAndReadmission(t *testing.T) {
	_, good := newWorker(t)
	inj, flaky := newFaultyWorker(t, Options{})

	// Round-robin starts at workers[calls%len]: with calls=1 the flaky
	// worker (index 1) is tried first, so the injected failure lands on it.
	p, err := NewRemoteSpatialPlatform([]*Client{good, flaky}, hw.Edge, []string{"MobileNetV3-S"})
	if err != nil {
		t.Fatal(err)
	}
	p.EvictAfter = 1
	p.ProbeEvery = 2

	space := hw.NewSpatialSpace(hw.Edge)
	x := space.Encode(hw.Spatial{PEX: 4, PEY: 4, L1Bytes: 864, L2KB: 96, NoCBW: 64})

	inj.FailNext(1)
	job := p.NewJob(x, 1) // flaky fails -> evicted; good takes the job
	job.Advance(1)
	if job.Spent() != 1 {
		t.Fatalf("failover job spent %d, want 1", job.Spent())
	}
	if n := p.EvictedWorkers(); n != 1 {
		t.Fatalf("evicted workers after failure = %d, want 1", n)
	}

	// The next NewJob hits the probe cadence (calls=2); the injector is out
	// of faults, so the health probe answers and the worker is re-admitted.
	job = p.NewJob(x, 2)
	job.Advance(1)
	if job.Spent() != 1 {
		t.Fatalf("post-probe job spent %d, want 1", job.Spent())
	}
	if n := p.EvictedWorkers(); n != 0 {
		t.Errorf("evicted workers after probe = %d, want 0", n)
	}
	if inj.Injected() != 1 {
		t.Errorf("injected %d faults, want 1", inj.Injected())
	}
}

// TestDeadWorkerDoesNotStallCoSearch is the acceptance check for the client
// timeout + eviction combination: a co-search over one healthy worker and one
// worker that accepts connections but never answers must complete — and with
// the same results as a run against the healthy worker alone, since every
// candidate fails over to the healthy node.
func TestDeadWorkerDoesNotStallCoSearch(t *testing.T) {
	_, good := newWorker(t)

	block := make(chan struct{})
	hangSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	t.Cleanup(func() {
		close(block)
		hangSrv.Close()
	})
	dead := NewClientOptions(hangSrv.URL, nil, Options{Timeout: 100 * time.Millisecond})

	opt := core.UNICOOptions(4, 2, 10, 3)
	opt.Workers = 2

	ref, err := NewRemoteSpatialPlatform([]*Client{good}, hw.Edge, []string{"MobileNetV3-S"})
	if err != nil {
		t.Fatal(err)
	}
	want := core.Run(ref, opt)

	p, err := NewRemoteSpatialPlatform([]*Client{good, dead}, hw.Edge, []string{"MobileNetV3-S"})
	if err != nil {
		t.Fatal(err)
	}
	p.EvictAfter = 1

	done := make(chan core.Result, 1)
	go func() { done <- core.Run(p, opt) }()
	var got core.Result
	select {
	case got = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("co-search with one dead worker did not complete")
	}

	if len(got.All) != len(want.All) {
		t.Fatalf("evaluated %d candidates, want %d", len(got.All), len(want.All))
	}
	if !reflect.DeepEqual(got.Front, want.Front) {
		t.Errorf("front with dead worker differs from healthy-only front:\n got %+v\nwant %+v", got.Front, want.Front)
	}
	if n := p.EvictedWorkers(); n != 1 {
		t.Errorf("evicted workers = %d, want 1 (the dead node)", n)
	}
}
