package pareto

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict improvement
		{[]float64{1, 2}, []float64{1, 3}, true},
		{[]float64{3, 1}, []float64{2, 2}, false},
	}
	for _, tc := range cases {
		if got := Dominates(tc.a, tc.b); got != tc.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestFrontSimple(t *testing.T) {
	pts := [][]float64{
		{1, 5}, {2, 4}, {3, 3}, {2, 6}, {4, 4}, {1, 5},
	}
	idx := Front(pts)
	want := map[int]bool{0: true, 1: true, 2: true}
	if len(idx) != len(want) {
		t.Fatalf("Front = %v", idx)
	}
	for _, i := range idx {
		if !want[i] {
			t.Errorf("unexpected front member %d (%v)", i, pts[i])
		}
	}
}

// bruteFront recomputes the front definition directly for cross-checking.
func bruteFront(pts [][]float64) map[string]bool {
	out := map[string]bool{}
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i != j && Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out[key(p)] = true
		}
	}
	return out
}

func key(p []float64) string {
	s := ""
	for _, v := range p {
		s += "|"
		s += string(rune(int(v*7) + 48))
	}
	return s
}

func TestFrontMatchesBruteForceProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		var pts [][]float64
		for i := 0; i+1 < len(raw) && len(pts) < 12; i += 2 {
			pts = append(pts, []float64{float64(raw[i] % 8), float64(raw[i+1] % 8)})
		}
		want := bruteFront(pts)
		for _, i := range Front(pts) {
			if !want[key(pts[i])] {
				return false
			}
		}
		// Every non-dominated *value* must appear in the front.
		got := map[string]bool{}
		for _, i := range Front(pts) {
			got[key(pts[i])] = true
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFrontDeduplicates(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	if got := Front(pts); len(got) != 1 {
		t.Errorf("Front kept %d duplicates", len(got))
	}
}

func TestHypervolume2DByHand(t *testing.T) {
	// Points (1,3), (2,2), (3,1) with ref (4,4). By x-slices:
	// x in [1,2): y in [3,4) -> 1; x in [2,3): y in [2,4) -> 2;
	// x in [3,4): y in [1,4) -> 3. Union area = 6.
	pts := [][]float64{{1, 3}, {2, 2}, {3, 1}}
	ref := []float64{4, 4}
	if got := Hypervolume(pts, ref); math.Abs(got-6) > 1e-12 {
		t.Errorf("HV = %v, want 6", got)
	}
}

func TestHypervolume3DByHand(t *testing.T) {
	// Single point: a box.
	if got := Hypervolume([][]float64{{1, 2, 3}}, []float64{2, 4, 6}); math.Abs(got-1*2*3) > 1e-12 {
		t.Errorf("HV = %v, want 6", got)
	}
	// Two disjoint-ish boxes: inclusion-exclusion.
	pts := [][]float64{{0, 1, 1}, {1, 0, 1}}
	ref := []float64{2, 2, 2}
	// inclhv each = 2*1*1 = 2; overlap box from (1,1,1) = 1.
	if got := Hypervolume(pts, ref); math.Abs(got-3) > 1e-12 {
		t.Errorf("HV = %v, want 3", got)
	}
}

func TestHypervolumeIgnoresOutsidePoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {5, 5}}
	ref := []float64{4, 4}
	if got := Hypervolume(pts, ref); math.Abs(got-9) > 1e-12 {
		t.Errorf("HV = %v, want 9", got)
	}
	if got := Hypervolume(nil, ref); got != 0 {
		t.Errorf("HV(empty) = %v", got)
	}
}

func TestHypervolumeMonotoneProperty(t *testing.T) {
	// Adding any point never decreases hypervolume.
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		ref := []float64{9, 9}
		var pts [][]float64
		for i := 0; i+1 < len(raw) && len(pts) < 8; i += 2 {
			pts = append(pts, []float64{float64(raw[i] % 9), float64(raw[i+1] % 9)})
		}
		base := Hypervolume(pts[:len(pts)-1], ref)
		full := Hypervolume(pts, ref)
		return full >= base-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHypervolumePermutationInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 5, rng.Float64() * 5, rng.Float64() * 5}
		}
		ref := []float64{6, 6, 6}
		a := Hypervolume(pts, ref)
		rng.Shuffle(n, func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
		b := Hypervolume(pts, ref)
		return math.Abs(a-b) < 1e-9*(1+a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCrowdingDistance(t *testing.T) {
	pts := [][]float64{{0, 4}, {1, 2}, {2, 1}, {4, 0}}
	cds := CrowdingDistance(pts)
	if !math.IsInf(cds[0], 1) || !math.IsInf(cds[3], 1) {
		t.Errorf("boundary points not infinite: %v", cds)
	}
	if math.IsInf(cds[1], 1) || cds[1] <= 0 {
		t.Errorf("interior crowding distance %v", cds[1])
	}
	if len(CrowdingDistance(nil)) != 0 {
		t.Error("empty input mishandled")
	}
}

func TestMinEuclidKnee(t *testing.T) {
	// A clean 2D front with an obvious knee at (2,2).
	pts := [][]float64{{1, 10}, {2, 2}, {10, 1}}
	if got := MinEuclid(pts); got != 1 {
		t.Errorf("MinEuclid = %d, want 1 (the knee)", got)
	}
	if MinEuclid(nil) != -1 {
		t.Error("MinEuclid(empty) != -1")
	}
}

func TestNonDominatedSortRanks(t *testing.T) {
	pts := [][]float64{
		{1, 4}, {2, 3}, {4, 1}, // F1
		{2, 5}, {3, 4}, // F2 (each dominated by an F1 point only)
		{5, 5}, // F3
	}
	fronts := NonDominatedSort(pts)
	if len(fronts) != 3 {
		t.Fatalf("got %d fronts: %v", len(fronts), fronts)
	}
	if len(fronts[0]) != 3 || len(fronts[1]) != 2 || len(fronts[2]) != 1 {
		t.Errorf("front sizes: %v", fronts)
	}
	// F1 must equal Front().
	f1 := map[int]bool{}
	for _, i := range fronts[0] {
		f1[i] = true
	}
	for _, i := range Front(pts) {
		if !f1[i] {
			t.Errorf("Front member %d missing from NDS F1", i)
		}
	}
}

func TestNonDominatedSortCoversAllProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var pts [][]float64
		for i := 0; i+1 < len(raw) && len(pts) < 10; i += 2 {
			pts = append(pts, []float64{float64(raw[i] % 6), float64(raw[i+1] % 6)})
		}
		fronts := NonDominatedSort(pts)
		count := 0
		for _, f := range fronts {
			count += len(f)
		}
		return count == len(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	pts := [][]float64{{2, 10}, {4, 5}}
	norm := Normalize(pts)
	if norm[1][0] != 1 || norm[0][1] != 1 {
		t.Errorf("Normalize = %v", norm)
	}
	if norm[0][0] != 0.5 || norm[1][1] != 0.5 {
		t.Errorf("Normalize = %v", norm)
	}
	if Normalize(nil) != nil {
		t.Error("Normalize(nil) != nil")
	}
}
