package pareto

// NonDominatedSort partitions points into successive non-dominated fronts
// F1, F2, ... (Deb et al.'s fast non-dominated sort from NSGA-II [13]):
// F1 is the Pareto front, F2 the front after removing F1, and so on. Each
// returned slice holds point indices.
func NonDominatedSort(points [][]float64) [][]int {
	n := len(points)
	dominatedBy := make([][]int, n) // dominatedBy[i]: points i dominates
	domCount := make([]int, n)      // points dominating i
	var first []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if Dominates(points[i], points[j]) {
				dominatedBy[i] = append(dominatedBy[i], j)
			} else if Dominates(points[j], points[i]) {
				domCount[i]++
			}
		}
		if domCount[i] == 0 {
			first = append(first, i)
		}
	}
	var fronts [][]int
	cur := first
	for len(cur) > 0 {
		fronts = append(fronts, cur)
		var next []int
		for _, i := range cur {
			for _, j := range dominatedBy[i] {
				domCount[j]--
				if domCount[j] == 0 {
					next = append(next, j)
				}
			}
		}
		cur = next
	}
	return fronts
}
