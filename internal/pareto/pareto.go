// Package pareto provides multi-objective utilities: Pareto dominance and
// front extraction, exact hypervolume (the convergence measure of paper
// Figs. 7 and 10), NSGA-II's crowding distance, and the
// min-Euclidean-distance representative point Tables 1-2 report.
//
// All objectives are minimized throughout.
package pareto

import (
	"fmt"
	"math"
	"sort"
)

// Dominates reports whether a Pareto-dominates b: a is no worse in every
// objective and strictly better in at least one.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		panic(fmt.Sprintf("pareto: dimension mismatch %d vs %d", len(a), len(b)))
	}
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// Front returns the indices of the non-dominated points.
func Front(points [][]float64) []int {
	var front []int
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if Dominates(q, p) || (!Dominates(p, q) && equal(p, q) && j < i) {
				// Dominated, or an exact duplicate of an earlier point.
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

func equal(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FrontPoints returns the non-dominated points themselves.
func FrontPoints(points [][]float64) [][]float64 {
	idx := Front(points)
	out := make([][]float64, len(idx))
	for i, j := range idx {
		out[i] = points[j]
	}
	return out
}

// Hypervolume returns the exact hypervolume dominated by points with respect
// to the reference point ref (minimization: only points strictly below ref
// in every coordinate contribute). It implements the WFG recursive
// exclusive-hypervolume algorithm, exact in any dimension and fast for the
// front sizes co-optimization produces.
func Hypervolume(points [][]float64, ref []float64) float64 {
	var pl [][]float64
	for _, p := range points {
		if len(p) != len(ref) {
			panic(fmt.Sprintf("pareto: point dim %d vs ref dim %d", len(p), len(ref)))
		}
		inside := true
		for i := range p {
			if p[i] >= ref[i] {
				inside = false
				break
			}
		}
		if inside {
			pl = append(pl, p)
		}
	}
	pl = FrontPoints(pl)
	// Sorting by the first objective improves the limit-set pruning.
	sort.Slice(pl, func(i, j int) bool { return pl[i][0] < pl[j][0] })
	return wfg(pl, ref)
}

// wfg computes the hypervolume of a mutually non-dominated list.
func wfg(pl [][]float64, ref []float64) float64 {
	sum := 0.0
	for i, p := range pl {
		sum += exclhv(p, pl[i+1:], ref)
	}
	return sum
}

// exclhv is the hypervolume dominated exclusively by p relative to the set s.
func exclhv(p []float64, s [][]float64, ref []float64) float64 {
	return inclhv(p, ref) - wfg(FrontPoints(limitSet(p, s)), ref)
}

// inclhv is the hypervolume of the box between p and ref.
func inclhv(p []float64, ref []float64) float64 {
	v := 1.0
	for i := range p {
		v *= ref[i] - p[i]
	}
	return v
}

// limitSet replaces each point q of s by the component-wise worse of p and q
// (for minimization: the maximum), restricting s to the region p dominates.
func limitSet(p []float64, s [][]float64) [][]float64 {
	out := make([][]float64, len(s))
	for i, q := range s {
		r := make([]float64, len(q))
		for j := range q {
			r[j] = math.Max(p[j], q[j])
		}
		out[i] = r
	}
	return out
}

// CrowdingDistance returns the NSGA-II crowding distance of each point in a
// front (boundary points get +Inf).
func CrowdingDistance(points [][]float64) []float64 {
	n := len(points)
	dist := make([]float64, n)
	if n == 0 {
		return dist
	}
	d := len(points[0])
	idx := make([]int, n)
	for m := 0; m < d; m++ {
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return points[idx[a]][m] < points[idx[b]][m] })
		lo, hi := points[idx[0]][m], points[idx[n-1]][m]
		span := hi - lo
		dist[idx[0]] = math.Inf(1)
		dist[idx[n-1]] = math.Inf(1)
		if span <= 0 {
			continue
		}
		for i := 1; i < n-1; i++ {
			dist[idx[i]] += (points[idx[i+1]][m] - points[idx[i-1]][m]) / span
		}
	}
	return dist
}

// MinEuclid returns the index of the front's knee point: the point with the
// minimum Euclidean distance to the ideal corner after range-normalizing
// every objective over the set — the "min-Euclidean-distance"
// representative Tables 1 and 2 of the paper report. Range normalization
// (rather than dividing by the maximum) keeps the selection stable when a
// front spans orders of magnitude in one objective.
func MinEuclid(points [][]float64) int {
	if len(points) == 0 {
		return -1
	}
	d := len(points[0])
	lo := make([]float64, d)
	hi := make([]float64, d)
	copy(lo, points[0])
	copy(hi, points[0])
	for _, p := range points {
		for j, v := range p {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	best, bestDist := 0, math.Inf(1)
	for i, p := range points {
		sum := 0.0
		for j, v := range p {
			span := hi[j] - lo[j]
			if span <= 0 {
				continue
			}
			nv := (v - lo[j]) / span
			sum += nv * nv
		}
		if sum < bestDist {
			best, bestDist = i, sum
		}
	}
	return best
}

// Normalize returns points scaled so each objective's maximum over the set
// is one. Objectives with zero range are passed through unchanged.
func Normalize(points [][]float64) [][]float64 {
	if len(points) == 0 {
		return nil
	}
	d := len(points[0])
	scale := make([]float64, d)
	for _, p := range points {
		for j, v := range p {
			if v > scale[j] {
				scale[j] = v
			}
		}
	}
	out := make([][]float64, len(points))
	for i, p := range points {
		q := make([]float64, d)
		for j, v := range p {
			if scale[j] > 0 {
				q[j] = v / scale[j]
			} else {
				q[j] = v
			}
		}
		out[i] = q
	}
	return out
}
