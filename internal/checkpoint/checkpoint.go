// Package checkpoint persists a co-search run's state so a crashed or
// killed process can resume bit-identically (internal/core defines the
// record types and the resume semantics; this package owns the bytes).
//
// Two files per checkpoint path P:
//
//   - P is the snapshot: one JSON SnapshotRecord, replaced atomically
//     (write tmp, fsync, rename) so a crash mid-write leaves the previous
//     snapshot intact.
//   - P.journal is the write-ahead journal: one framed record per completed
//     iteration, appended and fsynced before the co-search proceeds. Each
//     frame is an 8-byte header — payload length and IEEE CRC32, both
//     little-endian uint32 — followed by the JSON payload. A crash mid-append
//     leaves at most one torn trailing frame, which Load detects by length
//     or checksum and truncates away (counted in telemetry).
//
// A successful snapshot resets the journal, so the journal only ever holds
// the iterations since the last snapshot and both files stay bounded.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"unico/internal/core"
	"unico/internal/telemetry"
)

// frameHeaderSize is the bytes of framing before each journal payload.
const frameHeaderSize = 8

// maxFrameSize bounds a single journal record (a sanity check against
// reading a garbage length from a corrupt header, not a real limit).
const maxFrameSize = 1 << 30

// ErrNoCheckpoint reports that the checkpoint path has no snapshot to
// resume from.
var ErrNoCheckpoint = errors.New("checkpoint: no snapshot found")

// File is the file-backed core.CheckpointSink. Safe for use by one run at a
// time; methods are serialized internally.
type File struct {
	mu       sync.Mutex
	snapPath string
	journal  *os.File
}

// Create opens (or continues) the checkpoint at path. An existing journal
// is appended to — the resume path loads and truncates it first — and an
// existing snapshot is kept until the next WriteSnapshot replaces it.
func Create(path string) (*File, error) {
	j, err := os.OpenFile(journalPath(path), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open journal: %w", err)
	}
	return &File{snapPath: path, journal: j}, nil
}

func journalPath(path string) string { return path + ".journal" }

// AppendIteration journals one completed iteration: frame the JSON payload,
// append, fsync. The record is durable when this returns nil.
func (f *File) AppendIteration(rec core.IterationRecord) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.journal == nil {
		return errors.New("checkpoint: sink is closed")
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal iteration %d: %w", rec.Iter, err)
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderSize:], payload)
	if _, err := f.journal.Write(frame); err != nil {
		return fmt.Errorf("checkpoint: append iteration %d: %w", rec.Iter, err)
	}
	//unicolint:allow locksafe WAL ordering: append+fsync must be atomic under f.mu or concurrent appends could interleave frames
	if err := f.journal.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync journal: %w", err)
	}
	return nil
}

// WriteSnapshot atomically replaces the snapshot, then resets the journal:
// the snapshot now subsumes every journaled iteration. If the process dies
// between the two steps, Load ignores the journal records the snapshot
// already covers.
func (f *File) WriteSnapshot(snap core.SnapshotRecord) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.journal == nil {
		return errors.New("checkpoint: sink is closed")
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal snapshot: %w", err)
	}
	if err := atomicWrite(f.snapPath, payload); err != nil {
		return err
	}
	// Reset the journal. Truncating through a fresh handle (rather than the
	// append handle) keeps the append offset coherent on every platform.
	if err := f.journal.Close(); err != nil {
		return fmt.Errorf("checkpoint: close journal: %w", err)
	}
	j, err := os.OpenFile(journalPath(f.snapPath), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: reset journal: %w", err)
	}
	f.journal = j
	return nil
}

// Close releases the journal handle. The sink is unusable afterwards.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.journal == nil {
		return nil
	}
	err := f.journal.Close()
	f.journal = nil
	return err
}

// atomicWrite writes data to path via tmp + fsync + rename, then
// best-effort fsyncs the directory so the rename itself is durable.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: sync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		//unicolint:allow durerr directory fsync is best-effort: some filesystems reject fsync on directories; file durability is carried by the checked tmp.Sync above
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Exists reports whether a snapshot exists at path (i.e. Load can resume).
func Exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// Load reads the checkpoint at path into a core.ResumeState: the snapshot
// plus the contiguous journal records after it. A torn trailing journal
// frame — the expected residue of a crash mid-append — is truncated off the
// file and counted in telemetry; the state resumes from the last durable
// record. Returns ErrNoCheckpoint when no snapshot exists.
func Load(path string) (*core.ResumeState, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w at %s", ErrNoCheckpoint, path)
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read snapshot: %w", err)
	}
	var snap core.SnapshotRecord
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("checkpoint: decode snapshot: %w", err)
	}

	recs, err := loadJournal(journalPath(path))
	if err != nil {
		return nil, err
	}
	// Keep only the contiguous run of records continuing the snapshot; a
	// crash between snapshot-rename and journal-reset leaves records the
	// snapshot already covers, which resume must not replay twice.
	rs := &core.ResumeState{Snapshot: snap}
	next := snap.Iter + 1
	for _, rec := range recs {
		if rec.Iter < next {
			continue
		}
		if rec.Iter != next {
			return nil, fmt.Errorf("checkpoint: journal gap: have iteration %d, want %d", rec.Iter, next)
		}
		rs.Tail = append(rs.Tail, rec)
		next++
	}
	return rs, nil
}

// loadJournal parses every intact frame of the journal, truncating a torn
// tail in place. A missing journal is an empty one.
func loadJournal(path string) ([]core.IterationRecord, error) {
	jf, err := os.OpenFile(path, os.O_RDWR, 0)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open journal: %w", err)
	}
	defer jf.Close()
	data, err := io.ReadAll(jf)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read journal: %w", err)
	}

	var recs []core.IterationRecord
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, nil // clean end
		}
		if len(rest) < frameHeaderSize {
			break // torn header
		}
		n := int(binary.LittleEndian.Uint32(rest[0:4]))
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxFrameSize || len(rest) < frameHeaderSize+n {
			break // torn or garbage payload length
		}
		payload := rest[frameHeaderSize : frameHeaderSize+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break // torn payload
		}
		var rec core.IterationRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // checksum ok but undecodable: treat as corrupt tail
		}
		recs = append(recs, rec)
		off += frameHeaderSize + n
	}
	// Torn tail: drop it so the next append starts at a frame boundary.
	telemetry.CheckpointTornRecords().Inc()
	if err := jf.Truncate(int64(off)); err != nil {
		return nil, fmt.Errorf("checkpoint: truncate torn journal tail: %w", err)
	}
	if err := jf.Sync(); err != nil {
		return nil, fmt.Errorf("checkpoint: sync truncated journal: %w", err)
	}
	return recs, nil
}
