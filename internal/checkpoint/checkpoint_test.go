package checkpoint

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"unico/internal/core"
	"unico/internal/hw"
	"unico/internal/mapsearch"
	"unico/internal/platform"
	"unico/internal/telemetry"
	"unico/internal/workload"
)

func rec(iter int) core.IterationRecord {
	return core.IterationRecord{
		Iter:         iter,
		Suggested:    [][]float64{{float64(iter), 0.5}},
		Evals:        iter * 10,
		ClockSeconds: float64(iter) * 3.5,
		RNGPos:       uint64(iter) * 7,
	}
}

func mustCreate(t *testing.T, path string) *File {
	t.Helper()
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestJournalAppendLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	f := mustCreate(t, path)
	if err := f.WriteSnapshot(core.SnapshotRecord{Iter: 0, Evals: 0}); err != nil {
		t.Fatal(err)
	}
	want := []core.IterationRecord{rec(1), rec(2), rec(3)}
	for _, r := range want {
		if err := f.AppendIteration(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Snapshot.Iter != 0 {
		t.Errorf("snapshot iter = %d, want 0", rs.Snapshot.Iter)
	}
	if !reflect.DeepEqual(rs.Tail, want) {
		t.Errorf("journal tail = %+v, want %+v", rs.Tail, want)
	}
	if rs.LastIter() != 3 {
		t.Errorf("LastIter = %d, want 3", rs.LastIter())
	}
}

func TestTornTrailingRecordTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	f := mustCreate(t, path)
	if err := f.WriteSnapshot(core.SnapshotRecord{Iter: 0}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := f.AppendIteration(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	// Tear the last frame mid-payload, as a crash mid-append would.
	jp := journalPath(path)
	fi, err := os.Stat(jp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jp, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	before := telemetry.CheckpointTornRecords().Value()
	rs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Tail) != 2 || rs.LastIter() != 2 {
		t.Fatalf("torn load kept %d records up to iter %d, want 2 up to 2",
			len(rs.Tail), rs.LastIter())
	}
	if got := telemetry.CheckpointTornRecords().Value(); got != before+1 {
		t.Errorf("torn-record counter advanced by %d, want 1", got-before)
	}

	// The torn bytes are gone: a second load sees a clean journal and the
	// next append starts at a frame boundary.
	rs2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs2.Tail, rs.Tail) {
		t.Errorf("second load diverged: %+v vs %+v", rs2.Tail, rs.Tail)
	}
	f2 := mustCreate(t, path)
	if err := f2.AppendIteration(rec(3)); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	rs3, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if rs3.LastIter() != 3 {
		t.Errorf("append after truncation: LastIter = %d, want 3", rs3.LastIter())
	}
}

func TestGarbageTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	f := mustCreate(t, path)
	if err := f.WriteSnapshot(core.SnapshotRecord{Iter: 0}); err != nil {
		t.Fatal(err)
	}
	if err := f.AppendIteration(rec(1)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jf, err := os.OpenFile(journalPath(path), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	rs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Tail) != 1 || rs.Tail[0].Iter != 1 {
		t.Fatalf("garbage tail corrupted the journal: %+v", rs.Tail)
	}
}

func TestSnapshotSubsumesJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	f := mustCreate(t, path)
	if err := f.WriteSnapshot(core.SnapshotRecord{Iter: 0}); err != nil {
		t.Fatal(err)
	}
	f.AppendIteration(rec(1))
	f.AppendIteration(rec(2))
	if err := f.WriteSnapshot(core.SnapshotRecord{Iter: 2, Evals: 20}); err != nil {
		t.Fatal(err)
	}
	// The snapshot reset the journal; the files stay bounded.
	if fi, err := os.Stat(journalPath(path)); err != nil || fi.Size() != 0 {
		t.Fatalf("journal not reset after snapshot: size %d, err %v", fi.Size(), err)
	}
	f.AppendIteration(rec(3))
	f.Close()

	rs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Snapshot.Iter != 2 || len(rs.Tail) != 1 || rs.Tail[0].Iter != 3 {
		t.Errorf("load = snapshot %d + %d tail records, want snapshot 2 + [3]",
			rs.Snapshot.Iter, len(rs.Tail))
	}
}

// TestLoadSkipsRecordsCoveredBySnapshot pins the crash window between
// snapshot rename and journal reset: the journal still holds records the
// snapshot covers, and resume must not replay them twice.
func TestLoadSkipsRecordsCoveredBySnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	f := mustCreate(t, path)
	if err := f.WriteSnapshot(core.SnapshotRecord{Iter: 0}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		f.AppendIteration(rec(i))
	}
	f.Close()
	// Simulate the crash: replace the snapshot as if iteration 2's cadence
	// snapshot had renamed into place, without the journal reset.
	snap, err := json.Marshal(core.SnapshotRecord{Iter: 2, Evals: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, snap, 0o644); err != nil {
		t.Fatal(err)
	}

	rs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Snapshot.Iter != 2 || len(rs.Tail) != 1 || rs.Tail[0].Iter != 3 {
		t.Errorf("covered records replayed: snapshot %d, tail %+v", rs.Snapshot.Iter, rs.Tail)
	}
}

func TestJournalGapRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	f := mustCreate(t, path)
	if err := f.WriteSnapshot(core.SnapshotRecord{Iter: 0}); err != nil {
		t.Fatal(err)
	}
	f.AppendIteration(rec(1))
	f.AppendIteration(rec(3)) // gap: iteration 2 missing
	f.Close()
	if _, err := Load(path); err == nil {
		t.Fatal("journal gap not rejected")
	}
}

func TestLoadMissingCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.ckpt")
	if Exists(path) {
		t.Fatal("Exists on a missing checkpoint")
	}
	if _, err := Load(path); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Load(missing) = %v, want ErrNoCheckpoint", err)
	}
}

// --- end-to-end kill/resume, through real files ---

func spatialTestPlatform() core.Platform {
	return platform.NewSpatial(hw.Edge,
		[]workload.Workload{workload.MobileNetV3Small()}, mapsearch.FlexTensorLike)
}

func ascendTestPlatform() core.Platform {
	return platform.NewAscend([]workload.Workload{workload.DLEU()}, mapsearch.DepthFirst)
}

func sameResult(t *testing.T, want, got core.Result) {
	t.Helper()
	if want.Evals != got.Evals {
		t.Errorf("Evals = %d, want %d", got.Evals, want.Evals)
	}
	if want.Hours != got.Hours {
		t.Errorf("Hours = %v, want %v", got.Hours, want.Hours)
	}
	if !reflect.DeepEqual(want.All, got.All) {
		t.Errorf("All diverged: %d vs %d candidates", len(got.All), len(want.All))
	}
	if !reflect.DeepEqual(want.Front, got.Front) {
		t.Errorf("Front diverged: %d vs %d candidates", len(got.Front), len(want.Front))
	}
	if !reflect.DeepEqual(want.Trace, got.Trace) {
		t.Errorf("Trace diverged: %d vs %d points", len(got.Trace), len(want.Trace))
	}
}

// killAndResume runs the keystone scenario on one platform: a reference run,
// an identical run killed after killAt iterations with a file checkpoint,
// and a resumed run from the loaded files, which must be bit-identical to
// the reference. checkpointEvery > killAt keeps the cadence snapshot from
// firing, so resume exercises the journal-replay path through real JSON.
func killAndResume(t *testing.T, newP func() core.Platform, opt core.Options, killAt, checkpointEvery int) {
	t.Helper()
	ref := core.Run(newP(), opt)
	if len(ref.All) != opt.MaxIter*opt.BatchSize {
		t.Fatalf("reference run evaluated %d candidates, want %d",
			len(ref.All), opt.MaxIter*opt.BatchSize)
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	sink := mustCreate(t, path)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	iopt := opt
	iopt.Checkpoint = sink
	iopt.CheckpointEvery = checkpointEvery
	iopt.Progress = func(p core.Progress) {
		if p.Iter == killAt {
			cancel()
		}
	}
	partial := core.RunContext(ctx, newP(), iopt)
	sink.Close()
	if partial.CheckpointErr != nil {
		t.Fatalf("interrupted run CheckpointErr = %v", partial.CheckpointErr)
	}
	if len(partial.All) != killAt*opt.BatchSize {
		t.Fatalf("interrupted run kept %d candidates, want %d",
			len(partial.All), killAt*opt.BatchSize)
	}

	rs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if rs.LastIter() != killAt {
		t.Fatalf("checkpoint covers iteration %d, want %d", rs.LastIter(), killAt)
	}
	sink2 := mustCreate(t, path)
	ropt := opt
	ropt.Checkpoint = sink2
	ropt.CheckpointEvery = checkpointEvery
	ropt.Resume = rs
	got := core.RunContext(context.Background(), newP(), ropt)
	sink2.Close()
	if got.CheckpointErr != nil {
		t.Fatalf("resumed run CheckpointErr = %v", got.CheckpointErr)
	}
	sameResult(t, ref, got)
}

func TestKillResumeBitIdenticalSpatial(t *testing.T) {
	opt := core.UNICOOptions(6, 4, 20, 17)
	opt.Workers = 4
	killAndResume(t, spatialTestPlatform, opt, 2, 2)
}

func TestKillResumeBitIdenticalSpatialNoCadenceSnapshot(t *testing.T) {
	opt := core.UNICOOptions(6, 4, 20, 29)
	opt.Workers = 4
	// Cadence 10 > MaxIter: no cadence snapshot fires, so the graceful-exit
	// final snapshot alone carries the state across the restart.
	killAndResume(t, spatialTestPlatform, opt, 3, 10)
}

func TestKillResumeBitIdenticalAscend(t *testing.T) {
	opt := core.UNICOOptions(4, 3, 12, 23)
	opt.Workers = 2
	killAndResume(t, ascendTestPlatform, opt, 1, 10)
}

// dropSnapshotsSink forwards the journal stream but lets only the first
// (genesis) snapshot through — simulating a process that crashed before any
// cadence snapshot landed, leaving genesis + journal on disk.
type dropSnapshotsSink struct {
	f     *File
	wrote bool
}

func (s *dropSnapshotsSink) AppendIteration(rec core.IterationRecord) error {
	return s.f.AppendIteration(rec)
}

func (s *dropSnapshotsSink) WriteSnapshot(snap core.SnapshotRecord) error {
	if s.wrote {
		return nil
	}
	s.wrote = true
	return s.f.WriteSnapshot(snap)
}

// TestResumeFromTornJournalBitIdentical is the full crash story: the run
// dies with only genesis + journal durable, the journal's last record is
// torn mid-frame, and resume must replay the intact prefix and re-run the
// lost iteration to a bit-identical final result.
func TestResumeFromTornJournalBitIdentical(t *testing.T) {
	opt := core.UNICOOptions(6, 3, 20, 31)
	opt.Workers = 4
	ref := core.Run(spatialTestPlatform(), opt)

	path := filepath.Join(t.TempDir(), "run.ckpt")
	inner := mustCreate(t, path)
	iopt := opt
	iopt.Checkpoint = &dropSnapshotsSink{f: inner}
	crashed := core.Run(spatialTestPlatform(), iopt)
	inner.Close()
	if crashed.CheckpointErr != nil {
		t.Fatalf("CheckpointErr = %v", crashed.CheckpointErr)
	}

	// Tear the last journal frame: iteration 3's record loses its tail.
	jp := journalPath(path)
	fi, err := os.Stat(jp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jp, fi.Size()-4); err != nil {
		t.Fatal(err)
	}

	rs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Snapshot.Iter != 0 || rs.LastIter() != 2 {
		t.Fatalf("post-crash state: snapshot %d, last iter %d; want genesis + 2 journal records",
			rs.Snapshot.Iter, rs.LastIter())
	}

	sink2 := mustCreate(t, path)
	ropt := opt
	ropt.Checkpoint = sink2
	ropt.Resume = rs
	got := core.RunContext(context.Background(), spatialTestPlatform(), ropt)
	sink2.Close()
	if got.CheckpointErr != nil {
		t.Fatalf("resumed run CheckpointErr = %v", got.CheckpointErr)
	}
	sameResult(t, ref, got)
}
