package baselines

import (
	"math/rand"
	"testing"
	"testing/quick"

	"unico/internal/core"
	"unico/internal/hw"
	"unico/internal/mapsearch"
	"unico/internal/mobo"
	"unico/internal/pareto"
	"unico/internal/platform"
	"unico/internal/workload"
)

func testPlatform() core.Platform {
	return platform.NewSpatial(hw.Edge,
		[]workload.Workload{workload.MobileNetV3Small()}, mapsearch.FlexTensorLike)
}

func TestHASCOOptionsRegime(t *testing.T) {
	opt := HASCOOptions(10, 5, 100, 1)
	if !opt.DisableSH {
		t.Error("HASCO must not early-stop")
	}
	if opt.UpdateRule != mobo.Champion {
		t.Error("HASCO must use champion updates")
	}
	if opt.Workers != 1 {
		t.Error("HASCO must be sequential")
	}
	if opt.UseRobustness {
		t.Error("HASCO has no robustness objective")
	}
}

func TestAblationPresets(t *testing.T) {
	sh := SHChampionOptions(10, 5, 100, 1)
	if sh.DisableSH || sh.MSHPromoteFrac != 0 || sh.UpdateRule != mobo.Champion {
		t.Errorf("SH+Champion preset wrong: %+v", sh)
	}
	msh := MSHChampionOptions(10, 5, 100, 1)
	if msh.MSHPromoteFrac != 0.15 || msh.UpdateRule != mobo.Champion {
		t.Errorf("MSH+Champion preset wrong: %+v", msh)
	}
	bohb := MOBOHBOptions(10, 5, 100, 1)
	if bohb.MSHPromoteFrac != 0 || bohb.UpdateRule != mobo.AllSamples || bohb.DisableSH {
		t.Errorf("MOBOHB preset wrong: %+v", bohb)
	}
}

func TestHASCORunSmoke(t *testing.T) {
	res := HASCO(testPlatform(), 4, 2, 15, 3, nil, 0)
	if len(res.All) != 8 {
		t.Errorf("HASCO evaluated %d candidates, want 8", len(res.All))
	}
	if res.Evals != 8*15 {
		t.Errorf("HASCO spent %d evals, want full budget %d", res.Evals, 8*15)
	}
	if res.Hours <= 0 {
		t.Error("no cost accrued")
	}
}

func TestNSGAIIRunSmoke(t *testing.T) {
	res := NSGAII(testPlatform(), NSGAIIOptions{Pop: 8, Generations: 3, BMax: 15, Seed: 5})
	// Initial pop + 3 offspring generations.
	if want := 8 * 4; len(res.All) != want {
		t.Errorf("NSGA-II evaluated %d candidates, want %d", len(res.All), want)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	pts := make([][]float64, len(res.Front))
	for i, c := range res.Front {
		pts[i] = c.Objectives(false)
	}
	for i := range pts {
		for j := range pts {
			if i != j && pareto.Dominates(pts[i], pts[j]) {
				t.Errorf("front point %d dominates %d", i, j)
			}
		}
	}
	if len(res.Trace) != 4 {
		t.Errorf("trace length %d, want 4", len(res.Trace))
	}
}

func TestNSGAIIDeterministic(t *testing.T) {
	o := NSGAIIOptions{Pop: 6, Generations: 2, BMax: 10, Seed: 9}
	a := NSGAII(testPlatform(), o)
	b := NSGAII(testPlatform(), o)
	if len(a.All) != len(b.All) {
		t.Fatal("structure diverged")
	}
	for i := range a.All {
		if a.All[i].Metrics != b.All[i].Metrics {
			t.Fatalf("candidate %d diverged", i)
		}
	}
}

func TestNSGAIITimeBudget(t *testing.T) {
	res := NSGAII(testPlatform(), NSGAIIOptions{
		Pop: 6, Generations: 50, BMax: 10, Seed: 2, TimeBudgetHours: 0.0001,
	})
	if len(res.Trace) >= 51 {
		t.Error("time budget ignored")
	}
}

func TestSBXAndMutationStayInUnitCube(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		b := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		c1, c2 := sbx(a, b, 15, rng)
		m := polyMutate(c1, 0.5, 20, rng)
		for _, v := range append(append(append([]float64{}, c1...), c2...), m...) {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCrowdedComparison(t *testing.T) {
	a := individual{rank: 0, cd: 1}
	b := individual{rank: 1, cd: 100}
	if !crowdedLess(a, b) {
		t.Error("lower rank must win regardless of crowding")
	}
	c := individual{rank: 0, cd: 5}
	if !crowdedLess(c, a) {
		t.Error("equal rank: larger crowding distance must win")
	}
}

func TestSelectNextSizeAndElitism(t *testing.T) {
	// Build a union where the first front is smaller than the target size.
	var union []individual
	objs := [][]float64{
		{1, 4}, {2, 3}, {4, 1}, // F1
		{2, 5}, {3, 4}, {5, 2}, // F2
		{6, 6}, {7, 7}, // F3
	}
	for _, o := range objs {
		union = append(union, individual{obj: o})
	}
	next := selectNext(union, 5)
	if len(next) != 5 {
		t.Fatalf("selected %d, want 5", len(next))
	}
	// All of F1 must survive (elitism).
	f1 := map[string]bool{"1,4": true, "2,3": true, "4,1": true}
	found := 0
	for _, ind := range next {
		k := keyOf(ind.obj)
		if f1[k] {
			found++
		}
	}
	if found != 3 {
		t.Errorf("only %d/3 first-front members survived", found)
	}
}

func keyOf(o []float64) string {
	return string(rune(int(o[0])+48)) + "," + string(rune(int(o[1])+48))
}

func TestNormalizeDefaults(t *testing.T) {
	o := NSGAIIOptions{}.normalize(6)
	if o.Pop != 20 || o.Generations != 10 || o.BMax != 300 {
		t.Errorf("defaults: %+v", o)
	}
	if o.MutationRate != 1.0/6 {
		t.Errorf("mutation rate %v", o.MutationRate)
	}
	odd := NSGAIIOptions{Pop: 7}.normalize(6)
	if odd.Pop%2 != 0 {
		t.Error("odd population not rounded up")
	}
}
