// Package baselines implements the comparison methods of the paper's
// evaluation: the HASCO-like co-optimizer [64], a multi-objective BOHB
// (MOBOHB, after [18]) and NSGA-II [13].
//
// HASCO and MOBOHB are algorithmic presets over the same core.Run engine —
// exactly how the paper frames them (Fig. 10: "HASCO can be viewed as
// ChampionUpdate without SH"; Section 4.2: "MOBOHB, which also uses
// successive halving"). NSGA-II is an independent full implementation with
// fast non-dominated sorting, crowding-distance selection, simulated binary
// crossover and polynomial mutation.
package baselines

import (
	"unico/internal/core"
	"unico/internal/mobo"
	"unico/internal/simclock"
)

// HASCOOptions returns the HASCO-like configuration: Bayesian-optimization
// hardware sampling with champion surrogate updates, full software-mapping
// budget for every sampled hardware (no early stopping) and sequential
// evaluation — the regime whose cost columns Tables 1-2 report.
func HASCOOptions(batch, maxIter, bmax int, seed int64) core.Options {
	return core.Options{
		BatchSize:      batch,
		MaxIter:        maxIter,
		BMax:           bmax,
		DisableSH:      true,
		MSHPromoteFrac: 0,
		UseRobustness:  false,
		UpdateRule:     mobo.Champion,
		Workers:        1,
		Seed:           seed,
	}
}

// HASCO runs the HASCO-like baseline.
func HASCO(p core.Platform, batch, maxIter, bmax int, seed int64, clock *simclock.Clock, timeBudgetHours float64) core.Result {
	opt := HASCOOptions(batch, maxIter, bmax, seed)
	opt.Clock = clock
	opt.TimeBudgetHours = timeBudgetHours
	return core.Run(p, opt)
}

// MOBOHBOptions returns the multi-objective BOHB configuration: MOBO
// hardware sampling with *default* successive halving (no AUC promotion),
// model updates from all evaluated samples, parallel jobs, no robustness
// objective.
func MOBOHBOptions(batch, maxIter, bmax int, seed int64) core.Options {
	return core.Options{
		BatchSize:      batch,
		MaxIter:        maxIter,
		BMax:           bmax,
		MSHPromoteFrac: 0,
		UseRobustness:  false,
		UpdateRule:     mobo.AllSamples,
		Workers:        8,
		Seed:           seed,
	}
}

// MOBOHB runs the multi-objective BOHB baseline.
func MOBOHB(p core.Platform, batch, maxIter, bmax int, seed int64, clock *simclock.Clock, timeBudgetHours float64) core.Result {
	opt := MOBOHBOptions(batch, maxIter, bmax, seed)
	opt.Clock = clock
	opt.TimeBudgetHours = timeBudgetHours
	return core.Run(p, opt)
}

// SHChampionOptions returns the "SH + ChampionUpdate" ablation of Fig. 10:
// default successive halving with the vanilla surrogate update.
func SHChampionOptions(batch, maxIter, bmax int, seed int64) core.Options {
	return core.Options{
		BatchSize:      batch,
		MaxIter:        maxIter,
		BMax:           bmax,
		MSHPromoteFrac: 0,
		UseRobustness:  false,
		UpdateRule:     mobo.Champion,
		Workers:        8,
		Seed:           seed,
	}
}

// MSHChampionOptions returns the "MSH + ChampionUpdate" ablation of Fig. 10:
// modified successive halving, vanilla surrogate update.
func MSHChampionOptions(batch, maxIter, bmax int, seed int64) core.Options {
	opt := SHChampionOptions(batch, maxIter, bmax, seed)
	opt.MSHPromoteFrac = 0.15
	return opt
}
