package baselines

import (
	"math"
	"math/rand"
	"sync"

	"unico/internal/core"
	"unico/internal/pareto"
	"unico/internal/ppa"
	"unico/internal/robust"
	"unico/internal/simclock"
)

// NSGAIIOptions parameterizes the NSGA-II baseline.
type NSGAIIOptions struct {
	// Pop is the population size.
	Pop int
	// Generations bounds the evolutionary loop.
	Generations int
	// BMax is the full software-mapping budget spent on every individual.
	BMax int
	// Workers bounds parallel individual evaluations.
	Workers int
	// Seed makes the run deterministic.
	Seed int64
	// Clock accrues simulated wall-clock cost (fresh clock if nil).
	Clock *simclock.Clock
	// TimeBudgetHours stops the run once the clock passes it (0 = no cap).
	TimeBudgetHours float64
	// EtaC and EtaM are the SBX and polynomial-mutation distribution
	// indices (defaults 15 and 20).
	EtaC, EtaM float64
	// MutationRate is the per-gene mutation probability (default 1/dim).
	MutationRate float64
}

func (o NSGAIIOptions) normalize(dim int) NSGAIIOptions {
	if o.Pop < 4 {
		o.Pop = 20
	}
	if o.Pop%2 != 0 {
		o.Pop++
	}
	if o.Generations <= 0 {
		o.Generations = 10
	}
	if o.BMax <= 0 {
		o.BMax = 300
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.EtaC <= 0 {
		o.EtaC = 15
	}
	if o.EtaM <= 0 {
		o.EtaM = 20
	}
	if o.MutationRate <= 0 {
		o.MutationRate = 1 / float64(dim)
	}
	if o.Clock == nil {
		o.Clock = &simclock.Clock{}
	}
	return o
}

// individual is one population member with its evaluation.
type individual struct {
	x    []float64
	cand core.Candidate
	obj  []float64
	rank int
	cd   float64
}

// NSGAII runs the NSGA-II baseline co-search on the platform: every
// individual's fitness is the PPA of its best software mapping found with
// the full b_max budget.
func NSGAII(p core.Platform, o NSGAIIOptions) core.Result {
	space := p.Space()
	o = o.normalize(space.Dim())
	rng := rand.New(rand.NewSource(o.Seed))

	var res core.Result
	evaluate := func(xs [][]float64, gen int) []individual {
		inds := make([]individual, len(xs))
		var wg sync.WaitGroup
		sem := make(chan struct{}, o.Workers)
		for i, x := range xs {
			wg.Add(1)
			//unicolint:allow ctxflow bounded local semaphore: every slot is released by a worker goroutine that always terminates; no remote peer can wedge the send
			sem <- struct{}{}
			go func(i int, x []float64) {
				defer wg.Done()
				defer func() { <-sem }()
				job := p.NewJob(x, o.Seed+int64(gen)*1_000_000+int64(i))
				job.Advance(o.BMax)
				cand := core.Candidate{X: x, History: job.History(), Iter: gen}
				if met, ok := job.Best(); ok {
					cand.Metrics = met
					cand.Sensitivity = robust.Sensitivity(job.RawHistory(), robust.DefaultAlpha)
					cand.Feasible = met.PowerMW <= capOr(p.PowerCapMW()) && met.AreaMM2 <= capOr(p.AreaCapMM2())
				} else {
					cand.Metrics = penaltyMetrics()
					cand.Sensitivity = robust.RInfeasible
				}
				inds[i] = individual{x: x, cand: cand, obj: cand.Objectives(false)}
			}(i, x)
		}
		wg.Wait()
		o.Clock.AdvanceParallel(len(xs), float64(o.BMax)*p.EvalCostSeconds(), o.Workers)
		res.Evals += len(xs) * o.BMax
		res.All = append(res.All, candsOf(inds)...)
		return inds
	}

	// Initial population.
	xs := make([][]float64, o.Pop)
	for i := range xs {
		xs[i] = space.Sample(rng)
	}
	pop := evaluate(xs, 0)
	assignRanks(pop)
	res.Front = frontOf(res.All)
	res.Trace = append(res.Trace, tracePoint(0, o.Clock, res.Front))

	for gen := 1; gen <= o.Generations; gen++ {
		if o.TimeBudgetHours > 0 && o.Clock.Hours() >= o.TimeBudgetHours {
			break
		}
		// Variation: binary tournaments, SBX, polynomial mutation.
		children := make([][]float64, 0, o.Pop)
		for len(children) < o.Pop {
			p1 := tournament(pop, rng)
			p2 := tournament(pop, rng)
			c1, c2 := sbx(pop[p1].x, pop[p2].x, o.EtaC, rng)
			c1 = polyMutate(c1, o.MutationRate, o.EtaM, rng)
			c2 = polyMutate(c2, o.MutationRate, o.EtaM, rng)
			children = append(children, space.Clip(c1), space.Clip(c2))
		}
		children = children[:o.Pop]
		offspring := evaluate(children, gen)

		// Environmental selection over parents ∪ offspring.
		union := append(append([]individual(nil), pop...), offspring...)
		pop = selectNext(union, o.Pop)
		assignRanks(pop)

		res.Front = frontOf(res.All)
		res.Trace = append(res.Trace, tracePoint(gen, o.Clock, res.Front))
	}
	res.Hours = o.Clock.Hours()
	return res
}

// capOr turns a zero cap into +Inf for comparisons.
func capOr(cap float64) float64 {
	if cap <= 0 {
		return math.Inf(1)
	}
	return cap
}

func penaltyMetrics() ppa.Metrics {
	return ppa.Metrics{LatencyMs: 1e9, PowerMW: 1e7, AreaMM2: 1e5, EnergyUJ: 1e16}
}

func candsOf(inds []individual) []core.Candidate {
	out := make([]core.Candidate, len(inds))
	for i, ind := range inds {
		out[i] = ind.cand
	}
	return out
}

// frontOf extracts the feasible Pareto front of all evaluated candidates.
func frontOf(all []core.Candidate) []core.Candidate {
	var feas []core.Candidate
	var pts [][]float64
	for _, c := range all {
		if c.Feasible {
			feas = append(feas, c)
			pts = append(pts, c.Objectives(false))
		}
	}
	if len(feas) == 0 {
		return nil
	}
	idx := pareto.Front(pts)
	front := make([]core.Candidate, len(idx))
	for i, j := range idx {
		front[i] = feas[j]
	}
	return front
}

func tracePoint(gen int, clock *simclock.Clock, front []core.Candidate) core.TracePoint {
	pts := make([][]float64, len(front))
	for i, c := range front {
		pts[i] = c.Objectives(false)
	}
	return core.TracePoint{Iter: gen, Hours: clock.Hours(), FrontPPA: pts}
}

// assignRanks computes non-domination ranks and crowding distances.
func assignRanks(pop []individual) {
	pts := make([][]float64, len(pop))
	for i := range pop {
		pts[i] = pop[i].obj
	}
	fronts := pareto.NonDominatedSort(pts)
	for rank, front := range fronts {
		fp := make([][]float64, len(front))
		for i, idx := range front {
			fp[i] = pts[idx]
		}
		cds := pareto.CrowdingDistance(fp)
		for i, idx := range front {
			pop[idx].rank = rank
			pop[idx].cd = cds[i]
		}
	}
}

// tournament returns the index of the crowded-comparison winner of two
// random members.
func tournament(pop []individual, rng *rand.Rand) int {
	i := rng.Intn(len(pop))
	j := rng.Intn(len(pop))
	if crowdedLess(pop[j], pop[i]) {
		return j
	}
	return i
}

// crowdedLess is NSGA-II's crowded-comparison operator (≺): lower rank, or
// equal rank and larger crowding distance.
func crowdedLess(a, b individual) bool {
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.cd > b.cd
}

// selectNext fills the next population front-by-front, breaking the last
// front by crowding distance.
func selectNext(union []individual, n int) []individual {
	pts := make([][]float64, len(union))
	for i := range union {
		pts[i] = union[i].obj
	}
	fronts := pareto.NonDominatedSort(pts)
	next := make([]individual, 0, n)
	for rank, front := range fronts {
		fp := make([][]float64, len(front))
		for i, idx := range front {
			fp[i] = pts[idx]
		}
		cds := pareto.CrowdingDistance(fp)
		for i, idx := range front {
			union[idx].rank = rank
			union[idx].cd = cds[i]
		}
		if len(next)+len(front) <= n {
			for _, idx := range front {
				next = append(next, union[idx])
			}
			continue
		}
		// Partial front: take the most crowded-distant members.
		rest := append([]int(nil), front...)
		sortByCD(rest, union)
		for _, idx := range rest {
			if len(next) == n {
				break
			}
			next = append(next, union[idx])
		}
		break
	}
	return next
}

// sortByCD sorts indices by descending crowding distance (insertion sort;
// fronts are small).
func sortByCD(idx []int, union []individual) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && union[idx[j]].cd > union[idx[j-1]].cd; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// sbx is simulated binary crossover on unit-cube vectors.
func sbx(a, b []float64, etaC float64, rng *rand.Rand) ([]float64, []float64) {
	c1 := append([]float64(nil), a...)
	c2 := append([]float64(nil), b...)
	for i := range a {
		if rng.Float64() > 0.9 {
			continue
		}
		u := rng.Float64()
		var beta float64
		if u <= 0.5 {
			beta = math.Pow(2*u, 1/(etaC+1))
		} else {
			beta = math.Pow(1/(2*(1-u)), 1/(etaC+1))
		}
		c1[i] = clamp01(0.5 * ((1+beta)*a[i] + (1-beta)*b[i]))
		c2[i] = clamp01(0.5 * ((1-beta)*a[i] + (1+beta)*b[i]))
	}
	return c1, c2
}

// polyMutate is polynomial mutation on unit-cube vectors.
func polyMutate(x []float64, rate, etaM float64, rng *rand.Rand) []float64 {
	out := append([]float64(nil), x...)
	for i := range out {
		if rng.Float64() > rate {
			continue
		}
		u := rng.Float64()
		var delta float64
		if u < 0.5 {
			delta = math.Pow(2*u, 1/(etaM+1)) - 1
		} else {
			delta = 1 - math.Pow(2*(1-u), 1/(etaM+1))
		}
		out[i] = clamp01(out[i] + delta)
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
