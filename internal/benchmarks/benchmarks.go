// Package benchmarks holds the repo's canonical benchmark bodies as plain
// func(*testing.B) values, so the same code runs under `go test -bench`
// (thin wrappers in the regular _test files) and under cmd/unicobench via
// testing.Benchmark — which is what lets the bench harness emit a
// schema-versioned BENCH_*.json trajectory from exactly the workloads the
// test suite exercises. The package must stay importable from everywhere
// benches live, so it never imports the root unico package.
package benchmarks

import (
	"math/rand"
	"testing"

	"unico/internal/camodel"
	"unico/internal/core"
	"unico/internal/evalcache"
	"unico/internal/gp"
	"unico/internal/hw"
	"unico/internal/linalg"
	"unico/internal/maestro"
	"unico/internal/mapping"
	"unico/internal/mapsearch"
	"unico/internal/platform"
	"unico/internal/simclock"
	"unico/internal/workload"
)

// Case is one named canonical benchmark.
type Case struct {
	Name string
	Fn   func(b *testing.B)
}

// All returns the canonical benchmark registry in a fixed order: the
// substrate micro-benches first, the end-to-end micro run last (it is the
// slowest and dominates the recorded phase tree). The rung-workload cases
// are the leaf variants rather than the b.Run parents, because
// testing.Benchmark does not surface sub-benchmark results.
func All() []Case {
	return []Case{
		{Name: "GPFitPredict", Fn: GPFitPredict},
		{Name: "CholeskyBlocked", Fn: CholeskyBlocked},
		{Name: "Rank1Update", Fn: Rank1Update},
		{Name: "MappingSearchUnit", Fn: MappingSearchUnit},
		{Name: "RepeatedRungWorkload/uncached", Fn: rungUncached},
		{Name: "RepeatedRungWorkload/cached", Fn: rungCached},
		{Name: "RepeatedRungWorkloadAscend/uncached", Fn: ascendUncached},
		{Name: "RepeatedRungWorkloadAscend/cached", Fn: ascendCached},
		{Name: "EndToEndMicro", Fn: EndToEndMicro},
	}
}

// GPFitPredict measures surrogate refitting plus a prediction at the
// training sizes MOBO reaches.
func GPFitPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, d := 128, 6
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Float64()
		}
		xs[i] = x
		ys[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := gp.FitAuto(xs, ys)
		if err != nil {
			b.Fatal(err)
		}
		g.Predict(xs[0])
	}
}

// spdMatrix builds a random well-conditioned SPD matrix A = B·Bᵀ + n·I.
func spdMatrix(rng *rand.Rand, n int) *linalg.Matrix {
	bm := linalg.New(n, n)
	for i := range bm.Data {
		bm.Data[i] = rng.NormFloat64()
	}
	a := linalg.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += bm.At(i, k) * bm.At(j, k)
			}
			a.Set(i, j, s)
		}
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

// CholeskyBlocked measures the blocked factorization on a 256×256 SPD
// matrix — large enough that several panel/trailing-update rounds run.
func CholeskyBlocked(b *testing.B) {
	a := spdMatrix(rand.New(rand.NewSource(1)), 256)
	dst := linalg.New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.CholeskyInto(dst, a); err != nil {
			b.Fatal(err)
		}
	}
}

// Rank1Update measures the O(n²) rank-1 factor update against the O(n³)
// refactorization it replaces on the incremental-GP path.
func Rank1Update(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 256
	a := spdMatrix(rng, n)
	base, err := linalg.Cholesky(a)
	if err != nil {
		b.Fatal(err)
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	l := linalg.New(n, n)
	vv := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(l.Data, base.Data)
		copy(vv, v)
		if err := linalg.CholeskyUpdate(l, vv); err != nil {
			b.Fatal(err)
		}
	}
}

// MappingSearchUnit measures one network-level budget unit of the
// FlexTensor-like search on MobileNet.
func MappingSearchUnit(b *testing.B) {
	eng := maestro.Engine{}
	cfg := hw.Spatial{PEX: 8, PEY: 8, L1Bytes: 1728, L2KB: 432, NoCBW: 128,
		Dataflow: hw.OutputStationary}
	ns := mapsearch.NewSpatialSearcher(eng, cfg, workload.MobileNet(), mapsearch.FlexTensorLike, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ns.Advance(1)
	}
}

// rungTriple models what successive halving actually does to the PPA
// engine: a batch of hardware candidates whose surviving mapping searches
// are re-advanced rung after rung, re-evaluating the same warm-start and
// incumbent schedules every time.
type rungTriple struct {
	cfg hw.Spatial
	m   mapping.Spatial
	l   workload.Layer
}

func rungWorkload() []rungTriple {
	space := hw.NewSpatialSpace(hw.Edge)
	rng := rand.New(rand.NewSource(7))
	layers := workload.MobileNet().Layers
	if len(layers) > 8 {
		layers = layers[:8]
	}
	var triples []rungTriple
	for cand := 0; cand < 4; cand++ {
		cfg := space.Decode(space.Sample(rng))
		for _, l := range layers {
			for s := 0; s < 8; s++ {
				m := mapping.RandomSpatial(rng, l).Canon(l)
				triples = append(triples, rungTriple{cfg: cfg, m: m, l: l})
			}
		}
	}
	return triples
}

// RepeatedRungWorkload measures the hit-rate win of the evaluation cache on
// a repeated-rung pattern: each "rung" revisits the identical (hardware,
// mapping, layer) triples, so with the cache only the first rung pays for
// engine computation.
func RepeatedRungWorkload(b *testing.B) {
	b.Run("uncached", rungUncached)
	b.Run("cached", rungCached)
}

// rungs is the number of times each repeated-rung workload revisits its
// triples per benchmark iteration.
const rungs = 4

func rungUncached(b *testing.B) {
	triples := rungWorkload()
	eng := maestro.Engine{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < rungs; r++ {
			for _, tr := range triples {
				_, _ = eng.Evaluate(tr.cfg, tr.m, tr.l)
			}
		}
	}
	b.ReportMetric(0, "hit-rate")
}

func rungCached(b *testing.B) {
	triples := rungWorkload()
	// One cache across all b.N iterations: after the first rung every
	// evaluation is a hit, which is exactly the warm-start regime.
	eng := evalcache.Spatial{Inner: maestro.Engine{}, Cache: evalcache.New(0)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < rungs; r++ {
			for _, tr := range triples {
				_, _ = eng.Evaluate(tr.cfg, tr.m, tr.l)
			}
		}
	}
	b.ReportMetric(eng.Cache.Stats().HitRate(), "hit-rate")
}

// ascendTriple mirrors rungTriple on the Ascend-like platform, where each
// evaluation runs the cycle-level simulator — the regime the cache is
// really for (a hit saves simulation, not just arithmetic).
type ascendTriple struct {
	cfg hw.Ascend
	m   mapping.Ascend
	l   workload.Layer
}

func ascendRungWorkload() []ascendTriple {
	space := hw.NewAscendSpace()
	rng := rand.New(rand.NewSource(7))
	layers := workload.DLEU().Layers
	if len(layers) > 4 {
		layers = layers[:4]
	}
	var triples []ascendTriple
	for cand := 0; cand < 2; cand++ {
		cfg := space.Decode(space.Sample(rng))
		for _, l := range layers {
			for s := 0; s < 4; s++ {
				m := mapping.RandomAscend(rng, l).Canon(l)
				triples = append(triples, ascendTriple{cfg: cfg, m: m, l: l})
			}
		}
	}
	return triples
}

// RepeatedRungWorkloadAscend is the cycle-level variant of
// RepeatedRungWorkload: the simulator costs orders of magnitude more than a
// key hash, so the cached ns/op tracks the miss fraction.
func RepeatedRungWorkloadAscend(b *testing.B) {
	b.Run("uncached", ascendUncached)
	b.Run("cached", ascendCached)
}

func ascendUncached(b *testing.B) {
	triples := ascendRungWorkload()
	eng := camodel.Engine{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < rungs; r++ {
			for _, tr := range triples {
				_, _ = eng.Evaluate(tr.cfg, tr.m, tr.l)
			}
		}
	}
	b.ReportMetric(0, "hit-rate")
}

func ascendCached(b *testing.B) {
	triples := ascendRungWorkload()
	eng := evalcache.Ascend{Inner: camodel.Engine{}, Cache: evalcache.New(0)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < rungs; r++ {
			for _, tr := range triples {
				_, _ = eng.Evaluate(tr.cfg, tr.m, tr.l)
			}
		}
	}
	b.ReportMetric(eng.Cache.Stats().HitRate(), "hit-rate")
}

// EndToEndMicro runs a Table-1-style micro co-search end to end — a small
// MOBO loop with successive halving on the open-source edge platform — the
// workload whose phase breakdown answers "what do we optimize first."
func EndToEndMicro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := platform.NewSpatial(hw.Edge, []workload.Workload{workload.MobileNet()}, mapsearch.FlexTensorLike)
		res := core.Run(p, core.Options{
			BatchSize: 4,
			MaxIter:   2,
			BMax:      10,
			Workers:   2,
			Seed:      1,
			Clock:     &simclock.Clock{},
		})
		if len(res.All) == 0 {
			b.Fatal("end-to-end micro run produced no candidates")
		}
	}
}
