package runid

import "testing"

func TestNewIsUniqueAndWellFormed(t *testing.T) {
	a, b := New(), New()
	if a == b {
		t.Errorf("two fresh IDs collide: %q", a)
	}
	if len(a) != 16 {
		t.Errorf("ID %q has length %d, want 16 hex chars", a, len(a))
	}
	for _, c := range a {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			t.Errorf("ID %q contains non-hex char %q", a, c)
		}
	}
}

func TestSetCurrentRoundTrip(t *testing.T) {
	prev := Current()
	defer Set(prev)
	Set("roundtrip")
	if got := Current(); got != "roundtrip" {
		t.Errorf("Current() = %q after Set", got)
	}
	Set("")
	if got := Current(); got != "" {
		t.Errorf("Current() = %q after clearing", got)
	}
}
