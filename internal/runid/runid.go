// Package runid generates and holds the per-run correlation ID that ties a
// co-search's observability surfaces together: every slog record, the flight
// record header, and every internal/dist request (as the Header HTTP header,
// which ppaserver echoes into its request logs and metrics). One ID is
// generated when a run starts and installed process-wide, so deeply nested
// code — HTTP clients, engines — can attach it without threading it through
// every signature.
package runid

import (
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

// Header is the HTTP header carrying the run ID across the dist boundary.
const Header = "X-Unico-Run-ID"

// New returns a fresh random run ID (16 hex chars).
func New() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively unreachable; a fixed fallback
		// keeps the ID non-empty rather than panicking a long run.
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// current is the process-wide run ID ("" until a run starts).
var current atomic.Value

// Set installs the process-wide current run ID.
func Set(id string) { current.Store(id) }

// Current returns the process-wide run ID, or "" when no run has started.
func Current() string {
	if v, ok := current.Load().(string); ok {
		return v
	}
	return ""
}
