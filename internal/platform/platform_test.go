package platform

import (
	"math/rand"
	"testing"

	"unico/internal/core"
	"unico/internal/hw"
	"unico/internal/mapsearch"
	"unico/internal/workload"
)

// Compile-time interface checks.
var (
	_ core.Platform = (*Spatial)(nil)
	_ core.Platform = (*Ascend)(nil)
)

func TestSpatialPlatform(t *testing.T) {
	p := NewSpatial(hw.Edge, []workload.Workload{workload.MobileNet()}, mapsearch.FlexTensorLike)
	if p.Space().Dim() != 6 {
		t.Errorf("Dim = %d", p.Space().Dim())
	}
	if p.PowerCapMW() != 2000 {
		t.Errorf("PowerCapMW = %v", p.PowerCapMW())
	}
	if p.AreaCapMM2() != 0 {
		t.Errorf("AreaCapMM2 = %v", p.AreaCapMM2())
	}
	// Budget-unit cost = per-eval cost x layer count.
	wantCost := p.Engine.EvalCostSeconds() * float64(len(workload.MobileNet().Layers))
	if got := p.EvalCostSeconds(); got != wantCost {
		t.Errorf("EvalCostSeconds = %v, want %v", got, wantCost)
	}
	x := p.Space().Sample(rand.New(rand.NewSource(1)))
	if p.Describe(x) == "" {
		t.Error("empty Describe")
	}
	job := p.NewJob(x, 1)
	job.Advance(3)
	if job.Spent() != 3 {
		t.Errorf("Spent = %d", job.Spent())
	}
}

func TestAscendPlatform(t *testing.T) {
	p := NewAscend([]workload.Workload{workload.DLEU()}, mapsearch.DepthFirst)
	if p.AreaCapMM2() != 200 {
		t.Errorf("AreaCapMM2 = %v, want the paper's 200", p.AreaCapMM2())
	}
	if p.PowerCapMW() != 0 {
		t.Errorf("PowerCapMW = %v", p.PowerCapMW())
	}
	if p.EvalCostSeconds() < 60 {
		t.Errorf("CAModel budget-unit cost %v suspiciously cheap", p.EvalCostSeconds())
	}
	def := p.AscendSpace().Encode(hw.DefaultAscend())
	job := p.NewJob(def, 2)
	job.Advance(2)
	if _, ok := job.Best(); !ok {
		t.Error("default core found no schedule in 2 units")
	}
}

func TestCombine(t *testing.T) {
	p := NewSpatial(hw.Edge,
		[]workload.Workload{workload.BERT(), workload.ViT()}, mapsearch.FlexTensorLike)
	combined := p.Workload()
	if combined.Name != "Bert+VIT" {
		t.Errorf("combined name %q", combined.Name)
	}
	want := len(workload.BERT().Layers) + len(workload.ViT().Layers)
	if len(combined.Layers) != want {
		t.Errorf("combined layers %d, want %d", len(combined.Layers), want)
	}
	// Layer names must be qualified by network.
	if combined.Layers[0].Name != "Bert/qkv_proj" {
		t.Errorf("layer name %q", combined.Layers[0].Name)
	}
	single := NewSpatial(hw.Edge, []workload.Workload{workload.BERT()}, mapsearch.FlexTensorLike)
	if single.Workload().Name != "Bert" {
		t.Error("single-workload combine must be the identity")
	}
}

func TestConstructorsRejectEmpty(t *testing.T) {
	for name, fn := range map[string]func(){
		"spatial": func() { NewSpatial(hw.Edge, nil, mapsearch.FlexTensorLike) },
		"ascend":  func() { NewAscend(nil, mapsearch.DepthFirst) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s constructor accepted empty workloads", name)
				}
			}()
			fn()
		}()
	}
}
