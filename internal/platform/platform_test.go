package platform

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"unico/internal/core"
	"unico/internal/evalcache"
	"unico/internal/hw"
	"unico/internal/maestro"
	"unico/internal/mapping"
	"unico/internal/mapsearch"
	"unico/internal/ppa"
	"unico/internal/workload"
)

// Compile-time interface checks.
var (
	_ core.Platform = (*Spatial)(nil)
	_ core.Platform = (*Ascend)(nil)
)

func TestSpatialPlatform(t *testing.T) {
	p := NewSpatial(hw.Edge, []workload.Workload{workload.MobileNet()}, mapsearch.FlexTensorLike)
	if p.Space().Dim() != 6 {
		t.Errorf("Dim = %d", p.Space().Dim())
	}
	if p.PowerCapMW() != 2000 {
		t.Errorf("PowerCapMW = %v", p.PowerCapMW())
	}
	if p.AreaCapMM2() != 0 {
		t.Errorf("AreaCapMM2 = %v", p.AreaCapMM2())
	}
	// Budget-unit cost = per-eval cost x layer count.
	wantCost := p.Engine.EvalCostSeconds() * float64(len(workload.MobileNet().Layers))
	if got := p.EvalCostSeconds(); got != wantCost {
		t.Errorf("EvalCostSeconds = %v, want %v", got, wantCost)
	}
	x := p.Space().Sample(rand.New(rand.NewSource(1)))
	if p.Describe(x) == "" {
		t.Error("empty Describe")
	}
	job := p.NewJob(x, 1)
	job.Advance(3)
	if job.Spent() != 3 {
		t.Errorf("Spent = %d", job.Spent())
	}
}

func TestAscendPlatform(t *testing.T) {
	p := NewAscend([]workload.Workload{workload.DLEU()}, mapsearch.DepthFirst)
	if p.AreaCapMM2() != 200 {
		t.Errorf("AreaCapMM2 = %v, want the paper's 200", p.AreaCapMM2())
	}
	if p.PowerCapMW() != 0 {
		t.Errorf("PowerCapMW = %v", p.PowerCapMW())
	}
	if p.EvalCostSeconds() < 60 {
		t.Errorf("CAModel budget-unit cost %v suspiciously cheap", p.EvalCostSeconds())
	}
	def := p.AscendSpace().Encode(hw.DefaultAscend())
	job := p.NewJob(def, 2)
	job.Advance(2)
	if _, ok := job.Best(); !ok {
		t.Error("default core found no schedule in 2 units")
	}
}

func TestCombine(t *testing.T) {
	p := NewSpatial(hw.Edge,
		[]workload.Workload{workload.BERT(), workload.ViT()}, mapsearch.FlexTensorLike)
	combined := p.Workload()
	if combined.Name != "Bert+VIT" {
		t.Errorf("combined name %q", combined.Name)
	}
	want := len(workload.BERT().Layers) + len(workload.ViT().Layers)
	if len(combined.Layers) != want {
		t.Errorf("combined layers %d, want %d", len(combined.Layers), want)
	}
	// Layer names must be qualified by network.
	if combined.Layers[0].Name != "Bert/qkv_proj" {
		t.Errorf("layer name %q", combined.Layers[0].Name)
	}
	single := NewSpatial(hw.Edge, []workload.Workload{workload.BERT()}, mapsearch.FlexTensorLike)
	if single.Workload().Name != "Bert" {
		t.Error("single-workload combine must be the identity")
	}
}

func TestConstructorsRejectEmpty(t *testing.T) {
	for name, fn := range map[string]func(){
		"spatial": func() { NewSpatial(hw.Edge, nil, mapsearch.FlexTensorLike) },
		"ascend":  func() { NewAscend(nil, mapsearch.DepthFirst) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s constructor accepted empty workloads", name)
				}
			}()
			fn()
		}()
	}
}

// countingSpatialEngine counts engine calls through to maestro, so cache
// tests can prove repeated evaluations perform no recomputation.
type countingSpatialEngine struct {
	inner maestro.Engine
	calls *atomic.Int64
}

func (e countingSpatialEngine) Evaluate(c hw.Spatial, m mapping.Spatial, l workload.Layer) (ppa.Metrics, error) {
	e.calls.Add(1)
	return e.inner.Evaluate(c, m, l)
}
func (e countingSpatialEngine) Area(c hw.Spatial) float64 { return e.inner.Area(c) }
func (e countingSpatialEngine) EvalCostSeconds() float64  { return e.inner.EvalCostSeconds() }

// TestCachedJobPerformsNoRecomputation is the acceptance check for the
// evaluation cache: re-running the identical (x, seed) mapping search must be
// served entirely from the cache, with zero engine calls.
func TestCachedJobPerformsNoRecomputation(t *testing.T) {
	var calls atomic.Int64
	p := NewSpatial(hw.Edge, []workload.Workload{workload.MobileNet()}, mapsearch.FlexTensorLike)
	p.Engine = countingSpatialEngine{calls: &calls}
	p.EnableCache(evalcache.New(0))

	x := p.Space().Sample(rand.New(rand.NewSource(5)))

	job := p.NewJob(x, 11)
	job.Advance(6)
	first := calls.Load()
	if first == 0 {
		t.Fatal("first job performed no engine calls")
	}

	job2 := p.NewJob(x, 11)
	job2.Advance(6)
	if got := calls.Load(); got != first {
		t.Errorf("repeated job performed %d engine recomputations", got-first)
	}
	if !reflect.DeepEqual(job2.History(), job.History()) {
		t.Error("cached job history differs from original")
	}
}

// TestCoSearchBitIdenticalWithCache pins the cache's correctness contract:
// a full co-search returns bit-identical results with the cache on and off.
func TestCoSearchBitIdenticalWithCache(t *testing.T) {
	opt := core.UNICOOptions(4, 2, 8, 3)
	opt.Workers = 2

	run := func(cached bool) core.Result {
		p := NewSpatial(hw.Edge, []workload.Workload{workload.MobileNet()}, mapsearch.FlexTensorLike)
		if cached {
			p.EnableCache(evalcache.New(0))
		}
		return core.Run(p, opt)
	}

	plain, cached := run(false), run(true)
	if !reflect.DeepEqual(plain.Front, cached.Front) {
		t.Errorf("cached front differs:\n off %+v\n on  %+v", plain.Front, cached.Front)
	}
	if !reflect.DeepEqual(plain.All, cached.All) {
		t.Error("cached candidate set differs from uncached run")
	}
	if plain.Evals != cached.Evals || plain.Hours != cached.Hours {
		t.Errorf("cached accounting differs: evals %d vs %d, sim %v vs %v h",
			plain.Evals, cached.Evals, plain.Hours, cached.Hours)
	}
}
