// Package platform wires the hardware spaces, cost models and
// mapping-search tools into the core.Platform interface the co-optimizer
// drives — one constructor per accelerator platform of the paper's
// evaluation (Section 4.1).
package platform

import (
	"strings"

	"unico/internal/camodel"
	"unico/internal/evalcache"
	"unico/internal/hw"
	"unico/internal/maestro"
	"unico/internal/mapsearch"
	"unico/internal/mobo"
	"unico/internal/workload"
)

// combine concatenates the workload set into one layer table; the
// co-optimization objective is then the aggregate PPA across all input
// networks, as in the paper's multi-workload runs (Sections 4.3 and 4.4).
func combine(ws []workload.Workload) workload.Workload {
	if len(ws) == 1 {
		return ws[0]
	}
	names := make([]string, len(ws))
	var layers []workload.Layer
	for i, w := range ws {
		names[i] = w.Name
		for _, l := range w.Layers {
			l.Name = w.Name + "/" + l.Name
			layers = append(layers, l)
		}
	}
	return workload.Workload{Name: strings.Join(names, "+"), Layers: layers}
}

// spatialEngine picks the platform's PPA oracle: the bare analytical model,
// or — when a process-wide evaluation cache is installed
// (evalcache.SetProcess) — the model behind a content-addressed cache.
func spatialEngine() mapsearch.SpatialEngine {
	if c := evalcache.Process(); c != nil {
		return evalcache.Spatial{Inner: maestro.Engine{}, Cache: c}
	}
	return maestro.Engine{}
}

// ascendEngine mirrors spatialEngine for the cycle-level simulator.
func ascendEngine() mapsearch.AscendEngine {
	if c := evalcache.Process(); c != nil {
		return evalcache.Ascend{Inner: camodel.Engine{}, Cache: c}
	}
	return camodel.Engine{}
}

// Spatial is the open-source spatial-accelerator platform: the Fig. 1
// template searched over MAESTRO-like analytical PPA.
type Spatial struct {
	// Engine is the PPA oracle mapping searches evaluate against. The
	// constructor installs maestro.Engine (cache-wrapped when a process-wide
	// evalcache is set); replace it to substitute a stub or add a cache.
	Engine    mapsearch.SpatialEngine
	Algo      mapsearch.Algo
	space     *hw.SpatialSpace
	workloads workload.Workload
}

// NewSpatial builds the platform for a deployment scenario and workload set.
func NewSpatial(sc hw.Scenario, ws []workload.Workload, algo mapsearch.Algo) *Spatial {
	if len(ws) == 0 {
		panic("platform: NewSpatial needs at least one workload")
	}
	return &Spatial{
		Engine:    spatialEngine(),
		Algo:      algo,
		space:     hw.NewSpatialSpace(sc),
		workloads: combine(ws),
	}
}

// EnableCache replaces the platform's engine with the same engine behind c
// and returns the platform (nil c is a no-op). Wrapping is idempotent in
// effect: hits on an already-cached engine simply resolve in the outer cache.
func (p *Spatial) EnableCache(c *evalcache.Cache) *Spatial {
	if c != nil {
		p.Engine = evalcache.Spatial{Inner: p.Engine, Cache: c}
	}
	return p
}

// Space returns the hardware design space.
func (p *Spatial) Space() mobo.Space { return p.space }

// SpatialSpace returns the concrete space for decoding.
func (p *Spatial) SpatialSpace() *hw.SpatialSpace { return p.space }

// Workload returns the (combined) workload under co-optimization.
func (p *Spatial) Workload() workload.Workload { return p.workloads }

// NewJob builds the mapping search for the hardware at x.
func (p *Spatial) NewJob(x []float64, seed int64) mapsearch.Searcher {
	cfg := p.space.Decode(x)
	return mapsearch.NewSpatialSearcher(p.Engine, cfg, p.workloads, p.Algo, seed)
}

// EvalCostSeconds is the simulated cost of one budget unit: one network
// mapping evaluation, i.e. one analytical-model call per layer.
func (p *Spatial) EvalCostSeconds() float64 {
	return p.Engine.EvalCostSeconds() * float64(len(p.workloads.Layers))
}

// Describe renders the hardware at x.
func (p *Spatial) Describe(x []float64) string { return p.space.Describe(x) }

// PowerCapMW is the scenario's deployment power constraint.
func (p *Spatial) PowerCapMW() float64 { return p.space.Scenario().PowerCapMW() }

// AreaCapMM2 is unconstrained on the open-source platform.
func (p *Spatial) AreaCapMM2() float64 { return 0 }

// Ascend is the Ascend-like industrial platform: the DaVinci-style core
// searched over the cycle-level simulator, under the 200 mm² edge-chip area
// constraint of paper Section 4.6.
type Ascend struct {
	// Engine is the PPA oracle schedule searches evaluate against. The
	// constructor installs camodel.Engine (cache-wrapped when a process-wide
	// evalcache is set); replace it to substitute a stub or add a cache.
	Engine    mapsearch.AscendEngine
	Algo      mapsearch.Algo
	AreaCap   float64
	space     *hw.AscendSpace
	workloads workload.Workload
}

// NewAscend builds the Ascend-like platform for a workload set.
func NewAscend(ws []workload.Workload, algo mapsearch.Algo) *Ascend {
	if len(ws) == 0 {
		panic("platform: NewAscend needs at least one workload")
	}
	return &Ascend{
		Engine:    ascendEngine(),
		Algo:      algo,
		AreaCap:   200,
		space:     hw.NewAscendSpace(),
		workloads: combine(ws),
	}
}

// EnableCache replaces the platform's engine with the same engine behind c
// and returns the platform (nil c is a no-op).
func (p *Ascend) EnableCache(c *evalcache.Cache) *Ascend {
	if c != nil {
		p.Engine = evalcache.Ascend{Inner: p.Engine, Cache: c}
	}
	return p
}

// Space returns the hardware design space.
func (p *Ascend) Space() mobo.Space { return p.space }

// AscendSpace returns the concrete space for decoding.
func (p *Ascend) AscendSpace() *hw.AscendSpace { return p.space }

// Workload returns the (combined) workload under co-optimization.
func (p *Ascend) Workload() workload.Workload { return p.workloads }

// NewJob builds the schedule search for the core at x.
func (p *Ascend) NewJob(x []float64, seed int64) mapsearch.Searcher {
	cfg := p.space.Decode(x)
	return mapsearch.NewAscendSearcher(p.Engine, cfg, p.workloads, p.Algo, seed)
}

// EvalCostSeconds is the simulated cost of one budget unit: one network
// schedule evaluation, i.e. one CAModel call (minutes each) per layer.
func (p *Ascend) EvalCostSeconds() float64 {
	return p.Engine.EvalCostSeconds() * float64(len(p.workloads.Layers))
}

// Describe renders the core at x.
func (p *Ascend) Describe(x []float64) string { return p.space.Describe(x) }

// PowerCapMW is unconstrained in the Fig. 11 study (power is an objective).
func (p *Ascend) PowerCapMW() float64 { return 0 }

// AreaCapMM2 is the 200 mm² edge-chip constraint.
func (p *Ascend) AreaCapMM2() float64 { return p.AreaCap }
