package ppa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMetricsValid(t *testing.T) {
	good := Metrics{LatencyMs: 1, PowerMW: 2, AreaMM2: 3, EnergyUJ: 2}
	if !good.Valid() {
		t.Errorf("Valid() = false for %+v", good)
	}
	bad := []Metrics{
		{},
		{LatencyMs: -1, PowerMW: 1, AreaMM2: 1, EnergyUJ: 1},
		{LatencyMs: math.NaN(), PowerMW: 1, AreaMM2: 1, EnergyUJ: 1},
		{LatencyMs: 1, PowerMW: math.Inf(1), AreaMM2: 1, EnergyUJ: 1},
		{LatencyMs: 1, PowerMW: 1, AreaMM2: 0, EnergyUJ: 1},
	}
	for _, m := range bad {
		if m.Valid() {
			t.Errorf("Valid() = true for %+v", m)
		}
	}
}

func TestMetricsEDP(t *testing.T) {
	m := Metrics{LatencyMs: 3, EnergyUJ: 5}
	if got, want := m.EDP(), 15.0; got != want {
		t.Errorf("EDP() = %v, want %v", got, want)
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{LatencyMs: 2, PowerMW: 5, AreaMM2: 3, EnergyUJ: 10}
	b := Metrics{LatencyMs: 3, PowerMW: 10, AreaMM2: 7, EnergyUJ: 30}
	sum := a.Add(b)
	if sum.LatencyMs != 5 {
		t.Errorf("latency = %v, want 5", sum.LatencyMs)
	}
	if sum.EnergyUJ != 40 {
		t.Errorf("energy = %v, want 40", sum.EnergyUJ)
	}
	if sum.AreaMM2 != 7 {
		t.Errorf("area = %v, want max(3,7)=7", sum.AreaMM2)
	}
	if want := 40.0 / 5.0; sum.PowerMW != want {
		t.Errorf("power = %v, want %v", sum.PowerMW, want)
	}
}

func TestMetricsAddRecomputesPowerFromTotals(t *testing.T) {
	// Power must be the energy-weighted average, not the sum of powers.
	a := Metrics{LatencyMs: 1, PowerMW: 100, EnergyUJ: 100}
	b := Metrics{LatencyMs: 9, PowerMW: 100, EnergyUJ: 900}
	if got := a.Add(b).PowerMW; got != 100 {
		t.Errorf("equal-power aggregation changed power to %v", got)
	}
}

func TestMetricsScale(t *testing.T) {
	m := Metrics{LatencyMs: 2, PowerMW: 5, AreaMM2: 3, EnergyUJ: 10}
	s := m.Scale(4)
	if s.LatencyMs != 8 || s.EnergyUJ != 40 {
		t.Errorf("Scale(4) = %+v", s)
	}
	if s.PowerMW != 5 || s.AreaMM2 != 3 {
		t.Errorf("Scale must keep power and area: %+v", s)
	}
}

func TestHistoryLast(t *testing.T) {
	var empty History
	if p := empty.Last(); p != (Point{}) {
		t.Errorf("empty.Last() = %+v", p)
	}
	h := History{{Budget: 1, Loss: 5}, {Budget: 2, Loss: 3}}
	if h.Last().Loss != 3 {
		t.Errorf("Last().Loss = %v, want 3", h.Last().Loss)
	}
}

func TestHistoryMonotone(t *testing.T) {
	mono := History{{Budget: 1, Loss: 5}, {Budget: 2, Loss: 5}, {Budget: 3, Loss: 2}}
	if !mono.Monotone() {
		t.Error("Monotone() = false for a non-increasing history")
	}
	rise := History{{Budget: 1, Loss: 2}, {Budget: 2, Loss: 3}}
	if rise.Monotone() {
		t.Error("Monotone() = true for an increasing history")
	}
}

func TestHistoryAUCByHand(t *testing.T) {
	// Losses 4, 2, 1 at budgets 1, 2, 3; end loss 1.
	// Segment 1: trapezoid of heights (3, 1) width 1 = 2.
	// Segment 2: trapezoid of heights (1, 0) width 1 = 0.5.
	h := History{{Budget: 1, Loss: 4}, {Budget: 2, Loss: 2}, {Budget: 3, Loss: 1}}
	if got, want := h.AUC(), 2.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("AUC() = %v, want %v", got, want)
	}
}

func TestHistoryAUCShortHistories(t *testing.T) {
	if (History{}).AUC() != 0 {
		t.Error("empty AUC != 0")
	}
	if (History{{Budget: 1, Loss: 7}}).AUC() != 0 {
		t.Error("singleton AUC != 0")
	}
}

func TestHistoryAUCSteeperIsLarger(t *testing.T) {
	// Two histories with the same endpoints; the one that stays high longer
	// (converging later/steeper at the end) traps more area.
	early := History{{1, 10, Metrics{}}, {2, 2, Metrics{}}, {3, 2, Metrics{}}, {4, 1, Metrics{}}}
	late := History{{1, 10, Metrics{}}, {2, 10, Metrics{}}, {3, 10, Metrics{}}, {4, 1, Metrics{}}}
	if late.AUC() <= early.AUC() {
		t.Errorf("late AUC %v should exceed early AUC %v", late.AUC(), early.AUC())
	}
}

func TestHistoryTruncate(t *testing.T) {
	h := History{{Budget: 1, Loss: 3}, {Budget: 2, Loss: 2}, {Budget: 5, Loss: 1}}
	if got := h.Truncate(2); len(got) != 2 || got.Last().Loss != 2 {
		t.Errorf("Truncate(2) = %+v", got)
	}
	if got := h.Truncate(0); len(got) != 0 {
		t.Errorf("Truncate(0) = %+v", got)
	}
	if got := h.Truncate(10); len(got) != 3 {
		t.Errorf("Truncate(10) = %+v", got)
	}
}

// TestAUCNonNegativeProperty checks AUC >= 0 for any monotone history
// constructed from random non-negative decrements.
func TestAUCNonNegativeProperty(t *testing.T) {
	f := func(decs []uint8, start uint16) bool {
		loss := float64(start) + 1
		h := History{}
		for i, d := range decs {
			h = append(h, Point{Budget: i + 1, Loss: loss})
			loss -= float64(d) / 8
			if loss < 0 {
				loss = 0
			}
		}
		return h.AUC() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMonotoneAfterTruncateProperty checks the monotone contract survives
// truncation at any budget.
func TestMonotoneAfterTruncateProperty(t *testing.T) {
	f := func(decs []uint8, cut uint8) bool {
		loss := 1000.0
		h := History{}
		for i, d := range decs {
			loss -= float64(d)
			h = append(h, Point{Budget: i + 1, Loss: loss})
		}
		return h.Truncate(int(cut)).Monotone()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
