// Package ppa defines the power-performance-area (PPA) types shared by every
// cost model and search algorithm in the repository.
//
// UNICO treats the PPA estimation engine as a black box (paper Section 3.5):
// given a hardware configuration, a software mapping, and a tensor workload it
// returns latency, power and area. Both the analytical engine
// (internal/maestro) and the cycle-level simulator (internal/camodel) produce
// values of the Metrics type defined here, and the search layers consume the
// History type, which captures the monotone best-so-far trajectory of a
// software-mapping search (paper Section 3.1).
package ppa

import (
	"fmt"
	"math"
)

// Metrics is the power-performance-area result of evaluating one
// (hardware, mapping, workload) triple.
type Metrics struct {
	// LatencyMs is the end-to-end execution latency in milliseconds.
	LatencyMs float64
	// PowerMW is the average power draw in milliwatts.
	PowerMW float64
	// AreaMM2 is the silicon area of the hardware configuration in mm².
	AreaMM2 float64
	// EnergyUJ is the total energy in microjoules
	// (EnergyUJ = LatencyMs * PowerMW, since ms·mW = µJ).
	EnergyUJ float64
}

// EDP returns the energy-delay product in µJ·ms, the default software-mapping
// search objective: it moves when either latency or power moves, which is what
// the robustness metric R needs to observe (paper Section 3.4).
func (m Metrics) EDP() float64 { return m.EnergyUJ * m.LatencyMs }

// Valid reports whether the metrics describe a finite, physically meaningful
// evaluation. Cost models return invalid metrics for illegal mappings (for
// example a tile that does not fit its buffer).
func (m Metrics) Valid() bool {
	for _, v := range []float64{m.LatencyMs, m.PowerMW, m.AreaMM2, m.EnergyUJ} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return false
		}
	}
	return true
}

// Add accumulates another layer's metrics into m, keeping area as the maximum
// (area is a property of the hardware, not of the workload) and recomputing
// average power from the energy and latency totals.
func (m Metrics) Add(o Metrics) Metrics {
	sum := Metrics{
		LatencyMs: m.LatencyMs + o.LatencyMs,
		EnergyUJ:  m.EnergyUJ + o.EnergyUJ,
		AreaMM2:   math.Max(m.AreaMM2, o.AreaMM2),
	}
	if sum.LatencyMs > 0 {
		sum.PowerMW = sum.EnergyUJ / sum.LatencyMs
	}
	return sum
}

// Scale multiplies latency and energy by n (a layer repeat count), keeping
// power and area unchanged.
func (m Metrics) Scale(n int) Metrics {
	return Metrics{
		LatencyMs: m.LatencyMs * float64(n),
		PowerMW:   m.PowerMW,
		AreaMM2:   m.AreaMM2,
		EnergyUJ:  m.EnergyUJ * float64(n),
	}
}

func (m Metrics) String() string {
	return fmt.Sprintf("L=%.6gms P=%.4gmW A=%.3gmm²", m.LatencyMs, m.PowerMW, m.AreaMM2)
}

// Point is one snapshot of a software-mapping search: after spending Budget
// evaluation steps, the best mapping found so far has loss Loss and metrics M.
type Point struct {
	Budget int
	Loss   float64
	M      Metrics
}

// History is the best-so-far trajectory of a software-mapping search, ordered
// by increasing budget. A mature search tool guarantees the loss sequence is
// monotone non-increasing (paper Section 3.1); the search layers in this
// repository rely on that contract and the tests enforce it.
type History []Point

// Last returns the final (best) point, or a zero Point if the history is
// empty.
func (h History) Last() Point {
	if len(h) == 0 {
		return Point{}
	}
	return h[len(h)-1]
}

// Monotone reports whether the loss sequence never increases with budget.
func (h History) Monotone() bool {
	for i := 1; i < len(h); i++ {
		if h[i].Loss > h[i-1].Loss {
			return false
		}
	}
	return true
}

// AUC measures the area trapped between the loss curve and the horizontal
// line at the final loss value (paper Fig. 4b). A larger AUC indicates a
// steeper-converging candidate: one that was still improving substantially
// over the observed window. The modified successive halving promotes the
// top-p candidates by this value.
func (h History) AUC() float64 {
	if len(h) < 2 {
		return 0
	}
	end := h.Last().Loss
	var area float64
	for i := 1; i < len(h); i++ {
		// Trapezoidal area of the segment above the end-loss line.
		w := float64(h[i].Budget - h[i-1].Budget)
		a := h[i-1].Loss - end
		b := h[i].Loss - end
		area += w * (a + b) / 2
	}
	return area
}

// Truncate returns the prefix of the history with Budget <= b.
func (h History) Truncate(b int) History {
	n := 0
	for n < len(h) && h[n].Budget <= b {
		n++
	}
	return h[:n]
}
