// Package maestro implements an analytical power-performance-area model of
// the open-source 2D spatial accelerator, in the spirit of MAESTRO [35]: a
// data-centric reuse analysis over the tiled 7D convolution nest.
//
// The model reproduces the structure of MAESTRO's estimates rather than its
// exact numbers (which depend on proprietary technology tables):
//
//   - Latency is the maximum of compute, NoC and DRAM stream times per the
//     perfect double-buffering assumption analytical models make.
//   - Compute time counts per-PE tile steps including the ceil-division
//     padding losses, so under-utilized arrays are penalized naturally.
//   - Memory traffic is derived from operand dependence sets: an operand is
//     refetched once per trip of every loop it does not depend on, unless
//     the dataflow pins it (weight-stationary pins weights in L1,
//     output-stationary pins partial sums) or it fits wholly in L2.
//   - Energy integrates per-byte access costs at each hierarchy level plus
//     per-MAC compute energy; power adds capacity-proportional leakage.
//   - Area sums PE, SRAM and NoC contributions.
//
// Mappings whose tiles do not fit their buffers are rejected with an error;
// the search layers treat such mappings as infeasible.
package maestro

import (
	"errors"
	"fmt"
	"math"
	"time"

	"unico/internal/hw"
	"unico/internal/mapping"
	"unico/internal/ppa"
	"unico/internal/telemetry"
	"unico/internal/workload"
)

// ErrInfeasible reports a mapping that violates a buffer capacity constraint
// on the given hardware.
var ErrInfeasible = errors.New("maestro: mapping infeasible on hardware")

// Technology constants of the synthetic 28nm-class process the model
// assumes. Only relative magnitudes matter for the co-search: DRAM ≫ L2 ≫ L1
// per-byte energy, SRAM leakage proportional to capacity, and PE-array
// compute power that can breach the 2 W edge cap for the largest arrays.
const (
	ClockGHz = 1.0 // core clock

	macEnergyPJ  = 2.0   // energy per int8 MAC
	l1EnergyPJ   = 1.1   // per byte moved between L1 and a PE
	l2EnergyPJ   = 6.0   // per byte moved between L2 and L1 (incl. NoC)
	dramEnergyPJ = 120.0 // per byte moved between DRAM and L2

	peLeakMW     = 0.04  // leakage per PE
	sramLeakMWKB = 0.009 // leakage per KB of on-chip SRAM

	peAreaMM2     = 0.014  // area per PE (MAC + register file + control)
	sramAreaMM2KB = 0.0045 // area per KB of SRAM
	nocAreaMM2PE  = 0.0006 // NoC router area per PE at 64 B/cycle

	dramBWBytesPerCycle = 16.0 // off-chip bandwidth

	// l1RegReuse discounts L1→PE traffic for register-level reuse of the
	// unrolled R×S kernel window (each operand byte feeds several MACs).
	l1RegReuse = 0.35
)

// Engine is the analytical PPA estimator. The zero value is ready to use;
// EvalSeconds may be overridden to change the simulated per-evaluation cost.
type Engine struct {
	// EvalSeconds is the simulated wall-clock cost of one Evaluate call,
	// matching the paper's "analytical models output PPA in order of
	// milliseconds-to-seconds". Zero means the default of 80 ms.
	EvalSeconds float64
}

// EvalCostSeconds returns the simulated cost of one evaluation.
func (e Engine) EvalCostSeconds() float64 {
	if e.EvalSeconds > 0 {
		return e.EvalSeconds
	}
	return 0.08
}

// Area returns the silicon area of a configuration in mm². Area depends only
// on the hardware, not on the mapping or workload.
func (Engine) Area(c hw.Spatial) float64 {
	totalL1KB := float64(c.PEs()) * float64(c.L1Bytes) / 1024
	nocScale := float64(c.NoCBW) / 64
	return float64(c.PEs())*peAreaMM2 +
		(totalL1KB+float64(c.L2KB))*sramAreaMM2KB +
		float64(c.PEs())*nocAreaMM2PE*nocScale
}

// leakageMW returns the static power of a configuration in mW.
func leakageMW(c hw.Spatial) float64 {
	totalL1KB := float64(c.PEs()) * float64(c.L1Bytes) / 1024
	return float64(c.PEs())*peLeakMW + (totalL1KB+float64(c.L2KB))*sramLeakMWKB
}

// operand identifies the three tensors of a convolution.
type operand int

const (
	opInput operand = iota
	opWeight
	opOutput
)

// depends reports whether the operand's footprint varies with loop dimension
// d. Depthwise convolutions couple the input to K instead of C.
func depends(p operand, d mapping.Dim, depthwise bool) bool {
	switch p {
	case opInput:
		if depthwise {
			return d != mapping.DimC
		}
		return d != mapping.DimK
	case opWeight:
		return d == mapping.DimK || d == mapping.DimC
	case opOutput:
		return d != mapping.DimC
	}
	panic(fmt.Sprintf("maestro: bad operand %d", p))
}

// Report is the detailed account behind one evaluation: where the cycles
// and the energy went, and which resource bound the latency. It is the
// design-insight surface analytical models like MAESTRO are used for.
type Report struct {
	Metrics ppa.Metrics

	// ComputeCycles, NoCCycles and DRAMCycles are the per-resource stream
	// times; latency is their maximum (perfect double buffering).
	ComputeCycles, NoCCycles, DRAMCycles float64
	// Bottleneck names the binding resource: "compute", "noc" or "dram".
	Bottleneck string

	// NoCBytes and DRAMBytes are the total traffic volumes.
	NoCBytes, DRAMBytes float64
	// PEUtilization is useful MACs / (PEs × compute cycles): the fraction
	// of MAC slots doing real work under this mapping.
	PEUtilization float64
	// EnergyPJ breaks the dynamic+static energy down by source:
	// "mac", "l1", "noc+l2", "dram", "leakage".
	EnergyPJ map[string]float64
}

// evalCount and evalInfeasible meter the engine's hot path.
var (
	evalCount      = telemetry.PPAEvals("maestro")
	evalInfeasible = telemetry.PPAInfeasible("maestro")
	evalSeconds    = telemetry.PPAEvalSeconds("maestro")
)

// Evaluate returns the PPA of running one layer with mapping m on hardware c.
func (e Engine) Evaluate(c hw.Spatial, m mapping.Spatial, l workload.Layer) (ppa.Metrics, error) {
	evalCount.Inc()
	//unicolint:allow detclock host-side eval-latency metric; simulated search cost is charged via simclock
	defer func(start time.Time) { evalSeconds.Observe(time.Since(start).Seconds()) }(time.Now())
	rep, err := e.Explain(c, m, l)
	if err != nil {
		if errors.Is(err, ErrInfeasible) {
			evalInfeasible.Inc()
		}
		return ppa.Metrics{}, err
	}
	return rep.Metrics, nil
}

// Explain evaluates like Evaluate but returns the full Report.
func (e Engine) Explain(c hw.Spatial, m mapping.Spatial, l workload.Layer) (Report, error) {
	if err := l.Validate(); err != nil {
		return Report{}, err
	}
	m = m.Canon(l)
	depthwise := l.Kind == workload.DWConv2D

	// Per-PE tile footprints in bytes (int8 activations/weights, int32
	// partial sums held as 2 bytes after requantization headroom). The
	// kernel window is tiled by TR×TS, so the input halo only covers the
	// active taps.
	inTileC := m.TC
	if depthwise {
		inTileC = m.TK
	}
	inTile := float64(inTileC) * float64((m.TY-1)*l.Stride+m.TR) * float64((m.TX-1)*l.Stride+m.TS)
	wTile := float64(m.TK) * float64(m.TC) * float64(m.TR) * float64(m.TS)
	if depthwise {
		wTile = float64(m.TK) * float64(m.TR) * float64(m.TS)
	}
	outTile := 2 * float64(m.TK) * float64(m.TY) * float64(m.TX)

	// Double-buffered L1 residency.
	if 2*(inTile+wTile+outTile) > float64(c.L1Bytes) {
		return Report{}, fmt.Errorf("%w: L1 tile %d B > %d B", ErrInfeasible,
			int(2*(inTile+wTile+outTile)), c.L1Bytes)
	}

	// Spatial extents and per-dimension trip counts. Dim-indexed arrays, not
	// maps: Explain runs ~10⁵ times per search iteration, and the map
	// allocations plus hashed lookups were a top profile entry. The loops
	// below iterate dimensions and operands in fixed declaration order; every
	// summed term is an exactly-represented integer-valued float64, so the
	// totals match the previous map-ordered accumulation bit-for-bit.
	bounds := [4]int{mapping.DimK: l.K, mapping.DimC: l.C, mapping.DimY: l.Y, mapping.DimX: l.X}
	if depthwise {
		bounds[mapping.DimC] = 1
	}
	extent := func(d mapping.Dim) int {
		switch d {
		case m.SpatX:
			return c.PEX
		case m.SpatY:
			return c.PEY
		}
		return 1
	}
	// tileTrips is the number of per-PE tiles along d; temporalTrips folds
	// the spatial extent in (tiles executed concurrently across the array).
	var tileTrips, temporalTrips [4]float64
	for _, d := range mapping.AllDims {
		tt := math.Ceil(float64(bounds[d]) / float64(m.Tile(d)))
		tileTrips[d] = tt
		temporalTrips[d] = math.Ceil(tt / float64(extent(d)))
	}

	// Kernel-window trips: R and S nest innermost (below the Orders
	// permutation) and have no spatial extent.
	tripsR := math.Ceil(float64(l.R) / float64(m.TR))
	tripsS := math.Ceil(float64(l.S) / float64(m.TS))

	// Compute time: every temporal step runs one tile on each active PE.
	macsPerTile := float64(m.Tile(mapping.DimK)) * float64(m.Tile(mapping.DimC)) *
		float64(m.Tile(mapping.DimY)) * float64(m.Tile(mapping.DimX)) *
		float64(m.TR) * float64(m.TS)
	if depthwise {
		macsPerTile = float64(m.Tile(mapping.DimK)) * float64(m.Tile(mapping.DimY)) *
			float64(m.Tile(mapping.DimX)) * float64(m.TR) * float64(m.TS)
	}
	steps := float64(l.N) * tripsR * tripsS
	for _, d := range mapping.AllDims {
		steps *= temporalTrips[d]
	}
	computeCycles := steps * macsPerTile

	// L2 macro-tile residency: the working set concurrently held for the
	// PE array (per-PE tile × spatial extent per dimension).
	span := func(d mapping.Dim) float64 {
		s := float64(m.Tile(d) * extent(d))
		if s > float64(bounds[d]) {
			s = float64(bounds[d])
		}
		return s
	}
	inHaloY := (span(mapping.DimY)-1)*float64(l.Stride) + float64(m.TR)
	inHaloX := (span(mapping.DimX)-1)*float64(l.Stride) + float64(m.TS)
	inChan := span(mapping.DimC)
	if depthwise {
		inChan = span(mapping.DimK)
	}
	macroIn := inChan * inHaloY * inHaloX
	macroW := span(mapping.DimK) * span(mapping.DimC) * float64(m.TR) * float64(m.TS)
	macroOut := 2 * span(mapping.DimK) * span(mapping.DimY) * span(mapping.DimX)
	l2Need := 2 * (macroIn + macroW + macroOut)
	l2Cap := float64(c.L2KB) * 1024
	if l2Need > l2Cap {
		return Report{}, fmt.Errorf("%w: L2 working set %d B > %d B", ErrInfeasible,
			int(l2Need), int(l2Cap))
	}

	// Operand footprints (full layer).
	footprint := [3]float64{
		opInput:  float64(l.InputBytes()),
		opWeight: float64(l.WeightBytes()),
		opOutput: float64(l.OutputBytes()),
	}

	// L2 -> L1 (NoC) traffic. An operand's tile is fetched once per trip of
	// every loop, except loops it does not depend on once the dataflow pins
	// it: weight-stationary pins weights, output-stationary pins outputs.
	nocBytes := 0.0
	tiles := [3]float64{opInput: inTile, opWeight: wTile, opOutput: outTile}
	for p := opInput; p <= opOutput; p++ {
		tile := tiles[p]
		trips := float64(l.N)
		for _, d := range mapping.AllDims {
			dep := depends(p, d, depthwise)
			pinned := (c.Dataflow == hw.WeightStationary && p == opWeight) ||
				(c.Dataflow == hw.OutputStationary && p == opOutput)
			if dep || !pinned {
				trips *= temporalTrips[d]
			}
		}
		// Kernel-window trips: inputs and weights depend on R/S; outputs
		// re-circulate partial sums across the window unless pinned.
		if p != opOutput || c.Dataflow != hw.OutputStationary {
			trips *= tripsR * tripsS
		}
		// The spatial copies along dimensions the operand depends on are
		// distinct data; along independent dimensions the NoC multicasts,
		// so only one copy crosses the L2 port.
		spatialCopies := 1.0
		for _, d := range []mapping.Dim{m.SpatX, m.SpatY} {
			if depends(p, d, depthwise) {
				spatialCopies *= float64(extent(d))
			}
		}
		factor := 1.0
		if p == opOutput {
			factor = 2 // partial sums written back and re-read
			if c.Dataflow == hw.OutputStationary {
				factor = 1 // accumulated in place, written once
			}
		}
		nocBytes += trips * tile * spatialCopies * factor
	}

	// DRAM -> L2 traffic. An operand that fits in L2 alongside the others
	// streams once; otherwise it is refetched once per macro trip of each
	// loop it does not depend on that is ordered outside its own loops.
	order := mapping.Orders[m.Order]
	macroTrips := func(d mapping.Dim) float64 {
		span := float64(m.Tile(d) * extent(d))
		return math.Ceil(float64(bounds[d]) / span)
	}
	dramBytes := 0.0
	for p := opInput; p <= opOutput; p++ {
		fp := footprint[p]
		resident := fp
		if p == opOutput {
			resident *= 2
		}
		reload := 1.0
		if resident > l2Cap/3 {
			// Find the outermost loop the operand depends on; loops ordered
			// outside it that the operand does not depend on force reloads.
			outermostDep := len(order)
			for i, d := range order {
				if depends(p, d, depthwise) {
					outermostDep = i
					break
				}
			}
			for i, d := range order {
				if i < outermostDep && !depends(p, d, depthwise) {
					reload *= macroTrips(d)
				}
			}
		}
		factor := 1.0
		if p == opOutput {
			factor = 1
			if reload > 1 {
				factor = 2 // read-modify-write of spilled partial sums
			}
		}
		dramBytes += fp * reload * factor
	}

	// Latency: perfect double buffering overlaps the three streams.
	nocCycles := nocBytes / float64(c.NoCBW)
	dramCycles := dramBytes / dramBWBytesPerCycle
	cycles := math.Max(computeCycles, math.Max(nocCycles, dramCycles))
	// Pipeline fill/drain: one tile of latency per temporal step wave.
	cycles += 64 + math.Sqrt(steps)
	latencyMs := cycles / (ClockGHz * 1e6)

	// Energy.
	usefulMACs := float64(l.MACs())
	l1Bytes := usefulMACs * 3 * l1RegReuse
	macPJ := usefulMACs * macEnergyPJ
	l1PJ := l1Bytes * l1EnergyPJ
	nocPJ := nocBytes * l2EnergyPJ
	dramPJ := dramBytes * dramEnergyPJ
	energyUJ := (macPJ + l1PJ + nocPJ + dramPJ) * 1e-6
	leak := leakageMW(c)
	powerMW := energyUJ/latencyMs + leak
	leakPJ := leak * latencyMs * 1e6
	energyUJ += leak * latencyMs // fold leakage into total energy

	met := ppa.Metrics{
		LatencyMs: latencyMs,
		PowerMW:   powerMW,
		AreaMM2:   e.Area(c),
		EnergyUJ:  energyUJ,
	}
	if !met.Valid() {
		return Report{}, fmt.Errorf("maestro: produced invalid metrics %+v for %v / %v", met, c, l)
	}

	rep := Report{
		Metrics:       met,
		ComputeCycles: computeCycles,
		NoCCycles:     nocCycles,
		DRAMCycles:    dramCycles,
		NoCBytes:      nocBytes,
		DRAMBytes:     dramBytes,
		EnergyPJ: map[string]float64{
			"mac":     macPJ,
			"l1":      l1PJ,
			"noc+l2":  nocPJ,
			"dram":    dramPJ,
			"leakage": leakPJ,
		},
	}
	switch {
	case computeCycles >= nocCycles && computeCycles >= dramCycles:
		rep.Bottleneck = "compute"
	case nocCycles >= dramCycles:
		rep.Bottleneck = "noc"
	default:
		rep.Bottleneck = "dram"
	}
	if computeCycles > 0 {
		rep.PEUtilization = usefulMACs / (float64(c.PEs()) * computeCycles)
		if rep.PEUtilization > 1 {
			rep.PEUtilization = 1
		}
	}
	return rep, nil
}

// EvaluateWorkload sums per-layer metrics, each scaled by its repeat count,
// for a fixed per-layer mapping assignment. The mappings slice must be
// parallel to w.Layers.
func (e Engine) EvaluateWorkload(c hw.Spatial, ms []mapping.Spatial, w workload.Workload) (ppa.Metrics, error) {
	if len(ms) != len(w.Layers) {
		return ppa.Metrics{}, fmt.Errorf("maestro: %d mappings for %d layers", len(ms), len(w.Layers))
	}
	var total ppa.Metrics
	for i, l := range w.Layers {
		met, err := e.Evaluate(c, ms[i], l)
		if err != nil {
			return ppa.Metrics{}, fmt.Errorf("layer %q: %w", l.Name, err)
		}
		total = total.Add(met.Scale(l.Repeat))
	}
	total.AreaMM2 = e.Area(c)
	return total, nil
}
