package maestro

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"unico/internal/hw"
	"unico/internal/mapping"
	"unico/internal/workload"
)

func testHW() hw.Spatial {
	return hw.Spatial{
		PEX: 8, PEY: 8, L1Bytes: 1728, L2KB: 432,
		NoCBW: 128, Dataflow: hw.WeightStationary,
	}
}

func testLayer() workload.Layer {
	return workload.Conv("l", 64, 32, 28, 28, 3, 3, 1, 1)
}

func minimalMapping(l workload.Layer) mapping.Spatial {
	return mapping.Spatial{TK: 1, TC: 1, TY: 1, TX: 1, TR: 1, TS: 1,
		SpatX: mapping.DimK, SpatY: mapping.DimY}.Canon(l)
}

func TestEvaluateProducesValidMetrics(t *testing.T) {
	var e Engine
	met, err := e.Evaluate(testHW(), minimalMapping(testLayer()), testLayer())
	if err != nil {
		t.Fatal(err)
	}
	if !met.Valid() {
		t.Fatalf("invalid metrics %+v", met)
	}
	if met.AreaMM2 != e.Area(testHW()) {
		t.Errorf("metrics area %v != Area() %v", met.AreaMM2, e.Area(testHW()))
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	var e Engine
	m := minimalMapping(testLayer())
	a, err1 := e.Evaluate(testHW(), m, testLayer())
	b, err2 := e.Evaluate(testHW(), m, testLayer())
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a != b {
		t.Errorf("non-deterministic evaluation: %+v vs %+v", a, b)
	}
}

func TestInfeasibleWhenL1Tiny(t *testing.T) {
	var e Engine
	c := testHW()
	c.L1Bytes = 8
	l := testLayer()
	m := mapping.Spatial{TK: 8, TC: 8, TY: 4, TX: 4, TR: 3, TS: 3,
		SpatX: mapping.DimK, SpatY: mapping.DimY}.Canon(l)
	_, err := e.Evaluate(c, m, l)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestInfeasibleWhenL2Tiny(t *testing.T) {
	var e Engine
	c := testHW()
	c.L2KB = 1
	l := testLayer()
	// Big per-PE tile: the macro working set cannot fit 1 KB of L2.
	m := mapping.Spatial{TK: 8, TC: 8, TY: 4, TX: 4, TR: 3, TS: 3,
		SpatX: mapping.DimK, SpatY: mapping.DimY}.Canon(l)
	_, err := e.Evaluate(c, m, l)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestMoreComputeMoreLatencyAndEnergy(t *testing.T) {
	var e Engine
	small := testLayer()
	big := small
	big.K *= 4
	m := minimalMapping(small)
	ms, err1 := e.Evaluate(testHW(), m, small)
	mb, err2 := e.Evaluate(testHW(), m, big)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if mb.LatencyMs <= ms.LatencyMs {
		t.Errorf("4x-K layer latency %v <= %v", mb.LatencyMs, ms.LatencyMs)
	}
	if mb.EnergyUJ <= ms.EnergyUJ {
		t.Errorf("4x-K layer energy %v <= %v", mb.EnergyUJ, ms.EnergyUJ)
	}
}

func TestBiggerArrayFasterWithSpatialTiles(t *testing.T) {
	var e Engine
	l := testLayer()
	m := mapping.Spatial{TK: 4, TC: 4, TY: 2, TX: 2, TR: 3, TS: 3,
		SpatX: mapping.DimK, SpatY: mapping.DimY}.Canon(l)
	smallHW := testHW()
	smallHW.PEX, smallHW.PEY = 2, 2
	bigHW := testHW()
	bigHW.PEX, bigHW.PEY = 16, 14
	a, err1 := e.Evaluate(smallHW, m, l)
	b, err2 := e.Evaluate(bigHW, m, l)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if b.LatencyMs >= a.LatencyMs {
		t.Errorf("bigger array latency %v >= smaller %v", b.LatencyMs, a.LatencyMs)
	}
}

func TestAreaMonotone(t *testing.T) {
	var e Engine
	base := testHW()
	bigger := base
	bigger.PEX *= 2
	if e.Area(bigger) <= e.Area(base) {
		t.Errorf("area with 2x PEs %v <= %v", e.Area(bigger), e.Area(base))
	}
	moreSRAM := base
	moreSRAM.L2KB *= 4
	if e.Area(moreSRAM) <= e.Area(base) {
		t.Errorf("area with 4x L2 %v <= %v", e.Area(moreSRAM), e.Area(base))
	}
}

func TestDepthwiseCheaperThanDense(t *testing.T) {
	var e Engine
	dense := workload.Conv("d", 64, 64, 28, 28, 3, 3, 1, 1)
	dw := workload.DWConv("w", 64, 28, 28, 3, 3, 1, 1)
	m := minimalMapping(dense)
	a, err1 := e.Evaluate(testHW(), m, dense)
	b, err2 := e.Evaluate(testHW(), minimalMapping(dw), dw)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if b.EnergyUJ >= a.EnergyUJ {
		t.Errorf("depthwise energy %v >= dense %v", b.EnergyUJ, a.EnergyUJ)
	}
}

func TestEvaluateWorkloadSums(t *testing.T) {
	var e Engine
	w := workload.Workload{Name: "w", Layers: []workload.Layer{
		workload.Conv("a", 8, 8, 14, 14, 3, 3, 1, 2),
		workload.Conv("b", 16, 8, 14, 14, 1, 1, 1, 1),
	}}
	ms := []mapping.Spatial{minimalMapping(w.Layers[0]), minimalMapping(w.Layers[1])}
	total, err := e.EvaluateWorkload(testHW(), ms, w)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := e.Evaluate(testHW(), ms[0], w.Layers[0])
	b, _ := e.Evaluate(testHW(), ms[1], w.Layers[1])
	want := a.LatencyMs*2 + b.LatencyMs
	if diff := total.LatencyMs - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("workload latency %v, want %v", total.LatencyMs, want)
	}
	if _, err := e.EvaluateWorkload(testHW(), ms[:1], w); err == nil {
		t.Error("accepted mismatched mapping count")
	}
}

func TestEvalCostSeconds(t *testing.T) {
	if (Engine{}).EvalCostSeconds() <= 0 {
		t.Error("default eval cost not positive")
	}
	if (Engine{EvalSeconds: 3}).EvalCostSeconds() != 3 {
		t.Error("override ignored")
	}
}

// TestRandomMappingsNeverPanicProperty drives the engine with arbitrary
// random mappings: every call must either return valid metrics or a clean
// infeasibility error.
func TestRandomMappingsNeverPanicProperty(t *testing.T) {
	var e Engine
	layers := []workload.Layer{
		testLayer(),
		workload.DWConv("dw", 32, 14, 14, 3, 3, 2, 1),
		workload.Gemm("g", 64, 128, 256, 1),
		workload.Conv("patch", 768, 3, 14, 14, 16, 16, 16, 1),
	}
	f := func(seed int64, li uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := layers[int(li)%len(layers)]
		m := mapping.RandomSpatial(rng, l)
		met, err := e.Evaluate(testHW(), m, l)
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		return met.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestWeightStationaryReducesWeightTraffic checks the dataflow lever: for a
// weight-heavy layer, WS should cost no more energy than OS under the same
// mapping (weights pinned in L1).
func TestDataflowChangesCost(t *testing.T) {
	var e Engine
	l := workload.Conv("wh", 256, 256, 7, 7, 3, 3, 1, 1)
	m := minimalMapping(l)
	ws := testHW()
	ws.Dataflow = hw.WeightStationary
	os := testHW()
	os.Dataflow = hw.OutputStationary
	a, err1 := e.Evaluate(ws, m, l)
	b, err2 := e.Evaluate(os, m, l)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a == b {
		t.Error("dataflow choice had no effect on the cost model")
	}
}

func TestExplainBreakdown(t *testing.T) {
	var e Engine
	l := testLayer()
	m := minimalMapping(l)
	rep, err := e.Explain(testHW(), m, l)
	if err != nil {
		t.Fatal(err)
	}
	// The metrics must match Evaluate exactly.
	met, _ := e.Evaluate(testHW(), m, l)
	if rep.Metrics != met {
		t.Errorf("Explain metrics %+v != Evaluate %+v", rep.Metrics, met)
	}
	// Latency equals the max resource stream (plus the pipeline-fill term),
	// so the bottleneck's cycles cannot exceed latency-in-cycles.
	latCycles := rep.Metrics.LatencyMs * ClockGHz * 1e6
	for name, cyc := range map[string]float64{
		"compute": rep.ComputeCycles, "noc": rep.NoCCycles, "dram": rep.DRAMCycles,
	} {
		if cyc > latCycles {
			t.Errorf("%s cycles %v exceed latency %v", name, cyc, latCycles)
		}
	}
	if rep.Bottleneck != "compute" && rep.Bottleneck != "noc" && rep.Bottleneck != "dram" {
		t.Errorf("bottleneck = %q", rep.Bottleneck)
	}
	if rep.PEUtilization <= 0 || rep.PEUtilization > 1 {
		t.Errorf("utilization = %v", rep.PEUtilization)
	}
	// The energy breakdown must sum to the reported total.
	sum := 0.0
	for _, v := range rep.EnergyPJ {
		sum += v
	}
	if diff := sum*1e-6 - rep.Metrics.EnergyUJ; diff > 1e-6*rep.Metrics.EnergyUJ || diff < -1e-6*rep.Metrics.EnergyUJ {
		t.Errorf("energy breakdown sums to %v µJ, total %v µJ", sum*1e-6, rep.Metrics.EnergyUJ)
	}
	if rep.NoCBytes <= 0 || rep.DRAMBytes <= 0 {
		t.Errorf("traffic volumes: noc=%v dram=%v", rep.NoCBytes, rep.DRAMBytes)
	}
}

func TestExplainBottleneckShifts(t *testing.T) {
	var e Engine
	// A 1x1-kernel layer with huge channel counts on a tiny-bandwidth
	// machine should be memory-bound; the same layer on a huge-bandwidth
	// machine with a tiny array should be compute-bound.
	l := workload.Conv("ch", 512, 512, 14, 14, 1, 1, 1, 1)
	m := minimalMapping(l)
	slowNoC := testHW()
	slowNoC.PEX, slowNoC.PEY = 24, 24
	slowNoC.NoCBW = 64
	fast := testHW()
	fast.PEX, fast.PEY = 1, 1
	fast.NoCBW = 128
	a, err1 := e.Explain(slowNoC, m, l)
	b, err2 := e.Explain(fast, m, l)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if b.Bottleneck != "compute" {
		t.Errorf("1-PE machine bottleneck = %s, want compute", b.Bottleneck)
	}
	if a.Bottleneck == "compute" && a.ComputeCycles < a.NoCCycles {
		t.Errorf("inconsistent bottleneck classification: %+v", a)
	}
}
