// Package logx is the shared slog setup of the unico binaries: one Setup
// call turns the -log-format/-log-level flag pair into a configured
// *slog.Logger (installed as the process default), and every record carries
// the current run ID (internal/runid) so a log line anywhere — client,
// experiment sweep, ppaserver — is attributable to the run that caused it.
// It also provides the HTTP access-log middleware ppaserver wraps its
// handler with, which logs each request with the caller's run ID taken from
// the X-Unico-Run-ID header.
package logx

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"unico/internal/runid"
)

// runIDHandler decorates every record with the process-wide run ID, read at
// log time so records emitted before a run starts simply omit it.
type runIDHandler struct{ slog.Handler }

func (h runIDHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := runid.Current(); id != "" {
		r.AddAttrs(slog.String("run_id", id))
	}
	return h.Handler.Handle(ctx, r)
}

func (h runIDHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return runIDHandler{h.Handler.WithAttrs(attrs)}
}

func (h runIDHandler) WithGroup(name string) slog.Handler {
	return runIDHandler{h.Handler.WithGroup(name)}
}

// ParseLevel converts a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("logx: unknown log level %q (debug|info|warn|error)", s)
}

// Setup builds the logger the -log-format ("text" or "json") and -log-level
// flags describe, writing to stderr, and installs it as both the slog and
// the stdlib log default so third-party log.Printf calls flow through it.
func Setup(format, level string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("logx: unknown log format %q (text|json)", format)
	}
	logger := slog.New(runIDHandler{h})
	slog.SetDefault(logger)
	return logger, nil
}

// statusRecorder captures the response status for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// AccessLog wraps an HTTP handler with per-request logging: method, path,
// status, duration, and the originating client's run ID from the
// X-Unico-Run-ID header — the correlation that makes a ppaserver request
// attributable to the exact co-search run that issued it.
func AccessLog(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now() //unicolint:allow detclock request latency for the access log is wall time by definition
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Duration("duration", time.Since(start)), //unicolint:allow detclock request latency for the access log is wall time by definition
			slog.String("remote", r.RemoteAddr),
		}
		if id := r.Header.Get(runid.Header); id != "" {
			attrs = append(attrs, slog.String("client_run_id", id))
		}
		logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	})
}
