package logx

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"

	"unico/internal/runid"
)

func jsonLogger(buf *bytes.Buffer) *slog.Logger {
	return slog.New(runIDHandler{slog.NewJSONHandler(buf, nil)})
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestSetupRejectsBadInputs(t *testing.T) {
	if _, err := Setup("xml", "info"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := Setup("text", "loud"); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestRunIDAttachedAtLogTime(t *testing.T) {
	prev := runid.Current()
	defer runid.Set(prev)

	var buf bytes.Buffer
	logger := jsonLogger(&buf)

	runid.Set("")
	logger.Info("before run")
	runid.Set("deadbeef")
	logger.Info("during run")

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("%d log lines, want 2", len(lines))
	}
	var first, second map[string]any
	if err := json.Unmarshal(lines[0], &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(lines[1], &second); err != nil {
		t.Fatal(err)
	}
	if _, ok := first["run_id"]; ok {
		t.Errorf("pre-run record carries run_id: %v", first)
	}
	if second["run_id"] != "deadbeef" {
		t.Errorf("run_id = %v, want deadbeef", second["run_id"])
	}
}

func TestRunIDSurvivesWithAttrsAndGroup(t *testing.T) {
	prev := runid.Current()
	runid.Set("cafe0123")
	defer runid.Set(prev)

	var buf bytes.Buffer
	logger := jsonLogger(&buf).With("component", "test").WithGroup("g")
	logger.LogAttrs(context.Background(), slog.LevelInfo, "m", slog.String("k", "v"))

	var rec map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["component"] != "test" {
		t.Errorf("WithAttrs lost: %v", rec)
	}
	// The run ID is added per-record inside the active group — what matters
	// is that the derived handlers still pass through runIDHandler at all.
	if g, ok := rec["g"].(map[string]any); !ok || g["run_id"] != "cafe0123" {
		t.Errorf("run_id missing after WithAttrs/WithGroup: %v", rec)
	}
}

func TestAccessLogCarriesClientRunID(t *testing.T) {
	var buf bytes.Buffer
	logger := jsonLogger(&buf)
	h := AccessLog(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))

	req := httptest.NewRequest("POST", "/v1/ppa", nil)
	req.Header.Set(runid.Header, "feed4242")
	h.ServeHTTP(httptest.NewRecorder(), req)

	var rec map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["client_run_id"] != "feed4242" {
		t.Errorf("client_run_id = %v, want feed4242", rec["client_run_id"])
	}
	if rec["method"] != "POST" || rec["path"] != "/v1/ppa" || rec["status"] != float64(http.StatusTeapot) {
		t.Errorf("access record incomplete: %v", rec)
	}

	// Without the header there must be no client_run_id key at all.
	buf.Reset()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/healthz", nil))
	var plain map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &plain); err != nil {
		t.Fatal(err)
	}
	if _, ok := plain["client_run_id"]; ok {
		t.Errorf("client_run_id present without header: %v", plain)
	}
}
