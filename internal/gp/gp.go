// Package gp implements Gaussian-process regression, the surrogate model of
// UNICO's multi-objective Bayesian optimization (paper Section 3.2).
//
// The regressor follows the textbook formulation (Rasmussen & Williams,
// Algorithm 2.1): targets are standardized, the kernel matrix is factored by
// Cholesky, and hyperparameters (a shared lengthscale, signal variance and
// noise) are selected by maximizing the log marginal likelihood over a small
// grid — robust and dependency-free, which is what a from-scratch surrogate
// wants.
//
// # Fast refits and incremental extends
//
// FitAuto shares one squared-distance matrix across every grid candidate
// (the O(n²·d) distance pass runs once, not once per candidate) and reuses
// two factor/alpha scratch pairs, so a refit allocates a constant number of
// buffers. FitAutoFrom warm-starts the grid search in the ±1 lengthscale
// neighborhood of a previous optimum — the cadence policy (when to warm-
// refit versus full-refit) lives in the caller (internal/mobo).
//
// Extend appends one observation in O(n²) via linalg.CholeskyExtend instead
// of refactorizing. Because the bordered extend is bit-identical to a
// from-scratch factorization at the same jitter (see internal/linalg), a GP
// grown by Extend equals one produced by FitWithParams on the full data
// with the same hyperparameters and pinned jitter, bit for bit — this is
// what keeps checkpoint/resume runs identical to uninterrupted ones while
// the optimizer extends surrogates incrementally. Params/Jitter expose the
// values a caller must persist to reproduce a fitted GP exactly.
//
// # Concurrency
//
// A fitted GP is immutable under Predict (scratch space comes from a
// sync.Pool, not the receiver), so concurrent Predict calls on one GP are
// safe — the acquisition worker pool in internal/mobo relies on this.
// Fit/Extend must not race with Predict.
package gp

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"unico/internal/linalg"
	"unico/internal/perfprof"
	"unico/internal/telemetry"
)

// fitCount counts surrogate fits process-wide (one per FitAuto/FitAutoFrom
// call, not per grid point, so it tracks the number of refit decisions).
var fitCount = telemetry.GPFits()

// extendCount counts incremental one-observation extends, the refits the
// warm-start path avoided.
var extendCount = telemetry.GPExtends()

// Kernel is a positive-definite covariance function on R^d.
type Kernel interface {
	// Eval returns k(x, y).
	Eval(x, y []float64) float64
}

// RBF is the squared-exponential kernel
// k(x,y) = σ²·exp(-‖x-y‖² / (2ℓ²)).
type RBF struct {
	Lengthscale float64
	Variance    float64
}

// Eval returns k(x, y).
func (k RBF) Eval(x, y []float64) float64 {
	return k.Variance * math.Exp(-sqDist(x, y)/(2*k.Lengthscale*k.Lengthscale))
}

// Matern52 is the Matérn-5/2 kernel, the default surrogate kernel in most
// BO frameworks: rougher than RBF, a better fit for hardware cost surfaces
// with ceil-division kinks.
type Matern52 struct {
	Lengthscale float64
	Variance    float64
}

// Eval returns k(x, y).
func (k Matern52) Eval(x, y []float64) float64 {
	return matern52FromSq(sqDist(x, y), k.Lengthscale, k.Variance)
}

// matern52FromSq evaluates the Matérn-5/2 kernel from a squared distance.
// The expression mirrors Matern52.Eval operation for operation so values
// computed from a shared distance matrix are bit-identical to direct Eval
// calls — FitAuto's grid search and Extend's covariance column depend on
// that.
func matern52FromSq(d2, lengthscale, variance float64) float64 {
	r := math.Sqrt(d2) / lengthscale
	s := math.Sqrt(5) * r
	return variance * (1 + s + 5*r*r/3) * math.Exp(-s)
}

func sqDist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("gp: dimension mismatch %d vs %d", len(x), len(y)))
	}
	sum := 0.0
	for i := range x {
		d := x[i] - y[i]
		sum += d * d
	}
	return sum
}

// Params are the hyperparameters FitAuto selects, exposed so callers can
// persist them (checkpoints) and warm-start later refits.
type Params struct {
	Lengthscale float64 `json:"lengthscale"`
	Variance    float64 `json:"variance"`
	Noise       float64 `json:"noise"`
}

// GP is a fitted Gaussian-process regressor.
type GP struct {
	kernel    Kernel
	params    Params
	hasParams bool
	noise     float64
	jitter    float64
	x         [][]float64
	rawY      []float64
	chol      *linalg.Matrix
	alpha     []float64
	meanY     float64
	stdY      float64
}

// ErrNoData reports a fit attempt with no training points.
var ErrNoData = errors.New("gp: no training data")

// Fit trains a GP on (x, y) with fixed kernel hyperparameters.
func Fit(x [][]float64, y []float64, kernel Kernel, noise float64) (*GP, error) {
	defer perfprof.Begin("gp.fit").End()
	if len(x) == 0 {
		return nil, ErrNoData
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("gp: %d inputs vs %d targets", len(x), len(y))
	}
	n := len(x)
	k := linalg.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := kernel.Eval(x[i], x[j])
			if i == j {
				v += noise
			}
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	chol, jitter, err := linalg.CholeskyWithJitter(k)
	if err != nil {
		return nil, fmt.Errorf("gp: %w", err)
	}
	g := &GP{
		kernel: kernel, noise: noise, jitter: jitter,
		x: x, chol: chol,
		rawY: append([]float64(nil), y...),
	}
	if m, ok := kernel.(Matern52); ok {
		g.params = Params{Lengthscale: m.Lengthscale, Variance: m.Variance, Noise: noise}
		g.hasParams = true
	}
	g.refreshTargets()
	return g, nil
}

// refreshTargets (re)standardizes rawY and recomputes alpha against the
// current factor.
func (g *GP) refreshTargets() {
	n := len(g.rawY)
	g.meanY, g.stdY = meanStd(g.rawY)
	ys := make([]float64, n)
	for i, v := range g.rawY {
		ys[i] = (v - g.meanY) / g.stdY
	}
	if cap(g.alpha) < n {
		g.alpha = make([]float64, n)
	}
	g.alpha = g.alpha[:n]
	linalg.CholeskySolveInto(g.chol, ys, g.alpha)
}

// gridLengthscales and gridNoises are FitAuto's hyperparameter grid.
var (
	gridLengthscales = []float64{0.08, 0.15, 0.3, 0.6, 1.2}
	gridNoises       = []float64{1e-4, 1e-2, 5e-2}
)

// FitAuto trains a GP selecting hyperparameters by log-marginal-likelihood
// grid search over lengthscales and noise levels, with Matérn-5/2 kernels of
// unit signal variance on standardized targets.
func FitAuto(x [][]float64, y []float64) (*GP, error) {
	return fitGrid(x, y, gridLengthscales)
}

// FitAutoFrom is FitAuto warm-started at a previous optimum: the grid
// search is restricted to the ±1 lengthscale neighborhood of prev (all
// noise levels are always searched — the noise grid is small). A nil prev,
// or one whose lengthscale is no longer on the grid, falls back to the
// full grid. The selection is deterministic either way.
func FitAutoFrom(x [][]float64, y []float64, prev *Params) (*GP, error) {
	if prev == nil {
		return fitGrid(x, y, gridLengthscales)
	}
	at := -1
	for i, ls := range gridLengthscales {
		if ls == prev.Lengthscale {
			at = i
			break
		}
	}
	if at < 0 {
		return fitGrid(x, y, gridLengthscales)
	}
	lo, hi := at-1, at+2
	if lo < 0 {
		lo = 0
	}
	if hi > len(gridLengthscales) {
		hi = len(gridLengthscales)
	}
	return fitGrid(x, y, gridLengthscales[lo:hi])
}

// FitWithParams trains a GP at exactly the given hyperparameters and
// diagonal jitter — no grid search, no jitter retry ladder. Checkpoint
// restores use it to rebuild a surrogate bit-identical to the one a live
// run held (whether that run produced it by grid search or grew it with
// Extend).
func FitWithParams(x [][]float64, y []float64, p Params, jitter float64) (*GP, error) {
	defer perfprof.Begin("gp.fit").End()
	if len(x) == 0 {
		return nil, ErrNoData
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("gp: %d inputs vs %d targets", len(x), len(y))
	}
	n := len(x)
	d2 := sqDistLower(x)
	k := linalg.New(n, n)
	buildMaternLower(k, d2, p.Lengthscale, p.Variance, p.Noise)
	chol := linalg.New(n, n)
	if err := linalg.CholeskyFixedInto(chol, k, jitter); err != nil {
		return nil, fmt.Errorf("gp: %w", err)
	}
	g := &GP{
		kernel: Matern52{Lengthscale: p.Lengthscale, Variance: p.Variance},
		params: p, hasParams: true,
		noise: p.Noise, jitter: jitter,
		x: x, chol: chol,
		rawY: append([]float64(nil), y...),
	}
	g.refreshTargets()
	return g, nil
}

// fitGrid runs the log-marginal-likelihood grid search over the given
// lengthscales (× all noise levels). One squared-distance matrix is shared
// by every candidate, the kernel matrix is rebuilt per lengthscale with
// only the diagonal varying per noise level, and two factor/alpha scratch
// pairs alternate so the winner's factor survives without refactorizing.
func fitGrid(x [][]float64, y []float64, lengthscales []float64) (*GP, error) {
	defer perfprof.Begin("gp.fit_auto").End()
	if len(x) == 0 {
		return nil, ErrNoData
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("gp: %d inputs vs %d targets", len(x), len(y))
	}
	fitCount.Inc()
	n := len(x)
	mean, std := meanStd(y)
	ys := make([]float64, n)
	for i, v := range y {
		ys[i] = (v - mean) / std
	}

	d2 := sqDistLower(x)
	k := linalg.New(n, n)
	cand, spare := linalg.New(n, n), linalg.New(n, n)
	candAlpha, spareAlpha := make([]float64, n), make([]float64, n)
	w := make([]float64, n)

	var (
		found      bool
		bestParams Params
		bestJitter float64
		bestLML    = math.Inf(-1)
	)
	for _, ls := range lengthscales {
		buildMaternLower(k, d2, ls, 1, 0)
		for _, nz := range gridNoises {
			for i := 0; i < n; i++ {
				k.Data[i*n+i] = 1 + nz
			}
			jitter, err := linalg.CholeskyInto(cand, k)
			if err != nil {
				continue
			}
			linalg.CholeskySolveInto(cand, ys, candAlpha)
			lml := lmlFromChol(cand, candAlpha, w)
			if lml > bestLML {
				found = true
				bestParams = Params{Lengthscale: ls, Variance: 1, Noise: nz}
				bestJitter = jitter
				bestLML = lml
				cand, spare = spare, cand
				candAlpha, spareAlpha = spareAlpha, candAlpha
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("gp: all hyperparameter candidates failed to factor")
	}
	g := &GP{
		kernel: Matern52{Lengthscale: bestParams.Lengthscale, Variance: bestParams.Variance},
		params: bestParams, hasParams: true,
		noise: bestParams.Noise, jitter: bestJitter,
		x: x, chol: spare, alpha: spareAlpha,
		rawY:  append([]float64(nil), y...),
		meanY: mean, stdY: std,
	}
	return g, nil
}

// sqDistLower fills the lower triangle of the pairwise squared-distance
// matrix.
func sqDistLower(x [][]float64) *linalg.Matrix {
	n := len(x)
	d2 := linalg.New(n, n)
	for i := 0; i < n; i++ {
		row := d2.Data[i*n : i*n+n]
		for j := 0; j < i; j++ {
			row[j] = sqDist(x[i], x[j])
		}
	}
	return d2
}

// buildMaternLower writes the lower triangle of the Matérn-5/2 kernel
// matrix (plus diagonal noise) from a squared-distance matrix.
func buildMaternLower(dst, d2 *linalg.Matrix, lengthscale, variance, noise float64) {
	n := d2.Rows
	for i := 0; i < n; i++ {
		src := d2.Data[i*n : i*n+n]
		row := dst.Data[i*n : i*n+n]
		for j := 0; j < i; j++ {
			row[j] = matern52FromSq(src[j], lengthscale, variance)
		}
		row[i] = variance + noise
	}
}

// Extend incorporates one new observation in O(n²): the factor grows by
// the bordered scheme (linalg.CholeskyExtend) at the pinned jitter, targets
// are re-standardized and alpha is recomputed. Hyperparameters are not
// re-selected — the caller decides when drift warrants a refit (see
// LogMarginalLikelihood). The result is bit-identical to FitWithParams on
// the extended data at the same hyperparameters and jitter. On error the
// receiver is unchanged and the caller should fall back to a full refit.
func (g *GP) Extend(xNew []float64, yNew float64) error {
	defer perfprof.Begin("gp.extend").End()
	n := len(g.x)
	k := make([]float64, n)
	for i := range g.x {
		k[i] = g.kernel.Eval(g.x[i], xNew)
	}
	d := g.kernel.Eval(xNew, xNew) + g.noise
	chol, err := linalg.CholeskyExtend(g.chol, k, d, g.jitter)
	if err != nil {
		return fmt.Errorf("gp: %w", err)
	}
	extendCount.Inc()
	g.chol = chol
	g.x = append(g.x[:n:n], xNew)
	g.rawY = append(g.rawY, yNew)
	g.refreshTargets()
	return nil
}

// Params reports the hyperparameters the GP was fitted with, when it was
// produced by the Matérn grid (FitAuto, FitAutoFrom, FitWithParams, or Fit
// with a Matern52 kernel).
func (g *GP) Params() (Params, bool) { return g.params, g.hasParams }

// Jitter reports the diagonal jitter baked into the current factor.
// Persist it alongside Params to rebuild the GP exactly via FitWithParams.
func (g *GP) Jitter() float64 { return g.jitter }

// LogMarginalLikelihood returns log p(y|X) of the standardized targets,
// using the identity log p = -½·yᵀα - Σᵢ log Lᵢᵢ - n/2·log 2π with
// y reconstructed as K·α = L·(Lᵀ·α).
func (g *GP) LogMarginalLikelihood() float64 {
	w := make([]float64, len(g.x))
	return lmlFromChol(g.chol, g.alpha, w)
}

// lmlFromChol computes the log marginal likelihood from a factor and its
// alpha, using w (length n) as scratch for Lᵀ·α.
func lmlFromChol(chol *linalg.Matrix, alpha, w []float64) float64 {
	n := chol.Rows
	for k := 0; k < n; k++ {
		sum := 0.0
		for j := k; j < n; j++ {
			sum += chol.At(j, k) * alpha[j]
		}
		w[k] = sum
	}
	quad := 0.0 // yᵀα = (L·w)ᵀα = wᵀ(Lᵀα) = wᵀw
	for _, v := range w {
		quad += v * v
	}
	return -0.5*quad - 0.5*linalg.LogDetFromChol(chol) - 0.5*float64(n)*math.Log(2*math.Pi)
}

// predictScratch is the per-call working set of Predict, pooled so the
// hot path allocates nothing and concurrent Predict calls never share
// buffers.
type predictScratch struct {
	ks, v []float64
}

var predictPool = sync.Pool{New: func() any { return new(predictScratch) }}

// Predict returns the posterior mean and variance at x (on the original
// target scale). It is safe to call concurrently on a fitted GP, allocates
// nothing, and deliberately carries no perfprof span: it runs ~10⁵ times
// per MOBO iteration inside the acquisition pool, where a per-call span
// would serialize workers on the profiler mutex. The mobo.acq_* spans
// account for this time instead.
func (g *GP) Predict(x []float64) (mean, variance float64) {
	n := len(g.x)
	sc := predictPool.Get().(*predictScratch)
	if cap(sc.ks) < n {
		sc.ks = make([]float64, n)
		sc.v = make([]float64, n)
	}
	ks, v := sc.ks[:n], sc.v[:n]
	for i := range g.x {
		ks[i] = g.kernel.Eval(g.x[i], x)
	}
	mu := linalg.Dot(ks, g.alpha)
	linalg.SolveLowerInto(g.chol, ks, v)
	varS := g.kernel.Eval(x, x) + g.noise - linalg.Dot(v, v)
	if varS < 1e-12 {
		varS = 1e-12
	}
	predictPool.Put(sc)
	return mu*g.stdY + g.meanY, varS * g.stdY * g.stdY
}

// N returns the number of training points.
func (g *GP) N() int { return len(g.x) }

// meanStd returns the mean and (guarded) standard deviation of v.
func meanStd(v []float64) (mean, std float64) {
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for _, x := range v {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(v)))
	if std < 1e-12 {
		std = 1
	}
	return mean, std
}
