// Package gp implements Gaussian-process regression, the surrogate model of
// UNICO's multi-objective Bayesian optimization (paper Section 3.2).
//
// The regressor follows the textbook formulation (Rasmussen & Williams,
// Algorithm 2.1): targets are standardized, the kernel matrix is factored by
// Cholesky, and hyperparameters (a shared lengthscale, signal variance and
// noise) are selected by maximizing the log marginal likelihood over a small
// grid — robust and dependency-free, which is what a from-scratch surrogate
// wants.
package gp

import (
	"errors"
	"fmt"
	"math"

	"unico/internal/linalg"
	"unico/internal/perfprof"
	"unico/internal/telemetry"
)

// fitCount counts surrogate fits process-wide (one per FitAuto call, not
// per grid point, so it tracks the number of refit decisions).
var fitCount = telemetry.GPFits()

// Kernel is a positive-definite covariance function on R^d.
type Kernel interface {
	// Eval returns k(x, y).
	Eval(x, y []float64) float64
}

// RBF is the squared-exponential kernel
// k(x,y) = σ²·exp(-‖x-y‖² / (2ℓ²)).
type RBF struct {
	Lengthscale float64
	Variance    float64
}

// Eval returns k(x, y).
func (k RBF) Eval(x, y []float64) float64 {
	return k.Variance * math.Exp(-sqDist(x, y)/(2*k.Lengthscale*k.Lengthscale))
}

// Matern52 is the Matérn-5/2 kernel, the default surrogate kernel in most
// BO frameworks: rougher than RBF, a better fit for hardware cost surfaces
// with ceil-division kinks.
type Matern52 struct {
	Lengthscale float64
	Variance    float64
}

// Eval returns k(x, y).
func (k Matern52) Eval(x, y []float64) float64 {
	r := math.Sqrt(sqDist(x, y)) / k.Lengthscale
	s := math.Sqrt(5) * r
	return k.Variance * (1 + s + 5*r*r/3) * math.Exp(-s)
}

func sqDist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("gp: dimension mismatch %d vs %d", len(x), len(y)))
	}
	sum := 0.0
	for i := range x {
		d := x[i] - y[i]
		sum += d * d
	}
	return sum
}

// GP is a fitted Gaussian-process regressor.
type GP struct {
	kernel Kernel
	noise  float64
	x      [][]float64
	chol   *linalg.Matrix
	alpha  []float64
	meanY  float64
	stdY   float64
}

// ErrNoData reports a fit attempt with no training points.
var ErrNoData = errors.New("gp: no training data")

// Fit trains a GP on (x, y) with fixed kernel hyperparameters.
func Fit(x [][]float64, y []float64, kernel Kernel, noise float64) (*GP, error) {
	defer perfprof.Begin("gp.fit").End()
	if len(x) == 0 {
		return nil, ErrNoData
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("gp: %d inputs vs %d targets", len(x), len(y))
	}
	mean, std := meanStd(y)
	ys := make([]float64, len(y))
	for i, v := range y {
		ys[i] = (v - mean) / std
	}
	n := len(x)
	k := linalg.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := kernel.Eval(x[i], x[j])
			if i == j {
				v += noise
			}
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	chol, err := linalg.Cholesky(k)
	if err != nil {
		return nil, fmt.Errorf("gp: %w", err)
	}
	alpha := linalg.CholeskySolve(chol, ys)
	return &GP{
		kernel: kernel, noise: noise,
		x: x, chol: chol, alpha: alpha,
		meanY: mean, stdY: std,
	}, nil
}

// FitAuto trains a GP selecting hyperparameters by log-marginal-likelihood
// grid search over lengthscales and noise levels, with Matérn-5/2 kernels of
// unit signal variance on standardized targets.
func FitAuto(x [][]float64, y []float64) (*GP, error) {
	defer perfprof.Begin("gp.fit_auto").End()
	if len(x) == 0 {
		return nil, ErrNoData
	}
	fitCount.Inc()
	lengthscales := []float64{0.08, 0.15, 0.3, 0.6, 1.2}
	noises := []float64{1e-4, 1e-2, 5e-2}
	var best *GP
	bestLML := math.Inf(-1)
	for _, ls := range lengthscales {
		for _, nz := range noises {
			g, err := Fit(x, y, Matern52{Lengthscale: ls, Variance: 1}, nz)
			if err != nil {
				continue
			}
			lml := g.LogMarginalLikelihood()
			if lml > bestLML {
				best, bestLML = g, lml
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("gp: all hyperparameter candidates failed to factor")
	}
	return best, nil
}

// LogMarginalLikelihood returns log p(y|X) of the standardized targets,
// using the identity log p = -½·yᵀα - Σᵢ log Lᵢᵢ - n/2·log 2π with
// y reconstructed as K·α = L·(Lᵀ·α).
func (g *GP) LogMarginalLikelihood() float64 {
	n := len(g.x)
	w := make([]float64, n) // w = Lᵀ·α
	for k := 0; k < n; k++ {
		sum := 0.0
		for j := k; j < n; j++ {
			sum += g.chol.At(j, k) * g.alpha[j]
		}
		w[k] = sum
	}
	quad := 0.0 // yᵀα = (L·w)ᵀα = wᵀ(Lᵀα) = wᵀw
	for _, v := range w {
		quad += v * v
	}
	return -0.5*quad - 0.5*linalg.LogDetFromChol(g.chol) - 0.5*float64(n)*math.Log(2*math.Pi)
}

// Predict returns the posterior mean and variance at x (on the original
// target scale).
func (g *GP) Predict(x []float64) (mean, variance float64) {
	defer perfprof.Begin("gp.predict").End()
	n := len(g.x)
	ks := make([]float64, n)
	for i := range g.x {
		ks[i] = g.kernel.Eval(g.x[i], x)
	}
	mu := linalg.Dot(ks, g.alpha)
	v := linalg.SolveLower(g.chol, ks)
	varS := g.kernel.Eval(x, x) + g.noise - linalg.Dot(v, v)
	if varS < 1e-12 {
		varS = 1e-12
	}
	return mu*g.stdY + g.meanY, varS * g.stdY * g.stdY
}

// N returns the number of training points.
func (g *GP) N() int { return len(g.x) }

// meanStd returns the mean and (guarded) standard deviation of v.
func meanStd(v []float64) (mean, std float64) {
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for _, x := range v {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(v)))
	if std < 1e-12 {
		std = 1
	}
	return mean, std
}
