package gp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestKernelsBasicProperties(t *testing.T) {
	kernels := []Kernel{
		RBF{Lengthscale: 0.5, Variance: 2},
		Matern52{Lengthscale: 0.5, Variance: 2},
	}
	x := []float64{0.3, 0.7}
	y := []float64{0.5, 0.1}
	for _, k := range kernels {
		if got := k.Eval(x, x); math.Abs(got-2) > 1e-12 {
			t.Errorf("%T: k(x,x) = %v, want variance 2", k, got)
		}
		if k.Eval(x, y) != k.Eval(y, x) {
			t.Errorf("%T: kernel not symmetric", k)
		}
		if k.Eval(x, y) >= k.Eval(x, x) {
			t.Errorf("%T: k(x,y) >= k(x,x) for x != y", k)
		}
		if k.Eval(x, y) <= 0 {
			t.Errorf("%T: kernel not positive", k)
		}
	}
}

func trainingData(n int, f func(x float64) float64) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n-1)
		xs[i] = []float64{x}
		ys[i] = f(x)
	}
	return xs, ys
}

func TestFitInterpolatesTrainingPoints(t *testing.T) {
	xs, ys := trainingData(9, func(x float64) float64 { return math.Sin(4 * x) })
	g, err := Fit(xs, ys, Matern52{Lengthscale: 0.3, Variance: 1}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mu, _ := g.Predict(x)
		if math.Abs(mu-ys[i]) > 0.05 {
			t.Errorf("Predict(%v) = %v, want ~%v", x, mu, ys[i])
		}
	}
	if g.N() != 9 {
		t.Errorf("N() = %d", g.N())
	}
}

func TestVarianceShrinksNearData(t *testing.T) {
	xs, ys := trainingData(6, func(x float64) float64 { return x * x })
	g, err := Fit(xs, ys, Matern52{Lengthscale: 0.3, Variance: 1}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	_, atData := g.Predict(xs[2])
	_, far := g.Predict([]float64{5.0})
	if atData >= far {
		t.Errorf("variance at training point %v >= far away %v", atData, far)
	}
}

func TestFitAutoSelectsReasonableModel(t *testing.T) {
	xs, ys := trainingData(12, func(x float64) float64 { return 3*x + 1 })
	g, err := FitAuto(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := g.Predict([]float64{0.5})
	if math.Abs(mu-2.5) > 0.3 {
		t.Errorf("Predict(0.5) = %v, want ~2.5", mu)
	}
	if lml := g.LogMarginalLikelihood(); math.IsNaN(lml) || math.IsInf(lml, 0) {
		t.Errorf("LML = %v", lml)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, RBF{Lengthscale: 1, Variance: 1}, 1e-4); err == nil {
		t.Error("Fit accepted no data")
	}
	if _, err := FitAuto(nil, nil); err == nil {
		t.Error("FitAuto accepted no data")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, RBF{Lengthscale: 1, Variance: 1}, 1e-4); err == nil {
		t.Error("Fit accepted mismatched lengths")
	}
}

func TestConstantTargetsDoNotBlowUp(t *testing.T) {
	xs, _ := trainingData(5, nil2)
	ys := []float64{7, 7, 7, 7, 7}
	g, err := FitAuto(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	mu, v := g.Predict([]float64{0.5})
	if math.Abs(mu-7) > 0.5 || math.IsNaN(v) {
		t.Errorf("Predict = %v, %v", mu, v)
	}
}

func nil2(x float64) float64 { return 0 }

// TestPredictionsFiniteProperty: any fitted GP must return finite
// predictions everywhere in the unit cube.
func TestPredictionsFiniteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([][]float64, 15)
	ys := make([]float64, 15)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
		ys[i] = rng.NormFloat64() * 10
	}
	g, err := FitAuto(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		x := []float64{math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)}
		mu, v := g.Predict(x)
		return !math.IsNaN(mu) && !math.IsInf(mu, 0) && v > 0 && !math.IsInf(v, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLMLPrefersBetterFit(t *testing.T) {
	// The marginal likelihood of a model with a sensible lengthscale must
	// exceed that of an absurd one on smooth data.
	xs, ys := trainingData(10, func(x float64) float64 { return math.Sin(3 * x) })
	good, err1 := Fit(xs, ys, Matern52{Lengthscale: 0.3, Variance: 1}, 1e-4)
	bad, err2 := Fit(xs, ys, Matern52{Lengthscale: 1e-4, Variance: 1}, 1e-4)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if good.LogMarginalLikelihood() <= bad.LogMarginalLikelihood() {
		t.Errorf("LML(good) %v <= LML(bad) %v",
			good.LogMarginalLikelihood(), bad.LogMarginalLikelihood())
	}
}

// randomData draws a synthetic regression set.
func randomData(n, d int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.Float64()
		}
		y[i] = math.Sin(3*x[i][0]) + 0.3*x[i][1%d] + 0.05*rng.NormFloat64()
	}
	return x, y
}

// TestExtendMatchesRefitBitwise grows a GP one observation at a time and
// checks the incremental factor, alpha and predictions equal a full
// FitWithParams at the same hyperparameters and jitter, bit for bit —
// the invariant checkpoint resume relies on.
func TestExtendMatchesRefitBitwise(t *testing.T) {
	x, y := randomData(40, 4, 3)
	g, err := FitAuto(x[:25], y[:25])
	if err != nil {
		t.Fatal(err)
	}
	p, ok := g.Params()
	if !ok {
		t.Fatal("FitAuto GP reports no params")
	}
	for i := 25; i < 40; i++ {
		if err := g.Extend(x[i], y[i]); err != nil {
			t.Fatalf("extend %d: %v", i, err)
		}
		want, err := FitWithParams(x[:i+1], y[:i+1], p, g.Jitter())
		if err != nil {
			t.Fatalf("refit %d: %v", i, err)
		}
		for k := range want.chol.Data {
			if g.chol.Data[k] != want.chol.Data[k] {
				t.Fatalf("n=%d: chol[%d] = %v, refit %v", i+1, k, g.chol.Data[k], want.chol.Data[k])
			}
		}
		for k := range want.alpha {
			if g.alpha[k] != want.alpha[k] {
				t.Fatalf("n=%d: alpha[%d] = %v, refit %v", i+1, k, g.alpha[k], want.alpha[k])
			}
		}
		q := []float64{0.2, 0.8, 0.5, 0.1}
		gm, gv := g.Predict(q)
		wm, wv := want.Predict(q)
		if gm != wm || gv != wv {
			t.Fatalf("n=%d: predict (%v, %v), refit (%v, %v)", i+1, gm, gv, wm, wv)
		}
	}
}

// TestFitAutoMatchesExplicitGrid checks the shared-distance-matrix grid
// search selects the same model as running Fit per candidate explicitly.
func TestFitAutoMatchesExplicitGrid(t *testing.T) {
	x, y := randomData(30, 3, 5)
	g, err := FitAuto(x, y)
	if err != nil {
		t.Fatal(err)
	}
	var bestP Params
	bestLML := math.Inf(-1)
	for _, ls := range gridLengthscales {
		for _, nz := range gridNoises {
			cand, err := Fit(x, y, Matern52{Lengthscale: ls, Variance: 1}, nz)
			if err != nil {
				continue
			}
			if lml := cand.LogMarginalLikelihood(); lml > bestLML {
				bestLML = lml
				bestP = Params{Lengthscale: ls, Variance: 1, Noise: nz}
			}
		}
	}
	p, _ := g.Params()
	if p != bestP {
		t.Fatalf("FitAuto chose %+v, explicit grid %+v", p, bestP)
	}
	if got := g.LogMarginalLikelihood(); math.Abs(got-bestLML) > 1e-9 {
		t.Fatalf("FitAuto LML %v, explicit grid %v", got, bestLML)
	}
}

// TestFitAutoFromNeighborhood checks warm-started refits stay within the
// ±1 lengthscale neighborhood and are deterministic.
func TestFitAutoFromNeighborhood(t *testing.T) {
	x, y := randomData(25, 3, 9)
	prev := Params{Lengthscale: 0.3, Variance: 1, Noise: 1e-2}
	g, err := FitAutoFrom(x, y, &prev)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := g.Params()
	if p.Lengthscale < 0.15 || p.Lengthscale > 0.6 {
		t.Fatalf("warm refit left the neighborhood: %+v", p)
	}
	g2, err := FitAutoFrom(x, y, &prev)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := g2.Params()
	if p != p2 {
		t.Fatalf("warm refit not deterministic: %+v vs %+v", p, p2)
	}
	// Off-grid previous optimum falls back to the full grid.
	off := Params{Lengthscale: 0.123, Variance: 1, Noise: 1e-2}
	gFull, err := FitAutoFrom(x, y, &off)
	if err != nil {
		t.Fatal(err)
	}
	gAuto, err := FitAuto(x, y)
	if err != nil {
		t.Fatal(err)
	}
	pf, _ := gFull.Params()
	pa, _ := gAuto.Params()
	if pf != pa {
		t.Fatalf("off-grid warm start %+v, full grid %+v", pf, pa)
	}
}

// TestPredictDoesNotAllocate pins the allocation-free Predict hot path.
func TestPredictDoesNotAllocate(t *testing.T) {
	x, y := randomData(50, 4, 2)
	g, err := FitAuto(x, y)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.3, 0.4, 0.5, 0.6}
	g.Predict(q) // warm the pool
	if n := testing.AllocsPerRun(200, func() { g.Predict(q) }); n > 0 {
		t.Fatalf("Predict allocates %.1f objects per call", n)
	}
}

// TestConcurrentPredictIsDeterministic hammers one GP from several
// goroutines and checks every prediction matches the serial value.
func TestConcurrentPredictIsDeterministic(t *testing.T) {
	x, y := randomData(60, 4, 8)
	g, err := FitAuto(x, y)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]float64, 64)
	wantM := make([]float64, len(queries))
	wantV := make([]float64, len(queries))
	rng := rand.New(rand.NewSource(4))
	for i := range queries {
		queries[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		wantM[i], wantV[i] = g.Predict(queries[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range queries {
				m, v := g.Predict(q)
				if m != wantM[i] || v != wantV[i] {
					panic("concurrent Predict diverged")
				}
			}
		}()
	}
	wg.Wait()
}
