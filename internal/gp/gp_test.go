package gp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKernelsBasicProperties(t *testing.T) {
	kernels := []Kernel{
		RBF{Lengthscale: 0.5, Variance: 2},
		Matern52{Lengthscale: 0.5, Variance: 2},
	}
	x := []float64{0.3, 0.7}
	y := []float64{0.5, 0.1}
	for _, k := range kernels {
		if got := k.Eval(x, x); math.Abs(got-2) > 1e-12 {
			t.Errorf("%T: k(x,x) = %v, want variance 2", k, got)
		}
		if k.Eval(x, y) != k.Eval(y, x) {
			t.Errorf("%T: kernel not symmetric", k)
		}
		if k.Eval(x, y) >= k.Eval(x, x) {
			t.Errorf("%T: k(x,y) >= k(x,x) for x != y", k)
		}
		if k.Eval(x, y) <= 0 {
			t.Errorf("%T: kernel not positive", k)
		}
	}
}

func trainingData(n int, f func(x float64) float64) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n-1)
		xs[i] = []float64{x}
		ys[i] = f(x)
	}
	return xs, ys
}

func TestFitInterpolatesTrainingPoints(t *testing.T) {
	xs, ys := trainingData(9, func(x float64) float64 { return math.Sin(4 * x) })
	g, err := Fit(xs, ys, Matern52{Lengthscale: 0.3, Variance: 1}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mu, _ := g.Predict(x)
		if math.Abs(mu-ys[i]) > 0.05 {
			t.Errorf("Predict(%v) = %v, want ~%v", x, mu, ys[i])
		}
	}
	if g.N() != 9 {
		t.Errorf("N() = %d", g.N())
	}
}

func TestVarianceShrinksNearData(t *testing.T) {
	xs, ys := trainingData(6, func(x float64) float64 { return x * x })
	g, err := Fit(xs, ys, Matern52{Lengthscale: 0.3, Variance: 1}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	_, atData := g.Predict(xs[2])
	_, far := g.Predict([]float64{5.0})
	if atData >= far {
		t.Errorf("variance at training point %v >= far away %v", atData, far)
	}
}

func TestFitAutoSelectsReasonableModel(t *testing.T) {
	xs, ys := trainingData(12, func(x float64) float64 { return 3*x + 1 })
	g, err := FitAuto(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := g.Predict([]float64{0.5})
	if math.Abs(mu-2.5) > 0.3 {
		t.Errorf("Predict(0.5) = %v, want ~2.5", mu)
	}
	if lml := g.LogMarginalLikelihood(); math.IsNaN(lml) || math.IsInf(lml, 0) {
		t.Errorf("LML = %v", lml)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, RBF{Lengthscale: 1, Variance: 1}, 1e-4); err == nil {
		t.Error("Fit accepted no data")
	}
	if _, err := FitAuto(nil, nil); err == nil {
		t.Error("FitAuto accepted no data")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, RBF{Lengthscale: 1, Variance: 1}, 1e-4); err == nil {
		t.Error("Fit accepted mismatched lengths")
	}
}

func TestConstantTargetsDoNotBlowUp(t *testing.T) {
	xs, _ := trainingData(5, nil2)
	ys := []float64{7, 7, 7, 7, 7}
	g, err := FitAuto(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	mu, v := g.Predict([]float64{0.5})
	if math.Abs(mu-7) > 0.5 || math.IsNaN(v) {
		t.Errorf("Predict = %v, %v", mu, v)
	}
}

func nil2(x float64) float64 { return 0 }

// TestPredictionsFiniteProperty: any fitted GP must return finite
// predictions everywhere in the unit cube.
func TestPredictionsFiniteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([][]float64, 15)
	ys := make([]float64, 15)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
		ys[i] = rng.NormFloat64() * 10
	}
	g, err := FitAuto(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		x := []float64{math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)}
		mu, v := g.Predict(x)
		return !math.IsNaN(mu) && !math.IsInf(mu, 0) && v > 0 && !math.IsInf(v, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLMLPrefersBetterFit(t *testing.T) {
	// The marginal likelihood of a model with a sensible lengthscale must
	// exceed that of an absurd one on smooth data.
	xs, ys := trainingData(10, func(x float64) float64 { return math.Sin(3 * x) })
	good, err1 := Fit(xs, ys, Matern52{Lengthscale: 0.3, Variance: 1}, 1e-4)
	bad, err2 := Fit(xs, ys, Matern52{Lengthscale: 1e-4, Variance: 1}, 1e-4)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if good.LogMarginalLikelihood() <= bad.LogMarginalLikelihood() {
		t.Errorf("LML(good) %v <= LML(bad) %v",
			good.LogMarginalLikelihood(), bad.LogMarginalLikelihood())
	}
}
