// Package disttrace is a stdlib-only distributed tracing layer for the
// /v1/* evaluation protocol. A trace is one co-search run (trace ID = run
// ID); spans cover every hop an eval takes — the client call with its
// retries and backoff waits, router admission queueing and forwards, shard
// handling, and the engine evaluation itself.
//
// Span records are two JSONL events — "start" and "end" — appended to a
// per-process span log with the same write-then-fsync discipline as flight
// records. The ordering guarantee matters: a parent span's start event is
// durable before any child span exists, in-process and across processes
// (headers are only injected after the local start is fsynced). A kill -9
// therefore yields *incomplete* spans (start without end), never orphans
// (child naming an absent parent); `unicotrace -gate` keys on that.
//
// Context propagates over HTTP via the X-Unico-Trace / X-Unico-Parent
// headers. Extraction falls back to X-Unico-Run-ID for the trace ID, so a
// shard with tracing enabled still produces correlatable spans when the
// client predates tracing. A router with tracing disabled passes the
// headers through untouched.
//
// Tracing is off unless a process calls Enable; every entry point is
// nil-safe and the disabled path is a single atomic pointer load, so
// instrumented code needs no conditionals and pays nothing when idle.
package disttrace

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"unico/internal/runid"
	"unico/internal/telemetry"
)

// Header names carrying span context across the /v1/* protocol.
const (
	// TraceHeader carries the trace ID (the run ID of the co-search).
	TraceHeader = "X-Unico-Trace"
	// ParentHeader carries the span ID the receiving hop should parent onto.
	ParentHeader = "X-Unico-Parent"
)

// SpanContext identifies a span within a trace. The zero value is "no
// context" and is safe to pass anywhere a context is accepted.
type SpanContext struct {
	Trace string
	Span  string
}

// Valid reports whether the context identifies a real span.
func (sc SpanContext) Valid() bool { return sc.Trace != "" && sc.Span != "" }

// Inject writes the span context into outgoing request headers. A zero
// context injects nothing.
func Inject(h http.Header, sc SpanContext) {
	if !sc.Valid() {
		return
	}
	h.Set(TraceHeader, sc.Trace)
	h.Set(ParentHeader, sc.Span)
}

// Extract reads span context from incoming request headers. When the trace
// header is absent it falls back to X-Unico-Run-ID so untraced-but-run-tagged
// callers still correlate; the parent span is then empty and the receiving
// span becomes a root.
func Extract(h http.Header) SpanContext {
	if trace := h.Get(TraceHeader); trace != "" {
		return SpanContext{Trace: trace, Span: h.Get(ParentHeader)}
	}
	return SpanContext{Trace: h.Get(runid.Header)}
}

// Event is one line of a span log: half a span. Ev is "start" or "end".
// Start events carry identity (kind, name, proc, parent); end events carry
// outcome (status, attrs). Timestamps are microseconds since the Unix epoch.
type Event struct {
	Ev     string            `json:"ev"`
	Trace  string            `json:"trace"`
	Span   string            `json:"span"`
	Parent string            `json:"parent,omitempty"`
	Kind   string            `json:"kind,omitempty"`
	Name   string            `json:"name,omitempty"`
	Proc   string            `json:"proc,omitempty"`
	TimeUS int64             `json:"t_us"`
	Status string            `json:"status,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// maxStoredTraces bounds the in-memory event store serving /v1/spans; the
// oldest trace is evicted when a new one would exceed it.
const maxStoredTraces = 8

// Recorder appends span events to a JSONL log, fsyncing each line, and keeps
// a bounded in-memory copy per trace for the /v1/spans endpoint. A nil
// Recorder is a valid no-op.
type Recorder struct {
	proc   string
	prefix string
	seq    atomic.Uint64

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	err     error
	byTrace map[string][]Event
	order   []string // trace IDs, oldest first, for eviction
}

// NewRecorder opens (appending) a span log at path for a process labeled
// proc ("client", "router", "shard", "loadgen"). An empty path yields a
// memory-only recorder, useful for in-process tests and pure serving.
func NewRecorder(path, proc string) (*Recorder, error) {
	r := &Recorder{proc: proc, prefix: mintPrefix(), byTrace: map[string][]Event{}}
	if path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("disttrace: open span log: %w", err)
		}
		r.f = f
		r.w = bufio.NewWriter(f)
	}
	return r, nil
}

func mintPrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the process clock; prefixes only need to be unique
		// enough that two processes in one fleet don't collide.
		//unicolint:allow detclock span-ID entropy fallback, not search logic
		return strconv.FormatInt(time.Now().UnixNano()&0xffffffff, 16)
	}
	return hex.EncodeToString(b[:])
}

func (r *Recorder) mintID() string {
	return "s" + r.prefix + "-" + strconv.FormatUint(r.seq.Add(1), 10)
}

// Close flushes and closes the underlying span log.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return r.err
	}
	if err := r.w.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	if err := r.f.Close(); err != nil && r.err == nil {
		r.err = err
	}
	r.f = nil
	return r.err
}

// Err returns the first write error the recorder latched, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// emit appends one event to the in-memory store and, when file-backed,
// writes and fsyncs the JSONL line before returning. The fsync-per-event
// cost is the price of the no-orphans guarantee under kill -9.
func (r *Recorder) emit(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byTrace[ev.Trace]; !ok {
		if len(r.order) >= maxStoredTraces {
			delete(r.byTrace, r.order[0])
			r.order = r.order[1:]
		}
		r.order = append(r.order, ev.Trace)
	}
	r.byTrace[ev.Trace] = append(r.byTrace[ev.Trace], ev)
	if r.f == nil || r.err != nil {
		return
	}
	line, err := json.Marshal(ev)
	if err != nil {
		r.err = err
		return
	}
	if _, err := r.w.Write(append(line, '\n')); err != nil {
		r.err = err
		return
	}
	if err := r.w.Flush(); err != nil {
		r.err = err
		return
	}
	//unicolint:allow locksafe WAL ordering: the span append+fsync must be atomic under r.mu or concurrent emits could interleave records
	if err := r.f.Sync(); err != nil {
		r.err = err
	}
}

// Events returns a copy of the stored events for one trace.
func (r *Recorder) Events(trace string) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	evs := r.byTrace[trace]
	out := make([]Event, len(evs))
	copy(out, evs)
	return out
}

// Span is a live span handle. A nil *Span is valid and inert, so callers
// never branch on whether tracing is enabled.
type Span struct {
	rec   *Recorder
	ctx   SpanContext
	ended atomic.Bool
}

// Context returns the span's context for injection into child hops; zero
// when the span is nil.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// End records the span's end event with a status ("ok", "shed", "canceled",
// "error", ...) and optional attributes. Safe on nil; extra calls after the
// first are dropped.
func (s *Span) End(status string, attrs map[string]string) {
	if s == nil || s.ended.Swap(true) {
		return
	}
	s.rec.emit(Event{
		Ev: "end", Trace: s.ctx.Trace, Span: s.ctx.Span,
		TimeUS: nowUS(), Status: status, Attrs: attrs,
	})
}

func nowUS() int64 {
	//unicolint:allow detclock span timestamps measure real latency by definition
	return time.Now().UnixMicro()
}

// active is the process-wide recorder; nil means tracing is disabled and
// every StartSpan returns nil.
var active atomic.Pointer[Recorder]

// Enable installs r as the process recorder (nil disables tracing).
func Enable(r *Recorder) { active.Store(r) }

// Active returns the process recorder, or nil when tracing is disabled.
func Active() *Recorder { return active.Load() }

// StartSpan opens a span on the process recorder. The trace is taken from
// parent when parent is valid; a missing trace, or tracing disabled, yields
// nil. The kind increments unico_trace_spans_total{kind}.
func StartSpan(trace string, parent SpanContext, kind, name string) *Span {
	return Active().StartSpan(trace, parent, kind, name)
}

// StartSpan is the recorder-level form of the package function; nil-safe.
func (r *Recorder) StartSpan(trace string, parent SpanContext, kind, name string) *Span {
	if r == nil {
		return nil
	}
	if parent.Valid() {
		trace = parent.Trace
	} else {
		parent = SpanContext{}
	}
	if trace == "" {
		return nil
	}
	return r.startWithID(r.mintID(), trace, parent, kind, name)
}

func (r *Recorder) startWithID(id, trace string, parent SpanContext, kind, name string) *Span {
	r.emit(Event{
		Ev: "start", Trace: trace, Span: id, Parent: parent.Span,
		Kind: kind, Name: name, Proc: r.proc, TimeUS: nowUS(),
	})
	telemetry.TraceSpans(kind).Inc()
	return &Span{rec: r, ctx: SpanContext{Trace: trace, Span: id}}
}

// StartFromHeader opens a server-side span parented on the extracted
// incoming context. Returns nil when tracing is disabled or the request
// carries neither trace nor run-ID headers.
func StartFromHeader(h http.Header, kind, name string) *Span {
	sc := Extract(h)
	return StartSpan(sc.Trace, sc, kind, name)
}

// runSeq numbers co-search runs within this process so iteration span IDs
// ("r<run>-it<iter>") stay deterministic: the ID is a pure function of the
// run ordinal and iteration number, independent of tracing being on, which
// keeps flight records bit-identical across kill/resume and traced/untraced
// CI comparisons.
var runSeq atomic.Int64

// iterParent holds the current iteration's SpanContext as the process-wide
// parent for client spans. One co-search per process; core runs iterations
// serially, so a plain atomic slot suffices.
var iterParent atomic.Value // SpanContext

// BeginRun marks the start of one co-search run for iteration-span naming.
// Call once per core.Run invocation, traced or not.
func BeginRun() { runSeq.Add(1) }

// IterationSpanID returns the deterministic span ID for an iteration of the
// current run.
func IterationSpanID(iter int) string {
	return "r" + strconv.FormatInt(runSeq.Load(), 10) + "-it" + strconv.Itoa(iter)
}

// BeginIteration opens the per-iteration root span and installs it as the
// process-wide parent for client spans. The returned func ends the span;
// spanID is empty when tracing is disabled or no run ID is set, so callers
// can assign it straight into the flight record's omitempty field.
func BeginIteration(iter int) (end func(), spanID string) {
	rec := Active()
	trace := runid.Current()
	if rec == nil || trace == "" {
		return func() {}, ""
	}
	id := IterationSpanID(iter)
	s := rec.startWithID(id, trace, SpanContext{}, "iteration", "iter "+strconv.Itoa(iter))
	iterParent.Store(s.Context())
	return func() {
		iterParent.Store(SpanContext{})
		s.End("ok", nil)
	}, id
}

// CurrentParent returns the in-flight iteration's span context, or zero
// outside an iteration.
func CurrentParent() SpanContext {
	if sc, ok := iterParent.Load().(SpanContext); ok {
		return sc
	}
	return SpanContext{}
}
