package disttrace

import (
	"bytes"
	"fmt"
	"html"
	"sort"
)

// WaterfallHTML renders a self-contained HTML page for one analyzed trace:
// a summary table, the phase breakdown, and a per-root waterfall with one
// bar per span positioned on the trace's wall-clock extent. Output is
// deterministic for a given trace (spans and children are start-time
// sorted, maps iterated over sorted keys), so it is golden-file testable.
func WaterfallHTML(t *Trace, a *Analysis) []byte {
	var b bytes.Buffer
	startUS, endUS := traceExtent(t)
	total := float64(endUS - startUS)
	if total <= 0 {
		total = 1
	}
	fmt.Fprintf(&b, `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>unico trace %s</title>
<style>
body { font: 13px/1.5 system-ui, sans-serif; margin: 1.5em; color: #1a1a2e; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.4em; }
table { border-collapse: collapse; margin: .5em 0; }
td, th { border: 1px solid #ccd; padding: .2em .6em; text-align: left; }
th { background: #eef; }
.lane { position: relative; height: 18px; margin: 1px 0; }
.lane .label { position: absolute; left: 0; width: 30%%; overflow: hidden;
  white-space: nowrap; text-overflow: ellipsis; font-family: monospace; font-size: 11px; }
.lane .track { position: absolute; left: 31%%; right: 0; top: 2px; height: 14px; background: #f4f4fa; }
.bar { position: absolute; top: 0; height: 100%%; min-width: 2px; border-radius: 2px; }
.bar.iteration { background: #6b7280; } .bar.client { background: #2563eb; }
.bar.attempt { background: #60a5fa; } .bar.backoff { background: #f59e0b; }
.bar.queue { background: #dc2626; } .bar.forward { background: #9333ea; }
.bar.replay { background: #db2777; } .bar.shard { background: #0d9488; }
.bar.engine { background: #16a34a; } .bar.unknown { background: #9ca3af; }
.bar.incomplete { opacity: .45; border: 1px dashed #333; }
.legend span { display: inline-block; padding: 0 .5em; margin-right: .4em; border-radius: 2px; color: #fff; font-size: 11px; }
</style></head><body>
<h1>Trace %s</h1>
`, html.EscapeString(t.ID), html.EscapeString(t.ID))

	fmt.Fprintf(&b, "<table><tr><th>spans</th><th>orphans</th><th>incomplete spans</th><th>evals</th><th>complete chains</th><th>incomplete chains</th><th>queue p50</th><th>queue p99</th></tr>")
	fmt.Fprintf(&b, "<tr><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td><td>%s</td></tr></table>\n",
		a.Summary.Spans, a.Summary.Orphans, a.Summary.IncompleteSpans, a.Summary.Evals,
		a.Summary.CompleteChains, a.Summary.IncompleteChains,
		fmtSeconds(a.Summary.QueueWaitP50), fmtSeconds(a.Summary.QueueWaitP99))

	b.WriteString("<h2>Phase breakdown (self time)</h2><table><tr><th>kind</th><th>spans</th><th>self seconds</th></tr>\n")
	kinds := make([]string, 0, len(a.Summary.SpansByKind))
	for k := range a.Summary.SpansByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%s</td></tr>\n",
			html.EscapeString(k), a.Summary.SpansByKind[k], fmtSeconds(a.Summary.PhaseSeconds[k]))
	}
	b.WriteString("</table>\n")

	b.WriteString(`<h2>Waterfall</h2><div class="legend">`)
	for _, k := range []string{"iteration", "client", "attempt", "backoff", "queue", "forward", "replay", "shard", "engine"} {
		fmt.Fprintf(&b, `<span class="bar %s">%s</span>`, k, k)
	}
	b.WriteString("</div>\n")
	for _, root := range t.Roots {
		writeLane(&b, root, 0, startUS, endUS, total)
	}
	for _, n := range t.Orphans {
		fmt.Fprintf(&b, `<div class="lane"><div class="label">ORPHAN %s %s</div></div>`+"\n",
			html.EscapeString(n.Kind), html.EscapeString(n.ID))
	}

	if len(a.Evals) > 0 {
		b.WriteString("<h2>Per-eval critical paths</h2><table><tr><th>span</th><th>route</th><th>status</th><th>chain</th><th>seconds</th><th>critical path</th></tr>\n")
		for _, ec := range a.Evals {
			chain := "complete"
			if !ec.Complete {
				chain = "INCOMPLETE"
			}
			var cp bytes.Buffer
			for i, step := range ec.CriticalPath {
				if i > 0 {
					cp.WriteString(" &gt; ")
				}
				fmt.Fprintf(&cp, "%s %s", html.EscapeString(step.Kind), fmtSeconds(step.Seconds))
			}
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
				html.EscapeString(ec.SpanID), html.EscapeString(ec.Name), html.EscapeString(ec.Status),
				chain, fmtSeconds(ec.Seconds), cp.String())
		}
		b.WriteString("</table>\n")
	}
	b.WriteString("</body></html>\n")
	return b.Bytes()
}

func traceExtent(t *Trace) (startUS, endUS int64) {
	for _, n := range t.Spans {
		if n.StartUS == 0 {
			continue
		}
		if startUS == 0 || n.StartUS < startUS {
			startUS = n.StartUS
		}
		if n.EndUS > endUS {
			endUS = n.EndUS
		}
		if n.StartUS > endUS {
			endUS = n.StartUS
		}
	}
	return startUS, endUS
}

func writeLane(b *bytes.Buffer, n *SpanNode, depth int, startUS, endUS int64, total float64) {
	left := float64(n.StartUS-startUS) / total * 100
	spanEnd := n.EndUS
	incomplete := ""
	if spanEnd == 0 {
		spanEnd = endUS // draw incomplete spans out to the trace edge
		incomplete = " incomplete"
	}
	width := float64(spanEnd-n.StartUS) / total * 100
	if width < 0 {
		width = 0
	}
	kind := n.Kind
	if kind == "" {
		kind = "unknown"
	}
	pad := depth * 8
	status := n.Status
	if status == "" {
		status = "…"
	}
	fmt.Fprintf(b, `<div class="lane"><div class="label" style="padding-left:%dpx" title="%s">%s %s [%s]</div>`+
		`<div class="track"><div class="bar %s%s" style="left:%.3f%%;width:%.3f%%" title="%s %s %s %s"></div></div></div>`+"\n",
		pad, html.EscapeString(n.ID),
		html.EscapeString(kind), html.EscapeString(n.Name), html.EscapeString(status),
		html.EscapeString(kind), incomplete, left, width,
		html.EscapeString(n.ID), html.EscapeString(n.Proc), fmtSeconds(n.Seconds()), html.EscapeString(status))
	for _, c := range n.Children {
		writeLane(b, c, depth+1, startUS, endUS, total)
	}
}

func fmtSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}
