package disttrace

import (
	"encoding/json"
	"net/http"
)

// SpansHandler serves GET /v1/spans?run=<trace> from the process recorder
// as JSONL events — the same wire shape as the span log, so router-side
// merges and offline file merges share one parser. An empty body (200)
// means tracing is disabled or the trace is unknown here; that is not an
// error, because a fleet may run with tracing on only some members.
func SpansHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		run := req.URL.Query().Get("run")
		if run == "" {
			http.Error(w, "disttrace: missing run parameter", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		enc := json.NewEncoder(w)
		for _, ev := range Active().Events(run) {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
	})
}
