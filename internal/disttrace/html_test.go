package disttrace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is a fixed trace pinned byte-for-byte in the waterfall
// golden: a direct eval, a routed eval with queue+forward, a backoff after
// a shed, and one incomplete span from a killed process.
func goldenEvents() []Event {
	return []Event{
		{Ev: "start", Trace: "golden-run", Span: "r1-it1", Kind: "iteration", Name: "iter 1", Proc: "client", TimeUS: 1_000_000},
		{Ev: "start", Trace: "golden-run", Span: "c1", Parent: "r1-it1", Kind: "client", Name: "/v1/ppa", Proc: "client", TimeUS: 1_000_100},
		{Ev: "start", Trace: "golden-run", Span: "a1", Parent: "c1", Kind: "attempt", Name: "/v1/ppa", Proc: "client", TimeUS: 1_000_150},
		{Ev: "start", Trace: "golden-run", Span: "s1", Parent: "a1", Kind: "shard", Name: "/v1/ppa", Proc: "shard", TimeUS: 1_000_400},
		{Ev: "start", Trace: "golden-run", Span: "e1", Parent: "s1", Kind: "engine", Name: "maestro", Proc: "shard", TimeUS: 1_000_450},
		{Ev: "end", Trace: "golden-run", Span: "e1", TimeUS: 1_020_000, Status: "ok"},
		{Ev: "end", Trace: "golden-run", Span: "s1", TimeUS: 1_020_100, Status: "ok"},
		{Ev: "end", Trace: "golden-run", Span: "a1", TimeUS: 1_020_400, Status: "shed"},
		{Ev: "start", Trace: "golden-run", Span: "b1", Parent: "c1", Kind: "backoff", Name: "/v1/ppa", Proc: "client", TimeUS: 1_020_500},
		{Ev: "end", Trace: "golden-run", Span: "b1", TimeUS: 1_070_500, Status: "ok"},
		{Ev: "start", Trace: "golden-run", Span: "a2", Parent: "c1", Kind: "attempt", Name: "/v1/ppa", Proc: "client", TimeUS: 1_070_600},
		{Ev: "start", Trace: "golden-run", Span: "q2", Parent: "a2", Kind: "queue", Name: "shard-2", Proc: "router", TimeUS: 1_070_700},
		{Ev: "end", Trace: "golden-run", Span: "q2", TimeUS: 1_080_000, Status: "ok"},
		{Ev: "start", Trace: "golden-run", Span: "f2", Parent: "a2", Kind: "forward", Name: "/v1/ppa", Proc: "router", TimeUS: 1_080_000},
		{Ev: "start", Trace: "golden-run", Span: "s2", Parent: "f2", Kind: "shard", Name: "/v1/ppa", Proc: "shard", TimeUS: 1_080_200},
		{Ev: "start", Trace: "golden-run", Span: "e2", Parent: "s2", Kind: "engine", Name: "maestro", Proc: "shard", TimeUS: 1_080_250},
		{Ev: "end", Trace: "golden-run", Span: "e2", TimeUS: 1_110_000, Status: "ok"},
		{Ev: "end", Trace: "golden-run", Span: "s2", TimeUS: 1_110_100, Status: "ok"},
		{Ev: "end", Trace: "golden-run", Span: "f2", TimeUS: 1_110_300, Status: "ok"},
		{Ev: "end", Trace: "golden-run", Span: "a2", TimeUS: 1_110_500, Status: "ok"},
		{Ev: "end", Trace: "golden-run", Span: "c1", TimeUS: 1_110_600, Status: "ok", Attrs: map[string]string{"attempts": "2"}},
		// A span whose process was killed mid-eval: start only.
		{Ev: "start", Trace: "golden-run", Span: "c2", Parent: "r1-it1", Kind: "client", Name: "/v1/jobs/advance", Proc: "client", TimeUS: 1_111_000},
		{Ev: "end", Trace: "golden-run", Span: "r1-it1", TimeUS: 1_120_000, Status: "ok"},
	}
}

func TestWaterfallGolden(t *testing.T) {
	tr := BuildTraces(goldenEvents())[0]
	got := WaterfallHTML(tr, Analyze(tr))
	path := filepath.Join("testdata", "waterfall_golden.html")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test ./internal/disttrace -run Golden -update`)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("rendered waterfall differs from %s (regenerate with -update if the change is intended)\ngot:\n%s", path, got)
	}
}

// TestWaterfallDeterministic guards the golden against map-order leaks: two
// renders of the same trace must be byte-identical.
func TestWaterfallDeterministic(t *testing.T) {
	a := BuildTraces(goldenEvents())[0]
	b := BuildTraces(goldenEvents())[0]
	if !bytes.Equal(WaterfallHTML(a, Analyze(a)), WaterfallHTML(b, Analyze(b))) {
		t.Fatal("two renders of the same trace differ")
	}
}
