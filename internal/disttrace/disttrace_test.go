package disttrace

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"unico/internal/runid"
)

// enable installs a recorder for the test and restores the previous state
// (tracing off) afterwards.
func enable(t *testing.T, path, proc string) *Recorder {
	t.Helper()
	rec, err := NewRecorder(path, proc)
	if err != nil {
		t.Fatal(err)
	}
	prev := Active()
	Enable(rec)
	t.Cleanup(func() {
		Enable(prev)
		rec.Close()
	})
	return rec
}

func TestDisabledTracingIsInert(t *testing.T) {
	prev := Active()
	Enable(nil)
	defer Enable(prev)
	s := StartSpan("run-1", SpanContext{}, "client", "/v1/ppa")
	if s != nil {
		t.Fatalf("StartSpan with tracing disabled = %v, want nil", s)
	}
	s.End("ok", nil) // must not panic
	if sc := s.Context(); sc.Valid() {
		t.Errorf("nil span context = %+v, want zero", sc)
	}
	end, id := BeginIteration(3)
	end()
	if id != "" {
		t.Errorf("BeginIteration span ID with tracing disabled = %q, want empty", id)
	}
}

func TestRecorderWritesDurableSpanLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	enable(t, path, "client")
	parent := StartSpan("run-7", SpanContext{}, "client", "/v1/ppa")
	child := StartSpan("", parent.Context(), "attempt", "/v1/ppa")
	child.End("ok", nil)
	parent.End("ok", map[string]string{"attempts": "1"})
	// The file is fsynced per event — readable without Close.
	events, skipped, err := LoadFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(events) != 4 {
		t.Fatalf("got %d events, %d skipped; want 4, 0", len(events), skipped)
	}
	traces := BuildTraces(events)
	if len(traces) != 1 || traces[0].ID != "run-7" {
		t.Fatalf("traces: %+v", traces)
	}
	tr := traces[0]
	if len(tr.Spans) != 2 || len(tr.Orphans) != 0 || len(tr.Incomplete) != 0 {
		t.Fatalf("spans=%d orphans=%d incomplete=%d; want 2, 0, 0",
			len(tr.Spans), len(tr.Orphans), len(tr.Incomplete))
	}
	if len(tr.Roots) != 1 || len(tr.Roots[0].Children) != 1 {
		t.Fatalf("tree shape: roots=%d", len(tr.Roots))
	}
	if got := tr.Roots[0].Attrs["attempts"]; got != "1" {
		t.Errorf("root attrs = %v", tr.Roots[0].Attrs)
	}
}

// TestKillYieldsIncompleteNeverOrphan is the core durability contract: a
// parent's start event is on disk before any child starts, so truncating
// the log at any line boundary (what kill -9 leaves behind) produces
// incomplete spans but never an orphan.
func TestKillYieldsIncompleteNeverOrphan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	enable(t, path, "client")
	p := StartSpan("run-9", SpanContext{}, "client", "/v1/ppa")
	c := StartSpan("", p.Context(), "attempt", "/v1/ppa")
	g := StartSpan("", c.Context(), "shard", "/v1/ppa")
	g.End("ok", nil)
	c.End("ok", nil)
	p.End("ok", nil)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	for cut := 0; cut <= len(lines); cut++ {
		head := strings.Join(lines[:cut], "\n")
		// Simulate a torn final line too: chop the last line in half.
		for _, input := range []string{head, head + "\n" + `{"ev":"sta`} {
			events, _, err := ParseEvents(strings.NewReader(input))
			if err != nil {
				t.Fatal(err)
			}
			for _, tr := range BuildTraces(events) {
				if len(tr.Orphans) != 0 {
					t.Fatalf("cut=%d: %d orphans; kill must only yield incomplete spans", cut, len(tr.Orphans))
				}
			}
		}
	}
}

func TestBuildTracesFlagsOrphans(t *testing.T) {
	events := []Event{
		{Ev: "start", Trace: "r", Span: "a", Kind: "client", Name: "/v1/ppa", TimeUS: 10},
		{Ev: "start", Trace: "r", Span: "b", Parent: "missing", Kind: "shard", TimeUS: 20},
		{Ev: "end", Trace: "r", Span: "b", TimeUS: 30, Status: "ok"},
		{Ev: "end", Trace: "r", Span: "ghost", TimeUS: 40, Status: "ok"}, // end without start
	}
	tr := BuildTraces(events)[0]
	if len(tr.Orphans) != 2 {
		t.Fatalf("orphans = %d, want 2 (dangling parent + end-without-start)", len(tr.Orphans))
	}
	if len(tr.Incomplete) != 1 {
		t.Fatalf("incomplete = %d, want 1 (span a)", len(tr.Incomplete))
	}
}

func TestAnalyzeChainsAndPhases(t *testing.T) {
	// A routed eval: client(100µs..900µs) > attempt > queue+forward > shard > engine,
	// and a failed client call with no chain (allowed: it did not end ok).
	events := []Event{
		{Ev: "start", Trace: "r", Span: "cl", Kind: "client", Name: "/v1/ppa", TimeUS: 100},
		{Ev: "start", Trace: "r", Span: "at", Parent: "cl", Kind: "attempt", Name: "/v1/ppa", TimeUS: 110},
		{Ev: "start", Trace: "r", Span: "qu", Parent: "at", Kind: "queue", TimeUS: 120},
		{Ev: "end", Trace: "r", Span: "qu", TimeUS: 220, Status: "ok"},
		{Ev: "start", Trace: "r", Span: "fw", Parent: "at", Kind: "forward", TimeUS: 220},
		{Ev: "start", Trace: "r", Span: "sh", Parent: "fw", Kind: "shard", Name: "/v1/ppa", TimeUS: 240},
		{Ev: "start", Trace: "r", Span: "en", Parent: "sh", Kind: "engine", Name: "maestro", TimeUS: 250},
		{Ev: "end", Trace: "r", Span: "en", TimeUS: 750, Status: "ok"},
		{Ev: "end", Trace: "r", Span: "sh", TimeUS: 760, Status: "ok"},
		{Ev: "end", Trace: "r", Span: "fw", TimeUS: 800, Status: "ok"},
		{Ev: "end", Trace: "r", Span: "at", TimeUS: 880, Status: "ok"},
		{Ev: "end", Trace: "r", Span: "cl", TimeUS: 900, Status: "ok"},
		{Ev: "start", Trace: "r", Span: "cl2", Kind: "client", Name: "/v1/ppa", TimeUS: 1000},
		{Ev: "end", Trace: "r", Span: "cl2", TimeUS: 1100, Status: "error"},
	}
	a := Analyze(BuildTraces(events)[0])
	s := a.Summary
	if s.Evals != 2 || s.CompleteChains != 1 || s.IncompleteChains != 0 {
		t.Fatalf("evals=%d complete=%d incomplete=%d; want 2, 1, 0", s.Evals, s.CompleteChains, s.IncompleteChains)
	}
	if s.Orphans != 0 {
		t.Fatalf("orphans = %d", s.Orphans)
	}
	// Self-time decomposition: engine 500µs, queue 100µs; client self =
	// 800 - 770 (attempt) ... every kind's self time sums to total wall.
	wantPhases := map[string]float64{
		"client": 130e-6, "attempt": 90e-6, "queue": 100e-6,
		"forward": 60e-6, "shard": 20e-6, "engine": 500e-6,
	}
	for kind, want := range wantPhases {
		if got := s.PhaseSeconds[kind]; !close6(got, want) {
			t.Errorf("phase %q = %v, want %v", kind, got, want)
		}
	}
	if !close6(s.QueueWaitP50, 100e-6) || !close6(s.QueueWaitP99, 100e-6) {
		t.Errorf("queue percentiles p50=%v p99=%v, want 100µs", s.QueueWaitP50, s.QueueWaitP99)
	}
	// Critical path of the ok eval descends by max child duration.
	got := a.Evals[0].CriticalPath
	wantKinds := []string{"client", "attempt", "forward", "shard", "engine"}
	if len(got) != len(wantKinds) {
		t.Fatalf("critical path %v", got)
	}
	for i, k := range wantKinds {
		if got[i].Kind != k {
			t.Fatalf("critical path step %d = %q, want %q (full: %v)", i, got[i].Kind, k, got)
		}
	}
}

// TestAnalyzeIncompleteChain: an ok client span without an engine
// descendant is the gate-failing case (a shard span log went missing).
func TestAnalyzeIncompleteChain(t *testing.T) {
	events := []Event{
		{Ev: "start", Trace: "r", Span: "cl", Kind: "client", Name: "/v1/jobs/advance", TimeUS: 10},
		{Ev: "end", Trace: "r", Span: "cl", TimeUS: 50, Status: "ok"},
	}
	a := Analyze(BuildTraces(events)[0])
	if a.Summary.IncompleteChains != 1 || a.Summary.CompleteChains != 0 {
		t.Fatalf("summary %+v; want one incomplete chain", a.Summary)
	}
}

func TestInjectExtractRoundTrip(t *testing.T) {
	h := http.Header{}
	Inject(h, SpanContext{Trace: "run-1", Span: "s1"})
	if got := Extract(h); got != (SpanContext{Trace: "run-1", Span: "s1"}) {
		t.Fatalf("Extract = %+v", got)
	}
	// Zero context injects nothing.
	h2 := http.Header{}
	Inject(h2, SpanContext{})
	if len(h2) != 0 {
		t.Fatalf("zero inject wrote headers: %v", h2)
	}
	// Run-ID fallback: trace from X-Unico-Run-ID, no parent.
	h3 := http.Header{}
	h3.Set(runid.Header, "run-2")
	if got := Extract(h3); got.Trace != "run-2" || got.Span != "" {
		t.Fatalf("run-ID fallback = %+v", got)
	}
}

func TestIterationSpanIDsDeterministic(t *testing.T) {
	enable(t, "", "client")
	prevRun := runid.Current()
	runid.Set("run-det")
	defer runid.Set(prevRun)
	BeginRun()
	end, id := BeginIteration(4)
	if id != IterationSpanID(4) || !strings.HasSuffix(id, "-it4") {
		t.Fatalf("iteration span ID %q", id)
	}
	if got := CurrentParent(); got.Span != id || got.Trace != "run-det" {
		t.Fatalf("CurrentParent during iteration = %+v", got)
	}
	end()
	if got := CurrentParent(); got.Valid() {
		t.Fatalf("CurrentParent after end = %+v, want zero", got)
	}
	// A second run re-derives a distinct deterministic prefix.
	BeginRun()
	if id2 := IterationSpanID(4); id2 == id {
		t.Fatalf("run 2 iteration ID %q collides with run 1", id2)
	}
}

func TestSpansHandlerServesJSONL(t *testing.T) {
	rec := enable(t, "", "shard")
	s := rec.StartSpan("run-h", SpanContext{}, "shard", "/v1/ppa")
	s.End("ok", nil)
	srv := httptest.NewServer(SpansHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/spans?run=run-h")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events, skipped, err := ParseEvents(resp.Body)
	if err != nil || skipped != 0 {
		t.Fatalf("parse: %v, %d skipped", err, skipped)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	// Unknown runs and disabled tracing answer 200 with an empty body.
	resp2, err := http.Get(srv.URL + "/v1/spans?run=unknown")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if events, _, _ := ParseEvents(resp2.Body); len(events) != 0 {
		t.Fatalf("unknown run returned %d events", len(events))
	}
	// Missing the run parameter is the one client error.
	resp3, err := http.Get(srv.URL + "/v1/spans")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing run = %d, want 400", resp3.StatusCode)
	}
}

func close6(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
