package disttrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// ParseEvents reads JSONL span events, skipping malformed lines (a torn
// final line from a killed process is expected, not an error) and
// duplicates of a (span, ev) pair already seen — merged inputs may overlap.
// It returns the events and the count of skipped lines.
func ParseEvents(rd io.Reader) ([]Event, int, error) {
	var out []Event
	seen := map[[2]string]bool{}
	skipped := 0
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil || ev.Trace == "" || ev.Span == "" ||
			(ev.Ev != "start" && ev.Ev != "end") {
			skipped++
			continue
		}
		key := [2]string{ev.Span, ev.Ev}
		if seen[key] {
			skipped++
			continue
		}
		seen[key] = true
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return out, skipped, fmt.Errorf("disttrace: scan events: %w", err)
	}
	return out, skipped, nil
}

// LoadFiles merges span events from several JSONL logs (e.g. one per fleet
// process). Duplicate (span, ev) pairs across files keep the first seen.
func LoadFiles(paths ...string) ([]Event, int, error) {
	var all []Event
	seen := map[[2]string]bool{}
	skipped := 0
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, skipped, err
		}
		evs, sk, err := ParseEvents(f)
		f.Close()
		if err != nil {
			return nil, skipped, fmt.Errorf("%s: %w", p, err)
		}
		skipped += sk
		for _, ev := range evs {
			key := [2]string{ev.Span, ev.Ev}
			if seen[key] {
				continue
			}
			seen[key] = true
			all = append(all, ev)
		}
	}
	return all, skipped, nil
}

// SpanNode is one reconstructed span in a trace tree.
type SpanNode struct {
	Trace    string
	ID       string
	Parent   string
	Kind     string
	Name     string
	Proc     string
	StartUS  int64
	EndUS    int64 // 0: incomplete (no end event reached disk)
	Status   string
	Attrs    map[string]string
	Children []*SpanNode
	Orphan   bool // Parent names a span absent from the trace
}

// Seconds returns the span duration; 0 for incomplete spans.
func (n *SpanNode) Seconds() float64 {
	if n.EndUS == 0 || n.EndUS < n.StartUS {
		return 0
	}
	return float64(n.EndUS-n.StartUS) / 1e6
}

// Trace is one reconstructed trace: all spans of a run, tree-linked.
type Trace struct {
	ID         string
	Spans      []*SpanNode // sorted by start time, then span ID
	Roots      []*SpanNode
	Orphans    []*SpanNode
	Incomplete []*SpanNode
}

// BuildTraces groups events by trace ID and reconstructs each trace's span
// tree. End events without a start (the start's log was lost entirely) are
// synthesized into orphan spans so the loss is visible rather than silent.
// Traces are returned sorted by ID; children sorted by start time.
func BuildTraces(events []Event) []*Trace {
	byTrace := map[string]map[string]*SpanNode{}
	var traceIDs []string
	node := func(trace, span string) *SpanNode {
		m := byTrace[trace]
		if m == nil {
			m = map[string]*SpanNode{}
			byTrace[trace] = m
			traceIDs = append(traceIDs, trace)
		}
		n := m[span]
		if n == nil {
			n = &SpanNode{Trace: trace, ID: span}
			m[span] = n
		}
		return n
	}
	for _, ev := range events {
		n := node(ev.Trace, ev.Span)
		switch ev.Ev {
		case "start":
			n.Parent, n.Kind, n.Name, n.Proc, n.StartUS = ev.Parent, ev.Kind, ev.Name, ev.Proc, ev.TimeUS
		case "end":
			n.EndUS, n.Status = ev.TimeUS, ev.Status
			if ev.Attrs != nil {
				n.Attrs = ev.Attrs
			}
		}
	}
	sort.Strings(traceIDs)
	out := make([]*Trace, 0, len(traceIDs))
	for _, id := range traceIDs {
		m := byTrace[id]
		t := &Trace{ID: id}
		for _, n := range m {
			t.Spans = append(t.Spans, n)
		}
		sort.Slice(t.Spans, func(i, j int) bool {
			if t.Spans[i].StartUS != t.Spans[j].StartUS {
				return t.Spans[i].StartUS < t.Spans[j].StartUS
			}
			return t.Spans[i].ID < t.Spans[j].ID
		})
		for _, n := range t.Spans {
			switch {
			case n.StartUS == 0 && n.Kind == "":
				// end without start: the start record never reached disk.
				n.Orphan = true
				t.Orphans = append(t.Orphans, n)
			case n.Parent == "":
				t.Roots = append(t.Roots, n)
			default:
				p := m[n.Parent]
				if p == nil {
					n.Orphan = true
					t.Orphans = append(t.Orphans, n)
					continue
				}
				p.Children = append(p.Children, n)
			}
			if n.EndUS == 0 {
				t.Incomplete = append(t.Incomplete, n)
			}
		}
		out = append(out, t)
	}
	return out
}

// evalRoutes are the client span names whose ok completion requires a
// finished engine descendant — the chain-completeness rule unicotrace gates
// on. Budget-0 advance polls still record an engine span on the shard, so
// the rule holds uniformly.
var evalRoutes = map[string]bool{"/v1/ppa": true, "/v1/jobs/advance": true}

// PathStep is one hop of a critical path.
type PathStep struct {
	Kind    string  `json:"kind"`
	Name    string  `json:"name"`
	Proc    string  `json:"proc,omitempty"`
	Seconds float64 `json:"seconds"`
}

// EvalChain is the analysis of one remote eval (a client span on an eval
// route): whether its causal chain reached an engine span, where its time
// went (self-time by span kind), and the critical path through its subtree.
type EvalChain struct {
	Span         *SpanNode          `json:"-"`
	SpanID       string             `json:"span"`
	Name         string             `json:"name"`
	Status       string             `json:"status"`
	Seconds      float64            `json:"seconds"`
	Complete     bool               `json:"complete"`
	PhaseSeconds map[string]float64 `json:"phase_seconds"`
	CriticalPath []PathStep         `json:"critical_path"`
}

// Summary is the machine-readable roll-up unicotrace emits and gates on.
type Summary struct {
	Trace            string             `json:"trace"`
	Spans            int                `json:"spans"`
	SpansByKind      map[string]int     `json:"spans_by_kind"`
	Orphans          int                `json:"orphans"`
	IncompleteSpans  int                `json:"incomplete_spans"`
	Evals            int                `json:"evals"`
	CompleteChains   int                `json:"complete_chains"`
	IncompleteChains int                `json:"incomplete_chains"`
	PhaseSeconds     map[string]float64 `json:"phase_seconds"`
	QueueWaitP50     float64            `json:"queue_wait_p50_seconds"`
	QueueWaitP99     float64            `json:"queue_wait_p99_seconds"`
}

// Analysis is the full result of analyzing one trace.
type Analysis struct {
	Summary Summary     `json:"summary"`
	Evals   []EvalChain `json:"evals"`
}

// Analyze reconstructs chain completeness, phase breakdown, queue-wait
// percentiles, and per-eval critical paths for one trace.
//
// The phase breakdown is self-time by span kind: each span contributes its
// duration minus the summed durations of its children (clamped at zero, so
// cross-process clock skew can't go negative). That decomposition is
// topology-agnostic — it attributes time correctly whether an eval went
// client→attempt→shard→engine directly or through the router's
// queue/forward spans — and sums to total wall time per subtree.
func Analyze(t *Trace) *Analysis {
	a := &Analysis{Summary: Summary{
		Trace:        t.ID,
		Spans:        len(t.Spans),
		SpansByKind:  map[string]int{},
		PhaseSeconds: map[string]float64{},
		Orphans:      len(t.Orphans),
	}}
	var queueWaits []float64
	for _, n := range t.Spans {
		kind := n.Kind
		if kind == "" {
			kind = "unknown"
		}
		a.Summary.SpansByKind[kind]++
		if n.EndUS == 0 {
			a.Summary.IncompleteSpans++
		}
		a.Summary.PhaseSeconds[kind] += selfSeconds(n)
		if n.Kind == "queue" && n.EndUS != 0 {
			queueWaits = append(queueWaits, n.Seconds())
		}
	}
	a.Summary.QueueWaitP50 = percentile(queueWaits, 0.50)
	a.Summary.QueueWaitP99 = percentile(queueWaits, 0.99)
	for _, n := range t.Spans {
		if n.Kind != "client" || !evalRoutes[n.Name] {
			continue
		}
		ec := EvalChain{
			Span: n, SpanID: n.ID, Name: n.Name, Status: n.Status,
			Seconds:      n.Seconds(),
			PhaseSeconds: map[string]float64{},
			CriticalPath: criticalPath(n),
		}
		collectPhases(n, ec.PhaseSeconds)
		// Only an ok-completed client call promises the work happened; a
		// failed or still-open call is allowed to have a broken chain.
		ec.Complete = hasEndedEngine(n)
		a.Summary.Evals++
		if n.Status == "ok" && n.EndUS != 0 {
			if ec.Complete {
				a.Summary.CompleteChains++
			} else {
				a.Summary.IncompleteChains++
			}
		} else if ec.Complete {
			a.Summary.CompleteChains++
		}
		a.Evals = append(a.Evals, ec)
	}
	return a
}

func selfSeconds(n *SpanNode) float64 {
	self := n.Seconds()
	for _, c := range n.Children {
		self -= c.Seconds()
	}
	if self < 0 {
		self = 0
	}
	return self
}

func collectPhases(n *SpanNode, into map[string]float64) {
	kind := n.Kind
	if kind == "" {
		kind = "unknown"
	}
	into[kind] += selfSeconds(n)
	for _, c := range n.Children {
		collectPhases(c, into)
	}
}

func hasEndedEngine(n *SpanNode) bool {
	for _, c := range n.Children {
		if c.Kind == "engine" && c.EndUS != 0 {
			return true
		}
		if hasEndedEngine(c) {
			return true
		}
	}
	return false
}

// criticalPath walks from the eval span down its longest-duration child at
// each level, which in this topology is the chain that bounded the eval's
// latency.
func criticalPath(n *SpanNode) []PathStep {
	var path []PathStep
	for cur := n; cur != nil; {
		path = append(path, PathStep{Kind: cur.Kind, Name: cur.Name, Proc: cur.Proc, Seconds: cur.Seconds()})
		var next *SpanNode
		for _, c := range cur.Children {
			if next == nil || c.Seconds() > next.Seconds() {
				next = c
			}
		}
		cur = next
	}
	return path
}

func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(float64(len(sorted))*q+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
