package sh

import (
	"context"
	"testing"

	"unico/internal/mapsearch"
	"unico/internal/ppa"
	"unico/internal/simclock"
)

// scripted is a fake searcher whose loss curve is a prescribed function of
// budget, letting the tests control TV and AUC exactly.
type scripted struct {
	loss  func(b int) float64
	spent int
	hist  ppa.History
}

func newScripted(loss func(b int) float64) *scripted {
	return &scripted{loss: loss}
}

func (s *scripted) Advance(budget int) {
	for i := 0; i < budget; i++ {
		s.spent++
		l := s.loss(s.spent)
		if len(s.hist) > 0 && l > s.hist[len(s.hist)-1].Loss {
			l = s.hist[len(s.hist)-1].Loss
		}
		s.hist = append(s.hist, ppa.Point{
			Budget: s.spent, Loss: l,
			M: ppa.Metrics{LatencyMs: l, PowerMW: 1, AreaMM2: 1, EnergyUJ: l},
		})
	}
}
func (s *scripted) History() ppa.History    { return s.hist }
func (s *scripted) RawHistory() ppa.History { return s.hist }
func (s *scripted) Spent() int              { return s.spent }
func (s *scripted) Best() (ppa.Metrics, bool) {
	if len(s.hist) == 0 {
		return ppa.Metrics{}, false
	}
	return s.hist.Last().M, true
}

// constLoss returns a candidate stuck at level.
func constLoss(level float64) *scripted {
	return newScripted(func(int) float64 { return level })
}

func TestRunBudgetLadder(t *testing.T) {
	jobs := make([]mapsearch.Searcher, 8)
	for i := range jobs {
		jobs[i] = constLoss(float64(i + 1))
	}
	out := Run(context.Background(), jobs, Config{Eta: 2, KFrac: 0.5, PFrac: 0, BMax: 64, Workers: 4})
	if out.Rounds != 3 { // ceil(log2(8))
		t.Errorf("Rounds = %d, want 3", out.Rounds)
	}
	// The best candidate (lowest constant loss) must survive to full budget.
	if jobs[0].Spent() != 64 {
		t.Errorf("best candidate spent %d, want 64", jobs[0].Spent())
	}
	// The worst candidate must be stopped early.
	if jobs[7].Spent() >= 64 {
		t.Errorf("worst candidate spent %d, want early stop", jobs[7].Spent())
	}
	if len(out.Survivors) == 0 || out.Survivors[0] != 0 {
		t.Errorf("Survivors = %v, want candidate 0 alive", out.Survivors)
	}
	if out.TotalEvals <= 0 {
		t.Error("TotalEvals not counted")
	}
}

func TestRunSingleJobGetsFullBudget(t *testing.T) {
	jobs := []mapsearch.Searcher{constLoss(1)}
	Run(context.Background(), jobs, Config{BMax: 32})
	if jobs[0].Spent() != 32 {
		t.Errorf("lone job spent %d, want 32", jobs[0].Spent())
	}
}

func TestRunEmpty(t *testing.T) {
	out := Run(context.Background(), nil, Config{BMax: 10})
	if out.TotalEvals != 0 || len(out.Histories) != 0 {
		t.Errorf("empty run produced %+v", out)
	}
}

func TestPromoteDefaultSHKeepsTopHalfByTV(t *testing.T) {
	jobs := make([]mapsearch.Searcher, 6)
	for i := range jobs {
		jobs[i] = constLoss(float64(i))
		jobs[i].Advance(4)
	}
	alive := []int{0, 1, 2, 3, 4, 5}
	next := Promote(jobs, alive, Config{KFrac: 0.5, PFrac: 0, BMax: 8})
	if len(next) != 3 {
		t.Fatalf("survivors = %v, want 3", next)
	}
	for _, i := range next {
		if i > 2 {
			t.Errorf("default SH promoted candidate %d with worse TV", i)
		}
	}
}

func TestMSHPromotesSteepConverger(t *testing.T) {
	// Candidate 0..3: good flat TVs. Candidate 4: poor TV but steepest
	// convergence (huge AUC) — default SH kills it; MSH must keep it.
	jobs := []mapsearch.Searcher{
		constLoss(1), constLoss(2), constLoss(3), constLoss(4),
		newScripted(func(b int) float64 { return 100 / float64(b) }), // TV 25 at b=4, AUC big
	}
	for _, j := range jobs {
		j.Advance(4)
	}
	alive := []int{0, 1, 2, 3, 4}
	sh := Promote(jobs, alive, Config{KFrac: 0.5, PFrac: 0, BMax: 8})
	for _, i := range sh {
		if i == 4 {
			t.Fatal("default SH kept the poor-TV candidate; test premise broken")
		}
	}
	msh := Promote(jobs, alive, Config{KFrac: 0.6, PFrac: 0.3, BMax: 8})
	kept := false
	for _, i := range msh {
		if i == 4 {
			kept = true
		}
	}
	if !kept {
		t.Errorf("MSH did not promote the steep converger: %v", msh)
	}
}

func TestMSHDegeneratesToSHAtPZero(t *testing.T) {
	// Paper Section 3.3: MSH with p = 0 IS the default SH. Identical
	// candidates must yield identical survivor sets.
	mk := func() []mapsearch.Searcher {
		jobs := make([]mapsearch.Searcher, 10)
		for i := range jobs {
			i := i
			jobs[i] = newScripted(func(b int) float64 { return float64((i*7)%10) + 10/float64(b) })
			jobs[i].Advance(6)
		}
		return jobs
	}
	alive := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	a := Promote(mk(), alive, Config{KFrac: 0.5, PFrac: 0, BMax: 12})
	b := Promote(mk(), alive, Config{KFrac: 0.5, PFrac: 0, BMax: 12})
	if len(a) != len(b) {
		t.Fatalf("non-deterministic promotion: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic promotion: %v vs %v", a, b)
		}
	}
}

func TestTVAndAUCSetsDisjoint(t *testing.T) {
	// The same candidate must not be double-counted between the TV and AUC
	// promotion sets (paper: H_TV ∩ H_AUC = ∅).
	jobs := []mapsearch.Searcher{
		newScripted(func(b int) float64 { return 50 / float64(b) }), // best TV and best AUC
		constLoss(20), constLoss(30), constLoss(40), constLoss(50), constLoss(60),
	}
	for _, j := range jobs {
		j.Advance(5)
	}
	next := Promote(jobs, []int{0, 1, 2, 3, 4, 5}, Config{KFrac: 0.5, PFrac: 0.34, BMax: 10})
	seen := map[int]bool{}
	for _, i := range next {
		if seen[i] {
			t.Fatalf("candidate %d promoted twice: %v", i, next)
		}
		seen[i] = true
	}
	if len(next) != 3 {
		t.Errorf("survivors = %v, want k=3", next)
	}
}

func TestClockChargesParallelMakespan(t *testing.T) {
	var clk simclock.Clock
	jobs := make([]mapsearch.Searcher, 4)
	for i := range jobs {
		jobs[i] = constLoss(float64(i + 1))
	}
	Run(context.Background(), jobs, Config{BMax: 16, Workers: 4, EvalCostSeconds: 1, Clock: &clk})
	seq := 0
	for _, j := range jobs {
		seq += j.Spent()
	}
	if clk.Seconds() <= 0 {
		t.Fatal("clock not charged")
	}
	if clk.Seconds() >= float64(seq) {
		t.Errorf("parallel makespan %v >= sequential cost %v", clk.Seconds(), float64(seq))
	}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	c := Config{}.normalize()
	if c.Eta != 2 || c.KFrac != 0.5 || c.BMax != 1 || c.Workers != 1 {
		t.Errorf("normalize() = %+v", c)
	}
	if got := (Config{PFrac: 0.9, KFrac: 0.5}).normalize(); got.PFrac > got.KFrac {
		t.Errorf("PFrac not clamped to KFrac: %+v", got)
	}
	if (Config{}).String() == "" {
		t.Error("empty String()")
	}
}

// deadSearcher models a job whose worker vanished: Advance is a no-op and
// Spent stays 0, exactly like a dist dead job or a remote job with a latched
// transport error.
type deadSearcher struct{}

func (deadSearcher) Advance(int)               {}
func (deadSearcher) History() ppa.History      { return nil }
func (deadSearcher) RawHistory() ppa.History   { return nil }
func (deadSearcher) Spent() int                { return 0 }
func (deadSearcher) Best() (ppa.Metrics, bool) { return ppa.Metrics{}, false }

// TestRunCountsActualEvalsNotPlannedBudget pins the accounting fix: a dead
// job that never advances must not inflate TotalEvals (or the simulated
// clock) with the budget it was merely asked to spend.
func TestRunCountsActualEvalsNotPlannedBudget(t *testing.T) {
	jobs := []mapsearch.Searcher{constLoss(1), constLoss(2), constLoss(3), deadSearcher{}}
	var clk simclock.Clock
	out := Run(context.Background(), jobs, Config{Eta: 2, KFrac: 0.5, PFrac: 0, BMax: 8, Workers: 2,
		EvalCostSeconds: 1, Clock: &clk})

	actual := 0
	for _, j := range jobs {
		actual += j.Spent()
	}
	if out.TotalEvals != actual {
		t.Errorf("TotalEvals = %d, want the %d evaluations actually performed",
			out.TotalEvals, actual)
	}
	if clk.Seconds() <= 0 {
		t.Error("live candidates advanced but the clock did not")
	}
}
