// Package sh implements successive halving for software-mapping search
// scheduling: the default SH of Jamieson & Talwalkar [29] and the paper's
// modified successive halving (MSH, Section 3.3 and Fig. 4), which promotes
// candidates by terminal value (TV) and by the area under the convergence
// curve (AUC), giving steeply-converging hardware a second chance.
//
// Setting PFrac = 0 makes MSH degenerate to the default SH exactly, the
// property paper Section 3.3 states and the tests verify.
//
// # Pool determinism
//
// Within a rung, alive candidates advance concurrently on the parpool
// worker pool (bounded by Config.Workers). Each candidate's searcher is
// touched by exactly one pool task and owns its own RNG stream, so a rung's
// outcome — every history, every promotion decision — is bit-identical for
// every worker count, including Workers=1 which runs inline with no pool at
// all. Workers trades wall-clock time only; see parpool's package doc for
// the contract the advance loop relies on.
package sh

import (
	"context"
	"fmt"
	"math"
	"sort"

	"unico/internal/mapsearch"
	"unico/internal/parpool"
	"unico/internal/perfprof"
	"unico/internal/ppa"
	"unico/internal/simclock"
	"unico/internal/telemetry"
)

// Config parameterizes a successive-halving run.
type Config struct {
	// Eta is the halving rate (paper and defaults: 2).
	Eta float64
	// KFrac is the fraction of the current candidates surviving each round
	// (paper: k = ⌊0.5·N⌋).
	KFrac float64
	// PFrac is the fraction of the current candidates promoted by AUC
	// (paper: p = ⌊0.15·N⌋; 0 recovers default SH).
	PFrac float64
	// BMax is the maximum per-candidate software-mapping budget b_max.
	BMax int
	// Workers bounds the parallel Advance calls within a round (the
	// per-round job parallelism of paper Fig. 6a).
	Workers int
	// EvalCostSeconds is the simulated cost of one mapping evaluation,
	// charged to Clock per the parallel makespan.
	EvalCostSeconds float64
	// Clock, if non-nil, accrues the simulated wall-clock cost.
	Clock *simclock.Clock
	// Tracer, if non-nil, records one span per rung and per advanced
	// candidate (nil = off; tracing never affects scheduling decisions).
	Tracer *telemetry.Tracer
}

// Default returns the paper's MSH configuration.
func Default(bmax int) Config {
	return Config{Eta: 2, KFrac: 0.5, PFrac: 0.15, BMax: bmax, Workers: 8}
}

// normalize fills zero fields with defaults and validates.
func (c Config) normalize() Config {
	if c.Eta < 1.5 {
		c.Eta = 2
	}
	if c.KFrac <= 0 || c.KFrac >= 1 {
		c.KFrac = 0.5
	}
	if c.PFrac < 0 {
		c.PFrac = 0
	}
	if c.PFrac > c.KFrac {
		c.PFrac = c.KFrac
	}
	if c.BMax < 1 {
		c.BMax = 1
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	return c
}

// Outcome reports a finished run.
type Outcome struct {
	// Histories holds each candidate's final search history, indexed as the
	// input jobs (eliminated candidates keep their truncated histories).
	Histories []ppa.History
	// Survivors lists the candidate indices alive after the last round.
	Survivors []int
	// TotalEvals is the number of mapping evaluations spent across all
	// candidates.
	TotalEvals int
	// Rounds is the number of successive-halving rounds executed.
	Rounds int
	// RungAlive is the survivor curve: the candidate count entering the
	// schedule, then the count alive after each promotion — e.g. 30 → 15 → 8.
	RungAlive []int
}

// Run schedules the software-mapping searches of a batch of hardware
// candidates with (modified) successive halving. Every job must be fresh
// (zero budget spent). Canceling ctx stops the schedule between (and, for
// cancelable jobs, within) rounds; the outcome then reflects the budget
// actually spent, so callers can checkpoint or discard the partial batch.
func Run(ctx context.Context, jobs []mapsearch.Searcher, cfg Config) Outcome {
	cfg = cfg.normalize()
	n := len(jobs)
	if n == 0 {
		return Outcome{}
	}
	// Budget ladder: the final round reaches BMax per survivor; earlier
	// rounds receive geometrically smaller cumulative budgets
	// (b_r = BMax·η^(r-s), Algorithm 1 lines 2 and 6).
	rounds := int(math.Ceil(math.Log(float64(n)) / math.Log(cfg.Eta)))
	if rounds < 1 {
		rounds = 1
	}
	cumBudget := make([]int, rounds)
	for r := 0; r < rounds; r++ {
		b := float64(cfg.BMax) * math.Pow(cfg.Eta, float64(r+1-rounds))
		cumBudget[r] = int(math.Max(1, math.Floor(b)))
	}

	alive := make([]int, n)
	for i := range alive {
		alive[i] = i
	}
	totalEvals := 0
	rungAlive := []int{n}
	for r := 0; r < rounds; r++ {
		if ctx.Err() != nil {
			break
		}
		target := cumBudget[r]
		simStart := simNow(cfg.Clock)
		rctx, rungSpan := perfprof.StartClocked(ctx, "sh.rung", cfg.Clock)
		// Advance all alive candidates to the round's cumulative budget on
		// the bounded worker pool; charge the makespan to the simulated
		// clock. Each worker touches only its own candidate's searcher, so
		// results are independent of the worker count and schedule.
		advanced := make([]int, 0, len(alive))
		deltas := make([]int, 0, len(alive))
		preSpent := make(map[int]int, len(alive))
		for _, ji := range alive {
			d := target - jobs[ji].Spent()
			if d <= 0 {
				continue
			}
			preSpent[ji] = jobs[ji].Spent()
			advanced = append(advanced, ji)
			deltas = append(deltas, d)
		}
		parpool.ForEach(cfg.Workers, len(advanced), func(i int) {
			mapsearch.AdvanceSearcher(rctx, jobs[advanced[i]], deltas[i])
		})
		// Count what the jobs actually spent, not what was requested: a dead
		// remote job never advances, and charging its planned budget would
		// inflate TotalEvals and the simulated clock with phantom work.
		delta := 0
		for _, ji := range advanced {
			delta += jobs[ji].Spent() - preSpent[ji]
		}
		totalEvals += delta
		if cfg.Clock != nil && len(alive) > 0 && delta > 0 {
			// Makespan: candidates advance in parallel waves over Workers;
			// each costs its budget delta (averaged here) in eval time.
			perCand := float64(delta) / float64(len(alive)) * cfg.EvalCostSeconds
			cfg.Clock.AdvanceParallel(len(alive), perCand, cfg.Workers)
		}
		if cfg.Tracer != nil {
			simEnd := simNow(cfg.Clock)
			for _, ji := range advanced {
				cfg.Tracer.Complete("candidate_eval", "sh", int64(ji+1), simStart, simEnd,
					map[string]any{"candidate": ji, "spent": jobs[ji].Spent()})
			}
		}
		if r == rounds-1 {
			rungSpan.End()
			telemetry.SHRungs().Inc()
			telemetry.SHSurvivors().Set(float64(len(alive)))
			cfg.Tracer.Complete("sh_rung", "sh", 0, simStart, simNow(cfg.Clock), map[string]any{
				"rung": r + 1, "budget": target, "alive": len(alive), "evals": delta,
			})
			break
		}
		alive = Promote(jobs, alive, cfg)
		rungAlive = append(rungAlive, len(alive))
		rungSpan.End()
		telemetry.SHRungs().Inc()
		telemetry.SHSurvivors().Set(float64(len(alive)))
		cfg.Tracer.Complete("sh_rung", "sh", 0, simStart, simNow(cfg.Clock), map[string]any{
			"rung": r + 1, "budget": target, "alive": len(alive), "evals": delta,
		})
		if len(alive) <= 1 {
			// Run the lone survivor to full budget.
			fctx, fullSpan := perfprof.StartClocked(ctx, "sh.full_budget", cfg.Clock)
			last := rounds - 1
			for _, ji := range alive {
				d := cumBudget[last] - jobs[ji].Spent()
				if d > 0 {
					before := jobs[ji].Spent()
					mapsearch.AdvanceSearcher(fctx, jobs[ji], d)
					spent := jobs[ji].Spent() - before
					totalEvals += spent
					if cfg.Clock != nil && spent > 0 {
						cfg.Clock.Advance(float64(spent) * cfg.EvalCostSeconds)
					}
				}
			}
			fullSpan.End()
			break
		}
	}

	hist := make([]ppa.History, n)
	for i, j := range jobs {
		hist[i] = j.History()
	}
	return Outcome{Histories: hist, Survivors: alive, TotalEvals: totalEvals, Rounds: rounds, RungAlive: rungAlive}
}

// Promote selects the surviving candidate indices for the next round: the
// top (k-p) by terminal value, plus the top p by AUC not already selected
// (paper Section 3.3: Hᵏ = H_TV^(k-p) ∪ H_AUC^(p), disjoint).
func Promote(jobs []mapsearch.Searcher, alive []int, cfg Config) []int {
	cfg = cfg.normalize()
	nAlive := len(alive)
	k := int(cfg.KFrac * float64(nAlive))
	if k < 1 {
		k = 1
	}
	p := int(cfg.PFrac * float64(nAlive))
	if p > k {
		p = k
	}

	byTV := append([]int(nil), alive...)
	sort.SliceStable(byTV, func(a, b int) bool {
		return terminalValue(jobs[byTV[a]]) < terminalValue(jobs[byTV[b]])
	})
	byAUC := append([]int(nil), alive...)
	sort.SliceStable(byAUC, func(a, b int) bool {
		return auc(jobs[byAUC[a]]) > auc(jobs[byAUC[b]])
	})

	selected := make([]int, 0, k)
	inSet := map[int]bool{}
	for _, ji := range byTV {
		if len(selected) >= k-p {
			break
		}
		selected = append(selected, ji)
		inSet[ji] = true
	}
	for _, ji := range byAUC {
		if len(selected) >= k {
			break
		}
		if inSet[ji] {
			continue
		}
		selected = append(selected, ji)
		inSet[ji] = true
	}
	sort.Ints(selected)
	return selected
}

// terminalValue is the candidate's best loss so far.
func terminalValue(j mapsearch.Searcher) float64 {
	h := j.History()
	if len(h) == 0 {
		return math.Inf(1)
	}
	return h.Last().Loss
}

// auc is the candidate's convergence-rate score (Fig. 4b), computed on the
// feasible suffix of its history so infeasible warm-up plateaus do not
// inflate it.
func auc(j mapsearch.Searcher) float64 {
	return mapsearch.Feasible(j.History()).AUC()
}

// simNow reads the simulated clock (0 when no clock is attached).
func simNow(c *simclock.Clock) float64 {
	if c == nil {
		return 0
	}
	return c.Seconds()
}

func (c Config) String() string {
	return fmt.Sprintf("sh{eta=%.3g k=%.2f p=%.2f bmax=%d}", c.Eta, c.KFrac, c.PFrac, c.BMax)
}
