package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ringEntry is one virtual node: a point on the 64-bit ring owned by a
// member.
type ringEntry struct {
	point uint64
	m     *member
}

// ringPoints derives a shard's virtual-node coordinates: the first eight
// bytes (little-endian, matching evalcache.Key.Uint64) of
// sha256(id + "#" + replica). Purely a function of the shard ID, so every
// router instance and every restart agrees on the layout.
func ringPoints(id string, replicas int) []uint64 {
	pts := make([]uint64, replicas)
	for i := range pts {
		sum := sha256.Sum256([]byte(id + "#" + strconv.Itoa(i)))
		pts[i] = binary.LittleEndian.Uint64(sum[:8])
	}
	return pts
}

// rebuildRingLocked reassembles the ring from the currently active
// members. Callers must hold r.mu. Ties on a point (astronomically
// unlikely) break by member ID so the layout stays deterministic.
func (r *Router) rebuildRingLocked() {
	r.ring = r.ring[:0]
	for _, m := range r.members {
		if m.state != shardActive {
			continue
		}
		for _, p := range m.points {
			r.ring = append(r.ring, ringEntry{point: p, m: m})
		}
	}
	sort.Slice(r.ring, func(i, j int) bool {
		if r.ring[i].point != r.ring[j].point {
			return r.ring[i].point < r.ring[j].point
		}
		return r.ring[i].m.id < r.ring[j].m.id
	})
}

// successors returns the distinct active members that own key h, nearest
// first: the owner, then each fallback met walking clockwise around the
// ring. Deterministic for a fixed membership — two routers (or one router
// before and after a shard bounce) route the same key the same way.
func (r *Router) successors(h uint64) []*member {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) == 0 {
		return nil
	}
	start := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].point >= h })
	seen := make(map[*member]bool, len(r.members))
	var out []*member
	for i := 0; i < len(r.ring) && len(seen) < len(r.members); i++ {
		e := r.ring[(start+i)%len(r.ring)]
		if !seen[e.m] {
			seen[e.m] = true
			out = append(out, e.m)
		}
	}
	return out
}

// hashBytes maps an arbitrary payload onto the ring, for requests that
// have no canonical evaluation key.
func hashBytes(b []byte) uint64 {
	sum := sha256.Sum256(b)
	return binary.LittleEndian.Uint64(sum[:8])
}
