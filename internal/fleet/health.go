package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"unico/internal/dist"
	"unico/internal/telemetry"
)

// Start runs the background health prober until ctx ends: every
// ProbeInterval it probes each shard's /v1/healthz and applies the
// membership state machine. Tests that need deterministic membership call
// ProbeAll directly instead.
func (r *Router) Start(ctx context.Context) {
	go func() {
		//unicolint:allow detclock the health-probe cadence tracks real shard processes, not simulated time
		t := time.NewTicker(r.opts.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				r.ProbeAll(ctx)
			}
		}
	}()
}

// ProbeAll health-probes every shard once, synchronously, and applies the
// results: "ok" re-activates, "draining" drains, and FailAfter consecutive
// probe failures mark a shard down.
func (r *Router) ProbeAll(ctx context.Context) {
	r.mu.Lock()
	members := make([]*member, len(r.members))
	copy(members, r.members)
	r.mu.Unlock()
	for _, m := range members {
		h, err := r.probeOne(ctx, m)
		switch {
		case err != nil:
			r.noteFailure(m)
		case h.Status == dist.StatusDraining:
			r.setState(m, shardDraining)
		default:
			r.noteSuccess(m)
			r.setState(m, shardActive)
		}
		// Record after the state machine has applied the result, so the
		// timeline shows the state each probe left the shard in.
		r.recordProbe(m, err == nil)
	}
}

// probeOne fetches one shard's health, observing the round trip in
// unico_fleet_health_probe_seconds.
func (r *Router) probeOne(ctx context.Context, m *member) (dist.HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.id+"/v1/healthz", nil)
	if err != nil {
		return dist.HealthResponse{}, err
	}
	//unicolint:allow detclock probe latency is measured against the real clock by definition
	start := time.Now()
	resp, err := r.probe.Do(req)
	//unicolint:allow detclock probe latency is measured against the real clock by definition
	telemetry.FleetProbeSeconds().Observe(time.Since(start).Seconds())
	if err != nil {
		return dist.HealthResponse{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return dist.HealthResponse{}, err
	}
	var h dist.HealthResponse
	if resp.StatusCode != http.StatusOK {
		return h, &probeError{status: resp.Status}
	}
	if err := json.Unmarshal(body, &h); err != nil {
		return dist.HealthResponse{}, err
	}
	return h, nil
}

// probeError reports a non-200 health answer.
type probeError struct{ status string }

func (e *probeError) Error() string { return "fleet: health probe answered " + e.status }
