package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"

	"unico/internal/disttrace"
	"unico/internal/telemetry"
)

// handleSpans serves GET /v1/spans?run=<id>: the router's own span events
// merged with every member's /v1/spans pull, as one JSONL stream — the
// online collector path (the offline one is `unicotrace file...`). Members
// that fail to answer are skipped (their spans surface as incomplete
// chains, which is the honest signal); members without tracing return
// empty bodies. Each merge also counts orphan spans in the combined view
// into unico_trace_orphans_total.
func (r *Router) handleSpans(w http.ResponseWriter, req *http.Request) {
	run := req.URL.Query().Get("run")
	if run == "" {
		http.Error(w, "fleet: missing run parameter", http.StatusBadRequest)
		return
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range disttrace.Active().Events(run) {
		if err := enc.Encode(ev); err != nil {
			break
		}
	}
	ids := r.memberIDs()
	for _, id := range ids {
		r.pullSpans(req, &buf, id, run)
	}
	events, _, err := disttrace.ParseEvents(bytes.NewReader(buf.Bytes()))
	if err == nil {
		for _, t := range disttrace.BuildTraces(events) {
			for range t.Orphans {
				telemetry.TraceOrphans().Inc()
			}
		}
	}
	w.Header().Set("Content-Type", "application/jsonl")
	_, _ = w.Write(buf.Bytes())
}

// memberIDs snapshots member IDs in config order under the router lock.
func (r *Router) memberIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.members))
	for _, m := range r.members {
		ids = append(ids, m.id)
	}
	return ids
}

// pullSpans appends one member's span events for run to buf; best effort.
func (r *Router) pullSpans(req *http.Request, buf *bytes.Buffer, id, run string) {
	preq, err := http.NewRequestWithContext(req.Context(), http.MethodGet,
		id+"/v1/spans?run="+run, nil)
	if err != nil {
		return
	}
	resp, err := r.probe.Do(preq)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return
	}
	buf.Write(body)
	if len(body) > 0 && body[len(body)-1] != '\n' {
		buf.WriteByte('\n')
	}
}
