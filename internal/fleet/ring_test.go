package fleet

import (
	"context"
	"testing"
	"time"
)

func testShardIDs() []string {
	return []string{"http://s1:9301", "http://s2:9301", "http://s3:9301"}
}

func testKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = hashBytes([]byte{byte(i), byte(i >> 8), 0xa5})
	}
	return keys
}

// TestRingDeterministic: two routers over the same shard list route every
// key identically — routing state is pure configuration, shared by nothing.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRouter(testShardIDs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRouter(testShardIDs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(256) {
		sa, sb := a.successors(k), b.successors(k)
		if len(sa) != 3 || len(sb) != 3 {
			t.Fatalf("key %d: successor counts %d, %d; want 3 distinct members each", k, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i].id != sb[i].id {
				t.Fatalf("key %d: routers disagree: %s vs %s at position %d", k, sa[i].id, sb[i].id, i)
			}
		}
	}
}

// TestRingMinimalDisruption: taking one shard down moves only the keys it
// owned — every key owned by a surviving shard keeps its owner, and each
// orphaned key lands on its precomputed next successor. That is what makes
// failover deterministic and cache-friendly.
func TestRingMinimalDisruption(t *testing.T) {
	r, err := NewRouter(testShardIDs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(512)
	before := make(map[uint64][]*member, len(keys))
	for _, k := range keys {
		before[k] = r.successors(k)
	}
	victim := r.members[1]
	r.setState(victim, shardDown)
	moved := 0
	for _, k := range keys {
		owner := r.successors(k)[0]
		prev := before[k]
		if prev[0] != victim {
			if owner != prev[0] {
				t.Fatalf("key %d moved from %s to %s although its owner never failed", k, prev[0].id, owner.id)
			}
			continue
		}
		moved++
		if owner != prev[1] {
			t.Fatalf("orphaned key %d landed on %s, want precomputed successor %s", k, owner.id, prev[1].id)
		}
	}
	if moved == 0 {
		t.Fatal("victim owned no keys out of 512; ring is not spreading load")
	}

	// Recovery restores the exact original layout.
	r.setState(victim, shardActive)
	for _, k := range keys {
		if got := r.successors(k)[0]; got != before[k][0] {
			t.Fatalf("key %d owned by %s after recovery, want %s", k, got.id, before[k][0].id)
		}
	}
}

// TestAdmissionFairQueue: waiters drain round-robin across run IDs, not in
// global FIFO order, so a client that queued five requests cannot make a
// one-request client wait behind all five.
func TestAdmissionFairQueue(t *testing.T) {
	a := newAdmission("test-fair", 1, 8)
	if err := a.acquire(context.Background(), "hog"); err != nil {
		t.Fatal(err)
	}

	admitted := make(chan string, 4)
	// Deterministic arrival order: hog, hog, hog, then the small client.
	depthWant := 1
	for _, run := range []string{"hog", "hog", "hog", "small"} {
		depthWant++
		enqueueOrdered(t, a, run, depthWant, admitted)
	}

	a.release() // free the slot held by the setup acquire
	got := []string{<-admitted, <-admitted, <-admitted, <-admitted}
	want := []string{"hog", "small", "hog", "hog"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("admission order %v, want %v (round-robin across runs)", got, want)
		}
	}
}

// enqueueOrdered queues one acquire for run and waits until the admission
// gate's depth shows it, so arrival order is deterministic.
func enqueueOrdered(t *testing.T, a *admission, run string, depthWant int, admitted chan string) {
	t.Helper()
	go func() {
		if err := a.acquire(context.Background(), run); err != nil {
			t.Error(err)
			return
		}
		admitted <- run
		a.release()
	}()
	waitUntil(t, func() bool { return a.depth() >= depthWant })
}

// TestAdmissionShedsAndCancelReleases: the queue bound sheds instead of
// growing, and a cancelled waiter frees its queue slot instead of leaking it.
func TestAdmissionShedsAndCancelReleases(t *testing.T) {
	a := newAdmission("test-shed", 1, 1)
	if err := a.acquire(context.Background(), "r1"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- a.acquire(ctx, "r2") }()
	waitUntil(t, func() bool { return a.depth() == 2 })

	// Queue full: the next acquire sheds immediately.
	if err := a.acquire(context.Background(), "r3"); err != errShed {
		t.Fatalf("acquire on full queue = %v, want errShed", err)
	}

	// Cancelling the queued waiter frees its slot...
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	waitUntil(t, func() bool { return a.depth() == 1 })

	// ...so a new request queues (does not shed) and is admitted on release.
	done := make(chan error, 1)
	go func() { done <- a.acquire(context.Background(), "r4") }()
	waitUntil(t, func() bool { return a.depth() == 2 })
	a.release()
	if err := <-done; err != nil {
		t.Fatalf("acquire after cancel+release = %v", err)
	}
	a.release()
	if d := a.depth(); d != 0 {
		t.Errorf("final depth %d, want 0 (leaked slots)", d)
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 30s")
		}
		time.Sleep(time.Millisecond)
	}
}
