package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"unico/internal/dist"
	"unico/internal/disttrace"
	"unico/internal/runid"
	"unico/internal/telemetry"
)

// maxBodyBytes bounds request bodies the router will buffer; far above any
// legitimate PPA request or job spec.
const maxBodyBytes = 4 << 20

// jobRecord is the router's view of one mapping-search job: everything
// needed to re-create it from scratch on another shard.
type jobRecord struct {
	mu       sync.Mutex
	spec     []byte  // canonical JSON of the JobSpec, for replay
	point    uint64  // ring coordinate
	shard    *member // current owner
	remoteID string  // job ID on the owner
	spent    int     // cumulative budget confirmed spent
}

// Handler returns the router's HTTP API: the full internal/dist worker
// surface (/v1/ppa, /v1/jobs, /v1/jobs/advance, DELETE /v1/jobs/{id},
// /v1/healthz) plus the fleet admin endpoints /v1/fleet/members and
// /v1/fleet/{drain,undrain}?shard=<id>.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ppa", r.handlePPA)
	mux.HandleFunc("POST /v1/jobs", r.handleCreateJob)
	mux.HandleFunc("POST /v1/jobs/advance", r.handleAdvance)
	mux.HandleFunc("DELETE /v1/jobs/{id}", r.handleDeleteJob)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.health())
	})
	mux.HandleFunc("GET /v1/fleet/members", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Members())
	})
	mux.HandleFunc("POST /v1/fleet/drain", func(w http.ResponseWriter, req *http.Request) {
		r.handleDrain(w, req, true)
	})
	mux.HandleFunc("POST /v1/fleet/undrain", func(w http.ResponseWriter, req *http.Request) {
		r.handleDrain(w, req, false)
	})
	mux.HandleFunc("GET /v1/spans", r.handleSpans)
	return telemetry.InstrumentHandler(telemetry.DefaultRegistry, fleetRouteLabel, mux)
}

// fleetRouteLabel keeps the router's route label set bounded.
func fleetRouteLabel(req *http.Request) string {
	if p, ok := strings.CutPrefix(req.URL.Path, "/v1/jobs/"); ok && p != "" && p != "advance" {
		return "/v1/jobs/{id}"
	}
	switch req.URL.Path {
	case "/v1/ppa", "/v1/jobs", "/v1/jobs/advance", "/v1/healthz", "/v1/spans",
		"/v1/fleet/members", "/v1/fleet/drain", "/v1/fleet/undrain":
		return req.URL.Path
	}
	return "other"
}

// health summarizes the fleet as one worker-compatible health body: "ok"
// while any shard is active, "draining" otherwise.
func (r *Router) health() dist.HealthResponse {
	status := dist.StatusDraining
	jobs := 0
	for _, m := range r.Members() {
		if m.State == "active" {
			status = dist.StatusOK
		}
		jobs += m.Jobs
	}
	return dist.HealthResponse{Status: status, Jobs: jobs}
}

// shed rejects a request the fleet will not take now, with the status,
// a Retry-After hint, and the reason recorded in unico_fleet_shed_total.
func (r *Router) shed(w http.ResponseWriter, status int, reason string) {
	telemetry.FleetShed(reason).Inc()
	secs := int((r.opts.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, status, map[string]string{"error": "fleet overloaded: " + reason})
}

// shedEmptyRing rejects a request when no shard is active: "draining" when
// the emptiness is operator-induced, "unhealthy" when shards are dead.
func (r *Router) shedEmptyRing(w http.ResponseWriter) {
	if r.anyDraining() {
		r.shed(w, http.StatusServiceUnavailable, "draining")
		return
	}
	r.shed(w, http.StatusServiceUnavailable, "unhealthy")
}

// handlePPA admission-controls and forwards one PPA evaluation to the
// shard owning its canonical key, failing over along the ring when the
// owner misbehaves.
func (r *Router) handlePPA(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, dist.PPAResponse{Error: "read request: " + err.Error()})
		return
	}
	var preq dist.PPARequest
	if err := json.Unmarshal(body, &preq); err != nil {
		writeJSON(w, http.StatusBadRequest, dist.PPAResponse{Error: "decode request: " + err.Error()})
		return
	}
	var point uint64
	if key, _, ok := dist.CanonicalEvalKey(&preq); ok {
		point = key.Uint64()
	} else {
		// Malformed requests have no canonical key; route by raw bytes so
		// the owning shard reports the error.
		point = hashBytes(body)
	}
	succ := r.successors(point)
	if len(succ) == 0 {
		r.shedEmptyRing(w)
		return
	}
	run := req.Header.Get(runid.Header)
	parent := disttrace.Extract(req.Header)
	for _, m := range succ {
		// Queue wait is its own span so the waterfall separates admission
		// time from the forward round trip.
		q := disttrace.StartSpan(run, parent, "queue", m.id)
		if err := m.adm.acquire(req.Context(), run); err != nil {
			if errors.Is(err, errShed) {
				q.End("shed", nil)
				// Queue-full on the owner is overload, not failure: shed
				// rather than spill onto other shards (which would wreck
				// their cache locality and hide the overload).
				r.shed(w, http.StatusTooManyRequests, "queue-full")
			} else {
				q.End("canceled", nil)
			}
			return
		}
		q.End("ok", nil)
		status, rbody, err := r.forwardTo(req.Context(), m, "/v1/ppa", body, run, parent)
		m.adm.release()
		if err == nil && status < http.StatusInternalServerError {
			r.noteSuccess(m)
			relay(w, status, rbody)
			return
		}
		r.noteFailure(m)
		if req.Context().Err() != nil {
			return
		}
	}
	r.shed(w, http.StatusServiceUnavailable, "unhealthy")
}

// handleCreateJob places a new mapping-search job on the shard owning its
// spec's ring coordinate and records enough to replay it elsewhere later.
func (r *Router) handleCreateJob(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, dist.JobCreateResponse{Error: "read request: " + err.Error()})
		return
	}
	var spec dist.JobSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		writeJSON(w, http.StatusBadRequest, dist.JobCreateResponse{Error: "decode request: " + err.Error()})
		return
	}
	// Re-marshal so the ring coordinate depends on the canonical field
	// order, not the client's whitespace or key ordering.
	canon, err := json.Marshal(spec)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, dist.JobCreateResponse{Error: "encode spec: " + err.Error()})
		return
	}
	point := hashBytes(canon)
	succ := r.successors(point)
	if len(succ) == 0 {
		r.shedEmptyRing(w)
		return
	}
	run := req.Header.Get(runid.Header)
	parent := disttrace.Extract(req.Header)
	for _, m := range succ {
		status, rbody, err := r.forwardTo(req.Context(), m, "/v1/jobs", canon, run, parent)
		if err != nil || status >= http.StatusInternalServerError {
			r.noteFailure(m)
			if req.Context().Err() != nil {
				return
			}
			continue
		}
		r.noteSuccess(m)
		if status != http.StatusOK {
			relay(w, status, rbody) // deterministic spec rejection
			return
		}
		var cresp dist.JobCreateResponse
		if err := json.Unmarshal(rbody, &cresp); err != nil || cresp.ID == "" {
			r.noteFailure(m)
			continue
		}
		r.mu.Lock()
		r.nextJob++
		id := "fj-" + strconv.Itoa(r.nextJob)
		r.jobs[id] = &jobRecord{spec: canon, point: point, shard: m, remoteID: cresp.ID}
		r.mu.Unlock()
		writeJSON(w, http.StatusOK, dist.JobCreateResponse{ID: id})
		return
	}
	r.shed(w, http.StatusServiceUnavailable, "unhealthy")
}

// handleAdvance forwards a budget installment to the job's owner; if the
// owner is gone (dead, restarted without state, or marked down) the job is
// replayed deterministically on the next shard along the ring.
func (r *Router) handleAdvance(w http.ResponseWriter, req *http.Request) {
	var areq dist.AdvanceRequest
	if err := json.NewDecoder(io.LimitReader(req.Body, maxBodyBytes)).Decode(&areq); err != nil {
		writeJSON(w, http.StatusBadRequest, dist.JobState{Error: "decode request: " + err.Error()})
		return
	}
	r.mu.Lock()
	rec := r.jobs[areq.ID]
	r.mu.Unlock()
	if rec == nil {
		writeJSON(w, http.StatusNotFound, dist.JobState{ID: areq.ID, Error: "unknown job " + areq.ID})
		return
	}
	run := req.Header.Get(runid.Header)
	parent := disttrace.Extract(req.Header)
	// One installment at a time per job: advances on the same job are
	// serialized so replay sees a consistent spent count.
	rec.mu.Lock()
	defer rec.mu.Unlock()

	// First try the current owner. A draining owner still serves the jobs
	// it holds — that is the whole point of draining.
	if owner := rec.shard; owner != nil && r.stateOf(owner) != shardDown {
		state, ok := r.advanceOn(req.Context(), owner, rec.remoteID, areq.Budget, run, parent)
		if ok {
			r.noteSuccess(owner)
			if state.Error == "" {
				rec.spent = state.Spent
			}
			state.ID = areq.ID
			writeJSON(w, http.StatusOK, state)
			return
		}
		r.noteFailure(owner)
		if req.Context().Err() != nil {
			return
		}
	}

	// Owner lost: replay spec + cumulative budget on the ring successors.
	// The search is a pure function of both, so the state that comes back
	// is bit-identical to what the dead owner would have produced.
	for _, m := range r.successors(rec.point) {
		if m == rec.shard {
			continue // just failed above
		}
		state, ok := r.replayOn(req.Context(), m, rec, areq.Budget, run, parent)
		if ok {
			r.noteSuccess(m)
			state.ID = areq.ID
			writeJSON(w, http.StatusOK, state)
			return
		}
		r.noteFailure(m)
		if req.Context().Err() != nil {
			return
		}
	}
	r.shed(w, http.StatusServiceUnavailable, "unhealthy")
}

// stateOf reads a member's state under the router lock.
func (r *Router) stateOf(m *member) shardState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return m.state
}

// advanceOn spends budget on an existing remote job. ok is false when the
// shard failed in a way that warrants replay elsewhere (transport error,
// 5xx, or the shard no longer knows the job).
func (r *Router) advanceOn(ctx context.Context, m *member, remoteID string, budget int, run string, parent disttrace.SpanContext) (dist.JobState, bool) {
	body, _ := json.Marshal(dist.AdvanceRequest{ID: remoteID, Budget: budget})
	status, rbody, err := r.forwardTo(ctx, m, "/v1/jobs/advance", body, run, parent)
	if err != nil || status >= http.StatusInternalServerError || status == http.StatusNotFound {
		return dist.JobState{}, false
	}
	var state dist.JobState
	if err := json.Unmarshal(rbody, &state); err != nil {
		return dist.JobState{}, false
	}
	return state, true
}

// replayOn re-creates rec's job on shard m and advances it by the job's
// confirmed spent budget plus the new installment in one call. On success
// the record's ownership moves to m. When tracing is on, the whole replay —
// job re-creation, cumulative re-advance, and any cleanup — nests under one
// "replay" span, so a waterfall shows exactly what shard loss cost.
func (r *Router) replayOn(ctx context.Context, m *member, rec *jobRecord, budget int, run string, parent disttrace.SpanContext) (dist.JobState, bool) {
	rp := disttrace.StartSpan(run, parent, "replay", m.id)
	if sc := rp.Context(); sc.Valid() {
		parent = sc
	}
	status, rbody, err := r.forwardTo(ctx, m, "/v1/jobs", rec.spec, run, parent)
	if err != nil || status != http.StatusOK {
		rp.End("error", nil)
		return dist.JobState{}, false
	}
	var cresp dist.JobCreateResponse
	if err := json.Unmarshal(rbody, &cresp); err != nil || cresp.ID == "" {
		rp.End("error", nil)
		return dist.JobState{}, false
	}
	state, ok := r.advanceOn(ctx, m, cresp.ID, rec.spent+budget, run, parent)
	if !ok {
		// Best effort: don't leak the half-made job on m.
		r.deleteOn(ctx, m, cresp.ID, run, parent)
		rp.End("error", nil)
		return dist.JobState{}, false
	}
	rec.shard = m
	rec.remoteID = cresp.ID
	if state.Error == "" {
		rec.spent = state.Spent
	}
	telemetry.FleetReplays().Inc()
	rp.End("ok", map[string]string{"spent": strconv.Itoa(rec.spent)})
	return state, true
}

// handleDeleteJob removes a job from its owner and the router's table.
func (r *Router) handleDeleteJob(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	r.mu.Lock()
	rec := r.jobs[id]
	delete(r.jobs, id)
	r.mu.Unlock()
	if rec == nil {
		writeJSON(w, http.StatusNotFound, dist.JobDeleteResponse{ID: id, Error: "unknown job " + id})
		return
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	run := req.Header.Get(runid.Header)
	if rec.shard != nil && r.stateOf(rec.shard) != shardDown {
		r.deleteOn(req.Context(), rec.shard, rec.remoteID, run, disttrace.Extract(req.Header))
	}
	writeJSON(w, http.StatusOK, dist.JobDeleteResponse{ID: id, Deleted: true})
}

// deleteOn best-effort deletes a remote job.
func (r *Router) deleteOn(ctx context.Context, m *member, remoteID, run string, parent disttrace.SpanContext) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, m.id+"/v1/jobs/"+remoteID, nil)
	if err != nil {
		return
	}
	if run != "" {
		req.Header.Set(runid.Header, run)
	}
	fwd := disttrace.StartSpan(run, parent, "forward", "/v1/jobs/{id}")
	injectForward(req.Header, fwd, parent)
	resp, err := r.forward.Do(req)
	if err != nil {
		fwd.End("error", nil)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fwd.End("ok", nil)
}

// handleDrain moves a shard in or out of the draining state and forwards
// the drain/undrain to the shard so it refuses work routed around the
// router too.
func (r *Router) handleDrain(w http.ResponseWriter, req *http.Request, drain bool) {
	id := req.URL.Query().Get("shard")
	m := r.memberByID(id)
	if m == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown shard %q", id)})
		return
	}
	if drain {
		r.setState(m, shardDraining)
	} else {
		r.setState(m, shardActive)
	}
	path := "/v1/undrain"
	if drain {
		path = "/v1/drain"
	}
	// Best effort: the router's own routing no longer sends the shard new
	// work either way.
	if _, _, err := r.forwardTo(req.Context(), m, path, []byte("{}"), req.Header.Get(runid.Header), disttrace.Extract(req.Header)); err == nil {
		r.noteSuccess(m)
	}
	writeJSON(w, http.StatusOK, r.Members())
}

// forwardTo POSTs body to one shard and returns the status and response
// body. The round trip is observed in unico_fleet_forward_seconds{shard}
// and, when tracing is on, recorded as a "forward" span whose context the
// shard parents onto; with router tracing off, the caller's context passes
// through untouched so the client→shard chain stays linked.
func (r *Router) forwardTo(ctx context.Context, m *member, path string, body []byte, run string, parent disttrace.SpanContext) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.id+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if run != "" {
		req.Header.Set(runid.Header, run)
	}
	fwd := disttrace.StartSpan(run, parent, "forward", path)
	injectForward(req.Header, fwd, parent)
	start := time.Now() //unicolint:allow detclock forward latency is measured against the real clock by definition
	resp, err := r.forward.Do(req)
	telemetry.FleetForwardSeconds(m.id).Observe(time.Since(start).Seconds()) //unicolint:allow detclock forward latency is measured against the real clock by definition
	if err != nil {
		fwd.End("error", nil)
		return 0, nil, err
	}
	defer resp.Body.Close()
	rbody, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		fwd.End("error", nil)
		return 0, nil, err
	}
	fwd.End("ok", map[string]string{"status": strconv.Itoa(resp.StatusCode)})
	return resp.StatusCode, rbody, nil
}

// injectForward propagates span context downstream: the router's own
// forward span when tracing is on here, otherwise the upstream caller's
// context unchanged — a tracing-disabled router must not break the chain.
func injectForward(h http.Header, fwd *disttrace.Span, parent disttrace.SpanContext) {
	if sc := fwd.Context(); sc.Valid() {
		disttrace.Inject(h, sc)
		return
	}
	disttrace.Inject(h, parent)
}

// relay writes a shard's response through unchanged.
func relay(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// writeJSON encodes v as the response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
