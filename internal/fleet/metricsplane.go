package fleet

import (
	"bytes"
	"fmt"
	"html"
	"io"
	"net/http"
	"strings"
)

// FleetMetricsHandler serves GET /metrics/fleet: every member's /metrics
// exposition scraped (with the probe client, so a dead shard costs one
// probe timeout, not a forward timeout), re-labeled with shard="<base-url>",
// and regrouped so each metric family appears once with all shards' series
// under it — the shape Prometheus requires. Members are scraped in
// configuration order, making the output deterministic for a static fleet.
// A synthetic unico_fleet_scrape_ok{shard} gauge reports per-member scrape
// success, so the aggregated view distinguishes "shard idle" from "shard
// unreachable".
func (r *Router) FleetMetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		agg := newFamilyAgg()
		var okLines []string
		for _, id := range r.memberIDs() {
			text, err := r.scrapeMember(req, id)
			up := 0
			if err == nil {
				agg.addExposition(text, id)
				up = 1
			}
			okLines = append(okLines, fmt.Sprintf("unico_fleet_scrape_ok{shard=%q} %d", id, up))
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		agg.write(w)
		fmt.Fprintf(w, "# HELP unico_fleet_scrape_ok Whether the last /metrics scrape of the shard succeeded.\n")
		fmt.Fprintf(w, "# TYPE unico_fleet_scrape_ok gauge\n")
		for _, l := range okLines {
			fmt.Fprintln(w, l)
		}
	})
}

// scrapeMember fetches one member's /metrics text.
func (r *Router) scrapeMember(req *http.Request, id string) (string, error) {
	preq, err := http.NewRequestWithContext(req.Context(), http.MethodGet, id+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := r.probe.Do(preq)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("fleet: scrape %s: %s", id, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// familyAgg regroups sample lines from several expositions by metric
// family, preserving first-seen family order and each family's HELP/TYPE.
type familyAgg struct {
	order []string
	help  map[string]string
	typ   map[string]string
	lines map[string][]string
}

func newFamilyAgg() *familyAgg {
	return &familyAgg{help: map[string]string{}, typ: map[string]string{}, lines: map[string][]string{}}
}

// addExposition parses one member's text exposition. Sample lines belong to
// the family announced by the preceding # TYPE line (our expositions always
// emit HELP/TYPE before samples — histogram _bucket/_sum/_count lines
// group under their family that way without suffix games).
func (a *familyAgg) addExposition(text, shard string) {
	current := ""
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			if name, help, found := strings.Cut(rest, " "); found {
				a.ensure(name)
				if a.help[name] == "" {
					a.help[name] = help
				}
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			if name, typ, found := strings.Cut(rest, " "); found {
				a.ensure(name)
				if a.typ[name] == "" {
					a.typ[name] = typ
				}
				current = name
			}
			continue
		}
		if strings.HasPrefix(line, "#") || current == "" {
			continue
		}
		a.lines[current] = append(a.lines[current], relabel(line, shard))
	}
}

func (a *familyAgg) ensure(name string) {
	if _, ok := a.help[name]; ok {
		return
	}
	if _, ok := a.typ[name]; ok {
		return
	}
	if _, ok := a.lines[name]; ok {
		return
	}
	a.order = append(a.order, name)
	a.help[name] = ""
	a.typ[name] = ""
}

func (a *familyAgg) write(w io.Writer) {
	for _, name := range a.order {
		if len(a.lines[name]) == 0 {
			continue
		}
		if h := a.help[name]; h != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, h)
		}
		if t := a.typ[name]; t != "" {
			fmt.Fprintf(w, "# TYPE %s %s\n", name, t)
		}
		for _, l := range a.lines[name] {
			fmt.Fprintln(w, l)
		}
	}
}

// relabel injects shard="<id>" into one sample line, either into the
// existing label braces or as a fresh label set before the value.
func relabel(line, shard string) string {
	label := fmt.Sprintf("shard=%q", shard)
	if i := strings.IndexByte(line, '{'); i >= 0 {
		if j := strings.IndexByte(line, ' '); j < 0 || i < j {
			sep := ","
			if strings.HasPrefix(line[i+1:], "}") {
				sep = ""
			}
			return line[:i+1] + label + sep + line[i+1:]
		}
	}
	if j := strings.IndexByte(line, ' '); j > 0 {
		return line[:j] + "{" + label + "}" + line[j:]
	}
	return line
}

// DebugHandler serves GET /debug/unico/fleet: per-shard status and health
// timelines as HTML (or JSON with ?format=json), plus a link to the
// aggregated /metrics/fleet view.
func (r *Router) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		tls := r.Timelines()
		if req.URL.Query().Get("format") == "json" {
			writeJSON(w, http.StatusOK, tls)
			return
		}
		var b bytes.Buffer
		b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8"><title>unico fleet</title>
<style>
body { font: 13px/1.5 system-ui, sans-serif; margin: 1.5em; }
table { border-collapse: collapse; } td, th { border: 1px solid #ccd; padding: .2em .6em; }
.tl { display: inline-block; vertical-align: middle; }
.tl span { display: inline-block; width: 5px; height: 14px; margin-right: 1px; }
.ok { background: #16a34a; } .fail { background: #dc2626; }
.state-active { color: #16a34a; } .state-draining { color: #f59e0b; } .state-down { color: #dc2626; }
</style></head><body><h1>Fleet health</h1>
<p><a href="/metrics/fleet">aggregated /metrics/fleet</a></p>
<table><tr><th>shard</th><th>state</th><th>probe timeline (old → new)</th></tr>
`)
		for _, tl := range tls {
			fmt.Fprintf(&b, `<tr><td>%s</td><td class="state-%s">%s</td><td><span class="tl">`,
				html.EscapeString(tl.ID), html.EscapeString(tl.State), html.EscapeString(tl.State))
			for _, ev := range tl.Events {
				cls := "fail"
				if ev.OK {
					cls = "ok"
				}
				fmt.Fprintf(&b, `<span class="%s" title="%s"></span>`, cls, html.EscapeString(ev.State))
			}
			b.WriteString("</span></td></tr>\n")
		}
		b.WriteString("</table></body></html>\n")
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write(b.Bytes())
	})
}
