package fleet

import (
	"context"
	"errors"
	"sync"

	"unico/internal/telemetry"
)

// errShed reports that a shard's admission queue is full and the request
// must be rejected rather than queued.
var errShed = errors.New("fleet: admission queue full")

// waiter is one queued request, admitted by closing its channel.
type waiter struct {
	ch chan struct{}
}

// admission is one shard's overload gate: at most capacity concurrent
// forwards, at most queueMax waiting beyond that, and the waiters drained
// round-robin across run IDs so a single heavy run cannot monopolize the
// shard while others starve.
type admission struct {
	capacity int
	queueMax int
	depthG   *telemetry.Gauge

	mu       sync.Mutex
	inflight int
	queued   int
	byRun    map[string][]*waiter // FIFO per run ID
	order    []string             // runs with waiters, round-robin order
	next     int                  // cursor into order
}

func newAdmission(shard string, capacity, queueMax int) *admission {
	return &admission{
		capacity: capacity,
		queueMax: queueMax,
		depthG:   telemetry.FleetQueueDepth(shard),
		byRun:    map[string][]*waiter{},
	}
}

// acquire blocks until a slot frees (fair across run IDs), the queue
// overflows (errShed), or ctx ends. On nil error the caller must release.
func (a *admission) acquire(ctx context.Context, run string) error {
	a.mu.Lock()
	if a.inflight < a.capacity {
		a.inflight++
		a.updateDepthLocked()
		a.mu.Unlock()
		return nil
	}
	if a.queued >= a.queueMax {
		a.mu.Unlock()
		return errShed
	}
	w := &waiter{ch: make(chan struct{})}
	if len(a.byRun[run]) == 0 {
		a.order = append(a.order, run)
	}
	a.byRun[run] = append(a.byRun[run], w)
	a.queued++
	a.updateDepthLocked()
	a.mu.Unlock()

	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.ch:
			// admitLocked closed our channel before we saw ctx.Done (both
			// happen under a.mu, so this check is race-free): the slot is
			// ours and unused — hand it straight to the next waiter.
			a.inflight--
			a.admitLocked()
		default:
			a.abandonLocked(run, w)
		}
		a.updateDepthLocked()
		a.mu.Unlock()
		return ctx.Err()
	}
}

// release frees a slot taken by acquire and admits the next waiter.
func (a *admission) release() {
	a.mu.Lock()
	a.inflight--
	a.admitLocked()
	a.updateDepthLocked()
	a.mu.Unlock()
}

// admitLocked moves waiters into free slots, one run at a time in
// round-robin order. Callers must hold a.mu.
func (a *admission) admitLocked() {
	for a.inflight < a.capacity && a.queued > 0 {
		if a.next >= len(a.order) {
			a.next = 0
		}
		run := a.order[a.next]
		q := a.byRun[run]
		w := q[0]
		if len(q) == 1 {
			delete(a.byRun, run)
			a.order = append(a.order[:a.next], a.order[a.next+1:]...)
			// Cursor already points at the following run.
		} else {
			a.byRun[run] = q[1:]
			a.next++
		}
		a.queued--
		a.inflight++
		close(w.ch)
	}
}

// abandonLocked removes a cancelled waiter from its run queue. Callers
// must hold a.mu.
func (a *admission) abandonLocked(run string, w *waiter) {
	q := a.byRun[run]
	for i, x := range q {
		if x != w {
			continue
		}
		q = append(q[:i], q[i+1:]...)
		a.queued--
		if len(q) == 0 {
			delete(a.byRun, run)
			for j, s := range a.order {
				if s == run {
					a.order = append(a.order[:j], a.order[j+1:]...)
					if a.next > j {
						a.next--
					}
					break
				}
			}
		} else {
			a.byRun[run] = q
		}
		return
	}
}

// depth is the gauge value: requests in flight plus requests queued.
func (a *admission) depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight + a.queued
}

func (a *admission) updateDepthLocked() {
	a.depthG.Set(float64(a.inflight + a.queued))
}
