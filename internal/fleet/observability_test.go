package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"unico/internal/core"
	"unico/internal/dist"
	"unico/internal/disttrace"
	"unico/internal/hw"
	"unico/internal/runid"
)

// runCapture records the X-Unico-Run-ID header of every request each shard
// receives, keyed by the shard's host (the Host header of a direct HTTP/1
// connection is the shard's own address).
type runCapture struct {
	mu   sync.Mutex
	seen map[string]map[string][]string // host -> path -> run IDs, in arrival order
}

func newRunCapture() *runCapture {
	return &runCapture{seen: map[string]map[string][]string{}}
}

func (c *runCapture) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.mu.Lock()
		byPath := c.seen[r.Host]
		if byPath == nil {
			byPath = map[string][]string{}
			c.seen[r.Host] = byPath
		}
		byPath[r.URL.Path] = append(byPath[r.URL.Path], r.Header.Get(runid.Header))
		c.mu.Unlock()
		h.ServeHTTP(w, r)
	})
}

// runs returns the run IDs a shard saw on one path.
func (c *runCapture) runs(shardURL, path string) []string {
	host := strings.TrimPrefix(shardURL, "http://")
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.seen[host][path]...)
}

// setRunID installs a process-wide run ID for the test and restores the
// previous one afterwards.
func setRunID(t *testing.T, id string) {
	t.Helper()
	prev := runid.Current()
	runid.Set(id)
	t.Cleanup(func() { runid.Set(prev) })
}

// enableTrace installs a span recorder for the test, tracing off afterwards.
func enableTrace(t *testing.T, path string) *disttrace.Recorder {
	t.Helper()
	rec, err := disttrace.NewRecorder(path, "test")
	if err != nil {
		t.Fatal(err)
	}
	prev := disttrace.Active()
	disttrace.Enable(rec)
	t.Cleanup(func() {
		disttrace.Enable(prev)
		rec.Close()
	})
	return rec
}

// TestRunIDSurvivesReplayChain: the run ID set by the client must arrive on
// the shard through the router not just on the direct forward, but on every
// request the router synthesizes itself — the job re-creation and the
// cumulative re-advance of a replay after the owner is killed.
func TestRunIDSurvivesReplayChain(t *testing.T) {
	capture := newRunCapture()
	mk := func() http.Handler { return capture.wrap(dist.NewServer().Handler()) }
	router, rsrv, shards := newTestFleet(t, 2, Options{FailAfter: 1}, mk)

	const myRun = "prop-run-7f3a"
	setRunID(t, myRun)
	client := dist.NewClientOptions(rsrv.URL, nil,
		dist.Options{Timeout: 30 * time.Second, MaxRetries: 3, RetryBackoff: 2 * time.Millisecond})

	space := hw.NewSpatialSpace(hw.Edge)
	x := space.Encode(hw.Spatial{PEX: 4, PEY: 4, L1Bytes: 864, L2KB: 96, NoCBW: 64})
	id, err := client.CreateJob(dist.JobSpec{
		Platform: "spatial", Scenario: "edge",
		Networks: []string{"MobileNetV3-S"}, X: x, Algo: "flextensor", Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Find the owner and the survivor.
	var owner, survivor *testShard
	for _, m := range router.Members() {
		for _, sh := range shards {
			if sh.url != m.ID {
				continue
			}
			if m.Jobs == 1 {
				owner = sh
			} else {
				survivor = sh
			}
		}
	}
	if owner == nil || survivor == nil {
		t.Fatalf("could not identify job owner and survivor among %d shards", len(shards))
	}

	// Kill the owner with total state loss; the next advance must replay the
	// job on the survivor (FailAfter 1 takes the owner off the ring at the
	// first failed forward).
	owner.inj.SetDown(true)
	owner.restart(capture.wrap(dist.NewServer().Handler()))

	state, err := client.AdvanceJob(id, 2)
	if err != nil {
		t.Fatalf("AdvanceJob after owner kill: %v", err)
	}
	if state.Spent != 2 {
		t.Errorf("spent %d, want 2", state.Spent)
	}

	// The replayed create and advance on the survivor are router-synthesized
	// requests; both must still carry the client's run ID.
	for _, path := range []string{"/v1/jobs", "/v1/jobs/advance"} {
		got := capture.runs(survivor.url, path)
		if len(got) == 0 {
			t.Errorf("survivor saw no %s request; replay did not happen", path)
			continue
		}
		for i, run := range got {
			if run != myRun {
				t.Errorf("survivor %s request %d carried run ID %q, want %q", path, i, run, myRun)
			}
		}
	}
	// And the original create on the owner carried it too (the single-hop
	// leg of the chain).
	if got := capture.runs(owner.url, "/v1/jobs"); len(got) == 0 || got[0] != myRun {
		t.Errorf("owner /v1/jobs runs = %v, want [%q ...]", got, myRun)
	}
}

// TestFleetTraceChainCompleteUnderChaos is the tracing acceptance check: a
// co-search through a 3-shard fleet with a kill-restart mid-run must leave a
// span log whose merged trace has zero orphans and a complete
// client→router→shard→engine chain for every ok remote eval.
func TestFleetTraceChainCompleteUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("full co-search; skipped in -short")
	}
	spanLog := filepath.Join(t.TempDir(), "spans.jsonl")
	enableTrace(t, spanLog)
	const run = "trace-chaos-run"
	setRunID(t, run)

	opt := core.UNICOOptions(4, 2, 10, 3)
	opt.Workers = 2
	router, rsrv, shards := newTestFleet(t, 3, Options{FailAfter: 1}, nil)
	client := dist.NewClientOptions(rsrv.URL, nil, dist.Options{
		Timeout: 30 * time.Second, MaxRetries: 4,
		RetryBackoff: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
	})
	p, err := dist.NewRemoteSpatialPlatform([]*dist.Client{client}, hw.Edge, []string{"MobileNetV3-S"})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan core.Result, 1)
	go func() { done <- core.Run(p, opt) }()

	victim := shards[1]
	waitUntil(t, func() bool { return victim.hits.Load() >= 1 })
	victim.inj.SetDown(true)
	victim.restart(dist.NewServer().Handler())
	time.Sleep(50 * time.Millisecond)
	victim.inj.SetDown(false)
	router.ProbeAll(context.Background())

	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("co-search did not complete")
	}

	events, skipped, err := disttrace.LoadFiles(spanLog)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("span log has %d malformed/duplicate lines, want 0", skipped)
	}
	var tr *disttrace.Trace
	for _, cand := range disttrace.BuildTraces(events) {
		if cand.ID == run {
			tr = cand
		}
	}
	if tr == nil {
		t.Fatalf("no trace %q in span log", run)
	}
	a := disttrace.Analyze(tr)
	s := a.Summary

	if s.Orphans != 0 {
		t.Errorf("%d orphan spans, want 0 (fsynced start-before-child must prevent them)", s.Orphans)
	}
	if s.IncompleteChains != 0 {
		t.Errorf("%d ok evals without a complete client→…→engine chain, want 0", s.IncompleteChains)
	}
	if s.Evals == 0 || s.CompleteChains == 0 {
		t.Fatalf("evals=%d complete=%d; the co-search produced no traced remote evals", s.Evals, s.CompleteChains)
	}
	// Every hop of the distributed chain must appear in the trace: the
	// client side, the router's forward, the shard handler, and the engine.
	for _, kind := range []string{"iteration", "client", "attempt", "forward", "shard", "engine"} {
		if s.SpansByKind[kind] == 0 {
			t.Errorf("no %q spans in trace; the %s hop is not instrumented end to end", kind, kind)
		}
	}
	t.Logf("trace %s: %d spans, %d evals (%d complete chains), kinds %v",
		s.Trace, s.Spans, s.Evals, s.CompleteChains, s.SpansByKind)
}

// TestHandleSpansMergesShardSpans: the router's /v1/spans collector merges
// its own events with every member's pull into one deduplicated JSONL
// stream (in-process, all components share one recorder, so the dedup path
// is exactly what's exercised).
func TestHandleSpansMergesShardSpans(t *testing.T) {
	enableTrace(t, filepath.Join(t.TempDir(), "spans.jsonl"))
	_, rsrv, _ := newTestFleet(t, 2, Options{}, nil)

	const run = "merge-run"
	parent := disttrace.StartSpan(run, disttrace.SpanContext{}, "client", "/v1/ppa")
	child := disttrace.StartSpan("", parent.Context(), "attempt", "/v1/ppa")
	child.End("ok", nil)
	parent.End("ok", nil)

	resp, err := http.Get(rsrv.URL + "/v1/spans?run=" + run)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/spans status %d", resp.StatusCode)
	}
	events, _, err := disttrace.ParseEvents(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// Router + 2 members all hold the same process-wide recorder; the merged
	// stream must collapse the three copies into the 4 unique events.
	if len(events) != 4 {
		t.Fatalf("merged stream has %d unique events, want 4", len(events))
	}
	traces := disttrace.BuildTraces(events)
	if len(traces) != 1 || len(traces[0].Orphans) != 0 || len(traces[0].Incomplete) != 0 {
		t.Fatalf("merged trace unhealthy: %+v", traces)
	}

	// Missing run parameter is a client error.
	bad, err := http.Get(rsrv.URL + "/v1/spans")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bad.Body)
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /v1/spans without run = %d, want 400", bad.StatusCode)
	}
}

// TestFleetMetricsAggregatesAndRelabels: /metrics/fleet regroups each
// member's exposition by family, injects shard labels, and reports scrape
// health per member.
func TestFleetMetricsAggregatesAndRelabels(t *testing.T) {
	mk := func() http.Handler {
		mux := http.NewServeMux()
		mux.Handle("/", dist.NewServer().Handler())
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, "# HELP unico_http_requests_total Total HTTP requests.\n"+
				"# TYPE unico_http_requests_total counter\n"+
				"unico_http_requests_total{route=\"/v1/ppa\"} 3\n"+
				"# HELP unico_evals_inflight Evaluations in flight.\n"+
				"# TYPE unico_evals_inflight gauge\n"+
				"unico_evals_inflight 1\n")
		})
		return mux
	}
	router, _, shards := newTestFleet(t, 2, Options{FailAfter: 1}, mk)

	srv := httptest.NewServer(router.FleetMetricsHandler())
	t.Cleanup(srv.Close)
	get := func() string {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	body := get()
	// Each family appears exactly once, with both shards' relabeled series.
	if n := strings.Count(body, "# TYPE unico_http_requests_total counter"); n != 1 {
		t.Errorf("family header appears %d times, want 1\n%s", n, body)
	}
	for _, sh := range shards {
		labeled := fmt.Sprintf("unico_http_requests_total{shard=%q,route=\"/v1/ppa\"} 3", sh.url)
		if !strings.Contains(body, labeled) {
			t.Errorf("missing relabeled series %q in:\n%s", labeled, body)
		}
		bare := fmt.Sprintf("unico_evals_inflight{shard=%q} 1", sh.url)
		if !strings.Contains(body, bare) {
			t.Errorf("missing label-injected series %q in:\n%s", bare, body)
		}
		if ok := fmt.Sprintf("unico_fleet_scrape_ok{shard=%q} 1", sh.url); !strings.Contains(body, ok) {
			t.Errorf("missing %q in:\n%s", ok, body)
		}
	}

	// A dead shard degrades to scrape_ok 0; the survivor's series remain.
	shards[1].inj.SetDown(true)
	body = get()
	if down := fmt.Sprintf("unico_fleet_scrape_ok{shard=%q} 0", shards[1].url); !strings.Contains(body, down) {
		t.Errorf("dead shard not reported: want %q in:\n%s", down, body)
	}
	if up := fmt.Sprintf("unico_fleet_scrape_ok{shard=%q} 1", shards[0].url); !strings.Contains(body, up) {
		t.Errorf("live shard not reported: want %q in:\n%s", up, body)
	}
}

func TestRelabel(t *testing.T) {
	cases := []struct{ line, want string }{
		{`unico_x_total{route="/v1/ppa"} 3`, `unico_x_total{shard="s1",route="/v1/ppa"} 3`},
		{`unico_x_total{} 3`, `unico_x_total{shard="s1"} 3`},
		{`unico_x_total 3`, `unico_x_total{shard="s1"} 3`},
		// A '{' after the value must not be mistaken for a label set.
		{`unico_x_total 3 # {trace}`, `unico_x_total{shard="s1"} 3 # {trace}`},
	}
	for _, c := range cases {
		if got := relabel(c.line, "s1"); got != c.want {
			t.Errorf("relabel(%q) = %q, want %q", c.line, got, c.want)
		}
	}
}

// TestTimelinesRecordProbeHistory: every ProbeAll appends one event per
// shard, bounded, reflecting the state the probe left the shard in — and
// the debug page serves them.
func TestTimelinesRecordProbeHistory(t *testing.T) {
	router, _, shards := newTestFleet(t, 2, Options{FailAfter: 1}, nil)
	router.ProbeAll(context.Background())
	shards[1].inj.SetDown(true)
	router.ProbeAll(context.Background())

	tls := router.Timelines()
	if len(tls) != 2 {
		t.Fatalf("%d timelines, want 2", len(tls))
	}
	for i, tl := range tls {
		if tl.ID != shards[i].url {
			t.Errorf("timeline %d is for %s, want config order %s", i, tl.ID, shards[i].url)
		}
		if len(tl.Events) != 2 {
			t.Fatalf("shard %d has %d probe events, want 2", i, len(tl.Events))
		}
	}
	if ev := tls[0].Events[1]; !ev.OK || ev.State != "active" {
		t.Errorf("healthy shard's last probe = %+v, want ok/active", ev)
	}
	if ev := tls[1].Events[1]; ev.OK || ev.State != "down" {
		t.Errorf("killed shard's last probe = %+v, want failed/down", ev)
	}

	dsrv := httptest.NewServer(router.DebugHandler())
	t.Cleanup(dsrv.Close)
	resp, err := http.Get(dsrv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"state":"down"`) {
		t.Errorf("debug JSON missing down shard: %s", body)
	}
	hresp, err := http.Get(dsrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	hbody, _ := io.ReadAll(hresp.Body)
	if !strings.Contains(string(hbody), "Fleet health") || !strings.Contains(string(hbody), `class="fail"`) {
		t.Errorf("debug HTML missing health table or failed-probe marker")
	}
}
