// Package fleet turns a pool of ppaserver shards into one PPA-evaluation
// service with an explicit robustness contract — the growth of the paper's
// §3.5 master/worker deployment from a single process into something that
// survives overload and partial failure instead of falling over.
//
// The Router is the single endpoint masters talk to. It speaks the exact
// worker API of internal/dist (so a dist.Client pointed at a router cannot
// tell it from a worker) and behind it:
//
//   - Consistent-hashes canonical evaluation keys — the same SHA-256
//     content addresses internal/evalcache uses — across the shards, so
//     each shard's LRU stays hot for its slice of the design space.
//     Mapping-search jobs hash on their canonical spec encoding.
//   - Bounds admission per shard: a fixed number of concurrent forwards
//     plus a bounded wait queue with per-client fair dequeueing (keyed by
//     the X-Unico-Run-ID header), so one greedy run cannot starve the
//     rest. Beyond the queue the router sheds with 429 + Retry-After —
//     load answers fast failure, never unbounded queueing.
//   - Health-checks membership: shards that fail probes or forwards leave
//     the hash ring (down), re-join when probes answer again, and can be
//     drained — in-flight jobs finish, new work re-hashes elsewhere.
//   - Replays lost jobs deterministically: a mapping-search job is a pure
//     function of (spec, cumulative budget), so when a shard dies or
//     restarts mid-search the router re-creates the job on the next shard
//     along the ring and replays its spent budget. The master observes
//     bounded extra latency, never a lost or double-counted evaluation.
//
// Everything is stdlib-only and instrumented through internal/telemetry
// (unico_fleet_* series; see that package's well-known metrics).
package fleet

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"unico/internal/telemetry"
)

// Defaults for Options fields left zero.
const (
	DefaultShardCapacity  = 8
	DefaultShardQueue     = 64
	DefaultRetryAfter     = time.Second
	DefaultFailAfter      = 2
	DefaultProbeInterval  = 2 * time.Second
	DefaultProbeTimeout   = 2 * time.Second
	DefaultForwardTimeout = 2 * time.Minute
	DefaultVirtualNodes   = 64
)

// Options tunes a Router. The zero value selects every default above.
type Options struct {
	// ShardCapacity is how many requests may be in flight to one shard at
	// once (the admission gate's concurrency).
	ShardCapacity int
	// ShardQueue bounds how many admitted-but-waiting requests one shard's
	// queue holds beyond ShardCapacity; past it the router sheds with
	// 429 + Retry-After instead of queuing unboundedly.
	ShardQueue int
	// RetryAfter is the backoff advertised in Retry-After on shed
	// responses (rounded up to whole seconds, minimum 1).
	RetryAfter time.Duration
	// FailAfter is how many consecutive forward or probe failures mark a
	// shard down and re-hash its key range.
	FailAfter int
	// ProbeInterval is the background health-probe cadence (Start).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe.
	ProbeTimeout time.Duration
	// ForwardTimeout bounds one forwarded request. It must comfortably
	// exceed the longest budget installment a master advances in one call.
	ForwardTimeout time.Duration
	// VirtualNodes is the ring replica count per shard; more replicas
	// smooth the key-range split at the cost of a larger ring.
	VirtualNodes int
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.ShardCapacity <= 0 {
		o.ShardCapacity = DefaultShardCapacity
	}
	if o.ShardQueue < 0 {
		o.ShardQueue = 0
	} else if o.ShardQueue == 0 {
		o.ShardQueue = DefaultShardQueue
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = DefaultRetryAfter
	}
	if o.FailAfter <= 0 {
		o.FailAfter = DefaultFailAfter
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = DefaultProbeInterval
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = DefaultProbeTimeout
	}
	if o.ForwardTimeout <= 0 {
		o.ForwardTimeout = DefaultForwardTimeout
	}
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = DefaultVirtualNodes
	}
	return o
}

// shardState is one member's position in the membership state machine:
//
//	active ──(FailAfter consecutive failures)──▶ down
//	active ──(drain admin / shard self-report)─▶ draining
//	down ──(health probe answers "ok")─────────▶ active
//	draining ──(undrain / shard reports "ok")──▶ active
//	draining ──(probes fail)───────────────────▶ down
//
// Only active members are on the hash ring. Draining members still serve
// the jobs they hold (advance/delete); down members serve nothing.
type shardState int

const (
	shardActive shardState = iota
	shardDraining
	shardDown
)

func (s shardState) String() string {
	switch s {
	case shardActive:
		return "active"
	case shardDraining:
		return "draining"
	default:
		return "down"
	}
}

// member is one shard in the fleet.
type member struct {
	id     string   // base URL, e.g. "http://127.0.0.1:19301"
	points []uint64 // its virtual-node ring coordinates (precomputed)
	adm    *admission

	// Guarded by Router.mu (state participates in ring membership).
	state       shardState
	consecFails int
	timeline    []ProbeEvent // ring buffer of recent probe outcomes
}

// maxTimelineEvents bounds each member's health timeline; at the default
// 2-second probe cadence this is roughly the last eight minutes.
const maxTimelineEvents = 256

// ProbeEvent is one health-probe outcome on a member's timeline.
type ProbeEvent struct {
	UnixMS int64  `json:"unix_ms"`
	OK     bool   `json:"ok"`
	State  string `json:"state"` // state after the probe was applied
}

// ShardTimeline is one member's recent health history.
type ShardTimeline struct {
	ID     string       `json:"id"`
	State  string       `json:"state"`
	Events []ProbeEvent `json:"events"`
}

// recordProbe appends one probe outcome to m's timeline.
func (r *Router) recordProbe(m *member, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m.timeline = append(m.timeline, ProbeEvent{
		//unicolint:allow detclock health timelines are wall-clock observability, not search state
		UnixMS: time.Now().UnixMilli(),
		OK:     ok,
		State:  m.state.String(),
	})
	if len(m.timeline) > maxTimelineEvents {
		m.timeline = m.timeline[len(m.timeline)-maxTimelineEvents:]
	}
}

// Timelines snapshots every member's health timeline in configuration
// order (the /debug/unico/fleet data source).
func (r *Router) Timelines() []ShardTimeline {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ShardTimeline, len(r.members))
	for i, m := range r.members {
		events := make([]ProbeEvent, len(m.timeline))
		copy(events, m.timeline)
		out[i] = ShardTimeline{ID: m.id, State: m.state.String(), Events: events}
	}
	return out
}

// Router is the fleet coordinator. Create with NewRouter; serve its
// Handler; optionally Start the background health prober.
type Router struct {
	opts    Options
	forward *http.Client // bounded by ForwardTimeout
	probe   *http.Client // bounded by ProbeTimeout

	mu      sync.Mutex
	members []*member // fixed set, configuration order
	ring    []ringEntry
	jobs    map[string]*jobRecord
	nextJob int
}

// NewRouter builds a router over the given shard base URLs.
func NewRouter(shards []string, opts Options) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("fleet: no shards")
	}
	opts = opts.withDefaults()
	r := &Router{
		opts:    opts,
		forward: &http.Client{Timeout: opts.ForwardTimeout},
		probe:   &http.Client{Timeout: opts.ProbeTimeout},
		jobs:    map[string]*jobRecord{},
	}
	seen := map[string]bool{}
	for _, s := range shards {
		if s == "" || seen[s] {
			return nil, fmt.Errorf("fleet: empty or duplicate shard %q", s)
		}
		seen[s] = true
		r.members = append(r.members, &member{
			id:     s,
			points: ringPoints(s, opts.VirtualNodes),
			adm:    newAdmission(s, opts.ShardCapacity, opts.ShardQueue),
			state:  shardActive,
		})
	}
	r.rebuildRingLocked()
	return r, nil
}

// MemberStatus is one shard's externally visible state (the
// /v1/fleet/members body).
type MemberStatus struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	ConsecFails int    `json:"consec_fails"`
	QueueDepth  int    `json:"queue_depth"`
	Jobs        int    `json:"jobs"` // router-tracked jobs currently owned
}

// Members snapshots every shard's status in configuration order.
func (r *Router) Members() []MemberStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	owned := map[*member]int{}
	for _, rec := range r.jobs {
		owned[rec.shard]++
	}
	out := make([]MemberStatus, len(r.members))
	for i, m := range r.members {
		out[i] = MemberStatus{
			ID:          m.id,
			State:       m.state.String(),
			ConsecFails: m.consecFails,
			QueueDepth:  m.adm.depth(),
			Jobs:        owned[m],
		}
	}
	return out
}

// memberByID finds a member by its base URL.
func (r *Router) memberByID(id string) *member {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.members {
		if m.id == id {
			return m
		}
	}
	return nil
}

// setState transitions a member, rebuilding the ring (and counting a
// rebalance) when the transition changes ring membership.
func (r *Router) setState(m *member, s shardState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.state == s {
		return
	}
	wasOnRing := m.state == shardActive
	m.state = s
	m.consecFails = 0
	if wasOnRing != (s == shardActive) {
		r.rebuildRingLocked()
		telemetry.FleetRebalances().Inc()
	}
}

// noteFailure records one failed forward or probe against m, marking it
// down once the streak reaches FailAfter.
func (r *Router) noteFailure(m *member) {
	r.mu.Lock()
	m.consecFails++
	trip := m.consecFails >= r.opts.FailAfter && m.state != shardDown
	r.mu.Unlock()
	if trip {
		r.setState(m, shardDown)
	}
}

// noteSuccess clears m's failure streak.
func (r *Router) noteSuccess(m *member) {
	r.mu.Lock()
	m.consecFails = 0
	r.mu.Unlock()
}

// anyDraining reports whether at least one member is draining — used to
// pick the shed reason when the ring is empty.
func (r *Router) anyDraining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.members {
		if m.state == shardDraining {
			return true
		}
	}
	return false
}
