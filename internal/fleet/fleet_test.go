package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"unico/internal/camodel"
	"unico/internal/dist"
	"unico/internal/evalcache"
	"unico/internal/hw"
	"unico/internal/maestro"
	"unico/internal/mapping"
	"unico/internal/runid"
	"unico/internal/workload"
)

// swappable is an http.Handler whose inner handler can be replaced at
// runtime — a shard "restart with total state loss" in one call.
type swappable struct{ v atomic.Value }

func newSwappable(h http.Handler) *swappable {
	s := &swappable{}
	s.v.Store(h)
	return s
}

func (s *swappable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.v.Load().(http.Handler).ServeHTTP(w, r)
}

// testShard is one live worker behind a fault injector, with request
// counters so tests can see where the router sent traffic.
type testShard struct {
	url     string
	inj     *dist.FaultInjector
	inner   *swappable
	hits    atomic.Int64 // all requests
	ppaHits atomic.Int64 // /v1/ppa requests
}

// restart models kill -9 + restart: the replacement worker holds none of
// the old one's job state.
func (s *testShard) restart(h http.Handler) { s.inner.v.Store(h) }

// newTestFleet starts n real workers behind fault injectors and a router
// over them, all torn down with the test.
func newTestFleet(t *testing.T, n int, opts Options, mk func() http.Handler) (*Router, *httptest.Server, []*testShard) {
	t.Helper()
	if mk == nil {
		mk = func() http.Handler { return dist.NewServer().Handler() }
	}
	shards := make([]*testShard, n)
	urls := make([]string, n)
	for i := range shards {
		sh := &testShard{inner: newSwappable(mk())}
		sh.inj = dist.NewFaultInjector(sh.inner)
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sh.hits.Add(1)
			if r.URL.Path == "/v1/ppa" {
				sh.ppaHits.Add(1)
			}
			sh.inj.ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		sh.url = srv.URL
		shards[i] = sh
		urls[i] = srv.URL
	}
	router, err := NewRouter(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	rsrv := httptest.NewServer(router.Handler())
	t.Cleanup(rsrv.Close)
	return router, rsrv, shards
}

func spatialPPABody(t *testing.T, k int) []byte {
	t.Helper()
	// Vary the layer's K dim, not just its name: the canonical eval key
	// hashes the layer's shape, so each k must be a genuinely distinct key.
	l := workload.Conv(fmt.Sprintf("c%d", k), 16+8*k, 8, 14, 14, 3, 3, 1, 1)
	cfg := hw.Spatial{PEX: 4, PEY: 4, L1Bytes: 1728, L2KB: 432, NoCBW: 128, Dataflow: hw.WeightStationary}
	m := mapping.Spatial{TK: 1, TC: 1, TY: 1, TX: 1, TR: 1, TS: 1,
		SpatX: mapping.DimK, SpatY: mapping.DimY}.Canon(l)
	b, err := json.Marshal(dist.PPARequest{Platform: "spatial", SpatialHW: &cfg, SpatialMapping: &m, Layer: l})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postPPA(t *testing.T, url string, body []byte, run string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/ppa", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if run != "" {
		req.Header.Set(runid.Header, run)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRouterRoutesByContentAddress: the same request always lands on the
// same shard (its LRU stays hot), and different keys spread across shards.
func TestRouterRoutesByContentAddress(t *testing.T) {
	_, rsrv, shards := newTestFleet(t, 3, Options{}, nil)

	body := spatialPPABody(t, 0)
	for i := 0; i < 5; i++ {
		resp := postPPA(t, rsrv.URL, body, "run-a")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	owners := 0
	for _, sh := range shards {
		switch sh.ppaHits.Load() {
		case 0:
		case 5:
			owners++
		default:
			t.Fatalf("shard %s served %d of 5 identical requests; key is not sticky", sh.url, sh.ppaHits.Load())
		}
	}
	if owners != 1 {
		t.Fatalf("%d shards claimed the key, want exactly 1", owners)
	}

	// Distinct keys spread: with 64 virtual nodes per shard, 32 distinct
	// requests reaching one single shard would mean the ring is broken.
	for k := 1; k <= 32; k++ {
		resp := postPPA(t, rsrv.URL, spatialPPABody(t, k), "run-a")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	spread := 0
	for _, sh := range shards {
		if sh.ppaHits.Load() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("all traffic on %d shard(s); consistent hashing is not spreading keys", spread)
	}
}

// TestRouterShedsOnQueueFull: with one slot and one queue entry occupied,
// the next request is shed with 429 + Retry-After instead of queueing —
// and the queue drains to completion once the shard unblocks.
func TestRouterShedsOnQueueFull(t *testing.T) {
	gate := make(chan struct{})
	mk := func() http.Handler {
		inner := dist.NewServer().Handler()
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/ppa" {
				<-gate
			}
			inner.ServeHTTP(w, r)
		})
	}
	router, rsrv, _ := newTestFleet(t, 1,
		Options{ShardCapacity: 1, ShardQueue: 1, RetryAfter: 7 * time.Second}, mk)

	body := spatialPPABody(t, 0)
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		run := fmt.Sprintf("run-%d", i)
		go func() {
			req, err := http.NewRequest(http.MethodPost, rsrv.URL+"/v1/ppa", bytes.NewReader(body))
			if err != nil {
				results <- -1
				return
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(runid.Header, run)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				results <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- resp.StatusCode
		}()
		// First request must be in flight (holding the slot) before the
		// second queues, so the third deterministically overflows.
		waitUntil(t, func() bool { return router.Members()[0].QueueDepth == i+1 })
	}

	resp := postPPA(t, rsrv.URL, body, "run-2")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want %q", got, "7")
	}
	var shed struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil || !strings.Contains(shed.Error, "queue-full") {
		t.Errorf("shed body %+v, %v; want queue-full reason", shed, err)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("queued request finished with %d, want 200", code)
		}
	}
}

// TestRouterDrainReroutesWithoutDuplicateEvals is satellite 3: draining a
// shard finishes its in-flight job, re-hashes new PPA work to the
// survivor, and — proven by a cache shared across both shards — no
// evaluation runs twice in the process.
func TestRouterDrainReroutesWithoutDuplicateEvals(t *testing.T) {
	shared := evalcache.New(0)
	mk := func() http.Handler {
		return dist.NewServerWith(
			evalcache.Spatial{Inner: maestro.Engine{}, Cache: shared},
			evalcache.Ascend{Inner: camodel.Engine{}, Cache: shared},
		).Handler()
	}
	router, rsrv, shards := newTestFleet(t, 2, Options{}, mk)
	client := dist.NewClientOptions(rsrv.URL, nil,
		dist.Options{Timeout: 30 * time.Second, MaxRetries: 3, RetryBackoff: 2 * time.Millisecond})

	// A job created before the drain...
	space := hw.NewSpatialSpace(hw.Edge)
	x := space.Encode(hw.Spatial{PEX: 4, PEY: 4, L1Bytes: 864, L2KB: 96, NoCBW: 64})
	id, err := client.CreateJob(dist.JobSpec{
		Platform: "spatial", Scenario: "edge",
		Networks: []string{"MobileNetV3-S"}, X: x, Algo: "flextensor", Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var jobOwner string
	for _, m := range router.Members() {
		if m.Jobs == 1 {
			jobOwner = m.ID
		}
	}
	if jobOwner == "" {
		t.Fatal("no shard owns the created job")
	}

	// Seed the cache through the router, noting which shard owns the key.
	body := spatialPPABody(t, 0)
	resp := postPPA(t, rsrv.URL, body, "run-a")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain eval status %d", resp.StatusCode)
	}
	var keyOwner *testShard
	for _, sh := range shards {
		if sh.ppaHits.Load() == 1 {
			keyOwner = sh
		}
	}
	if keyOwner == nil {
		t.Fatal("no shard served the pre-drain eval")
	}

	// Drain the shard owning the PPA key AND verify the job still advances
	// wherever it lives (a draining owner must finish what it holds).
	dresp, err := http.Post(rsrv.URL+"/v1/fleet/drain?shard="+keyOwner.url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d", dresp.StatusCode)
	}

	state, err := client.AdvanceJob(id, 2)
	if err != nil {
		t.Fatalf("AdvanceJob with one shard draining: %v", err)
	}
	if state.Spent != 2 {
		t.Errorf("spent %d, want 2", state.Spent)
	}

	// The drained shard refuses direct new work with 503 + Retry-After.
	direct := postPPA(t, keyOwner.url, body, "run-a")
	io.Copy(io.Discard, direct.Body)
	direct.Body.Close()
	if direct.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining shard answered %d directly, want 503", direct.StatusCode)
	}

	// The same key through the router re-hashes to the survivor — served
	// from the shared cache, not recomputed.
	misses := shared.Stats().Misses
	before := keyOwner.ppaHits.Load()
	resp = postPPA(t, rsrv.URL, body, "run-a")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain eval status %d", resp.StatusCode)
	}
	if got := keyOwner.ppaHits.Load(); got != before {
		t.Errorf("draining shard served %d new PPA request(s); router did not re-hash", got-before)
	}
	if got := shared.Stats().Misses; got != misses {
		t.Errorf("re-routed eval recomputed (misses %d -> %d); want singleflight/cache to dedupe", misses, got)
	}

	// Undrain: the shard self-reports ok, a probe re-admits it, and the key
	// goes home.
	uresp, err := http.Post(rsrv.URL+"/v1/fleet/undrain?shard="+keyOwner.url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, uresp.Body)
	uresp.Body.Close()
	router.ProbeAll(context.Background())
	resp = postPPA(t, rsrv.URL, body, "run-a")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := keyOwner.ppaHits.Load(); got != before+1 {
		t.Errorf("undrained shard served %d new requests, want its key back (1)", got-before)
	}
}
