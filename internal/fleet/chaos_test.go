package fleet

import (
	"context"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"unico/internal/core"
	"unico/internal/dist"
	"unico/internal/hw"
	"unico/internal/telemetry"
)

// TestChaosShardKillRestartBitIdentical is the keystone robustness check:
// a full co-search through a 3-shard fleet, with one shard kill -9'd
// mid-run (losing every job it hosted) and restarted empty, must finish
// with results bit-identical to a fault-free run — zero evaluations lost,
// zero double-counted, the failure visible only as replays and latency.
func TestChaosShardKillRestartBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full co-search; skipped in -short")
	}
	opt := core.UNICOOptions(4, 2, 10, 3)
	opt.Workers = 2
	nets := []string{"MobileNetV3-S"}

	// Fault-free reference: one plain worker. Evaluation is deterministic,
	// so any healthy topology yields the same result.
	refSrv := httptest.NewServer(dist.NewServer().Handler())
	t.Cleanup(refSrv.Close)
	refClient := dist.NewClient(refSrv.URL, refSrv.Client())
	ref, err := dist.NewRemoteSpatialPlatform([]*dist.Client{refClient}, hw.Edge, nets)
	if err != nil {
		t.Fatal(err)
	}
	want := core.Run(ref, opt)

	// The fleet under chaos: 3 shards, first failure takes a shard off the
	// ring (FailAfter 1) so failover is immediate.
	router, rsrv, shards := newTestFleet(t, 3, Options{FailAfter: 1}, nil)
	client := dist.NewClientOptions(rsrv.URL, nil, dist.Options{
		Timeout: 30 * time.Second, MaxRetries: 4,
		RetryBackoff: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
	})
	p, err := dist.NewRemoteSpatialPlatform([]*dist.Client{client}, hw.Edge, nets)
	if err != nil {
		t.Fatal(err)
	}

	lostBefore := telemetry.DistLostEvals().Value()
	replaysBefore := telemetry.FleetReplays().Value()

	done := make(chan core.Result, 1)
	var finished atomic.Bool
	go func() {
		res := core.Run(p, opt)
		finished.Store(true)
		done <- res
	}()

	// Kill shard 1 once it has served real traffic, restart it with all
	// in-memory job state gone, then let a health probe re-admit it. If
	// the search outruns us the kill degenerates to a no-op restart and
	// the bit-identity asserts below still hold.
	victim := shards[1]
	waitUntil(t, func() bool { return victim.hits.Load() >= 1 || finished.Load() })
	victim.inj.SetDown(true)
	victim.restart(dist.NewServer().Handler())
	time.Sleep(50 * time.Millisecond)
	victim.inj.SetDown(false)
	router.ProbeAll(context.Background())

	var got core.Result
	select {
	case got = <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("co-search did not complete with a shard killed and restarted mid-run")
	}

	if lost := telemetry.DistLostEvals().Value() - lostBefore; lost != 0 {
		t.Errorf("lost %d evaluations; the fleet must absorb a shard kill without dropping work", lost)
	}
	if len(got.All) != len(want.All) {
		t.Fatalf("evaluated %d candidates, want %d (lost or double-counted evals)", len(got.All), len(want.All))
	}
	if !reflect.DeepEqual(got.Front, want.Front) {
		t.Errorf("Pareto front under chaos differs from fault-free run:\n got %+v\nwant %+v", got.Front, want.Front)
	}
	if !reflect.DeepEqual(got.All, want.All) {
		t.Errorf("full evaluation history under chaos differs from fault-free run")
	}
	t.Logf("chaos run: %d evals, %d job replays",
		len(got.All), telemetry.FleetReplays().Value()-replaysBefore)
}

// TestChaosFlappingShardProbabilistic: a shard flapping with seeded
// probabilistic 500s and connection resets must never corrupt results —
// the run completes bit-identical to the fault-free reference.
func TestChaosFlappingShardProbabilistic(t *testing.T) {
	if testing.Short() {
		t.Skip("full co-search; skipped in -short")
	}
	opt := core.UNICOOptions(4, 2, 10, 3)
	opt.Workers = 2
	nets := []string{"MobileNetV3-S"}

	refSrv := httptest.NewServer(dist.NewServer().Handler())
	t.Cleanup(refSrv.Close)
	refClient := dist.NewClient(refSrv.URL, refSrv.Client())
	ref, err := dist.NewRemoteSpatialPlatform([]*dist.Client{refClient}, hw.Edge, nets)
	if err != nil {
		t.Fatal(err)
	}
	want := core.Run(ref, opt)

	router, rsrv, shards := newTestFleet(t, 3, Options{FailAfter: 2}, nil)
	shards[2].inj.Probabilistic(7, 0.10, 0.05, 0)
	client := dist.NewClientOptions(rsrv.URL, nil, dist.Options{
		Timeout: 30 * time.Second, MaxRetries: 4,
		RetryBackoff: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
	})
	p, err := dist.NewRemoteSpatialPlatform([]*dist.Client{client}, hw.Edge, nets)
	if err != nil {
		t.Fatal(err)
	}

	lostBefore := telemetry.DistLostEvals().Value()
	done := make(chan core.Result, 1)
	go func() { done <- core.Run(p, opt) }()
	// Keep re-admitting the flapping shard so faults keep landing on it.
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	go func() {
		for probeCtx.Err() == nil {
			router.ProbeAll(probeCtx)
			time.Sleep(20 * time.Millisecond)
		}
	}()

	var got core.Result
	select {
	case got = <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("co-search did not complete against a flapping shard")
	}
	stopProbes()

	if lost := telemetry.DistLostEvals().Value() - lostBefore; lost != 0 {
		t.Errorf("lost %d evaluations to a flapping shard", lost)
	}
	if len(got.All) != len(want.All) {
		t.Fatalf("evaluated %d candidates, want %d", len(got.All), len(want.All))
	}
	if !reflect.DeepEqual(got.Front, want.Front) {
		t.Errorf("Pareto front with flapping shard differs from fault-free run:\n got %+v\nwant %+v", got.Front, want.Front)
	}
	if shards[2].inj.Injected() == 0 {
		t.Log("note: no faults fired this run; chaos exercised nothing (seeded draws)")
	}
}
