// Checkpoint contract of the co-optimizer: the record types a run emits
// after every iteration (journal) and every N iterations (snapshot), the
// sink interface a persistence layer implements (internal/checkpoint is the
// file-backed one), and the resume path that reconstructs a run's exact
// mid-flight state from those records.
//
// The determinism contract that makes resume exact: the MOBO explorer
// consumes RNG only inside SuggestBatch, never in Update, and every other
// stage of an iteration (successive halving with per-job seeds, GP refits,
// Pareto extraction) is a deterministic function of its inputs. Replaying
// the journal therefore needs only each iteration's observations — Update
// rebuilds the surrogate state — plus the recorded RNG stream position to
// fast-forward the generator past the suggestion draws that are not
// re-executed.
package core

import (
	"errors"
	"fmt"

	"unico/internal/mobo"
)

// ErrResumeMismatch reports that a checkpoint was produced by a run with a
// different configuration (platform, seed, batch size, ...) than the one
// trying to resume from it. Resuming anyway would silently produce a hybrid
// run that matches neither configuration, so Run refuses.
var ErrResumeMismatch = errors.New("core: checkpoint does not match run configuration")

// Fingerprint identifies the (platform, options) combination a checkpoint
// belongs to. Every field influences the search trajectory, so any mismatch
// means the checkpointed state cannot be continued bit-identically.
// Options.SearchWorkers is deliberately absent: the acquisition pool is
// bit-identical at every worker count, so a checkpoint taken at one setting
// may resume at any other.
type Fingerprint struct {
	Platform       string          `json:"platform"`
	SpaceDim       int             `json:"space_dim"`
	Seed           int64           `json:"seed"`
	BatchSize      int             `json:"batch_size"`
	BMax           int             `json:"b_max"`
	MSHPromoteFrac float64         `json:"msh_promote_frac"`
	DisableSH      bool            `json:"disable_sh"`
	UseRobustness  bool            `json:"use_robustness"`
	UpdateRule     mobo.UpdateRule `json:"update_rule"`
	Workers        int             `json:"workers"`
	Alpha          float64         `json:"alpha"`
}

// fingerprintOf derives the fingerprint of a normalized (platform, options)
// pair. The platform is identified by its concrete Go type and design-space
// dimensionality — coarse, but enough to catch resuming a spatial
// checkpoint on an Ascend-like run or vice versa.
func fingerprintOf(p Platform, opt Options) Fingerprint {
	return Fingerprint{
		Platform:       fmt.Sprintf("%T", p),
		SpaceDim:       p.Space().Dim(),
		Seed:           opt.Seed,
		BatchSize:      opt.BatchSize,
		BMax:           opt.BMax,
		MSHPromoteFrac: opt.MSHPromoteFrac,
		DisableSH:      opt.DisableSH,
		UseRobustness:  opt.UseRobustness,
		UpdateRule:     opt.UpdateRule,
		Workers:        opt.Workers,
		Alpha:          opt.Alpha,
	}
}

// FingerprintFor exposes the run fingerprint of a (platform, options) pair
// so other per-run artifacts — the flight recorder's header — carry the same
// identity the checkpoint contract validates on resume. The options are
// normalized first, matching what a checkpoint of the run would record.
func FingerprintFor(p Platform, opt Options) Fingerprint {
	return fingerprintOf(p, opt.normalize())
}

// IterationRecord is the write-ahead journal entry for one completed MOBO
// iteration: everything resume needs to replay the iteration's effect on
// the explorer and the result without re-running its mapping searches.
type IterationRecord struct {
	// Iter is the 1-based iteration index.
	Iter int `json:"iter"`
	// Suggested holds the batch of hardware points the explorer proposed.
	Suggested [][]float64 `json:"suggested"`
	// Observations are the normalized objective vectors fed to the
	// explorer's Update for this batch, in suggestion order.
	Observations []mobo.Observation `json:"observations"`
	// Candidates are the evaluated candidates of this iteration (penalty
	// metrics and R_infeasible for candidates with no feasible mapping).
	Candidates []Candidate `json:"candidates"`
	// Evals is the cumulative PPA evaluation count after this iteration.
	Evals int `json:"evals"`
	// ClockSeconds is the simulated clock reading at the end of this
	// iteration.
	ClockSeconds float64 `json:"clock_seconds"`
	// RNGPos is the explorer's RNG stream position at the end of this
	// iteration.
	RNGPos uint64 `json:"rng_pos"`
}

// SnapshotRecord is an atomic full-state checkpoint: a run restored from it
// continues without replaying any journal records written before it.
type SnapshotRecord struct {
	// Fingerprint identifies the run configuration the snapshot belongs to.
	Fingerprint Fingerprint `json:"fingerprint"`
	// Iter is the last completed iteration (0 for a genesis snapshot).
	Iter int `json:"iter"`
	// Explorer is the MOBO optimizer's full serialized state.
	Explorer mobo.State `json:"explorer"`
	// All holds every candidate evaluated so far, in evaluation order. The
	// Pareto front is recomputed from it on resume.
	All []Candidate `json:"all"`
	// Trace is the per-iteration convergence trace so far.
	Trace []TracePoint `json:"trace"`
	// Evals is the cumulative PPA evaluation count.
	Evals int `json:"evals"`
	// ClockSeconds is the simulated clock reading.
	ClockSeconds float64 `json:"clock_seconds"`
}

// CheckpointSink receives a run's checkpoint stream. AppendIteration must
// durably journal the record before returning; WriteSnapshot must replace
// any previous snapshot atomically (a crash mid-write leaves the old
// snapshot intact). internal/checkpoint provides the file-backed
// implementation; tests use in-memory sinks.
type CheckpointSink interface {
	AppendIteration(rec IterationRecord) error
	WriteSnapshot(snap SnapshotRecord) error
}

// ResumeState is a loaded checkpoint: the newest snapshot plus the journal
// records written after it. internal/checkpoint's Load builds it from disk.
type ResumeState struct {
	Snapshot SnapshotRecord
	// Tail holds the journal records with Iter > Snapshot.Iter, ascending.
	Tail []IterationRecord
}

// LastIter returns the last completed iteration the state covers.
func (rs *ResumeState) LastIter() int {
	if n := len(rs.Tail); n > 0 {
		return rs.Tail[n-1].Iter
	}
	return rs.Snapshot.Iter
}

// resumeRun reconstructs the mid-flight run state from a loaded checkpoint:
// the explorer restored from the snapshot with the journal tail replayed
// through Update (consuming no RNG), the result's candidate list, trace and
// eval count extended from the tail records, and the RNG fast-forwarded to
// the last recorded stream position. Returns the restored explorer, the
// partial result, and the last completed iteration.
func resumeRun(p Platform, opt Options, cfg mobo.Config, rs *ResumeState) (*mobo.Optimizer, Result, int, error) {
	want := fingerprintOf(p, opt)
	if rs.Snapshot.Fingerprint != want {
		return nil, Result{}, 0, fmt.Errorf("%w: checkpoint %+v, run %+v",
			ErrResumeMismatch, rs.Snapshot.Fingerprint, want)
	}
	explorer, err := mobo.Restore(p.Space(), cfg, rs.Snapshot.Explorer)
	if err != nil {
		return nil, Result{}, 0, fmt.Errorf("core: resume: %w", err)
	}

	var res Result
	res.All = append([]Candidate(nil), rs.Snapshot.All...)
	res.Trace = append([]TracePoint(nil), rs.Snapshot.Trace...)
	res.Evals = rs.Snapshot.Evals
	lastIter := rs.Snapshot.Iter
	lastSeconds := rs.Snapshot.ClockSeconds

	for _, rec := range rs.Tail {
		if rec.Iter != lastIter+1 {
			return nil, Result{}, 0, fmt.Errorf("core: resume: journal gap: record for iteration %d after %d", rec.Iter, lastIter)
		}
		res.All = append(res.All, rec.Candidates...)
		res.Evals = rec.Evals
		explorer.Update(rec.Observations)
		// The original iteration consumed RNG in SuggestBatch, which replay
		// skips; catch the stream up to where the iteration left it.
		if err := explorer.SeekRNG(rec.RNGPos); err != nil {
			return nil, Result{}, 0, fmt.Errorf("core: resume: iteration %d: %w", rec.Iter, err)
		}
		res.Front = paretoFront(res.All)
		res.Trace = append(res.Trace, TracePoint{
			Iter:     rec.Iter,
			Hours:    rec.ClockSeconds / 3600,
			FrontPPA: frontPPA(res.Front),
		})
		lastIter = rec.Iter
		lastSeconds = rec.ClockSeconds
	}
	res.Front = paretoFront(res.All)

	// Fast-forward the simulated clock to the recorded reading.
	opt.Clock.Reset()
	if lastSeconds > 0 {
		opt.Clock.Advance(lastSeconds)
	}
	return explorer, res, lastIter, nil
}
