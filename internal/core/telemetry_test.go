package core

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"unico/internal/telemetry"
)

// TestProgressFiresPerIteration asserts the Progress callback fires exactly
// once per MOBO iteration, in order, with monotone non-decreasing simulated
// hours and internally consistent fields.
func TestProgressFiresPerIteration(t *testing.T) {
	var reports []Progress
	opt := smallOpts(3)
	opt.Progress = func(p Progress) { reports = append(reports, p) }
	res := Run(testPlatform(), opt)

	if len(reports) != len(res.Trace) {
		t.Fatalf("progress fired %d times, trace has %d iterations", len(reports), len(res.Trace))
	}
	prevHours := 0.0
	for i, p := range reports {
		if p.Iter != i+1 {
			t.Errorf("report %d has Iter=%d, want %d", i, p.Iter, i+1)
		}
		if p.SimHours < prevHours {
			t.Errorf("simulated hours decreased at iter %d: %v < %v", p.Iter, p.SimHours, prevHours)
		}
		prevHours = p.SimHours
		if p.FrontSize < 0 || p.Hypervolume < 0 {
			t.Errorf("iter %d: negative front size or hypervolume: %+v", p.Iter, p)
		}
		if p.Evals <= 0 {
			t.Errorf("iter %d: no evaluations reported", p.Iter)
		}
	}
	last := reports[len(reports)-1]
	if last.Evals != res.Evals {
		t.Errorf("final progress evals = %d, result evals = %d", last.Evals, res.Evals)
	}
	if math.Abs(last.SimHours-res.Hours) > 1e-9 {
		t.Errorf("final progress hours = %v, result hours = %v", last.SimHours, res.Hours)
	}
	if last.FrontSize != len(res.Front) {
		t.Errorf("final progress front = %d, result front = %d", last.FrontSize, len(res.Front))
	}
}

// TestTelemetryPreservesDeterminism is the acceptance criterion: a run with
// tracer and progress enabled must be bit-identical to the same seed run
// with both disabled.
func TestTelemetryPreservesDeterminism(t *testing.T) {
	plain := Run(testPlatform(), smallOpts(11))

	var buf bytes.Buffer
	opt := smallOpts(11)
	opt.Tracer = telemetry.NewTracer(&buf)
	opt.Progress = func(Progress) {}
	traced := Run(testPlatform(), opt)
	opt.Tracer.Flush()

	if !reflect.DeepEqual(plain, traced) {
		t.Fatal("tracing/progress changed the search result")
	}
	if buf.Len() == 0 {
		t.Fatal("tracer captured no events")
	}
}

// TestRunEmitsExpectedSpans checks the trace stream contains the span
// vocabulary the ISSUE promises (MOBO iterations, SH rungs, candidate
// evals, GP fits, HV computations) with simulated-time stamps.
func TestRunEmitsExpectedSpans(t *testing.T) {
	var buf bytes.Buffer
	opt := smallOpts(5)
	opt.Tracer = telemetry.NewTracer(&buf)
	res := Run(testPlatform(), opt)
	opt.Tracer.Flush()

	type ev struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Args map[string]any `json:"args"`
	}
	count := map[string]int{}
	maxTS := 0.0
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		var e ev
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad trace line: %v\n%s", err, line)
		}
		count[e.Name]++
		if e.TS > maxTS {
			maxTS = e.TS
		}
	}
	for _, want := range []string{"mobo_iteration", "sh_rung", "candidate_eval", "gp_fit", "hypervolume", "suggest_batch"} {
		if count[want] == 0 {
			t.Errorf("no %q spans in trace; got %v", want, count)
		}
	}
	if count["mobo_iteration"] != len(res.Trace) {
		t.Errorf("mobo_iteration spans = %d, iterations = %d", count["mobo_iteration"], len(res.Trace))
	}
	// Simulated timestamps should reach the run's simulated span (µs).
	if wantUS := res.Hours * 3600 * 1e6; maxTS < wantUS/2 {
		t.Errorf("max trace ts %v µs is far below the simulated run length %v µs", maxTS, wantUS)
	}
}
