// Package core implements UNICO itself: the bi-level co-optimization of
// paper Algorithm 1. The outer level samples batches of hardware
// configurations with multi-objective Bayesian optimization
// (internal/mobo); the inner level runs the software-mapping search of each
// candidate under modified successive halving (internal/sh); the robustness
// metric R (internal/robust) joins (latency, power, area) as the fourth
// objective; and the High Fidelity Update Rule selects which samples refine
// the surrogate.
//
// Every algorithmic switch of the paper's Fig. 10 ablation is an Options
// field, so HASCO-like, SH+ChampionUpdate, MSH+ChampionUpdate and full
// UNICO are all configurations of the same Run function (the baselines
// package provides the presets).
package core

import (
	"context"
	"fmt"
	"math"

	"unico/internal/disttrace"
	"unico/internal/flightrec"
	"unico/internal/mapsearch"
	"unico/internal/mobo"
	"unico/internal/pareto"
	"unico/internal/perfprof"
	"unico/internal/ppa"
	"unico/internal/robust"
	"unico/internal/sh"
	"unico/internal/simclock"
	"unico/internal/telemetry"
)

// Platform abstracts an accelerator platform for the co-optimizer: its
// hardware design space, a factory for resumable software-mapping searches,
// and the PPA-engine cost contract. Implementations live in
// internal/platform.
type Platform interface {
	// Space is the hardware design space.
	Space() mobo.Space
	// NewJob builds a fresh software-mapping search for the hardware at x
	// over the platform's workload set.
	NewJob(x []float64, seed int64) mapsearch.Searcher
	// EvalCostSeconds is the simulated cost of one PPA evaluation.
	EvalCostSeconds() float64
	// Describe renders the hardware at x.
	Describe(x []float64) string
	// PowerCapMW is the deployment power constraint (0 = none).
	PowerCapMW() float64
	// AreaCapMM2 is the chip area constraint (0 = none).
	AreaCapMM2() float64
}

// Options parameterizes a co-optimization run. The zero value is completed
// with the paper's defaults by normalize.
type Options struct {
	// BatchSize is the hardware batch N per MOBO iteration (paper: 30 on
	// the open-source platform, 8 on Ascend-like).
	BatchSize int
	// MaxIter is the number of MOBO iterations.
	MaxIter int
	// BMax is the maximum software-mapping budget b_max per candidate
	// (paper: 300 open-source, 200 Ascend-like).
	BMax int
	// DisableSH runs every candidate to full budget (no early stopping) —
	// the HASCO-like regime of Fig. 10.
	DisableSH bool
	// MSHPromoteFrac is the AUC-promotion fraction p/N of modified
	// successive halving; 0 selects default SH. Paper: 0.15.
	MSHPromoteFrac float64
	// UseRobustness adds the sensitivity metric R as the fourth objective.
	UseRobustness bool
	// UpdateRule selects the surrogate update rule.
	UpdateRule mobo.UpdateRule
	// Workers bounds parallel mapping-search jobs (paper Fig. 6).
	Workers int
	// SearchWorkers bounds the parallel acquisition scalarizations inside
	// each MOBO suggestion step (mobo.Config.SearchWorkers). Results are
	// bit-identical for every value — it trades wall-clock time only — so
	// unlike Workers it is deliberately excluded from the checkpoint
	// fingerprint: a run checkpointed at one setting resumes cleanly at
	// another. Default 8.
	SearchWorkers int
	// Seed makes the run deterministic.
	Seed int64
	// Clock accrues simulated wall-clock time; a fresh clock is created if
	// nil.
	Clock *simclock.Clock
	// TimeBudgetHours stops the run once the simulated clock passes this
	// many hours (0 = no time cap; MaxIter still applies).
	TimeBudgetHours float64
	// Alpha is the robustness sub-optimal percentile (default 0.05).
	Alpha float64
	// Tracer receives search events as Chrome-trace spans; nil falls back
	// to telemetry.DefaultTracer() (nil = tracing off, zero overhead).
	// Tracing never influences the search: results are bit-identical with
	// and without it.
	Tracer *telemetry.Tracer
	// Progress, if non-nil, is invoked after every MOBO iteration with the
	// convergence snapshot of that moment (hypervolume, UUL, front size,
	// simulated hours). The process-wide telemetry.EmitProgress sink fires
	// regardless.
	Progress ProgressFunc
	// Flight, if non-nil, receives one flight record per completed iteration
	// (hypervolume, UUL, feasible front, SH survivor curve), emitted at the
	// same boundary as the checkpoint journal — and durably *before* it, so
	// a flight artifact is never behind the checkpoint it resumes against.
	// Like tracing and checkpointing, it never influences the search. The
	// process-wide flightrec live store (dashboard) is fed regardless.
	Flight flightrec.Sink
	// Checkpoint, if non-nil, receives a journal record after every
	// completed iteration and an atomic snapshot every CheckpointEvery
	// iterations (plus a genesis snapshot before the first). Checkpointing
	// never influences the search: results are bit-identical with and
	// without a sink.
	Checkpoint CheckpointSink
	// CheckpointEvery is the snapshot cadence in iterations (default 10).
	CheckpointEvery int
	// Resume, if non-nil, restores the run from a loaded checkpoint instead
	// of starting fresh. The checkpoint's fingerprint must match this run's
	// platform and options; on mismatch Run returns an empty Result with
	// CheckpointErr wrapping ErrResumeMismatch.
	Resume *ResumeState
}

// Progress is the per-iteration convergence snapshot delivered to
// Options.Progress.
type Progress = telemetry.SearchProgress

// ProgressFunc consumes per-iteration progress reports.
type ProgressFunc = telemetry.ProgressFunc

func (o Options) normalize() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 30
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10
	}
	if o.BMax <= 0 {
		o.BMax = 300
	}
	if o.MSHPromoteFrac < 0 {
		o.MSHPromoteFrac = 0
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.SearchWorkers <= 0 {
		o.SearchWorkers = 8
	}
	if o.Alpha <= 0 || o.Alpha >= 1 {
		o.Alpha = robust.DefaultAlpha
	}
	if o.Clock == nil {
		o.Clock = &simclock.Clock{}
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 10
	}
	return o
}

// UNICOOptions returns the paper's full UNICO configuration.
func UNICOOptions(batch, maxIter, bmax int, seed int64) Options {
	return Options{
		BatchSize:      batch,
		MaxIter:        maxIter,
		BMax:           bmax,
		MSHPromoteFrac: 0.15,
		UseRobustness:  true,
		UpdateRule:     mobo.HighFidelity,
		Workers:        8,
		Seed:           seed,
	}
}

// Candidate is one evaluated hardware configuration.
type Candidate struct {
	X           []float64
	Metrics     ppa.Metrics
	Sensitivity float64
	History     ppa.History
	// Feasible means a feasible mapping exists AND the power/area caps
	// hold; only feasible candidates enter the Pareto front.
	Feasible bool
	// Iter is the MOBO iteration that produced the candidate (1-based).
	Iter int
}

// Objectives returns the candidate's raw objective vector
// (latency, power, area[, sensitivity]).
func (c Candidate) Objectives(withR bool) []float64 {
	y := []float64{c.Metrics.LatencyMs, c.Metrics.PowerMW, c.Metrics.AreaMM2}
	if withR {
		y = append(y, c.Sensitivity)
	}
	return y
}

// TracePoint snapshots convergence after one MOBO iteration, for the
// hypervolume-vs-cost curves of Figs. 7 and 10.
type TracePoint struct {
	Iter  int
	Hours float64
	// FrontPPA holds the (latency, power, area) vectors of the feasible
	// Pareto front at this moment.
	FrontPPA [][]float64
}

// Result is the outcome of a co-optimization run.
type Result struct {
	// Front is the feasible Pareto front over (latency, power, area).
	Front []Candidate
	// All holds every candidate evaluated, in evaluation order.
	All []Candidate
	// Trace records the front after every MOBO iteration.
	Trace []TracePoint
	// Hours is the total simulated search cost.
	Hours float64
	// Evals is the total number of PPA evaluations spent.
	Evals int
	// CheckpointErr is the first checkpointing or resume failure, if any.
	// A resume fingerprint mismatch (ErrResumeMismatch) aborts the run; a
	// checkpoint write failure latches here and disables further
	// checkpointing but lets the search finish.
	CheckpointErr error
}

// penaltyMetrics stands in for candidates with no feasible mapping: finite,
// far beyond any real design, so surrogates and scalarizations stay
// well-defined.
var penaltyMetrics = ppa.Metrics{
	LatencyMs: 1e9,
	PowerMW:   1e7,
	AreaMM2:   1e5,
	EnergyUJ:  1e16,
}

// Run executes Algorithm 1 on the platform with a background context; see
// RunContext.
func Run(p Platform, opt Options) Result {
	//unicolint:allow ctxflow compatibility wrapper; cancellable callers use RunContext
	return RunContext(context.Background(), p, opt)
}

// RunContext executes Algorithm 1 on the platform. Cancelling ctx stops the
// run at the next safe point — in-flight mapping searches abort promptly,
// the partially-evaluated batch is discarded, and the Result reflects every
// iteration completed before the cancellation. With Options.Checkpoint set,
// a final snapshot captures that same completed-iteration boundary, so a
// resumed run continues bit-identically to an uninterrupted one.
func RunContext(ctx context.Context, p Platform, opt Options) Result {
	opt = opt.normalize()
	tr := opt.Tracer
	if tr == nil {
		tr = telemetry.DefaultTracer()
	}
	nObj := 3
	if opt.UseRobustness {
		nObj = 4
	}
	moboCfg := mobo.DefaultConfig(nObj)
	moboCfg.Rule = opt.UpdateRule
	moboCfg.SearchWorkers = opt.SearchWorkers

	var (
		res      Result
		explorer *mobo.Optimizer
		lastIter int
	)
	if opt.Resume != nil {
		var err error
		explorer, res, lastIter, err = resumeRun(p, opt, moboCfg, opt.Resume)
		if err != nil {
			return Result{CheckpointErr: err}
		}
		telemetry.CheckpointResumes().Inc()
	} else {
		explorer = mobo.New(p.Space(), moboCfg, opt.Seed)
	}

	// sink is nilled out after the first write failure (latched in
	// res.CheckpointErr) so one bad disk does not fail every iteration.
	sink := opt.Checkpoint
	checkpointFail := func(err error) {
		if res.CheckpointErr == nil {
			res.CheckpointErr = err
		}
		telemetry.CheckpointErrors().Inc()
		sink = nil
	}
	snapshot := func(iter int, st mobo.State, seconds float64) {
		if sink == nil {
			return
		}
		err := sink.WriteSnapshot(SnapshotRecord{
			Fingerprint:  fingerprintOf(p, opt),
			Iter:         iter,
			Explorer:     st,
			All:          res.All,
			Trace:        res.Trace,
			Evals:        res.Evals,
			ClockSeconds: seconds,
		})
		if err != nil {
			checkpointFail(fmt.Errorf("core: write snapshot: %w", err))
			return
		}
		telemetry.CheckpointSnapshots().Inc()
	}
	// The stream position and clock reading at the end of the last
	// *completed* iteration: a cancellation mid-iteration must not leak the
	// discarded batch's RNG draws or clock advances into the final
	// snapshot, or the resumed run would diverge from an uninterrupted one.
	lastRNGPos := explorer.RNGPos()
	lastSeconds := opt.Clock.Seconds()
	if opt.Resume == nil {
		// Genesis snapshot: guarantees the checkpoint carries a fingerprint
		// and explorer state even if the process dies before iteration 1.
		snapshot(0, explorer.Export(), lastSeconds)
	}

	shCfg := sh.Config{
		Eta:             2,
		KFrac:           0.5,
		PFrac:           opt.MSHPromoteFrac,
		BMax:            opt.BMax,
		Workers:         opt.Workers,
		EvalCostSeconds: p.EvalCostSeconds(),
		Clock:           opt.Clock,
		Tracer:          tr,
	}
	if opt.DisableSH {
		// Degenerate schedule: everyone runs to full budget in one round.
		shCfg.KFrac = 0.999
		shCfg.PFrac = 0
	}

	// Phase attribution: per-iteration window deltas from the active
	// profiler. The window is drained at each loop top, so resume-replay and
	// inter-iteration work never leak into a recorded iteration's phase tree
	// — which is what keeps flight records bit-identical across kill/resume.
	prof := perfprof.Active()

	// One distributed-trace run per core.Run call: iteration spans get
	// deterministic IDs ("r<run>-it<iter>") whether or not tracing is on.
	disttrace.BeginRun()

	for iter := lastIter + 1; iter <= opt.MaxIter; iter++ {
		if ctx.Err() != nil {
			break
		}
		if opt.TimeBudgetHours > 0 && opt.Clock.Hours() >= opt.TimeBudgetHours {
			break
		}
		prof.TakeWindow() // discard activity since the previous iteration
		endTrace, traceSpanID := disttrace.BeginIteration(iter)
		pctx, phaseIter := prof.StartClocked(ctx, "iteration", opt.Clock)
		iterSpan := tr.StartSpan("mobo_iteration", "core", 0, opt.Clock.Seconds())
		suggestSpan := tr.StartSpan("suggest_batch", "mobo", 0, opt.Clock.Seconds())
		_, phaseSuggest := prof.StartClocked(pctx, "suggest", opt.Clock)
		xs := explorer.SuggestBatch(opt.BatchSize)
		phaseSuggest.End()
		suggestSpan.End(opt.Clock.Seconds(), map[string]any{"batch": len(xs)})
		if len(xs) == 0 {
			phaseIter.End()
			iterSpan.End(opt.Clock.Seconds(), map[string]any{"iter": iter, "exhausted": true})
			endTrace()
			break
		}
		jobs := make([]mapsearch.Searcher, len(xs))
		for i, x := range xs {
			jobs[i] = p.NewJob(x, opt.Seed+int64(iter)*1_000_000+int64(i))
		}

		var outcome sh.Outcome
		if opt.DisableSH {
			_, phaseFull := prof.StartClocked(pctx, "sh.full_budget", opt.Clock)
			outcome = runFullBudget(jobs, shCfg)
			phaseFull.End()
		} else {
			outcome = sh.Run(pctx, jobs, shCfg)
		}
		if ctx.Err() != nil {
			// The batch was interrupted mid-search: its evaluations are
			// incomplete and must not enter the result, the surrogate or
			// the checkpoint. Discard it; resume re-runs the iteration.
			closeJobs(jobs)
			phaseIter.End()
			iterSpan.End(opt.Clock.Seconds(), map[string]any{"iter": iter, "canceled": true})
			endTrace()
			break
		}
		res.Evals += outcome.TotalEvals

		obs := make([]mobo.Observation, len(xs))
		batchFeasible := 0
		for i, x := range xs {
			hist := outcome.Histories[i]
			met, ok := jobs[i].Best()
			cand := Candidate{X: x, History: hist, Iter: iter}
			if ok {
				cand.Metrics = met
				cand.Sensitivity = robust.Sensitivity(jobs[i].RawHistory(), opt.Alpha)
				cand.Feasible = withinCaps(p, met)
			} else {
				cand.Metrics = penaltyMetrics
				cand.Sensitivity = robust.RInfeasible
			}
			if cand.Feasible {
				batchFeasible++
			}
			res.All = append(res.All, cand)
			obs[i] = mobo.Observation{X: x, Y: NormalizeObjectives(cand.Objectives(opt.UseRobustness))}
		}
		closeJobs(jobs)
		fitSpan := tr.StartSpan("gp_fit", "mobo", 0, opt.Clock.Seconds())
		_, phaseUpdate := prof.StartClocked(pctx, "update", opt.Clock)
		admitted := explorer.Update(obs)
		// Surrogate refit overhead on the master (paper Fig. 6b): seconds,
		// negligible next to PPA evaluation but accounted for.
		opt.Clock.Advance(5)
		phaseUpdate.End()
		fitSpan.End(opt.Clock.Seconds(), map[string]any{
			"admitted": admitted, "train": explorer.TrainSize(),
		})

		res.Front = paretoFront(res.All)
		res.Trace = append(res.Trace, TracePoint{
			Iter:     iter,
			Hours:    opt.Clock.Hours(),
			FrontPPA: frontPPA(res.Front),
		})
		telemetry.MOBOIterations().Inc()

		hvSpan := tr.StartSpan("hypervolume", "core", 0, opt.Clock.Seconds())
		_, phaseHV := prof.Start(pctx, "hypervolume")
		hv := runningHypervolume(res.Front)
		phaseHV.End()
		hvSpan.End(opt.Clock.Seconds(), map[string]any{"hv": hv, "front": len(res.Front)})
		phaseIter.End()
		// End the iteration's trace span before recording the flight line,
		// so the span log's end event is durable by the time the flight
		// record that references it is.
		endTrace()

		// Flight record at the completed-iteration boundary, durably written
		// BEFORE the checkpoint journal entry: at any crash the artifact then
		// covers every journaled iteration, which is what lets flightrec.Resume
		// stitch at the replay boundary without gaps.
		flightIt := flightrec.Iteration{
			Iter:          iter,
			SimHours:      opt.Clock.Hours(),
			Hypervolume:   hv,
			UUL:           flightrec.ExtFloat(explorer.UUL()),
			Evals:         res.Evals,
			Admitted:      admitted,
			TrainSize:     explorer.TrainSize(),
			BatchFeasible: batchFeasible,
			Best:          bestObjectives(res.Front),
			Front:         frontPPA(res.Front),
			RungAlive:     outcome.RungAlive,
			Phases:        prof.TakeWindow(),
			TraceSpan:     traceSpanID,
		}
		if opt.Flight != nil {
			opt.Flight.RecordIteration(flightIt)
		}
		flightrec.EmitLive(flightIt)

		// The iteration is complete: journal it, then snapshot on cadence.
		lastIter = iter
		lastRNGPos = explorer.RNGPos()
		lastSeconds = opt.Clock.Seconds()
		if sink != nil {
			err := sink.AppendIteration(IterationRecord{
				Iter:         iter,
				Suggested:    xs,
				Observations: obs,
				Candidates:   res.All[len(res.All)-len(xs):],
				Evals:        res.Evals,
				ClockSeconds: lastSeconds,
				RNGPos:       lastRNGPos,
			})
			if err != nil {
				checkpointFail(fmt.Errorf("core: journal iteration %d: %w", iter, err))
			} else {
				telemetry.CheckpointRecords().Inc()
				if iter%opt.CheckpointEvery == 0 {
					snapshot(iter, explorer.Export(), lastSeconds)
				}
			}
		}

		prog := Progress{
			Iter:        iter,
			SimHours:    opt.Clock.Hours(),
			Hypervolume: hv,
			UUL:         explorer.UUL(),
			FrontSize:   len(res.Front),
			Evals:       res.Evals,
			Admitted:    admitted,
		}
		if opt.Progress != nil {
			opt.Progress(prog)
		}
		telemetry.EmitProgress(prog)
		iterSpan.End(opt.Clock.Seconds(), map[string]any{
			"iter": iter, "front": len(res.Front), "evals": res.Evals, "hv": hv,
		})
	}
	// Final snapshot at the last completed-iteration boundary, with the RNG
	// position and clock reading of that boundary (not of any discarded
	// partial batch), so the checkpoint resumes bit-identically.
	if sink != nil {
		st := explorer.Export()
		st.RNGPos = lastRNGPos
		snapshot(lastIter, st, lastSeconds)
	}
	res.Hours = opt.Clock.Hours()
	return res
}

// closeJobs releases jobs that hold external resources (remote jobs delete
// their worker-side state so worker memory does not grow with search
// length); local searchers implement no Close and are skipped.
func closeJobs(jobs []mapsearch.Searcher) {
	for _, j := range jobs {
		if c, ok := j.(interface{ Close() error }); ok {
			_ = c.Close()
		}
	}
}

// runningHypervolume is the live convergence signal reported to Progress:
// the feasible front's hypervolume against a running nadir reference
// (componentwise max of the front's PPA points, ×1.1). The reference moves
// as the front grows, so the value is comparable within a run but not
// across runs — the offline curves of internal/experiments fix a common
// reference instead.
func runningHypervolume(front []Candidate) float64 {
	if len(front) == 0 {
		return 0
	}
	pts := frontPPA(front)
	ref := make([]float64, len(pts[0]))
	for _, p := range pts {
		for j, v := range p {
			if v > ref[j] {
				ref[j] = v
			}
		}
	}
	for j := range ref {
		ref[j] *= 1.1
		if ref[j] <= 0 {
			ref[j] = 1e-9
		}
	}
	return pareto.Hypervolume(pts, ref)
}

// runFullBudget advances every job to BMax with the configured parallelism,
// charging the clock — the no-early-stopping regime.
func runFullBudget(jobs []mapsearch.Searcher, cfg sh.Config) sh.Outcome {
	// A single-round schedule: reuse sh.Run with one round by passing a
	// candidate list it cannot halve. sh.Run computes rounds from N, so we
	// instead advance directly.
	simStart := 0.0
	if cfg.Clock != nil {
		simStart = cfg.Clock.Seconds()
	}
	// Count what each job actually spends, not the planned budget: a dead
	// remote job never advances, and phantom budget would inflate the
	// result's Evals.
	total := 0
	for _, j := range jobs {
		before := j.Spent()
		j.Advance(cfg.BMax)
		total += j.Spent() - before
	}
	if cfg.Clock != nil && len(jobs) > 0 {
		cfg.Clock.AdvanceParallel(len(jobs), float64(cfg.BMax)*cfg.EvalCostSeconds, cfg.Workers)
	}
	if cfg.Tracer != nil && cfg.Clock != nil {
		simEnd := cfg.Clock.Seconds()
		cfg.Tracer.Complete("full_budget_round", "sh", 0, simStart, simEnd,
			map[string]any{"candidates": len(jobs), "budget": cfg.BMax})
		for i := range jobs {
			cfg.Tracer.Complete("candidate_eval", "sh", int64(i+1), simStart, simEnd,
				map[string]any{"candidate": i, "budget": cfg.BMax})
		}
	}
	hist := make([]ppa.History, len(jobs))
	surv := make([]int, len(jobs))
	for i, j := range jobs {
		hist[i] = j.History()
		surv[i] = i
	}
	return sh.Outcome{Histories: hist, Survivors: surv, TotalEvals: total, Rounds: 1,
		RungAlive: []int{len(jobs)}}
}

// withinCaps applies the platform's power and area constraints.
func withinCaps(p Platform, m ppa.Metrics) bool {
	if cap := p.PowerCapMW(); cap > 0 && m.PowerMW > cap {
		return false
	}
	if cap := p.AreaCapMM2(); cap > 0 && m.AreaMM2 > cap {
		return false
	}
	return true
}

// paretoFront extracts the feasible non-dominated candidates over
// (latency, power, area).
func paretoFront(all []Candidate) []Candidate {
	var feas []Candidate
	var pts [][]float64
	for _, c := range all {
		if c.Feasible {
			feas = append(feas, c)
			pts = append(pts, c.Objectives(false))
		}
	}
	if len(feas) == 0 {
		return nil
	}
	idx := pareto.Front(pts)
	front := make([]Candidate, len(idx))
	for i, j := range idx {
		front[i] = feas[j]
	}
	return front
}

// bestObjectives is the componentwise best (minimum) of each PPA objective
// over the feasible front — the "objective bests" line of a flight record.
func bestObjectives(front []Candidate) []float64 {
	if len(front) == 0 {
		return nil
	}
	best := append([]float64(nil), front[0].Objectives(false)...)
	for _, c := range front[1:] {
		for j, v := range c.Objectives(false) {
			if v < best[j] {
				best[j] = v
			}
		}
	}
	return best
}

// frontPPA extracts the PPA vectors of a front.
func frontPPA(front []Candidate) [][]float64 {
	out := make([][]float64, len(front))
	for i, c := range front {
		out[i] = c.Objectives(false)
	}
	return out
}

// Representative returns the front candidate closest (normalized Euclidean)
// to the origin — the design Tables 1 and 2 report — or false if the front
// is empty.
func Representative(front []Candidate) (Candidate, bool) {
	if len(front) == 0 {
		return Candidate{}, false
	}
	pts := make([][]float64, len(front))
	for i, c := range front {
		pts[i] = c.Objectives(false)
	}
	return front[pareto.MinEuclid(pts)], true
}

// Hypervolume returns the hypervolume of a result's front with respect to
// ref over (latency, power, area).
func (r Result) Hypervolume(ref []float64) float64 {
	return pareto.Hypervolume(frontPPA(r.Front), ref)
}

func (r Result) String() string {
	return fmt.Sprintf("core.Result{front=%d all=%d evals=%d hours=%.2f}",
		len(r.Front), len(r.All), r.Evals, r.Hours)
}

// NormalizeObjectives guards against non-finite objective values before they
// reach the surrogate (paranoia against cost-model edge cases).
func NormalizeObjectives(y []float64) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		switch {
		case math.IsNaN(v) || math.IsInf(v, 0):
			v = 1e12
		case v <= 0:
			// A zero objective (ideal sensitivity R = 0) stays meaningful
			// but positive for the log-space surrogate.
			v = 1e-9
		}
		out[i] = v
	}
	return out
}
