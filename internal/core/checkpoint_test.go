package core

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"unico/internal/mapsearch"
	"unico/internal/robust"
)

// memSink is the in-memory CheckpointSink used to test the checkpoint
// semantics without filesystem involvement (internal/checkpoint tests the
// file-backed implementation against the same contract).
type memSink struct {
	recs      []IterationRecord
	snaps     []SnapshotRecord
	appendErr error
	snapErr   error
}

func (s *memSink) AppendIteration(rec IterationRecord) error {
	if s.appendErr != nil {
		return s.appendErr
	}
	s.recs = append(s.recs, rec)
	return nil
}

func (s *memSink) WriteSnapshot(snap SnapshotRecord) error {
	if s.snapErr != nil {
		return s.snapErr
	}
	s.snaps = append(s.snaps, snap)
	return nil
}

// resumeState mirrors what checkpoint.Load reconstructs from disk: the
// newest snapshot plus the journal records past it.
func (s *memSink) resumeState() *ResumeState {
	rs := &ResumeState{Snapshot: s.snaps[len(s.snaps)-1]}
	for _, rec := range s.recs {
		if rec.Iter > rs.Snapshot.Iter {
			rs.Tail = append(rs.Tail, rec)
		}
	}
	return rs
}

// sameResult asserts two runs produced bit-identical results (the keystone
// guarantee: checkpointing and resuming never perturb the search).
func sameResult(t *testing.T, want, got Result) {
	t.Helper()
	if want.Evals != got.Evals {
		t.Errorf("Evals = %d, want %d", got.Evals, want.Evals)
	}
	if want.Hours != got.Hours {
		t.Errorf("Hours = %v, want %v", got.Hours, want.Hours)
	}
	if !reflect.DeepEqual(want.All, got.All) {
		t.Errorf("All diverged: %d vs %d candidates", len(got.All), len(want.All))
	}
	if !reflect.DeepEqual(want.Front, got.Front) {
		t.Errorf("Front diverged: %d vs %d candidates", len(got.Front), len(want.Front))
	}
	if !reflect.DeepEqual(want.Trace, got.Trace) {
		t.Errorf("Trace diverged: %d vs %d points", len(got.Trace), len(want.Trace))
	}
}

func TestCheckpointSinkDoesNotPerturbSearch(t *testing.T) {
	opt := smallOpts(3)
	ref := Run(testPlatform(), opt)

	ms := &memSink{}
	copt := opt
	copt.Checkpoint = ms
	copt.CheckpointEvery = 2
	got := Run(testPlatform(), copt)
	if got.CheckpointErr != nil {
		t.Fatalf("CheckpointErr = %v", got.CheckpointErr)
	}
	sameResult(t, ref, got)

	if len(ms.recs) != opt.MaxIter {
		t.Fatalf("journaled %d iterations, want %d", len(ms.recs), opt.MaxIter)
	}
	// Genesis, the cadence snapshot at iteration 2, and the final snapshot.
	if len(ms.snaps) != 3 {
		t.Fatalf("wrote %d snapshots, want 3", len(ms.snaps))
	}
	if ms.snaps[0].Iter != 0 || ms.snaps[1].Iter != 2 || ms.snaps[2].Iter != opt.MaxIter {
		t.Errorf("snapshot iterations = %d,%d,%d, want 0,2,%d",
			ms.snaps[0].Iter, ms.snaps[1].Iter, ms.snaps[2].Iter, opt.MaxIter)
	}
	if ms.recs[0].Evals <= 0 || ms.recs[len(ms.recs)-1].Evals != got.Evals {
		t.Errorf("journal eval accounting wrong: first %d, last %d, want cumulative up to %d",
			ms.recs[0].Evals, ms.recs[len(ms.recs)-1].Evals, got.Evals)
	}
}

// TestResumeFromSnapshotBitIdentical is the keystone: cancel after iteration
// k, resume from the final snapshot, and the completed run must be
// bit-identical to an uninterrupted run of the same seed.
func TestResumeFromSnapshotBitIdentical(t *testing.T) {
	opt := smallOpts(5)
	opt.MaxIter = 4
	ref := Run(testPlatform(), opt)

	ms := &memSink{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	iopt := opt
	iopt.Checkpoint = ms
	iopt.CheckpointEvery = 2
	iopt.Progress = func(p Progress) {
		if p.Iter == 2 {
			cancel()
		}
	}
	partial := RunContext(ctx, testPlatform(), iopt)
	if partial.CheckpointErr != nil {
		t.Fatalf("CheckpointErr = %v", partial.CheckpointErr)
	}
	if len(partial.All) != 2*opt.BatchSize {
		t.Fatalf("interrupted run kept %d candidates, want %d (2 completed iterations)",
			len(partial.All), 2*opt.BatchSize)
	}

	rs := ms.resumeState()
	if rs.LastIter() != 2 {
		t.Fatalf("resume state covers iteration %d, want 2", rs.LastIter())
	}
	ropt := opt
	ropt.Resume = rs
	got := Run(testPlatform(), ropt)
	if got.CheckpointErr != nil {
		t.Fatalf("CheckpointErr = %v", got.CheckpointErr)
	}
	sameResult(t, ref, got)
}

// TestResumeReplaysJournalTail resumes from the genesis snapshot with every
// completed iteration only in the journal — the post-crash shape when the
// process died before any cadence snapshot landed.
func TestResumeReplaysJournalTail(t *testing.T) {
	opt := smallOpts(5)
	opt.MaxIter = 4

	ref := Run(testPlatform(), opt)

	ms := &memSink{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	iopt := opt
	iopt.Checkpoint = ms
	iopt.Progress = func(p Progress) {
		if p.Iter == 2 {
			cancel()
		}
	}
	RunContext(ctx, testPlatform(), iopt)

	rs := &ResumeState{Snapshot: ms.snaps[0], Tail: ms.recs}
	if rs.Snapshot.Iter != 0 || len(rs.Tail) != 2 {
		t.Fatalf("unexpected crash shape: snapshot iter %d, %d journal records",
			rs.Snapshot.Iter, len(rs.Tail))
	}
	ropt := opt
	ropt.Resume = rs
	got := Run(testPlatform(), ropt)
	if got.CheckpointErr != nil {
		t.Fatalf("CheckpointErr = %v", got.CheckpointErr)
	}
	sameResult(t, ref, got)
}

// cancelOnJobPlatform cancels a context when its NewJob call counter reaches
// a threshold — an abort arriving while a batch is being dispatched.
type cancelOnJobPlatform struct {
	Platform
	cancel context.CancelFunc
	after  int32
	calls  int32
}

func (p *cancelOnJobPlatform) NewJob(x []float64, seed int64) mapsearch.Searcher {
	if atomic.AddInt32(&p.calls, 1) == p.after {
		p.cancel()
	}
	return p.Platform.NewJob(x, seed)
}

// TestCancelMidIterationDiscardsPartialBatch pins the harder cancellation
// window: the explorer has already drawn iteration k+1's suggestions when
// the abort lands, so the discarded batch's RNG draws must not leak into the
// final snapshot.
func TestCancelMidIterationDiscardsPartialBatch(t *testing.T) {
	opt := smallOpts(8)
	opt.MaxIter = 4
	ref := Run(testPlatform(), opt)

	ms := &memSink{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cp := &cancelOnJobPlatform{
		Platform: testPlatform(),
		cancel:   cancel,
		after:    int32(2*opt.BatchSize + 1), // first job of iteration 3
	}
	iopt := opt
	iopt.Checkpoint = ms
	partial := RunContext(ctx, cp, iopt)
	if partial.CheckpointErr != nil {
		t.Fatalf("CheckpointErr = %v", partial.CheckpointErr)
	}
	if len(partial.All) != 2*opt.BatchSize {
		t.Fatalf("partial batch leaked: %d candidates, want %d", len(partial.All), 2*opt.BatchSize)
	}

	final := ms.snaps[len(ms.snaps)-1]
	if final.Iter != 2 {
		t.Fatalf("final snapshot at iteration %d, want 2", final.Iter)
	}
	if final.Explorer.RNGPos != ms.recs[1].RNGPos {
		t.Fatalf("final snapshot RNG position %d leaked the discarded batch's draws (iteration-2 boundary is %d)",
			final.Explorer.RNGPos, ms.recs[1].RNGPos)
	}
	if final.ClockSeconds != ms.recs[1].ClockSeconds {
		t.Fatalf("final snapshot clock %v, want the iteration-2 boundary %v",
			final.ClockSeconds, ms.recs[1].ClockSeconds)
	}

	// Resume on the same wrapper platform type (the fingerprint includes the
	// platform's concrete type), with a threshold that never fires.
	ropt := opt
	ropt.Resume = ms.resumeState()
	got := Run(&cancelOnJobPlatform{Platform: testPlatform(), cancel: func() {}, after: -1}, ropt)
	if got.CheckpointErr != nil {
		t.Fatalf("CheckpointErr = %v", got.CheckpointErr)
	}
	sameResult(t, ref, got)
}

func TestResumeFingerprintMismatch(t *testing.T) {
	opt := smallOpts(5)
	ms := &memSink{}
	copt := opt
	copt.Checkpoint = ms
	Run(testPlatform(), copt)

	other := smallOpts(6) // different seed: a different trajectory entirely
	other.Resume = ms.resumeState()
	res := Run(testPlatform(), other)
	if !errors.Is(res.CheckpointErr, ErrResumeMismatch) {
		t.Fatalf("CheckpointErr = %v, want ErrResumeMismatch", res.CheckpointErr)
	}
	if len(res.All) != 0 || len(res.Front) != 0 {
		t.Errorf("mismatched resume still produced candidates: %v", res)
	}
}

// TestCheckpointWriteFailureLatchesAndContinues: one bad disk write must not
// kill the search — the error latches, the sink is disabled, and the result
// is bit-identical to an uncheckpointed run.
func TestCheckpointWriteFailureLatchesAndContinues(t *testing.T) {
	opt := smallOpts(4)
	ref := Run(testPlatform(), opt)

	ms := &memSink{appendErr: errors.New("disk full")}
	copt := opt
	copt.Checkpoint = ms
	got := Run(testPlatform(), copt)
	if got.CheckpointErr == nil {
		t.Fatal("append failure was not latched in CheckpointErr")
	}
	got.CheckpointErr = nil
	sameResult(t, ref, got)
	if len(ms.recs) != 0 {
		t.Errorf("failed sink still accumulated %d records", len(ms.recs))
	}
	// Only the genesis snapshot landed before the first append disabled the
	// sink.
	if len(ms.snaps) != 1 {
		t.Errorf("disabled sink still received %d snapshots, want 1 (genesis)", len(ms.snaps))
	}
}

// infeasiblePlatform yields jobs that never find a feasible mapping,
// exercising the penalty path of Algorithm 1.
type infeasiblePlatform struct{ Platform }

func (p infeasiblePlatform) NewJob(x []float64, seed int64) mapsearch.Searcher {
	return stuckSearcher{}
}

func TestInfeasibleCandidatesTakePenaltyPath(t *testing.T) {
	opt := smallOpts(9)
	opt.MaxIter = 2
	ms := &memSink{}
	opt.Checkpoint = ms
	res := Run(infeasiblePlatform{testPlatform()}, opt)
	if res.CheckpointErr != nil {
		t.Fatalf("CheckpointErr = %v", res.CheckpointErr)
	}
	if len(res.All) != 2*opt.BatchSize {
		t.Fatalf("evaluated %d candidates, want %d", len(res.All), 2*opt.BatchSize)
	}
	for i, c := range res.All {
		if c.Feasible {
			t.Fatalf("candidate %d marked feasible with no feasible mapping", i)
		}
		if c.Metrics != penaltyMetrics {
			t.Errorf("candidate %d metrics = %+v, want the penalty sentinel", i, c.Metrics)
		}
		if c.Sensitivity != robust.RInfeasible {
			t.Errorf("candidate %d sensitivity = %v, want RInfeasible", i, c.Sensitivity)
		}
	}
	if len(res.Front) != 0 {
		t.Errorf("infeasible-only run produced a front of %d", len(res.Front))
	}
	if res.Evals != 0 {
		t.Errorf("stuck jobs charged %d evaluations, want 0", res.Evals)
	}
	// Penalty candidates flow into the journal like any others.
	if len(ms.recs) != 2 || ms.recs[0].Candidates[0].Metrics != penaltyMetrics {
		t.Errorf("journal did not carry the penalty candidates")
	}
}

func TestCanceledContextYieldsEmptyResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ms := &memSink{}
	opt := smallOpts(2)
	opt.Checkpoint = ms
	res := RunContext(ctx, testPlatform(), opt)
	if len(res.All) != 0 || res.Evals != 0 || res.Hours != 0 {
		t.Fatalf("pre-canceled run still did work: %v", res)
	}
	// Genesis and final snapshot both pin iteration 0, so a later -resume
	// starts from scratch deterministically.
	if len(ms.snaps) != 2 || ms.snaps[0].Iter != 0 || ms.snaps[1].Iter != 0 {
		t.Errorf("snapshots = %+v, want two iteration-0 snapshots", len(ms.snaps))
	}
}
