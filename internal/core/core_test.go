package core

import (
	"testing"

	"unico/internal/hw"
	"unico/internal/mapsearch"
	"unico/internal/mobo"
	"unico/internal/pareto"
	"unico/internal/platform"
	"unico/internal/ppa"
	"unico/internal/sh"
	"unico/internal/simclock"
	"unico/internal/workload"
)

func testPlatform() Platform {
	return platform.NewSpatial(hw.Edge,
		[]workload.Workload{workload.MobileNetV3Small()}, mapsearch.FlexTensorLike)
}

func smallOpts(seed int64) Options {
	opt := UNICOOptions(6, 3, 20, seed)
	opt.Workers = 4
	return opt
}

func TestRunProducesFeasibleFront(t *testing.T) {
	res := Run(testPlatform(), smallOpts(1))
	if len(res.All) == 0 {
		t.Fatal("no candidates evaluated")
	}
	if len(res.Front) == 0 {
		t.Fatal("empty Pareto front")
	}
	for _, c := range res.Front {
		if !c.Feasible {
			t.Errorf("infeasible candidate on the front: %+v", c.Metrics)
		}
		if c.Metrics.PowerMW > hw.Edge.PowerCapMW() {
			t.Errorf("front candidate violates the power cap: %v", c.Metrics.PowerMW)
		}
	}
	// The front must be mutually non-dominated over (latency, power, area).
	pts := make([][]float64, len(res.Front))
	for i, c := range res.Front {
		pts[i] = c.Objectives(false)
	}
	for i := range pts {
		for j := range pts {
			if i != j && pareto.Dominates(pts[i], pts[j]) {
				t.Errorf("front point %d dominates front point %d", i, j)
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(testPlatform(), smallOpts(7))
	b := Run(testPlatform(), smallOpts(7))
	if len(a.All) != len(b.All) || a.Evals != b.Evals {
		t.Fatalf("structure diverged: %v vs %v", a, b)
	}
	for i := range a.All {
		if a.All[i].Metrics != b.All[i].Metrics {
			t.Fatalf("candidate %d diverged: %+v vs %+v", i, a.All[i].Metrics, b.All[i].Metrics)
		}
	}
}

func TestTraceMonotoneHours(t *testing.T) {
	res := Run(testPlatform(), smallOpts(2))
	if len(res.Trace) == 0 {
		t.Fatal("no trace")
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Hours < res.Trace[i-1].Hours {
			t.Errorf("trace hours decreased at %d", i)
		}
		if res.Trace[i].Iter != res.Trace[i-1].Iter+1 {
			t.Errorf("trace iterations not consecutive at %d", i)
		}
	}
	if res.Hours <= 0 {
		t.Error("no simulated cost accrued")
	}
}

func TestDisableSHSpendsFullBudget(t *testing.T) {
	opt := smallOpts(3)
	opt.DisableSH = true
	opt.BatchSize = 4
	opt.MaxIter = 2
	res := Run(testPlatform(), opt)
	// Every candidate runs to BMax: evals = iters * batch * bmax.
	want := 2 * 4 * opt.BMax
	if res.Evals != want {
		t.Errorf("Evals = %d, want %d (full budget)", res.Evals, want)
	}
}

func TestSHSpendsLess(t *testing.T) {
	full := smallOpts(4)
	full.DisableSH = true
	early := smallOpts(4)
	a := Run(testPlatform(), full)
	b := Run(testPlatform(), early)
	if b.Evals >= a.Evals {
		t.Errorf("successive halving spent %d >= full budget %d", b.Evals, a.Evals)
	}
}

func TestSequentialCostsMoreWallClock(t *testing.T) {
	seq := smallOpts(5)
	seq.Workers = 1
	seq.DisableSH = true
	par := smallOpts(5)
	par.Workers = 8
	par.DisableSH = true
	a := Run(testPlatform(), seq)
	b := Run(testPlatform(), par)
	if b.Hours >= a.Hours {
		t.Errorf("parallel hours %v >= sequential %v", b.Hours, a.Hours)
	}
}

func TestTimeBudgetStopsEarly(t *testing.T) {
	opt := smallOpts(6)
	opt.MaxIter = 50
	opt.TimeBudgetHours = 0.001
	res := Run(testPlatform(), opt)
	if len(res.Trace) >= 50 {
		t.Errorf("time budget ignored: %d iterations ran", len(res.Trace))
	}
}

func TestRobustnessObjectiveRecorded(t *testing.T) {
	res := Run(testPlatform(), smallOpts(8))
	seen := false
	for _, c := range res.All {
		if c.Feasible && c.Sensitivity >= 0 {
			seen = true
		}
		if y := c.Objectives(true); len(y) != 4 {
			t.Fatalf("Objectives(withR) length %d", len(y))
		}
		if y := c.Objectives(false); len(y) != 3 {
			t.Fatalf("Objectives length %d", len(y))
		}
	}
	if !seen {
		t.Error("no feasible candidate with a sensitivity value")
	}
}

func TestRepresentative(t *testing.T) {
	if _, ok := Representative(nil); ok {
		t.Error("Representative of empty front succeeded")
	}
	res := Run(testPlatform(), smallOpts(9))
	rep, ok := Representative(res.Front)
	if !ok {
		t.Fatal("no representative")
	}
	if !rep.Feasible {
		t.Error("representative infeasible")
	}
}

func TestHypervolumeOfResult(t *testing.T) {
	res := Run(testPlatform(), smallOpts(10))
	ref := []float64{1e6, 1e6, 1e4}
	if hv := res.Hypervolume(ref); hv <= 0 {
		t.Errorf("Hypervolume = %v", hv)
	}
}

func TestNormalizeObjectives(t *testing.T) {
	in := []float64{1, 0, -5}
	out := NormalizeObjectives(in)
	if out[0] != 1 {
		t.Errorf("positive value changed: %v", out)
	}
	if out[1] <= 0 || out[2] <= 0 {
		t.Errorf("non-positive values not floored: %v", out)
	}
}

func TestOptionsNormalize(t *testing.T) {
	opt := Options{}.normalize()
	if opt.BatchSize != 30 || opt.BMax != 300 || opt.Clock == nil {
		t.Errorf("defaults wrong: %+v", opt)
	}
}

func TestUNICOOptionsMatchPaper(t *testing.T) {
	opt := UNICOOptions(30, 10, 300, 1)
	if opt.MSHPromoteFrac != 0.15 {
		t.Errorf("p/N = %v, want 0.15", opt.MSHPromoteFrac)
	}
	if !opt.UseRobustness {
		t.Error("robustness objective off")
	}
	if opt.UpdateRule != mobo.HighFidelity {
		t.Error("update rule not high-fidelity")
	}
}

func TestExternalClockShared(t *testing.T) {
	clk := &simclock.Clock{}
	opt := smallOpts(11)
	opt.Clock = clk
	Run(testPlatform(), opt)
	if clk.Hours() <= 0 {
		t.Error("external clock not advanced")
	}
}

// spendCounter is a minimal searcher that just tallies advanced budget.
type spendCounter struct{ spent int }

func (s *spendCounter) Advance(b int)             { s.spent += b }
func (s *spendCounter) History() ppa.History      { return nil }
func (s *spendCounter) RawHistory() ppa.History   { return nil }
func (s *spendCounter) Spent() int                { return s.spent }
func (s *spendCounter) Best() (ppa.Metrics, bool) { return ppa.Metrics{}, false }

// stuckSearcher never advances, like a remote job on a dead worker.
type stuckSearcher struct{}

func (stuckSearcher) Advance(int)               {}
func (stuckSearcher) History() ppa.History      { return nil }
func (stuckSearcher) RawHistory() ppa.History   { return nil }
func (stuckSearcher) Spent() int                { return 0 }
func (stuckSearcher) Best() (ppa.Metrics, bool) { return ppa.Metrics{}, false }

// TestRunFullBudgetCountsActualSpend pins the no-early-stopping accounting:
// a job that cannot advance contributes zero evaluations, not BMax.
func TestRunFullBudgetCountsActualSpend(t *testing.T) {
	jobs := []mapsearch.Searcher{&spendCounter{}, stuckSearcher{}}
	out := runFullBudget(jobs, sh.Config{BMax: 5, Workers: 2})
	if out.TotalEvals != 5 {
		t.Errorf("TotalEvals = %d, want 5 (one live job x BMax)", out.TotalEvals)
	}
}
