package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records search events as Chrome trace_event objects, one JSON
// object per line (JSONL). Each line is a complete "X" (complete span) or
// "i" (instant) event whose timeline (ts/dur, microseconds) runs on the
// *simulated* clock, so a multi-hour co-search renders at its true simulated
// proportions in a trace viewer; the real elapsed milliseconds ride along in
// args.real_ms. `jq -s . trace.jsonl` converts the stream to the JSON-array
// form chrome://tracing and Perfetto ingest directly.
//
// A nil *Tracer is a valid disabled tracer: every method no-ops, which is
// the zero-overhead fast path the instrumented packages rely on.
type Tracer struct {
	mu    sync.Mutex
	w     *bufio.Writer
	enc   *json.Encoder
	start time.Time
}

// traceEvent is one Chrome trace_event object.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTracer returns a tracer writing JSONL events to w.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	t := &Tracer{w: bw, enc: json.NewEncoder(bw), start: time.Now()} //unicolint:allow detclock trace events carry real time alongside simulated time
	t.emit(traceEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "unico co-search (simulated time)"},
	})
	return t
}

func (t *Tracer) emit(ev traceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = t.enc.Encode(ev) // Encode appends the newline: one event per line
}

// Span is an in-flight span started by StartSpan. A nil *Span no-ops.
type Span struct {
	t         *Tracer
	name, cat string
	tid       int64
	simStart  float64
	realStart time.Time
}

// StartSpan opens a span at simulated time simSec (seconds) on the virtual
// thread tid. Returns nil — still safe to End — when the tracer is nil.
func (t *Tracer) StartSpan(name, cat string, tid int64, simSec float64) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, cat: cat, tid: tid, simStart: simSec, realStart: time.Now()} //unicolint:allow detclock trace events carry real time alongside simulated time
}

// End closes the span at simulated time simSec, attaching args (real
// elapsed milliseconds and the simulated end time in hours are added).
func (s *Span) End(simSec float64, args map[string]any) {
	if s == nil {
		return
	}
	if args == nil {
		args = map[string]any{}
	}
	args["real_ms"] = float64(time.Since(s.realStart)) / float64(time.Millisecond) //unicolint:allow detclock trace events carry real time alongside simulated time
	args["sim_hours"] = simSec / 3600
	dur := (simSec - s.simStart) * 1e6
	if dur < 0 {
		dur = 0
	}
	s.t.emit(traceEvent{
		Name: s.name, Cat: s.cat, Ph: "X",
		TS: s.simStart * 1e6, Dur: dur,
		PID: 1, TID: s.tid, Args: args,
	})
}

// Complete records a whole span in one call, for work whose simulated
// bounds are known only after the fact (e.g. per-candidate evaluations
// inside a parallel rung).
func (t *Tracer) Complete(name, cat string, tid int64, simStartSec, simEndSec float64, args map[string]any) {
	if t == nil {
		return
	}
	if args == nil {
		args = map[string]any{}
	}
	args["sim_hours"] = simEndSec / 3600
	dur := (simEndSec - simStartSec) * 1e6
	if dur < 0 {
		dur = 0
	}
	t.emit(traceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS: simStartSec * 1e6, Dur: dur,
		PID: 1, TID: tid, Args: args,
	})
}

// Instant records a zero-duration event at simulated time simSec.
func (t *Tracer) Instant(name, cat string, tid int64, simSec float64, args map[string]any) {
	if t == nil {
		return
	}
	t.emit(traceEvent{
		Name: name, Cat: cat, Ph: "i",
		TS: simSec * 1e6, PID: 1, TID: tid, Args: args,
	})
}

// Flush drains buffered events to the underlying writer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w.Flush()
}

// defaultTracer is the process-wide fallback tracer the CLIs install so
// deeply nested runners (cmd/experiments) trace without threading a handle
// through every call signature. nil (the default) disables tracing.
var defaultTracer atomic.Pointer[Tracer]

// SetDefaultTracer installs (or, with nil, removes) the process-wide
// fallback tracer.
func SetDefaultTracer(t *Tracer) { defaultTracer.Store(t) }

// DefaultTracer returns the process-wide fallback tracer (possibly nil —
// nil is a valid disabled tracer).
func DefaultTracer() *Tracer { return defaultTracer.Load() }

// SearchProgress is one per-iteration progress report from a co-search:
// the convergence signal of the paper's Fig. 7/10 curves, surfaced live.
type SearchProgress struct {
	// Iter is the MOBO iteration (1-based).
	Iter int
	// SimHours is the simulated search cost so far.
	SimHours float64
	// Hypervolume is the feasible front's hypervolume against the running
	// nadir reference (componentwise max of all feasible PPA points ×1.1).
	Hypervolume float64
	// UUL is the current Upper Update Limit of the high-fidelity rule
	// (+Inf until the first update).
	UUL float64
	// FrontSize is the feasible Pareto front size.
	FrontSize int
	// Evals is the cumulative mapping-evaluation budget spent.
	Evals int
	// Admitted is how many of this iteration's samples entered the
	// surrogate training set.
	Admitted int
}

// ProgressFunc consumes per-iteration progress reports.
type ProgressFunc func(SearchProgress)

var progressMu sync.RWMutex
var defaultProgress ProgressFunc

// SetDefaultProgress installs (or, with nil, removes) a process-wide
// progress sink invoked in addition to any per-run callback.
func SetDefaultProgress(fn ProgressFunc) {
	progressMu.Lock()
	defaultProgress = fn
	progressMu.Unlock()
}

// EmitProgress forwards a report to the process-wide sink, if one is set.
func EmitProgress(p SearchProgress) {
	progressMu.RLock()
	fn := defaultProgress
	progressMu.RUnlock()
	if fn != nil {
		fn(p)
	}
}
