package telemetry

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// renderMetrics returns the DefaultRegistry's Prometheus exposition.
func renderMetrics(t *testing.T) string {
	t.Helper()
	rec := httptest.NewRecorder()
	DefaultRegistry.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	return rec.Body.String()
}

func TestPPAEvalSecondsPerEngine(t *testing.T) {
	h1 := PPAEvalSeconds("engine-a")
	h2 := PPAEvalSeconds("engine-a")
	if h1 != h2 {
		t.Error("same engine returned distinct histograms")
	}
	if PPAEvalSeconds("engine-b") == h1 {
		t.Error("distinct engines share a histogram")
	}
	h1.Observe(0.003)
	out := renderMetrics(t)
	if !strings.Contains(out, `unico_ppa_eval_seconds_count{engine="engine-a"} 1`) {
		t.Errorf("histogram missing from exposition:\n%.600s", out)
	}
}

func TestDistRunRequestsLabelCap(t *testing.T) {
	base := DistRunRequests("cap-base")
	if DistRunRequests("cap-base") != base {
		t.Error("same run ID returned distinct counters")
	}
	if DistRunRequests("") != DistRunRequests("unknown") {
		t.Error("empty run ID does not fold to unknown")
	}
	// Flood past the cap: new IDs must fold into "other" instead of growing
	// the label set without bound.
	for i := 0; i < maxRunIDLabels+8; i++ {
		DistRunRequests(fmt.Sprintf("cap-flood-%03d", i)).Inc()
	}
	other := DistRunRequests("cap-flood-overflow-a")
	if other != DistRunRequests("cap-flood-overflow-b") {
		t.Error("post-cap run IDs not folded into one counter")
	}
	runReqMu.Lock()
	n := len(runReqs)
	runReqMu.Unlock()
	if n > maxRunIDLabels+1 { // the cap plus the "other" bucket
		t.Errorf("label set grew to %d entries, cap is %d", n, maxRunIDLabels)
	}
}

func TestDebugServerLifecycle(t *testing.T) {
	d := NewDebugServer("127.0.0.1:0", nil)
	d.Mux().HandleFunc("GET /debug/extra", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "extra ok")
	})
	// Exercise the mounted route without a real listener (the addr is :0 and
	// Start is fire-and-forget; the mux is what the route contract is about).
	rec := httptest.NewRecorder()
	d.Mux().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/extra", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "extra ok") {
		t.Errorf("extra route: %d %q", rec.Code, rec.Body.String())
	}

	d.Start(func(err error) { t.Errorf("listener error: %v", err) })
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	// Close after Shutdown must be safe (double-stop from signal paths).
	if err := d.Close(); err != nil && err != http.ErrServerClosed {
		t.Errorf("Close after Shutdown: %v", err)
	}
}
