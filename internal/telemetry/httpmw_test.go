package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestInstrumentHandler(t *testing.T) {
	reg := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ok", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	mux.HandleFunc("GET /missing", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gone", http.StatusNotFound)
	})
	h := InstrumentHandler(reg, nil, mux)
	srv := httptest.NewServer(h)
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/ok")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if got := reg.Counter("unico_http_requests_total", "",
		Labels{"route": "/ok", "method": "GET", "code": "2xx"}).Value(); got != 3 {
		t.Errorf("2xx count = %d, want 3", got)
	}
	if got := reg.Counter("unico_http_requests_total", "",
		Labels{"route": "/missing", "method": "GET", "code": "4xx"}).Value(); got != 1 {
		t.Errorf("4xx count = %d, want 1", got)
	}
	if got := reg.Histogram("unico_http_request_seconds", "", nil,
		Labels{"route": "/ok"}).Count(); got != 3 {
		t.Errorf("latency observations = %d, want 3", got)
	}
	if got := reg.Gauge("unico_http_inflight", "", nil).Value(); got != 0 {
		t.Errorf("inflight = %v, want 0 at rest", got)
	}
}

func TestDebugMuxServesMetrics(t *testing.T) {
	DefaultRegistry.Counter("unico_debugmux_test_total", "", nil).Inc()
	srv := httptest.NewServer(DebugMux(nil))
	defer srv.Close()

	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "unico_debugmux_test_total 1") {
		t.Errorf("/metrics missing test counter:\n%.400s", body)
	}
}
