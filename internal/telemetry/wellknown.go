package telemetry

import "sync"

// Well-known global metrics of the co-optimizer, all living in
// DefaultRegistry. Hot paths cache the returned pointers in package vars so
// the registry lookup happens once per process.

var (
	ppaEvalsMu sync.Mutex
	ppaEvals   = map[string]*Counter{}
	ppaInfeas  = map[string]*Counter{}
)

// PPAEvals counts PPA-engine evaluations for one engine
// ("maestro", "camodel", ...).
func PPAEvals(engine string) *Counter {
	ppaEvalsMu.Lock()
	defer ppaEvalsMu.Unlock()
	c := ppaEvals[engine]
	if c == nil {
		c = DefaultRegistry.Counter("unico_ppa_evals_total",
			"PPA-engine evaluations by engine.", Labels{"engine": engine})
		ppaEvals[engine] = c
	}
	return c
}

var (
	ppaEvalSecondsMu sync.Mutex
	ppaEvalSeconds   = map[string]*Histogram{}
)

// ppaEvalBuckets span host-side evaluation latencies from the analytical
// models (tens of µs) through cycle-level simulation (ms) to remote round
// trips with retries (seconds).
var ppaEvalBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// PPAEvalSeconds observes host-side (wall-clock, not simulated) PPA
// evaluation latency for one engine ("maestro", "camodel", "dist").
func PPAEvalSeconds(engine string) *Histogram {
	ppaEvalSecondsMu.Lock()
	defer ppaEvalSecondsMu.Unlock()
	h := ppaEvalSeconds[engine]
	if h == nil {
		h = DefaultRegistry.Histogram("unico_ppa_eval_seconds",
			"Host-side PPA evaluation latency by engine.", ppaEvalBuckets,
			Labels{"engine": engine})
		ppaEvalSeconds[engine] = h
	}
	return h
}

// PPAInfeasible counts PPA evaluations rejected as infeasible, per engine.
func PPAInfeasible(engine string) *Counter {
	ppaEvalsMu.Lock()
	defer ppaEvalsMu.Unlock()
	c := ppaInfeas[engine]
	if c == nil {
		c = DefaultRegistry.Counter("unico_ppa_infeasible_total",
			"PPA evaluations rejected as infeasible, by engine.", Labels{"engine": engine})
		ppaInfeas[engine] = c
	}
	return c
}

var (
	mapStepsOnce sync.Once
	mapSteps     *Counter
)

// MapSearchSteps counts software-mapping layer search steps.
func MapSearchSteps() *Counter {
	mapStepsOnce.Do(func() {
		mapSteps = DefaultRegistry.Counter("unico_mapsearch_steps_total",
			"Software-mapping layer search steps.", nil)
	})
	return mapSteps
}

var (
	gpFitsOnce sync.Once
	gpFits     *Counter
)

// GPFits counts Gaussian-process surrogate fits.
func GPFits() *Counter {
	gpFitsOnce.Do(func() {
		gpFits = DefaultRegistry.Counter("unico_gp_fits_total",
			"Gaussian-process surrogate fits.", nil)
	})
	return gpFits
}

var (
	gpExtendsOnce sync.Once
	gpExtends     *Counter
)

// GPExtends counts incremental Gaussian-process surrogate extends — the
// one-observation Cholesky-border updates that replaced a full refit.
func GPExtends() *Counter {
	gpExtendsOnce.Do(func() {
		gpExtends = DefaultRegistry.Counter("unico_gp_extends_total",
			"Incremental Gaussian-process surrogate extends.", nil)
	})
	return gpExtends
}

var (
	moboItersOnce sync.Once
	moboIters     *Counter
)

// MOBOIterations counts completed MOBO outer iterations.
func MOBOIterations() *Counter {
	moboItersOnce.Do(func() {
		moboIters = DefaultRegistry.Counter("unico_mobo_iterations_total",
			"Completed MOBO outer iterations.", nil)
	})
	return moboIters
}

var (
	moboAdmittedOnce sync.Once
	moboAdmitted     *Counter
)

// MOBOAdmitted counts samples admitted to the surrogate training set.
func MOBOAdmitted() *Counter {
	moboAdmittedOnce.Do(func() {
		moboAdmitted = DefaultRegistry.Counter("unico_mobo_admitted_total",
			"Samples admitted to the surrogate training set.", nil)
	})
	return moboAdmitted
}

var (
	moboTrainOnce sync.Once
	moboTrain     *Gauge
)

// MOBOTrainSize gauges the surrogate training-set size.
func MOBOTrainSize() *Gauge {
	moboTrainOnce.Do(func() {
		moboTrain = DefaultRegistry.Gauge("unico_mobo_train_size",
			"Surrogate training-set size.", nil)
	})
	return moboTrain
}

var (
	moboUULOnce sync.Once
	moboUUL     *Gauge
)

// MOBOUUL gauges the current Upper Update Limit of the high-fidelity rule.
func MOBOUUL() *Gauge {
	moboUULOnce.Do(func() {
		moboUUL = DefaultRegistry.Gauge("unico_mobo_uul",
			"Current Upper Update Limit of the high-fidelity rule.", nil)
	})
	return moboUUL
}

var (
	shRungsOnce sync.Once
	shRungs     *Counter
)

// SHRungs counts successive-halving rungs executed.
func SHRungs() *Counter {
	shRungsOnce.Do(func() {
		shRungs = DefaultRegistry.Counter("unico_sh_rungs_total",
			"Successive-halving rungs executed.", nil)
	})
	return shRungs
}

var (
	shSurvivorsOnce sync.Once
	shSurvivors     *Gauge
)

// SHSurvivors gauges the candidates alive after the most recent rung.
func SHSurvivors() *Gauge {
	shSurvivorsOnce.Do(func() {
		shSurvivors = DefaultRegistry.Gauge("unico_sh_rung_survivors",
			"Candidates alive after the most recent successive-halving rung.", nil)
	})
	return shSurvivors
}

var (
	distJobsOnce sync.Once
	distJobs     *Gauge
)

// DistJobs gauges the mapping-search jobs currently held by a worker.
func DistJobs() *Gauge {
	distJobsOnce.Do(func() {
		distJobs = DefaultRegistry.Gauge("unico_dist_jobs",
			"Mapping-search jobs currently held by this worker.", nil)
	})
	return distJobs
}

var (
	cacheOnce    sync.Once
	cacheHits    *Counter
	cacheMisses  *Counter
	cacheWaits   *Counter
	cacheEntries *Gauge
)

func cacheMetrics() {
	cacheOnce.Do(func() {
		cacheHits = DefaultRegistry.Counter("unico_evalcache_hits_total",
			"PPA evaluations served from the content-addressed cache.", nil)
		cacheMisses = DefaultRegistry.Counter("unico_evalcache_misses_total",
			"PPA evaluations computed by an engine and stored in the cache.", nil)
		cacheWaits = DefaultRegistry.Counter("unico_evalcache_inflight_waits_total",
			"PPA evaluations deduplicated against an identical in-flight computation.", nil)
		cacheEntries = DefaultRegistry.Gauge("unico_evalcache_entries",
			"Entries currently held by the PPA evaluation cache.", nil)
	})
}

// EvalCacheHits counts PPA evaluations served from the evaluation cache.
func EvalCacheHits() *Counter { cacheMetrics(); return cacheHits }

// EvalCacheMisses counts PPA evaluations the cache had to compute and store.
func EvalCacheMisses() *Counter { cacheMetrics(); return cacheMisses }

// EvalCacheInflightWaits counts evaluations that joined (waited on) an
// identical in-flight computation instead of recomputing it.
func EvalCacheInflightWaits() *Counter { cacheMetrics(); return cacheWaits }

// EvalCacheEntries gauges the current entry count of the evaluation cache.
func EvalCacheEntries() *Gauge { cacheMetrics(); return cacheEntries }

var (
	distClientOnce  sync.Once
	distRetries     *Counter
	distEvictions   *Counter
	distReadmission *Counter
)

func distClientMetrics() {
	distClientOnce.Do(func() {
		distRetries = DefaultRegistry.Counter("unico_dist_retries_total",
			"Master-side HTTP retries against worker nodes.", nil)
		distEvictions = DefaultRegistry.Counter("unico_dist_worker_evictions_total",
			"Workers evicted from the rotation after consecutive failures.", nil)
		distReadmission = DefaultRegistry.Counter("unico_dist_worker_readmissions_total",
			"Evicted workers re-admitted after a successful probe.", nil)
	})
}

// DistRetries counts master-side HTTP retries against worker nodes.
func DistRetries() *Counter { distClientMetrics(); return distRetries }

var (
	ckptOnce      sync.Once
	ckptRecords   *Counter
	ckptSnapshots *Counter
	ckptResumes   *Counter
	ckptErrors    *Counter
	ckptTorn      *Counter
)

func checkpointMetrics() {
	ckptOnce.Do(func() {
		ckptRecords = DefaultRegistry.Counter("unico_checkpoint_records_total",
			"Iteration records appended to the write-ahead journal.", nil)
		ckptSnapshots = DefaultRegistry.Counter("unico_checkpoint_snapshots_total",
			"Atomic state snapshots written.", nil)
		ckptResumes = DefaultRegistry.Counter("unico_checkpoint_resumes_total",
			"Runs resumed from a checkpoint.", nil)
		ckptErrors = DefaultRegistry.Counter("unico_checkpoint_errors_total",
			"Checkpoint write failures (checkpointing disables itself after the first).", nil)
		ckptTorn = DefaultRegistry.Counter("unico_checkpoint_torn_records_total",
			"Torn trailing journal records detected and truncated on load.", nil)
	})
}

// CheckpointRecords counts journal records appended.
func CheckpointRecords() *Counter { checkpointMetrics(); return ckptRecords }

// CheckpointSnapshots counts atomic snapshots written.
func CheckpointSnapshots() *Counter { checkpointMetrics(); return ckptSnapshots }

// CheckpointResumes counts runs resumed from a checkpoint.
func CheckpointResumes() *Counter { checkpointMetrics(); return ckptResumes }

// CheckpointErrors counts checkpoint write failures.
func CheckpointErrors() *Counter { checkpointMetrics(); return ckptErrors }

// CheckpointTornRecords counts torn trailing journal records truncated on
// load (the expected residue of a crash mid-append).
func CheckpointTornRecords() *Counter { checkpointMetrics(); return ckptTorn }

var (
	cacheSkipOnce sync.Once
	cacheSkipped  *Counter
)

// EvalCacheSkippedLines counts malformed or truncated JSONL lines skipped
// while loading a persisted evaluation cache (the residue of a crash
// mid-append; the loader tolerates and counts them).
func EvalCacheSkippedLines() *Counter {
	cacheSkipOnce.Do(func() {
		cacheSkipped = DefaultRegistry.Counter("unico_evalcache_skipped_lines_total",
			"Malformed or truncated JSONL lines skipped while loading a persisted cache.", nil)
	})
	return cacheSkipped
}

var (
	runReqMu sync.Mutex
	runReqs  = map[string]*Counter{}
)

// maxRunIDLabels caps the distinct run-ID labels a long-lived worker keeps;
// later runs fold into "other" so the label set cannot grow without bound.
const maxRunIDLabels = 64

// DistRunRequests counts worker requests by originating client run ID (from
// the X-Unico-Run-ID header; "" folds to "unknown").
func DistRunRequests(runID string) *Counter {
	if runID == "" {
		runID = "unknown"
	}
	runReqMu.Lock()
	defer runReqMu.Unlock()
	c := runReqs[runID]
	if c == nil {
		if len(runReqs) >= maxRunIDLabels {
			runID = "other"
			if c = runReqs[runID]; c != nil {
				return c
			}
		}
		c = DefaultRegistry.Counter("unico_dist_run_requests_total",
			"Worker requests by originating client run ID.", Labels{"run_id": runID})
		runReqs[runID] = c
	}
	return c
}

var (
	buildInfoMu sync.Mutex
	buildInfos  = map[string]*Gauge{}
)

// BuildInfo returns the constant-1 build-identity gauge
// unico_build_info{go_version,vcs_rev} — the Prometheus idiom for exposing
// version strings as labels. internal/buildinfo resolves the values from
// the binary's embedded build metadata and sets the gauge once per process.
func BuildInfo(goVersion, vcsRev string) *Gauge {
	key := goVersion + "\x00" + vcsRev
	buildInfoMu.Lock()
	defer buildInfoMu.Unlock()
	g := buildInfos[key]
	if g == nil {
		g = DefaultRegistry.Gauge("unico_build_info",
			"Build identity of this binary (constant 1; the identity is in the labels).",
			Labels{"go_version": goVersion, "vcs_rev": vcsRev})
		buildInfos[key] = g
	}
	return g
}

var (
	phaseMu   sync.Mutex
	phaseWall = map[string]*Histogram{}
	phaseSim  = map[string]*Gauge{}
)

// maxPhaseLabels caps the distinct phase labels the process exports; beyond
// it new phase paths fold into "other" so a pathological caller cannot grow
// the label set without bound.
const maxPhaseLabels = 128

// phaseBuckets span phase span durations from sub-microsecond leaf spans
// (one GP predict) through whole-iteration spans (seconds to a minute).
var phaseBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 10, 60,
}

// PhaseSeconds observes wall-clock time spent in one perfprof phase path
// ("iteration/sh.rung", "gp.fit", ...).
func PhaseSeconds(phase string) *Histogram {
	phaseMu.Lock()
	defer phaseMu.Unlock()
	h := phaseWall[phase]
	if h == nil {
		if len(phaseWall) >= maxPhaseLabels {
			phase = "other"
			if h = phaseWall[phase]; h != nil {
				return h
			}
		}
		h = DefaultRegistry.Histogram("unico_phase_seconds",
			"Wall-clock time spent per profiler phase.", phaseBuckets,
			Labels{"phase": phase})
		phaseWall[phase] = h
	}
	return h
}

// PhaseSimSeconds accumulates simulated-clock time attributed to one
// perfprof phase path (only clocked spans move it; a gauge because the
// attribution is additive across runs in one process).
func PhaseSimSeconds(phase string) *Gauge {
	phaseMu.Lock()
	defer phaseMu.Unlock()
	g := phaseSim[phase]
	if g == nil {
		if len(phaseSim) >= maxPhaseLabels {
			phase = "other"
			if g = phaseSim[phase]; g != nil {
				return g
			}
		}
		g = DefaultRegistry.Gauge("unico_phase_sim_seconds",
			"Simulated-clock seconds attributed per profiler phase.",
			Labels{"phase": phase})
		phaseSim[phase] = g
	}
	return g
}

// DistWorkerEvictions counts workers evicted from the master's rotation.
func DistWorkerEvictions() *Counter { distClientMetrics(); return distEvictions }

// DistWorkerReadmissions counts evicted workers re-admitted after a
// successful probe.
func DistWorkerReadmissions() *Counter { distClientMetrics(); return distReadmission }

var (
	distLostOnce sync.Once
	distLost     *Counter
)

// DistLostEvals counts evaluations lost for good on the master side: a
// candidate whose mapping-search job could not be placed on any worker, or
// whose job latched a transport error mid-search. The fleet's robustness
// contract is that this counter stays at zero through shard kill, restart
// and drain — the CI chaos smoke gates on it.
func DistLostEvals() *Counter {
	distLostOnce.Do(func() {
		distLost = DefaultRegistry.Counter("unico_dist_lost_evals_total",
			"Candidate evaluations lost to unrecoverable worker failures.", nil)
	})
	return distLost
}

var (
	fleetShardMu sync.Mutex
	fleetQueue   = map[string]*Gauge{}
)

// maxShardLabels caps the distinct shard labels a router exports; fleets are
// operator-configured and small, so the cap only guards against a
// misconfigured caller generating shard IDs dynamically.
const maxShardLabels = 256

// FleetQueueDepth gauges one shard's admission pressure: requests currently
// forwarded plus requests waiting in its bounded admission queue.
func FleetQueueDepth(shard string) *Gauge {
	fleetShardMu.Lock()
	defer fleetShardMu.Unlock()
	g := fleetQueue[shard]
	if g == nil {
		if len(fleetQueue) >= maxShardLabels {
			shard = "other"
			if g = fleetQueue[shard]; g != nil {
				return g
			}
		}
		g = DefaultRegistry.Gauge("unico_fleet_queue_depth",
			"In-flight plus queued requests per fleet shard.", Labels{"shard": shard})
		fleetQueue[shard] = g
	}
	return g
}

var (
	fleetShedMu sync.Mutex
	fleetShed   = map[string]*Counter{}
)

// FleetShed counts requests the fleet router shed instead of queuing,
// by reason ("queue-full", "draining", "unhealthy").
func FleetShed(reason string) *Counter {
	fleetShedMu.Lock()
	defer fleetShedMu.Unlock()
	c := fleetShed[reason]
	if c == nil {
		c = DefaultRegistry.Counter("unico_fleet_shed_total",
			"Requests shed by the fleet router, by reason.", Labels{"reason": reason})
		fleetShed[reason] = c
	}
	return c
}

var (
	fleetOnce       sync.Once
	fleetRebalances *Counter
	fleetReplays    *Counter
	fleetProbe      *Histogram
)

// fleetProbeBuckets span health-probe round trips from loopback (sub-ms)
// through a congested shard answering just inside the probe timeout.
var fleetProbeBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
}

func fleetMetrics() {
	fleetOnce.Do(func() {
		fleetRebalances = DefaultRegistry.Counter("unico_fleet_rebalances_total",
			"Hash-ring rebuilds after a shard joined, left, drained or recovered.", nil)
		fleetReplays = DefaultRegistry.Counter("unico_fleet_replays_total",
			"Mapping-search jobs re-created on a new shard and replayed to their spent budget.", nil)
		fleetProbe = DefaultRegistry.Histogram("unico_fleet_health_probe_seconds",
			"Fleet health-probe round-trip latency.", fleetProbeBuckets, nil)
	})
}

var (
	fleetForwardMu sync.Mutex
	fleetForward   = map[string]*Histogram{}
)

// fleetForwardBuckets span router→shard forward round trips from a loopback
// cache hit (sub-ms) through a long budget installment advancing a
// mapping-search job (minutes).
var fleetForwardBuckets = []float64{
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// FleetForwardSeconds observes one shard's forward round-trip latency — the
// full router-side view of a request handed to that shard, network included.
func FleetForwardSeconds(shard string) *Histogram {
	fleetForwardMu.Lock()
	defer fleetForwardMu.Unlock()
	h := fleetForward[shard]
	if h == nil {
		if len(fleetForward) >= maxShardLabels {
			shard = "other"
			if h = fleetForward[shard]; h != nil {
				return h
			}
		}
		h = DefaultRegistry.Histogram("unico_fleet_forward_seconds",
			"Router-to-shard forward round-trip latency per shard.", fleetForwardBuckets,
			Labels{"shard": shard})
		fleetForward[shard] = h
	}
	return h
}

var (
	traceSpansMu sync.Mutex
	traceSpans   = map[string]*Counter{}
)

// maxTraceKindLabels caps the distinct span-kind labels; kinds are a fixed
// vocabulary in internal/disttrace, so the cap only guards misuse.
const maxTraceKindLabels = 32

// TraceSpans counts distributed-trace spans started, by kind ("client",
// "attempt", "backoff", "queue", "forward", "replay", "shard", "engine",
// "iteration").
func TraceSpans(kind string) *Counter {
	traceSpansMu.Lock()
	defer traceSpansMu.Unlock()
	c := traceSpans[kind]
	if c == nil {
		if len(traceSpans) >= maxTraceKindLabels {
			kind = "other"
			if c = traceSpans[kind]; c != nil {
				return c
			}
		}
		c = DefaultRegistry.Counter("unico_trace_spans_total",
			"Distributed-trace spans started, by span kind.", Labels{"kind": kind})
		traceSpans[kind] = c
	}
	return c
}

var (
	traceOrphansOnce sync.Once
	traceOrphans     *Counter
)

// TraceOrphans counts orphan spans — spans naming a parent absent from the
// merged trace — detected when the fleet router merges member span logs. The
// tracing write discipline (a parent's start record is fsynced before any
// child starts) makes this zero even through shard kill -9; nonzero means a
// span log was lost or truncated.
func TraceOrphans() *Counter {
	traceOrphansOnce.Do(func() {
		traceOrphans = DefaultRegistry.Counter("unico_trace_orphans_total",
			"Orphan spans detected at router-side trace merges.", nil)
	})
	return traceOrphans
}

// FleetRebalances counts hash-ring rebuilds caused by membership changes.
func FleetRebalances() *Counter { fleetMetrics(); return fleetRebalances }

// FleetReplays counts jobs deterministically replayed onto a new shard
// after their owner died or restarted.
func FleetReplays() *Counter { fleetMetrics(); return fleetReplays }

// FleetProbeSeconds observes health-probe round-trip latency.
func FleetProbeSeconds() *Histogram { fleetMetrics(); return fleetProbe }
