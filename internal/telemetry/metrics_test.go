package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestConcurrentUpdates hammers one counter, gauge and histogram from many
// goroutines; run with -race to verify the atomics.
func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "counter", nil)
	g := reg.Gauge("g", "gauge", nil)
	h := reg.Histogram("h_seconds", "histogram", []float64{0.1, 1, 10}, nil)

	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%20) / 2) // 0 .. 9.5
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	wantSum := float64(workers) * perWorker / 20 * (0 + 0.5 + 1 + 1.5 + 2 + 2.5 + 3 + 3.5 + 4 + 4.5 + 5 + 5.5 + 6 + 6.5 + 7 + 7.5 + 8 + 8.5 + 9 + 9.5) / 1
	if got := h.Sum(); got < wantSum-1e-6 || got > wantSum+1e-6 {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
}

// TestSameInstanceReturned verifies registry memoization: the same
// (name, labels) pair always yields the same metric.
func TestSameInstanceReturned(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "", Labels{"k": "v", "a": "b"})
	b := reg.Counter("x_total", "", Labels{"a": "b", "k": "v"})
	if a != b {
		t.Fatal("same name+labels returned different counters")
	}
	other := reg.Counter("x_total", "", Labels{"a": "b", "k": "w"})
	if a == other {
		t.Fatal("different labels returned the same counter")
	}
}

// TestPrometheusGolden locks the text exposition format byte-for-byte.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("unico_test_requests_total", "Requests served.",
		Labels{"route": "/v1/ppa", "method": "POST"})
	c.Add(3)
	g := reg.Gauge("unico_test_inflight", "In-flight requests.", nil)
	g.Set(2.5)
	// Power-of-two observations keep the float sum exact, so the golden
	// string is stable.
	h := reg.Histogram("unico_test_latency_seconds", "Latency.", []float64{0.1, 1}, nil)
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(4)

	var b strings.Builder
	reg.WritePrometheus(&b)
	want := `# HELP unico_test_requests_total Requests served.
# TYPE unico_test_requests_total counter
unico_test_requests_total{method="POST",route="/v1/ppa"} 3
# HELP unico_test_inflight In-flight requests.
# TYPE unico_test_inflight gauge
unico_test_inflight 2.5
# HELP unico_test_latency_seconds Latency.
# TYPE unico_test_latency_seconds histogram
unico_test_latency_seconds_bucket{le="0.1"} 1
unico_test_latency_seconds_bucket{le="1"} 2
unico_test_latency_seconds_bucket{le="+Inf"} 3
unico_test_latency_seconds_sum 4.5625
unico_test_latency_seconds_count 3
`
	if got := b.String(); got != want {
		t.Errorf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramBucketEdges verifies le (<=) bucket semantics on the bounds.
func TestHistogramBucketEdges(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("edges", "", []float64{1, 2}, nil)
	h.Observe(1) // le="1"
	h.Observe(2) // le="2"
	h.Observe(3) // +Inf
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, line := range []string{
		`edges_bucket{le="1"} 1`,
		`edges_bucket{le="2"} 2`,
		`edges_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
}

// TestSnapshot spot-checks the expvar-facing map.
func TestSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("snap_total", "", Labels{"k": "v"}).Add(7)
	snap := reg.Snapshot()
	if got := snap[`snap_total{k="v"}`]; got != uint64(7) {
		t.Errorf("snapshot = %v (%T), want 7", got, got)
	}
}

// TestLabelEscaping verifies quotes and backslashes survive rendering.
func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "", Labels{"p": `a"b\c`}).Inc()
	var b strings.Builder
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), `esc_total{p="a\"b\\c"} 1`) {
		t.Errorf("bad escaping:\n%s", b.String())
	}
}

// TestQuantileEdges covers the histogram quantile estimator's boundary
// behavior: empty histograms, a single observation, all-equal values, and
// out-of-range q clamping.
func TestQuantileEdges(t *testing.T) {
	buckets := []float64{1, 2, 4}

	empty := NewHistogram(buckets)
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}

	single := NewHistogram(buckets)
	single.Observe(1.5)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := single.Quantile(q)
		if got < 1 || got > 2 {
			t.Errorf("single-observation quantile(%v) = %v, want in [1, 2]", q, got)
		}
	}

	equal := NewHistogram(buckets)
	for i := 0; i < 100; i++ {
		equal.Observe(3)
	}
	p50, p95 := equal.Quantile(0.5), equal.Quantile(0.95)
	if p50 <= 2 || p50 > 4 || p95 <= 2 || p95 > 4 {
		t.Errorf("all-equal quantiles p50=%v p95=%v, want both in (2, 4]", p50, p95)
	}
	if p95 < p50 {
		t.Errorf("p95 %v < p50 %v", p95, p50)
	}

	// q outside [0, 1] clamps rather than panicking or extrapolating.
	if lo, hi := equal.Quantile(-3), equal.Quantile(7); lo > hi || hi > 4 {
		t.Errorf("clamped quantiles lo=%v hi=%v", lo, hi)
	}

	// Observations above the top bucket report the top finite bound.
	over := NewHistogram(buckets)
	over.Observe(100)
	if got := over.Quantile(0.5); got != 4 {
		t.Errorf("overflow-bucket quantile = %v, want top bound 4", got)
	}
}
