// Package telemetry is the stdlib-only observability subsystem: a metrics
// registry (atomic counters, gauges and fixed-bucket histograms rendered in
// Prometheus text exposition format and published through expvar), a
// search-event tracer emitting Chrome trace_event JSONL stamped with both
// real and simulated time, and HTTP server middleware.
//
// Everything is dependency-free by design (the repo rule: no modules beyond
// the standard library) and safe for concurrent use. A nil *Tracer is a
// valid, zero-overhead tracer: every method is a no-op, so instrumented hot
// paths cost one pointer comparison when tracing is off.
package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attaches Prometheus-style label pairs to a metric.
type Labels map[string]string

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative by the counter contract).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. It stores a float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge value.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram in the Prometheus mold:
// counts per upper bound, plus a running sum and total count.
type Histogram struct {
	bounds []float64       // sorted upper bounds; implicit +Inf bucket last
	counts []atomic.Uint64 // len(bounds)+1
	sum    Gauge           // reuses the CAS float accumulator
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// NewHistogram returns a standalone histogram with the given bucket upper
// bounds, not attached to any registry — for callers that need quantile
// estimates over their own observations (the perfprof phase profiler)
// without exporting a metric family. nil selects DefBuckets.
func NewHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Quantile estimates the q-quantile (q in [0,1], clamped) of the observed
// values by linear interpolation inside the owning bucket — the same
// estimator as Prometheus's histogram_quantile. Edge semantics: an empty
// histogram returns 0; observations beyond the largest finite bound (the
// implicit +Inf bucket) are reported as that largest finite bound, since the
// bucket has no upper edge to interpolate toward.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	switch {
	case q < 0:
		q = 0
	case q > 1:
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, bound := range h.bounds {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if rank < cum {
				rank = cum
			}
			return lower + (bound-lower)*((rank-cum)/c)
		}
		cum += c
	}
	if n := len(h.bounds); n > 0 {
		return h.bounds[n-1]
	}
	return 0
}

// DefBuckets are the default latency buckets (seconds), matching the
// Prometheus client defaults.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// metricKind discriminates the families of a registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family groups every labeled instance of one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	bounds  []float64 // histograms only
	mu      sync.Mutex
	metrics map[string]any // canonical label string -> *Counter | *Gauge | *Histogram
	keys    []string       // insertion-ordered label keys for stable output
}

// Registry holds metric families and renders them. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // insertion order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// DefaultRegistry is the process-wide registry the well-known metrics and
// the HTTP middleware default to.
var DefaultRegistry = NewRegistry()

func (r *Registry) family(name, help string, kind metricKind, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, metrics: map[string]any{}}
		r.families[name] = f
		r.names = append(r.names, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	return f
}

// canonical renders labels as a deterministic Prometheus label block
// ("" when empty).
func canonical(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func (f *family) instance(labels Labels, build func() any) any {
	key := canonical(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.metrics[key]
	if m == nil {
		m = build()
		f.metrics[key] = m
		f.keys = append(f.keys, key)
	}
	return m
}

// Counter returns (creating on first use) the counter name{labels}.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	f := r.family(name, help, kindCounter, nil)
	return f.instance(labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns (creating on first use) the gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	f := r.family(name, help, kindGauge, nil)
	return f.instance(labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns (creating on first use) the histogram name{labels} with
// the family's fixed bucket upper bounds. Buckets are taken from the first
// registration of the family; nil selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	f := r.family(name, help, kindHistogram, bounds)
	return f.instance(labels, func() any {
		return &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
	}).(*Histogram)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), families in registration order, instances in
// first-use order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		metrics := make([]any, len(keys))
		for i, k := range keys {
			metrics[i] = f.metrics[k]
		}
		f.mu.Unlock()
		if len(metrics) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for i, key := range keys {
			switch m := metrics[i].(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, key, m.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, key, formatFloat(m.Value()))
			case *Histogram:
				writeHistogram(w, f.name, key, m)
			}
		}
	}
}

func writeHistogram(w io.Writer, name, key string, h *Histogram) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(key, "le", formatFloat(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(key, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, key, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, key, h.Count())
}

// withLabel appends one label pair to a canonical label block.
func withLabel(key, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if key == "" {
		return "{" + pair + "}"
	}
	return key[:len(key)-1] + "," + pair + "}"
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Snapshot returns a plain name -> value map of every metric (histograms
// report {count, sum}), the structure published through expvar.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		for key, m := range f.metrics {
			name := f.name + key
			switch m := m.(type) {
			case *Counter:
				out[name] = m.Value()
			case *Gauge:
				out[name] = m.Value()
			case *Histogram:
				out[name] = map[string]any{"count": m.Count(), "sum": m.Sum()}
			}
		}
		f.mu.Unlock()
	}
	return out
}

var expvarOnce sync.Once

// PublishExpvar registers the default registry under the expvar name
// "unico_metrics" (idempotent; expvar itself serves GET /debug/vars).
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("unico_metrics", expvar.Func(func() any {
			return DefaultRegistry.Snapshot()
		}))
	})
}
