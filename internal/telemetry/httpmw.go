package telemetry

import (
	"context"
	"expvar"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// statusRecorder captures the response status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// codeClass folds a status code into its Prometheus-friendly class
// ("2xx", "4xx", ...).
func codeClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// InstrumentHandler wraps h with per-route HTTP server metrics in reg:
//
//	unico_http_requests_total{route,method,code}   request counter
//	unico_http_request_seconds_*{route}            latency histogram
//	unico_http_inflight                            in-flight gauge
//
// route normalizes a request to its route label (so path parameters do not
// explode cardinality); nil uses the raw URL path.
func InstrumentHandler(reg *Registry, route func(*http.Request) string, h http.Handler) http.Handler {
	if reg == nil {
		reg = DefaultRegistry
	}
	if route == nil {
		route = func(r *http.Request) string { return r.URL.Path }
	}
	inflight := reg.Gauge("unico_http_inflight",
		"HTTP requests currently being served.", nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt := route(r)
		inflight.Inc()
		defer inflight.Dec()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now() //unicolint:allow detclock HTTP request-latency metric is wall time by definition
		h.ServeHTTP(rec, r)
		elapsed := time.Since(start).Seconds() //unicolint:allow detclock HTTP request-latency metric is wall time by definition
		reg.Counter("unico_http_requests_total", "HTTP requests by route, method and status class.",
			Labels{"route": rt, "method": r.Method, "code": codeClass(rec.code)}).Inc()
		reg.Histogram("unico_http_request_seconds", "HTTP request latency by route.",
			nil, Labels{"route": rt}).Observe(elapsed)
	})
}

// DebugMux returns a mux exposing the standard observability endpoints:
//
//	GET /metrics       Prometheus text format (reg; nil = DefaultRegistry)
//	GET /debug/vars    expvar JSON (includes the registry snapshot)
//	GET /debug/pprof/  runtime profiles
func DebugMux(reg *Registry) *http.ServeMux {
	if reg == nil {
		reg = DefaultRegistry
	}
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is the sidecar observability listener of the CLIs'
// -metrics-addr flag: DebugMux plus whatever extra routes the binary mounts
// (the /debug/unico dashboard), with an owned lifecycle — start it, then
// Shutdown (graceful) or Close (immediate) from the signal path.
type DebugServer struct {
	mux *http.ServeMux
	srv *http.Server
}

// NewDebugServer builds a debug server on addr without starting it, so
// callers can mount extra routes on Mux first.
func NewDebugServer(addr string, reg *Registry) *DebugServer {
	mux := DebugMux(reg)
	return &DebugServer{
		mux: mux,
		srv: &http.Server{
			Addr:              addr,
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       2 * time.Minute,
		},
	}
}

// Mux exposes the underlying mux for extra routes (mount before Start).
func (d *DebugServer) Mux() *http.ServeMux { return d.mux }

// Start begins serving in the background. Listener errors are reported
// through errf (may be nil) rather than failing the main program.
func (d *DebugServer) Start(errf func(error)) {
	go func() {
		if err := d.srv.ListenAndServe(); err != nil && err != http.ErrServerClosed && errf != nil {
			errf(err)
		}
	}()
}

// Shutdown drains in-flight requests until ctx expires, then closes.
func (d *DebugServer) Shutdown(ctx context.Context) error {
	return d.srv.Shutdown(ctx)
}

// Close stops the listener immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }

// ServeDebug starts a background HTTP server exposing DebugMux on addr and
// returns its handle so the caller's signal path can shut it down. Errors
// are reported through errf (may be nil) rather than failing the main
// program.
func ServeDebug(addr string, reg *Registry, errf func(error)) *DebugServer {
	d := NewDebugServer(addr, reg)
	d.Start(errf)
	return d
}
