package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestTraceJSONLWellFormed verifies every emitted line is a standalone JSON
// object with the Chrome trace_event required fields.
func TestTraceJSONLWellFormed(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)

	sp := tr.StartSpan("mobo_iteration", "core", 0, 10)
	tr.Complete("candidate_eval", "sh", 3, 10, 25, map[string]any{"candidate": 2})
	tr.Instant("note", "core", 0, 12, nil)
	sp.End(40, map[string]any{"front": 4})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 { // metadata + complete + instant + span-end
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	names := map[string]bool{}
	for i, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		for _, field := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Errorf("line %d missing %q: %s", i+1, field, line)
			}
		}
		names[ev["name"].(string)] = true
	}
	for _, want := range []string{"process_name", "mobo_iteration", "candidate_eval", "note"} {
		if !names[want] {
			t.Errorf("missing event %q", want)
		}
	}
}

// TestTraceSimulatedTimestamps verifies ts/dur run on the simulated clock
// (microseconds) and args carry the simulated hours.
func TestTraceSimulatedTimestamps(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Complete("candidate_eval", "sh", 1, 7200, 10800, nil) // sim 2h .. 3h
	tr.Flush()

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	var ev struct {
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.TS != 7200e6 {
		t.Errorf("ts = %v µs, want 7.2e9 (simulated 2 h)", ev.TS)
	}
	if ev.Dur != 3600e6 {
		t.Errorf("dur = %v µs, want 3.6e9 (simulated 1 h)", ev.Dur)
	}
	if got := ev.Args["sim_hours"].(float64); got != 3 {
		t.Errorf("args.sim_hours = %v, want 3", got)
	}
}

// TestNilTracerNoOps exercises the disabled fast path: a nil tracer (and
// the nil span it returns) must be safe everywhere.
func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("x", "y", 0, 1)
	if sp != nil {
		t.Fatal("nil tracer returned a non-nil span")
	}
	sp.End(2, nil)
	tr.Complete("x", "y", 0, 1, 2, nil)
	tr.Instant("x", "y", 0, 1, nil)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestTracerConcurrent emits from many goroutines; -race plus the line
// parse verifies events never interleave mid-line.
func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Complete("ev", "t", int64(w), float64(i), float64(i+1), nil)
			}
		}(w)
	}
	wg.Wait()
	tr.Flush()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1+8*50 {
		t.Fatalf("got %d lines, want %d", len(lines), 1+8*50)
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line %d corrupt: %s", i+1, line)
		}
	}
}

// TestDefaultProgressSink verifies the process-wide sink receives reports
// and can be removed.
func TestDefaultProgressSink(t *testing.T) {
	var got []SearchProgress
	SetDefaultProgress(func(p SearchProgress) { got = append(got, p) })
	defer SetDefaultProgress(nil)
	EmitProgress(SearchProgress{Iter: 1, SimHours: 0.5})
	EmitProgress(SearchProgress{Iter: 2, SimHours: 1.5})
	if len(got) != 2 || got[1].Iter != 2 {
		t.Fatalf("sink got %+v", got)
	}
	SetDefaultProgress(nil)
	EmitProgress(SearchProgress{Iter: 3})
	if len(got) != 2 {
		t.Fatal("removed sink still invoked")
	}
}
