package mobo

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"unico/internal/gp"
)

// countingSource wraps the optimizer's random source and counts how many
// values have been drawn from it. math/rand's source advances by exactly one
// step per Int63 or Uint64 call, so the count is a stream position: two
// sources with the same seed and the same position produce the same future
// draws. That is what lets a resumed run replay the optimizer's RNG without
// serializing the source's internal state — the checkpoint records the
// position, and SeekRNG burns draws until a fresh source catches up.
type countingSource struct {
	src rand.Source64
	pos uint64
}

func newCountingSource(seed int64) *countingSource {
	// rand.NewSource's concrete type implements Source64 (documented since
	// Go 1.8), so the assertion cannot fail.
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (s *countingSource) Int63() int64 {
	s.pos++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.pos++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.pos = 0
}

// RNGPos returns the optimizer's RNG stream position: how many values have
// been drawn since the source was seeded.
func (o *Optimizer) RNGPos() uint64 { return o.src.pos }

// SeekRNG fast-forwards the optimizer's RNG to stream position pos by
// discarding draws. Seeking backwards is impossible for a forward-only
// stream and reports an error.
func (o *Optimizer) SeekRNG(pos uint64) error {
	if pos < o.src.pos {
		return fmt.Errorf("mobo: cannot seek RNG backwards (at %d, want %d)", o.src.pos, pos)
	}
	for o.src.pos < pos {
		o.src.Uint64()
	}
	return nil
}

// ExtFloat is a float64 whose JSON form round-trips ±Inf (as the strings
// "+Inf" and "-Inf"), which encoding/json rejects for plain floats. The
// optimizer's v_best and UUL start at +Inf, so a state exported before the
// first surrogate update needs it.
type ExtFloat float64

// MarshalJSON implements json.Marshaler.
func (f ExtFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *ExtFloat) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		switch s {
		case "+Inf":
			*f = ExtFloat(math.Inf(1))
		case "-Inf":
			*f = ExtFloat(math.Inf(-1))
		case "NaN":
			*f = ExtFloat(math.NaN())
		default:
			return fmt.Errorf("mobo: bad ExtFloat %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = ExtFloat(v)
	return nil
}

// SurrogateState pins one objective's fitted surrogate: the
// hyperparameters and jitter that rebuild its factor bit-identically via
// gp.FitWithParams, plus the per-point marginal-likelihood reference the
// warm-start cadence compares against.
type SurrogateState struct {
	Lengthscale float64 `json:"lengthscale"`
	Variance    float64 `json:"variance"`
	Noise       float64 `json:"noise"`
	Jitter      float64 `json:"jitter"`
	RefLML      float64 `json:"ref_lml"`
}

// State is the serializable state of an Optimizer: everything Restore needs
// to rebuild an explorer that behaves bit-identically to the original. The
// duplicate-suppression set and normalization bounds are not stored — they
// are deterministic functions of the observation lists and are recomputed
// on restore. The Gaussian processes are rebuilt from Surrogates: a live
// optimizer's GPs are not in general the output of a fresh grid search on
// the current training set (hyperparameters warm-start and factors extend
// incrementally), so the state pins each surrogate's parameters instead of
// re-deciding them.
type State struct {
	// Seed is the seed the optimizer was built with.
	Seed int64 `json:"seed"`
	// RNGPos is the RNG stream position (draws consumed since seeding).
	RNGPos uint64 `json:"rng_pos"`
	// Train is the surrogate training set, in admission order.
	Train []Observation `json:"train"`
	// All is every observation ever ingested, in ingestion order.
	All []Observation `json:"all"`
	// VBest is the best ParEGO scalar seen by the high-fidelity rule.
	VBest ExtFloat `json:"v_best"`
	// DSet is the distance set the Upper Update Limit is quantiled from.
	DSet []float64 `json:"d_set"`
	// UUL is the current Upper Update Limit.
	UUL ExtFloat `json:"uul"`
	// Surrogates pins each objective's fitted GP (nil when the optimizer
	// held no fitted model at export time).
	Surrogates []SurrogateState `json:"surrogates,omitempty"`
	// SinceRefit counts surrogate updates since the last full refit.
	SinceRefit int `json:"since_refit,omitempty"`
}

// Export captures the optimizer's state for checkpointing. The returned
// State aliases no optimizer-internal memory.
func (o *Optimizer) Export() State {
	st := State{
		Seed:       o.seed,
		RNGPos:     o.src.pos,
		Train:      cloneObservations(o.train),
		All:        cloneObservations(o.all),
		VBest:      ExtFloat(o.vBest),
		DSet:       append([]float64(nil), o.dSet...),
		UUL:        ExtFloat(o.uul),
		SinceRefit: o.sinceRefit,
	}
	if o.gps != nil {
		st.Surrogates = make([]SurrogateState, len(o.gps))
		for j, g := range o.gps {
			p, _ := g.Params()
			st.Surrogates[j] = SurrogateState{
				Lengthscale: p.Lengthscale,
				Variance:    p.Variance,
				Noise:       p.Noise,
				Jitter:      g.Jitter(),
				RefLML:      o.refLML[j],
			}
		}
	}
	return st
}

// Restore rebuilds an optimizer from an exported State. space and cfg must
// match the ones the state was exported under; the observation lists are
// validated against cfg's objective count. The restored optimizer's future
// SuggestBatch/Update behaviour is bit-identical to the original's.
func Restore(space Space, cfg Config, st State) (*Optimizer, error) {
	o := New(space, cfg, st.Seed)
	n := o.NumObjectives()
	for i, ob := range st.All {
		if len(ob.Y) != n {
			return nil, fmt.Errorf("mobo: restore: observation %d has %d objectives, config wants %d", i, len(ob.Y), n)
		}
	}
	for _, ob := range st.Train {
		if len(ob.Y) != n {
			return nil, fmt.Errorf("mobo: restore: training point has %d objectives, config wants %d", len(ob.Y), n)
		}
	}
	o.all = cloneObservations(st.All)
	o.train = cloneObservations(st.Train)
	for _, ob := range o.all {
		o.seen[o.space.Key(ob.X)] = true
	}
	o.vBest = float64(st.VBest)
	o.dSet = append([]float64(nil), st.DSet...)
	o.uul = float64(st.UUL)
	if len(o.all) > 0 {
		o.refreshBounds()
	}
	if len(st.Surrogates) > 0 {
		// Rebuild the pinned surrogates exactly: a live optimizer's GPs
		// may have warm-started hyperparameters and incrementally extended
		// factors, which a fresh grid search would not reproduce.
		if len(st.Surrogates) != n {
			return nil, fmt.Errorf("mobo: restore: %d surrogates, config wants %d objectives", len(st.Surrogates), n)
		}
		gps := make([]*gp.GP, n)
		refLML := make([]float64, n)
		for j, ss := range st.Surrogates {
			xs := make([][]float64, len(o.train))
			ys := make([]float64, len(o.train))
			for i, ob := range o.train {
				xs[i] = ob.X
				ys[i] = logc(ob.Y[j])
			}
			p := gp.Params{Lengthscale: ss.Lengthscale, Variance: ss.Variance, Noise: ss.Noise}
			g, err := gp.FitWithParams(xs, ys, p, ss.Jitter)
			if err != nil {
				return nil, fmt.Errorf("mobo: restore: rebuild surrogate %d: %w", j, err)
			}
			gps[j] = g
			refLML[j] = ss.RefLML
		}
		o.gps, o.refLML, o.sinceRefit = gps, refLML, st.SinceRefit
	} else {
		// Legacy state (or a cold optimizer): fall back to a fresh fit.
		o.fit()
	}
	if err := o.SeekRNG(st.RNGPos); err != nil {
		return nil, err
	}
	return o, nil
}

// cloneObservations deep-copies an observation list.
func cloneObservations(obs []Observation) []Observation {
	if obs == nil {
		return nil
	}
	out := make([]Observation, len(obs))
	for i, ob := range obs {
		out[i] = Observation{
			X: append([]float64(nil), ob.X...),
			Y: append([]float64(nil), ob.Y...),
		}
	}
	return out
}
