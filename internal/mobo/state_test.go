package mobo

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// drive runs iters suggest/update rounds against the synthetic objective.
func drive(o *Optimizer, iters, batch, nObj int) [][][]float64 {
	var suggested [][][]float64
	for i := 0; i < iters; i++ {
		xs := o.SuggestBatch(batch)
		suggested = append(suggested, xs)
		obs := make([]Observation, len(xs))
		for j, x := range xs {
			obs[j] = Observation{X: x, Y: synthObjectives(x, nObj)}
		}
		o.Update(obs)
	}
	return suggested
}

// TestExportRestoreBitIdentical is the package-level half of the resume
// guarantee: an optimizer restored from an exported State suggests exactly
// the same future batches as the original would have.
func TestExportRestoreBitIdentical(t *testing.T) {
	const nObj, batch = 3, 8
	cfg := DefaultConfig(nObj)

	ref := New(testSpace(), cfg, 42)
	drive(ref, 3, batch, nObj)
	tail := drive(ref, 3, batch, nObj)

	cut := New(testSpace(), cfg, 42)
	drive(cut, 3, batch, nObj)
	st := cut.Export()

	// Round-trip the state through JSON, as the checkpoint file does.
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	var back State
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal state: %v", err)
	}
	restored, err := Restore(testSpace(), cfg, back)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if restored.RNGPos() != cut.RNGPos() {
		t.Fatalf("RNG position %d, want %d", restored.RNGPos(), cut.RNGPos())
	}
	if restored.TrainSize() != cut.TrainSize() {
		t.Fatalf("train size %d, want %d", restored.TrainSize(), cut.TrainSize())
	}
	got := drive(restored, 3, batch, nObj)
	if !reflect.DeepEqual(got, tail) {
		t.Fatalf("restored optimizer diverged from original:\n got %v\nwant %v", got, tail)
	}
}

// TestExportBeforeFirstUpdate pins that the +Inf v_best/UUL of a fresh
// optimizer survive the JSON round trip.
func TestExportBeforeFirstUpdate(t *testing.T) {
	o := New(testSpace(), DefaultConfig(3), 1)
	st := o.Export()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal fresh state: %v", err)
	}
	var back State
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal fresh state: %v", err)
	}
	if !math.IsInf(float64(back.VBest), 1) || !math.IsInf(float64(back.UUL), 1) {
		t.Fatalf("Inf fields did not round-trip: vBest=%v uul=%v", back.VBest, back.UUL)
	}
	if _, err := Restore(testSpace(), DefaultConfig(3), back); err != nil {
		t.Fatalf("restore fresh state: %v", err)
	}
}

// TestRestoreRejectsObjectiveMismatch guards against resuming a run with a
// different objective count (e.g. robustness toggled between runs).
func TestRestoreRejectsObjectiveMismatch(t *testing.T) {
	o := New(testSpace(), DefaultConfig(4), 1)
	drive(o, 1, 4, 4)
	st := o.Export()
	if _, err := Restore(testSpace(), DefaultConfig(3), st); err == nil {
		t.Fatal("restore with mismatched objective count succeeded")
	}
}

// TestSeekRNGBackwardsFails pins the forward-only contract.
func TestSeekRNGBackwardsFails(t *testing.T) {
	o := New(testSpace(), DefaultConfig(3), 1)
	o.SuggestBatch(4)
	if o.RNGPos() == 0 {
		t.Fatal("SuggestBatch consumed no RNG draws")
	}
	if err := o.SeekRNG(0); err == nil {
		t.Fatal("backwards seek succeeded")
	}
}

// TestSuggestBatchIdenticalAcrossWorkers is the package-level half of the
// serial-vs-parallel guarantee: every SearchWorkers value must produce
// bit-identical suggestions, updates and RNG positions.
func TestSuggestBatchIdenticalAcrossWorkers(t *testing.T) {
	const nObj, batch = 3, 8
	run := func(workers int) ([][][]float64, uint64) {
		cfg := DefaultConfig(nObj)
		cfg.SearchWorkers = workers
		o := New(testSpace(), cfg, 99)
		got := drive(o, 6, batch, nObj)
		return got, o.RNGPos()
	}
	want, wantPos := run(1)
	for _, workers := range []int{2, 8, 32} {
		got, pos := run(workers)
		if pos != wantPos {
			t.Fatalf("workers=%d: RNG position %d, serial %d", workers, pos, wantPos)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: suggestions diverged from serial", workers)
		}
	}
}

// TestWarmRefitCadence checks the incremental path actually runs between
// full refits and the cadence forces periodic re-selection.
func TestWarmRefitCadence(t *testing.T) {
	const nObj, batch = 2, 6
	cfg := DefaultConfig(nObj)
	cfg.RefitEvery = 3
	o := New(testSpace(), cfg, 7)
	sawExtend := false
	sawReset := false
	prev := 0
	for i := 0; i < 8; i++ {
		drive(o, 1, batch, nObj)
		if o.gps == nil {
			continue
		}
		if o.sinceRefit > prev {
			sawExtend = true
		}
		if o.sinceRefit == 0 && prev > 0 {
			sawReset = true
		}
		if o.sinceRefit >= cfg.RefitEvery {
			t.Fatalf("sinceRefit %d exceeded RefitEvery %d", o.sinceRefit, cfg.RefitEvery)
		}
		prev = o.sinceRefit
	}
	if !sawExtend {
		t.Error("incremental extend path never ran")
	}
	if !sawReset {
		t.Error("cadence never forced a full refit")
	}
	// RefitEvery=1 must disable the incremental path entirely.
	cfg1 := DefaultConfig(nObj)
	cfg1.RefitEvery = 1
	o1 := New(testSpace(), cfg1, 7)
	drive(o1, 5, batch, nObj)
	if o1.gps != nil && o1.sinceRefit != 0 {
		t.Errorf("RefitEvery=1: sinceRefit = %d, want 0", o1.sinceRefit)
	}
}
