// Package mobo implements the multi-objective Bayesian optimization of
// UNICO's outer level (paper Section 3.2): per-objective Gaussian-process
// surrogates, ParEGO scalarization (Eq. 1), batched acquisition by expected
// improvement over random scalarizations, and the paper's High Fidelity
// Update Rule — the UUL-thresholded selection of which evaluated hardware
// samples may refine the surrogate.
//
// The optimizer minimizes every objective. Objectives are modeled in log
// space (they are positive and span orders of magnitude) and normalized to
// [0,1] for scalarization.
//
// # Warm-started surrogates
//
// Update refits the per-objective GPs incrementally when it can: newly
// admitted observations extend the existing factors in O(n²)
// (gp.GP.Extend), and a full hyperparameter re-selection — warm-started at
// the previous optimum via gp.FitAutoFrom — runs only every
// Config.RefitEvery updates, when the per-point log marginal likelihood
// degrades past a tolerance, or when eviction rewrote the training set.
// The exported State carries each surrogate's hyperparameters, jitter and
// refit reference, so a checkpoint restore rebuilds bit-identical GPs with
// gp.FitWithParams instead of re-running (and possibly re-deciding) the
// grid search.
//
// # Parallel acquisition, deterministic results
//
// SuggestBatch scores its candidate pool and refines its incumbent chains
// on a bounded worker pool (Config.SearchWorkers, internal/parpool). The
// result is bit-identical for every worker count: all draws from the
// optimizer's counted RNG happen serially before the fan-out (the pool
// samples, plus one seed per refinement chain), workers write scores into
// slots indexed by candidate, chains use private RNGs built from their
// pre-drawn seeds, and the merge scans slots in index order with
// strictly-lower-wins ties. The optimizer's RNG is consumed only inside
// SuggestBatch, never in Update — the checkpoint/resume contract.
package mobo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"unico/internal/gp"
	"unico/internal/parpool"
	"unico/internal/perfprof"
	"unico/internal/telemetry"
)

// Space abstracts a finite hardware design space embedded in the unit
// hypercube. Both hw.SpatialSpace and hw.AscendSpace satisfy it.
type Space interface {
	Dim() int
	Sample(rng *rand.Rand) []float64
	Clip(x []float64) []float64
	Neighbor(x []float64, rng *rand.Rand) []float64
	Key(x []float64) string
}

// Observation is one evaluated hardware configuration with its objective
// vector (latency, power, area[, sensitivity]).
type Observation struct {
	X []float64
	Y []float64
}

// UpdateRule selects which evaluated samples refine the surrogate.
type UpdateRule int

const (
	// HighFidelity is the paper's UUL-thresholded rule (Section 3.2).
	HighFidelity UpdateRule = iota
	// Champion adds only the batch's best sample per iteration, the vanilla
	// rule of the Fig. 10 ablation (and effectively HASCO's behaviour).
	Champion
	// AllSamples adds every evaluated sample (a further baseline).
	AllSamples
)

func (u UpdateRule) String() string {
	switch u {
	case HighFidelity:
		return "high-fidelity"
	case Champion:
		return "champion"
	default:
		return "all"
	}
}

// Config parameterizes the optimizer.
type Config struct {
	// Weights are the ParEGO importance weights w_j (must sum to 1); their
	// length fixes the number of objectives.
	Weights []float64
	// Rho is the ParEGO augmentation coefficient (paper default 0.2).
	Rho float64
	// UULQuantile is the D-set quantile refreshing the Upper Update Limit
	// (paper: 0.95).
	UULQuantile float64
	// Rule selects the surrogate update rule.
	Rule UpdateRule
	// PoolSize is the random candidate pool per acquisition maximization.
	PoolSize int
	// Explore is the UCB-style exploration bonus weight in the acquisition.
	Explore float64
	// MaxTrain caps the surrogate training set: when exceeded, the oldest
	// non-elite points are evicted (cubic-cost Gaussian processes need a
	// sliding window on long runs).
	MaxTrain int
	// RefitEvery is the hyperparameter re-selection cadence: a full
	// (warm-started) grid search runs every RefitEvery surrogate updates;
	// in between, new observations extend the fitted GPs incrementally.
	// 1 disables warm-starting (every update is a full refit); 0 means the
	// default (5). Marginal-likelihood degradation or training-set
	// eviction forces an early refit regardless.
	RefitEvery int
	// SearchWorkers bounds the goroutines scoring acquisition candidates in
	// SuggestBatch. Results are bit-identical for every value; <= 1 runs
	// serially. It deliberately stays out of the core run fingerprint so
	// checkpoints resume across different worker counts.
	SearchWorkers int
}

// DefaultConfig returns the paper's settings for nObj objectives with equal
// importance weights.
func DefaultConfig(nObj int) Config {
	w := make([]float64, nObj)
	for i := range w {
		w[i] = 1 / float64(nObj)
	}
	return Config{
		Weights:     w,
		Rho:         0.2,
		UULQuantile: 0.95,
		Rule:        HighFidelity,
		PoolSize:    256,
		Explore:     1.0,
		MaxTrain:    150,
		RefitEvery:  5,
	}
}

// Optimizer is the MOBO hardware explorer.
type Optimizer struct {
	space Space
	cfg   Config
	seed  int64
	rng   *rand.Rand
	src   *countingSource

	// train is the surrogate's training set (the high-fidelity subset of
	// all evaluations); all keeps every observation for normalization and
	// duplicate suppression.
	train []Observation
	all   []Observation
	seen  map[string]bool

	gps []*gp.GP
	// refLML is the per-point log marginal likelihood of each objective's
	// surrogate at its last full (re)fit — the reference the incremental
	// path checks for degradation. sinceRefit counts surrogate updates
	// since that refit.
	refLML     []float64
	sinceRefit int

	// High-fidelity update state.
	vBest float64
	dSet  []float64
	uul   float64

	// Log-objective normalization bounds over all observations.
	lo, hi []float64
}

// New builds an optimizer over the space.
func New(space Space, cfg Config, seed int64) *Optimizer {
	if len(cfg.Weights) == 0 {
		panic("mobo: Config.Weights must be non-empty")
	}
	if cfg.Rho <= 0 {
		cfg.Rho = 0.2
	}
	if cfg.UULQuantile <= 0 || cfg.UULQuantile >= 1 {
		cfg.UULQuantile = 0.95
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 256
	}
	if cfg.MaxTrain <= 0 {
		cfg.MaxTrain = 150
	}
	if cfg.RefitEvery <= 0 {
		cfg.RefitEvery = 5
	}
	if cfg.SearchWorkers <= 0 {
		cfg.SearchWorkers = 1
	}
	nObj := len(cfg.Weights)
	src := newCountingSource(seed)
	return &Optimizer{
		space: space,
		cfg:   cfg,
		seed:  seed,
		rng:   rand.New(src),
		src:   src,
		seen:  map[string]bool{},
		vBest: math.Inf(1),
		uul:   math.Inf(1),
		lo:    make([]float64, nObj),
		hi:    make([]float64, nObj),
	}
}

// NumObjectives returns the objective dimensionality.
func (o *Optimizer) NumObjectives() int { return len(o.cfg.Weights) }

// TrainSize returns the surrogate training-set size.
func (o *Optimizer) TrainSize() int { return len(o.train) }

// UUL returns the current Upper Update Limit.
func (o *Optimizer) UUL() float64 { return o.uul }

// SuggestBatch proposes n distinct unevaluated configurations: random while
// the surrogate is cold, acquisition-guided afterwards.
func (o *Optimizer) SuggestBatch(n int) [][]float64 {
	defer perfprof.Begin("mobo.suggest").End()
	batch := make([][]float64, 0, n)
	batchSeen := map[string]bool{}
	add := func(x []float64) bool {
		k := o.space.Key(x)
		if o.seen[k] || batchSeen[k] {
			return false
		}
		batchSeen[k] = true
		batch = append(batch, x)
		return true
	}
	useModel := o.gps != nil
	for tries := 0; len(batch) < n && tries < 200*n; tries++ {
		if !useModel {
			add(o.space.Sample(o.rng))
			continue
		}
		// One random ParEGO scalarization per batch slot diversifies the
		// batch across the Pareto front (Knowles' batched ParEGO).
		lambda := o.randomSimplex()
		x := o.maximizeAcquisition(lambda, batchSeen)
		if !add(x) {
			// Acquisition landed on a duplicate: fall back to exploration.
			add(o.space.Sample(o.rng))
		}
	}
	return batch
}

// randomSimplex draws a weight vector uniformly from the simplex.
func (o *Optimizer) randomSimplex() []float64 {
	n := o.NumObjectives()
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = -math.Log(1 - o.rng.Float64())
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// acqChains is the number of incumbent refinement chains per acquisition
// maximization, and acqSteps the hill-climb length of each.
const (
	acqChains = 3
	acqSteps  = 16
)

// maximizeAcquisition searches the candidate pool plus local neighbourhoods
// of the incumbents for the point with the best (lowest) scalarized
// lower-confidence bound under the weights lambda.
//
// The search fans out over Config.SearchWorkers goroutines yet is
// bit-identical for every worker count: every draw from the optimizer's
// counted RNG happens up front on the calling goroutine (fallback sample,
// pool samples, one seed per chain — a fixed number of draws), workers
// score candidates into slots indexed by candidate, each chain hill-climbs
// with a private RNG seeded from its pre-drawn seed, and the serial merge
// scans slots in index order accepting only strictly better scores — the
// same tie-break the serial loop applied.
func (o *Optimizer) maximizeAcquisition(lambda []float64, exclude map[string]bool) []float64 {
	// Serial phase: all counted-RNG draws, in a schedule-independent order.
	best := o.space.Sample(o.rng)
	pool := make([][]float64, o.cfg.PoolSize)
	for i := range pool {
		pool[i] = o.space.Sample(o.rng)
	}
	incumbents := o.topTrain(acqChains, lambda)
	seeds := make([]int64, len(incumbents))
	for i := range seeds {
		seeds[i] = o.rng.Int63()
	}

	// Parallel phase 1: score the pool into indexed slots.
	scores := make([]float64, len(pool))
	sp := perfprof.Begin("mobo.acq_pool")
	//unicolint:allow ctxflow CPU-bound local scoring pool; ForEach returns when our own workers finish, there is no remote peer to hang on
	parpool.ForEach(o.cfg.SearchWorkers, len(pool), func(i int) {
		if o.excluded(pool[i], exclude) {
			scores[i] = math.Inf(1)
			return
		}
		scores[i] = o.acquisition(pool[i], lambda)
	})
	sp.End()
	bestA := math.Inf(1)
	for i, a := range scores {
		if a < bestA {
			best, bestA = pool[i], a
		}
	}

	// Parallel phase 2: local refinement around the best training points
	// under this lambda, one chain per incumbent, each on a private RNG.
	type chainBest struct {
		x []float64
		a float64
	}
	chains := make([]chainBest, len(incumbents))
	sp = perfprof.Begin("mobo.acq_refine")
	parpool.ForEach(o.cfg.SearchWorkers, len(incumbents), func(c int) {
		crng := rand.New(rand.NewSource(seeds[c]))
		x := incumbents[c]
		ax := o.acquisition(x, lambda)
		cb := chainBest{a: math.Inf(1)}
		for step := 0; step < acqSteps; step++ {
			y := o.space.Neighbor(x, crng)
			ay := o.acquisition(y, lambda)
			if ay < cb.a && !o.excluded(y, exclude) {
				cb = chainBest{x: y, a: ay}
			}
			if ay < ax {
				x, ax = y, ay
			}
		}
		chains[c] = cb
	})
	sp.End()
	for _, cb := range chains {
		if cb.a < bestA {
			best, bestA = cb.x, cb.a
		}
	}
	return best
}

// excluded reports whether x is already evaluated or already in the batch
// being assembled. Safe for concurrent use while the maps are read-only
// (during maximizeAcquisition's fan-out).
func (o *Optimizer) excluded(x []float64, exclude map[string]bool) bool {
	k := o.space.Key(x)
	return exclude[k] || o.seen[k]
}

// acquisition is the scalarized lower-confidence bound: scalarize the
// per-objective posterior means (normalized log space) with the augmented
// Tchebycheff form, minus an exploration bonus from the scalarized standard
// deviation. Lower is better.
func (o *Optimizer) acquisition(x []float64, lambda []float64) float64 {
	mu, sigma := o.predictNorm(x)
	s := scalarize(mu, lambda, o.cfg.Rho)
	var varSum float64
	for j := range sigma {
		v := lambda[j] * sigma[j]
		varSum += v * v
	}
	return s - o.cfg.Explore*math.Sqrt(varSum)
}

// predictNorm returns the normalized-log-space posterior mean and standard
// deviation per objective.
func (o *Optimizer) predictNorm(x []float64) (mu, sigma []float64) {
	n := o.NumObjectives()
	mu = make([]float64, n)
	sigma = make([]float64, n)
	for j, g := range o.gps {
		m, v := g.Predict(x)
		mu[j] = o.normalize(j, m)
		span := o.hi[j] - o.lo[j]
		if span <= 0 {
			span = 1
		}
		sigma[j] = math.Sqrt(v) / span
	}
	return mu, sigma
}

// topTrain returns the inputs of the best k training points under lambda.
func (o *Optimizer) topTrain(k int, lambda []float64) [][]float64 {
	type scored struct {
		x []float64
		v float64
	}
	items := make([]scored, 0, len(o.train))
	for _, ob := range o.train {
		items = append(items, scored{ob.X, o.scalarizeObs(ob.Y, lambda)})
	}
	sort.Slice(items, func(a, b int) bool { return items[a].v < items[b].v })
	if k > len(items) {
		k = len(items)
	}
	out := make([][]float64, k)
	for i := 0; i < k; i++ {
		out[i] = items[i].x
	}
	return out
}

// ScalarizeParEGO computes v_ParEGO of a raw objective vector under the
// configured importance weights (paper Eq. 1):
//
//	v = max_j(w_j·ŷ_j) + ρ·Σ_j w_j·ŷ_j
//
// with ŷ the normalized log objectives.
func (o *Optimizer) ScalarizeParEGO(y []float64) float64 {
	defer perfprof.Begin("mobo.scalarize").End()
	return o.scalarizeObs(y, o.cfg.Weights)
}

func (o *Optimizer) scalarizeObs(y []float64, lambda []float64) float64 {
	norm := make([]float64, len(y))
	for j := range y {
		norm[j] = o.normalize(j, logc(y[j]))
	}
	return scalarize(norm, lambda, o.cfg.Rho)
}

// scalarize is the augmented Tchebycheff form on already-normalized values.
func scalarize(norm, lambda []float64, rho float64) float64 {
	if len(norm) != len(lambda) {
		panic(fmt.Sprintf("mobo: scalarize got %d values, %d weights", len(norm), len(lambda)))
	}
	maxTerm := math.Inf(-1)
	sum := 0.0
	for j := range norm {
		t := lambda[j] * norm[j]
		if t > maxTerm {
			maxTerm = t
		}
		sum += t
	}
	return maxTerm + rho*sum
}

// normalize maps a log-objective value into [0,1] using the observed bounds.
func (o *Optimizer) normalize(j int, logY float64) float64 {
	span := o.hi[j] - o.lo[j]
	if span <= 0 {
		return 0
	}
	v := (logY - o.lo[j]) / span
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v
}

// logc is a guarded log for positive objectives.
func logc(v float64) float64 {
	if v < 1e-30 {
		v = 1e-30
	}
	return math.Log(v)
}

// Update ingests a batch of evaluated observations per the configured
// surrogate update rule, refits the GPs, and returns the number of samples
// admitted to the training set.
func (o *Optimizer) Update(batch []Observation) int {
	defer perfprof.Begin("mobo.update").End()
	if len(batch) == 0 {
		return 0
	}
	for _, ob := range batch {
		if len(ob.Y) != o.NumObjectives() {
			panic(fmt.Sprintf("mobo: observation has %d objectives, want %d", len(ob.Y), o.NumObjectives()))
		}
		o.all = append(o.all, ob)
		o.seen[o.space.Key(ob.X)] = true
	}
	o.refreshBounds()

	var admitted []Observation
	switch o.cfg.Rule {
	case AllSamples:
		admitted = batch
	case Champion:
		best := 0
		for i := range batch {
			if o.ScalarizeParEGO(batch[i].Y) < o.ScalarizeParEGO(batch[best].Y) {
				best = i
			}
		}
		admitted = []Observation{batch[best]}
	default:
		admitted = o.highFidelitySelect(batch)
	}
	o.train = append(o.train, admitted...)
	evicted := o.evictStale()
	o.refit(len(admitted), evicted)
	telemetry.MOBOAdmitted().Add(uint64(len(admitted)))
	telemetry.MOBOTrainSize().Set(float64(len(o.train)))
	telemetry.MOBOUUL().Set(o.uul)
	return len(admitted)
}

// evictStale trims the training set to MaxTrain points, keeping the best
// quarter by ParEGO scalar (the elites anchoring the optimum region) and
// the most recent remainder. It reports whether the set changed (which
// invalidates the fitted surrogates for incremental extension).
func (o *Optimizer) evictStale() bool {
	max := o.cfg.MaxTrain
	if len(o.train) <= max {
		return false
	}
	elite := max / 4
	idx := make([]int, len(o.train))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return o.ScalarizeParEGO(o.train[idx[a]].Y) < o.ScalarizeParEGO(o.train[idx[b]].Y)
	})
	keep := map[int]bool{}
	for _, i := range idx[:elite] {
		keep[i] = true
	}
	// Fill the rest with the most recent observations.
	for i := len(o.train) - 1; i >= 0 && len(keep) < max; i-- {
		keep[i] = true
	}
	next := make([]Observation, 0, max)
	for i, ob := range o.train {
		if keep[i] {
			next = append(next, ob)
		}
	}
	o.train = next
	return true
}

// highFidelitySelect implements the High Fidelity Update Rule of Section 3.2:
//
//	Step 1: v = v_ParEGO(Y) for each sample of the batch;
//	Step 2: d = ‖v − v_best‖₂ against the best scalar seen so far;
//	Step 3: admit samples with d ≤ UUL, adding their d to the set D;
//	Step 4: UUL ← the UULQuantile (95%) percentile of D.
func (o *Optimizer) highFidelitySelect(batch []Observation) []Observation {
	type scored struct {
		ob Observation
		v  float64
		d  float64
	}
	items := make([]scored, len(batch))
	for i, ob := range batch {
		v := o.ScalarizeParEGO(ob.Y)
		items[i] = scored{ob: ob, v: v}
		if v < o.vBest {
			o.vBest = v
		}
	}
	var admitted []Observation
	for i := range items {
		items[i].d = math.Abs(items[i].v - o.vBest)
		if items[i].d <= o.uul {
			admitted = append(admitted, items[i].ob)
			o.dSet = append(o.dSet, items[i].d)
		}
	}
	if len(admitted) == 0 {
		// Never starve the surrogate: admit the batch champion.
		best := 0
		for i := range items {
			if items[i].v < items[best].v {
				best = i
			}
		}
		admitted = []Observation{items[best].ob}
		o.dSet = append(o.dSet, items[best].d)
	}
	o.uul = percentile(o.dSet, o.cfg.UULQuantile)
	return admitted
}

// refreshBounds recomputes the per-objective log bounds over all
// observations.
func (o *Optimizer) refreshBounds() {
	for j := 0; j < o.NumObjectives(); j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, ob := range o.all {
			v := logc(ob.Y[j])
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		o.lo[j], o.hi[j] = lo, hi
	}
}

// lmlDegradeTol is the per-point log-marginal-likelihood drop (in nats)
// the incremental path tolerates before forcing a full hyperparameter
// refit.
const lmlDegradeTol = 0.5

// refit brings the surrogates up to date after Update appended `added`
// training points. The cheap path extends the fitted GPs in O(n²) per
// point; a full warm-started grid search runs on the RefitEvery cadence,
// on marginal-likelihood degradation, after eviction, or whenever there is
// no fitted model to extend. Neither path draws from the optimizer's RNG.
func (o *Optimizer) refit(added int, evicted bool) {
	if len(o.train) < 3 {
		o.clearSurrogates()
		return
	}
	if o.gps == nil || evicted || o.sinceRefit+1 >= o.cfg.RefitEvery {
		o.fitFull(o.warmParams())
		return
	}
	for j, g := range o.gps {
		for _, ob := range o.train[len(o.train)-added:] {
			if err := g.Extend(ob.X, logc(ob.Y[j])); err != nil {
				// A failed extend leaves some GPs ahead of others; the
				// full refit below rebuilds every objective from o.train,
				// so the partial state never escapes.
				o.fitFull(o.warmParams())
				return
			}
		}
	}
	for j, g := range o.gps {
		if g.LogMarginalLikelihood()/float64(g.N()) < o.refLML[j]-lmlDegradeTol {
			o.fitFull(o.warmParams())
			return
		}
	}
	o.sinceRefit++
}

// warmParams collects the fitted surrogates' hyperparameters to warm-start
// the next grid search, or nil when there is nothing to warm-start from.
func (o *Optimizer) warmParams() []gp.Params {
	if o.gps == nil {
		return nil
	}
	out := make([]gp.Params, len(o.gps))
	for j, g := range o.gps {
		p, ok := g.Params()
		if !ok {
			return nil
		}
		out[j] = p
	}
	return out
}

func (o *Optimizer) clearSurrogates() {
	o.gps, o.refLML, o.sinceRefit = nil, nil, 0
}

// fit refits one GP per objective on the training set from scratch
// (Restore's fallback and the cold-start path).
func (o *Optimizer) fit() { o.fitFull(nil) }

// fitFull runs the full per-objective hyperparameter selection, seeded at
// warm (one Params per objective) when non-nil.
func (o *Optimizer) fitFull(warm []gp.Params) {
	if len(o.train) < 3 {
		o.clearSurrogates()
		return
	}
	n := o.NumObjectives()
	gps := make([]*gp.GP, n)
	refLML := make([]float64, n)
	for j := 0; j < n; j++ {
		xs := make([][]float64, len(o.train))
		ys := make([]float64, len(o.train))
		for i, ob := range o.train {
			xs[i] = ob.X
			ys[i] = logc(ob.Y[j])
		}
		var prev *gp.Params
		if warm != nil {
			prev = &warm[j]
		}
		g, err := gp.FitAutoFrom(xs, ys, prev)
		if err != nil {
			o.clearSurrogates()
			return
		}
		gps[j] = g
		refLML[j] = g.LogMarginalLikelihood() / float64(g.N())
	}
	o.gps, o.refLML, o.sinceRefit = gps, refLML, 0
}

// percentile returns the q-quantile of v by nearest-rank on a sorted copy.
func percentile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return math.Inf(1)
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
