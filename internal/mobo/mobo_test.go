package mobo

import (
	"math"
	"math/rand"
	"testing"

	"unico/internal/hw"
)

func testSpace() Space { return hw.NewSpatialSpace(hw.Edge) }

// synthObjectives is a smooth synthetic objective over the encoded cube:
// objective 0 has its optimum at x = (0.3, 0.3, ...), the others are
// correlated variants. All values positive.
func synthObjectives(x []float64, n int) []float64 {
	y := make([]float64, n)
	for j := 0; j < n; j++ {
		sum := 0.0
		for _, v := range x {
			d := v - 0.3 - 0.1*float64(j)
			sum += d * d
		}
		y[j] = math.Exp(sum) // in [1, e^d]
	}
	return y
}

func TestPercentile(t *testing.T) {
	v := []float64{5, 1, 3, 2, 4}
	if got := percentile(v, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := percentile(v, 0); got != 1 {
		t.Errorf("min = %v", got)
	}
	if got := percentile(v, 1); got != 5 {
		t.Errorf("max = %v", got)
	}
	if got := percentile(nil, 0.95); !math.IsInf(got, 1) {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestScalarizeAugmentedTchebycheff(t *testing.T) {
	norm := []float64{0.2, 0.8}
	lambda := []float64{0.5, 0.5}
	// max(0.1, 0.4) + 0.2*(0.1+0.4) = 0.4 + 0.1 = 0.5.
	if got := scalarize(norm, lambda, 0.2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("scalarize = %v, want 0.5", got)
	}
}

func TestSuggestBatchUniqueAndFresh(t *testing.T) {
	o := New(testSpace(), DefaultConfig(3), 1)
	batch := o.SuggestBatch(12)
	if len(batch) != 12 {
		t.Fatalf("batch size %d", len(batch))
	}
	seen := map[string]bool{}
	for _, x := range batch {
		k := testSpace().Key(x)
		if seen[k] {
			t.Fatal("duplicate candidate within batch")
		}
		seen[k] = true
	}
	// Feed observations back; the next batch must avoid them.
	obs := make([]Observation, len(batch))
	for i, x := range batch {
		obs[i] = Observation{X: x, Y: synthObjectives(x, 3)}
	}
	o.Update(obs)
	for _, x := range o.SuggestBatch(12) {
		if seen[testSpace().Key(x)] {
			t.Fatal("re-suggested an already-evaluated candidate")
		}
	}
}

func TestChampionAdmitsOne(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Rule = Champion
	o := New(testSpace(), cfg, 2)
	batch := o.SuggestBatch(8)
	obs := make([]Observation, len(batch))
	for i, x := range batch {
		obs[i] = Observation{X: x, Y: synthObjectives(x, 3)}
	}
	if got := o.Update(obs); got != 1 {
		t.Errorf("champion admitted %d, want 1", got)
	}
	if o.TrainSize() != 1 {
		t.Errorf("TrainSize = %d", o.TrainSize())
	}
}

func TestAllSamplesAdmitsEverything(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Rule = AllSamples
	o := New(testSpace(), cfg, 3)
	batch := o.SuggestBatch(8)
	obs := make([]Observation, len(batch))
	for i, x := range batch {
		obs[i] = Observation{X: x, Y: synthObjectives(x, 3)}
	}
	if got := o.Update(obs); got != len(batch) {
		t.Errorf("all-samples admitted %d, want %d", got, len(batch))
	}
}

func TestHighFidelityUULTightens(t *testing.T) {
	o := New(testSpace(), DefaultConfig(3), 4)
	if !math.IsInf(o.UUL(), 1) {
		t.Fatalf("initial UUL = %v, want +Inf", o.UUL())
	}
	// Two ordinary batches establish the distance distribution D and a
	// finite UUL.
	for iter := 0; iter < 2; iter++ {
		batch := o.SuggestBatch(10)
		obs := make([]Observation, len(batch))
		for i, x := range batch {
			obs[i] = Observation{X: x, Y: synthObjectives(x, 3)}
		}
		o.Update(obs)
	}
	if math.IsInf(o.UUL(), 1) {
		t.Fatal("UUL never left +Inf")
	}
	if o.UUL() < 0 {
		t.Errorf("UUL = %v", o.UUL())
	}
	// A batch polluted with penalty-grade outliers (the infeasible-hardware
	// case the rule exists to filter): the outliers' v_ParEGO distances
	// exceed UUL, so they must not enter the surrogate's training set.
	before := o.TrainSize()
	batch := o.SuggestBatch(10)
	obs := make([]Observation, len(batch))
	for i, x := range batch {
		if i < 5 {
			obs[i] = Observation{X: x, Y: synthObjectives(x, 3)}
		} else {
			obs[i] = Observation{X: x, Y: []float64{1e12, 1e9, 1e6}}
		}
	}
	admitted := o.Update(obs)
	if admitted > 7 {
		t.Errorf("polluted batch admitted %d/10; outliers not filtered", admitted)
	}
	if admitted < 1 {
		t.Error("polluted batch admitted nothing")
	}
	if o.TrainSize() != before+admitted {
		t.Errorf("TrainSize bookkeeping: %d != %d + %d", o.TrainSize(), before, admitted)
	}
}

func TestHighFidelityNeverStarves(t *testing.T) {
	// Even a batch of terrible samples (all d > UUL) must admit the
	// champion so the surrogate keeps learning.
	o := New(testSpace(), DefaultConfig(2), 5)
	good := o.SuggestBatch(4)
	obs := make([]Observation, len(good))
	for i, x := range good {
		obs[i] = Observation{X: x, Y: []float64{1 + float64(i)*0.01, 1}}
	}
	o.Update(obs) // tightens UUL around tiny distances
	bad := o.SuggestBatch(4)
	badObs := make([]Observation, len(bad))
	for i, x := range bad {
		badObs[i] = Observation{X: x, Y: []float64{1e6 + float64(i), 1e6}}
	}
	if got := o.Update(badObs); got < 1 {
		t.Errorf("terrible batch admitted %d, want >= 1", got)
	}
}

func TestScalarizeParEGOOrdering(t *testing.T) {
	o := New(testSpace(), DefaultConfig(2), 6)
	// Establish normalization bounds.
	xs := o.SuggestBatch(4)
	obs := []Observation{
		{X: xs[0], Y: []float64{1, 1}},
		{X: xs[1], Y: []float64{100, 100}},
		{X: xs[2], Y: []float64{10, 10}},
		{X: xs[3], Y: []float64{50, 50}},
	}
	o.Update(obs)
	better := o.ScalarizeParEGO([]float64{1, 1})
	worse := o.ScalarizeParEGO([]float64{100, 100})
	if better >= worse {
		t.Errorf("v_ParEGO(better) %v >= v_ParEGO(worse) %v", better, worse)
	}
}

func TestGuidedBeatsRandomOnSmoothObjective(t *testing.T) {
	// With a smooth synthetic landscape, MOBO's suggestions after training
	// should concentrate more probability mass on good regions than blind
	// random sampling. Compare the best scalarized value found.
	space := testSpace()
	eval := func(x []float64) []float64 { return synthObjectives(x, 3) }

	run := func(guided bool, seed int64) float64 {
		o := New(space, DefaultConfig(3), seed)
		rng := rand.New(rand.NewSource(seed * 31))
		best := math.Inf(1)
		for iter := 0; iter < 8; iter++ {
			var xs [][]float64
			if guided {
				xs = o.SuggestBatch(10)
			} else {
				for i := 0; i < 10; i++ {
					xs = append(xs, space.Sample(rng))
				}
			}
			obs := make([]Observation, len(xs))
			for i, x := range xs {
				y := eval(x)
				obs[i] = Observation{X: x, Y: y}
				if y[0] < best {
					best = y[0]
				}
			}
			if guided {
				o.Update(obs)
			}
		}
		return best
	}
	guidedWins := 0
	const trials = 5
	for s := int64(1); s <= trials; s++ {
		if run(true, s) <= run(false, s+100) {
			guidedWins++
		}
	}
	if guidedWins < trials-1 {
		t.Errorf("guided search won only %d/%d trials against random", guidedWins, trials)
	}
}

func TestUpdatePanicsOnWrongDim(t *testing.T) {
	o := New(testSpace(), DefaultConfig(3), 7)
	defer func() {
		if recover() == nil {
			t.Error("Update accepted wrong objective dimension")
		}
	}()
	x := o.SuggestBatch(1)[0]
	o.Update([]Observation{{X: x, Y: []float64{1, 2}}})
}

func TestNewValidatesConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted empty weights")
		}
	}()
	New(testSpace(), Config{}, 1)
}

func TestUpdateRuleString(t *testing.T) {
	if HighFidelity.String() != "high-fidelity" || Champion.String() != "champion" ||
		AllSamples.String() != "all" {
		t.Error("rule strings wrong")
	}
}
