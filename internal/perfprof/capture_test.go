package perfprof

import (
	"context"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"unico/internal/runid"
)

// isGzip reports whether the file starts with the gzip magic bytes; pprof
// profiles are gzipped protobufs, so this is a cheap validity check.
func isGzip(t *testing.T, path string) bool {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read profile: %v", err)
	}
	return len(b) > 2 && b[0] == 0x1f && b[1] == 0x8b
}

func TestCaptureWritesReadableProfiles(t *testing.T) {
	c, err := NewCapture(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	heap, err := c.HeapProfile()
	if err != nil {
		t.Fatal(err)
	}
	if !isGzip(t, heap) {
		t.Errorf("heap profile %s is not a gzipped pprof file", heap)
	}
	cpu, err := c.CPUProfile(50 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !isGzip(t, cpu) {
		t.Errorf("cpu profile %s is not a gzipped pprof file", cpu)
	}
}

func TestCaptureFilenamesCarryRunID(t *testing.T) {
	old := runid.Current()
	runid.Set("feedc0defeedc0de")
	defer runid.Set(old)

	c, err := NewCapture(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path, err := c.HeapProfile()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(path, "feedc0defeedc0de-heap-") {
		t.Errorf("profile path %q missing run-ID stamp", path)
	}
}

func TestCaptureHandler(t *testing.T) {
	c, err := NewCapture(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h := c.Handler()

	// heap capture returns the written path
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/capture?profile=heap", nil))
	if rec.Code != 200 {
		t.Fatalf("heap capture status = %d, body %q", rec.Code, rec.Body.String())
	}
	path := strings.TrimSpace(rec.Body.String())
	if !isGzip(t, path) {
		t.Errorf("handler-written profile %s not gzipped", path)
	}

	// bad profile kind
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/capture?profile=goroutine", nil))
	if rec.Code != 400 {
		t.Errorf("bad kind status = %d, want 400", rec.Code)
	}

	// bad seconds
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/capture?profile=cpu&seconds=zero", nil))
	if rec.Code != 400 {
		t.Errorf("bad seconds status = %d, want 400", rec.Code)
	}
}

func TestCPUProfileBusy(t *testing.T) {
	c, err := NewCapture(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := c.CPUProfile(300 * time.Millisecond)
		done <- err
	}()
	<-started
	time.Sleep(50 * time.Millisecond) // let StartCPUProfile take hold
	if _, err := c.CPUProfile(10 * time.Millisecond); err != ErrBusy {
		t.Errorf("concurrent CPU profile err = %v, want ErrBusy", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("first CPU profile failed: %v", err)
	}
}

func TestEveryCapturesUntilCancelled(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCapture(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	finished := make(chan struct{})
	go func() {
		c.Every(ctx, 50*time.Millisecond, nil)
		close(finished)
	}()
	deadline := time.After(5 * time.Second)
	for {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("interval capture produced %d files, want >= 2", len(ents))
		case <-time.After(20 * time.Millisecond):
		}
	}
	cancel()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("Every did not stop after cancel")
	}
}

func TestPhasesHandler(t *testing.T) {
	p := New()
	restore := SetActive(p)
	defer restore()
	p.Begin("gp.fit").End()

	rec := httptest.NewRecorder()
	PhasesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/phases", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "gp.fit") {
		t.Errorf("text phases: status %d body %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	PhasesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/phases?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json phases content-type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"path":"gp.fit"`) {
		t.Errorf("json phases body %q missing gp.fit", rec.Body.String())
	}
}
