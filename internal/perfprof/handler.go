package perfprof

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the on-demand capture endpoint:
//
//	GET ?profile=cpu&seconds=N  — collect an N-second CPU profile (default 2, cap 30)
//	GET ?profile=heap           — write a heap profile
//
// The response body is the written file path (text/plain). A CPU capture
// already in progress answers 409; bad parameters answer 400.
func (c *Capture) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var path string
		var err error
		switch r.URL.Query().Get("profile") {
		case "cpu":
			secs := 2
			if raw := r.URL.Query().Get("seconds"); raw != "" {
				secs, err = strconv.Atoi(raw)
				if err != nil || secs < 1 {
					http.Error(w, "seconds must be a positive integer", http.StatusBadRequest)
					return
				}
			}
			if secs > 30 {
				secs = 30
			}
			path, err = c.CPUProfile(time.Duration(secs) * time.Second)
		case "heap":
			path, err = c.HeapProfile()
		default:
			http.Error(w, "profile must be cpu or heap", http.StatusBadRequest)
			return
		}
		if errors.Is(err, ErrBusy) {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, path)
	})
}

// PhasesHandler serves the active profiler's phase report: a fixed-width
// text table by default, JSON with ?format=json.
func PhasesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		stats := Active().Report()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(stats)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%-44s %8s %12s %12s %12s %10s %10s %10s\n",
			"PHASE", "COUNT", "WALL(s)", "SELF(s)", "SIM(s)", "P50(s)", "P95(s)", "MAX(s)")
		for _, s := range stats {
			fmt.Fprintf(w, "%-44s %8d %12.6f %12.6f %12.3f %10.6f %10.6f %10.6f\n",
				s.Path, s.Count, s.WallSeconds, s.SelfWallSeconds, s.SimSeconds,
				s.P50Seconds, s.P95Seconds, s.MaxSeconds)
		}
	})
}
