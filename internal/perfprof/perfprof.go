// Package perfprof is the deterministic phase-attribution profiler: nested
// phase spans that record both wall-clock and simulated-clock time,
// aggregated into a per-run phase tree (count, cumulative and self time,
// wall-time quantiles) that streams into flight records, the /debug/unico
// dashboard, and cmd/unicobench baselines.
//
// The package exists in large part because of the detclock invariant: the
// deterministic search packages (core, mobo, sh, gp, mapsearch, ...) may not
// reference the wall clock at all, not even under a suppression comment.
// Every wall-clock read therefore lives here, behind an API the strict
// packages can call: a span observes wall time on End, and — when opened
// with StartClocked — the simulated clock too. Simulated-clock attribution
// is a pure function of the run configuration, which is what lets flight
// records carry per-iteration phase deltas without breaking the
// kill/resume bit-identity contract (wall times never enter flight records).
//
// Nesting is carried through context.Context: Start returns a derived
// context whose spans become children ("iteration/sh.rung/mapsearch.advance").
// Begin opens a root-level phase for call sites with no context (gp.Predict).
// Like the tracer and the flight recorder, the profiler is observation-only:
// it never influences search decisions, verified by the existing
// bit-identity determinism tests.
package perfprof

import (
	"context"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"unico/internal/simclock"
	"unico/internal/telemetry"
)

// Separator joins parent and child phase names into a path.
const Separator = "/"

// phaseBuckets are the per-profiler quantile buckets (seconds): leaf spans
// are sub-microsecond, iteration spans can reach minutes.
var phaseBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 10, 60,
}

// phase accumulates one path's observations. Wall statistics feed reports
// and metrics; count and simulated seconds feed flight-record deltas.
type phase struct {
	count    uint64
	wall     float64 // cumulative wall seconds
	sim      float64 // cumulative simulated seconds (clocked spans only)
	winCount uint64  // window accumulators: reset by TakeWindow. Windowed
	winSim   float64 // sums restart at zero, so per-iteration deltas are
	// bit-identical regardless of what the profiler accumulated before the
	// window opened — the property flight-record kill/resume identity needs
	// (a cumulative-minus-baseline difference loses run-dependent ulps).
	maxWall  float64
	hist     *telemetry.Histogram // standalone, for p50/p95
	volatile bool                 // excluded from Totals/DeltaSince (racy count)

	// mirrored process-wide registry instruments (mirroring profilers only)
	mWall *telemetry.Histogram
	mSim  *telemetry.Gauge
}

// Profiler aggregates phase observations. All methods are safe for
// concurrent use. The zero value is not usable; call New.
type Profiler struct {
	mu     sync.Mutex
	phases map[string]*phase
	mirror bool
}

// New returns an empty profiler that keeps its statistics to itself.
func New() *Profiler {
	return &Profiler{phases: map[string]*phase{}}
}

// NewMirrored returns a profiler that additionally mirrors every
// observation into the process-wide telemetry registry
// (unico_phase_seconds / unico_phase_sim_seconds).
func NewMirrored() *Profiler {
	p := New()
	p.mirror = true
	return p
}

// active is the process-wide profiler. It is never nil: an always-on
// default (mirrored into telemetry) means flight records carry phase
// deltas identically in bare, killed, and resumed runs.
var active atomic.Pointer[Profiler]

func init() { active.Store(NewMirrored()) }

// Active returns the process-wide profiler (never nil).
func Active() *Profiler { return active.Load() }

// SetActive installs p as the process-wide profiler and returns a function
// restoring the previous one — for benches and tests that want a private
// aggregation window.
func SetActive(p *Profiler) (restore func()) {
	prev := active.Swap(p)
	return func() { active.Store(prev) }
}

// ctxKey carries the parent phase path through a context.
type ctxKey struct{}

func parentPath(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	s, _ := ctx.Value(ctxKey{}).(string)
	return s
}

// Span is one open phase observation. A nil *Span is valid: End is a no-op,
// so call sites need no nil checks. Spans are not safe for concurrent use;
// each belongs to the goroutine that opened it.
type Span struct {
	p     *Profiler
	path  string
	start time.Time
	clock *simclock.Clock
	sim0  float64
	done  bool
}

// Start opens a nested phase span: the returned context carries the new
// path so spans opened under it become children. End the span to record.
func (p *Profiler) Start(ctx context.Context, name string) (context.Context, *Span) {
	return p.startSpan(ctx, name, nil)
}

// StartClocked is Start for call sites that hold the run's simulated clock:
// the span records the simulated-clock delta alongside wall time. Only
// clocked spans contribute simulated seconds to phase totals.
func (p *Profiler) StartClocked(ctx context.Context, name string, c *simclock.Clock) (context.Context, *Span) {
	return p.startSpan(ctx, name, c)
}

func (p *Profiler) startSpan(ctx context.Context, name string, c *simclock.Clock) (context.Context, *Span) {
	path := name
	if parent := parentPath(ctx); parent != "" {
		path = parent + Separator + name
	}
	s := &Span{p: p, path: path, clock: c,
		start: time.Now()} //unicolint:allow detclock the profiler is the module's one sanctioned wall-clock boundary
	if c != nil {
		s.sim0 = c.Seconds()
	}
	if ctx == nil {
		//unicolint:allow ctxflow nil-ctx fallback for Begin call sites; the profiler context only carries the span path, never cancellation
		ctx = context.Background()
	}
	return context.WithValue(ctx, ctxKey{}, path), s
}

// Begin opens a root-level phase span for call sites with no context to
// thread (gp.Fit, mobo internals). Idiom: defer p.Begin("gp.fit").End()
func (p *Profiler) Begin(name string) *Span {
	_, s := p.startSpan(nil, name, nil)
	return s
}

// End closes the span and records it. Safe on nil spans; a second End is a
// no-op, and a span never ended records nothing.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	wall := time.Since(s.start).Seconds() //unicolint:allow detclock the profiler is the module's one sanctioned wall-clock boundary
	sim := 0.0
	if s.clock != nil {
		sim = s.clock.Seconds() - s.sim0
	}
	s.p.record(s.path, wall, sim, false)
}

// Timer measures an interval for call sites that decide the phase name only
// at the end (an evalcache lookup is a "hit" or a "miss" after the fact).
// Timers observe against the profiler that was Active at creation.
type Timer struct {
	p     *Profiler
	start time.Time
}

// NewTimer starts a timer against the active profiler.
func NewTimer() Timer {
	return Timer{p: Active(),
		start: time.Now()} //unicolint:allow detclock the profiler is the module's one sanctioned wall-clock boundary
}

// ObserveAs records the elapsed wall time as one observation of path.
func (t Timer) ObserveAs(path string) {
	if t.p == nil {
		return
	}
	t.p.record(path, time.Since(t.start).Seconds(), 0, false) //unicolint:allow detclock the profiler is the module's one sanctioned wall-clock boundary
}

// ObserveVolatileAs is ObserveAs for phases whose count depends on
// goroutine scheduling (an evalcache singleflight wait, a dist retry wait):
// the phase is kept out of Totals/DeltaSince — and therefore out of flight
// records, whose per-iteration deltas must be deterministic — but still
// appears in Report and the metrics mirror.
func (t Timer) ObserveVolatileAs(path string) {
	if t.p == nil {
		return
	}
	t.p.record(path, time.Since(t.start).Seconds(), 0, true) //unicolint:allow detclock the profiler is the module's one sanctioned wall-clock boundary
}

func (p *Profiler) record(path string, wall, sim float64, volatile bool) {
	p.mu.Lock()
	ph := p.phases[path]
	if ph == nil {
		ph = &phase{hist: telemetry.NewHistogram(phaseBuckets), volatile: volatile}
		if p.mirror {
			ph.mWall = telemetry.PhaseSeconds(path)
			ph.mSim = telemetry.PhaseSimSeconds(path)
		}
		p.phases[path] = ph
	}
	ph.count++
	ph.wall += wall
	ph.sim += sim
	ph.winCount++
	ph.winSim += sim
	if wall > ph.maxWall {
		ph.maxWall = wall
	}
	hist, mWall, mSim := ph.hist, ph.mWall, ph.mSim
	p.mu.Unlock()

	hist.Observe(wall)
	if mWall != nil {
		mWall.Observe(wall)
	}
	if mSim != nil && sim != 0 {
		mSim.Add(sim)
	}
}

// Total is one path's deterministic accumulator snapshot.
type Total struct {
	Count      uint64
	SimSeconds float64
}

// Totals snapshots the deterministic (count, simulated-seconds) accumulators
// of every non-volatile phase — the baseline DeltaSince subtracts.
func (p *Profiler) Totals() Totals {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(Totals, len(p.phases))
	for path, ph := range p.phases {
		if ph.volatile {
			continue
		}
		out[path] = Total{Count: ph.count, SimSeconds: ph.sim}
	}
	return out
}

// Totals maps phase path to its deterministic accumulators.
type Totals map[string]Total

// PhaseDelta is the per-iteration flight-record form of one phase: path,
// observation count, and simulated seconds — all deterministic functions of
// the run configuration, never wall time.
type PhaseDelta struct {
	Path       string  `json:"path"`
	Count      uint64  `json:"count"`
	SimSeconds float64 `json:"sim_seconds,omitempty"`
}

// DeltaSince returns the per-phase growth since base, sorted by path, with
// unchanged phases omitted. Volatile phases never appear.
func (p *Profiler) DeltaSince(base Totals) []PhaseDelta {
	now := p.Totals()
	paths := make([]string, 0, len(now))
	for path := range now {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	var out []PhaseDelta
	for _, path := range paths {
		cur := now[path]
		prev := base[path]
		if cur.Count == prev.Count && cur.SimSeconds == prev.SimSeconds {
			continue
		}
		out = append(out, PhaseDelta{
			Path:       path,
			Count:      cur.Count - prev.Count,
			SimSeconds: cur.SimSeconds - prev.SimSeconds,
		})
	}
	return out
}

// TakeWindow returns the per-phase activity since the last TakeWindow call
// (sorted by path, inactive and volatile phases omitted) and resets the
// window. Because windowed sums restart at zero, identical work between two
// Take calls yields bit-identical deltas no matter what the profiler
// accumulated earlier — which is what lets a resumed run's flight records
// match an uninterrupted run's exactly. Call once at a boundary's start to
// discard preceding activity, then once at its end to collect.
func (p *Profiler) TakeWindow() []PhaseDelta {
	p.mu.Lock()
	defer p.mu.Unlock()
	paths := make([]string, 0, len(p.phases))
	for path, ph := range p.phases {
		if ph.volatile || (ph.winCount == 0 && ph.winSim == 0) {
			continue
		}
		paths = append(paths, path)
	}
	sort.Strings(paths)
	var out []PhaseDelta
	for _, path := range paths {
		ph := p.phases[path]
		out = append(out, PhaseDelta{Path: path, Count: ph.winCount, SimSeconds: ph.winSim})
		ph.winCount, ph.winSim = 0, 0
	}
	return out
}

// PhaseStat is one phase's full report line. Self time is cumulative time
// minus the cumulative time of direct children in the path tree; phases
// recorded through Begin (no context) are their own roots, so overlapping
// flat phases (gp.predict under mobo.suggest) each report their full time.
type PhaseStat struct {
	Path            string  `json:"path"`
	Count           uint64  `json:"count"`
	WallSeconds     float64 `json:"wall_seconds"`
	SelfWallSeconds float64 `json:"self_wall_seconds"`
	SimSeconds      float64 `json:"sim_seconds"`
	SelfSimSeconds  float64 `json:"self_sim_seconds"`
	P50Seconds      float64 `json:"p50_seconds"`
	P95Seconds      float64 `json:"p95_seconds"`
	MaxSeconds      float64 `json:"max_seconds"`
}

// Report returns every phase (volatile ones included) sorted by path, with
// self times computed over the path tree and wall-time quantiles from the
// per-phase histogram.
func (p *Profiler) Report() []PhaseStat {
	p.mu.Lock()
	paths := make([]string, 0, len(p.phases))
	for path := range p.phases {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	stats := make([]PhaseStat, len(paths))
	childWall := map[string]float64{}
	childSim := map[string]float64{}
	for i, path := range paths {
		ph := p.phases[path]
		stats[i] = PhaseStat{
			Path:        path,
			Count:       ph.count,
			WallSeconds: ph.wall,
			SimSeconds:  ph.sim,
			P50Seconds:  ph.hist.Quantile(0.50),
			P95Seconds:  ph.hist.Quantile(0.95),
			MaxSeconds:  ph.maxWall,
		}
		if parent, ok := directParent(path); ok {
			childWall[parent] += ph.wall
			childSim[parent] += ph.sim
		}
	}
	p.mu.Unlock()
	for i := range stats {
		stats[i].SelfWallSeconds = stats[i].WallSeconds - childWall[stats[i].Path]
		stats[i].SelfSimSeconds = stats[i].SimSeconds - childSim[stats[i].Path]
	}
	return stats
}

// directParent returns the path's immediate ancestor ("a/b" for "a/b/c").
func directParent(path string) (string, bool) {
	i := strings.LastIndex(path, Separator)
	if i < 0 {
		return "", false
	}
	return path[:i], true
}

// Package-level conveniences against the active profiler.

// Start opens a nested span on the active profiler.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return Active().Start(ctx, name)
}

// StartClocked opens a nested clocked span on the active profiler.
func StartClocked(ctx context.Context, name string, c *simclock.Clock) (context.Context, *Span) {
	return Active().StartClocked(ctx, name, c)
}

// Begin opens a root-level span on the active profiler.
func Begin(name string) *Span { return Active().Begin(name) }
