package perfprof

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"unico/internal/runid"
)

// Capture writes pprof CPU and heap profiles into a directory, stamping
// each filename with the current run ID so profiles from concurrent or
// successive runs never collide. Only one CPU profile can run at a time
// (a Go runtime restriction); concurrent requests get ErrBusy.
type Capture struct {
	dir string

	mu  sync.Mutex
	seq int
	cpu bool
}

// ErrBusy reports that a CPU profile is already being collected.
var ErrBusy = errors.New("perfprof: CPU profile already in progress")

// NewCapture returns a Capture writing into dir, creating it if needed.
func NewCapture(dir string) (*Capture, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("perfprof: create profile dir: %w", err)
	}
	return &Capture{dir: dir}, nil
}

// nextPath reserves the next sequence number and builds the profile path:
// <runid|norun>-<kind>-<seq>.pprof
func (c *Capture) nextPath(kind string) string {
	c.mu.Lock()
	c.seq++
	n := c.seq
	c.mu.Unlock()
	id := runid.Current()
	if id == "" {
		id = "norun"
	}
	return filepath.Join(c.dir, fmt.Sprintf("%s-%s-%03d.pprof", id, kind, n))
}

// CPUProfile collects a CPU profile for d and returns the written path.
// The call blocks for the full duration.
func (c *Capture) CPUProfile(d time.Duration) (string, error) {
	c.mu.Lock()
	if c.cpu {
		c.mu.Unlock()
		return "", ErrBusy
	}
	c.cpu = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.cpu = false
		c.mu.Unlock()
	}()

	path := c.nextPath("cpu")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("perfprof: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		return "", fmt.Errorf("perfprof: start cpu profile: %w", err)
	}
	time.Sleep(d) //unicolint:allow detclock CPU profiling samples real time by definition
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("perfprof: close cpu profile: %w", err)
	}
	return path, nil
}

// HeapProfile writes a heap profile (after a GC, so the live set is
// current) and returns the written path.
func (c *Capture) HeapProfile() (string, error) {
	path := c.nextPath("heap")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("perfprof: create heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		return "", fmt.Errorf("perfprof: write heap profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("perfprof: close heap profile: %w", err)
	}
	return path, nil
}

// Every captures a heap profile and a short CPU profile each interval
// until ctx is done. Capture errors go to errf (which may be nil); the
// loop keeps running after an error so a transient disk problem does not
// end profiling for the rest of a long run.
func (c *Capture) Every(ctx context.Context, interval time.Duration, errf func(error)) {
	if errf == nil {
		errf = func(error) {}
	}
	cpuDur := interval / 2
	if cpuDur > 10*time.Second {
		cpuDur = 10 * time.Second
	}
	t := time.NewTicker(interval) //unicolint:allow detclock interval profile capture is wall-clock by nature
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := c.HeapProfile(); err != nil {
				errf(err)
			}
			if _, err := c.CPUProfile(cpuDur); err != nil && !errors.Is(err, ErrBusy) {
				errf(err)
			}
		}
	}
}
