package perfprof

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"unico/internal/simclock"
)

func TestSpanNestingBuildsPaths(t *testing.T) {
	p := New()
	ctx, outer := p.Start(context.Background(), "iteration")
	ctx2, mid := p.Start(ctx, "sh.rung")
	_, leaf := p.Start(ctx2, "mapsearch.advance")
	leaf.End()
	mid.End()
	outer.End()

	tot := p.Totals()
	for _, want := range []string{
		"iteration",
		"iteration/sh.rung",
		"iteration/sh.rung/mapsearch.advance",
	} {
		if tot[want].Count != 1 {
			t.Errorf("phase %q count = %d, want 1 (totals: %v)", want, tot[want].Count, tot)
		}
	}
}

func TestClockedSpanRecordsSimDelta(t *testing.T) {
	p := New()
	c := &simclock.Clock{}
	_, s := p.StartClocked(context.Background(), "sh.rung", c)
	c.Advance(42)
	s.End()
	got := p.Totals()["sh.rung"]
	if got.SimSeconds != 42 {
		t.Fatalf("sim seconds = %v, want 42", got.SimSeconds)
	}
}

func TestNilAndDoubleEndAreSafe(t *testing.T) {
	var s *Span
	s.End() // nil-safe

	p := New()
	_, sp := p.Start(context.Background(), "x")
	sp.End()
	sp.End() // second End is a no-op
	if got := p.Totals()["x"].Count; got != 1 {
		t.Fatalf("count after double End = %d, want 1", got)
	}
}

func TestDeltaSinceSortedAndOmitsUnchanged(t *testing.T) {
	p := New()
	p.Begin("b.phase").End()
	p.Begin("a.phase").End()
	base := p.Totals()

	p.Begin("b.phase").End()
	p.Begin("c.phase").End()

	got := p.DeltaSince(base)
	want := []PhaseDelta{
		{Path: "b.phase", Count: 1},
		{Path: "c.phase", Count: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DeltaSince = %+v, want %+v", got, want)
	}
}

func TestVolatilePhasesExcludedFromTotalsButReported(t *testing.T) {
	p := New()
	restore := SetActive(p)
	defer restore()

	NewTimer().ObserveVolatileAs("x.volatile")
	NewTimer().ObserveAs("x.normal")

	tot := p.Totals()
	if _, ok := tot["x.volatile"]; ok {
		t.Error("volatile phase leaked into Totals")
	}
	if tot["x.normal"].Count != 1 {
		t.Errorf("x.normal count = %d, want 1", tot["x.normal"].Count)
	}
	if ds := p.DeltaSince(Totals{}); len(ds) != 1 || ds[0].Path != "x.normal" {
		t.Errorf("DeltaSince = %+v, want only x.normal", ds)
	}

	var paths []string
	for _, s := range p.Report() {
		paths = append(paths, s.Path)
	}
	want := []string{"x.normal", "x.volatile"}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("Report paths = %v, want %v", paths, want)
	}
}

func TestReportSelfTimeSubtractsDirectChildren(t *testing.T) {
	p := New()
	// Drive accumulators directly: parent 10s wall, child 4s, grandchild 1s.
	p.record("a", 10, 20, false)
	p.record("a/b", 4, 8, false)
	p.record("a/b/c", 1, 2, false)

	byPath := map[string]PhaseStat{}
	for _, s := range p.Report() {
		byPath[s.Path] = s
	}
	if got := byPath["a"].SelfWallSeconds; got != 6 {
		t.Errorf("a self wall = %v, want 6", got)
	}
	if got := byPath["a"].SelfSimSeconds; got != 12 {
		t.Errorf("a self sim = %v, want 12", got)
	}
	if got := byPath["a/b"].SelfWallSeconds; got != 3 {
		t.Errorf("a/b self wall = %v, want 3", got)
	}
	if got := byPath["a/b/c"].SelfWallSeconds; got != 1 {
		t.Errorf("a/b/c self wall = %v, want 1", got)
	}
}

// TestConcurrentSpans exercises span creation/ending and reads from many
// goroutines; run under -race this proves the profiler's locking.
func TestConcurrentSpans(t *testing.T) {
	p := New()
	c := &simclock.Clock{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, outer := p.Start(context.Background(), "iteration")
				_, inner := p.StartClocked(ctx, "sh.rung", c)
				inner.End()
				outer.End()
				p.Begin("gp.predict").End()
				if i%50 == 0 {
					p.Totals()
					p.Report()
				}
			}
		}(g)
	}
	wg.Wait()

	tot := p.Totals()
	if got := tot["iteration"].Count; got != 8*200 {
		t.Errorf("iteration count = %d, want %d", got, 8*200)
	}
	if got := tot["iteration/sh.rung"].Count; got != 8*200 {
		t.Errorf("nested count = %d, want %d", got, 8*200)
	}
	if got := tot["gp.predict"].Count; got != 8*200 {
		t.Errorf("gp.predict count = %d, want %d", got, 8*200)
	}
}

func TestActiveNeverNilAndRestore(t *testing.T) {
	if Active() == nil {
		t.Fatal("Active() returned nil")
	}
	p := New()
	restore := SetActive(p)
	if Active() != p {
		t.Fatal("SetActive did not install profiler")
	}
	restore()
	if Active() == p {
		t.Fatal("restore did not reinstate previous profiler")
	}
}

// TestTakeWindowExactness: windowed deltas restart at zero, so identical
// work yields bit-identical deltas regardless of prior accumulation — the
// property flight-record kill/resume identity rests on.
func TestTakeWindowExactness(t *testing.T) {
	work := func(p *Profiler) []PhaseDelta {
		p.TakeWindow()
		for i := 0; i < 3; i++ {
			p.record("sh.rung", 0, 16.8, false)
		}
		p.record("update", 0, 5, false)
		return p.TakeWindow()
	}

	fresh := New()
	first := work(fresh)

	polluted := New()
	// Accumulate a large, odd prior total so cumulative-difference schemes
	// would lose ulps.
	for i := 0; i < 1000; i++ {
		polluted.record("sh.rung", 0, 0.1, false)
	}
	second := work(polluted)

	if !reflect.DeepEqual(first, second) {
		t.Errorf("windowed deltas differ under prior accumulation:\nfresh    %+v\npolluted %+v", first, second)
	}
	if len(first) != 2 || first[0].Path != "sh.rung" || first[0].Count != 3 {
		t.Errorf("unexpected window contents: %+v", first)
	}
	// A drained window is empty until new activity arrives.
	if again := fresh.TakeWindow(); len(again) != 0 {
		t.Errorf("second TakeWindow = %+v, want empty", again)
	}
}
