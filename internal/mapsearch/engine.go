package mapsearch

import (
	"unico/internal/hw"
	"unico/internal/mapping"
	"unico/internal/ppa"
	"unico/internal/workload"
)

// SpatialEngine is the PPA oracle a spatial mapping search runs against.
// maestro.Engine is the canonical implementation; evalcache.Spatial wraps
// one with a content-addressed cache, and tests substitute counting stubs.
// Implementations must be pure functions of their arguments and safe for
// concurrent use — layer searches of one network advance in parallel.
type SpatialEngine interface {
	// Evaluate returns the PPA of one (hardware, mapping, layer) triple.
	Evaluate(c hw.Spatial, m mapping.Spatial, l workload.Layer) (ppa.Metrics, error)
	// Area returns the mapping-independent silicon area of a configuration.
	Area(c hw.Spatial) float64
	// EvalCostSeconds is the simulated wall-clock cost of one evaluation.
	EvalCostSeconds() float64
}

// AscendEngine is the PPA oracle an Ascend-like schedule search runs
// against; camodel.Engine is the canonical implementation. The same purity
// and concurrency requirements as SpatialEngine apply.
type AscendEngine interface {
	// Evaluate simulates one layer under schedule m on core c.
	Evaluate(c hw.Ascend, m mapping.Ascend, l workload.Layer) (ppa.Metrics, error)
	// Area returns the mapping-independent core area.
	Area(c hw.Ascend) float64
	// EvalCostSeconds is the simulated wall-clock cost of one evaluation.
	EvalCostSeconds() float64
}
