package mapsearch

import (
	"testing"

	"unico/internal/camodel"
	"unico/internal/hw"
	"unico/internal/mapping"
	"unico/internal/workload"

	"math/rand"
)

func TestDescLadder(t *testing.T) {
	l := descLadder(100)
	if len(l) > 8 {
		t.Errorf("ladder too long: %v", l)
	}
	if l[0] != 100 {
		t.Errorf("ladder must start at the bound: %v", l)
	}
	if l[len(l)-1] != 1 {
		t.Errorf("ladder must back off all the way to 1: %v", l)
	}
	for i := 1; i < len(l); i++ {
		if l[i] >= l[i-1] {
			t.Errorf("ladder not strictly descending: %v", l)
		}
	}
	// Huge bounds must still reach 1 (the regression that once starved the
	// depth-first walk of feasible tiles).
	huge := descLadder(614400)
	if huge[len(huge)-1] != 1 {
		t.Errorf("huge ladder does not reach 1: %v", huge)
	}
}

func TestDepthFirstFusionFindsFeasible(t *testing.T) {
	eng := camodel.Engine{}
	cfg := hw.DefaultAscend()
	l := workload.Conv("big", 64, 56, 480, 1280, 3, 3, 1, 1)
	d := NewDepthFirstFusion(eng, cfg, l, rand.New(rand.NewSource(1)))
	for i := 0; i < 10 && func() bool { _, ok := d.Best(); return !ok }(); i++ {
		d.Step()
	}
	if _, ok := d.Best(); !ok {
		t.Fatal("no feasible schedule within 10 steps despite warm-start seeds")
	}
	if d.Evals() == 0 {
		t.Error("Evals() = 0")
	}
	if m, ok := d.BestCandidate(); !ok || !m.Valid(l) {
		t.Errorf("BestCandidate invalid: %+v ok=%v", m, ok)
	}
}

func TestDepthFirstWalkImproves(t *testing.T) {
	eng := camodel.Engine{}
	cfg := hw.DefaultAscend()
	l := workload.Conv("c", 56, 12, 120, 320, 3, 3, 1, 1)
	d := NewDepthFirstFusion(eng, cfg, l, rand.New(rand.NewSource(2)))
	d.Step()
	first, ok := d.Best()
	if !ok {
		t.Fatal("seed schedule infeasible")
	}
	for i := 0; i < 120; i++ {
		d.Step()
	}
	final, _ := d.Best()
	if Loss(final) > Loss(first) {
		t.Errorf("walk worsened: %v -> %v", Loss(first), Loss(final))
	}
}

func TestBuildWalkBackoffOrder(t *testing.T) {
	l := workload.Conv("c", 32, 16, 64, 64, 3, 3, 1, 1)
	walk := buildWalk(l, []int{4, 3, 2, 1}, []int{64, 32, 16}, []int{32, 16}, []int{128, 64})
	if len(walk) == 0 {
		t.Fatal("empty walk")
	}
	// The first node must be the most aggressive corner.
	first := walk[0]
	if first.FuseDepth != 4 || !first.DBufA || !first.DBufB || !first.DBufC {
		t.Errorf("first node not the aggressive corner: %+v", first)
	}
	if first.TM != 32 { // clamped to gm = 32 output channels
		t.Errorf("first TM = %d", first.TM)
	}
}

func TestAscendSearcherAlgos(t *testing.T) {
	eng := camodel.Engine{}
	cfg := hw.DefaultAscend()
	w, err := workload.ByName("FSRCNN-120x320")
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algo{DepthFirst, FlexTensorLike, GammaLike} {
		ns := NewAscendSearcher(eng, cfg, w, algo, 3)
		ns.Advance(12)
		met, ok := ns.Best()
		if !ok {
			t.Errorf("%v: no feasible schedule", algo)
			continue
		}
		if !met.Valid() {
			t.Errorf("%v: invalid metrics %+v", algo, met)
		}
		if !ns.History().Monotone() {
			t.Errorf("%v: non-monotone history", algo)
		}
	}
}

func TestAscendSeedsFeasibleOnDefault(t *testing.T) {
	eng := camodel.Engine{}
	cfg := hw.DefaultAscend()
	for _, w := range workload.All() {
		for _, l := range w.Layers {
			p := ascendProblem{eng: eng, cfg: cfg, layer: l}
			seeds := p.Seeds()
			if len(seeds) == 0 {
				t.Fatalf("%s/%s: no seeds", w.Name, l.Name)
			}
			feasible := false
			for _, s := range seeds {
				if _, err := p.Evaluate(s); err == nil {
					feasible = true
					break
				}
			}
			if !feasible {
				t.Errorf("%s/%s: no feasible seed", w.Name, l.Name)
			}
		}
	}
}

func TestAscendCrossoverValid(t *testing.T) {
	l := workload.Gemm("g", 64, 512, 128, 1)
	p := ascendProblem{eng: camodel.Engine{}, cfg: hw.DefaultAscend(), layer: l}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		a := mapping.RandomAscend(rng, l)
		b := mapping.RandomAscend(rng, l)
		if c := p.Crossover(rng, a, b); !c.Valid(l) {
			t.Fatalf("invalid crossover %+v", c)
		}
	}
}
